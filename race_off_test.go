//go:build !race

package ediflow

const raceEnabled = false
