package ediflow

import (
	"testing"

	"ediflow/internal/benchkit"
)

// BenchmarkMixed{16,64,256} measure the 95/5 read/write workload that
// motivated MVCC snapshot reads: analytical full-scan SELECTs sharing
// the engine with autocommit point UPDATEs under fsync-on-commit
// durability. With snapshot isolation the reads hold no engine lock
// while iterating, so their p99 latency must stay flat as the
// committers saturate the write pipeline. The Baseline variants run the
// same read workload with an idle writer (writePct 0) — the ratio
// between a Mixed p99 and its Baseline p99 is the read-path cost of
// committer saturation. See cmd/benchjson -suite mixed for the
// machine-readable results/BENCH_7.json emitter.

func benchMixed(b *testing.B, sessions, writePct int) {
	st := benchkit.MixedWorkload(b, sessions, writePct)
	b.ReportMetric(float64(st.ReadP99.Microseconds())/1000, "read-p99-ms")
	b.ReportMetric(float64(st.ReadP50.Microseconds())/1000, "read-p50-ms")
}

func BenchmarkMixedBaseline16(b *testing.B)  { benchMixed(b, 16, 0) }
func BenchmarkMixed16(b *testing.B)          { benchMixed(b, 16, 5) }
func BenchmarkMixedBaseline64(b *testing.B)  { benchMixed(b, 64, 0) }
func BenchmarkMixed64(b *testing.B)          { benchMixed(b, 64, 5) }
func BenchmarkMixedBaseline256(b *testing.B) { benchMixed(b, 256, 0) }
func BenchmarkMixed256(b *testing.B)         { benchMixed(b, 256, 5) }
