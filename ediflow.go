// Package ediflow is the public API of the EdiFlow platform — a
// reproduction of "EdiFlow: data-intensive interactive workflows for
// visual analytics" (Benzaken, Fekete, Hémery, Khemiri, Manolescu,
// ICDE 2011).
//
// EdiFlow couples a persistent relational database with a workflow engine
// and a visualization layer:
//
//   - all state — application data, process definitions, process-instance
//     bookkeeping and visual attributes — lives in one embedded database
//     with WAL durability, statement-level triggers and incrementally
//     maintained materialized views;
//   - processes are declared in XML (sequence, AND/OR split-join,
//     conditionals; activities assign variables, run SQL, call black-box
//     procedures or ask users) and react to data changes through
//     update-propagation actions routed to procedure delta handlers;
//   - visualization components compute visual attributes once into a
//     shared table; any number of display views mirror that table over a
//     compact TCP notification protocol and refresh incrementally.
//
// Quickstart:
//
//	p, err := ediflow.Open("")             // in-memory platform
//	defer p.Close()
//	p.Exec("CREATE TABLE points (id INT PRIMARY KEY, v FLOAT)")
//	p.Procedures().Register("analyze", func() module.Procedure { ... })
//	proc, _ := p.DeployXML(processXML)
//	inst, _ := p.Start(proc.Name, "ana")
//	inst.Wait()
package ediflow

import (
	"sync"
	"time"

	"ediflow/internal/client"
	"ediflow/internal/database"
	"ediflow/internal/driver"
	"ediflow/internal/engine"
	"ediflow/internal/metrics"
	"ediflow/internal/module"
	"ediflow/internal/notify"
	"ediflow/internal/server"
	"ediflow/internal/tablesync"
	"ediflow/internal/types"
	"ediflow/internal/vis"
	"ediflow/internal/wf"
	"ediflow/internal/wf/enact"
	"ediflow/internal/wf/isolation"
)

// Re-exported core types, so callers interact with one import path.
type (
	// Value is a dynamically typed SQL value.
	Value = types.Value
	// Row is a tuple of values.
	Row = types.Row
	// Result is the outcome of a statement.
	Result = engine.Result
	// ChangeEvent is a statement-level change notification.
	ChangeEvent = engine.ChangeEvent
	// Process is a parsed process definition.
	Process = wf.Process
	// Instance is a running process instance.
	Instance = enact.Instance
	// Procedure is the black-box computation interface (§VI-D).
	Procedure = module.Procedure
	// ProcEnv is the environment handed to procedures.
	ProcEnv = module.Env
	// Delta describes a propagated data change.
	Delta = module.Delta
	// Mirror is a client-side in-memory table image (R_M).
	Mirror = tablesync.Mirror
	// Visualization groups visualization components.
	Visualization = vis.Visualization
	// Component assigns visual attributes to data items.
	Component = vis.Component
	// Attr is one item's visual attributes.
	Attr = vis.Attr
	// View is one display over shared visual attributes.
	View = vis.View
	// UserAgent answers askUser activities.
	UserAgent = enact.UserAgent
	// AgentFunc adapts a function to UserAgent.
	AgentFunc = enact.AgentFunc
	// Conn is the minimal database surface shared by the embedded DB and
	// the network client: tablesync/notify accept either, so code runs
	// unchanged in-process or against a remote ediserver (Fig. 3).
	Conn = driver.Conn
	// RemoteConn is a pooled client connection to an ediserver.
	RemoteConn = client.Conn
	// RemoteOptions tunes Dial (timeouts, pool size, retry backoff).
	RemoteOptions = client.Options
	// BatchStmt is one statement of a pipelined RemoteConn.ExecBatch
	// frame: many statements per network round trip.
	BatchStmt = client.BatchStmt
	// Server serves this platform's database over TCP.
	Server = server.Server
	// ServerConfig tunes Serve.
	ServerConfig = server.Config
)

// Value constructors, re-exported.
var (
	// Null is the NULL value.
	Null = types.Null
	// NewInt builds an INT value.
	NewInt = types.NewInt
	// NewFloat builds a FLOAT value.
	NewFloat = types.NewFloat
	// NewString builds a STRING value.
	NewString = types.NewString
	// NewBool builds a BOOL value.
	NewBool = types.NewBool
	// NewTime builds a TIME value.
	NewTime = types.NewTime
)

// System table names of the unified data model (Figure 3).
const (
	TableProcess          = database.TableProcess
	TableActivity         = database.TableActivity
	TableProcessInstance  = database.TableProcessInstance
	TableActivityInstance = database.TableActivityInstance
	TableNotification     = database.TableNotification
	TableConnectedUser    = database.TableConnectedUser
	TableVisualAttributes = database.TableVisualAttributes
)

// Platform is one EdiFlow deployment: database + notifier + procedure
// registry + workflow engine.
type Platform struct {
	db       *database.DB
	notifier *notify.Notifier
	registry *module.Registry
	wfEngine *enact.Engine
}

// Option configures Open.
type Option func(*config)

type config struct {
	agent enact.UserAgent
	logf  func(format string, args ...any)
}

// WithUserAgent sets the component answering askUser activities.
func WithUserAgent(a UserAgent) Option { return func(c *config) { c.agent = a } }

// WithLogf sets the platform progress logger (default: standard log).
func WithLogf(f func(format string, args ...any)) Option {
	return func(c *config) { c.logf = f }
}

// Open starts a platform over the given storage directory ("" for
// in-memory). It installs the system schema, attaches the notification
// protocol server and builds the workflow engine.
func Open(dir string, opts ...Option) (*Platform, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	db, err := database.Open(dir)
	if err != nil {
		return nil, err
	}
	notifier, err := notify.NewNotifier(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	registry := module.NewRegistry()
	var enactOpts []enact.Option
	if cfg.agent != nil {
		enactOpts = append(enactOpts, enact.WithAgent(cfg.agent))
	}
	if cfg.logf != nil {
		enactOpts = append(enactOpts, enact.WithLogf(cfg.logf))
	}
	wfEngine := enact.NewEngine(db, registry, enactOpts...)
	return &Platform{db: db, notifier: notifier, registry: registry, wfEngine: wfEngine}, nil
}

// MustOpenMemory opens an in-memory platform or panics (tests/examples).
func MustOpenMemory(opts ...Option) *Platform {
	p, err := Open("", opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Close shuts the platform down (reactive workers first, then the
// notifier, then the database).
func (p *Platform) Close() error {
	p.wfEngine.Close()
	p.notifier.Close()
	return p.db.Close()
}

// Quiesce blocks until the reactive pipeline has drained: every delta
// queued by update propagation has been handed to its delta handler.
// Writers running concurrently can of course queue more.
func (p *Platform) Quiesce() { p.wfEngine.Quiesce() }

// DB exposes the underlying database facade.
func (p *Platform) DB() *database.DB { return p.db }

// Notifier exposes the notification server (purge, connection counts).
func (p *Platform) Notifier() *notify.Notifier { return p.notifier }

// Metrics exposes the platform's metrics registry — the same numbers
// `SELECT * FROM sys_metrics` returns (engine, WAL, server, notifier
// and tablesync instrumentation all record here).
func (p *Platform) Metrics() *metrics.Registry { return p.db.Metrics() }

// SlowLog exposes the slow-query ring buffer backing sys_slow_queries.
func (p *Platform) SlowLog() *metrics.SlowLog { return p.db.SlowLog() }

// Procedures exposes the procedure registry.
func (p *Platform) Procedures() *module.Registry { return p.registry }

// Workflows exposes the enactment engine.
func (p *Platform) Workflows() *enact.Engine { return p.wfEngine }

// Isolation exposes the §VI-A isolation manager.
func (p *Platform) Isolation() *isolation.Manager { return p.wfEngine.Isolation() }

// Exec runs one SQL statement.
func (p *Platform) Exec(sql string, args ...Value) (*Result, error) {
	return p.db.Exec(sql, args...)
}

// ExecScript runs a ';'-separated SQL script.
func (p *Platform) ExecScript(sql string, args ...Value) (*Result, error) {
	return p.db.ExecScript(sql, args...)
}

// Query runs a SELECT.
func (p *Platform) Query(sql string, args ...Value) (*Result, error) {
	return p.db.Query(sql, args...)
}

// QueryInt runs a single-value integer SELECT.
func (p *Platform) QueryInt(sql string, args ...Value) (int64, error) {
	return p.db.QueryInt(sql, args...)
}

// Observe installs a global change observer.
func (p *Platform) Observe(fn func(ChangeEvent)) { p.db.Observe(fn) }

// Checkpoint snapshots durable storage and truncates the WAL.
func (p *Platform) Checkpoint() error { return p.db.Checkpoint() }

// DeployXML parses, validates and deploys a process definition.
func (p *Platform) DeployXML(xmlText string) (*Process, error) {
	return p.wfEngine.DeployXML(xmlText)
}

// Deploy deploys an already-parsed process.
func (p *Platform) Deploy(proc *Process) error { return p.wfEngine.Deploy(proc) }

// Start launches a process instance on behalf of a user.
func (p *Platform) Start(processName, user string) (*Instance, error) {
	return p.wfEngine.Start(processName, user)
}

// Mirror opens a client-side in-memory image of a table, kept in sync
// through the notification protocol.
func (p *Platform) Mirror(user, table string) (*Mirror, error) {
	return tablesync.NewMirror(p.db, user, table)
}

// Serve exposes the platform's database over TCP at addr (e.g. ":7687",
// "127.0.0.1:0"), the paper's DBMS-on-its-own-machine deployment.
// Remote clients obtained with Dial can Exec/Query, register §VI-C
// notification quadruplets and open mirrors. Close the returned server
// before closing the platform.
func (p *Platform) Serve(addr string, cfg ...ServerConfig) (*Server, error) {
	var c ServerConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	srv := server.New(p.db, c)
	if err := srv.Listen(addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// Dial connects to a remote ediserver. The result satisfies Conn, so it
// drops in wherever the embedded database is accepted — including
// NewMirror and notify registration.
func Dial(addr string, opts ...RemoteOptions) (*RemoteConn, error) {
	var o RemoteOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return client.Dial(addr, o)
}

// NewMirror opens a mirror over any Conn — the embedded DB of a
// Platform or a RemoteConn from Dial. With a remote Conn this is
// exactly the paper's deployment: R_D on the server machine, R_M in
// this process, synchronized over the wire.
func NewMirror(c Conn, user, table string) (*Mirror, error) {
	return tablesync.NewMirror(c, user, table)
}

// NewVisualization registers a visualization.
func (p *Platform) NewVisualization(name string) (*Visualization, error) {
	return vis.NewVisualization(p.db, name)
}

// OpenView opens a display view over a component's visual attributes,
// showing the given fraction of objects (1.0 = all).
func (p *Platform) OpenView(name string, compID int64, fraction float64) (*View, error) {
	return vis.OpenView(p.db, name, compID, fraction)
}

// LinkSelection propagates selection across the components of a
// visualization (Figure 3: selecting an item in one component triggers
// the others to reflect it).
func (p *Platform) LinkSelection(v *Visualization) error {
	return vis.NewSelectionLinker(p.db).Link(v)
}

// AutoMaintain starts background housekeeping for long-running
// deployments: the Notification table is purged of consumed entries
// (§VI-C step 11) and durable storage is checkpointed (snapshot + WAL
// truncation) at the given interval. It returns a stop function.
func (p *Platform) AutoMaintain(interval time.Duration) (stop func()) {
	stopPurge := p.notifier.AutoPurge(interval)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p.db.Checkpoint()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			stopPurge()
			close(done)
		})
	}
}
