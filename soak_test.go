package ediflow

// A kitchen-sink soak test: a durable platform runs process instances,
// materialized views, table mirrors and logical deletions concurrently
// with a random operation stream, checking global invariants throughout
// and across a restart. This is the cross-feature integration net — each
// subsystem has its own tests; this one hunts interaction bugs.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"ediflow/internal/module"
)

func TestSoakEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()
	p, err := Open(dir, quiet())
	if err != nil {
		t.Fatal(err)
	}

	// Application schema + incrementally maintained views.
	if _, err := p.ExecScript(`
		CREATE TABLE sensors (id INT PRIMARY KEY, zone STRING NOT NULL);
		CREATE TABLE readings (sensor INT NOT NULL, v INT NOT NULL);
		CREATE MATERIALIZED VIEW by_zone AS
			SELECT s.zone, r.v FROM readings r JOIN sensors s ON r.sensor = s.id;
		CREATE MATERIALIZED VIEW totals AS
			SELECT sensor, COUNT(*) AS n, SUM(v) AS s FROM readings GROUP BY sensor;
	`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		zone := "north"
		if i%2 == 0 {
			zone = "south"
		}
		p.Exec(fmt.Sprintf("INSERT INTO sensors VALUES (%d, '%s')", i, zone))
	}

	// A reactive process whose delta handler counts propagated batches.
	batches := make(chan int, 4096)
	p.Procedures().Register("soak.watch", func() Procedure {
		return &module.Func{
			ProcName: "soak.watch",
			RunFn:    func(env *ProcEnv) error { return nil },
			UpdateFn: func(env *ProcEnv) error {
				batches <- len(env.Delta.TIDs)
				return nil
			},
		}
	})
	if _, err := p.DeployXML(`
<process name="soak">
  <relation name="readings">
    <attribute name="sensor" type="int"/>
    <attribute name="v" type="int"/>
  </relation>
  <function name="watch" class="soak.watch"/>
  <body>
    <activity name="watch"><callFunction name="watch" inputs="readings"/></activity>
  </body>
  <updatePropagation relation="readings" activity="watch" scope="ta-tp"/>
</process>`); err != nil {
		t.Fatal(err)
	}
	inst, err := p.Start("soak", "soaker")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}

	// A live mirror of the aggregate view.
	mirror, err := p.Mirror("soak-display", "totals")
	if err != nil {
		t.Fatal(err)
	}
	mirror.AutoRefresh(5 * time.Millisecond)

	checkInvariants := func(tag string) {
		t.Helper()
		// View ≡ recompute, both classes.
		for _, pair := range [][2]string{
			{"SELECT zone, v FROM by_zone", "SELECT s.zone, r.v FROM readings r JOIN sensors s ON r.sensor = s.id"},
			{"SELECT sensor, n, s FROM totals", "SELECT sensor, COUNT(*), SUM(v) FROM readings GROUP BY sensor"},
		} {
			got, err := p.Query(pair[0])
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			want, err := p.Query(pair[1])
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			g := rowsKey(got.Rows)
			w := rowsKey(want.Rows)
			if g != w {
				t.Fatalf("%s: view diverged for %q:\n%s\nvs\n%s", tag, pair[0], g, w)
			}
		}
		// Notification sequence strictly increasing.
		res, err := p.Query("SELECT seq_no FROM " + TableNotification + " ORDER BY seq_no")
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i][0].Int() <= res.Rows[i-1][0].Int() {
				t.Fatalf("%s: notification seq not increasing", tag)
			}
		}
	}

	rng := rand.New(rand.NewSource(2011))
	totalInserted := 0
	for round := 0; round < 120; round++ {
		switch rng.Intn(4) {
		case 0, 1: // batch insert
			n := rng.Intn(20) + 1
			sql := "INSERT INTO readings (sensor, v) VALUES "
			for i := 0; i < n; i++ {
				if i > 0 {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d)", rng.Intn(8)+1, rng.Intn(100))
			}
			if _, err := p.Exec(sql); err != nil {
				t.Fatal(err)
			}
			totalInserted += n
		case 2: // update a slice of readings
			if _, err := p.Exec(fmt.Sprintf("UPDATE readings SET v = v + 1 WHERE sensor = %d", rng.Intn(8)+1)); err != nil {
				t.Fatal(err)
			}
		case 3: // delete some readings outright
			if _, err := p.Exec(fmt.Sprintf("DELETE FROM readings WHERE sensor = %d AND v < 10", rng.Intn(8)+1)); err != nil {
				t.Fatal(err)
			}
		}
		if round%10 == 9 {
			checkInvariants(fmt.Sprintf("round %d", round))
		}
	}
	checkInvariants("final")

	// The ta-tp handler received every inserted batch eventually.
	deadline := time.Now().Add(5 * time.Second)
	received := 0
	for received < totalInserted && time.Now().Before(deadline) {
		select {
		case n := <-batches:
			received += n
		case <-time.After(100 * time.Millisecond):
		}
	}
	if received < totalInserted {
		t.Fatalf("delta handler saw %d/%d inserted readings", received, totalInserted)
	}

	// The mirror converged to the view contents.
	waitCond(t, func() bool {
		n, _ := p.QueryInt("SELECT COUNT(*) FROM totals")
		return mirror.Len() == int(n)
	})

	mirror.Close()
	p.Close()

	// Restart: everything still consistent and maintainable.
	p2, err := Open(dir, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got, _ := p2.Query("SELECT sensor, n, s FROM totals")
	want, _ := p2.Query("SELECT sensor, COUNT(*), SUM(v) FROM readings GROUP BY sensor")
	if rowsKey(got.Rows) != rowsKey(want.Rows) {
		t.Fatal("views diverged after restart")
	}
	p2.Exec("INSERT INTO readings VALUES (1, 42)")
	got, _ = p2.Query("SELECT sensor, n, s FROM totals")
	want, _ = p2.Query("SELECT sensor, COUNT(*), SUM(v) FROM readings GROUP BY sensor")
	if rowsKey(got.Rows) != rowsKey(want.Rows) {
		t.Fatal("view maintenance broken after restart")
	}
}

func rowsKey(rows []Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		keys[i] = s
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "\n"
	}
	return out
}
