package ediflow

import (
	"testing"
	"time"

	"ediflow/internal/module"
)

func TestPlatformLifecycle(t *testing.T) {
	p := MustOpenMemory(WithLogf(func(string, ...any) {}))
	defer p.Close()
	if _, err := p.Exec("CREATE TABLE t (a INT PRIMARY KEY, b STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec("INSERT INTO t VALUES (?, ?)", NewInt(1), NewString("x")); err != nil {
		t.Fatal(err)
	}
	n, err := p.QueryInt("SELECT COUNT(*) FROM t")
	if err != nil || n != 1 {
		t.Fatalf("%d, %v", n, err)
	}
}

func TestPlatformDurable(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Exec("CREATE TABLE t (a INT)")
	p.Exec("INSERT INTO t VALUES (7)")
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	n, _ := p2.QueryInt("SELECT a FROM t")
	if n != 7 {
		t.Fatalf("a = %d", n)
	}
}

func TestPlatformEndToEndReactiveProcess(t *testing.T) {
	// The full paper loop through the public API: a reactive process whose
	// procedure recomputes visual attributes, a mirror watching them, and
	// a data change propagated while the process runs.
	updates := make(chan int64, 16)
	hold := make(chan struct{})

	const processXML = `
<process name="recolorflow">
  <relation name="points" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="v" type="float"/>
  </relation>
  <relation name="colored" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="v2" type="float"/>
  </relation>
  <function name="recolor" class="recolor"/>
  <variable name="a" type="string"/>
  <body>
    <sequence>
      <activity name="compute"><callFunction name="recolor" inputs="points" outputs="colored"/></activity>
      <activity name="wait"><askUser prompt="hold" bindTo="a"/></activity>
    </sequence>
  </body>
  <updatePropagation relation="points" activity="compute" scope="ta-rp"/>
</process>`

	agentCalled := make(chan struct{})
	p := MustOpenMemory(
		WithLogf(func(string, ...any) {}),
		WithUserAgent(AgentFunc(func(prompt, group string) (string, error) {
			close(agentCalled)
			<-hold
			return "done", nil
		})),
	)
	defer p.Close()
	p.Procedures().Register("recolor", func() Procedure {
		return &module.Func{
			ProcName: "recolor",
			RunFn: func(env *ProcEnv) error {
				_, err := env.DB.Exec("INSERT INTO colored SELECT id, v * 2 FROM points")
				return err
			},
			UpdateFn: func(env *ProcEnv) error {
				updates <- env.Delta.Seq
				for i := range env.Delta.TIDs {
					row := env.Delta.Rows[i]
					if _, err := env.DB.Exec("INSERT INTO colored VALUES (?, ?)",
						row[0], NewFloat(row[1].Float()*2)); err != nil {
						return err
					}
				}
				return nil
			},
		}
	})

	if _, err := p.DeployXML(processXML); err != nil {
		t.Fatal(err)
	}
	p.Exec("INSERT INTO points VALUES (1, 1.5)")
	inst, err := p.Start("recolorflow", "ana")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-agentCalled:
	case <-time.After(3 * time.Second):
		t.Fatal("process did not reach the hold activity")
	}
	// The initial run converted the pre-existing point.
	n, _ := p.QueryInt("SELECT COUNT(*) FROM colored")
	if n != 1 {
		t.Fatalf("colored rows after run: %d", n)
	}
	// New data while the process is held: the ta-rp handler fires.
	p.Exec("INSERT INTO points VALUES (2, 3.0)")
	select {
	case <-updates:
	case <-time.After(3 * time.Second):
		t.Fatal("delta handler did not fire")
	}
	waitUntil(t, func() bool {
		n, _ := p.QueryInt("SELECT COUNT(*) FROM colored")
		return n == 2
	})
	v, _ := p.QueryInt("SELECT CAST_INT(v2) FROM colored WHERE id = 2")
	if v != 6 {
		t.Fatalf("v2 = %d", v)
	}
	close(hold)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformMirrorAndViews(t *testing.T) {
	p := MustOpenMemory(WithLogf(func(string, ...any) {}))
	defer p.Close()
	p.Exec("CREATE TABLE stars (id INT PRIMARY KEY, mag FLOAT)")
	p.Exec("INSERT INTO stars VALUES (1, 0.5), (2, 1.5)")
	m, err := p.Mirror("viewer", "stars")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 2 {
		t.Fatalf("mirror len: %d", m.Len())
	}
	v, err := p.NewVisualization("sky")
	if err != nil {
		t.Fatal(err)
	}
	c, err := v.AddComponent("plot", "scatter")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InsertAttributes(map[int64]Attr{1: {X: 1}, 2: {X: 2}}); err != nil {
		t.Fatal(err)
	}
	view, err := p.OpenView("display", c.ID, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	if len(view.Visible()) != 2 {
		t.Fatalf("view sees %d objects", len(view.Visible()))
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestAutoMaintain(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(dir, WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Exec("CREATE TABLE t (a INT)")
	m, err := p.Mirror("m", "t")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	stop := p.AutoMaintain(20 * time.Millisecond)
	defer stop()
	p.Exec("INSERT INTO t VALUES (1)")
	p.Exec("INSERT INTO t VALUES (2)")
	waitUntil(t, func() bool {
		n, _ := m.Refresh()
		_ = n
		return m.Len() == 2
	})
	// After the mirror acks, maintenance purges consumed notifications.
	waitUntil(t, func() bool {
		left, _ := p.QueryInt("SELECT COUNT(*) FROM " + TableNotification)
		return left <= 1
	})
	stop()
	stop() // idempotent
}
