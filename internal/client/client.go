// Package client is the Go driver for a remote ediserver. It exposes
// the same Exec/Query/QueryValue surface as internal/database through
// the driver.Conn interface, so notify.Client, tablesync.Mirror and
// application code run unchanged against a DBMS on another machine —
// the paper's deployment of Fig. 3, where EdiFlow peers reach the
// database server over the LAN.
//
// The driver keeps a pool of wire connections; each request checks one
// out for a single request/response round trip. Dials are retried with
// exponential backoff on transient failure. A transaction (Begin …
// Commit/Rollback) pins one connection, and while it is open every
// statement from this driver rides that pinned connection — mirroring
// the server, which serializes writes against the open transaction.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"sort"

	"ediflow/internal/driver"
	"ediflow/internal/engine"
	"ediflow/internal/metrics"
	"ediflow/internal/types"
	"ediflow/internal/wire"
)

// Options tunes Dial. The zero value is usable.
type Options struct {
	// DialTimeout bounds each TCP connect attempt (default 3s).
	DialTimeout time.Duration
	// DialRetries is how many times a failed dial is retried with
	// exponential backoff before giving up (default 3).
	DialRetries int
	// RetryBackoff is the first retry delay, doubled per attempt with
	// full jitter (default 50ms).
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the doubling (default 1s). Without a cap,
	// a long outage pushes the delay into minutes and the driver looks
	// hung rather than retrying.
	MaxRetryBackoff time.Duration
	// Dialer opens the raw transport (default net.DialTimeout over TCP).
	// Tests inject fault-wrapped dialers here.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// ReadTimeout bounds waiting for one response (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one request (default 10s).
	WriteTimeout time.Duration
	// PoolSize caps idle pooled connections (default 4). More may be
	// opened under load; extras are closed when returned.
	PoolSize int
	// MaxFrameBytes caps one response frame (default wire.MaxFrame).
	MaxFrameBytes int
	// ClientName is announced in the HELLO frame (default "ediflow-go").
	ClientName string
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.DialRetries < 0 {
		o.DialRetries = 0
	} else if o.DialRetries == 0 {
		o.DialRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxRetryBackoff <= 0 {
		o.MaxRetryBackoff = time.Second
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.ClientName == "" {
		o.ClientName = "ediflow-go"
	}
	return o
}

// Conn is a pooled client connection to one ediserver address.
// It satisfies driver.Conn, so it can replace *database.DB wherever
// that interface is accepted.
type Conn struct {
	addr string
	opts Options

	mu     sync.Mutex
	idle   []*wireConn
	txn    *wireConn // pinned while a transaction is open
	closed bool

	// Client-local metrics (the server keeps its own): dial/pool churn
	// and round-trip latency as seen from this driver.
	reg          *metrics.Registry
	mDials       *metrics.Counter
	mDialRetries *metrics.Counter
	mDialErrors  *metrics.Counter
	mPoolHits     *metrics.Counter
	mPoolMisses   *metrics.Counter
	mStaleConns   *metrics.Counter
	mWriteRetries *metrics.Counter
	mTxnDiscards  *metrics.Counter
	mRoundTripH   *metrics.Histogram
}

// Metrics returns the driver-side metrics registry for this connection.
func (c *Conn) Metrics() *metrics.Registry { return c.reg }

var _ driver.Conn = (*Conn)(nil)

// wireConn is one TCP connection speaking the wire protocol.
type wireConn struct {
	c  net.Conn
	mu sync.Mutex // serializes round trips on this connection
}

// Dial connects to an ediserver, validating the handshake on the first
// connection before returning.
func Dial(addr string, opts Options) (*Conn, error) {
	c := &Conn{addr: addr, opts: opts.withDefaults(), reg: metrics.NewRegistry()}
	c.mDials = c.reg.Counter("client.dials")
	c.mDialRetries = c.reg.Counter("client.dial_retries")
	c.mDialErrors = c.reg.Counter("client.dial_errors")
	c.mPoolHits = c.reg.Counter("client.pool_hits")
	c.mPoolMisses = c.reg.Counter("client.pool_misses")
	c.mStaleConns = c.reg.Counter("client.stale_conns")
	c.mWriteRetries = c.reg.Counter("client.write_retries")
	c.mTxnDiscards = c.reg.Counter("client.txn_discards")
	c.mRoundTripH = c.reg.Histogram("client.roundtrip_latency")
	wc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.put(wc)
	return c, nil
}

// transientDialError reports whether a dial failure could plausibly
// clear up on retry. A malformed address or a name that does not exist
// will fail identically every time — retrying those only delays the
// real error.
func transientDialError(err error) bool {
	var addrErr *net.AddrError
	if errors.As(err, &addrErr) {
		return false
	}
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) && dnsErr.IsNotFound {
		return false
	}
	return true
}

// JitterBackoff picks a uniformly random delay in [d/2, d] ("full
// jitter"): a fleet of clients reconnecting after a server restart
// spreads out instead of stampeding in lockstep. Exported for the
// replica reconnect loop (internal/repl), which shares the policy.
func JitterBackoff(d time.Duration) time.Duration {
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

func jitterBackoff(d time.Duration) time.Duration { return JitterBackoff(d) }

// dial opens and handshakes one wire connection, retrying transient
// failures with capped, jittered exponential backoff.
func (c *Conn) dial() (*wireConn, error) {
	backoff := c.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.DialRetries; attempt++ {
		if attempt > 0 {
			c.mDialRetries.Inc()
			time.Sleep(jitterBackoff(backoff))
			if backoff *= 2; backoff > c.opts.MaxRetryBackoff {
				backoff = c.opts.MaxRetryBackoff
			}
		}
		nc, err := c.opts.Dialer(c.addr, c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			if !transientDialError(err) {
				break
			}
			continue
		}
		wc := &wireConn{c: nc}
		if err := c.handshake(wc); err != nil {
			nc.Close()
			c.mDialErrors.Inc()
			// A handshake rejection (version mismatch) is not transient.
			return nil, err
		}
		c.mDials.Inc()
		return wc, nil
	}
	c.mDialErrors.Inc()
	return nil, fmt.Errorf("client: dialing %s: %w", c.addr, lastErr)
}

func (c *Conn) handshake(wc *wireConn) error {
	typ, payload, _, err := c.roundTripOn(wc, wire.FrameHello,
		wire.EncodeHello(wire.Version, c.opts.ClientName))
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	switch typ {
	case wire.FrameWelcome:
		v, _, err := wire.DecodeWelcome(payload)
		if err != nil {
			return err
		}
		if v != wire.Version {
			return fmt.Errorf("client: server speaks protocol version %d, want %d", v, wire.Version)
		}
		return nil
	case wire.FrameError:
		msg, _ := wire.DecodeError(payload)
		return fmt.Errorf("client: server rejected handshake: %s", msg)
	}
	return fmt.Errorf("client: unexpected handshake frame 0x%02x", typ)
}

// get checks out a connection: the pinned transaction connection if one
// is open, an idle pooled one that still looks alive, or a fresh dial.
// pinned means the transaction connection; pooled means the connection
// sat idle in the pool (and so may have silently died — the caller may
// safely retry a request whose frame never got out on one of those).
func (c *Conn) get() (wc *wireConn, pinned, pooled bool, err error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, false, false, fmt.Errorf("client: connection closed")
		}
		if c.txn != nil {
			wc := c.txn
			c.mu.Unlock()
			return wc, true, false, nil
		}
		n := len(c.idle)
		if n == 0 {
			c.mu.Unlock()
			break
		}
		wc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		// A pooled connection may have outlived the server. The probe
		// catches peers that already sent FIN/RST; it cannot catch a
		// server that died without a trace (the write-retry in roundTrip
		// covers that).
		if connAlive(wc.c) {
			c.mPoolHits.Inc()
			return wc, false, true, nil
		}
		c.mStaleConns.Inc()
		wc.c.Close()
	}
	c.mPoolMisses.Inc()
	wc, err = c.dial()
	return wc, false, false, err
}

// put returns a healthy connection to the idle pool.
func (c *Conn) put(wc *wireConn) {
	c.mu.Lock()
	if !c.closed && wc != c.txn && len(c.idle) < c.opts.PoolSize {
		c.idle = append(c.idle, wc)
		c.mu.Unlock()
		return
	}
	pinned := wc == c.txn
	c.mu.Unlock()
	if !pinned {
		wc.c.Close()
	}
}

// roundTrip sends one request and reads its response, managing pool
// checkout and dead-connection disposal. When the request frame never
// made it onto a pooled (never transaction-pinned) connection, the
// request provably did not execute, so one retry on a fresh connection
// is safe even for non-idempotent statements — this is what lets a
// driver survive a server restart transparently. A failure after the
// frame was written is never retried: the server may have executed the
// statement and only the response was lost.
func (c *Conn) roundTrip(reqType byte, payload []byte) (byte, []byte, error) {
	for attempt := 0; ; attempt++ {
		wc, pinned, pooled, err := c.get()
		if err != nil {
			return 0, nil, err
		}
		done := c.reg.Time(c.mRoundTripH)
		typ, resp, wrote, err := c.roundTripOn(wc, reqType, payload)
		done()
		if err != nil {
			// The stream is in an unknown state: drop the connection. If
			// it was the transaction pin, the transaction is gone with it
			// (the server rolls back on disconnect).
			wc.c.Close()
			c.mu.Lock()
			if c.txn == wc {
				c.txn = nil
			}
			c.mu.Unlock()
			if pooled && !wrote && attempt == 0 {
				c.mWriteRetries.Inc()
				continue
			}
			return 0, nil, err
		}
		if !pinned {
			c.put(wc)
		}
		return typ, resp, nil
	}
}

// roundTripOn performs one framed request/response on wc. wrote reports
// whether the request frame was fully written — once it is, the server
// may have executed the request, and the caller must not retry.
func (c *Conn) roundTripOn(wc *wireConn, reqType byte, payload []byte) (typ byte, resp []byte, wrote bool, err error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	wc.c.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	if err := wire.WriteFrame(wc.c, reqType, payload); err != nil {
		return 0, nil, false, err
	}
	wc.c.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	typ, resp, err = wire.ReadFrame(wc.c, c.opts.MaxFrameBytes)
	return typ, resp, true, err
}

// expect unwraps a response, converting Error frames into Go errors.
func expect(want byte, typ byte, payload []byte, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	if typ == wire.FrameError {
		msg, derr := wire.DecodeError(payload)
		if derr != nil {
			return nil, fmt.Errorf("client: undecodable server error: %w", derr)
		}
		return nil, fmt.Errorf("%s", msg)
	}
	if typ != want {
		return nil, fmt.Errorf("client: expected frame 0x%02x, got 0x%02x", want, typ)
	}
	return payload, nil
}

// ------------------------------------------------------------ statements

// Exec runs one SQL statement on the server.
func (c *Conn) Exec(sql string, args ...types.Value) (*engine.Result, error) {
	return c.exec(false, sql, args)
}

// ExecScript runs a ';'-separated script, returning the last result.
func (c *Conn) ExecScript(sql string, args ...types.Value) (*engine.Result, error) {
	return c.exec(true, sql, args)
}

func (c *Conn) exec(script bool, sql string, args []types.Value) (*engine.Result, error) {
	typ, payload, err := c.roundTrip(wire.FrameExec, wire.EncodeExec(script, sql, args))
	p, err := expect(wire.FrameResult, typ, payload, err)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(p)
}

// BatchStmt is one statement of an ExecBatch pipeline (re-exported from
// the wire package so callers need not import it).
type BatchStmt = wire.BatchStmt

// ExecBatch ships a pipelined multi-statement frame: every statement
// travels in one request and executes in order on this client's
// session, so bulk loaders pay one network round trip — and, on the
// server, one baton acquisition feeding the engine's group-commit
// pipeline — instead of N. Results come back positionally. Execution
// stops at the first statement error, which is returned alongside the
// results of the statements that preceded it; wire-level failures
// return a nil slice.
func (c *Conn) ExecBatch(stmts []BatchStmt) ([]*engine.Result, error) {
	typ, payload, err := c.roundTrip(wire.FrameExecBatch, wire.EncodeExecBatch(stmts))
	p, err := expect(wire.FrameBatchResult, typ, payload, err)
	if err != nil {
		return nil, err
	}
	results, errMsg, err := wire.DecodeBatchResult(p)
	if err != nil {
		return nil, err
	}
	if errMsg != "" {
		return results, fmt.Errorf("%s", errMsg)
	}
	return results, nil
}

// Query runs a SELECT on the server.
func (c *Conn) Query(sql string, args ...types.Value) (*engine.Result, error) {
	typ, payload, err := c.roundTrip(wire.FrameQuery, wire.EncodeQuery(sql, args))
	p, err := expect(wire.FrameResult, typ, payload, err)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(p)
}

// QueryValue runs a SELECT expected to return exactly one value.
func (c *Conn) QueryValue(sql string, args ...types.Value) (types.Value, error) {
	res, err := c.Query(sql, args...)
	if err != nil {
		return types.Null, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return types.Null, fmt.Errorf("client: expected a single value, got %d rows", len(res.Rows))
	}
	return res.Rows[0][0], nil
}

// QueryInt runs a SELECT expected to return exactly one integer.
func (c *Conn) QueryInt(sql string, args ...types.Value) (int64, error) {
	v, err := c.QueryValue(sql, args...)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// NextID allocates a unique id server-side (safe across sessions).
func (c *Conn) NextID(table string) (int64, error) {
	typ, payload, err := c.roundTrip(wire.FrameNextID, wire.EncodeString(table))
	p, err := expect(wire.FrameID, typ, payload, err)
	if err != nil {
		return 0, err
	}
	return wire.DecodeID(p)
}

// InsertRow inserts one row given column→value pairs, returning its tid.
func (c *Conn) InsertRow(table string, vals map[string]types.Value) (int64, error) {
	cols := make([]string, 0, len(vals))
	for col := range vals {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	placeholders := ""
	args := make([]types.Value, 0, len(cols))
	colList := ""
	for i, col := range cols {
		if i > 0 {
			colList += ", "
			placeholders += ", "
		}
		colList += col
		placeholders += "?"
		args = append(args, vals[col])
	}
	res, err := c.Exec(fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", table, colList, placeholders), args...)
	if err != nil {
		return 0, err
	}
	if len(res.TIDs) != 1 {
		return 0, fmt.Errorf("client: insert affected %d rows", len(res.TIDs))
	}
	return res.TIDs[0], nil
}

// TableNames lists the server's tables.
func (c *Conn) TableNames() ([]string, error) {
	typ, payload, err := c.roundTrip(wire.FrameTables, nil)
	p, err := expect(wire.FrameNames, typ, payload, err)
	if err != nil {
		return nil, err
	}
	return wire.DecodeNames(p)
}

// Ping performs a wire round trip, dialing if needed.
func (c *Conn) Ping() error {
	typ, payload, err := c.roundTrip(wire.FramePing, nil)
	_, err = expect(wire.FramePong, typ, payload, err)
	return err
}

// ------------------------------------------------------------ transactions

// Begin opens a transaction pinned to one wire connection. Until
// Commit or Rollback, every statement from this driver uses it.
func (c *Conn) Begin() error {
	c.mu.Lock()
	if c.txn != nil {
		c.mu.Unlock()
		return fmt.Errorf("client: transaction already open")
	}
	c.mu.Unlock()
	wc, _, _, err := c.get()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.txn = wc
	c.mu.Unlock()
	if _, err := c.Exec("BEGIN"); err != nil {
		c.mu.Lock()
		c.txn = nil
		c.mu.Unlock()
		c.put(wc)
		return err
	}
	return nil
}

// Commit commits the open transaction and unpins its connection.
func (c *Conn) Commit() error { return c.endTxn("COMMIT") }

// Rollback aborts the open transaction and unpins its connection.
func (c *Conn) Rollback() error { return c.endTxn("ROLLBACK") }

func (c *Conn) endTxn(stmt string) error {
	c.mu.Lock()
	wc := c.txn
	c.mu.Unlock()
	if wc == nil {
		return fmt.Errorf("client: no open transaction")
	}
	_, err := c.Exec(stmt)
	// Unpin no matter what. Two failure shapes reach here: a transport
	// error (roundTrip already closed wc and cleared the pin) and a
	// server-side error frame (wc is alive but its transaction state is
	// not ours to reason about). Previously the second shape left the
	// connection pinned-but-orphaned — never pooled, never closed, one
	// leaked socket per failed COMMIT/ROLLBACK. Now a failed end-of-
	// transaction always discards the connection; only success pools it.
	c.mu.Lock()
	stillPinned := c.txn == wc
	c.txn = nil
	c.mu.Unlock()
	if err == nil {
		c.put(wc)
		return nil
	}
	if stillPinned {
		c.mTxnDiscards.Inc()
		wc.c.Close()
	}
	return err
}

// Close tears down every pooled connection. An open transaction is
// abandoned (the server rolls it back on disconnect).
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.idle
	c.idle = nil
	if c.txn != nil {
		conns = append(conns, c.txn)
		c.txn = nil
	}
	c.mu.Unlock()
	for _, wc := range conns {
		wc.c.Close()
	}
	return nil
}
