//go:build unix

package client

import (
	"io"
	"net"
	"syscall"
)

// connAlive reports whether an idle connection's peer is still there,
// without consuming protocol bytes. It issues a non-blocking 1-byte
// read on the raw socket: EAGAIN means the socket is quiet but open
// (alive); EOF or any other error means the peer closed or reset it; a
// successful read means the server sent unsolicited bytes, which the
// wire protocol never does, so the stream is out of sync and the
// connection is discarded as dead.
//
// Go's deadline-based reads cannot express this probe — a past-due
// read deadline fails before reaching the kernel — hence syscall.RawConn.
func connAlive(c net.Conn) bool {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return true // not a raw socket (e.g. a test wrapper): assume alive
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	alive := true
	var buf [1]byte
	rerr := raw.Read(func(fd uintptr) bool {
		n, _, err := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case n > 0:
			alive = false // unsolicited bytes: stream out of sync
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK:
			// quiet and open
		case n == 0 && err == nil:
			alive = false // orderly shutdown (EOF)
		default:
			alive = false // RST or other socket error
		}
		return true // never block
	})
	if rerr != nil && rerr != io.EOF {
		return false
	}
	return alive
}
