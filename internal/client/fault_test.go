package client

import (
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/fault"
	"ediflow/internal/server"
	"ediflow/internal/wire"
)

// TestPooledConnSurvivesServerRestart is the driver-side durability
// drill: the server restarts between two statements on the same client,
// and the second statement must succeed transparently — the stale pooled
// connection is either caught by the liveness probe or retried once
// (the request frame never got out, so the retry is provably safe).
func TestPooledConnSurvivesServerRestart(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	srv := server.New(db, server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	conn, err := Dial(addr, Options{DialRetries: 10, RetryBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	// Restart: same database, same address, new server process.
	srv.Close()
	srv2 := server.New(db, server.Config{})
	var lerr error
	for i := 0; i < 50; i++ { // the freed port can take a moment to rebind
		if lerr = srv2.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("rebinding %s: %v", addr, lerr)
	}
	defer srv2.Close()

	if _, err := conn.Exec("INSERT INTO t (id) VALUES (2)"); err != nil {
		t.Fatalf("statement across server restart: %v", err)
	}
	n, err := conn.QueryInt("SELECT COUNT(*) FROM t")
	if err != nil || n != 2 {
		t.Fatalf("count after restart: %d, %v", n, err)
	}
	stale := conn.Metrics().Counter("client.stale_conns").Value()
	retries := conn.Metrics().Counter("client.write_retries").Value()
	if stale+retries == 0 {
		t.Fatalf("restart went unnoticed: stale_conns=%d write_retries=%d", stale, retries)
	}
}

// TestDialBackoffIsCapped: with a tight cap, six failed attempts must
// complete far sooner than uncapped doubling would allow.
func TestDialBackoffIsCapped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nobody listening: every dial fails fast with ECONNREFUSED

	start := time.Now()
	_, err = Dial(addr, Options{
		DialTimeout:     200 * time.Millisecond,
		DialRetries:     6,
		RetryBackoff:    10 * time.Millisecond,
		MaxRetryBackoff: 20 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	// Uncapped: 10+20+40+80+160+320 = 630ms of backoff (≥315ms after
	// jitter). Capped at 20ms: at most 10+20·5 = 110ms.
	if elapsed > 250*time.Millisecond {
		t.Fatalf("backoff not capped: 6 retries took %v", elapsed)
	}
}

// A structurally broken address can never succeed; retrying it with
// backoff only hides the real error for seconds.
func TestNonTransientDialErrorFailsFast(t *testing.T) {
	start := time.Now()
	_, err := Dial("127.0.0.1", Options{ // missing port: *net.AddrError
		DialRetries:  5,
		RetryBackoff: 300 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial without port succeeded")
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("non-transient dial error was retried: took %v", elapsed)
	}
}

// A server that speaks the wrong protocol version rejects us on every
// connection; the handshake failure must not be retried.
func TestVersionMismatchNotRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, _, err := wire.ReadFrame(c, wire.MaxFrame); err != nil {
					return
				}
				wire.WriteFrame(c, wire.FrameWelcome, wire.EncodeWelcome(wire.Version+1, 1))
			}(c)
		}
	}()

	start := time.Now()
	_, err = Dial(ln.Addr().String(), Options{
		DialRetries:  5,
		RetryBackoff: 300 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("want version-mismatch error, got %v", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("version mismatch was retried: took %v", elapsed)
	}
}

// TestBlackholeRecoveryNoLeaks: a silent packet-eating network stalls a
// request until its read deadline; the driver must fail that statement,
// recover on the healed network, close every connection at most once,
// and leak no goroutines.
func TestBlackholeRecoveryNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	db := database.MustOpenMemory()
	srv := server.New(db, server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	faults := &fault.Faults{}
	dialer := &fault.Dialer{Faults: faults}

	conn, err := Dial(srv.Addr(), Options{
		ReadTimeout: 200 * time.Millisecond,
		DialRetries: 3,
		Dialer:      dialer.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}

	faults.SetBlackhole(true)
	if _, err := conn.Exec("INSERT INTO t (id) VALUES (1)"); err == nil {
		t.Fatal("statement through a blackhole succeeded")
	}
	faults.SetBlackhole(false)
	if _, err := conn.Exec("INSERT INTO t (id) VALUES (2)"); err != nil {
		t.Fatalf("statement after network healed: %v", err)
	}

	conn.Close()
	srv.Close()
	db.Close()
	for _, wc := range dialer.Conns() {
		if got := wc.CloseCalls(); got > 1 {
			t.Errorf("connection closed %d times", got)
		}
	}
	if got := fault.Settle(baseline, 2*time.Second); got > baseline {
		t.Errorf("goroutines leaked: %d, baseline %d", got, baseline)
	}
}

// TestDropRecovery: a hard partition (every op errors immediately) drops
// the pooled connection; once the partition heals the driver dials fresh
// and continues.
func TestDropRecovery(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	srv := server.New(db, server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	faults := &fault.Faults{}
	dialer := &fault.Dialer{Faults: faults}
	conn, err := Dial(srv.Addr(), Options{DialRetries: 2, RetryBackoff: 10 * time.Millisecond, Dialer: dialer.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}

	faults.SetDrop(true)
	// Both the pooled conn and fresh dials are dropped: the statement
	// fails with a bounded number of retries rather than hanging.
	done := make(chan error, 1)
	go func() { done <- conn.Ping() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ping through hard partition succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ping did not return under partition: retries unbounded?")
	}

	faults.SetDrop(false)
	if err := conn.Ping(); err != nil {
		t.Fatalf("ping after partition healed: %v", err)
	}
	if mp := conn.Metrics().Counter("client.pool_misses").Value(); mp == 0 {
		t.Error("recovery should have dialed a fresh connection")
	}
}

// The liveness probe must keep a healthy idle pool intact (no false
// positives that would churn connections).
func TestProbeKeepsHealthyConns(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	srv := server.New(db, server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		if err := conn.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if stale := conn.Metrics().Counter("client.stale_conns").Value(); stale != 0 {
		t.Fatalf("probe falsely declared %d healthy conns dead", stale)
	}
	if dials := conn.Metrics().Counter("client.dials").Value(); dials != 1 {
		t.Fatalf("healthy sequential pings dialed %d times, want 1", dials)
	}
}
