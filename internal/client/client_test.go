package client

import (
	"net"
	"sync"
	"testing"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/server"
	"ediflow/internal/types"
)

func start(t *testing.T) (*server.Server, *database.DB) {
	t.Helper()
	db := database.MustOpenMemory()
	srv := server.New(db, server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

// Dial must retry with backoff while the server comes up — the paper's
// peers survive the DBMS machine booting after them.
func TestDialRetryBackoff(t *testing.T) {
	// Reserve an address, then free it so the first attempts fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	db := database.MustOpenMemory()
	defer db.Close()
	srv := server.New(db, server.Config{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		if err := srv.Listen(addr); err != nil {
			t.Error(err)
		}
	}()
	defer srv.Close()

	start := time.Now()
	conn, err := Dial(addr, Options{DialRetries: 10, RetryBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial with retries failed after %v: %v", time.Since(start), err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailsFastWithoutServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, Options{DialRetries: -1, DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial to dead address must fail")
	}
}

// The pool must reuse connections rather than redialing per request.
func TestPoolReusesConnections(t *testing.T) {
	srv, _ := start(t)
	conn, err := Dial(srv.Addr(), Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 50; i++ {
		if err := conn.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if acc := srv.Accepted(); acc != 1 {
		t.Fatalf("sequential pings used %d TCP connections, want 1", acc)
	}
}

// Concurrent use grows the pool but stays bounded by demand.
func TestPoolConcurrentUse(t *testing.T) {
	srv, _ := start(t)
	conn, err := Dial(srv.Addr(), Options{PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("CREATE TABLE p (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := int64(g*10 + i)
				if _, err := conn.Exec("INSERT INTO p VALUES (?)", types.NewInt(id)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	n, err := conn.QueryInt("SELECT COUNT(*) FROM p")
	if err != nil || n != 160 {
		t.Fatalf("count %d, %v", n, err)
	}
}

func TestInsertRowRoundTrip(t *testing.T) {
	srv, db := start(t)
	conn, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("CREATE TABLE ir (id INT PRIMARY KEY, name STRING, v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	tid, err := conn.InsertRow("ir", map[string]types.Value{
		"id": types.NewInt(7), "name": types.NewString("x"), "v": types.NewFloat(1.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tid <= 0 {
		t.Fatalf("tid %d", tid)
	}
	name, err := db.QueryString("SELECT name FROM ir WHERE id = 7")
	if err != nil || name != "x" {
		t.Fatalf("%q %v", name, err)
	}
}

func TestUseAfterCloseFails(t *testing.T) {
	srv, _ := start(t)
	conn, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := conn.Ping(); err == nil {
		t.Fatal("ping after Close must fail")
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestClientTxnAPI(t *testing.T) {
	srv, db := start(t)
	conn, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("CREATE TABLE tb (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Begin(); err == nil {
		t.Fatal("nested Begin must fail")
	}
	if _, err := conn.Exec("INSERT INTO tb VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rollback(); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM tb")
	if n != 0 {
		t.Fatalf("rollback left %d rows", n)
	}
	if err := conn.Commit(); err == nil {
		t.Fatal("commit without txn must fail")
	}
	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO tb VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Commit(); err != nil {
		t.Fatal(err)
	}
	n, _ = db.QueryInt("SELECT COUNT(*) FROM tb")
	if n != 1 {
		t.Fatalf("commit left %d rows", n)
	}
}
