//go:build !unix

package client

import "net"

// connAlive cannot probe the socket without unix raw-conn support;
// assume alive and rely on roundTrip's safe write-retry to recover
// from a stale pooled connection.
func connAlive(net.Conn) bool { return true }
