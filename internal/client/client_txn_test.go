package client

import (
	"strings"
	"testing"
)

// metric reads one counter value from a registry snapshot.
func metric(c *Conn, name string) int64 {
	for _, s := range c.Metrics().Snapshot() {
		if s.Name == name {
			return s.Count
		}
	}
	return 0
}

// TestCommitServerErrorReleasesConn reproduces the connection leak: the
// server answers COMMIT with an error frame (transaction already gone
// server-side), which used to leave the pinned connection orphaned —
// neither pooled nor closed. The conn must now be unpinned and discarded.
func TestCommitServerErrorReleasesConn(t *testing.T) {
	srv, db := start(t)
	conn, err := Dial(srv.Addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("CREATE TABLE leak_t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	// Sabotage: roll the engine's transaction back behind the server's
	// back, so the client's COMMIT draws an error frame on a perfectly
	// healthy wire connection.
	if _, err := db.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	err = conn.Commit()
	if err == nil || !strings.Contains(err.Error(), "transaction") {
		t.Fatalf("Commit err = %v, want server-side transaction error", err)
	}

	conn.mu.Lock()
	txn, idle := conn.txn, len(conn.idle)
	conn.mu.Unlock()
	if txn != nil {
		t.Fatal("connection still pinned after failed COMMIT")
	}
	if idle != 0 {
		t.Fatalf("failed-COMMIT connection returned to pool (%d idle)", idle)
	}
	if got := metric(conn, "client.txn_discards"); got != 1 {
		t.Fatalf("client.txn_discards = %d, want 1", got)
	}

	// The driver recovers: the next statement dials a fresh connection
	// and runs outside any transaction. (DDL is not transactional here,
	// so leak_t survived the rollback.)
	if err := conn.Ping(); err != nil {
		t.Fatalf("Ping after failed COMMIT: %v", err)
	}
	if _, err := conn.Exec("INSERT INTO leak_t VALUES (1)"); err != nil {
		t.Fatalf("statement after failed COMMIT: %v", err)
	}
}

// TestCommitServerDeathUnpins kills the server mid-transaction: COMMIT
// fails with a transport error and the dead connection must not remain
// pinned or pooled.
func TestCommitServerDeathUnpins(t *testing.T) {
	srv, _ := start(t)
	conn, err := Dial(srv.Addr(), Options{DialRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	srv.Close() // the server dies, taking the pinned connection with it

	if err := conn.Commit(); err == nil {
		t.Fatal("Commit against a dead server succeeded")
	}
	conn.mu.Lock()
	txn, idle := conn.txn, len(conn.idle)
	conn.mu.Unlock()
	if txn != nil {
		t.Fatal("dead connection still pinned")
	}
	if idle != 0 {
		t.Fatalf("dead connection pooled (%d idle)", idle)
	}
	// A fresh Begin reports a dial failure rather than wedging on the
	// stale pin.
	if err := conn.Begin(); err == nil {
		t.Fatal("Begin against a dead server succeeded")
	}
	if got := metric(conn, "client.dial_errors"); got == 0 {
		t.Fatal("dial_errors not recorded")
	}
}
