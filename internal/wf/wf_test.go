package wf

import (
	"strings"
	"testing"

	"ediflow/internal/types"
)

const sampleXML = `
<process name="copubs">
  <configuration driver="edidb" uri="" user="ana"/>
  <constant name="threshold" value="0.05"/>
  <variable name="n" type="int"/>
  <variable name="answer" type="string"/>
  <relation name="authors" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="name" type="string"/>
  </relation>
  <relation name="scratch" temporary="true">
    <attribute name="k" type="string"/>
  </relation>
  <function name="layout" class="layout.EdgeLinLog"/>
  <body>
    <sequence>
      <activity name="load" group="engineers">
        <runQuery>INSERT INTO authors (id, name) VALUES (1, 'noack')</runQuery>
      </activity>
      <activity name="count"><assign variable="n" value="(SELECT COUNT(*) FROM authors)"/></activity>
      <if condition="n &gt; 0">
        <activity name="mark"><update>UPDATE authors SET name = UPPER(name)</update></activity>
      </if>
      <andSplit>
        <branch>
          <activity name="left"><runQuery>SELECT * FROM authors</runQuery></activity>
        </branch>
        <branch>
          <activity name="right"><runQuery>SELECT * FROM authors</runQuery></activity>
        </branch>
      </andSplit>
      <orSplit>
        <branch condition="n &gt; 100">
          <activity name="big"><runQuery>SELECT * FROM authors</runQuery></activity>
        </branch>
        <branch>
          <activity name="small"><runQuery>SELECT * FROM authors</runQuery></activity>
        </branch>
      </orSplit>
      <activity name="vis">
        <callFunction name="layout" inputs="authors" outputs="scratch"/>
      </activity>
      <activity name="confirm" group="analysts">
        <askUser prompt="Accept the layout?" bindTo="answer"/>
      </activity>
    </sequence>
  </body>
  <updatePropagation relation="authors" activity="vis" scope="ra"/>
  <updatePropagation relation="authors" activity="vis" scope="ta-rp"/>
</process>`

func TestParseXMLFull(t *testing.T) {
	p, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "copubs" || p.Config.User != "ana" {
		t.Fatalf("%+v", p)
	}
	if len(p.Constants) != 1 || p.Constants[0].Value != "0.05" {
		t.Fatalf("%+v", p.Constants)
	}
	if len(p.Variables) != 2 || p.Variables[0].Type != types.KindInt {
		t.Fatalf("%+v", p.Variables)
	}
	if len(p.Relations) != 2 || !p.Relations[1].Temporary || p.Relations[0].PrimaryKey != "id" {
		t.Fatalf("%+v", p.Relations)
	}
	acts := p.AllActivities()
	names := make([]string, len(acts))
	for i, a := range acts {
		names[i] = a.Name
	}
	if strings.Join(names, " ") != "load count mark left right big small vis confirm" {
		t.Fatalf("order: %v", names)
	}
	if len(p.UPs) != 2 || p.UPs[0].Scope != ScopeRunning || p.UPs[1].Scope != ScopeTerminatedRunning {
		t.Fatalf("%+v", p.UPs)
	}
	// Structured body shape.
	seq := p.Body.(*Sequence)
	if len(seq.Children) != 7 {
		t.Fatalf("sequence children: %d", len(seq.Children))
	}
	if _, ok := seq.Children[2].(*If); !ok {
		t.Fatalf("child 2: %T", seq.Children[2])
	}
	and := seq.Children[3].(*AndSplit)
	if len(and.Branches) != 2 {
		t.Fatalf("and branches: %d", len(and.Branches))
	}
	or := seq.Children[4].(*OrSplit)
	if or.Conditions[0] != "n > 100" || or.Conditions[1] != "" {
		t.Fatalf("or conditions: %v", or.Conditions)
	}
	vis, _ := p.ActivityByName("vis")
	if vis.Kind != KindCall || vis.Function != "layout" || vis.Inputs[0] != "authors" {
		t.Fatalf("%+v", vis)
	}
	confirm, _ := p.ActivityByName("confirm")
	if confirm.Kind != KindAskUser || confirm.Group != "analysts" || confirm.BindTo != "answer" {
		t.Fatalf("%+v", confirm)
	}
}

func TestParseScope(t *testing.T) {
	good := map[string]Scope{
		"ra": ScopeRunning, "TA-RP": ScopeTerminatedRunning,
		"ta-tp": ScopeTerminatedTerminated, " fa-rp ": ScopeFutureRunning,
	}
	for s, want := range good {
		got, err := ParseScope(s)
		if err != nil || got != want {
			t.Errorf("ParseScope(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScope("everything"); err == nil {
		t.Error("bad scope must fail")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"no body", `<process name="p"><body></body></process>`},
		{"empty sequence", `<process name="p"><body><sequence></sequence></body></process>`},
		{"unnamed process", `<process><body><activity name="a"><runQuery>SELECT 1</runQuery></activity></body></process>`},
		{"duplicate activities", `<process name="p"><body><sequence>
			<activity name="a"><runQuery>SELECT 1</runQuery></activity>
			<activity name="a"><runQuery>SELECT 1</runQuery></activity>
		</sequence></body></process>`},
		{"undeclared function", `<process name="p"><body>
			<activity name="a"><callFunction name="nope"/></activity></body></process>`},
		{"undeclared variable", `<process name="p"><body>
			<activity name="a"><assign variable="v" value="1"/></activity></body></process>`},
		{"bad UP scope", `<process name="p"><body>
			<activity name="a"><runQuery>SELECT 1</runQuery></activity></body>
			<updatePropagation relation="r" activity="a" scope="xx"/></process>`},
		{"UP unknown activity", `<process name="p">
			<relation name="r"><attribute name="x" type="int"/></relation>
			<body><activity name="a"><runQuery>SELECT 1</runQuery></activity></body>
			<updatePropagation relation="r" activity="zz" scope="ra"/></process>`},
		{"single-branch andSplit", `<process name="p"><body><andSplit>
			<branch><activity name="a"><runQuery>SELECT 1</runQuery></activity></branch>
		</andSplit></body></process>`},
		{"activity with two expressions", `<process name="p"><body>
			<activity name="a"><runQuery>SELECT 1</runQuery><askUser prompt="x"/></activity></body></process>`},
		{"bad variable type", `<process name="p"><variable name="v" type="frob"/>
			<body><activity name="a"><runQuery>SELECT 1</runQuery></activity></body></process>`},
		{"if without condition", `<process name="p"><body><if>
			<activity name="a"><runQuery>SELECT 1</runQuery></activity></if></body></process>`},
	}
	for _, c := range cases {
		if _, err := ParseXMLString(c.xml); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBranchWrapping(t *testing.T) {
	p, err := ParseXMLString(`<process name="p"><body><andSplit>
		<branch>
			<activity name="a1"><runQuery>SELECT 1</runQuery></activity>
			<activity name="a2"><runQuery>SELECT 1</runQuery></activity>
		</branch>
		<branch><activity name="b"><runQuery>SELECT 1</runQuery></activity></branch>
	</andSplit></body></process>`)
	if err != nil {
		t.Fatal(err)
	}
	and := p.Body.(*AndSplit)
	if _, ok := and.Branches[0].(*Sequence); !ok {
		t.Fatalf("multi-child branch should wrap in Sequence: %T", and.Branches[0])
	}
	if _, ok := and.Branches[1].(*Activity); !ok {
		t.Fatalf("single-child branch should stay bare: %T", and.Branches[1])
	}
}

func TestLookupHelpers(t *testing.T) {
	p, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.ActivityByName("VIS"); !ok {
		t.Error("case-insensitive activity lookup")
	}
	if _, ok := p.FunctionByName("layout"); !ok {
		t.Error("function lookup")
	}
	if _, ok := p.RelationByName("authors"); !ok {
		t.Error("relation lookup")
	}
	if _, ok := p.RelationByName("nope"); ok {
		t.Error("unknown relation must not resolve")
	}
}

// Marshal → parse round-trip: the serialized form reconstructs an
// equivalent process.
func TestMarshalXMLRoundTrip(t *testing.T) {
	p, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalXML(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseXMLString(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, out)
	}
	if back.Name != p.Name || len(back.AllActivities()) != len(p.AllActivities()) {
		t.Fatalf("structure lost: %s", out)
	}
	if len(back.UPs) != len(p.UPs) || back.UPs[0] != p.UPs[0] {
		t.Fatalf("UPs lost: %+v", back.UPs)
	}
	if len(back.Relations) != 2 || !back.Relations[1].Temporary {
		t.Fatalf("relations lost: %+v", back.Relations)
	}
	// Fixed point: marshal(parse(marshal(p))) == marshal(p).
	out2, err := MarshalXML(back)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Fatalf("marshal not a fixed point:\n%s\n---\n%s", out, out2)
	}
	// SQL with XML-special characters survives.
	mark, _ := back.ActivityByName("mark")
	if mark.SQL != "UPDATE authors SET name = UPPER(name)" {
		t.Fatalf("SQL mangled: %q", mark.SQL)
	}
}

func TestMarshalXMLEscaping(t *testing.T) {
	p := &Process{
		Name: "esc",
		Body: &Activity{Name: "q", Kind: KindRunQuery, SQL: "SELECT * FROM t WHERE a < 3 AND b > 1"},
	}
	out, err := MarshalXML(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseXMLString(out)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := back.ActivityByName("q")
	if a.SQL != p.Body.(*Activity).SQL {
		t.Fatalf("escaping broke SQL: %q", a.SQL)
	}
}

func TestMarshalXMLRejectsInvalid(t *testing.T) {
	if _, err := MarshalXML(&Process{Name: ""}); err == nil {
		t.Fatal("invalid process must not marshal")
	}
}
