// Package react compiles the process model's update-propagation (UP)
// actions into DBMS statement-level triggers, exactly as §VI-B describes:
// "EdiFlow compiles the UP statements into statement-level triggers which
// it installs in the underlying DBMS. The trigger calls EdiFlow routines
// implementing the desired behavior."
//
// The Router owns the trigger side; the enactment engine implements
// Target and performs the per-scope routing (invoking running-handlers,
// finished-handlers, or extending future instances' snapshots).
package react

import (
	"fmt"
	"strings"
	"sync"

	"ediflow/internal/database"
	"ediflow/internal/engine"
	"ediflow/internal/module"
	"ediflow/internal/wf"
)

// Target receives deltas routed by UP actions, tagged with the owning
// process name.
type Target interface {
	RouteDelta(process string, up wf.UP, d module.Delta)
}

// Router installs triggers for UP actions and forwards fired events. One
// trigger set (INSERT/UPDATE/DELETE) is installed per watched relation;
// its handler fans the delta out to every UP subscription on that
// relation.
type Router struct {
	db *database.DB

	mu        sync.Mutex
	subs      map[string][]subscription // lower-cased relation → subscriptions
	triggered map[string]bool           // relations whose triggers are installed
}

type subscription struct {
	process string
	up      wf.UP
	target  Target
}

// NewRouter returns a router over db.
func NewRouter(db *database.DB) *Router {
	return &Router{db: db, subs: map[string][]subscription{}, triggered: map[string]bool{}}
}

// handlerName derives the Go-handler name for a relation's UP triggers.
// Relation names may contain characters invalid in SQL identifiers
// (e.g. '-'), so everything is sanitized.
func handlerName(relation string) string {
	return sanitizeIdent("ef_up_" + strings.ToLower(relation))
}

// sanitizeIdent maps every non-identifier byte to '_'.
func sanitizeIdent(s string) string {
	out := []byte(s)
	for i, b := range out {
		ok := b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}

// Register installs the UP action for a deployed process: one trigger per
// DML event on the watched relation, each calling a named Go handler that
// routes the delta to the target. Registration is idempotent per
// (process, UP) pair.
func (r *Router) Register(process string, up wf.UP, target Target) error {
	rel := strings.ToLower(up.Relation)
	r.mu.Lock()
	for i := range r.subs[rel] {
		if r.subs[rel][i].process == process && r.subs[rel][i].up == up {
			// Already registered: refresh the target (redeploy).
			r.subs[rel][i].target = target
			r.mu.Unlock()
			return nil
		}
	}
	r.subs[rel] = append(r.subs[rel], subscription{process: process, up: up, target: target})
	installed := r.triggered[rel]
	r.triggered[rel] = true
	r.mu.Unlock()

	hname := handlerName(up.Relation)
	r.db.RegisterHandler(hname, func(ev engine.ChangeEvent) {
		r.fire(rel, ev)
	})
	if installed {
		return nil
	}
	// Install the statement-level triggers once per relation (skip those
	// that survived a restart in the catalog).
	existing := map[string]bool{}
	for _, t := range r.db.Catalog().AllTriggers() {
		existing[strings.ToLower(t.Name)] = true
	}
	for _, op := range []string{"INSERT", "UPDATE", "DELETE"} {
		tname := hname + "_" + strings.ToLower(op)
		if existing[strings.ToLower(tname)] {
			continue
		}
		stmt := fmt.Sprintf("CREATE TRIGGER %s AFTER %s ON %s CALL '%s'", tname, op, up.Relation, hname)
		if _, err := r.db.Exec(stmt); err != nil {
			return fmt.Errorf("react: installing trigger: %w", err)
		}
	}
	return nil
}

// fire forwards one change event to every subscription on the relation.
// Multiple UP actions on the same relation each receive the delta (the
// paper allows several compensation actions per ⟨ΔR, a⟩).
func (r *Router) fire(rel string, ev engine.ChangeEvent) {
	r.mu.Lock()
	subs := append([]subscription(nil), r.subs[rel]...)
	r.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	d := module.Delta{
		Table:   ev.Table,
		Op:      ev.Op,
		Seq:     ev.Seq,
		TIDs:    ev.TIDs,
		Rows:    ev.Rows,
		OldRows: ev.OldRows,
	}
	for _, s := range subs {
		s.target.RouteDelta(s.process, s.up, d)
	}
}

// Unregister drops the subscriptions of one process (triggers stay
// installed but become inert since the handler finds no subscription).
func (r *Router) Unregister(process string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for rel, subs := range r.subs {
		kept := subs[:0]
		for _, s := range subs {
			if s.process != process {
				kept = append(kept, s)
			}
		}
		r.subs[rel] = kept
	}
}

// Subscriptions returns the number of active subscriptions (testing aid).
func (r *Router) Subscriptions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, subs := range r.subs {
		n += len(subs)
	}
	return n
}
