// Package react compiles the process model's update-propagation (UP)
// actions into DBMS statement-level triggers, exactly as §VI-B describes:
// "EdiFlow compiles the UP statements into statement-level triggers which
// it installs in the underlying DBMS. The trigger calls EdiFlow routines
// implementing the desired behavior."
//
// Delivery is batch-at-a-time: the trigger side registers a batch
// handler, so one dispatch batch produces at most one module.Delta per
// watched relation — the events are coalesced and rows inserted and
// deleted within the batch net out. Each UP subscription owns a bounded
// delta queue drained by a dedicated worker, decoupling handler speed
// from commit speed; when a queue overflows, the UP's declared policy
// decides between merging into the newest queued delta (coalesce, the
// default), dropping the delta (shed) or stalling the dispatcher until
// space frees up (block). All of it is surfaced as react.* metrics.
//
// The Router owns the trigger side; the enactment engine implements
// Target and performs the per-scope routing (invoking running-handlers,
// finished-handlers, or extending future instances' snapshots).
package react

import (
	"fmt"
	"strings"
	"sync"

	"ediflow/internal/database"
	"ediflow/internal/engine"
	"ediflow/internal/metrics"
	"ediflow/internal/module"
	"ediflow/internal/types"
	"ediflow/internal/wf"
)

// DefaultQueueCap is the per-subscription delta-queue bound.
const DefaultQueueCap = 1024

// Target receives deltas routed by UP actions, tagged with the owning
// process name.
type Target interface {
	RouteDelta(process string, up wf.UP, d module.Delta)
}

// Router installs triggers for UP actions and forwards fired events. One
// trigger set (INSERT/UPDATE/DELETE) is installed per watched relation;
// its batch handler coalesces each dispatch batch's events into one
// delta and fans it out to every UP subscription on that relation.
type Router struct {
	db       *database.DB
	queueCap int
	m        routerMetrics
	wg       sync.WaitGroup

	mu        sync.Mutex
	subs      map[string][]*subscription // lower-cased relation → subscriptions
	triggered map[string]bool            // relations whose triggers are installed
	closed    bool
}

type routerMetrics struct {
	batches   *metrics.Counter // batch-handler invocations with subscribers
	events    *metrics.Counter // change events coalesced into deltas
	deltas    *metrics.Counter // deltas enqueued across subscriptions
	cancelled *metrics.Counter // row pairs netted out during coalescing
	coalesced *metrics.Counter // queue-full merges (coalesce policy)
	shed      *metrics.Counter // deltas dropped (shed policy)
	blocked   *metrics.Counter // enqueues that had to wait (block policy)
	delivered *metrics.Counter // deltas handed to targets
	escalated *metrics.Counter // coalesce→block promotions (adaptive overflow)
}

type subscription struct {
	process string
	up      wf.UP
	q       *deltaQueue

	mu     sync.Mutex // target is refreshed on redeploy
	target Target
}

// Option configures a Router.
type Option func(*Router)

// WithQueueCap bounds each subscription's delta queue (minimum 1).
func WithQueueCap(n int) Option {
	return func(r *Router) {
		if n > 0 {
			r.queueCap = n
		}
	}
}

// NewRouter returns a router over db.
func NewRouter(db *database.DB, opts ...Option) *Router {
	r := &Router{
		db:        db,
		queueCap:  DefaultQueueCap,
		subs:      map[string][]*subscription{},
		triggered: map[string]bool{},
	}
	for _, o := range opts {
		o(r)
	}
	reg := db.Metrics()
	r.m = routerMetrics{
		batches:   reg.Counter("react.batches"),
		events:    reg.Counter("react.events"),
		deltas:    reg.Counter("react.deltas"),
		cancelled: reg.Counter("react.cancelled_rows"),
		coalesced: reg.Counter("react.coalesced"),
		shed:      reg.Counter("react.shed"),
		blocked:   reg.Counter("react.blocked"),
		delivered: reg.Counter("react.delivered"),
		escalated: reg.Counter("react.policy_escalations"),
	}
	return r
}

// handlerName derives the Go-handler name for a relation's UP triggers.
// Relation names may contain characters invalid in SQL identifiers
// (e.g. '-'), so everything is sanitized.
func handlerName(relation string) string {
	return sanitizeIdent("ef_up_" + strings.ToLower(relation))
}

// sanitizeIdent maps every non-identifier byte to '_'.
func sanitizeIdent(s string) string {
	out := []byte(s)
	for i, b := range out {
		ok := b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}

// Register installs the UP action for a deployed process: one trigger per
// DML event on the watched relation, each calling a named batch handler
// that coalesces and routes deltas to the target. Registration is
// idempotent per (process, UP) pair.
func (r *Router) Register(process string, up wf.UP, target Target) error {
	rel := strings.ToLower(up.Relation)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("react: router closed")
	}
	for _, s := range r.subs[rel] {
		if s.process == process && s.up == up {
			// Already registered: refresh the target (redeploy).
			s.mu.Lock()
			s.target = target
			s.mu.Unlock()
			r.mu.Unlock()
			return nil
		}
	}
	sub := &subscription{
		process: process,
		up:      up,
		target:  target,
		q:       newDeltaQueue(r.queueCap, up.Policy),
	}
	r.subs[rel] = append(r.subs[rel], sub)
	installed := r.triggered[rel]
	r.triggered[rel] = true
	r.wg.Add(1)
	r.mu.Unlock()
	go sub.run(r)

	hname := handlerName(up.Relation)
	r.db.RegisterBatchHandler(hname, func(events []engine.ChangeEvent) {
		r.fireBatch(rel, events)
	})
	if installed {
		return nil
	}
	// Install the statement-level triggers once per relation (skip those
	// that survived a restart in the catalog).
	existing := map[string]bool{}
	for _, t := range r.db.Catalog().AllTriggers() {
		existing[strings.ToLower(t.Name)] = true
	}
	for _, op := range []string{"INSERT", "UPDATE", "DELETE"} {
		tname := hname + "_" + strings.ToLower(op)
		if existing[strings.ToLower(tname)] {
			continue
		}
		stmt := fmt.Sprintf("CREATE TRIGGER %s AFTER %s ON %s CALL '%s'", tname, op, up.Relation, hname)
		if _, err := r.db.Exec(stmt); err != nil {
			return fmt.Errorf("react: installing trigger: %w", err)
		}
	}
	return nil
}

// fireBatch coalesces one dispatch batch's events for a relation into a
// single delta and enqueues it on every subscription. Multiple UP actions
// on the same relation each receive the delta (the paper allows several
// compensation actions per ⟨ΔR, a⟩).
func (r *Router) fireBatch(rel string, events []engine.ChangeEvent) {
	r.mu.Lock()
	subs := append([]*subscription(nil), r.subs[rel]...)
	r.mu.Unlock()
	if len(subs) == 0 || len(events) == 0 {
		return
	}
	r.m.batches.Inc()
	r.m.events.Add(int64(len(events)))
	d, cancelled := coalesceEvents(events)
	r.m.cancelled.Add(int64(cancelled))
	if len(d.Rows) == 0 && len(d.OldRows) == 0 {
		return // the batch netted out to nothing
	}
	for _, s := range subs {
		if s.q.enqueue(d, &r.m) {
			r.m.deltas.Inc()
		}
	}
}

// coalesceEvents folds a relation's share of one dispatch batch into a
// single delta: updates contribute to both sides, and rows inserted and
// deleted within the batch cancel pairwise. Returns the delta and the
// number of cancelled pairs.
func coalesceEvents(events []engine.ChangeEvent) (module.Delta, int) {
	d := module.Delta{Table: events[0].Table, Op: events[0].Op, Events: len(events)}
	var insT, delT []int64
	var ins, del []types.Row
	for _, ev := range events {
		if ev.Seq > d.Seq {
			d.Seq = ev.Seq
		}
		if ev.Op != d.Op {
			d.Op = engine.OpBatch
		}
		switch ev.Op {
		case engine.OpInsert:
			insT = append(insT, ev.TIDs...)
			ins = append(ins, ev.Rows...)
		case engine.OpDelete:
			delT = append(delT, ev.TIDs...)
			del = append(del, ev.OldRows...)
		case engine.OpUpdate:
			insT = append(insT, ev.TIDs...)
			ins = append(ins, ev.Rows...)
			delT = append(delT, ev.TIDs...)
			del = append(del, ev.OldRows...)
		}
	}
	var cancelled int
	d.TIDs, d.Rows, d.OldTIDs, d.OldRows, cancelled = netCancel(insT, ins, delT, del)
	return d, cancelled
}

// netCancel cancels value-equal pairs across the inserted and deleted
// sides (multiset semantics via types.RowKey), keeping tuple ids aligned
// with their rows. Because a multiset delta is order-free, a delete is
// allowed to cancel an insert that came later in the batch: the net
// table contents are identical either way.
func netCancel(insT []int64, ins []types.Row, delT []int64, del []types.Row) ([]int64, []types.Row, []int64, []types.Row, int) {
	if len(ins) == 0 || len(del) == 0 {
		return insT, ins, delT, del, 0
	}
	delCount := make(map[string]int, len(del))
	for _, row := range del {
		delCount[types.RowKey(row)]++
	}
	consumed := map[string]int{}
	cancelled := 0
	var nIT []int64
	var nI []types.Row
	for i, row := range ins {
		k := types.RowKey(row)
		if delCount[k] > 0 {
			delCount[k]--
			consumed[k]++
			cancelled++
			continue
		}
		nI = append(nI, row)
		if i < len(insT) {
			nIT = append(nIT, insT[i])
		}
	}
	if cancelled == 0 {
		return insT, ins, delT, del, 0
	}
	var nDT []int64
	var nD []types.Row
	for i, row := range del {
		k := types.RowKey(row)
		if consumed[k] > 0 {
			consumed[k]--
			continue
		}
		nD = append(nD, row)
		if i < len(delT) {
			nDT = append(nDT, delT[i])
		}
	}
	return nIT, nI, nDT, nD, cancelled
}

// eventCount treats hand-built deltas (Events == 0) as covering one event.
func eventCount(d module.Delta) int {
	if d.Events <= 0 {
		return 1
	}
	return d.Events
}

// mergeDeltas merges a newer delta b into an already-queued delta a
// (coalesce overflow policy), re-netting the combined sides.
func mergeDeltas(a, b module.Delta) module.Delta {
	out := module.Delta{Table: a.Table, Op: a.Op, Seq: a.Seq, Events: eventCount(a) + eventCount(b)}
	if b.Op != out.Op {
		out.Op = engine.OpBatch
	}
	if b.Seq > out.Seq {
		out.Seq = b.Seq
	}
	insT := append(append([]int64(nil), a.TIDs...), b.TIDs...)
	ins := append(append([]types.Row(nil), a.Rows...), b.Rows...)
	delT := append(append([]int64(nil), a.OldTIDs...), b.OldTIDs...)
	del := append(append([]types.Row(nil), a.OldRows...), b.OldRows...)
	out.TIDs, out.Rows, out.OldTIDs, out.OldRows, _ = netCancel(insT, ins, delT, del)
	return out
}

// Adaptive overflow escalation: a coalesce queue that stays above
// high-water for this many consecutive worker drains is a handler that
// persistently cannot keep up — merged deltas grow without bound while
// the producer never feels backpressure. The queue then promotes itself
// to block until it fully drains, surfacing the stall to committers
// (react.policy_escalations counts the promotions).
const (
	escalateAfter = 8 // consecutive hot drains before coalesce→block
)

// queueHighWater is the occupancy at which a drain counts as hot: 3/4
// of capacity.
func queueHighWater(cap int) int { return cap - cap/4 }

// deltaQueue is one subscription's bounded FIFO of pending deltas, a
// fixed ring drained by the subscription worker.
type deltaQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	buf       []module.Delta
	head      int
	n         int
	policy    wf.Policy // declared policy (from the UP spec)
	escalated bool      // coalesce temporarily promoted to block
	hot       int       // consecutive drains at/above high-water
	closed    bool
	busy      bool // worker is mid-delivery
}

func newDeltaQueue(cap int, policy wf.Policy) *deltaQueue {
	q := &deltaQueue{buf: make([]module.Delta, cap), policy: policy}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// enqueue adds d, applying the overflow policy when full. Reports whether
// the delta was accepted (merging under coalesce counts as accepted).
// Note that the block policy stalls the calling dispatcher — backpressure
// reaches committers and every downstream observer, and a handler that
// writes to its own watched relation from inside the blocked queue's
// worker would deadlock; such self-feeding handlers must use coalesce or
// shed.
func (q *deltaQueue) enqueue(d module.Delta, m *routerMetrics) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) && !q.closed {
		pol := q.policy
		if q.escalated {
			pol = wf.PolicyBlock
		}
		switch pol {
		case wf.PolicyShed:
			m.shed.Inc()
			return false
		case wf.PolicyBlock:
			m.blocked.Inc()
			q.cond.Wait()
		default: // coalesce
			last := (q.head + q.n - 1) % len(q.buf)
			q.buf[last] = mergeDeltas(q.buf[last], d)
			m.coalesced.Inc()
			return true
		}
	}
	if q.closed {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = d
	q.n++
	q.cond.Broadcast()
	return true
}

// close wakes the worker and any blocked producers; queued deltas are
// still drained before the worker exits.
func (q *deltaQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// drained blocks until the queue is empty and the worker idle.
func (q *deltaQueue) drained() {
	q.mu.Lock()
	for q.n > 0 || q.busy {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// run is the subscription worker: it drains the queue in FIFO order,
// delivering one delta at a time so each UP sees its deltas serialized
// in commit order.
func (s *subscription) run(r *Router) {
	defer r.wg.Done()
	q := s.q
	for {
		q.mu.Lock()
		for q.n == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.n == 0 {
			q.mu.Unlock()
			return // closed and drained
		}
		d := q.buf[q.head]
		q.buf[q.head] = module.Delta{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.busy = true
		// Adaptive overflow: count consecutive drains that still leave
		// the queue at/above high-water; a declared-coalesce queue that
		// stays hot promotes itself to block until it fully drains.
		switch {
		case q.n >= queueHighWater(len(q.buf)):
			q.hot++
			// "" is the unparsed default and also means coalesce.
			if q.hot >= escalateAfter && !q.escalated &&
				(q.policy == wf.PolicyCoalesce || q.policy == "") {
				q.escalated = true
				r.m.escalated.Inc()
			}
		case q.n == 0:
			q.hot = 0
			q.escalated = false
		default:
			q.hot = 0
		}
		q.cond.Broadcast() // space freed: wake blocked producers
		q.mu.Unlock()

		s.mu.Lock()
		t := s.target
		s.mu.Unlock()
		if t != nil {
			t.RouteDelta(s.process, s.up, d)
			r.m.delivered.Inc()
		}

		q.mu.Lock()
		q.busy = false
		q.cond.Broadcast() // idle: wake Quiesce waiters
		q.mu.Unlock()
	}
}

// Quiesce blocks until every subscription's queue is empty and its worker
// idle — every delta enqueued before the call has been delivered. New
// deltas may of course arrive concurrently; callers wanting a stable
// state stop writing first.
func (r *Router) Quiesce() {
	r.mu.Lock()
	var qs []*deltaQueue
	for _, subs := range r.subs {
		for _, s := range subs {
			qs = append(qs, s.q)
		}
	}
	r.mu.Unlock()
	for _, q := range qs {
		q.drained()
	}
}

// Unregister drops the subscriptions of one process (triggers stay
// installed but become inert since the handler finds no subscription).
// The dropped subscriptions' workers drain their queues and exit.
func (r *Router) Unregister(process string) {
	r.mu.Lock()
	var dropped []*subscription
	for rel, subs := range r.subs {
		kept := subs[:0]
		for _, s := range subs {
			if s.process != process {
				kept = append(kept, s)
			} else {
				dropped = append(dropped, s)
			}
		}
		r.subs[rel] = kept
	}
	r.mu.Unlock()
	for _, s := range dropped {
		s.q.close()
	}
}

// Close stops every subscription worker after it drains its queue and
// waits for them to exit. The router accepts no registrations afterwards.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var qs []*deltaQueue
	for _, subs := range r.subs {
		for _, s := range subs {
			qs = append(qs, s.q)
		}
	}
	r.mu.Unlock()
	for _, q := range qs {
		q.close()
	}
	r.wg.Wait()
}

// Subscriptions returns the number of active subscriptions (testing aid).
func (r *Router) Subscriptions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, subs := range r.subs {
		n += len(subs)
	}
	return n
}
