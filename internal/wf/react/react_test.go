package react

import (
	"sync"
	"testing"

	"ediflow/internal/database"
	"ediflow/internal/module"
	"ediflow/internal/wf"
)

type recorder struct {
	mu     sync.Mutex
	deltas []module.Delta
	procs  []string
	ups    []wf.UP
}

func (r *recorder) RouteDelta(process string, up wf.UP, d module.Delta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs = append(r.procs, process)
	r.ups = append(r.ups, up)
	r.deltas = append(r.deltas, d)
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.deltas)
}

func setup(t *testing.T) (*database.DB, *Router, *recorder) {
	t.Helper()
	db := database.MustOpenMemory()
	t.Cleanup(func() { db.Close() })
	db.Exec("CREATE TABLE src (id INT PRIMARY KEY, v INT)")
	r := NewRouter(db)
	rec := &recorder{}
	return db, r, rec
}

func TestRegisterInstallsTriggers(t *testing.T) {
	db, r, rec := setup(t)
	up := wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	// Three statement-level triggers (insert/update/delete) in the catalog
	// — the paper's "EdiFlow compiles the UP statements into
	// statement-level triggers which it installs in the underlying DBMS".
	trigs := db.Catalog().AllTriggers()
	if len(trigs) != 3 {
		t.Fatalf("triggers: %d", len(trigs))
	}
	if r.Subscriptions() != 1 {
		t.Fatalf("subscriptions: %d", r.Subscriptions())
	}
	// Idempotent re-registration.
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	if len(db.Catalog().AllTriggers()) != 3 || r.Subscriptions() != 1 {
		t.Fatal("re-register must be idempotent")
	}
}

func TestDeltaRouting(t *testing.T) {
	db, r, rec := setup(t)
	up := wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (1, 10), (2, 20)")
	if rec.count() != 1 {
		t.Fatalf("deltas: %d", rec.count())
	}
	d := rec.deltas[0]
	if d.Table != "src" || d.Op != "INSERT" || len(d.Rows) != 2 {
		t.Fatalf("%+v", d)
	}
	if rec.procs[0] != "proc" || rec.ups[0] != up {
		t.Fatalf("%v %v", rec.procs, rec.ups)
	}
	db.Exec("UPDATE src SET v = 11 WHERE id = 1")
	db.Exec("DELETE FROM src WHERE id = 2")
	if rec.count() != 3 {
		t.Fatalf("deltas after update+delete: %d", rec.count())
	}
	if rec.deltas[1].Op != "UPDATE" || len(rec.deltas[1].OldRows) != 1 {
		t.Fatalf("%+v", rec.deltas[1])
	}
	if rec.deltas[2].Op != "DELETE" {
		t.Fatalf("%+v", rec.deltas[2])
	}
}

// Multiple UP actions on the same relation each receive the delta ("it is
// possible to specify more than one compensation action for a given ΔR
// and a given activity a").
func TestMultipleUPActionsSameRelation(t *testing.T) {
	db, r, rec := setup(t)
	r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}, rec)
	r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeFutureRunning}, rec)
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	if rec.count() != 2 {
		t.Fatalf("deltas: %d", rec.count())
	}
}

func TestUnregisterSilences(t *testing.T) {
	db, r, rec := setup(t)
	r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}, rec)
	r.Unregister("proc")
	if r.Subscriptions() != 0 {
		t.Fatal("subscription survived unregister")
	}
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	if rec.count() != 0 {
		t.Fatal("delta routed after unregister")
	}
}

func TestSanitizedIdentifiers(t *testing.T) {
	db, r, rec := setup(t)
	// Process and activity names with characters invalid in SQL idents.
	up := wf.UP{Relation: "src", Activity: "lay-out.2", Scope: wf.ScopeTerminatedRunning}
	if err := r.Register("my-proc", up, rec); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (9, 9)")
	if rec.count() != 1 {
		t.Fatalf("deltas: %d", rec.count())
	}
}
