package react

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/engine"
	"ediflow/internal/module"
	"ediflow/internal/wf"
)

type recorder struct {
	mu     sync.Mutex
	deltas []module.Delta
	procs  []string
	ups    []wf.UP

	// Optional worker gates: started signals each delivery's begin,
	// release must be fed once per delivery to let it finish.
	started chan struct{}
	release chan struct{}
}

func (r *recorder) RouteDelta(process string, up wf.UP, d module.Delta) {
	if r.started != nil {
		r.started <- struct{}{}
	}
	if r.release != nil {
		<-r.release
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs = append(r.procs, process)
	r.ups = append(r.ups, up)
	r.deltas = append(r.deltas, d)
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.deltas)
}

func (r *recorder) delta(i int) module.Delta {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deltas[i]
}

func setup(t *testing.T, opts ...Option) (*database.DB, *Router, *recorder) {
	t.Helper()
	db := database.MustOpenMemory()
	r := NewRouter(db, opts...)
	t.Cleanup(func() { r.Close(); db.Close() })
	db.Exec("CREATE TABLE src (id INT PRIMARY KEY, v INT)")
	rec := &recorder{}
	return db, r, rec
}

func TestRegisterInstallsTriggers(t *testing.T) {
	db, r, rec := setup(t)
	up := wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	// Three statement-level triggers (insert/update/delete) in the catalog
	// — the paper's "EdiFlow compiles the UP statements into
	// statement-level triggers which it installs in the underlying DBMS".
	trigs := db.Catalog().AllTriggers()
	if len(trigs) != 3 {
		t.Fatalf("triggers: %d", len(trigs))
	}
	if r.Subscriptions() != 1 {
		t.Fatalf("subscriptions: %d", r.Subscriptions())
	}
	// Idempotent re-registration.
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	if len(db.Catalog().AllTriggers()) != 3 || r.Subscriptions() != 1 {
		t.Fatal("re-register must be idempotent")
	}
}

func TestDeltaRouting(t *testing.T) {
	db, r, rec := setup(t)
	up := wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (1, 10), (2, 20)")
	r.Quiesce()
	if rec.count() != 1 {
		t.Fatalf("deltas: %d", rec.count())
	}
	d := rec.delta(0)
	if d.Table != "src" || d.Op != "INSERT" || len(d.Rows) != 2 || len(d.TIDs) != 2 {
		t.Fatalf("%+v", d)
	}
	if rec.procs[0] != "proc" || rec.ups[0] != up {
		t.Fatalf("%v %v", rec.procs, rec.ups)
	}
	db.Exec("UPDATE src SET v = 11 WHERE id = 1")
	db.Exec("DELETE FROM src WHERE id = 2")
	r.Quiesce()
	if rec.count() != 3 {
		t.Fatalf("deltas after update+delete: %d", rec.count())
	}
	upd := rec.delta(1)
	if upd.Op != "UPDATE" || len(upd.Rows) != 1 || len(upd.OldRows) != 1 || len(upd.OldTIDs) != 1 {
		t.Fatalf("%+v", upd)
	}
	del := rec.delta(2)
	if del.Op != "DELETE" || len(del.OldRows) != 1 || len(del.Rows) != 0 {
		t.Fatalf("%+v", del)
	}
}

// A transaction's statements form one dispatch batch: the handler must
// receive exactly one Delta for the whole (table, batch), not one per
// statement.
func TestOneDeltaPerBatch(t *testing.T) {
	db, r, rec := setup(t)
	if err := r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}, rec); err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"BEGIN",
		"INSERT INTO src (id, v) VALUES (1, 10)",
		"INSERT INTO src (id, v) VALUES (2, 20)",
		"INSERT INTO src (id, v) VALUES (3, 30)",
		"COMMIT",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	r.Quiesce()
	if rec.count() != 1 {
		t.Fatalf("deltas: %d (want one per batch)", rec.count())
	}
	d := rec.delta(0)
	if d.Events != 3 || len(d.Rows) != 3 || d.Op != engine.OpInsert {
		t.Fatalf("%+v", d)
	}
}

// A row inserted, updated and deleted within one batch must net out to no
// delta at all.
func TestBatchNetsToZero(t *testing.T) {
	db, r, rec := setup(t)
	if err := r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}, rec); err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"BEGIN",
		"INSERT INTO src (id, v) VALUES (7, 70)",
		"UPDATE src SET v = 71 WHERE id = 7",
		"DELETE FROM src WHERE id = 7",
		"COMMIT",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	r.Quiesce()
	if rec.count() != 0 {
		t.Fatalf("deltas: %d (batch nets to zero)", rec.count())
	}
	// Partial cancellation: two inserts, one deleted in the same batch.
	stmts = []string{
		"BEGIN",
		"INSERT INTO src (id, v) VALUES (8, 80)",
		"INSERT INTO src (id, v) VALUES (9, 90)",
		"DELETE FROM src WHERE id = 9",
		"COMMIT",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	r.Quiesce()
	if rec.count() != 1 {
		t.Fatalf("deltas: %d", rec.count())
	}
	d := rec.delta(0)
	if len(d.Rows) != 1 || len(d.OldRows) != 0 || d.Op != engine.OpBatch {
		t.Fatalf("%+v", d)
	}
	if d.Rows[0][0].Int() != 8 {
		t.Fatalf("surviving row: %+v", d.Rows[0])
	}
}

// Multiple UP actions on the same relation each receive the delta ("it is
// possible to specify more than one compensation action for a given ΔR
// and a given activity a").
func TestMultipleUPActionsSameRelation(t *testing.T) {
	db, r, rec := setup(t)
	r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}, rec)
	r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeFutureRunning}, rec)
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	r.Quiesce()
	if rec.count() != 2 {
		t.Fatalf("deltas: %d", rec.count())
	}
}

func TestUnregisterSilences(t *testing.T) {
	db, r, rec := setup(t)
	r.Register("proc", wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning}, rec)
	r.Unregister("proc")
	if r.Subscriptions() != 0 {
		t.Fatal("subscription survived unregister")
	}
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	if rec.count() != 0 {
		t.Fatal("delta routed after unregister")
	}
}

func TestSanitizedIdentifiers(t *testing.T) {
	db, r, rec := setup(t)
	// Process and activity names with characters invalid in SQL idents.
	up := wf.UP{Relation: "src", Activity: "lay-out.2", Scope: wf.ScopeTerminatedRunning}
	if err := r.Register("my-proc", up, rec); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (9, 9)")
	r.Quiesce()
	if rec.count() != 1 {
		t.Fatalf("deltas: %d", rec.count())
	}
}

// gatedSetup registers one UP with a capacity-1 queue and a handler that
// must be released per delivery, then feeds one delta through so the
// worker is busy and the queue is empty.
func gatedSetup(t *testing.T, policy wf.Policy) (*database.DB, *Router, *recorder) {
	t.Helper()
	db, r, rec := setup(t, WithQueueCap(1))
	rec.started = make(chan struct{}, 16)
	rec.release = make(chan struct{}, 16)
	up := wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning, Policy: policy}
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO src (id, v) VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rec.started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first delta")
	}
	// Worker is now parked in RouteDelta; the queue has space for exactly
	// one more delta.
	if _, err := db.Exec("INSERT INTO src (id, v) VALUES (2, 2)"); err != nil {
		t.Fatal(err)
	}
	return db, r, rec
}

func TestOverflowCoalesce(t *testing.T) {
	db, r, rec := gatedSetup(t, wf.PolicyCoalesce)
	// Queue full: these two merge into the queued delta.
	db.Exec("INSERT INTO src (id, v) VALUES (3, 3)")
	db.Exec("DELETE FROM src WHERE id = 3")
	rec.release <- struct{}{} // finish delivery 1
	rec.release <- struct{}{} // deliver the merged delta
	<-rec.started
	r.Quiesce()
	if rec.count() != 2 {
		t.Fatalf("deltas: %d", rec.count())
	}
	d := rec.delta(1)
	// Rows 2 and 3 merged; 3's insert+delete netted out across the merge.
	if d.Events != 3 || len(d.Rows) != 1 || d.Rows[0][0].Int() != 2 {
		t.Fatalf("merged delta: %+v", d)
	}
	if got := db.Metrics().Counter("react.coalesced").Value(); got != 2 {
		t.Fatalf("react.coalesced: %d", got)
	}
}

func TestOverflowShed(t *testing.T) {
	db, r, rec := gatedSetup(t, wf.PolicyShed)
	// Queue full: this delta is dropped.
	db.Exec("INSERT INTO src (id, v) VALUES (3, 3)")
	rec.release <- struct{}{}
	rec.release <- struct{}{}
	<-rec.started
	r.Quiesce()
	if rec.count() != 2 {
		t.Fatalf("deltas: %d", rec.count())
	}
	if d := rec.delta(1); d.Rows[0][0].Int() != 2 {
		t.Fatalf("%+v", d)
	}
	if got := db.Metrics().Counter("react.shed").Value(); got != 1 {
		t.Fatalf("react.shed: %d", got)
	}
}

func TestOverflowBlock(t *testing.T) {
	db, r, rec := gatedSetup(t, wf.PolicyBlock)
	// Queue full: the next statement's dispatch must stall until the
	// worker frees a slot.
	execDone := make(chan struct{})
	go func() {
		db.Exec("INSERT INTO src (id, v) VALUES (3, 3)")
		close(execDone)
	}()
	select {
	case <-execDone:
		t.Fatal("Exec returned despite a full block-policy queue")
	case <-time.After(50 * time.Millisecond):
	}
	rec.release <- struct{}{} // finish delivery 1 → frees a slot
	select {
	case <-execDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Exec still blocked after the queue drained")
	}
	rec.release <- struct{}{}
	<-rec.started
	rec.release <- struct{}{}
	<-rec.started
	r.Quiesce()
	if rec.count() != 3 {
		t.Fatalf("deltas: %d", rec.count())
	}
	if got := db.Metrics().Counter("react.blocked").Value(); got == 0 {
		t.Fatal("react.blocked not counted")
	}
}

// TestOverflowEscalation drives a declared-coalesce queue hot for
// escalateAfter consecutive drains: it must promote itself to block
// (ticking react.policy_escalations), apply backpressure like a block
// queue, and revert to coalesce once it fully drains.
func TestOverflowEscalation(t *testing.T) {
	db, r, rec := setup(t, WithQueueCap(4))
	rec.started = make(chan struct{}, 64)
	rec.release = make(chan struct{}, 64)
	up := wf.UP{Relation: "src", Activity: "vis", Scope: wf.ScopeRunning, Policy: wf.PolicyCoalesce}
	if err := r.Register("proc", up, rec); err != nil {
		t.Fatal(err)
	}
	mustInsert := func(id int) {
		t.Helper()
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO src (id, v) VALUES (%d, %d)", id, id)); err != nil {
			t.Fatal(err)
		}
	}
	waitStarted := func() {
		t.Helper()
		select {
		case <-rec.started:
		case <-time.After(5 * time.Second):
			t.Fatal("worker never started the next delivery")
		}
	}

	// Park the worker in delivery 1, then fill the cap-4 queue.
	mustInsert(1)
	waitStarted()
	for id := 2; id <= 5; id++ {
		mustInsert(id)
	}

	// Each release drains one delta from the full queue, leaving
	// occupancy 3 = high-water; refilling before the next drain keeps
	// the queue hot for escalateAfter consecutive drains.
	for i := 0; i < escalateAfter; i++ {
		rec.release <- struct{}{}
		waitStarted()
		mustInsert(10 + i)
	}
	if got := db.Metrics().Counter("react.policy_escalations").Value(); got != 1 {
		t.Fatalf("react.policy_escalations: %d", got)
	}

	// The declared-coalesce queue now blocks on overflow instead of
	// merging.
	blockedBefore := db.Metrics().Counter("react.blocked").Value()
	execDone := make(chan struct{})
	go func() {
		db.Exec("INSERT INTO src (id, v) VALUES (100, 100)")
		close(execDone)
	}()
	select {
	case <-execDone:
		t.Fatal("Exec returned despite a full escalated queue")
	case <-time.After(50 * time.Millisecond):
	}
	if got := db.Metrics().Counter("react.blocked").Value(); got != blockedBefore+1 {
		t.Fatalf("react.blocked: %d (before %d)", got, blockedBefore)
	}
	rec.release <- struct{}{} // free a slot → blocked producer proceeds
	select {
	case <-execDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Exec still blocked after a slot freed")
	}
	waitStarted()

	// Drain fully: the drain that empties the queue de-escalates it.
	for i := 0; i < 4; i++ {
		rec.release <- struct{}{}
		waitStarted()
	}
	rec.release <- struct{}{}
	r.Quiesce()

	// Refill to overflow: the de-escalated queue coalesces again
	// instead of blocking.
	coalescedBefore := db.Metrics().Counter("react.coalesced").Value()
	mustInsert(200)
	waitStarted()
	for id := 201; id <= 204; id++ {
		mustInsert(id)
	}
	done := make(chan struct{})
	go func() {
		db.Exec("INSERT INTO src (id, v) VALUES (205, 205)")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("overflow still blocking after de-escalation")
	}
	if got := db.Metrics().Counter("react.coalesced").Value(); got != coalescedBefore+1 {
		t.Fatalf("react.coalesced: %d (before %d)", got, coalescedBefore)
	}
	if got := db.Metrics().Counter("react.policy_escalations").Value(); got != 1 {
		t.Fatalf("react.policy_escalations after de-escalation: %d", got)
	}

	// Drain out so Close does not wedge on the gated handler.
	for i := 0; i < 4; i++ {
		rec.release <- struct{}{}
		waitStarted()
	}
	rec.release <- struct{}{}
	r.Quiesce()
	if rec.count() != 19 {
		t.Fatalf("deliveries: %d", rec.count())
	}
}
