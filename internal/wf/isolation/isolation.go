// Package isolation implements §VI-A of the paper: time-based isolation
// of process instances through creation timestamps and deferred deletion
// through per-relation deletion tables (R∆) plus query rewriting.
//
// Every stored tuple carries `_created` (a monotonic stamp). A process
// instance takes a snapshot stamp when it starts; its queries are
// rewritten to see only tuples with `_created <= snapshot` — the paper's
// default behavior ("each process operates on exactly the data which was
// available when the process started").
//
// Deletions performed by a process instance p go to the deletion table
// R∆(tid, t_del, pid, process_end) instead of physically removing rows.
// Queries of p are rewritten with
//
//	_tid NOT IN (SELECT tid FROM R∆ WHERE pid = p)
//
// so p sees its own deletes, while concurrently running instances keep
// seeing the rows. Instances started after a deleting process ended are
// rewritten with
//
//	_tid NOT IN (SELECT tid FROM R∆ WHERE process_end <= t0)
//
// Physical deletion happens when the wait-set drains: once no running
// instance started before the deleting instance's end, the tuples and
// their R∆ rows are removed.
package isolation

import (
	"fmt"
	"strings"

	"ediflow/internal/catalog"
	"ediflow/internal/database"
	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

// DeletionTablePrefix prefixes per-relation deletion tables.
const DeletionTablePrefix = "ef_del_"

// DeletionTable names the R∆ table of a relation.
func DeletionTable(rel string) string { return DeletionTablePrefix + strings.ToLower(rel) }

// Manager owns deletion tables and query rewriting for one database.
type Manager struct {
	db *database.DB
}

// New returns a manager over db.
func New(db *database.DB) *Manager { return &Manager{db: db} }

// EnsureDeletionTable creates R∆ for a relation if missing.
func (m *Manager) EnsureDeletionTable(rel string) error {
	_, err := m.db.Exec(fmt.Sprintf(
		"CREATE TABLE IF NOT EXISTS %s (tid INT NOT NULL, t_del INT NOT NULL, pid INT NOT NULL, process_end INT)",
		DeletionTable(rel)))
	return err
}

// LogicalDelete records the deletion of all rel tuples matching whereSQL
// (may be empty for all rows) by process instance pid, without physically
// removing them. It returns the number of tuples logically deleted.
func (m *Manager) LogicalDelete(rel string, pid int64, whereSQL string, args ...types.Value) (int, error) {
	if err := m.EnsureDeletionTable(rel); err != nil {
		return 0, err
	}
	del := DeletionTable(rel)
	q := fmt.Sprintf("SELECT %s FROM %s", catalog.SysTID, rel)
	if strings.TrimSpace(whereSQL) != "" {
		q += " WHERE " + whereSQL
	}
	res, err := m.db.Query(q, args...)
	if err != nil {
		return 0, err
	}
	stamp := m.db.Store().CurrentStamp()
	n := 0
	for _, r := range res.Rows {
		tid := r[0].Int()
		// Skip tuples this process already logically deleted.
		dup, err := m.db.QueryInt(
			fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE tid = ? AND pid = ?", del),
			types.NewInt(tid), types.NewInt(pid))
		if err != nil {
			return n, err
		}
		if dup > 0 {
			continue
		}
		if _, err := m.db.Exec(
			fmt.Sprintf("INSERT INTO %s (tid, t_del, pid, process_end) VALUES (?, ?, ?, NULL)", del),
			types.NewInt(tid), types.NewInt(stamp), types.NewInt(pid)); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// hasDeletionTable reports whether rel has an R∆ table.
func (m *Manager) hasDeletionTable(rel string) bool {
	_, ok := m.db.Catalog().Table(DeletionTable(rel))
	return ok
}

// RewriteSelect returns a copy of sel whose base-table scans are
// restricted per §VI-A for a process instance with the given id and
// snapshot stamp. managed lists the application relations subject to
// isolation (lower-cased). Subqueries are rewritten recursively.
func (m *Manager) RewriteSelect(sel *sqltext.Select, pid, snapshot int64, managed map[string]bool) *sqltext.Select {
	out := *sel
	var conjuncts []sqltext.Expr

	rewriteRef := func(tr sqltext.TableRef) sqltext.TableRef {
		if tr.Subquery != nil {
			tr.Subquery = m.RewriteSelect(tr.Subquery, pid, snapshot, managed)
			return tr
		}
		rel := strings.ToLower(tr.Table)
		if !managed[rel] {
			return tr
		}
		qual := tr.Alias
		if qual == "" {
			qual = tr.Table
		}
		// Time-based visibility: _created <= snapshot.
		conjuncts = append(conjuncts, &sqltext.Binary{
			Op: "<=",
			L:  &sqltext.ColumnRef{Table: qual, Column: catalog.SysCreated},
			R:  &sqltext.Literal{Value: types.NewInt(snapshot)},
		})
		// Deletion-table rewrite, exactly the shape of §VI-A.
		if m.hasDeletionTable(rel) {
			sub := &sqltext.Select{
				Items: []sqltext.SelectItem{{Expr: &sqltext.ColumnRef{Column: "tid"}}},
				From:  &sqltext.TableRef{Table: DeletionTable(rel)},
				Where: &sqltext.Binary{
					Op: "OR",
					L: &sqltext.Binary{
						Op: "=",
						L:  &sqltext.ColumnRef{Column: "pid"},
						R:  &sqltext.Literal{Value: types.NewInt(pid)},
					},
					R: &sqltext.Binary{
						Op: "AND",
						L:  &sqltext.IsNull{X: &sqltext.ColumnRef{Column: "process_end"}, Not: true},
						R: &sqltext.Binary{
							Op: "<=",
							L:  &sqltext.ColumnRef{Column: "process_end"},
							R:  &sqltext.Literal{Value: types.NewInt(snapshot)},
						},
					},
				},
			}
			conjuncts = append(conjuncts, &sqltext.InExpr{
				X:     &sqltext.ColumnRef{Table: qual, Column: catalog.SysTID},
				Not:   true,
				Query: sub,
			})
		}
		return tr
	}

	if out.From != nil {
		ref := rewriteRef(*out.From)
		out.From = &ref
	}
	if len(out.Joins) > 0 {
		joins := make([]sqltext.JoinClause, len(out.Joins))
		copy(joins, out.Joins)
		for i := range joins {
			joins[i].Right = rewriteRef(joins[i].Right)
		}
		out.Joins = joins
	}
	// Rewrite subqueries wherever expressions appear.
	if len(out.Items) > 0 {
		items := make([]sqltext.SelectItem, len(out.Items))
		copy(items, out.Items)
		for i := range items {
			if items[i].Expr != nil {
				items[i].Expr = m.rewriteExpr(items[i].Expr, pid, snapshot, managed)
			}
		}
		out.Items = items
	}
	if out.Where != nil {
		out.Where = m.rewriteExpr(out.Where, pid, snapshot, managed)
	}
	if len(out.GroupBy) > 0 {
		gb := make([]sqltext.Expr, len(out.GroupBy))
		for i, g := range out.GroupBy {
			gb[i] = m.rewriteExpr(g, pid, snapshot, managed)
		}
		out.GroupBy = gb
	}
	if out.Having != nil {
		out.Having = m.rewriteExpr(out.Having, pid, snapshot, managed)
	}
	if len(out.OrderBy) > 0 {
		ob := make([]sqltext.OrderItem, len(out.OrderBy))
		copy(ob, out.OrderBy)
		for i := range ob {
			ob[i].Expr = m.rewriteExpr(ob[i].Expr, pid, snapshot, managed)
		}
		out.OrderBy = ob
	}
	for _, c := range conjuncts {
		if out.Where == nil {
			out.Where = c
		} else {
			out.Where = &sqltext.Binary{Op: "AND", L: out.Where, R: c}
		}
	}
	return &out
}

// rewriteExpr recursively rewrites subqueries inside an expression.
func (m *Manager) rewriteExpr(e sqltext.Expr, pid, snapshot int64, managed map[string]bool) sqltext.Expr {
	switch x := e.(type) {
	case *sqltext.Binary:
		return &sqltext.Binary{Op: x.Op, L: m.rewriteExpr(x.L, pid, snapshot, managed), R: m.rewriteExpr(x.R, pid, snapshot, managed)}
	case *sqltext.Unary:
		return &sqltext.Unary{Op: x.Op, X: m.rewriteExpr(x.X, pid, snapshot, managed)}
	case *sqltext.InExpr:
		out := *x
		out.X = m.rewriteExpr(x.X, pid, snapshot, managed)
		if x.Query != nil {
			out.Query = m.RewriteSelect(x.Query, pid, snapshot, managed)
		}
		return &out
	case *sqltext.Subquery:
		return &sqltext.Subquery{Query: m.RewriteSelect(x.Query, pid, snapshot, managed)}
	case *sqltext.Exists:
		return &sqltext.Exists{Not: x.Not, Query: m.RewriteSelect(x.Query, pid, snapshot, managed)}
	case *sqltext.IsNull:
		return &sqltext.IsNull{X: m.rewriteExpr(x.X, pid, snapshot, managed), Not: x.Not}
	case *sqltext.FuncCall:
		out := *x
		if len(x.Args) > 0 {
			out.Args = make([]sqltext.Expr, len(x.Args))
			for i, a := range x.Args {
				out.Args[i] = m.rewriteExpr(a, pid, snapshot, managed)
			}
		}
		return &out
	case *sqltext.Like:
		return &sqltext.Like{X: m.rewriteExpr(x.X, pid, snapshot, managed), Not: x.Not, Pattern: m.rewriteExpr(x.Pattern, pid, snapshot, managed)}
	case *sqltext.Between:
		return &sqltext.Between{
			X:   m.rewriteExpr(x.X, pid, snapshot, managed),
			Not: x.Not,
			Lo:  m.rewriteExpr(x.Lo, pid, snapshot, managed),
			Hi:  m.rewriteExpr(x.Hi, pid, snapshot, managed),
		}
	case *sqltext.CaseExpr:
		out := &sqltext.CaseExpr{}
		if x.Operand != nil {
			out.Operand = m.rewriteExpr(x.Operand, pid, snapshot, managed)
		}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sqltext.WhenClause{
				Cond:   m.rewriteExpr(w.Cond, pid, snapshot, managed),
				Result: m.rewriteExpr(w.Result, pid, snapshot, managed),
			})
		}
		if x.Else != nil {
			out.Else = m.rewriteExpr(x.Else, pid, snapshot, managed)
		}
		return out
	}
	return e
}

// FinishProcess stamps process_end on the instance's pending deletions and
// garbage-collects whatever became safe.
func (m *Manager) FinishProcess(pid int64) error {
	end := m.db.Store().CurrentStamp()
	for _, tbl := range m.deletionTables() {
		if _, err := m.db.Exec(
			fmt.Sprintf("UPDATE %s SET process_end = ? WHERE pid = ? AND process_end IS NULL", tbl),
			types.NewInt(end), types.NewInt(pid)); err != nil {
			return err
		}
	}
	return m.GC()
}

func (m *Manager) deletionTables() []string {
	var out []string
	for _, name := range m.db.Catalog().TableNames() {
		if strings.HasPrefix(strings.ToLower(name), DeletionTablePrefix) {
			out = append(out, name)
		}
	}
	return out
}

// GC physically deletes tuples whose wait-set has drained: a logical
// deletion with process_end = E is applied once no running process
// instance has snapshot < E (those are exactly the instances started
// before the deleting process ended).
func (m *Manager) GC() error {
	for _, del := range m.deletionTables() {
		rel := strings.TrimPrefix(strings.ToLower(del), DeletionTablePrefix)
		res, err := m.db.Query(fmt.Sprintf(
			"SELECT %s, tid, process_end FROM %s WHERE process_end IS NOT NULL", catalog.SysTID, del))
		if err != nil {
			return err
		}
		for _, r := range res.Rows {
			delTID := r[0].Int()
			tid := r[1].Int()
			end := r[2].Int()
			// start_ts is the immutable start stamp (the snapshot may
			// advance as the instance writes); the wait-set is "running
			// instances started before the deleting process ended".
			waiting, err := m.db.QueryInt(
				"SELECT COUNT(*) FROM "+database.TableProcessInstance+
					" WHERE status = ? AND start_ts < ?",
				types.NewString(database.StatusRunning), types.NewInt(end))
			if err != nil {
				return err
			}
			if waiting > 0 {
				continue // wait-set not drained yet
			}
			if _, err := m.db.Exec(fmt.Sprintf("DELETE FROM %s WHERE %s = %d", rel, catalog.SysTID, tid)); err != nil {
				// The tuple may already be gone (row physically deleted by
				// other means); remove the bookkeeping row regardless.
				_ = err
			}
			if _, err := m.db.Exec(fmt.Sprintf("DELETE FROM %s WHERE %s = %d", del, catalog.SysTID, delTID)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PendingDeletions counts logical deletions of a relation not yet
// physically applied.
func (m *Manager) PendingDeletions(rel string) (int64, error) {
	if !m.hasDeletionTable(rel) {
		return 0, nil
	}
	return m.db.QueryInt("SELECT COUNT(*) FROM " + DeletionTable(rel))
}
