package isolation

import (
	"testing"

	"ediflow/internal/database"
	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

func setup(t *testing.T) (*database.DB, *Manager) {
	t.Helper()
	db := database.MustOpenMemory()
	t.Cleanup(func() { db.Close() })
	m := New(db)
	if _, err := db.Exec("CREATE TABLE r (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		db.Exec("INSERT INTO r (id, v) VALUES (?, ?)", types.NewInt(int64(i)), types.NewInt(int64(i*10)))
	}
	if err := m.EnsureDeletionTable("r"); err != nil {
		t.Fatal(err)
	}
	return db, m
}

// registerInstance records a process instance row so GC's wait-set logic
// can see it.
func registerInstance(t *testing.T, db *database.DB, id int64, status string) {
	t.Helper()
	start := db.Store().CurrentStamp()
	_, err := db.Exec("INSERT INTO "+database.TableProcessInstance+
		" (id, process, status, start_ts, end_ts, snapshot) VALUES (?, 'p', ?, ?, NULL, ?)",
		types.NewInt(id), types.NewString(status), types.NewInt(start), types.NewInt(start))
	if err != nil {
		t.Fatal(err)
	}
}

func finishInstance(t *testing.T, db *database.DB, id int64) {
	t.Helper()
	db.Exec("UPDATE "+database.TableProcessInstance+" SET status = 'completed', end_ts = ? WHERE id = ?",
		types.NewInt(db.Store().CurrentStamp()), types.NewInt(id))
}

func rewriteCount(t *testing.T, db *database.DB, m *Manager, query string, pid, snapshot int64) int64 {
	t.Helper()
	st, err := sqltext.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*sqltext.Select)
	rw := m.RewriteSelect(sel, pid, snapshot, map[string]bool{"r": true})
	res, err := db.ExecStmt(rw)
	if err != nil {
		t.Fatalf("rewritten query %q: %v", rw.String(), err)
	}
	v, err := res.Rows[0][0].AsInt()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSnapshotVisibility(t *testing.T) {
	db, m := setup(t)
	snap := db.Store().CurrentStamp()
	db.Exec("INSERT INTO r (id, v) VALUES (6, 60)") // after the snapshot
	got := rewriteCount(t, db, m, "SELECT COUNT(*) FROM r", 1, snap)
	if got != 5 {
		t.Fatalf("snapshot query saw %d rows, want 5", got)
	}
	// A later snapshot sees everything.
	got = rewriteCount(t, db, m, "SELECT COUNT(*) FROM r", 1, db.Store().CurrentStamp())
	if got != 6 {
		t.Fatalf("fresh snapshot saw %d rows, want 6", got)
	}
}

func TestLogicalDeleteVisibility(t *testing.T) {
	db, m := setup(t)
	registerInstance(t, db, 3, database.StatusRunning) // the deleter
	registerInstance(t, db, 4, database.StatusRunning) // a concurrent reader

	n, err := m.LogicalDelete("r", 3, "v >= 40")
	if err != nil || n != 2 {
		t.Fatalf("LogicalDelete: %d, %v", n, err)
	}
	// Idempotent per process.
	n, err = m.LogicalDelete("r", 3, "v >= 40")
	if err != nil || n != 0 {
		t.Fatalf("second LogicalDelete: %d, %v", n, err)
	}
	// Physically nothing removed yet.
	total, _ := db.QueryInt("SELECT COUNT(*) FROM r")
	if total != 5 {
		t.Fatalf("physical rows: %d", total)
	}
	snap := db.Store().CurrentStamp()
	// The deleter (pid 3) no longer sees the deleted tuples.
	if got := rewriteCount(t, db, m, "SELECT COUNT(*) FROM r", 3, snap); got != 3 {
		t.Fatalf("deleter sees %d rows, want 3", got)
	}
	// The concurrent instance (pid 4, started before the delete ended)
	// still sees all 5: "prevent the deleted tuples from suddenly
	// disappearing from the view of another running process instance".
	if got := rewriteCount(t, db, m, "SELECT COUNT(*) FROM r", 4, snap); got != 5 {
		t.Fatalf("concurrent instance sees %d rows, want 5", got)
	}
}

func TestDeletionAppliedAfterWaitSetDrains(t *testing.T) {
	db, m := setup(t)
	registerInstance(t, db, 3, database.StatusRunning)
	registerInstance(t, db, 4, database.StatusRunning)

	if _, err := m.LogicalDelete("r", 3, "id = 1"); err != nil {
		t.Fatal(err)
	}
	// Deleter finishes: deletion stamped, but pid 4 is still running and
	// started before — so the tuple stays.
	finishInstance(t, db, 3)
	if err := m.FinishProcess(3); err != nil {
		t.Fatal(err)
	}
	total, _ := db.QueryInt("SELECT COUNT(*) FROM r")
	if total != 5 {
		t.Fatalf("tuple deleted while wait-set non-empty: %d rows", total)
	}
	pend, _ := m.PendingDeletions("r")
	if pend != 1 {
		t.Fatalf("pending: %d", pend)
	}

	// A process started *after* the deleter ended must not see the tuple.
	registerInstance(t, db, 5, database.StatusRunning)
	snap5 := db.Store().CurrentStamp()
	if got := rewriteCount(t, db, m, "SELECT COUNT(*) FROM r", 5, snap5); got != 4 {
		t.Fatalf("late instance sees %d rows, want 4", got)
	}

	// pid 4 finishes: wait set (instances started before deleter end)
	// drains — but pid 5 is still running; it started after, so it is not
	// in the wait set and GC may proceed.
	finishInstance(t, db, 4)
	if err := m.FinishProcess(4); err != nil {
		t.Fatal(err)
	}
	total, _ = db.QueryInt("SELECT COUNT(*) FROM r")
	if total != 4 {
		t.Fatalf("tuple not physically deleted after wait-set drain: %d rows", total)
	}
	pend, _ = m.PendingDeletions("r")
	if pend != 0 {
		t.Fatalf("deletion bookkeeping not cleaned: %d", pend)
	}
}

func TestRewritePreservesJoinsAndSubqueries(t *testing.T) {
	db, m := setup(t)
	db.Exec("CREATE TABLE s (id INT PRIMARY KEY, rid INT)")
	db.Exec("INSERT INTO s VALUES (1, 1), (2, 2)")
	snap := db.Store().CurrentStamp()
	st, _ := sqltext.Parse("SELECT COUNT(*) FROM r JOIN s ON r.id = s.rid WHERE r.id IN (SELECT rid FROM s)")
	rw := m.RewriteSelect(st.(*sqltext.Select), 9, snap, map[string]bool{"r": true, "s": true})
	res, err := db.ExecStmt(rw)
	if err != nil {
		t.Fatalf("%q: %v", rw.String(), err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("join count: %v", res.Rows[0][0])
	}
	// Unmanaged tables are untouched.
	st2, _ := sqltext.Parse("SELECT COUNT(*) FROM s")
	rw2 := m.RewriteSelect(st2.(*sqltext.Select), 9, 0, map[string]bool{"r": true})
	if rw2.Where != nil {
		t.Fatalf("unmanaged table got predicates: %s", rw2.String())
	}
}

func TestRewriteAliasedTable(t *testing.T) {
	db, m := setup(t)
	snap := db.Store().CurrentStamp()
	db.Exec("INSERT INTO r (id, v) VALUES (7, 70)")
	st, _ := sqltext.Parse("SELECT COUNT(*) FROM r AS x WHERE x.v > 0")
	rw := m.RewriteSelect(st.(*sqltext.Select), 1, snap, map[string]bool{"r": true})
	res, err := db.ExecStmt(rw)
	if err != nil {
		t.Fatalf("%q: %v", rw.String(), err)
	}
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("aliased rewrite saw %v rows", res.Rows[0][0])
	}
}
