// Package wf defines EdiFlow's process model (§V, Fig. 4): a process is a
// configuration, constants, variables, relations, functions, a structured
// body (sequence, AND/OR split-join, conditional) whose leaves are
// activities (variable assignment, declarative update, procedure call,
// user interaction), plus a set of update-propagation actions describing
// how data changes reach running/terminated/future activity instances.
//
// Processes are specified in a simple XML syntax closely resembling the
// WfMC XPDL shape the paper mentions (§VI-D); see xml.go.
package wf

import (
	"fmt"
	"strings"

	"ediflow/internal/types"
)

// Scope is one of the paper's update-propagation targets (§V):
//
//	ta-rp  terminated activity instances of running processes
//	ta-tp  terminated activity instances of terminated processes
//	ra     running activity instances
//	fa-rp  future activity instances of running processes
type Scope string

// Update-propagation scopes.
const (
	ScopeTerminatedRunning    Scope = "ta-rp"
	ScopeTerminatedTerminated Scope = "ta-tp"
	ScopeRunning              Scope = "ra"
	ScopeFutureRunning        Scope = "fa-rp"
)

// ParseScope validates a scope string.
func ParseScope(s string) (Scope, error) {
	switch Scope(strings.ToLower(strings.TrimSpace(s))) {
	case ScopeTerminatedRunning:
		return ScopeTerminatedRunning, nil
	case ScopeTerminatedTerminated:
		return ScopeTerminatedTerminated, nil
	case ScopeRunning:
		return ScopeRunning, nil
	case ScopeFutureRunning:
		return ScopeFutureRunning, nil
	}
	return "", fmt.Errorf("wf: unknown update-propagation scope %q (want ta-rp, ta-tp, ra or fa-rp)", s)
}

// Config is the DB connection block of Fig. 4. In this embedded
// reproduction Driver selects "edidb" and URI the storage directory
// ("" = in-memory).
type Config struct {
	Driver string
	URI    string
	User   string
}

// Constant is a named constant value (Fig. 4: name × value).
type Constant struct {
	Name  string
	Value string
}

// Variable is a typed process variable (Fig. 4: name × type).
type Variable struct {
	Name string
	Type types.Kind
}

// Attribute is one column of a process relation.
type Attribute struct {
	Name string
	Type types.Kind
}

// Relation declares a relation the process is built on. Persistent
// relations live in the DBMS and survive the process; temporary relations
// are instantiated per process instance and dropped when it ends (§IV-B).
type Relation struct {
	Name       string
	PrimaryKey string
	Temporary  bool
	Attributes []Attribute
}

// Function binds a name to a procedure class in the module registry.
type Function struct {
	Name  string
	Class string
}

// Policy is the overflow policy of one UP action's delta queue: what the
// propagation layer does when deltas arrive faster than the activity's
// handler consumes them (a bounded queue is already full).
type Policy string

// Overflow policies.
const (
	// PolicyCoalesce (the default) merges the overflowing delta into the
	// newest queued one, net-cancelling rows inserted and deleted across
	// the pair. No change is lost, but a slow handler sees fewer, larger
	// deltas.
	PolicyCoalesce Policy = "coalesce"
	// PolicyShed drops the overflowing delta and counts it in react.shed.
	// For handlers that re-read base state anyway, losing intermediate
	// deltas is harmless and the firehose never stalls.
	PolicyShed Policy = "shed"
	// PolicyBlock makes the enqueuing dispatcher wait for queue space,
	// propagating backpressure all the way to committers.
	PolicyBlock Policy = "block"
)

// ParsePolicy validates an overflow-policy string; empty means coalesce.
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(strings.ToLower(strings.TrimSpace(s))); p {
	case "":
		return PolicyCoalesce, nil
	case PolicyCoalesce, PolicyShed, PolicyBlock:
		return p, nil
	}
	return "", fmt.Errorf("wf: unknown overflow policy %q (want coalesce, shed or block)", s)
}

// UP is one update-propagation action (§V): when ΔR arrives for Relation,
// propagate it to the instances of Activity selected by Scope. Several UP
// actions may target the same relation and activity. Policy picks the
// overflow behavior of the action's bounded delta queue (empty =
// coalesce).
type UP struct {
	Relation string
	Activity string
	Scope    Scope
	Policy   Policy
}

// Node is a node of the structured process body.
type Node interface {
	node()
	// Activities appends all activities under this node.
	Activities(dst []*Activity) []*Activity
}

// Sequence runs children in order.
type Sequence struct {
	Children []Node
}

// AndSplit runs branches in parallel and joins on all of them.
type AndSplit struct {
	Branches []Node
}

// OrSplit triggers exactly one branch; the others are invalidated (§V).
// A branch may carry a condition; the first branch whose condition holds
// (or the first unconditional branch) is triggered.
type OrSplit struct {
	Branches   []Node
	Conditions []string // "" = unconditional; parallel to Branches
}

// If runs Then when the condition expression evaluates true.
type If struct {
	Condition string
	Then      Node
}

func (*Sequence) node() {}
func (*AndSplit) node() {}
func (*OrSplit) node()  {}
func (*If) node()       {}
func (*Activity) node() {}

// Activities implements Node.
func (s *Sequence) Activities(dst []*Activity) []*Activity {
	for _, c := range s.Children {
		dst = c.Activities(dst)
	}
	return dst
}

// Activities implements Node.
func (s *AndSplit) Activities(dst []*Activity) []*Activity {
	for _, c := range s.Branches {
		dst = c.Activities(dst)
	}
	return dst
}

// Activities implements Node.
func (s *OrSplit) Activities(dst []*Activity) []*Activity {
	for _, c := range s.Branches {
		dst = c.Activities(dst)
	}
	return dst
}

// Activities implements Node.
func (s *If) Activities(dst []*Activity) []*Activity {
	return s.Then.Activities(dst)
}

// Activities implements Node.
func (a *Activity) Activities(dst []*Activity) []*Activity {
	return append(dst, a)
}

// ActivityKind discriminates the four activity expressions of Fig. 4.
type ActivityKind string

// Activity kinds.
const (
	KindAssign   ActivityKind = "assign"   // v ← α
	KindUpdate   ActivityKind = "update"   // upd(R): declarative SQL
	KindCall     ActivityKind = "call"     // procedure invocation
	KindAskUser  ActivityKind = "askUser"  // human interaction
	KindRunQuery ActivityKind = "runQuery" // evaluate a query, bind count
)

// Activity is one leaf task. Exactly the fields of its Kind are set.
type Activity struct {
	Name  string
	Group string // role that must perform it ("" = system)
	Kind  ActivityKind

	// KindAssign: Variable ← Expr (a scalar SQL expression over constants,
	// variables and subqueries).
	Variable string
	Expr     string

	// KindUpdate / KindRunQuery: a SQL statement; $name references
	// substitute variables/constants.
	SQL string

	// KindCall.
	Function string
	Inputs   []string
	Outputs  []string
	InOuts   []string

	// KindAskUser.
	Prompt string
	// BindTo optionally names a variable receiving the user's answer.
	BindTo string
}

// Process is a full process definition (Fig. 4's 5-tuple plus the reactive
// UP set: RP ::= ⟨R, v, p, P, UP⟩).
type Process struct {
	Name      string
	Config    Config
	Constants []Constant
	Variables []Variable
	Relations []Relation
	Functions []Function
	Body      Node
	UPs       []UP
}

// AllActivities returns every activity of the body, in declaration order.
func (p *Process) AllActivities() []*Activity {
	if p.Body == nil {
		return nil
	}
	return p.Body.Activities(nil)
}

// ActivityByName finds an activity.
func (p *Process) ActivityByName(name string) (*Activity, bool) {
	for _, a := range p.AllActivities() {
		if strings.EqualFold(a.Name, name) {
			return a, true
		}
	}
	return nil, false
}

// FunctionByName finds a function declaration.
func (p *Process) FunctionByName(name string) (*Function, bool) {
	for i := range p.Functions {
		if strings.EqualFold(p.Functions[i].Name, name) {
			return &p.Functions[i], true
		}
	}
	return nil, false
}

// RelationByName finds a relation declaration.
func (p *Process) RelationByName(name string) (*Relation, bool) {
	for i := range p.Relations {
		if strings.EqualFold(p.Relations[i].Name, name) {
			return &p.Relations[i], true
		}
	}
	return nil, false
}

// Validate checks internal consistency: unique activity names, resolvable
// function and relation references, well-formed UP actions, variables
// distinct from constants.
func (p *Process) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("wf: process has no name")
	}
	if p.Body == nil {
		return fmt.Errorf("wf: process %q has no body", p.Name)
	}
	seenAct := map[string]bool{}
	for _, a := range p.AllActivities() {
		if a.Name == "" {
			return fmt.Errorf("wf: process %q has an unnamed activity", p.Name)
		}
		k := strings.ToLower(a.Name)
		if seenAct[k] {
			return fmt.Errorf("wf: duplicate activity name %q", a.Name)
		}
		seenAct[k] = true
		switch a.Kind {
		case KindAssign:
			if a.Variable == "" || a.Expr == "" {
				return fmt.Errorf("wf: activity %q: assign needs variable and value", a.Name)
			}
			if !p.hasVariable(a.Variable) {
				return fmt.Errorf("wf: activity %q assigns undeclared variable %q", a.Name, a.Variable)
			}
		case KindUpdate, KindRunQuery:
			if a.SQL == "" {
				return fmt.Errorf("wf: activity %q: missing SQL", a.Name)
			}
		case KindCall:
			if _, ok := p.FunctionByName(a.Function); !ok {
				return fmt.Errorf("wf: activity %q calls undeclared function %q", a.Name, a.Function)
			}
			for _, rels := range [][]string{a.Inputs, a.Outputs, a.InOuts} {
				for _, r := range rels {
					if _, ok := p.RelationByName(r); !ok {
						return fmt.Errorf("wf: activity %q references undeclared relation %q", a.Name, r)
					}
				}
			}
		case KindAskUser:
			if a.Prompt == "" {
				return fmt.Errorf("wf: activity %q: askUser needs a prompt", a.Name)
			}
			if a.BindTo != "" && !p.hasVariable(a.BindTo) {
				return fmt.Errorf("wf: activity %q binds undeclared variable %q", a.Name, a.BindTo)
			}
		default:
			return fmt.Errorf("wf: activity %q has unknown kind %q", a.Name, a.Kind)
		}
	}
	seenVar := map[string]bool{}
	for _, v := range p.Variables {
		k := strings.ToLower(v.Name)
		if seenVar[k] {
			return fmt.Errorf("wf: duplicate variable %q", v.Name)
		}
		seenVar[k] = true
	}
	for _, c := range p.Constants {
		if seenVar[strings.ToLower(c.Name)] {
			return fmt.Errorf("wf: constant %q collides with a variable", c.Name)
		}
	}
	seenRel := map[string]bool{}
	for _, r := range p.Relations {
		k := strings.ToLower(r.Name)
		if seenRel[k] {
			return fmt.Errorf("wf: duplicate relation %q", r.Name)
		}
		seenRel[k] = true
		if len(r.Attributes) == 0 {
			return fmt.Errorf("wf: relation %q has no attributes", r.Name)
		}
		if r.PrimaryKey != "" {
			found := false
			for _, at := range r.Attributes {
				if strings.EqualFold(at.Name, r.PrimaryKey) {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("wf: relation %q: primary key %q is not an attribute", r.Name, r.PrimaryKey)
			}
		}
	}
	for _, up := range p.UPs {
		if _, err := ParseScope(string(up.Scope)); err != nil {
			return err
		}
		if _, err := ParsePolicy(string(up.Policy)); err != nil {
			return err
		}
		// "*" is the macro form (§V option 3): the enactment engine expands
		// it to every activity of the process.
		if _, ok := p.ActivityByName(up.Activity); !ok && up.Activity != "*" {
			return fmt.Errorf("wf: update propagation targets unknown activity %q", up.Activity)
		}
		if _, ok := p.RelationByName(up.Relation); !ok {
			return fmt.Errorf("wf: update propagation watches undeclared relation %q", up.Relation)
		}
	}
	if err := p.validateOrSplits(p.Body); err != nil {
		return err
	}
	return nil
}

func (p *Process) validateOrSplits(n Node) error {
	switch x := n.(type) {
	case *Sequence:
		for _, c := range x.Children {
			if err := p.validateOrSplits(c); err != nil {
				return err
			}
		}
	case *AndSplit:
		if len(x.Branches) < 2 {
			return fmt.Errorf("wf: andSplit needs at least two branches")
		}
		for _, c := range x.Branches {
			if err := p.validateOrSplits(c); err != nil {
				return err
			}
		}
	case *OrSplit:
		if len(x.Branches) < 2 {
			return fmt.Errorf("wf: orSplit needs at least two branches")
		}
		if len(x.Conditions) != len(x.Branches) {
			return fmt.Errorf("wf: orSplit conditions/branches mismatch")
		}
		for _, c := range x.Branches {
			if err := p.validateOrSplits(c); err != nil {
				return err
			}
		}
	case *If:
		if x.Condition == "" {
			return fmt.Errorf("wf: if node without condition")
		}
		return p.validateOrSplits(x.Then)
	}
	return nil
}

func (p *Process) hasVariable(name string) bool {
	for _, v := range p.Variables {
		if strings.EqualFold(v.Name, name) {
			return true
		}
	}
	return false
}
