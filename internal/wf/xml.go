package wf

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"ediflow/internal/types"
)

// XML process syntax (§VI-D: "EdiFlow processes are specified in a simple
// XML syntax, closely resembling the XML WfMC syntax XPDL"):
//
//	<process name="copubs">
//	  <configuration driver="edidb" uri="/data/db" user="ana"/>
//	  <constant name="threshold" value="0.05"/>
//	  <variable name="n" type="int"/>
//	  <relation name="authors" primaryKey="id">
//	    <attribute name="id" type="int"/>
//	    <attribute name="name" type="string"/>
//	  </relation>
//	  <relation name="scratch" temporary="true"> ... </relation>
//	  <function name="layout" class="layout.EdgeLinLog"/>
//	  <body>
//	    <sequence>
//	      <activity name="load" group="engineers">
//	        <runQuery>INSERT INTO authors ...</runQuery>
//	      </activity>
//	      <activity name="count"><assign variable="n" value="(SELECT COUNT(*) FROM authors)"/></activity>
//	      <if condition="n &gt; 0">
//	        <sequence> ... </sequence>
//	      </if>
//	      <andSplit>
//	        <branch> ... </branch>
//	        <branch> ... </branch>
//	      </andSplit>
//	      <orSplit>
//	        <branch condition="n &gt; 100"> ... </branch>
//	        <branch> ... </branch>
//	      </orSplit>
//	      <activity name="vis">
//	        <callFunction name="layout" inputs="authors" outputs="va"/>
//	      </activity>
//	      <activity name="confirm" group="analysts">
//	        <askUser prompt="Accept the layout?" bindTo="answer"/>
//	      </activity>
//	    </sequence>
//	  </body>
//	  <updatePropagation relation="authors" activity="vis" scope="ra"/>
//	</process>

// ParseXML reads a process definition.
func ParseXML(r io.Reader) (*Process, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("wf: no <process> element: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Local != "process" {
				return nil, fmt.Errorf("wf: expected <process>, got <%s>", se.Name.Local)
			}
			p, err := parseProcess(dec, se)
			if err != nil {
				return nil, err
			}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return p, nil
		}
	}
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Process, error) {
	return ParseXML(strings.NewReader(s))
}

func attr(se xml.StartElement, name string) string {
	for _, a := range se.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

func parseProcess(dec *xml.Decoder, se xml.StartElement) (*Process, error) {
	p := &Process{Name: attr(se, "name")}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "configuration":
				p.Config = Config{Driver: attr(t, "driver"), URI: attr(t, "uri"), User: attr(t, "user")}
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "constant":
				p.Constants = append(p.Constants, Constant{Name: attr(t, "name"), Value: attr(t, "value")})
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "variable":
				kind, err := types.KindFromName(attr(t, "type"))
				if err != nil {
					return nil, fmt.Errorf("wf: variable %q: %w", attr(t, "name"), err)
				}
				p.Variables = append(p.Variables, Variable{Name: attr(t, "name"), Type: kind})
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "relation":
				rel, err := parseRelation(dec, t)
				if err != nil {
					return nil, err
				}
				p.Relations = append(p.Relations, *rel)
			case "function":
				p.Functions = append(p.Functions, Function{Name: attr(t, "name"), Class: attr(t, "class")})
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "body":
				body, err := parseBody(dec)
				if err != nil {
					return nil, err
				}
				p.Body = body
			case "updatePropagation":
				scope, err := ParseScope(attr(t, "scope"))
				if err != nil {
					return nil, err
				}
				policy, err := ParsePolicy(attr(t, "policy"))
				if err != nil {
					return nil, err
				}
				p.UPs = append(p.UPs, UP{
					Relation: attr(t, "relation"),
					Activity: attr(t, "activity"),
					Scope:    scope,
					Policy:   policy,
				})
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("wf: unexpected element <%s> in <process>", t.Name.Local)
			}
		case xml.EndElement:
			return p, nil
		}
	}
}

func parseRelation(dec *xml.Decoder, se xml.StartElement) (*Relation, error) {
	rel := &Relation{
		Name:       attr(se, "name"),
		PrimaryKey: attr(se, "primaryKey"),
		Temporary:  strings.EqualFold(attr(se, "temporary"), "true"),
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "attribute" {
				return nil, fmt.Errorf("wf: unexpected <%s> in <relation>", t.Name.Local)
			}
			kind, err := types.KindFromName(attr(t, "type"))
			if err != nil {
				return nil, fmt.Errorf("wf: relation %q attribute %q: %w", rel.Name, attr(t, "name"), err)
			}
			rel.Attributes = append(rel.Attributes, Attribute{Name: attr(t, "name"), Type: kind})
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return rel, nil
		}
	}
}

// parseBody expects exactly one structural child inside <body>.
func parseBody(dec *xml.Decoder) (Node, error) {
	var body Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if body != nil {
				return nil, fmt.Errorf("wf: <body> must have exactly one child")
			}
			n, err := parseNode(dec, t)
			if err != nil {
				return nil, err
			}
			body = n
		case xml.EndElement:
			if body == nil {
				return nil, fmt.Errorf("wf: empty <body>")
			}
			return body, nil
		}
	}
}

func parseNode(dec *xml.Decoder, se xml.StartElement) (Node, error) {
	switch se.Name.Local {
	case "sequence":
		seq := &Sequence{}
		for {
			tok, err := dec.Token()
			if err != nil {
				return nil, err
			}
			switch t := tok.(type) {
			case xml.StartElement:
				n, err := parseNode(dec, t)
				if err != nil {
					return nil, err
				}
				seq.Children = append(seq.Children, n)
			case xml.EndElement:
				if len(seq.Children) == 0 {
					return nil, fmt.Errorf("wf: empty <sequence>")
				}
				return seq, nil
			}
		}
	case "andSplit":
		split := &AndSplit{}
		for {
			tok, err := dec.Token()
			if err != nil {
				return nil, err
			}
			switch t := tok.(type) {
			case xml.StartElement:
				if t.Name.Local != "branch" {
					return nil, fmt.Errorf("wf: <andSplit> children must be <branch>")
				}
				n, err := parseBranch(dec)
				if err != nil {
					return nil, err
				}
				split.Branches = append(split.Branches, n)
			case xml.EndElement:
				return split, nil
			}
		}
	case "orSplit":
		split := &OrSplit{}
		for {
			tok, err := dec.Token()
			if err != nil {
				return nil, err
			}
			switch t := tok.(type) {
			case xml.StartElement:
				if t.Name.Local != "branch" {
					return nil, fmt.Errorf("wf: <orSplit> children must be <branch>")
				}
				cond := attr(t, "condition")
				n, err := parseBranch(dec)
				if err != nil {
					return nil, err
				}
				split.Branches = append(split.Branches, n)
				split.Conditions = append(split.Conditions, cond)
			case xml.EndElement:
				return split, nil
			}
		}
	case "if":
		node := &If{Condition: attr(se, "condition")}
		inner, err := parseBranch(dec)
		if err != nil {
			return nil, err
		}
		node.Then = inner
		return node, nil
	case "activity":
		return parseActivity(dec, se)
	}
	return nil, fmt.Errorf("wf: unexpected element <%s> in process body", se.Name.Local)
}

// parseBranch reads the children of an already-open container element
// (branch or if) into a single node (wrapping multiple children in a
// Sequence) and consumes the closing tag.
func parseBranch(dec *xml.Decoder) (Node, error) {
	var children []Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n, err := parseNode(dec, t)
			if err != nil {
				return nil, err
			}
			children = append(children, n)
		case xml.EndElement:
			switch len(children) {
			case 0:
				return nil, fmt.Errorf("wf: empty branch")
			case 1:
				return children[0], nil
			default:
				return &Sequence{Children: children}, nil
			}
		}
	}
}

func parseActivity(dec *xml.Decoder, se xml.StartElement) (*Activity, error) {
	a := &Activity{Name: attr(se, "name"), Group: attr(se, "group")}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if a.Kind != "" {
				return nil, fmt.Errorf("wf: activity %q has more than one expression", a.Name)
			}
			switch t.Name.Local {
			case "assign":
				a.Kind = KindAssign
				a.Variable = attr(t, "variable")
				a.Expr = attr(t, "value")
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "update":
				a.Kind = KindUpdate
				sqlText, err := elementText(dec)
				if err != nil {
					return nil, err
				}
				a.SQL = strings.TrimSpace(sqlText)
			case "runQuery":
				a.Kind = KindRunQuery
				sqlText, err := elementText(dec)
				if err != nil {
					return nil, err
				}
				a.SQL = strings.TrimSpace(sqlText)
			case "callFunction":
				a.Kind = KindCall
				a.Function = attr(t, "name")
				a.Inputs = splitList(attr(t, "inputs"))
				a.Outputs = splitList(attr(t, "outputs"))
				a.InOuts = splitList(attr(t, "inouts"))
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "askUser":
				a.Kind = KindAskUser
				a.Prompt = attr(t, "prompt")
				a.BindTo = attr(t, "bindTo")
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("wf: activity %q: unknown expression <%s>", a.Name, t.Name.Local)
			}
		case xml.EndElement:
			if a.Kind == "" {
				return nil, fmt.Errorf("wf: activity %q has no expression", a.Name)
			}
			return a, nil
		}
	}
}

// elementText consumes the current element's character data and closing
// tag.
func elementText(dec *xml.Decoder) (string, error) {
	var sb strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			return sb.String(), nil
		case xml.StartElement:
			return "", fmt.Errorf("wf: unexpected child <%s> in text element", t.Name.Local)
		}
	}
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if v := strings.TrimSpace(p); v != "" {
			out = append(out, v)
		}
	}
	return out
}
