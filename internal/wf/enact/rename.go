package enact

import (
	"ediflow/internal/sqltext"
)

// renameTables rewrites every base-table reference in a statement through
// resolve (mapping declared temporary-relation names to their per-instance
// physical tables). Column qualifiers keep the original name because the
// relation's alias defaults to the written name; renamed FROM entries
// therefore get an alias preserving the declared name.
func renameTables(st sqltext.Statement, resolve func(string) string) {
	switch s := st.(type) {
	case *sqltext.Select:
		renameSelect(s, resolve)
	case *sqltext.Insert:
		s.Table = resolve(s.Table)
		if s.Query != nil {
			renameSelect(s.Query, resolve)
		}
		for _, row := range s.Rows {
			for _, e := range row {
				renameExpr(e, resolve)
			}
		}
	case *sqltext.Update:
		s.Table = resolve(s.Table)
		for i := range s.Set {
			renameExpr(s.Set[i].Value, resolve)
		}
		renameExpr(s.Where, resolve)
	case *sqltext.Delete:
		s.Table = resolve(s.Table)
		renameExpr(s.Where, resolve)
	}
}

func renameSelect(sel *sqltext.Select, resolve func(string) string) {
	renameRef := func(tr *sqltext.TableRef) {
		if tr.Subquery != nil {
			renameSelect(tr.Subquery, resolve)
			return
		}
		phys := resolve(tr.Table)
		if phys != tr.Table {
			if tr.Alias == "" {
				tr.Alias = tr.Table // keep declared name for column quals
			}
			tr.Table = phys
		}
	}
	if sel.From != nil {
		renameRef(sel.From)
	}
	for i := range sel.Joins {
		renameRef(&sel.Joins[i].Right)
	}
	for _, it := range sel.Items {
		renameExpr(it.Expr, resolve)
	}
	renameExpr(sel.Where, resolve)
	for _, g := range sel.GroupBy {
		renameExpr(g, resolve)
	}
	renameExpr(sel.Having, resolve)
	for _, o := range sel.OrderBy {
		renameExpr(o.Expr, resolve)
	}
}

// renameExpr recurses into subqueries inside expressions.
func renameExpr(e sqltext.Expr, resolve func(string) string) {
	if e == nil {
		return
	}
	sqltext.WalkExpr(e, func(x sqltext.Expr) bool {
		switch v := x.(type) {
		case *sqltext.InExpr:
			if v.Query != nil {
				renameSelect(v.Query, resolve)
			}
		case *sqltext.Subquery:
			renameSelect(v.Query, resolve)
		case *sqltext.Exists:
			renameSelect(v.Query, resolve)
		}
		return true
	})
}
