package enact

import (
	"fmt"
	"strings"
	"sync"

	"ediflow/internal/database"
	"ediflow/internal/module"
	"ediflow/internal/sqltext"
	"ediflow/internal/types"
	"ediflow/internal/wf"
)

// ActivityState tracks one activity instance within a process instance.
type ActivityState struct {
	ID       int64
	Activity *wf.Activity
	Status   string
	// invalidated marks activities skipped by an untriggered OR-split
	// branch or a false IF condition: they never executed, so update
	// propagation must not repair them.
	invalidated bool
	// performer is the resolved user for group-bound activities ("" =
	// the process starter).
	performer string

	// proc is the live procedure object (call activities), kept so delta
	// handlers can be invoked while running and after completion.
	proc module.Procedure
	env  *module.Env
}

// Instance is one running (or finished) process instance.
type Instance struct {
	ID      int64
	Process *wf.Process

	eng  *Engine
	user string

	mu       sync.Mutex
	vars     map[string]types.Value
	snapshot int64
	status   string
	err      error
	acts     map[string]*ActivityState
	managed  map[string]bool   // relations under isolation (lower-cased)
	temp     map[string]string // temporary relation → physical table

	done chan struct{}
}

// Status returns the instance status (running/completed/failed).
func (in *Instance) Status() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.status
}

// Err returns the failure cause, if the instance failed.
func (in *Instance) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// Wait blocks until the instance terminates and returns its error.
func (in *Instance) Wait() error {
	<-in.done
	return in.Err()
}

// Done exposes the completion channel.
func (in *Instance) Done() <-chan struct{} { return in.done }

// Var reads a process variable (or constant).
func (in *Instance) Var(name string) (types.Value, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	v, ok := in.vars[strings.ToLower(name)]
	return v, ok
}

// SetVar writes a process variable.
func (in *Instance) SetVar(name string, v types.Value) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.vars[strings.ToLower(name)] = v
}

// Snapshot returns the instance's current visibility stamp.
func (in *Instance) Snapshot() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.snapshot
}

// ActivityStatus returns the status of one activity instance.
func (in *Instance) ActivityStatus(name string) (string, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.acts[strings.ToLower(name)]
	if !ok {
		return "", false
	}
	return st.Status, true
}

// run executes the body and finalizes the instance.
func (in *Instance) run() {
	err := in.setupTempRelations()
	if err == nil {
		err = in.runNode(in.Process.Body)
	}
	in.teardownTempRelations()

	end := in.eng.db.Store().CurrentStamp()
	status := database.StatusCompleted
	if err != nil {
		status = StatusFailed
		in.eng.logf("process %s instance %d failed: %v", in.Process.Name, in.ID, err)
	}
	in.mu.Lock()
	in.status = status
	in.err = err
	in.mu.Unlock()
	in.eng.db.Exec("UPDATE "+database.TableProcessInstance+" SET status = ?, end_ts = ? WHERE id = ?",
		types.NewString(status), types.NewInt(end), types.NewInt(in.ID))
	// §VI-A: stamp pending logical deletions and GC what became safe.
	if gcErr := in.eng.iso.FinishProcess(in.ID); gcErr != nil {
		in.eng.logf("isolation GC after instance %d: %v", in.ID, gcErr)
	}
	close(in.done)
}

func (in *Instance) setupTempRelations() error {
	for i := range in.Process.Relations {
		rel := &in.Process.Relations[i]
		if !rel.Temporary {
			continue
		}
		phys := fmt.Sprintf("tmp_%d_%s", in.ID, strings.ToLower(rel.Name))
		if err := in.eng.createRelation(phys, rel); err != nil {
			return err
		}
		in.mu.Lock()
		in.temp[strings.ToLower(rel.Name)] = phys
		in.mu.Unlock()
	}
	return nil
}

func (in *Instance) teardownTempRelations() {
	in.mu.Lock()
	temps := make([]string, 0, len(in.temp))
	for _, phys := range in.temp {
		temps = append(temps, phys)
	}
	in.mu.Unlock()
	for _, phys := range temps {
		in.eng.db.Exec("DROP TABLE IF EXISTS " + phys)
	}
}

// resolveRelation maps a declared relation name to its physical table
// (temporary relations are per-instance).
func (in *Instance) resolveRelation(name string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if phys, ok := in.temp[strings.ToLower(name)]; ok {
		return phys
	}
	return name
}

// ------------------------------------------------------------ body walk

func (in *Instance) runNode(n wf.Node) error {
	switch x := n.(type) {
	case *wf.Sequence:
		for _, c := range x.Children {
			if err := in.runNode(c); err != nil {
				return err
			}
		}
		return nil
	case *wf.AndSplit:
		// Parallel split; the join waits for every branch (§V: P ∥ P).
		errs := make([]error, len(x.Branches))
		var wg sync.WaitGroup
		for i, b := range x.Branches {
			wg.Add(1)
			go func(i int, b wf.Node) {
				defer wg.Done()
				errs[i] = in.runNode(b)
			}(i, b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	case *wf.OrSplit:
		// Guarded choice: the first branch whose condition holds is
		// triggered; the others are invalidated (§V: once a branch is
		// triggered, the other can no longer be triggered).
		chosen := -1
		for i, cond := range x.Conditions {
			if cond == "" {
				chosen = i
				break
			}
			ok, err := in.evalCondition(cond)
			if err != nil {
				return fmt.Errorf("enact: orSplit condition %q: %w", cond, err)
			}
			if ok {
				chosen = i
				break
			}
		}
		if chosen < 0 {
			return fmt.Errorf("enact: no orSplit branch is eligible")
		}
		// Invalidate the untriggered branches' activities.
		for i, b := range x.Branches {
			if i == chosen {
				continue
			}
			for _, a := range b.Activities(nil) {
				in.markActivity(a.Name, database.StatusCompleted, true)
			}
		}
		return in.runNode(x.Branches[chosen])
	case *wf.If:
		ok, err := in.evalCondition(x.Condition)
		if err != nil {
			return fmt.Errorf("enact: if condition %q: %w", x.Condition, err)
		}
		if !ok {
			for _, a := range x.Then.Activities(nil) {
				in.markActivity(a.Name, database.StatusCompleted, true)
			}
			return nil
		}
		return in.runNode(x.Then)
	case *wf.Activity:
		return in.runActivity(x)
	}
	return fmt.Errorf("enact: unknown node %T", n)
}

// markActivity transitions an activity instance's status (and start/end
// stamps). invalidated marks skipped activities as completed without
// execution.
func (in *Instance) markActivity(name, status string, invalidated bool) {
	in.mu.Lock()
	st, ok := in.acts[strings.ToLower(name)]
	performer := in.user
	if ok {
		st.Status = status
		if invalidated {
			st.invalidated = true
		}
		if st.performer != "" {
			performer = st.performer
		}
	}
	in.mu.Unlock()
	if !ok {
		return
	}
	stamp := in.eng.db.Store().CurrentStamp()
	switch status {
	case database.StatusRunning:
		in.eng.db.Exec("UPDATE "+database.TableActivityInstance+" SET status = ?, start_ts = ?, username = ? WHERE id = ?",
			types.NewString(status), types.NewInt(stamp), types.NewString(performer), types.NewInt(st.ID))
	default:
		if invalidated {
			in.eng.db.Exec("UPDATE "+database.TableActivityInstance+" SET status = ? WHERE id = ?",
				types.NewString(status), types.NewInt(st.ID))
		} else {
			in.eng.db.Exec("UPDATE "+database.TableActivityInstance+" SET status = ?, end_ts = ? WHERE id = ?",
				types.NewString(status), types.NewInt(stamp), types.NewInt(st.ID))
		}
	}
}

// ------------------------------------------------------------ activities

func (in *Instance) runActivity(a *wf.Activity) error {
	// Role resolution (§IV-A: "an activity must be performed by a
	// different group of users"): when the activity names a group, the
	// performing user must belong to it — the starter if they are a
	// member, otherwise any registered member of the group.
	if a.Group != "" {
		performer, err := in.resolvePerformer(a.Group)
		if err != nil {
			in.markActivity(a.Name, StatusFailed, false)
			return fmt.Errorf("enact: activity %q: %w", a.Name, err)
		}
		if st := in.activityState(a.Name); st != nil {
			in.mu.Lock()
			st.performer = performer
			in.mu.Unlock()
		}
	}
	in.markActivity(a.Name, database.StatusRunning, false)
	err := in.execActivity(a)
	if err != nil {
		in.markActivity(a.Name, StatusFailed, false)
		return fmt.Errorf("enact: activity %q: %w", a.Name, err)
	}
	in.markActivity(a.Name, database.StatusCompleted, false)
	return nil
}

// resolvePerformer picks the user carrying out a group-bound activity.
func (in *Instance) resolvePerformer(group string) (string, error) {
	ok, err := in.eng.db.UserInGroup(in.user, group)
	if err != nil {
		return "", err
	}
	if ok {
		return in.user, nil
	}
	res, err := in.eng.db.Query(
		"SELECT username FROM "+database.TableUserGroup+" WHERE grp = ? ORDER BY username LIMIT 1",
		types.NewString(group))
	if err != nil {
		return "", err
	}
	if len(res.Rows) > 0 {
		return res.Rows[0][0].Str(), nil
	}
	// No registered members: the starter acts in the role (groups are
	// created at deploy time; membership is optional in small setups).
	return in.user, nil
}

func (in *Instance) execActivity(a *wf.Activity) error {
	switch a.Kind {
	case wf.KindAssign:
		v, err := in.evalScalarAs(a.Expr, in.activityID(a.Name))
		if err != nil {
			return err
		}
		in.SetVar(a.Variable, v)
		return nil
	case wf.KindUpdate, wf.KindRunQuery:
		return in.execSQLActivity(a)
	case wf.KindCall:
		return in.execCall(a)
	case wf.KindAskUser:
		st := in.activityState(a.Name)
		answer, err := in.eng.agent.Ask(a.Prompt, a.Group, in.ID, st.ID)
		if err != nil {
			return err
		}
		if a.BindTo != "" {
			in.SetVar(a.BindTo, types.NewString(answer))
		}
		return nil
	}
	return fmt.Errorf("unknown activity kind %q", a.Kind)
}

func (in *Instance) activityState(name string) *ActivityState {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.acts[strings.ToLower(name)]
}

// activityID returns the database id of an activity instance (0 if
// unknown).
func (in *Instance) activityID(name string) int64 {
	if st := in.activityState(name); st != nil {
		return st.ID
	}
	return 0
}

// advanceSnapshot moves the instance's visibility stamp to "now" after the
// instance performs its own DML: a process must see its own effects, so
// its snapshot advances past every statement it executes. (External writes
// that serialized in between become visible too — the engine's single
// writer makes this window explicit; strict start-time isolation applies
// to instances that do not write, per §V option 1.)
func (in *Instance) advanceSnapshot() {
	stamp := in.eng.db.Store().CurrentStamp()
	in.mu.Lock()
	if stamp > in.snapshot {
		in.snapshot = stamp
	}
	in.mu.Unlock()
	in.eng.db.Exec("UPDATE "+database.TableProcessInstance+" SET snapshot = ? WHERE id = ?",
		types.NewInt(stamp), types.NewInt(in.ID))
}

// execSQLActivity runs a declarative update or query with variable
// substitution, temporary-relation renaming and (for SELECT) the §VI-A
// isolation rewrite.
func (in *Instance) execSQLActivity(a *wf.Activity) error {
	stmts, err := in.prepareSQL(a.SQL, in.activityID(a.Name))
	if err != nil {
		return err
	}
	for _, st := range stmts {
		switch s := st.(type) {
		case *sqltext.Select:
			rewritten := in.eng.iso.RewriteSelect(s, in.ID, in.Snapshot(), in.managedSet())
			res, err := in.eng.db.ExecStmt(rewritten)
			if err != nil {
				return err
			}
			in.SetVar("_rowcount", types.NewInt(int64(len(res.Rows))))
		case *sqltext.Delete:
			// Deletions go through the deletion table (§VI-A), never
			// physically removing tuples mid-process.
			whereSQL := ""
			if s.Where != nil {
				whereSQL = s.Where.String()
			}
			rel := s.Table
			if in.managedSet()[strings.ToLower(rel)] {
				n, err := in.eng.iso.LogicalDelete(rel, in.ID, whereSQL)
				if err != nil {
					return err
				}
				in.SetVar("_rowcount", types.NewInt(int64(n)))
			} else {
				res, err := in.eng.db.ExecStmt(s)
				if err != nil {
					return err
				}
				in.SetVar("_rowcount", types.NewInt(int64(res.Affected)))
			}
			in.advanceSnapshot()
		default:
			res, err := in.eng.db.ExecStmt(st)
			if err != nil {
				return err
			}
			in.SetVar("_rowcount", types.NewInt(int64(res.Affected)))
			in.advanceSnapshot()
		}
	}
	return nil
}

func (in *Instance) managedSet() map[string]bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]bool, len(in.managed))
	for k, v := range in.managed {
		out[k] = v
	}
	return out
}

// prepareSQL substitutes $variables, renames temporary relations and
// parses the script.
func (in *Instance) prepareSQL(sqlText string, aid int64) ([]sqltext.Statement, error) {
	sqlText = in.substituteVars(sqlText, aid)
	stmts, err := sqltext.ParseScript(sqlText)
	if err != nil {
		return nil, err
	}
	for _, st := range stmts {
		renameTables(st, in.resolveRelation)
	}
	return stmts, nil
}

// substituteVars replaces $name tokens with SQL literals of the variable
// or constant values. Builtins: $pid (process instance id), $aid (the id
// of the activity instance currently executing — the Figure 3 createdBy
// provenance hook), $snapshot, $user.
func (in *Instance) substituteVars(s string, aid int64) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '$' {
			sb.WriteByte(s[i])
			i++
			continue
		}
		j := i + 1
		for j < len(s) && (isWordByte(s[j])) {
			j++
		}
		name := s[i+1 : j]
		switch strings.ToLower(name) {
		case "pid":
			sb.WriteString(fmt.Sprintf("%d", in.ID))
		case "aid":
			sb.WriteString(fmt.Sprintf("%d", aid))
		case "snapshot":
			sb.WriteString(fmt.Sprintf("%d", in.Snapshot()))
		case "user":
			sb.WriteString(types.NewString(in.user).SQLLiteral())
		default:
			if v, ok := in.Var(name); ok {
				sb.WriteString(v.SQLLiteral())
			} else {
				sb.WriteString(s[i:j]) // leave unknown tokens alone
			}
		}
		i = j
	}
	return sb.String()
}

// substituteVarRefs replaces unqualified column references that name a
// process variable or constant with the variable's current value. It does
// not descend into subqueries, whose column references resolve against
// their own FROM relations.
func (in *Instance) substituteVarRefs(e sqltext.Expr) sqltext.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *sqltext.ColumnRef:
		if x.Table == "" {
			if v, ok := in.Var(x.Column); ok {
				return &sqltext.Literal{Value: v}
			}
		}
		return x
	case *sqltext.Binary:
		return &sqltext.Binary{Op: x.Op, L: in.substituteVarRefs(x.L), R: in.substituteVarRefs(x.R)}
	case *sqltext.Unary:
		return &sqltext.Unary{Op: x.Op, X: in.substituteVarRefs(x.X)}
	case *sqltext.FuncCall:
		out := *x
		out.Args = make([]sqltext.Expr, len(x.Args))
		for i, a := range x.Args {
			out.Args[i] = in.substituteVarRefs(a)
		}
		return &out
	case *sqltext.IsNull:
		return &sqltext.IsNull{X: in.substituteVarRefs(x.X), Not: x.Not}
	case *sqltext.Like:
		return &sqltext.Like{X: in.substituteVarRefs(x.X), Not: x.Not, Pattern: in.substituteVarRefs(x.Pattern)}
	case *sqltext.Between:
		return &sqltext.Between{X: in.substituteVarRefs(x.X), Not: x.Not, Lo: in.substituteVarRefs(x.Lo), Hi: in.substituteVarRefs(x.Hi)}
	case *sqltext.InExpr:
		out := *x
		out.X = in.substituteVarRefs(x.X)
		if len(x.List) > 0 {
			out.List = make([]sqltext.Expr, len(x.List))
			for i, le := range x.List {
				out.List[i] = in.substituteVarRefs(le)
			}
		}
		return &out
	case *sqltext.CaseExpr:
		out := &sqltext.CaseExpr{Operand: in.substituteVarRefs(x.Operand)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sqltext.WhenClause{Cond: in.substituteVarRefs(w.Cond), Result: in.substituteVarRefs(w.Result)})
		}
		out.Else = in.substituteVarRefs(x.Else)
		return out
	}
	return e
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// evalCondition evaluates a boolean process expression ("n > 3").
func (in *Instance) evalCondition(expr string) (bool, error) {
	v, err := in.evalScalar(expr)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return v.AsBool()
}

// evalScalar evaluates a scalar expression with variables substituted,
// via a one-row SELECT (subqueries therefore work: "(SELECT COUNT(*)
// FROM t)"). Variables may be referenced bare ("n > 3") or as $n;
// bare variable names shadow column names inside process expressions.
func (in *Instance) evalScalar(expr string) (types.Value, error) {
	return in.evalScalarAs(expr, 0)
}

// evalScalarAs evaluates a scalar expression in the context of an
// activity instance (binding $aid).
func (in *Instance) evalScalarAs(expr string, aid int64) (types.Value, error) {
	sqlText := "SELECT " + in.substituteVars(expr, aid)
	st, err := sqltext.Parse(sqlText)
	if err != nil {
		return types.Null, err
	}
	sel, ok := st.(*sqltext.Select)
	if !ok {
		return types.Null, fmt.Errorf("enact: %q is not a scalar expression", expr)
	}
	for i := range sel.Items {
		sel.Items[i].Expr = in.substituteVarRefs(sel.Items[i].Expr)
	}
	renameTables(sel, in.resolveRelation)
	rewritten := in.eng.iso.RewriteSelect(sel, in.ID, in.Snapshot(), in.managedSet())
	res, err := in.eng.db.ExecStmt(rewritten)
	if err != nil {
		return types.Null, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return types.Null, fmt.Errorf("enact: expression %q did not yield a single value", expr)
	}
	return res.Rows[0][0], nil
}

// execCall instantiates and runs a procedure (§V activity
// (S1..Sn) ← p(e1..en, T^w)).
func (in *Instance) execCall(a *wf.Activity) error {
	fn, ok := in.Process.FunctionByName(a.Function)
	if !ok {
		return fmt.Errorf("no function %q", a.Function)
	}
	proc, err := in.eng.reg.New(fn.Class)
	if err != nil {
		return err
	}
	env := in.buildEnv(a)
	st := in.activityState(a.Name)
	in.mu.Lock()
	st.proc = proc
	st.env = env
	in.mu.Unlock()
	if err := proc.Run(env); err != nil {
		return err
	}
	// A procedure's output relations are this instance's own effects:
	// subsequent activities must see them (§V: (S1..Sn) feed the rest of
	// the process), so the snapshot advances past the call.
	in.advanceSnapshot()
	return nil
}

func (in *Instance) buildEnv(a *wf.Activity) *module.Env {
	resolve := func(names []string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = in.resolveRelation(n)
		}
		return out
	}
	in.mu.Lock()
	vars := make(map[string]types.Value, len(in.vars))
	for k, v := range in.vars {
		vars[k] = v
	}
	aid := int64(0)
	if st := in.acts[strings.ToLower(a.Name)]; st != nil {
		aid = st.ID
	}
	in.mu.Unlock()
	return &module.Env{
		DB:               in.eng.db,
		Inputs:           resolve(a.Inputs),
		Outputs:          resolve(a.Outputs),
		InOuts:           resolve(a.InOuts),
		Vars:             vars,
		ProcessInstance:  in.ID,
		ActivityInstance: aid,
		Logf:             in.eng.logf,
	}
}

// ------------------------------------------------------- delta routing

// routeDelta applies one UP action to this instance (§V's scope table):
//
//	ra     running activity instances → running handler (p_h,r)
//	ta-rp  terminated activities, running process → finished handler
//	ta-tp  terminated activities, terminated process → finished handler
//	fa-rp  future activities, running process → extend the snapshot so
//	       the activity sees the delta when it starts
func (in *Instance) routeDelta(up wf.UP, d module.Delta) {
	st := in.activityState(up.Activity)
	if st == nil {
		return
	}
	in.mu.Lock()
	actStatus := st.Status
	procStatus := in.status
	proc := st.proc
	env := st.env
	skipped := st.invalidated
	in.mu.Unlock()
	if skipped {
		return // never executed: nothing to propagate into
	}

	switch up.Scope {
	case wf.ScopeRunning:
		if actStatus != database.StatusRunning || procStatus != database.StatusRunning {
			return
		}
		in.invokeHandler(proc, env, d, module.PhaseRunning, up)
	case wf.ScopeTerminatedRunning:
		if actStatus != database.StatusCompleted || procStatus != database.StatusRunning {
			return
		}
		in.invokeHandler(proc, env, d, module.PhaseFinished, up)
	case wf.ScopeTerminatedTerminated:
		if actStatus != database.StatusCompleted || procStatus != database.StatusCompleted {
			return
		}
		in.invokeHandler(proc, env, d, module.PhaseFinished, up)
	case wf.ScopeFutureRunning:
		if actStatus != database.StatusNotStarted || procStatus != database.StatusRunning {
			return
		}
		// Extend visibility: the future activity instance must see the
		// delta (§V option 2). The instance snapshot advances to now.
		stamp := in.eng.db.Store().CurrentStamp()
		in.mu.Lock()
		if stamp > in.snapshot {
			in.snapshot = stamp
		}
		in.mu.Unlock()
		in.eng.db.Exec("UPDATE "+database.TableProcessInstance+" SET snapshot = ? WHERE id = ?",
			types.NewInt(stamp), types.NewInt(in.ID))
	}
}

// invokeHandler calls the procedure's delta handler; non-procedure
// activities are repaired by re-execution (queries/updates re-run on the
// fresh data; assignments are unaffected, §VI-B).
func (in *Instance) invokeHandler(proc module.Procedure, env *module.Env, d module.Delta, phase module.Phase, up wf.UP) {
	a, ok := in.Process.ActivityByName(up.Activity)
	if !ok {
		return
	}
	switch a.Kind {
	case wf.KindCall:
		if proc == nil || env == nil {
			return
		}
		henv := *env
		henv.Delta = &d
		henv.Phase = phase
		if err := proc.Update(&henv); err != nil {
			in.eng.logf("delta handler of %s/%s: %v", in.Process.Name, a.Name, err)
		}
	case wf.KindUpdate, wf.KindRunQuery:
		// Repair by re-execution on the fresh data: the UP action
		// explicitly opts this activity into seeing ΔR, so the snapshot
		// advances before the re-run (otherwise the rewritten SELECT
		// would filter out exactly the delta being propagated).
		in.advanceSnapshot()
		if err := in.execSQLActivity(a); err != nil {
			in.eng.logf("repair of %s/%s: %v", in.Process.Name, a.Name, err)
		}
	case wf.KindAssign:
		// §VI-B: "Variable assignments are unaffected by updates."
	}
}
