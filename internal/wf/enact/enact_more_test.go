package enact

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ediflow/internal/database"
	"ediflow/internal/module"
)

// The "*" macro of §V option 3: ΔR propagates to every future activity of
// a running process.
func TestUPMacroAllActivities(t *testing.T) {
	e, db, reg := newEngine(t)
	reg.Register("noop", func() module.Procedure {
		return &module.Func{ProcName: "noop", RunFn: func(env *module.Env) error { return nil }}
	})
	release := make(chan struct{})
	e.agent = AgentFunc(func(prompt, group string) (string, error) {
		<-release
		return "", nil
	})
	xml := `
<process name="macro">
  <relation name="src" primaryKey="id">
    <attribute name="id" type="int"/>
  </relation>
  <variable name="a" type="string"/>
  <variable name="n1" type="int"/>
  <variable name="n2" type="int"/>
  <body>
    <sequence>
      <activity name="hold"><askUser prompt="wait" bindTo="a"/></activity>
      <activity name="c1"><assign variable="n1" value="(SELECT COUNT(*) FROM src)"/></activity>
      <activity name="c2"><assign variable="n2" value="(SELECT COUNT(*) FROM src)"/></activity>
    </sequence>
  </body>
  <updatePropagation relation="src" activity="*" scope="fa-rp"/>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id) VALUES (1)")
	inst, _ := e.Start("macro", "u")
	snap0 := inst.Snapshot()
	// While the process holds, new data must become visible to ALL
	// not-yet-started activities via the macro.
	db.Exec("INSERT INTO src (id) VALUES (2), (3)")
	waitFor(t, func() bool { return inst.Snapshot() > snap0 })
	close(release)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	n1, _ := inst.Var("n1")
	n2, _ := inst.Var("n2")
	if n1.Int() != 3 || n2.Int() != 3 {
		t.Fatalf("future activities saw n1=%v n2=%v, want 3", n1, n2)
	}
}

// Role resolution: a group-bound activity is performed by a member of the
// group, recorded in the ActivityInstance table.
func TestGroupPerformerResolution(t *testing.T) {
	e, db, _ := newEngine(t)
	db.EnsureUser("alice", "")
	db.EnsureGroup("analysts")
	db.AddUserToGroup("alice", "analysts")
	xml := `
<process name="roles">
  <variable name="a" type="string"/>
  <body>
    <activity name="review" group="analysts"><askUser prompt="go" bindTo="a"/></activity>
  </body>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	// Starter is not in the group: the registered member performs.
	inst, _ := e.Start("roles", "bob")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	performer, _ := db.QueryString("SELECT username FROM " + database.TableActivityInstance +
		" WHERE activity = 'review' AND process_instance = 1")
	if performer != "alice" {
		t.Fatalf("performer: %q, want alice", performer)
	}
	// Starter in the group: the starter performs.
	inst2, _ := e.Start("roles", "alice")
	inst2.Wait()
	performer, _ = db.QueryString("SELECT username FROM " + database.TableActivityInstance +
		" WHERE activity = 'review' AND process_instance = 2")
	if performer != "alice" {
		t.Fatalf("performer: %q", performer)
	}
}

// Process-based isolation (§VI-A first part): tuples tagged with the
// creating process instance via $pid let an activity see only its own
// process's data — the paper's createdBy pattern.
func TestProcessProvenancePattern(t *testing.T) {
	e, _, _ := newEngine(t)
	xml := `
<process name="prov">
  <relation name="uploads">
    <attribute name="item" type="string"/>
    <attribute name="created_by" type="int"/>
  </relation>
  <variable name="mine" type="int"/>
  <variable name="all" type="int"/>
  <body>
    <sequence>
      <activity name="upload"><update>
        INSERT INTO uploads (item, created_by) VALUES ('data', $pid)
      </update></activity>
      <activity name="own"><assign variable="mine" value="(SELECT COUNT(*) FROM uploads WHERE created_by = $pid)"/></activity>
      <activity name="total"><assign variable="all" value="(SELECT COUNT(*) FROM uploads)"/></activity>
    </sequence>
  </body>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	// Two sequential instances: the second sees only its own upload via
	// the provenance filter, even though both rows exist.
	i1, _ := e.Start("prov", "u")
	if err := i1.Wait(); err != nil {
		t.Fatal(err)
	}
	i2, _ := e.Start("prov", "u")
	if err := i2.Wait(); err != nil {
		t.Fatal(err)
	}
	mine, _ := i2.Var("mine")
	all, _ := i2.Var("all")
	if mine.Int() != 1 {
		t.Fatalf("instance saw %v own uploads, want 1", mine)
	}
	if all.Int() != 2 {
		t.Fatalf("instance saw %v total uploads, want 2", all)
	}
}

// A procedure's Update error must not crash routing; it is logged and the
// process continues.
func TestDeltaHandlerErrorIsContained(t *testing.T) {
	var logged []string
	var mu sync.Mutex
	e, db, reg := newEngine(t)
	e.logf = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	reg.Register("fragile", func() module.Procedure {
		return &module.Func{
			ProcName: "fragile",
			RunFn:    func(env *module.Env) error { return nil },
			UpdateFn: func(env *module.Env) error { return fmt.Errorf("handler exploded") },
		}
	})
	if _, err := e.DeployXML(fmt.Sprintf(reactiveXML, "ta-tp")); err != nil {
		t.Fatal(err)
	}
	// Re-register under the expected class name used by reactiveXML.
	reg.Register("reactive", func() module.Procedure {
		return &module.Func{
			ProcName: "reactive",
			RunFn:    func(env *module.Env) error { return nil },
			UpdateFn: func(env *module.Env) error { return fmt.Errorf("handler exploded") },
		}
	})
	inst, _ := e.Start("reactive", "u")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range logged {
			if strings.Contains(l, "handler exploded") {
				return true
			}
		}
		return false
	})
	// The database stays healthy.
	n, err := db.QueryInt("SELECT COUNT(*) FROM src")
	if err != nil || n != 1 {
		t.Fatalf("%d %v", n, err)
	}
}

// Temporary relations must also work under concurrent AND-split branches.
func TestAndSplitWithSharedVariables(t *testing.T) {
	e, _, _ := newEngine(t)
	xml := `
<process name="parvars">
  <variable name="x" type="int"/>
  <variable name="y" type="int"/>
  <body>
    <sequence>
      <andSplit>
        <branch><activity name="setx"><assign variable="x" value="1"/></activity></branch>
        <branch><activity name="sety"><assign variable="y" value="2"/></activity></branch>
      </andSplit>
      <activity name="checks"><runQuery>SELECT $x + $y</runQuery></activity>
    </sequence>
  </body>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("parvars", "u")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	x, _ := inst.Var("x")
	y, _ := inst.Var("y")
	if x.Int() != 1 || y.Int() != 2 {
		t.Fatalf("x=%v y=%v", x, y)
	}
}

// Deleting through a process goes to the deletion table and the instance
// sees its own deletes (end-to-end through the enactment layer).
func TestProcessDeleteUsesLogicalDeletion(t *testing.T) {
	e, db, _ := newEngine(t)
	xml := `
<process name="deleter">
  <relation name="stock" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="qty" type="int"/>
  </relation>
  <variable name="left" type="int"/>
  <body>
    <sequence>
      <activity name="fill"><update>INSERT INTO stock (id, qty) VALUES (1, 5), (2, 0), (3, 7)</update></activity>
      <activity name="purge"><update>DELETE FROM stock WHERE qty = 0</update></activity>
      <activity name="count"><assign variable="left" value="(SELECT COUNT(*) FROM stock)"/></activity>
    </sequence>
  </body>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("deleter", "u")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	left, _ := inst.Var("left")
	if left.Int() != 2 {
		t.Fatalf("instance saw %v rows after its delete, want 2", left)
	}
	// After the instance ended with no concurrent readers, the tuple is
	// physically gone and the deletion table drained.
	waitFor(t, func() bool {
		n, _ := db.QueryInt("SELECT COUNT(*) FROM stock")
		return n == 2
	})
	pend, err := e.Isolation().PendingDeletions("stock")
	if err != nil || pend != 0 {
		t.Fatalf("pending deletions: %d, %v", pend, err)
	}
}

// RowTypes sanity for the activity-instance bookkeeping timestamps.
func TestActivityTimestamps(t *testing.T) {
	e, db, _ := newEngine(t)
	if _, err := e.DeployXML(basicXML); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("basic", "ana")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT start_ts, end_ts FROM " + database.TableActivityInstance + " WHERE activity = 'seed'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("%v %v", res, err)
	}
	start, _ := res.Rows[0][0].AsInt()
	end, _ := res.Rows[0][1].AsInt()
	if start <= 0 || end < start {
		t.Fatalf("timestamps: start=%d end=%d", start, end)
	}
}

// Repairing a query activity must see the propagated delta: the UP action
// advances the activity's visibility before the re-run.
func TestQueryActivityRepairSeesDelta(t *testing.T) {
	e, db, _ := newEngine(t)
	release := make(chan struct{})
	e.agent = AgentFunc(func(prompt, group string) (string, error) {
		<-release
		return "", nil
	})
	xml := `
<process name="repair">
  <relation name="src" primaryKey="id">
    <attribute name="id" type="int"/>
  </relation>
  <variable name="a" type="string"/>
  <body>
    <sequence>
      <activity name="scan"><runQuery>SELECT * FROM src</runQuery></activity>
      <activity name="hold"><askUser prompt="wait" bindTo="a"/></activity>
    </sequence>
  </body>
  <updatePropagation relation="src" activity="scan" scope="ta-rp"/>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id) VALUES (1)")
	inst, _ := e.Start("repair", "u")
	waitFor(t, func() bool {
		st, _ := inst.ActivityStatus("scan")
		return st == database.StatusCompleted
	})
	// The initial run saw one row.
	if rc, _ := inst.Var("_rowcount"); rc.Int() != 1 {
		t.Fatalf("initial rowcount: %v", rc)
	}
	// Delta arrives while the process holds: the repair re-runs the query
	// and must count the new row.
	db.Exec("INSERT INTO src (id) VALUES (2), (3)")
	waitFor(t, func() bool {
		rc, _ := inst.Var("_rowcount")
		return rc.Int() == 3
	})
	close(release)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Invalidated activities (untriggered OR-split branch) must not be
// repaired by update propagation.
func TestInvalidatedActivityNotRepaired(t *testing.T) {
	e, db, _ := newEngine(t)
	release := make(chan struct{})
	e.agent = AgentFunc(func(prompt, group string) (string, error) {
		<-release
		return "", nil
	})
	xml := `
<process name="skiprepair">
  <relation name="src" primaryKey="id">
    <attribute name="id" type="int"/>
  </relation>
  <relation name="log">
    <attribute name="who" type="string"/>
  </relation>
  <variable name="a" type="string"/>
  <body>
    <sequence>
      <orSplit>
        <branch condition="1 &gt; 2">
          <activity name="never"><update>INSERT INTO log (who) VALUES ('never')</update></activity>
        </branch>
        <branch>
          <activity name="always"><update>INSERT INTO log (who) VALUES ('always')</update></activity>
        </branch>
      </orSplit>
      <activity name="hold"><askUser prompt="wait" bindTo="a"/></activity>
    </sequence>
  </body>
  <updatePropagation relation="src" activity="never" scope="ta-rp"/>
  <updatePropagation relation="src" activity="always" scope="ta-rp"/>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("skiprepair", "u")
	waitFor(t, func() bool {
		st, _ := inst.ActivityStatus("always")
		return st == database.StatusCompleted
	})
	// A delta on src repairs "always" (re-runs its INSERT) but must not
	// touch the invalidated "never".
	db.Exec("INSERT INTO src (id) VALUES (1)")
	waitFor(t, func() bool {
		n, _ := db.QueryInt("SELECT COUNT(*) FROM log WHERE who = 'always'")
		return n == 2
	})
	never, _ := db.QueryInt("SELECT COUNT(*) FROM log WHERE who = 'never'")
	if never != 0 {
		t.Fatalf("invalidated activity was repaired: %d rows", never)
	}
	close(release)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
}
