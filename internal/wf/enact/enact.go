// Package enact executes EdiFlow processes (§VI): it records process and
// activity instances in the database, walks the structured body
// (sequence, AND/OR split-join, conditionals), runs activities (variable
// assignment, declarative updates, queries, procedure calls, user
// interaction), applies per-instance isolation (§VI-A) and routes
// reactive update propagation to delta handlers (§V, §VI-B).
package enact

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"ediflow/internal/database"
	"ediflow/internal/module"
	"ediflow/internal/types"
	"ediflow/internal/wf"
	"ediflow/internal/wf/isolation"
	"ediflow/internal/wf/react"
)

// StatusFailed extends the paper's status set for error reporting.
const StatusFailed = "failed"

// UserAgent answers askUser activities: the human in the loop. The
// returned string is bound to the activity's bindTo variable.
type UserAgent interface {
	Ask(prompt, group string, processInstance, activityInstance int64) (string, error)
}

// AgentFunc adapts a function to UserAgent.
type AgentFunc func(prompt, group string) (string, error)

// Ask implements UserAgent.
func (f AgentFunc) Ask(prompt, group string, _, _ int64) (string, error) { return f(prompt, group) }

// Engine deploys and runs processes.
type Engine struct {
	db     *database.DB
	reg    *module.Registry
	iso    *isolation.Manager
	router *react.Router
	agent  UserAgent
	logf   func(format string, args ...any)

	mu        sync.Mutex
	deployed  map[string]*wf.Process
	instances map[int64]*Instance
}

// Option configures the engine.
type Option func(*Engine)

// WithAgent sets the user agent for askUser activities.
func WithAgent(a UserAgent) Option { return func(e *Engine) { e.agent = a } }

// WithLogf sets the progress logger.
func WithLogf(f func(format string, args ...any)) Option {
	return func(e *Engine) { e.logf = f }
}

// NewEngine builds an enactment engine over a database and a procedure
// registry.
func NewEngine(db *database.DB, reg *module.Registry, opts ...Option) *Engine {
	e := &Engine{
		db:        db,
		reg:       reg,
		iso:       isolation.New(db),
		router:    react.NewRouter(db),
		agent:     AgentFunc(func(prompt, group string) (string, error) { return "", nil }),
		logf:      func(format string, args ...any) { log.Printf("[ediflow] "+format, args...) },
		deployed:  map[string]*wf.Process{},
		instances: map[int64]*Instance{},
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// DB exposes the engine's database.
func (e *Engine) DB() *database.DB { return e.db }

// Quiesce blocks until every reactive delta queued by update propagation
// has been delivered to its delta handler.
func (e *Engine) Quiesce() { e.router.Quiesce() }

// Close drains and stops the reactive delivery workers. Deployed process
// definitions stay in the database.
func (e *Engine) Close() { e.router.Close() }

// Isolation exposes the isolation manager (examples and tests use it to
// inspect deletion tables).
func (e *Engine) Isolation() *isolation.Manager { return e.iso }

// Deploy validates and installs a process: records its definition in the
// Process/Activity tables, creates its persistent relations, ensures
// deletion tables, and compiles UP actions into triggers (§VI-B).
func (e *Engine) Deploy(p *wf.Process) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	if _, dup := e.deployed[strings.ToLower(p.Name)]; dup {
		e.mu.Unlock()
		return fmt.Errorf("enact: process %q already deployed", p.Name)
	}
	e.mu.Unlock()

	// Persistent relations.
	for _, rel := range p.Relations {
		if rel.Temporary {
			continue
		}
		if err := e.createRelation(rel.Name, &rel); err != nil {
			return err
		}
		if err := e.iso.EnsureDeletionTable(rel.Name); err != nil {
			return err
		}
	}

	// Record the definition (enactment "consists of adding the necessary
	// tuples to the Process and Activity relations", §VI).
	n, err := e.db.QueryInt("SELECT COUNT(*) FROM "+database.TableProcess+" WHERE name = ?", types.NewString(p.Name))
	if err != nil {
		return err
	}
	if n == 0 {
		// Persist a canonical XML spec even for programmatically built
		// processes; DeployXML later overwrites it with the source text.
		spec, err := wf.MarshalXML(p)
		if err != nil {
			spec = ""
		}
		if _, err := e.db.Exec("INSERT INTO "+database.TableProcess+" (name, spec) VALUES (?, ?)",
			types.NewString(p.Name), types.NewString(spec)); err != nil {
			return err
		}
		for _, a := range p.AllActivities() {
			if _, err := e.db.Exec(
				"INSERT INTO "+database.TableActivity+" (id, process, name, grp) VALUES (?, ?, ?, ?)",
				types.NewString(p.Name+"/"+a.Name), types.NewString(p.Name),
				types.NewString(a.Name), types.NewString(a.Group)); err != nil {
				return err
			}
			if a.Group != "" {
				if err := e.db.EnsureGroup(a.Group); err != nil {
					return err
				}
			}
		}
	}

	// Compile UP actions into triggers. Activity "*" is the paper's macro
	// (§V option 3): propagate ΔR to every activity yet to start in a
	// running process — expanded here into one UP per activity, exactly
	// the "syntax which will then be compiled into UPs" the paper sketches.
	for _, up := range p.UPs {
		if up.Activity == "*" {
			for _, a := range p.AllActivities() {
				expanded := up
				expanded.Activity = a.Name
				if err := e.router.Register(p.Name, expanded, e); err != nil {
					return err
				}
			}
			continue
		}
		if err := e.router.Register(p.Name, up, e); err != nil {
			return err
		}
	}

	e.mu.Lock()
	e.deployed[strings.ToLower(p.Name)] = p
	e.mu.Unlock()
	return nil
}

// DeployXML parses and deploys a process from its XML definition, storing
// the XML text in the Process table.
func (e *Engine) DeployXML(xmlText string) (*wf.Process, error) {
	p, err := wf.ParseXMLString(xmlText)
	if err != nil {
		return nil, err
	}
	if err := e.Deploy(p); err != nil {
		return nil, err
	}
	_, err = e.db.Exec("UPDATE "+database.TableProcess+" SET spec = ? WHERE name = ?",
		types.NewString(xmlText), types.NewString(p.Name))
	return p, err
}

func (e *Engine) createRelation(physName string, rel *wf.Relation) error {
	if _, exists := e.db.Catalog().Table(physName); exists {
		return nil
	}
	var cols []string
	for _, at := range rel.Attributes {
		col := at.Name + " " + at.Type.String()
		if strings.EqualFold(at.Name, rel.PrimaryKey) {
			col += " PRIMARY KEY"
		}
		cols = append(cols, col)
	}
	_, err := e.db.Exec(fmt.Sprintf("CREATE TABLE %s (%s)", physName, strings.Join(cols, ", ")))
	return err
}

// Process returns a deployed process by name.
func (e *Engine) Process(name string) (*wf.Process, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.deployed[strings.ToLower(name)]
	return p, ok
}

// Instances returns the live instance handles.
func (e *Engine) Instances() []*Instance {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Instance, 0, len(e.instances))
	for _, in := range e.instances {
		out = append(out, in)
	}
	return out
}

// Start creates a process instance for the named process on behalf of a
// user and runs it asynchronously. The returned handle exposes Wait().
func (e *Engine) Start(processName, user string) (*Instance, error) {
	p, ok := e.Process(processName)
	if !ok {
		return nil, fmt.Errorf("enact: process %q is not deployed", processName)
	}
	pid, err := e.db.NextID(database.TableProcessInstance)
	if err != nil {
		return nil, err
	}
	snapshot := e.db.Store().CurrentStamp()
	if _, err := e.db.Exec(
		"INSERT INTO "+database.TableProcessInstance+" (id, process, status, start_ts, end_ts, snapshot) VALUES (?, ?, ?, ?, NULL, ?)",
		types.NewInt(pid), types.NewString(p.Name), types.NewString(database.StatusRunning),
		types.NewInt(snapshot), types.NewInt(snapshot)); err != nil {
		return nil, err
	}
	inst := &Instance{
		ID:       pid,
		Process:  p,
		eng:      e,
		user:     user,
		vars:     map[string]types.Value{},
		snapshot: snapshot,
		status:   database.StatusRunning,
		done:     make(chan struct{}),
		acts:     map[string]*ActivityState{},
		managed:  map[string]bool{},
		temp:     map[string]string{},
	}
	// Constants and declared variables (zero values).
	for _, c := range p.Constants {
		inst.vars[strings.ToLower(c.Name)] = types.NewString(c.Value)
	}
	for _, v := range p.Variables {
		inst.vars[strings.ToLower(v.Name)] = types.Null
		_ = v
	}
	for _, rel := range p.Relations {
		if !rel.Temporary {
			inst.managed[strings.ToLower(rel.Name)] = true
		}
	}
	// Pre-create activity states so UP routing can classify not-started
	// activities.
	for _, a := range p.AllActivities() {
		aid, err := e.db.NextID(database.TableActivityInstance)
		if err != nil {
			return nil, err
		}
		if _, err := e.db.Exec(
			"INSERT INTO "+database.TableActivityInstance+" (id, activity, process_instance, status, start_ts, end_ts, username) VALUES (?, ?, ?, ?, NULL, NULL, ?)",
			types.NewInt(aid), types.NewString(a.Name), types.NewInt(pid),
			types.NewString(database.StatusNotStarted), types.NewString("")); err != nil {
			return nil, err
		}
		inst.acts[strings.ToLower(a.Name)] = &ActivityState{ID: aid, Activity: a, Status: database.StatusNotStarted}
	}

	e.mu.Lock()
	e.instances[pid] = inst
	e.mu.Unlock()

	go inst.run()
	return inst, nil
}

// RouteDelta implements react.Target: per-scope delta routing (§V).
func (e *Engine) RouteDelta(process string, up wf.UP, d module.Delta) {
	e.mu.Lock()
	instances := make([]*Instance, 0, len(e.instances))
	for _, in := range e.instances {
		if strings.EqualFold(in.Process.Name, process) {
			instances = append(instances, in)
		}
	}
	e.mu.Unlock()
	for _, in := range instances {
		in.routeDelta(up, d)
	}
}
