package enact

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/module"
	"ediflow/internal/types"
)

func newEngine(t *testing.T, opts ...Option) (*Engine, *database.DB, *module.Registry) {
	t.Helper()
	db := database.MustOpenMemory()
	t.Cleanup(func() { db.Close() })
	reg := module.NewRegistry()
	quiet := WithLogf(func(string, ...any) {})
	e := NewEngine(db, reg, append([]Option{quiet}, opts...)...)
	return e, db, reg
}

const basicXML = `
<process name="basic">
  <variable name="n" type="int"/>
  <relation name="items" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="v" type="int"/>
  </relation>
  <body>
    <sequence>
      <activity name="seed"><update>
        INSERT INTO items (id, v) VALUES (1, 10), (2, 20), (3, 30)
      </update></activity>
      <activity name="count"><assign variable="n" value="(SELECT COUNT(*) FROM items)"/></activity>
      <if condition="n &gt;= 3">
        <activity name="bump"><update>UPDATE items SET v = v + 1</update></activity>
      </if>
    </sequence>
  </body>
</process>`

func TestBasicProcessEndToEnd(t *testing.T) {
	e, db, _ := newEngine(t)
	if _, err := e.DeployXML(basicXML); err != nil {
		t.Fatal(err)
	}
	inst, err := e.Start("basic", "ana")
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	if inst.Status() != database.StatusCompleted {
		t.Fatalf("status: %s", inst.Status())
	}
	// Data effects.
	sum, err := db.QueryInt("SELECT SUM(v) FROM items")
	if err != nil || sum != 63 { // 11+21+31
		t.Fatalf("sum: %d, %v", sum, err)
	}
	// Variable bound.
	n, ok := inst.Var("n")
	if !ok || n.Int() != 3 {
		t.Fatalf("n = %v", n)
	}
	// Process/activity bookkeeping in the database (Figure 3 model).
	st, _ := db.QueryString("SELECT status FROM " + database.TableProcessInstance + " WHERE id = 1")
	if st != database.StatusCompleted {
		t.Fatalf("process instance status: %s", st)
	}
	cnt, _ := db.QueryInt("SELECT COUNT(*) FROM " + database.TableActivityInstance + " WHERE status = 'completed'")
	if cnt != 3 {
		t.Fatalf("completed activity instances: %d", cnt)
	}
}

func TestDeployRecordsDefinition(t *testing.T) {
	e, db, _ := newEngine(t)
	p, err := e.DeployXML(basicXML)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := db.QueryString("SELECT spec FROM "+database.TableProcess+" WHERE name = ?", types.NewString(p.Name))
	if spec == "" {
		t.Fatal("XML spec not stored")
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM " + database.TableActivity + " WHERE process = 'basic'")
	if n != 3 {
		t.Fatalf("activity definitions: %d", n)
	}
	if err := e.Deploy(p); err == nil {
		t.Fatal("double deploy must fail")
	}
}

func TestAndSplitRunsBothBranches(t *testing.T) {
	e, db, reg := newEngine(t)
	var mu sync.Mutex
	ran := map[string]bool{}
	reg.Register("track", func() module.Procedure {
		return &module.Func{ProcName: "track", RunFn: func(env *module.Env) error {
			mu.Lock()
			ran[env.Inputs[0]] = true
			mu.Unlock()
			return nil
		}}
	})
	db.Exec("CREATE TABLE l (a INT)")
	db.Exec("CREATE TABLE r (a INT)")
	_, err := e.DeployXML(`
<process name="par">
  <relation name="l"><attribute name="a" type="int"/></relation>
  <relation name="r"><attribute name="a" type="int"/></relation>
  <function name="track" class="track"/>
  <body>
    <andSplit>
      <branch><activity name="left"><callFunction name="track" inputs="l"/></activity></branch>
      <branch><activity name="right"><callFunction name="track" inputs="r"/></activity></branch>
    </andSplit>
  </body>
</process>`)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("par", "u")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran["l"] || !ran["r"] {
		t.Fatalf("branches ran: %v", ran)
	}
}

func TestOrSplitGuardedChoice(t *testing.T) {
	e, _, _ := newEngine(t)
	_, err := e.DeployXML(`
<process name="choice">
  <variable name="n" type="int"/>
  <variable name="path" type="string"/>
  <body>
    <sequence>
      <activity name="init"><assign variable="n" value="5"/></activity>
      <orSplit>
        <branch condition="n &gt; 100">
          <activity name="big"><assign variable="path" value="'big'"/></activity>
        </branch>
        <branch condition="n &gt; 1">
          <activity name="mid"><assign variable="path" value="'mid'"/></activity>
        </branch>
        <branch>
          <activity name="small"><assign variable="path" value="'small'"/></activity>
        </branch>
      </orSplit>
    </sequence>
  </body>
</process>`)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("choice", "u")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	path, _ := inst.Var("path")
	if path.Str() != "mid" {
		t.Fatalf("path: %v", path)
	}
	// Untriggered branches are invalidated, not failed.
	if st, _ := inst.ActivityStatus("big"); st != database.StatusCompleted {
		t.Fatalf("big: %s", st)
	}
}

func TestAskUserBindsAnswer(t *testing.T) {
	agent := AgentFunc(func(prompt, group string) (string, error) {
		if group != "analysts" {
			return "", fmt.Errorf("wrong group %q", group)
		}
		return "approved", nil
	})
	e, _, _ := newEngine(t, WithAgent(agent))
	_, err := e.DeployXML(`
<process name="ask">
  <variable name="answer" type="string"/>
  <body>
    <activity name="confirm" group="analysts">
      <askUser prompt="Proceed?" bindTo="answer"/>
    </activity>
  </body>
</process>`)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("ask", "ana")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	ans, _ := inst.Var("answer")
	if ans.Str() != "approved" {
		t.Fatalf("answer: %v", ans)
	}
}

func TestProcedureFailureFailsProcess(t *testing.T) {
	e, db, reg := newEngine(t)
	reg.Register("boom", func() module.Procedure {
		return &module.Func{ProcName: "boom", RunFn: func(env *module.Env) error {
			return fmt.Errorf("deliberate failure")
		}}
	})
	db.Exec("CREATE TABLE x (a INT)")
	_, err := e.DeployXML(`
<process name="failing">
  <relation name="x"><attribute name="a" type="int"/></relation>
  <function name="boom" class="boom"/>
  <body>
    <activity name="go"><callFunction name="boom" inputs="x"/></activity>
  </body>
</process>`)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("failing", "u")
	if err := inst.Wait(); err == nil {
		t.Fatal("expected failure")
	}
	if inst.Status() != StatusFailed {
		t.Fatalf("status: %s", inst.Status())
	}
	st, _ := db.QueryString("SELECT status FROM " + database.TableProcessInstance + " WHERE id = 1")
	if st != StatusFailed {
		t.Fatalf("db status: %s", st)
	}
}

func TestVariableSubstitutionInSQL(t *testing.T) {
	e, db, _ := newEngine(t)
	_, err := e.DeployXML(`
<process name="subst">
  <constant name="label" value="hello"/>
  <variable name="k" type="int"/>
  <relation name="t"><attribute name="a" type="int"/><attribute name="s" type="string"/></relation>
  <body>
    <sequence>
      <activity name="setk"><assign variable="k" value="41 + 1"/></activity>
      <activity name="ins"><update>INSERT INTO t (a, s) VALUES ($k, $label)</update></activity>
      <activity name="ins2"><update>INSERT INTO t (a, s) VALUES ($pid, $user)</update></activity>
    </sequence>
  </body>
</process>`)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("subst", "ana")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	a, _ := db.QueryInt("SELECT a FROM t WHERE s = 'hello'")
	if a != 42 {
		t.Fatalf("a: %d", a)
	}
	u, _ := db.QueryString("SELECT s FROM t WHERE a = ?", types.NewInt(inst.ID))
	if u != "ana" {
		t.Fatalf("user: %q", u)
	}
}

func TestTemporaryRelations(t *testing.T) {
	e, db, _ := newEngine(t)
	_, err := e.DeployXML(`
<process name="tmp">
  <variable name="n" type="int"/>
  <relation name="scratch" temporary="true">
    <attribute name="k" type="int"/>
  </relation>
  <body>
    <sequence>
      <activity name="fill"><update>INSERT INTO scratch (k) VALUES (1), (2)</update></activity>
      <activity name="cnt"><assign variable="n" value="(SELECT COUNT(*) FROM scratch)"/></activity>
    </sequence>
  </body>
</process>`)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("tmp", "u")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	n, _ := inst.Var("n")
	if n.Int() != 2 {
		t.Fatalf("n: %v", n)
	}
	// The temporary table is dropped at instance end.
	if _, err := db.Query(fmt.Sprintf("SELECT * FROM tmp_%d_scratch", inst.ID)); err == nil {
		t.Fatal("temporary relation survived the instance")
	}
	// And two concurrent instances do not share scratch space: start two
	// and observe distinct physical names via no PK conflicts.
	i1, _ := e.Start("tmp", "u")
	i2, _ := e.Start("tmp", "u")
	if err := i1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := i2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------- reactivity

// reactiveProc counts Run and Update invocations.
type reactiveProc struct {
	mu      sync.Mutex
	runs    int
	updates []module.Phase
	deltas  []module.Delta
	block   chan struct{} // Run blocks until closed (nil = no blocking)
}

func (p *reactiveProc) Initialize() error { return nil }
func (p *reactiveProc) Name() string      { return "reactive" }
func (p *reactiveProc) Run(env *module.Env) error {
	p.mu.Lock()
	p.runs++
	block := p.block
	p.mu.Unlock()
	if block != nil {
		<-block
	}
	return nil
}
func (p *reactiveProc) Update(env *module.Env) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.updates = append(p.updates, env.Phase)
	if env.Delta != nil {
		p.deltas = append(p.deltas, *env.Delta)
	}
	return nil
}

const reactiveXML = `
<process name="reactive">
  <relation name="src" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="v" type="int"/>
  </relation>
  <function name="vis" class="reactive"/>
  <body>
    <sequence>
      <activity name="compute"><callFunction name="vis" inputs="src"/></activity>
      <activity name="after"><runQuery>SELECT COUNT(*) FROM src</runQuery></activity>
    </sequence>
  </body>
  <updatePropagation relation="src" activity="compute" scope="%s"/>
</process>`

func TestUPScopeRunning(t *testing.T) {
	e, db, reg := newEngine(t)
	proc := &reactiveProc{block: make(chan struct{})}
	reg.Register("reactive", func() module.Procedure { return proc })
	if _, err := e.DeployXML(fmt.Sprintf(reactiveXML, "ra")); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("reactive", "u")

	// Wait until the procedure is running (blocked).
	waitFor(t, func() bool {
		st, _ := inst.ActivityStatus("compute")
		return st == database.StatusRunning
	})
	// Insert while the activity runs: the running handler must fire.
	db.Exec("INSERT INTO src (id, v) VALUES (1, 10)")
	waitFor(t, func() bool {
		proc.mu.Lock()
		defer proc.mu.Unlock()
		return len(proc.updates) == 1 && proc.updates[0] == module.PhaseRunning
	})
	proc.mu.Lock()
	if len(proc.deltas) != 1 || proc.deltas[0].Table != "src" || len(proc.deltas[0].Rows) != 1 {
		t.Fatalf("delta: %+v", proc.deltas)
	}
	proc.mu.Unlock()

	// After the activity finishes, ra no longer fires.
	close(proc.block)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (2, 20)")
	time.Sleep(50 * time.Millisecond)
	proc.mu.Lock()
	defer proc.mu.Unlock()
	if len(proc.updates) != 1 {
		t.Fatalf("updates after completion: %d", len(proc.updates))
	}
}

func TestUPScopeTerminatedRunningProcess(t *testing.T) {
	e, db, reg := newEngine(t)
	proc := &reactiveProc{}
	reg.Register("reactive", func() module.Procedure { return proc })
	// Hold the process open after `compute` using a blocking ask agent.
	release := make(chan struct{})
	e.agent = AgentFunc(func(prompt, group string) (string, error) {
		<-release
		return "", nil
	})
	xml := `
<process name="reactive">
  <relation name="src" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="v" type="int"/>
  </relation>
  <function name="vis" class="reactive"/>
  <variable name="a" type="string"/>
  <body>
    <sequence>
      <activity name="compute"><callFunction name="vis" inputs="src"/></activity>
      <activity name="hold"><askUser prompt="wait" bindTo="a"/></activity>
    </sequence>
  </body>
  <updatePropagation relation="src" activity="compute" scope="ta-rp"/>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("reactive", "u")
	waitFor(t, func() bool {
		st, _ := inst.ActivityStatus("compute")
		return st == database.StatusCompleted
	})
	// compute terminated, process still running → finished-handler fires.
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	waitFor(t, func() bool {
		proc.mu.Lock()
		defer proc.mu.Unlock()
		return len(proc.updates) == 1 && proc.updates[0] == module.PhaseFinished
	})
	close(release)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	// Process terminated: ta-rp no longer fires.
	db.Exec("INSERT INTO src (id, v) VALUES (2, 2)")
	time.Sleep(50 * time.Millisecond)
	proc.mu.Lock()
	defer proc.mu.Unlock()
	if len(proc.updates) != 1 {
		t.Fatalf("updates: %d", len(proc.updates))
	}
}

func TestUPScopeTerminatedTerminated(t *testing.T) {
	e, db, reg := newEngine(t)
	proc := &reactiveProc{}
	reg.Register("reactive", func() module.Procedure { return proc })
	if _, err := e.DeployXML(fmt.Sprintf(reactiveXML, "ta-tp")); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.Start("reactive", "u")
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	// Both activity and process terminated → handler fires on new data
	// ("apply the automated processing activities to the new pages
	// received ... even after the respective activities have finished").
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	waitFor(t, func() bool {
		proc.mu.Lock()
		defer proc.mu.Unlock()
		return len(proc.updates) == 1 && proc.updates[0] == module.PhaseFinished
	})
}

func TestUPScopeFutureExtendsSnapshot(t *testing.T) {
	e, db, reg := newEngine(t)
	reg.Register("reactive", func() module.Procedure {
		return &module.Func{ProcName: "reactive", RunFn: func(env *module.Env) error { return nil }}
	})
	release := make(chan struct{})
	e.agent = AgentFunc(func(prompt, group string) (string, error) {
		<-release
		return "", nil
	})
	xml := `
<process name="future">
  <relation name="src" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="v" type="int"/>
  </relation>
  <variable name="a" type="string"/>
  <variable name="n" type="int"/>
  <body>
    <sequence>
      <activity name="hold"><askUser prompt="wait" bindTo="a"/></activity>
      <activity name="after"><assign variable="n" value="(SELECT COUNT(*) FROM src)"/></activity>
    </sequence>
  </body>
  <updatePropagation relation="src" activity="after" scope="fa-rp"/>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)") // before start
	inst, _ := e.Start("future", "u")
	snap0 := inst.Snapshot()
	// Insert while the process runs but before `after` starts: fa-rp must
	// extend the snapshot so `after` sees it.
	db.Exec("INSERT INTO src (id, v) VALUES (2, 2)")
	waitFor(t, func() bool { return inst.Snapshot() > snap0 })
	close(release)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	n, _ := inst.Var("n")
	if n.Int() != 2 {
		t.Fatalf("future activity saw %v rows, want 2", n)
	}
}

func TestDefaultIsolationIgnoresLateInserts(t *testing.T) {
	e, db, reg := newEngine(t)
	reg.Register("reactive", func() module.Procedure {
		return &module.Func{ProcName: "reactive", RunFn: func(env *module.Env) error { return nil }}
	})
	release := make(chan struct{})
	e.agent = AgentFunc(func(prompt, group string) (string, error) {
		<-release
		return "", nil
	})
	// Same shape as the fa-rp test but WITHOUT the UP action: the default
	// behavior ignores ΔR for instances started before the change (§V
	// option 1).
	xml := `
<process name="isolated">
  <relation name="src" primaryKey="id">
    <attribute name="id" type="int"/>
    <attribute name="v" type="int"/>
  </relation>
  <variable name="a" type="string"/>
  <variable name="n" type="int"/>
  <body>
    <sequence>
      <activity name="hold"><askUser prompt="wait" bindTo="a"/></activity>
      <activity name="after"><assign variable="n" value="(SELECT COUNT(*) FROM src)"/></activity>
    </sequence>
  </body>
</process>`
	if _, err := e.DeployXML(xml); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO src (id, v) VALUES (1, 1)")
	inst, _ := e.Start("isolated", "u")
	db.Exec("INSERT INTO src (id, v) VALUES (2, 2)") // after start: invisible
	close(release)
	if err := inst.Wait(); err != nil {
		t.Fatal(err)
	}
	n, _ := inst.Var("n")
	if n.Int() != 1 {
		t.Fatalf("instance saw %v rows, want 1 (snapshot isolation)", n)
	}
	// The data is still there for new instances.
	total, _ := db.QueryInt("SELECT COUNT(*) FROM src")
	if total != 2 {
		t.Fatalf("table rows: %d", total)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
