package wf

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// MarshalXML renders a process back to the XML syntax ParseXML accepts,
// so programmatically built processes can be persisted in the Process
// table exactly like hand-written ones.
func MarshalXML(p *Process) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "<process name=%q>\n", p.Name)
	if p.Config != (Config{}) {
		fmt.Fprintf(&sb, "  <configuration driver=%q uri=%q user=%q/>\n",
			p.Config.Driver, p.Config.URI, p.Config.User)
	}
	for _, c := range p.Constants {
		fmt.Fprintf(&sb, "  <constant name=%q value=%q/>\n", c.Name, c.Value)
	}
	for _, v := range p.Variables {
		fmt.Fprintf(&sb, "  <variable name=%q type=%q/>\n", v.Name, strings.ToLower(v.Type.String()))
	}
	for _, r := range p.Relations {
		fmt.Fprintf(&sb, "  <relation name=%q", r.Name)
		if r.PrimaryKey != "" {
			fmt.Fprintf(&sb, " primaryKey=%q", r.PrimaryKey)
		}
		if r.Temporary {
			sb.WriteString(` temporary="true"`)
		}
		sb.WriteString(">\n")
		for _, a := range r.Attributes {
			fmt.Fprintf(&sb, "    <attribute name=%q type=%q/>\n", a.Name, strings.ToLower(a.Type.String()))
		}
		sb.WriteString("  </relation>\n")
	}
	for _, f := range p.Functions {
		fmt.Fprintf(&sb, "  <function name=%q class=%q/>\n", f.Name, f.Class)
	}
	sb.WriteString("  <body>\n")
	if err := marshalNode(&sb, p.Body, 4); err != nil {
		return "", err
	}
	sb.WriteString("  </body>\n")
	for _, up := range p.UPs {
		fmt.Fprintf(&sb, "  <updatePropagation relation=%q activity=%q scope=%q", up.Relation, up.Activity, up.Scope)
		if up.Policy != "" && up.Policy != PolicyCoalesce {
			fmt.Fprintf(&sb, " policy=%q", up.Policy)
		}
		sb.WriteString("/>\n")
	}
	sb.WriteString("</process>\n")
	return sb.String(), nil
}

func marshalNode(sb *strings.Builder, n Node, indent int) error {
	pad := strings.Repeat(" ", indent)
	switch x := n.(type) {
	case *Sequence:
		sb.WriteString(pad + "<sequence>\n")
		for _, c := range x.Children {
			if err := marshalNode(sb, c, indent+2); err != nil {
				return err
			}
		}
		sb.WriteString(pad + "</sequence>\n")
	case *AndSplit:
		sb.WriteString(pad + "<andSplit>\n")
		for _, b := range x.Branches {
			sb.WriteString(pad + "  <branch>\n")
			if err := marshalNode(sb, b, indent+4); err != nil {
				return err
			}
			sb.WriteString(pad + "  </branch>\n")
		}
		sb.WriteString(pad + "</andSplit>\n")
	case *OrSplit:
		sb.WriteString(pad + "<orSplit>\n")
		for i, b := range x.Branches {
			if cond := x.Conditions[i]; cond != "" {
				fmt.Fprintf(sb, "%s  <branch condition=%q>\n", pad, cond)
			} else {
				sb.WriteString(pad + "  <branch>\n")
			}
			if err := marshalNode(sb, b, indent+4); err != nil {
				return err
			}
			sb.WriteString(pad + "  </branch>\n")
		}
		sb.WriteString(pad + "</orSplit>\n")
	case *If:
		fmt.Fprintf(sb, "%s<if condition=%q>\n", pad, x.Condition)
		if err := marshalNode(sb, x.Then, indent+2); err != nil {
			return err
		}
		sb.WriteString(pad + "</if>\n")
	case *Activity:
		return marshalActivity(sb, x, indent)
	default:
		return fmt.Errorf("wf: cannot marshal node %T", n)
	}
	return nil
}

func marshalActivity(sb *strings.Builder, a *Activity, indent int) error {
	pad := strings.Repeat(" ", indent)
	fmt.Fprintf(sb, "%s<activity name=%q", pad, a.Name)
	if a.Group != "" {
		fmt.Fprintf(sb, " group=%q", a.Group)
	}
	sb.WriteString(">")
	switch a.Kind {
	case KindAssign:
		fmt.Fprintf(sb, "<assign variable=%q value=%q/>", a.Variable, a.Expr)
	case KindUpdate:
		fmt.Fprintf(sb, "<update>%s</update>", xmlEscape(a.SQL))
	case KindRunQuery:
		fmt.Fprintf(sb, "<runQuery>%s</runQuery>", xmlEscape(a.SQL))
	case KindCall:
		fmt.Fprintf(sb, "<callFunction name=%q", a.Function)
		if len(a.Inputs) > 0 {
			fmt.Fprintf(sb, " inputs=%q", strings.Join(a.Inputs, ","))
		}
		if len(a.Outputs) > 0 {
			fmt.Fprintf(sb, " outputs=%q", strings.Join(a.Outputs, ","))
		}
		if len(a.InOuts) > 0 {
			fmt.Fprintf(sb, " inouts=%q", strings.Join(a.InOuts, ","))
		}
		sb.WriteString("/>")
	case KindAskUser:
		fmt.Fprintf(sb, "<askUser prompt=%q", a.Prompt)
		if a.BindTo != "" {
			fmt.Fprintf(sb, " bindTo=%q", a.BindTo)
		}
		sb.WriteString("/>")
	default:
		return fmt.Errorf("wf: cannot marshal activity kind %q", a.Kind)
	}
	sb.WriteString("</activity>\n")
	return nil
}

func xmlEscape(s string) string {
	var buf strings.Builder
	xml.EscapeText(&buf, []byte(s))
	return buf.String()
}
