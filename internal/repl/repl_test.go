package repl

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ediflow/internal/client"
	"ediflow/internal/database"
	"ediflow/internal/engine"
	"ediflow/internal/fault"
	"ediflow/internal/notify"
	"ediflow/internal/server"
	"ediflow/internal/types"
	"ediflow/internal/wire"
)

// startPrimary opens an in-memory primary with its feed enabled and a
// server listening on loopback, optionally behind a fault plan.
func startPrimary(t *testing.T, faults *fault.Faults) (*database.DB, *server.Server) {
	t.Helper()
	db := database.MustOpenMemory()
	srv := server.New(db, server.Config{})
	srv.SetRepl(NewPrimary(db))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		if err := srv.Serve(fault.WrapListener(ln, faults)); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := srv.Serve(ln); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	return db, srv
}

// startReplica opens an in-memory replica streaming from addr with fast
// test backoff.
func startReplica(t *testing.T, addr string, mut ...func(*ReplicaConfig)) (*database.DB, *Replica) {
	t.Helper()
	db := database.MustOpenMemory()
	cfg := ReplicaConfig{
		PrimaryAddr: addr,
		MinBackoff:  5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		Logf:        t.Logf,
	}
	for _, m := range mut {
		m(&cfg)
	}
	rep := NewReplica(db, cfg)
	rep.Start()
	t.Cleanup(func() { rep.Stop(); db.Close() })
	return db, rep
}

// waitApplied blocks until every replica's cursor has reached the
// primary's current feed head.
func waitApplied(t *testing.T, primary *database.DB, reps ...*Replica) {
	t.Helper()
	head := primary.Store().ReplHead()
	deadline := time.Now().Add(15 * time.Second)
	for {
		behind := false
		for _, r := range reps {
			if r.Applied() < head {
				behind = true
			}
		}
		if !behind {
			return
		}
		if time.Now().After(deadline) {
			for _, r := range reps {
				t.Logf("replica applied=%d head=%d (primary head %d)", r.Applied(), r.Head(), head)
			}
			t.Fatal("replicas did not catch up to the primary head")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// stateBytes returns the canonical replicated-state encoding of db: the
// replication snapshot with epoch and allocation counters zeroed and
// per-node ef_connected_user rows skipped, so two converged stores
// encode byte-identically.
func stateBytes(t *testing.T, db *database.DB) []byte {
	t.Helper()
	b, err := db.Store().EncodeReplSnapshot(database.TableConnectedUser)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitInt polls a single-value query until pred accepts it.
func waitInt(t *testing.T, db *database.DB, sql string, pred func(int64) bool) int64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last int64
	var lastErr error
	for time.Now().Before(deadline) {
		last, lastErr = db.QueryInt(sql)
		if lastErr == nil && pred(last) {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("query %q never satisfied predicate (last=%d err=%v)", sql, last, lastErr)
	return 0
}

// TestReplicaConvergence is the core contract: one primary, two
// replicas, a concurrent write burst, and byte-identical state plus a
// zero-lag sys_replication on both sides afterwards.
func TestReplicaConvergence(t *testing.T) {
	pdb, srv := startPrimary(t, nil)
	r1db, r1 := startReplica(t, srv.Addr())
	r2db, r2 := startReplica(t, srv.Addr())

	if _, err := pdb.Exec("CREATE TABLE obj (id INT PRIMARY KEY, x FLOAT, tag STRING)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := int64(w*1000 + i)
				if _, err := pdb.Exec("INSERT INTO obj (id, x, tag) VALUES (?, ?, ?)",
					types.NewInt(id), types.NewFloat(float64(id)/3), types.NewString("w")); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				if i%10 == 0 {
					if _, err := pdb.Exec("UPDATE obj SET tag = ? WHERE id = ?",
						types.NewString("touched"), types.NewInt(id)); err != nil {
						t.Errorf("update %d: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := pdb.Exec("DELETE FROM obj WHERE id % 7 = 0"); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, pdb, r1, r2)

	want := stateBytes(t, pdb)
	for i, rdb := range []*database.DB{r1db, r2db} {
		if got := stateBytes(t, rdb); !bytes.Equal(got, want) {
			t.Fatalf("replica %d state diverged: %d bytes vs primary %d", i+1, len(got), len(want))
		}
		n, err := rdb.QueryInt("SELECT COUNT(*) FROM obj")
		if err != nil {
			t.Fatal(err)
		}
		pn, _ := pdb.QueryInt("SELECT COUNT(*) FROM obj")
		if n != pn {
			t.Fatalf("replica %d row count %d, primary %d", i+1, n, pn)
		}
		// The replica's own sys_replication row reports zero lag.
		waitInt(t, rdb, "SELECT lag_seqs FROM sys_replication", func(v int64) bool { return v == 0 })
	}
	// Primary side: two tracked subscribers, both fully acked.
	if n, err := pdb.QueryInt("SELECT COUNT(*) FROM sys_replication"); err != nil || n != 2 {
		t.Fatalf("primary sys_replication rows = %d (%v), want 2", n, err)
	}
	waitInt(t, pdb, "SELECT MAX(lag_seqs) FROM sys_replication", func(v int64) bool { return v == 0 })
}

// TestReplicaRejectsWrites: every mutation path on a replica fails with
// the dedicated error, both embedded and over the wire, while the
// per-node mirror-registration table stays writable.
func TestReplicaRejectsWrites(t *testing.T) {
	pdb, srv := startPrimary(t, nil)
	rdb, rep := startReplica(t, srv.Addr())
	if _, err := pdb.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, pdb, rep)

	for _, sql := range []string{
		"INSERT INTO t (id) VALUES (1)",
		"UPDATE t SET id = 2 WHERE id = 1",
		"DELETE FROM t",
		"CREATE TABLE nope (id INT PRIMARY KEY)",
		"DROP TABLE t",
		"BEGIN",
	} {
		if _, err := rdb.Exec(sql); !errors.Is(err, engine.ErrReadOnlyReplica) {
			t.Fatalf("%q on replica: err=%v, want ErrReadOnlyReplica", sql, err)
		}
	}
	// Reads and the local registration table still work.
	if _, err := rdb.QueryInt("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, err := rdb.Exec("INSERT INTO "+database.TableConnectedUser+
		" (id, username, host, port, tbl, last_seq) VALUES (?, ?, ?, ?, ?, 0)",
		types.NewInt(1), types.NewString("u"), types.NewString("127.0.0.1"),
		types.NewInt(1), types.NewString("t")); err != nil {
		t.Fatalf("local registration insert on replica: %v", err)
	}

	// Over the wire the same distinct message reaches the client.
	rsrv := server.New(rdb, server.Config{})
	if err := rsrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	conn, err := client.Dial(rsrv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("INSERT INTO t (id) VALUES (9)"); err == nil ||
		!strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("write via replica server: err=%v, want read-only replica error", err)
	}
	if _, err := conn.QueryInt("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("read via replica server: %v", err)
	}
}

// gateDialer is a dialer the test can force offline, and whose live
// connections it can sever.
type gateDialer struct {
	mu      sync.Mutex
	blocked bool
	conns   []net.Conn
}

func (g *gateDialer) dial(addr string, timeout time.Duration) (net.Conn, error) {
	g.mu.Lock()
	blocked := g.blocked
	g.mu.Unlock()
	if blocked {
		return nil, errors.New("gate closed")
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err == nil {
		g.mu.Lock()
		g.conns = append(g.conns, c)
		g.mu.Unlock()
	}
	return c, err
}

func (g *gateDialer) sever() {
	g.mu.Lock()
	g.blocked = true
	for _, c := range g.conns {
		c.Close()
	}
	g.conns = nil
	g.mu.Unlock()
}

func (g *gateDialer) open() {
	g.mu.Lock()
	g.blocked = false
	g.mu.Unlock()
}

// TestSnapshotResyncAfterCheckpoint: a checkpoint prunes the retained
// feed while a replica is disconnected; on reconnect its stale cursor
// must trigger a snapshot resync — never a silent divergence.
func TestSnapshotResyncAfterCheckpoint(t *testing.T) {
	pdb, srv := startPrimary(t, nil)
	gate := &gateDialer{}
	rdb, rep := startReplica(t, srv.Addr(), func(c *ReplicaConfig) { c.Dialer = gate.dial })

	if _, err := pdb.Exec("CREATE TABLE t (id INT PRIMARY KEY, v STRING)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := pdb.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
			types.NewInt(int64(i)), types.NewString("before")); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, pdb, rep)
	resyncs0, err := rdb.QueryInt("SELECT resyncs FROM sys_replication")
	if err != nil {
		t.Fatal(err)
	}

	// Take the replica offline, advance the primary past it, and prune
	// everything it would have needed via a checkpoint.
	gate.sever()
	for i := 50; i < 120; i++ {
		if _, err := pdb.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
			types.NewInt(int64(i)), types.NewString("after")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if floor, head := pdb.Store().ReplFloor(), pdb.Store().ReplHead(); floor != head+1 {
		t.Fatalf("checkpoint did not prune the feed: floor=%d head=%d", floor, head)
	}
	// A couple more writes so the reconnected cursor is genuinely below
	// the floor, not just at it.
	for i := 120; i < 130; i++ {
		if _, err := pdb.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
			types.NewInt(int64(i)), types.NewString("tail")); err != nil {
			t.Fatal(err)
		}
	}
	gate.open()

	waitApplied(t, pdb, rep)
	waitInt(t, rdb, "SELECT resyncs FROM sys_replication",
		func(v int64) bool { return v > resyncs0 })
	if got, want := stateBytes(t, rdb), stateBytes(t, pdb); !bytes.Equal(got, want) {
		t.Fatal("replica state diverged after checkpoint resync")
	}
	if n, err := rdb.QueryInt("SELECT COUNT(*) FROM t"); err != nil || n != 130 {
		t.Fatalf("replica row count after resync = %d (%v), want 130", n, err)
	}
}

// TestLargeSnapshotChunking: a snapshot bigger than one wire frame
// (16 MB) must ship as multiple FrameSnapshot chunks and reassemble.
func TestLargeSnapshotChunking(t *testing.T) {
	pdb, srv := startPrimary(t, nil)
	if _, err := pdb.Exec("CREATE TABLE blob (id INT PRIMARY KEY, data STRING)"); err != nil {
		t.Fatal(err)
	}
	// ~18 MB of row data: 288 rows of 64 KiB.
	chunk := strings.Repeat("x", 64<<10)
	for i := 0; i < 288; i++ {
		if _, err := pdb.Exec("INSERT INTO blob (id, data) VALUES (?, ?)",
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("%06d:", i)+chunk)); err != nil {
			t.Fatal(err)
		}
	}
	if snap := stateBytes(t, pdb); len(snap) <= wire.MaxFrame {
		t.Fatalf("test state too small to exercise chunking: %d bytes", len(snap))
	}

	// The replica arrives late: its catch-up is the giant snapshot.
	rdb, rep := startReplica(t, srv.Addr())
	waitApplied(t, pdb, rep)
	if got, want := stateBytes(t, rdb), stateBytes(t, pdb); !bytes.Equal(got, want) {
		t.Fatal("replica state diverged after chunked snapshot")
	}
	if n, err := rdb.QueryInt("SELECT COUNT(*) FROM blob"); err != nil || n != 288 {
		t.Fatalf("replica blob count = %d (%v), want 288", n, err)
	}
}

// TestReplicaFaultResetMidStream is the replication fault drill: the
// primary's network resets the stream every few KB mid-flight; the
// replica must reconnect through backoff and still converge once the
// network heals, leaking nothing.
func TestReplicaFaultResetMidStream(t *testing.T) {
	baseline := runtime.NumGoroutine()

	faults := &fault.Faults{}
	pdb, srv := startPrimary(t, faults)
	rdb, rep := startReplica(t, srv.Addr())

	if _, err := pdb.Exec("CREATE TABLE t (id INT PRIMARY KEY, v STRING)"); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, pdb, rep)

	// Every server→replica connection now dies once 4 KB have gone out
	// and another write is attempted: the stream resets mid-flight while
	// the replica reconnects and re-subscribes from its cursor. Writes
	// keep flowing until at least two reset/reconnect cycles happened,
	// so batches are severed at arbitrary points under load.
	faults.SetResetAfterBytes(4 << 10)
	deadline := time.Now().Add(15 * time.Second)
	id := int64(0)
	for {
		n, err := rdb.QueryInt("SELECT reconnects FROM sys_replication")
		if err != nil {
			t.Fatal(err)
		}
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream never reset under load (reconnects=%d)", n)
		}
		if _, err := pdb.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
			types.NewInt(id), types.NewString(strings.Repeat("v", 100))); err != nil {
			t.Fatal(err)
		}
		id++
	}

	faults.SetResetAfterBytes(0) // heal the network
	// A tail of writes after healing must also arrive.
	for i := 0; i < 50; i++ {
		if _, err := pdb.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
			types.NewInt(id), types.NewString("tail")); err != nil {
			t.Fatal(err)
		}
		id++
	}
	waitApplied(t, pdb, rep)
	if got, want := stateBytes(t, rdb), stateBytes(t, pdb); !bytes.Equal(got, want) {
		t.Fatal("replica state diverged across injected resets")
	}
	if n, err := rdb.QueryInt("SELECT COUNT(*) FROM t"); err != nil || n != id {
		t.Fatalf("replica row count = %d (%v), want %d", n, err, id)
	}

	rep.Stop()
	srv.Close()
	rdb.Close()
	pdb.Close()
	if got := fault.Settle(baseline, 2*time.Second); got > baseline {
		t.Fatalf("goroutines leaked across resets: %d > baseline %d", got, baseline)
	}
}

// TestMirrorNotifyViaReplica is the §VI-C fan-out path end to end: a
// mirror registers on a *replica*, the edit happens on the *primary*,
// and the NOTIFY arrives through replication — data row and journal row
// ship to the replica, whose notifier doorbell wakes the local mirror.
func TestMirrorNotifyViaReplica(t *testing.T) {
	pdb, srv := startPrimary(t, nil)
	pn, err := notify.NewNotifier(pdb)
	if err != nil {
		t.Fatal(err)
	}
	defer pn.Close()

	rdb := database.MustOpenMemory()
	defer rdb.Close()
	rn, err := notify.NewNotifier(rdb)
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()
	rep := NewReplica(rdb, ReplicaConfig{
		PrimaryAddr: srv.Addr(),
		MinBackoff:  5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		OnNotify:    rn.PushNotify,
		Logf:        t.Logf,
	})
	rep.Start()
	defer rep.Stop()

	if _, err := pdb.Exec("CREATE TABLE obj (id INT PRIMARY KEY, x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, pdb, rep)

	// The mirror's whole protocol runs against the replica: the
	// registration INSERT lands in the replica-local ef_connected_user,
	// and the replica's notifier dials back.
	cl, err := notify.Connect(rdb, "alice", "obj")
	if err != nil {
		t.Fatalf("mirror connect via replica: %v", err)
	}
	defer cl.Close()

	if _, err := pdb.Exec("INSERT INTO obj (id, x) VALUES (1, 0.5)"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-cl.C:
		if m.Verb != notify.MsgNotify || !strings.EqualFold(m.Table, "obj") {
			t.Fatalf("unexpected message: %+v", m)
		}
		// The journal behind the NOTIFY is replicated too: the mirror's
		// catch-up read (PendingNotifications) sees the same seq.
		msgs, _, err := cl.PendingNotifications()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, pm := range msgs {
			if pm.Seq == m.Seq {
				found = true
			}
		}
		if !found {
			t.Fatalf("NOTIFY seq %d not in replicated journal (%d rows)", m.Seq, len(msgs))
		}
		if err := cl.Ack(m.Seq); err != nil {
			t.Fatalf("ack via replica: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mirror on replica never received NOTIFY for a primary-side edit")
	}
}
