package repl

import (
	"sort"
	"sync"

	"ediflow/internal/database"
	"ediflow/internal/server"
	"ediflow/internal/types"
)

// Primary turns an opened database into a replication source: it
// enables the store's feed (excluding the per-node ef_connected_user
// table), implements server.ReplSource for the wire layer, and tracks
// connected subscribers in the sys_replication virtual table.
type Primary struct {
	db *database.DB

	mu     sync.Mutex
	nextID uint64
	subs   map[uint64]*subscriber
}

// NewPrimary enables the replication feed on db and registers the
// sys_replication virtual table. Wire it into a server with
// srv.SetRepl(p) before the server starts accepting.
func NewPrimary(db *database.DB) *Primary {
	p := &Primary{db: db, subs: map[uint64]*subscriber{}}
	db.Store().EnableReplFeed(0, database.TableConnectedUser)
	db.RegisterVirtual("sys_replication", SysReplicationColumns, p.rows)
	return p
}

// StreamID implements server.ReplSource.
func (p *Primary) StreamID() uint64 { return p.db.Store().ReplStreamID() }

// Snapshot implements server.ReplSource. Per-node mirror registrations
// are excluded; the replica keeps its own.
func (p *Primary) Snapshot() ([]byte, uint64, error) {
	return p.db.ReplSnapshot(database.TableConnectedUser)
}

// Fetch implements server.ReplSource.
func (p *Primary) Fetch(fromSeq uint64, maxBytes int) ([][]byte, uint64, uint64, error) {
	return p.db.Store().ReplFetch(fromSeq, maxBytes)
}

// Watch implements server.ReplSource.
func (p *Primary) Watch() <-chan struct{} { return p.db.Store().ReplWatch() }

// Track implements server.ReplSource, registering one subscriber row.
func (p *Primary) Track(peer string) server.ReplTracker {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	sub := &subscriber{p: p, id: p.nextID, peer: peer}
	p.subs[sub.id] = sub
	return sub
}

// rows serves sys_replication on the primary. It runs under the
// engine's read lock; everything it touches (the subscriber registry
// and the feed's own mutex) is engine-independent, so there is no
// lock-order cycle.
func (p *Primary) rows() []types.Row {
	st := p.db.Store()
	head := st.ReplHead()
	p.mu.Lock()
	subs := make([]*subscriber, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
	rows := make([]types.Row, 0, len(subs))
	for _, s := range subs {
		s.mu.Lock()
		acked, sent := s.acked, s.sent
		batches, records, resyncs := s.batches, s.records, s.resyncs
		s.mu.Unlock()
		state := "streaming"
		if sent > acked {
			state = "catchup"
		}
		var lagSeqs uint64
		if head > acked {
			lagSeqs = head - acked
		}
		rows = append(rows, types.Row{
			types.NewString("primary"), types.NewString(s.peer), types.NewString(state),
			types.NewInt(int64(acked)), types.NewInt(int64(head)),
			types.NewInt(int64(lagSeqs)), types.NewInt(st.ReplLagBytes(acked)),
			types.NewInt(batches), types.NewInt(records), types.NewInt(resyncs),
			types.NewInt(0),
		})
	}
	return rows
}

// subscriber is one connected replica's progress, updated by the
// server's stream goroutine through the server.ReplTracker interface.
type subscriber struct {
	p    *Primary
	id   uint64
	peer string

	mu      sync.Mutex
	sent    uint64
	acked   uint64
	snap    bool // last Sent covers a snapshot, not counted records
	batches int64
	records int64
	resyncs int64
}

// Sent records the cursor after a shipped batch (or snapshot).
func (t *subscriber) Sent(seq uint64) {
	t.mu.Lock()
	if t.snap {
		// The jump to the snapshot's seq is not record traffic.
		t.snap = false
	} else if seq > t.sent {
		t.records += int64(seq - t.sent)
		t.batches++
	}
	if seq > t.sent {
		t.sent = seq
	}
	t.mu.Unlock()
}

// Acked records the replica's acknowledged apply cursor.
func (t *subscriber) Acked(seq uint64) {
	t.mu.Lock()
	if seq > t.acked {
		t.acked = seq
	}
	t.mu.Unlock()
}

// Resynced counts a full-snapshot resync.
func (t *subscriber) Resynced() {
	t.mu.Lock()
	t.resyncs++
	t.snap = true
	t.mu.Unlock()
}

// Close drops the subscriber from sys_replication.
func (t *subscriber) Close() {
	t.p.mu.Lock()
	delete(t.p.subs, t.id)
	t.p.mu.Unlock()
}
