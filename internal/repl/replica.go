package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ediflow/internal/client"
	"ediflow/internal/database"
	"ediflow/internal/types"
	"ediflow/internal/wire"
)

// ReplicaConfig tunes a Replica. Only PrimaryAddr is required.
type ReplicaConfig struct {
	// PrimaryAddr is the primary server's host:port.
	PrimaryAddr string
	// Dialer opens the primary connection (default net.DialTimeout
	// over TCP). Tests interpose fault-injecting dialers here.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// DialTimeout bounds one dial plus the handshake (default 5s).
	DialTimeout time.Duration
	// MinBackoff/MaxBackoff bound the jittered exponential reconnect
	// delay (defaults 50ms / 5s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// OnNotify fires after a replicated ef_notification row is applied
	// locally — wire it to Notifier.PushNotify so mirrors registered on
	// this replica are woken for primary-side edits. It runs on the
	// apply goroutine and must not block.
	OnNotify func(table string, seq int64, op string)
	// Logf receives reconnect/resync progress (default: discard).
	Logf func(format string, args ...any)
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.Dialer == nil {
		c.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Replica keeps a local database converged with a primary: it dials,
// subscribes from its (streamID, appliedSeq) cursor, applies snapshot
// and delta frames in order, acks, and reconnects with jittered backoff
// when the stream breaks. NewReplica marks the database read-only
// (engine.ErrReadOnlyReplica) except for the per-node
// ef_connected_user table, so SELECTs and §VI-C mirror registrations
// are served locally while edits must go to the primary.
type Replica struct {
	db  *database.DB
	cfg ReplicaConfig

	mu         sync.Mutex
	conn       net.Conn // live primary connection, closed by Stop
	started    bool
	stopping   bool
	state      string
	stream     uint64 // stream ID the cursor belongs to
	applied    uint64 // last seq applied locally
	head       uint64 // primary head as of the last frame
	batches    int64
	records    int64
	resyncs    int64
	reconnects int64

	stop chan struct{}
	done chan struct{}
}

// NewReplica configures db as a read replica of cfg.PrimaryAddr and
// registers the sys_replication virtual table. Call Start to begin
// streaming.
func NewReplica(db *database.DB, cfg ReplicaConfig) *Replica {
	r := &Replica{
		db:    db,
		cfg:   cfg.withDefaults(),
		state: "idle",
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	db.SetReadOnly(database.TableConnectedUser)
	db.RegisterVirtual("sys_replication", SysReplicationColumns, r.rows)
	return r
}

// Applied returns the replica's local cursor: the last primary seq it
// has applied.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Head returns the primary head as of the last received frame.
func (r *Replica) Head() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// Start launches the streaming loop.
func (r *Replica) Start() {
	r.mu.Lock()
	if r.started || r.stopping {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go r.loop()
}

// Stop ends the streaming loop and waits for it to exit. Idempotent.
func (r *Replica) Stop() {
	r.mu.Lock()
	if !r.stopping {
		r.stopping = true
		close(r.stop)
		if r.conn != nil {
			r.conn.Close()
		}
	}
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}

func (r *Replica) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// loop runs one connection at a time, reconnecting with capped
// exponential backoff (jittered, like the client's mirror dialer, so a
// primary restart is not greeted by a synchronized thundering herd).
func (r *Replica) loop() {
	defer close(r.done)
	backoff := r.cfg.MinBackoff
	for {
		if r.stopped() {
			return
		}
		progress, err := r.streamOnce()
		if r.stopped() {
			return
		}
		if err != nil {
			r.cfg.Logf("edirepl: stream to %s: %v", r.cfg.PrimaryAddr, err)
		}
		r.mu.Lock()
		r.reconnects++
		r.state = "backoff"
		r.mu.Unlock()
		if progress {
			backoff = r.cfg.MinBackoff
		} else if backoff *= 2; backoff > r.cfg.MaxBackoff {
			backoff = r.cfg.MaxBackoff
		}
		select {
		case <-time.After(client.JitterBackoff(backoff)):
		case <-r.stop:
			return
		}
	}
}

// streamOnce runs one connection lifetime: dial, handshake, subscribe,
// then apply frames until the stream breaks. progress reports whether
// any state was applied, which resets the reconnect backoff.
func (r *Replica) streamOnce() (progress bool, err error) {
	conn, err := r.cfg.Dialer(r.cfg.PrimaryAddr, r.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	r.mu.Lock()
	if r.stopping {
		r.mu.Unlock()
		conn.Close()
		return false, nil
	}
	r.conn = conn
	r.state = "connecting"
	r.mu.Unlock()
	defer func() {
		conn.Close()
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	send := func(typ byte, payload []byte) error {
		conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if err := wire.WriteFrame(bw, typ, payload); err != nil {
			return err
		}
		return bw.Flush()
	}

	// HELLO/WELCOME under the dial budget, like any other client.
	conn.SetReadDeadline(time.Now().Add(r.cfg.DialTimeout))
	if err := send(wire.FrameHello, wire.EncodeHello(wire.Version, "edireplica")); err != nil {
		return false, err
	}
	typ, p, err := wire.ReadFrame(br, wire.MaxFrame)
	if err != nil {
		return false, err
	}
	if typ == wire.FrameError {
		msg, _ := wire.DecodeError(p)
		return false, fmt.Errorf("handshake refused: %s", msg)
	}
	if typ != wire.FrameWelcome {
		return false, fmt.Errorf("expected WELCOME, got frame 0x%02x", typ)
	}
	if _, _, err := wire.DecodeWelcome(p); err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Time{}) // a caught-up stream is silent

	r.mu.Lock()
	stream, applied := r.stream, r.applied
	r.state = "catchup"
	r.mu.Unlock()
	if err := send(wire.FrameSubscribeWAL, wire.EncodeSubscribeWAL(stream, applied)); err != nil {
		return false, err
	}

	var snap []byte
	var snapStream, snapSeq, snapTotal uint64
	inSnap := false
	for {
		typ, p, err := wire.ReadFrame(br, wire.MaxFrame)
		if err != nil {
			return progress, err
		}
		switch typ {
		case wire.FrameSnapshot:
			c, err := wire.DecodeSnapshotChunk(p)
			if err != nil {
				return progress, err
			}
			if c.First {
				snapStream, snapSeq, snapTotal = c.StreamID, c.SnapSeq, c.Total
				// Pre-size from the announced total, but never trust the
				// wire for more than one frame's worth up front.
				alloc := snapTotal
				if alloc > wire.MaxFrame {
					alloc = wire.MaxFrame
				}
				snap = make([]byte, 0, alloc)
				inSnap = true
			} else if !inSnap {
				return progress, errors.New("snapshot chunk without a first chunk")
			}
			snap = append(snap, c.Data...)
			if uint64(len(snap)) > snapTotal {
				return progress, fmt.Errorf("snapshot overflow: %d > announced %d", len(snap), snapTotal)
			}
			if c.Last {
				if uint64(len(snap)) != snapTotal {
					return progress, fmt.Errorf("snapshot truncated: %d of %d bytes", len(snap), snapTotal)
				}
				if err := r.applySnapshot(snap, snapStream, snapSeq); err != nil {
					return progress, err
				}
				inSnap, snap = false, nil
				progress = true
				if err := send(wire.FrameReplAck, wire.EncodeReplAck(snapSeq)); err != nil {
					return progress, err
				}
			}
		case wire.FrameWALBatch:
			b, err := wire.DecodeWALBatch(p)
			if err != nil {
				return progress, err
			}
			last, err := r.applyBatch(b)
			if err != nil {
				return progress, err
			}
			progress = true
			if err := send(wire.FrameReplAck, wire.EncodeReplAck(last)); err != nil {
				return progress, err
			}
		case wire.FrameError:
			msg, _ := wire.DecodeError(p)
			return progress, fmt.Errorf("primary: %s", msg)
		default:
			return progress, fmt.Errorf("unexpected frame 0x%02x on replication stream", typ)
		}
	}
}

// applySnapshot resets local state to the snapshot (preserving the
// per-node ef_connected_user rows) and adopts its cursor.
func (r *Replica) applySnapshot(data []byte, stream, seq uint64) error {
	if err := r.db.ApplyReplSnapshot(data, database.TableConnectedUser); err != nil {
		return err
	}
	// Restore the NOTIFY seq floor from the replicated journal so seqs
	// allocated for local registration events stay above it.
	if floor, err := r.db.QueryInt("SELECT MAX(seq_no) FROM " + database.TableNotification); err == nil {
		r.db.AdvanceSeq(floor)
	}
	r.mu.Lock()
	r.stream, r.applied = stream, seq
	if r.head < seq {
		r.head = seq
	}
	r.resyncs++
	r.state = "streaming"
	r.mu.Unlock()
	r.cfg.Logf("edirepl: resynced from snapshot (stream 0x%x, seq %d, %d bytes)", stream, seq, len(data))
	return nil
}

// applyBatch applies one contiguous delta batch and fires OnNotify for
// each replicated notification-journal row. Returns the new cursor.
func (r *Replica) applyBatch(b *wire.WALBatch) (uint64, error) {
	if len(b.Records) == 0 {
		return 0, errors.New("empty WAL batch")
	}
	r.mu.Lock()
	stream, applied := r.stream, r.applied
	r.mu.Unlock()
	if b.StreamID != stream {
		return 0, fmt.Errorf("stream changed mid-flight (0x%x != 0x%x)", b.StreamID, stream)
	}
	if b.FirstSeq != applied+1 {
		return 0, fmt.Errorf("batch gap: applied %d, batch starts at %d", applied, b.FirstSeq)
	}
	watched, err := r.db.ApplyReplicated(b.Records, database.TableNotification)
	if err != nil {
		return 0, err
	}
	last := b.FirstSeq + uint64(len(b.Records)) - 1
	r.mu.Lock()
	r.applied = last
	if b.HeadSeq > r.head {
		r.head = b.HeadSeq
	}
	r.batches++
	r.records += int64(len(b.Records))
	if last >= b.HeadSeq {
		r.state = "streaming"
	} else {
		r.state = "catchup"
	}
	r.mu.Unlock()
	// Replicated rows produce no local engine events (they bypass the
	// dispatch pipeline), so ring the notifier's doorbell by hand for
	// every journal row: mirrors registered here re-read everything past
	// their last_seq, exactly as after a dropped NOTIFY (§VI-C).
	for _, row := range watched {
		if len(row) < 4 {
			continue
		}
		seq, err := row[0].AsInt()
		if err != nil {
			continue
		}
		r.db.AdvanceSeq(seq)
		if r.cfg.OnNotify != nil {
			r.cfg.OnNotify(row[2].AsString(), seq, row[3].AsString())
		}
	}
	return last, nil
}

// rows serves sys_replication on the replica: a single row for the
// apply loop. Runs under the engine read lock; touches only r.mu.
func (r *Replica) rows() []types.Row {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lag uint64
	if r.head > r.applied {
		lag = r.head - r.applied
	}
	return []types.Row{{
		types.NewString("replica"), types.NewString(r.cfg.PrimaryAddr), types.NewString(r.state),
		types.NewInt(int64(r.applied)), types.NewInt(int64(r.head)),
		types.NewInt(int64(lag)), types.NewInt(0),
		types.NewInt(r.batches), types.NewInt(r.records), types.NewInt(r.resyncs),
		types.NewInt(r.reconnects),
	}}
}
