// Package repl implements WAL-shipping read replicas for EdiFlow. A
// primary database exposes its storage-level logical log as a
// replication feed; replicas subscribe over the ordinary wire protocol
// (FrameSubscribeWAL) with a (streamID, appliedSeq) cursor, and the
// primary answers with either delta batches (FrameWALBatch) picking up
// exactly where the cursor left off, or — when the cursor predates the
// retained feed floor or names a different stream — a full snapshot
// (FrameSnapshot chunks) followed by deltas from the snapshot's seq.
//
// This moves the paper's read fan-out off the single DBMS box (§VII
// discusses the DBMS as the bottleneck shared by all EdiFlow peers):
// SELECT traffic and the §VI-C mirror/NOTIFY protocol both run against
// replicas, while writes keep going to the primary. Replicas run their
// engine read-only — any write returns engine.ErrReadOnlyReplica —
// except for the per-node ef_connected_user table, which holds local
// mirror registrations and is excluded from the replicated stream.
//
// Convergence argument: replicated records are the byte-for-byte
// storage WAL records of the primary, applied in capture order through
// the same code paths the primary's recovery uses, so two stores that
// applied the same prefix hold identical logical state (including row
// ordering, because inserts append and deletes swap-from-the-end
// identically). The stream ID is regenerated on every primary restart,
// which forces a snapshot resync and makes shipping records ahead of
// the primary's fsync safe: a crash may lose a suffix the replica
// already applied, but the replica can never keep it.
package repl

// SysReplicationColumns is the schema of the sys_replication virtual
// table, registered by both NewPrimary (one row per connected
// subscriber, role "primary") and NewReplica (one row for the local
// apply loop, role "replica"). lag_seqs is head_seq - applied_seq;
// lag_bytes is the retained feed bytes past the cursor (primary side
// only; replicas report 0 because they cannot see byte sizes they have
// not received).
var SysReplicationColumns = []string{
	"role", "peer", "state", "applied_seq", "head_seq",
	"lag_seqs", "lag_bytes", "batches", "records", "resyncs", "reconnects",
}
