package storage

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"ediflow/internal/catalog"
	"ediflow/internal/types"
)

func mvccStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.CreateTable(&catalog.TableSchema{
		Name: "kv",
		Columns: []catalog.Column{
			{Name: "k", Type: types.KindInt, PrimaryKey: true},
			{Name: "v", Type: types.KindString},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func kvRow(k int64, v string) types.Row {
	return types.Row{types.NewInt(k), types.NewString(v)}
}

// TestMvccVisibilityAsOf pins the core visibility rule: a version is
// visible at seq S iff begin <= S < end, and SeqLatest sees live heads.
func TestMvccVisibilityAsOf(t *testing.T) {
	s := mvccStore(t)
	tbl := s.Table("kv")

	if _, _, err := s.Insert("kv", kvRow(1, "a")); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()
	afterInsert := s.SnapshotSeq()

	sr := tbl.Rows()[0].TID
	if _, err := s.Update("kv", sr, kvRow(1, "b")); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()
	afterUpdate := s.SnapshotSeq()

	if _, err := s.Delete("kv", sr); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()
	afterDelete := s.SnapshotSeq()

	// As of the insert: "a" visible.
	rows := tbl.RowsAt(afterInsert)
	if len(rows) != 1 || rows[0].Values[1].Str() != "a" {
		t.Fatalf("as of insert: %+v", rows)
	}
	// As of the update: "b" visible.
	rows = tbl.RowsAt(afterUpdate)
	if len(rows) != 1 || rows[0].Values[1].Str() != "b" {
		t.Fatalf("as of update: %+v", rows)
	}
	// As of the delete (R-delta): gone.
	if rows = tbl.RowsAt(afterDelete); len(rows) != 0 {
		t.Fatalf("as of delete: %+v", rows)
	}
	if rows = tbl.RowsAt(SeqLatest); len(rows) != 0 {
		t.Fatalf("latest: %+v", rows)
	}
	// Point reads honor the same rule.
	if got, ok := tbl.GetAt(sr, afterInsert); !ok || got.Values[1].Str() != "a" {
		t.Fatalf("GetAt(insert): %v %v", got, ok)
	}
	if _, ok := tbl.GetAt(sr, afterDelete); ok {
		t.Fatal("GetAt(delete) should miss")
	}
}

// TestMvccReaderBeforeDeleteStillSeesRow is the R-delta contract: a
// snapshot acquired before a DELETE keeps seeing the deleted row for the
// lifetime of the snapshot, and Vacuum will not reclaim the version
// while the snapshot is registered.
func TestMvccReaderBeforeDeleteStillSeesRow(t *testing.T) {
	s := mvccStore(t)
	tbl := s.Table("kv")
	if _, _, err := s.Insert("kv", kvRow(7, "keep")); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()

	snap := s.AcquireSnapshot()
	defer s.ReleaseSnapshot(snap)

	tid := tbl.Rows()[0].TID
	if _, err := s.Delete("kv", tid); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()

	// The registered snapshot pins the vacuum horizon.
	s.Vacuum()
	rows := tbl.RowsAt(snap)
	if len(rows) != 1 || rows[0].Values[1].Str() != "keep" {
		t.Fatalf("pre-delete snapshot lost the row: %+v", rows)
	}
	if got := tbl.RowsAt(SeqLatest); len(got) != 0 {
		t.Fatalf("latest still sees deleted row: %+v", got)
	}
}

// TestMvccVacuumReclaims verifies version-chain reclamation once no
// snapshot can reach the old versions, and that reads below the floor
// fail loudly instead of returning wrong data.
func TestMvccVacuumReclaims(t *testing.T) {
	s := mvccStore(t)
	tbl := s.Table("kv")
	if _, _, err := s.Insert("kv", kvRow(1, "v0")); err != nil {
		t.Fatal(err)
	}
	tid := tbl.Rows()[0].TID
	for i := 0; i < 9; i++ {
		if _, err := s.Update("kv", tid, kvRow(1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	s.PublishSnapshot()
	if n := tbl.VersionCount(); n != 10 {
		t.Fatalf("versions before vacuum: %d", n)
	}
	reclaimed := s.Vacuum()
	if reclaimed != 9 {
		t.Fatalf("reclaimed: %d (want 9)", reclaimed)
	}
	if n := tbl.VersionCount(); n != 1 {
		t.Fatalf("versions after vacuum: %d", n)
	}
	// Deleted rows vanish entirely once unprotected.
	if _, err := s.Delete("kv", tid); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()
	if got := s.Vacuum(); got != 1 {
		t.Fatalf("reclaimed after delete: %d", got)
	}
	if n := tbl.VersionCount(); n != 0 {
		t.Fatalf("versions after delete vacuum: %d", n)
	}

	// A snapshot below the floor is refused.
	if _, err := s.AcquireSnapshotAt(s.VacuumFloor() - 1); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("want ErrSnapshotTooOld, got %v", err)
	}
	// At or above the floor (clamped to visible) is fine.
	if _, err := s.AcquireSnapshotAt(s.SnapshotSeq() + 1000); err != nil {
		t.Fatalf("clamped acquire: %v", err)
	}
}

// TestMvccIndexLookupsExact: index candidate lists are conservative
// (stale entries linger until vacuum), so the At-variants must filter by
// the visible version's value. A stale index entry must never surface a
// row whose current value no longer matches the key.
func TestMvccIndexLookupsExact(t *testing.T) {
	s := mvccStore(t)
	if err := s.AddIndex("kv_v", "kv", []string{"v"}, false); err != nil {
		t.Fatal(err)
	}
	tbl := s.Table("kv")
	if _, _, err := s.Insert("kv", kvRow(1, "red")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Insert("kv", kvRow(2, "red")); err != nil {
		t.Fatal(err)
	}
	tid1 := tbl.Rows()[0].TID
	if _, err := s.Update("kv", tid1, kvRow(1, "blue")); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()
	now := s.SnapshotSeq()

	tids, ok := tbl.LookupIndexAt("kv_v", types.Row{types.NewString("red")}, now)
	if !ok || len(tids) != 1 {
		t.Fatalf("red candidates at latest: %v ok=%v", tids, ok)
	}
	if got, _ := tbl.GetAt(tids[0], now); got.Values[0].Int() != 2 {
		t.Fatalf("red matched wrong row: %+v", got)
	}
	tids, ok = tbl.LookupIndexAt("kv_v", types.Row{types.NewString("blue")}, now)
	if !ok || len(tids) != 1 {
		t.Fatalf("blue candidates: %v ok=%v", tids, ok)
	}
	// PK lookups filter the same way.
	if _, found := tbl.LookupPKAt(types.NewInt(1), now); !found {
		t.Fatal("pk 1 should resolve at latest")
	}
	if _, err := s.Delete("kv", tid1); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()
	if _, found := tbl.LookupPKAt(types.NewInt(1), s.SnapshotSeq()); found {
		t.Fatal("pk 1 resolved after delete")
	}
	// ...but still resolves at the pre-delete seq.
	if _, found := tbl.LookupPKAt(types.NewInt(1), now); !found {
		t.Fatal("pk 1 lost at historical seq")
	}
}

// TestMvccSnapshotEncodingVacuumIndependent: the replication/persistence
// snapshot encoding must not depend on whether (or when) vacuum ran —
// replicas vacuum on their own schedule and must stay byte-identical.
func TestMvccSnapshotEncodingVacuumIndependent(t *testing.T) {
	build := func(vacuumEarly bool) []byte {
		s, err := Open("")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.CreateTable(&catalog.TableSchema{
			Name: "kv",
			Columns: []catalog.Column{
				{Name: "k", Type: types.KindInt, PrimaryKey: true},
				{Name: "v", Type: types.KindString},
			},
		}); err != nil {
			t.Fatal(err)
		}
		tbl := s.Table("kv")
		for i := int64(1); i <= 5; i++ {
			if _, _, err := s.Insert("kv", kvRow(i, "x")); err != nil {
				t.Fatal(err)
			}
		}
		tids := make([]int64, 0, 5)
		for _, r := range tbl.Rows() {
			tids = append(tids, r.TID)
		}
		if _, err := s.Delete("kv", tids[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Update("kv", tids[3], kvRow(4, "y")); err != nil {
			t.Fatal(err)
		}
		s.PublishSnapshot()
		if vacuumEarly {
			s.Vacuum()
		}
		// Reinsert key 2 after its delete: slot order must be the order of
		// last insertion whether or not the dead slot was vacuumed away.
		if _, _, err := s.Insert("kv", kvRow(2, "z")); err != nil {
			t.Fatal(err)
		}
		s.PublishSnapshot()
		if !vacuumEarly {
			s.Vacuum()
		}
		data, err := s.EncodeReplSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(true), build(false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot encoding depends on vacuum timing:\n%x\n%x", a, b)
	}
}

// TestMvccIterateStableUnderConcurrentWrites hammers a table with
// writers while snapshot iterators run lock-free; with -race this is
// the aliasing/atomicity drill for the version-chain machinery.
func TestMvccIterateStableUnderConcurrentWrites(t *testing.T) {
	s := mvccStore(t)
	tbl := s.Table("kv")
	const n = 50
	for i := int64(0); i < n; i++ {
		if _, _, err := s.Insert("kv", kvRow(i, "a")); err != nil {
			t.Fatal(err)
		}
	}
	s.PublishSnapshot()
	tids := make([]int64, 0, n)
	for _, r := range tbl.Rows() {
		tids = append(tids, r.TID)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: update/delete/reinsert churn
		defer wg.Done()
		k := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			tid := tids[k%n]
			if k%3 == 2 {
				if _, err := s.Delete("kv", tid); err == nil {
					if ntid, _, err := s.Insert("kv", kvRow(int64(k%n), "r")); err == nil {
						tids[k%n] = ntid
					}
				}
			} else {
				s.Update("kv", tid, kvRow(int64(k%n), "u"))
			}
			s.PublishSnapshot()
			if k%64 == 0 {
				s.Vacuum()
			}
			k++
		}
	}()

	for r := 0; r < 200; r++ {
		snap := s.AcquireSnapshot()
		seen := map[int64]bool{}
		it := tbl.Iterate(snap)
		for {
			sr, ok := it.Next()
			if !ok {
				break
			}
			if seen[sr.TID] {
				t.Errorf("tid %d seen twice in one snapshot scan", sr.TID)
			}
			seen[sr.TID] = true
		}
		// Each snapshot is a full, stable state: exactly n live keys at
		// every published boundary (delete+reinsert happens across two
		// seqs, so allow n-1 when the snapshot lands between them).
		if len(seen) != n && len(seen) != n-1 {
			t.Errorf("snapshot saw %d rows (want %d or %d)", len(seen), n-1, n)
		}
		s.ReleaseSnapshot(snap)
	}
	close(stop)
	wg.Wait()
}

// TestMvccReplayByteIdentical: versioned tables must recover from WAL
// replay byte-identically — same rows in the same slot order, same
// canonical snapshot encoding — whether or not vacuum ran before the
// shutdown.
func TestMvccReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(&catalog.TableSchema{
		Name: "kv",
		Columns: []catalog.Column{
			{Name: "k", Type: types.KindInt, PrimaryKey: true},
			{Name: "v", Type: types.KindString},
		},
	}); err != nil {
		t.Fatal(err)
	}
	tbl := s.Table("kv")
	tids := make([]int64, 6)
	for i := int64(0); i < 6; i++ {
		tid, _, err := s.Insert("kv", kvRow(i, "a"))
		if err != nil {
			t.Fatal(err)
		}
		tids[i] = tid
	}
	if _, err := s.Update("kv", tids[2], kvRow(2, "b")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("kv", tids[4]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Insert("kv", kvRow(4, "re")); err != nil {
		t.Fatal(err)
	}
	s.PublishSnapshot()
	s.Vacuum() // reclaim superseded versions; must not affect recovery

	rowsBefore := tbl.Rows() // slot order matters
	encBefore, err := s.EncodeReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rowsAfter := s2.Table("kv").Rows()
	if !reflect.DeepEqual(rowsBefore, rowsAfter) {
		t.Fatalf("replayed rows differ:\n%+v\n%+v", rowsBefore, rowsAfter)
	}
	encAfter, err := s2.EncodeReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(encBefore, encAfter) {
		t.Fatal("canonical snapshot encoding changed across replay")
	}
}
