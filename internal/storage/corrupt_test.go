package storage

import (
	"os"
	"path/filepath"
	"testing"

	"ediflow/internal/types"
)

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt snapshot must fail to open")
	}
}

func TestTruncatedSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.CreateTable(userSchema())
	s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Truncate the snapshot mid-file.
	path := filepath.Join(dir, snapshotFile)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/2], 0o644)
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated snapshot must fail to open")
	}
}

func TestWALCorruptMiddleRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.CreateTable(userSchema())
	s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	s.Insert("users", types.Row{types.NewInt(2), types.NewString("b"), types.Null})
	s.Close()
	// Flip a byte inside the second half of the WAL: the CRC check must
	// stop replay there, keeping the prefix.
	path := filepath.Join(dir, walFile)
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt WAL tail must not fail open: %v", err)
	}
	defer s2.Close()
	if s2.Table("users") == nil || s2.Table("users").Len() == 0 {
		t.Fatal("prefix before corruption lost")
	}
	if s2.Table("users").Len() > 2 {
		t.Fatal("impossible row count")
	}
}

func TestMutationsOnMissingTables(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	if _, err := s.Update("nope", 1, nil); err == nil {
		t.Error("update missing table")
	}
	if _, err := s.Delete("nope", 1); err == nil {
		t.Error("delete missing table")
	}
	if err := s.AddIndex("i", "nope", []string{"a"}, false); err == nil {
		t.Error("index on missing table")
	}
	if err := s.DropTable("nope"); err == nil {
		t.Error("drop missing table")
	}
	if err := s.InsertAt("nope", 1, 1, nil); err == nil {
		t.Error("insertAt missing table")
	}
	s.CreateTable(userSchema())
	if _, err := s.Update("users", 99, types.Row{types.NewInt(1), types.NewString("a"), types.Null}); err == nil {
		t.Error("update missing tid")
	}
	if _, err := s.Delete("users", 99); err == nil {
		t.Error("delete missing tid")
	}
}
