package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"ediflow/internal/catalog"
	"ediflow/internal/types"
)

// tornWALOps is a scripted mutation sequence covering every WAL opcode.
// Each entry applies one op to a store; the resulting WAL carries exactly
// one record per entry, in order.
var tornWALOps = []struct {
	name string
	op   func(s *Store) error
}{
	{"create-table", func(s *Store) error { return s.CreateTable(userSchema()) }},
	{"insert-1", func(s *Store) error {
		_, _, err := s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
		return err
	}},
	{"insert-2", func(s *Store) error {
		_, _, err := s.Insert("users", types.Row{types.NewInt(2), types.NewString("b"), types.Null})
		return err
	}},
	{"update", func(s *Store) error {
		tid, _ := s.Table("users").LookupPK(types.NewInt(2))
		_, err := s.Update("users", tid, types.Row{types.NewInt(2), types.NewString("up"), types.Null})
		return err
	}},
	{"delete", func(s *Store) error {
		tid, _ := s.Table("users").LookupPK(types.NewInt(1))
		_, err := s.Delete("users", tid)
		return err
	}},
	{"create-index", func(s *Store) error { return s.AddIndex("by_name", "users", []string{"name"}, false) }},
	{"put-meta", func(s *Store) error { return s.PutMeta("view", "v1", "CREATE VIEW v1 AS SELECT id FROM users") }},
	{"del-meta", func(s *Store) error { return s.DeleteMeta("view", "v1") }},
	{"create-table-2", func(s *Store) error {
		return s.CreateTable(userSchemaNamed("scratch"))
	}},
	{"drop-table-2", func(s *Store) error { return s.DropTable("scratch") }},
}

func userSchemaNamed(name string) *catalog.TableSchema {
	s := userSchema()
	s.Name = name
	return s
}

// modelAfter builds the expected in-memory state after the first n ops.
func modelAfter(t *testing.T, n int) *Store {
	t.Helper()
	m, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tornWALOps[i].op(m); err != nil {
			t.Fatalf("model op %d (%s): %v", i, tornWALOps[i].name, err)
		}
	}
	return m
}

// sameState compares the logical state of two stores: table set, rows
// (tid, created, values), and metas.
func sameState(a, b *Store) bool {
	an, bn := a.TableNames(), b.TableNames()
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
		at, bt := a.Table(an[i]), b.Table(bn[i])
		if at.Len() != bt.Len() {
			return false
		}
		arows, brows := at.Rows(), bt.Rows()
		for j := range arows {
			if arows[j].TID != brows[j].TID || arows[j].Created != brows[j].Created ||
				!types.RowsEqual(arows[j].Values, brows[j].Values) {
				return false
			}
		}
	}
	am, bm := a.Metas(), b.Metas()
	if len(am) != len(bm) {
		return false
	}
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return true
}

// recordBoundaries parses the framing of a WAL image and returns the byte
// offset at the end of each complete record (the first boundary is the
// 16-byte header).
func recordBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	if len(data) < walHeaderLen || string(data[:8]) != walMagic {
		t.Fatalf("bad WAL image (%d bytes)", len(data))
	}
	bounds := []int{walHeaderLen}
	off := walHeaderLen
	for off+8 <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if off+8+n > len(data) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	if off != len(data) {
		t.Fatalf("trailing %d bytes after last record", len(data)-off)
	}
	return bounds
}

// TestTornTailEveryByteEveryOpcode is the torn-write sweep: a WAL holding
// one record per opcode is truncated at every byte position, and each
// truncation must reopen to exactly the state of the complete-record
// prefix — a torn final record of ANY opcode is discarded, never
// misparsed, and never brings the store down.
func TestTornTailEveryByteEveryOpcode(t *testing.T) {
	base := t.TempDir()
	s, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range tornWALOps {
		if err := op.op(s); err != nil {
			t.Fatalf("op %d (%s): %v", i, op.name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(base, walFile))
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(t, wal)
	if len(bounds) != len(tornWALOps)+1 {
		t.Fatalf("WAL holds %d records, want %d (one per opcode)", len(bounds)-1, len(tornWALOps))
	}
	t.Logf("torn-tail sweep: %d cut positions over %d records", len(wal)-walHeaderLen, len(bounds)-1)

	models := make([]*Store, len(tornWALOps)+1)
	for n := range models {
		models[n] = modelAfter(t, n)
		defer models[n].Close()
	}

	dir := t.TempDir()
	path := filepath.Join(dir, walFile)
	// complete reports how many whole records fit in a cut-byte prefix.
	complete := func(cut int) int {
		n := 0
		for n+1 < len(bounds) && bounds[n+1] <= cut {
			n++
		}
		return n
	}
	for cut := walHeaderLen; cut < len(wal); cut++ {
		if err := os.WriteFile(path, wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at byte %d: open failed: %v", cut, err)
		}
		n := complete(cut)
		if !sameState(s2, models[n]) {
			s2.Close()
			t.Fatalf("cut at byte %d (inside record %d, %s): state differs from %d-record prefix",
				cut, n+1, tornWALOps[n].name, n)
		}
		s2.Close()
	}
}

// TestAppendAfterTornTailIsReplayable is the regression test for the
// truncate-before-append fix: records written after a torn tail must be
// visible on the NEXT replay. (Before the fix, the garbage stayed in the
// file, replay stopped at it, and everything appended after it —
// acknowledged commits included — was silently unreachable.)
func TestAppendAfterTornTailIsReplayable(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.CreateTable(userSchema())
	s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	s.Close()
	// Tear the tail: append half of a fake record.
	path := filepath.Join(dir, walFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 40, 9, 9, 9, 9, 1, 2, 3})
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	if _, _, err := s2.Insert("users", types.Row{types.NewInt(2), types.NewString("b"), types.Null}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Table("users").Len(); got != 2 {
		t.Fatalf("append after torn tail lost: %d rows, want 2", got)
	}
}
