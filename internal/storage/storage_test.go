package storage

import (
	"os"
	"path/filepath"
	"testing"

	"ediflow/internal/catalog"
	"ediflow/internal/types"
)

func userSchema() *catalog.TableSchema {
	return &catalog.TableSchema{
		Name: "users",
		Columns: []catalog.Column{
			{Name: "id", Type: types.KindInt, PrimaryKey: true, NotNull: true},
			{Name: "name", Type: types.KindString, NotNull: true},
			{Name: "email", Type: types.KindString, Unique: true},
		},
	}
}

func TestTableInsertGetDelete(t *testing.T) {
	tbl := NewTable(userSchema())
	row := types.Row{types.NewInt(1), types.NewString("ana"), types.NewString("a@x")}
	if err := tbl.Insert(10, 100, row); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(10)
	if !ok || !types.RowsEqual(got.Values, row) || got.Created != 100 {
		t.Fatalf("Get: %+v ok=%v", got, ok)
	}
	if tid, ok := tbl.LookupPK(types.NewInt(1)); !ok || tid != 10 {
		t.Fatalf("LookupPK: %d, %v", tid, ok)
	}
	old, err := tbl.Delete(10)
	if err != nil || !types.RowsEqual(old, row) {
		t.Fatalf("Delete: %v, %v", old, err)
	}
	if _, ok := tbl.Get(10); ok {
		t.Fatal("row still present after delete")
	}
	if _, ok := tbl.LookupPK(types.NewInt(1)); ok {
		t.Fatal("pk entry still present after delete")
	}
}

func TestTableConstraints(t *testing.T) {
	tbl := NewTable(userSchema())
	ok := types.Row{types.NewInt(1), types.NewString("ana"), types.NewString("a@x")}
	if err := tbl.Insert(1, 1, ok); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		row  types.Row
	}{
		{"dup pk", types.Row{types.NewInt(1), types.NewString("bob"), types.NewString("b@x")}},
		{"dup unique", types.Row{types.NewInt(2), types.NewString("bob"), types.NewString("a@x")}},
		{"null pk", types.Row{types.Null, types.NewString("bob"), types.NewString("c@x")}},
		{"null not-null", types.Row{types.NewInt(3), types.Null, types.NewString("d@x")}},
		{"bad arity", types.Row{types.NewInt(4)}},
	}
	for _, c := range cases {
		if err := tbl.Insert(99, 99, c.row); err == nil {
			t.Errorf("%s: expected constraint violation", c.name)
			tbl.Delete(99)
		}
	}
	// NULL in a UNIQUE column is always allowed (no uniqueness of NULLs).
	if err := tbl.Insert(5, 5, types.Row{types.NewInt(5), types.NewString("e"), types.Null}); err != nil {
		t.Errorf("null unique: %v", err)
	}
	if err := tbl.Insert(6, 6, types.Row{types.NewInt(6), types.NewString("f"), types.Null}); err != nil {
		t.Errorf("second null unique: %v", err)
	}
}

func TestTableUpdate(t *testing.T) {
	tbl := NewTable(userSchema())
	tbl.Insert(1, 1, types.Row{types.NewInt(1), types.NewString("ana"), types.NewString("a@x")})
	tbl.Insert(2, 2, types.Row{types.NewInt(2), types.NewString("bob"), types.NewString("b@x")})
	// Moving pk 1 → 3 must update the index.
	old, err := tbl.Update(1, types.Row{types.NewInt(3), types.NewString("ana"), types.NewString("a@x")})
	if err != nil {
		t.Fatal(err)
	}
	if old[0].Int() != 1 {
		t.Fatalf("old row: %v", old)
	}
	if _, ok := tbl.LookupPK(types.NewInt(1)); ok {
		t.Error("stale pk entry")
	}
	if tid, ok := tbl.LookupPK(types.NewInt(3)); !ok || tid != 1 {
		t.Error("new pk entry missing")
	}
	// Updating to a conflicting pk must fail and leave state intact.
	if _, err := tbl.Update(1, types.Row{types.NewInt(2), types.NewString("x"), types.Null}); err == nil {
		t.Error("pk conflict not detected")
	}
	// Self-update (same pk) is fine.
	if _, err := tbl.Update(1, types.Row{types.NewInt(3), types.NewString("ana2"), types.NewString("a@x")}); err != nil {
		t.Errorf("self update: %v", err)
	}
}

func TestSecondaryIndex(t *testing.T) {
	tbl := NewTable(userSchema())
	for i := int64(1); i <= 10; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		if err := tbl.Insert(i, i, types.Row{types.NewInt(i), types.NewString(name), types.Null}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AddIndex("by_name", []string{"name"}, false); err != nil {
		t.Fatal(err)
	}
	tids, ok := tbl.LookupIndex("by_name", types.Row{types.NewString("odd")})
	if !ok || len(tids) != 5 {
		t.Fatalf("odd lookup: %v, %v", tids, ok)
	}
	// Index stays correct across delete and update.
	tbl.Delete(1)
	tids, _ = tbl.LookupIndex("by_name", types.Row{types.NewString("odd")})
	if len(tids) != 4 {
		t.Fatalf("after delete: %v", tids)
	}
	tbl.Update(2, types.Row{types.NewInt(2), types.NewString("odd"), types.Null})
	tids, _ = tbl.LookupIndex("by_name", types.Row{types.NewString("odd")})
	if len(tids) != 5 {
		t.Fatalf("after update: %v", tids)
	}
	if name, ok := tbl.IndexOn(tbl.Schema.ColIndex("name")); !ok || name != "by_name" {
		t.Errorf("IndexOn: %q, %v", name, ok)
	}
	// Unique secondary index over existing duplicate data must fail.
	if err := tbl.AddIndex("uniq_name", []string{"name"}, true); err == nil {
		t.Error("unique index over duplicates must fail")
	}
}

func TestStoreInMemoryBasics(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Durable() {
		t.Error("in-memory store must not be durable")
	}
	if err := s.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	tid, created, err := s.Insert("users", types.Row{types.NewInt(1), types.NewString("ana"), types.Null})
	if err != nil || tid == 0 || created == 0 {
		t.Fatalf("insert: %d, %d, %v", tid, created, err)
	}
	if s.CurrentStamp() != created {
		t.Errorf("CurrentStamp: %d, want %d", s.CurrentStamp(), created)
	}
	if _, _, err := s.Insert("nope", nil); err == nil {
		t.Error("insert into missing table must fail")
	}
	if err := s.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if s.Table("users") != nil {
		t.Error("table present after drop")
	}
}

func TestStoreDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	var lastTID int64
	for i := int64(1); i <= 50; i++ {
		tid, _, err := s.Insert("users", types.Row{types.NewInt(i), types.NewString("u"), types.Null})
		if err != nil {
			t.Fatal(err)
		}
		lastTID = tid
	}
	if _, err := s.Update("users", lastTID, types.Row{types.NewInt(50), types.NewString("updated"), types.Null}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("users", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex("by_name", "users", []string{"name"}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeta("view", "v1", "CREATE VIEW v1 AS SELECT id FROM users"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open: WAL replay must restore everything.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl := s2.Table("users")
	if tbl == nil || tbl.Len() != 49 {
		t.Fatalf("after replay: %v rows", tbl.Len())
	}
	got, ok := tbl.Get(lastTID)
	if !ok || got.Values[1].Str() != "updated" {
		t.Fatalf("updated row lost: %+v, %v", got, ok)
	}
	if _, ok := tbl.LookupIndex("by_name", types.Row{types.NewString("updated")}); !ok {
		t.Error("index lost after replay")
	}
	metas := s2.Metas()
	if len(metas) != 1 || metas[0].Name != "v1" {
		t.Fatalf("metas lost: %+v", metas)
	}
	// New tids must not collide with replayed ones.
	tid, _, err := s2.Insert("users", types.Row{types.NewInt(1000), types.NewString("new"), types.Null})
	if err != nil || tid <= lastTID {
		t.Fatalf("tid reuse after replay: %d vs %d (%v)", tid, lastTID, err)
	}
	s2.Close()
}

func TestStoreCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable(userSchema())
	for i := int64(1); i <= 20; i++ {
		s.Insert("users", types.Row{types.NewInt(i), types.NewString("u"), types.Null})
	}
	s.PutMeta("trigger", "t1", "CREATE TRIGGER t1 AFTER INSERT ON users CALL 'h'")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL must hold only its epoch header after checkpoint.
	fi, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil || fi.Size() != walHeaderLen {
		t.Fatalf("wal not truncated: %v, %v", fi, err)
	}
	// Post-checkpoint writes land in the new WAL.
	s.Insert("users", types.Row{types.NewInt(21), types.NewString("after"), types.Null})
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Table("users").Len() != 21 {
		t.Fatalf("rows after snapshot+wal: %d", s2.Table("users").Len())
	}
	if len(s2.Metas()) != 1 {
		t.Fatalf("metas: %+v", s2.Metas())
	}
	s2.Close()
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.CreateTable(userSchema())
	s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	s.Close()
	// Append garbage to simulate a torn write.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 99, 1, 2, 3})
	f.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not prevent open: %v", err)
	}
	if s2.Table("users").Len() != 1 {
		t.Fatalf("rows: %d", s2.Table("users").Len())
	}
	s2.Close()
}

func TestDeleteMeta(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	s.PutMeta("view", "a", "x")
	s.PutMeta("view", "b", "y")
	s.DeleteMeta("view", "a")
	m := s.Metas()
	if len(m) != 1 || m[0].Name != "b" {
		t.Fatalf("%+v", m)
	}
	// Upsert replaces text.
	s.PutMeta("view", "b", "z")
	if m := s.Metas(); len(m) != 1 || m[0].Text != "z" {
		t.Fatalf("%+v", m)
	}
}
