package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"ediflow/internal/catalog"
	"ediflow/internal/types"
)

// Property: after any random stream of DML, closing and reopening the
// store (WAL replay) reproduces exactly the same tables, rows, system
// columns and counters — the crash-consistency contract.
func TestReplayEquivalenceRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			schema := &catalog.TableSchema{
				Name: "t",
				Columns: []catalog.Column{
					{Name: "a", Type: types.KindInt},
					{Name: "s", Type: types.KindString},
				},
			}
			if err := s.CreateTable(schema); err != nil {
				t.Fatal(err)
			}
			var live []int64
			for op := 0; op < 300; op++ {
				switch {
				case len(live) < 3 || rng.Intn(3) == 0:
					tid, _, err := s.Insert("t", types.Row{
						types.NewInt(int64(rng.Intn(1000))),
						types.NewString(fmt.Sprintf("s%d", rng.Intn(50))),
					})
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, tid)
				case rng.Intn(2) == 0:
					i := rng.Intn(len(live))
					if _, err := s.Update("t", live[i], types.Row{
						types.NewInt(int64(rng.Intn(1000))),
						types.NewString("updated"),
					}); err != nil {
						t.Fatal(err)
					}
				default:
					i := rng.Intn(len(live))
					if _, err := s.Delete("t", live[i]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:i], live[i+1:]...)
				}
				// Occasionally checkpoint mid-stream.
				if op == 150 && seed%2 == 0 {
					if err := s.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Capture the full state.
			type snap struct {
				created int64
				row     string
			}
			capture := func(st *Store) map[int64]snap {
				out := map[int64]snap{}
				for _, r := range st.Table("t").Rows() {
					key := ""
					for _, v := range r.Values {
						key += v.String() + "|"
					}
					out[r.TID] = snap{created: r.Created, row: key}
				}
				return out
			}
			before := capture(s)
			nextTID := s.nextTID.Load()
			nextCreated := s.nextCreated.Load()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			after := capture(s2)
			if len(after) != len(before) {
				t.Fatalf("row count: %d vs %d", len(after), len(before))
			}
			for tid, want := range before {
				got, ok := after[tid]
				if !ok || got != want {
					t.Fatalf("tid %d: %+v vs %+v", tid, got, want)
				}
			}
			if s2.nextTID.Load() != nextTID || s2.nextCreated.Load() != nextCreated {
				t.Fatalf("counters: tid %d vs %d, created %d vs %d",
					s2.nextTID.Load(), nextTID, s2.nextCreated.Load(), nextCreated)
			}
		})
	}
}
