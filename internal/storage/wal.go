package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"ediflow/internal/catalog"
	"ediflow/internal/fault"
	"ediflow/internal/types"
)

// Write-ahead log and snapshot formats.
//
// The WAL opens with a 16-byte file header:
//
//	[8-byte magic "EDIWAL1\n"][u64 epoch]
//
// The epoch ties the log to the snapshot it extends (see
// Store.Checkpoint): a log whose epoch predates the installed snapshot's
// is a leftover from a crash inside checkpoint and is ignored on replay —
// replaying it would double-apply records already in the snapshot.
//
// After the header, the WAL is a sequence of framed records:
//
//	[u32 payload length][u32 crc32(payload)][payload]
//
// Replay stops cleanly at a truncated or corrupted tail (the standard
// crash-recovery contract: a torn final record is discarded), and the
// store physically truncates that tail before appending again so new
// records are never hidden behind garbage.
//
// Payloads begin with a 1-byte opcode:
//
//	opCreateTable  name, column defs
//	opDropTable    name
//	opInsert       table, tid, created, row
//	opUpdate       table, tid, row
//	opDelete       table, tid
//	opCreateIndex  name, table, unique, columns
//	opPutMeta      kind, name, text     (view / trigger DDL re-registered on open)
//	opDelMeta      kind, name
const (
	opCreateTable byte = 1
	opDropTable   byte = 2
	opInsert      byte = 3
	opUpdate      byte = 4
	opDelete      byte = 5
	opCreateIndex byte = 6
	opPutMeta     byte = 7
	opDelMeta     byte = 8
)

const (
	walMagic     = "EDIWAL1\n"
	walHeaderLen = 16 // magic + big-endian epoch
)

type walWriter struct {
	f fault.File
	// mu guards buf: with the group-commit pipeline, appends (engine
	// goroutines holding the engine write lock) and buffer flushes (the
	// store's flusher goroutine) are concurrent. fsync needs no lock —
	// it only touches the file, and racing an fsync with a write is safe
	// (the batch's own flush+fsync happens-after its appends via the
	// commit-ticket handoff).
	mu  sync.Mutex
	buf *bufio.Writer
}

// createWAL truncates (or creates) the log at path and stamps a fresh
// header carrying epoch. The header is fsynced and the directory entry
// is fsynced too, so a power loss immediately afterwards can neither
// lose the file nor resurrect the pre-truncation content.
func createWAL(fs fault.FS, dir, path string, epoch uint64) (*walWriter, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:8], walMagic)
	binary.BigEndian.PutUint64(hdr[8:], epoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, buf: bufio.NewWriterSize(f, 1<<16)}, nil
}

// openWALAppend opens an existing log — header already validated by
// replayWAL — for appending.
func openWALAppend(fs fault.FS, path string) (*walWriter, error) {
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, buf: bufio.NewWriterSize(f, 1<<16)}, nil
}

// append frames one record into the write buffer and returns the number
// of bytes added (header + payload).
func (w *walWriter) append(payload []byte) (int, error) {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.buf.Write(payload); err != nil {
		return 0, err
	}
	return len(hdr) + len(payload), nil
}

// flush pushes buffered records to the OS page cache. This alone is NOT
// durable against machine crashes — an acknowledged commit survives a
// process kill but not a power loss until fsync runs. The Store's
// SyncMode decides when fsync is called (see Store.Flush); the old name
// of this method ("sync") wrongly suggested it reached the platter.
func (w *walWriter) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Flush()
}

// fsync forces flushed records to stable storage.
func (w *walWriter) fsync() error { return w.f.Sync() }

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// discard closes the file without flushing buffered records — the
// checkpoint path, where everything buffered is already contained in the
// snapshot being installed.
func (w *walWriter) discard() error { return w.f.Close() }

// walInfo is what replayWAL learned about the on-disk log.
type walInfo struct {
	epoch    uint64
	replayed bool  // header valid, epoch current, records applied
	torn     bool  // trailing garbage after the last valid record
	goodLen  int64 // header + valid records, in bytes
}

// replayWAL validates the log header against the snapshot epoch and, if
// it is current, applies every intact record via apply. A truncated or
// corrupt tail terminates replay without error (torn is set so the
// caller can cut it off). A log whose epoch predates the snapshot's is
// skipped entirely: it is a leftover from a crash between the snapshot
// rename and the log truncation, and every record in it is already in
// the snapshot. A log from a *later* epoch than the snapshot is a hard
// error — it means an installed snapshot was lost.
func replayWAL(fs fault.FS, path string, snapEpoch uint64, apply func(payload []byte) error) (walInfo, error) {
	var info walInfo
	f, err := fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var fh [walHeaderLen]byte
	if _, err := io.ReadFull(r, fh[:]); err != nil {
		return info, nil // empty file or torn header: treat as no log
	}
	if string(fh[:8]) != walMagic {
		return info, nil // unrecognized: recreate
	}
	info.epoch = binary.BigEndian.Uint64(fh[8:])
	info.goodLen = walHeaderLen
	if info.epoch < snapEpoch {
		return info, nil // stale epoch: skip (see function comment)
	}
	if info.epoch > snapEpoch {
		return info, fmt.Errorf("storage: WAL epoch %d ahead of snapshot epoch %d (snapshot lost?)",
			info.epoch, snapEpoch)
	}
	info.replayed = true
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			info.torn = err != io.EOF // clean EOF vs. torn header
			return info, nil
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			info.torn = true // implausible length: corrupt tail
			return info, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			info.torn = true // torn record
			return info, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			info.torn = true // corrupt record
			return info, nil
		}
		if err := apply(payload); err != nil {
			return info, fmt.Errorf("storage: WAL replay: %w", err)
		}
		info.goodLen += 8 + int64(n)
	}
}

// ------------------------------------------------------------- payloads

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, int, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < n {
		return "", 0, fmt.Errorf("storage: short string")
	}
	return string(buf[w : w+int(n)]), w + int(n), nil
}

func encodeCreateTable(s *catalog.TableSchema) []byte {
	out := []byte{opCreateTable}
	out = appendString(out, s.Name)
	out = binary.AppendUvarint(out, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		out = appendString(out, c.Name)
		out = append(out, byte(c.Type))
		flags := byte(0)
		if c.PrimaryKey {
			flags |= 1
		}
		if c.Unique {
			flags |= 2
		}
		if c.NotNull {
			flags |= 4
		}
		out = append(out, flags)
	}
	return out
}

func decodeCreateTable(buf []byte) (*catalog.TableSchema, error) {
	name, off, err := readString(buf)
	if err != nil {
		return nil, err
	}
	n, w := binary.Uvarint(buf[off:])
	if w <= 0 {
		return nil, fmt.Errorf("storage: bad column count")
	}
	off += w
	s := &catalog.TableSchema{Name: name}
	for i := uint64(0); i < n; i++ {
		cn, used, err := readString(buf[off:])
		if err != nil {
			return nil, err
		}
		off += used
		if off+2 > len(buf) {
			return nil, fmt.Errorf("storage: short column def")
		}
		kind := types.Kind(buf[off])
		flags := buf[off+1]
		off += 2
		s.Columns = append(s.Columns, catalog.Column{
			Name: cn, Type: kind,
			PrimaryKey: flags&1 != 0, Unique: flags&2 != 0, NotNull: flags&4 != 0,
		})
	}
	return s, nil
}

func encodeInsert(table string, tid, created int64, row types.Row) []byte {
	out := []byte{opInsert}
	out = appendString(out, table)
	out = binary.BigEndian.AppendUint64(out, uint64(tid))
	out = binary.BigEndian.AppendUint64(out, uint64(created))
	return types.AppendRow(out, row)
}

func encodeUpdate(table string, tid int64, row types.Row) []byte {
	out := []byte{opUpdate}
	out = appendString(out, table)
	out = binary.BigEndian.AppendUint64(out, uint64(tid))
	return types.AppendRow(out, row)
}

func encodeDelete(table string, tid int64) []byte {
	out := []byte{opDelete}
	out = appendString(out, table)
	return binary.BigEndian.AppendUint64(out, uint64(tid))
}

func encodeCreateIndex(name, table string, unique bool, cols []string) []byte {
	out := []byte{opCreateIndex}
	out = appendString(out, name)
	out = appendString(out, table)
	if unique {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.AppendUvarint(out, uint64(len(cols)))
	for _, c := range cols {
		out = appendString(out, c)
	}
	return out
}

func encodePutMeta(kind, name, text string) []byte {
	out := []byte{opPutMeta}
	out = appendString(out, kind)
	out = appendString(out, name)
	return appendString(out, text)
}

func encodeDelMeta(kind, name string) []byte {
	out := []byte{opDelMeta}
	out = appendString(out, kind)
	return appendString(out, name)
}
