package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"ediflow/internal/types"
)

// Replication feed: the store-level half of WAL shipping (internal/repl
// builds the wire protocol and replica loop on top of it).
//
// Every logged mutation record — the exact payload bytes that go to the
// WAL — is also captured into an in-memory ring, stamped with a monotone
// sequence number. A replica's cursor is (streamID, seq): streamID is
// drawn fresh every time the feed is enabled, so a primary restart (or
// reopen) always invalidates old cursors and forces a snapshot resync;
// that makes it safe to ship records that are not yet fsynced — a
// crashed primary can never be asked to serve a cursor that includes
// writes it lost.
//
// The ring keeps a retention floor: Checkpoint prunes everything (the
// WAL analog of truncation), and a byte budget bounds memory between
// checkpoints. A fetch below the floor returns ErrReplGap and the
// caller must fall back to a full snapshot.

// ErrReplGap is returned by ReplFetch when the requested cursor
// predates the retained floor; the subscriber must resync from a
// snapshot.
var ErrReplGap = fmt.Errorf("storage: replication cursor below retained floor")

// DefaultReplBudget bounds the feed ring's memory between checkpoints.
const DefaultReplBudget = 64 << 20

type replRec struct {
	seq     uint64
	cum     int64 // feed-lifetime payload bytes through this record
	payload []byte
}

type replFeed struct {
	mu      sync.Mutex
	on      bool
	exclude map[string]bool // lower-cased table names kept out of the stream
	stream  uint64          // nonzero, fresh per enable
	head    uint64          // seq of the newest captured record (0 = none yet)
	floor   uint64          // seq of the oldest retained record; head+1 when empty
	total   int64           // lifetime payload bytes captured
	bytes   int64           // payload bytes currently retained
	budget  int64
	buf     []replRec
	watch   chan struct{} // closed and replaced on every capture
}

// EnableReplFeed turns on mutation capture for replication. budget <= 0
// selects DefaultReplBudget. Tables named in exclude are invisible to
// the feed: their records are neither streamed nor counted, and their
// rows are omitted from EncodeReplSnapshot (the schema still ships, so
// replicas can hold purely local rows in them).
func (s *Store) EnableReplFeed(budget int64, exclude ...string) {
	if budget <= 0 {
		budget = DefaultReplBudget
	}
	f := &s.repl
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.on {
		return
	}
	f.on = true
	f.budget = budget
	f.exclude = map[string]bool{}
	for _, t := range exclude {
		f.exclude[tkey(t)] = true
	}
	for f.stream == 0 {
		f.stream = rand.Uint64()
	}
	f.floor = f.head + 1
	f.watch = make(chan struct{})
}

// replCapture appends one logged record to the feed ring. Called from
// Store.log under the engine write lock; the feed's own mutex covers
// standalone-store callers and concurrent fetchers.
func (s *Store) replCapture(table string, payload []byte) {
	f := &s.repl
	f.mu.Lock()
	if !f.on || (table != "" && f.exclude[tkey(table)]) {
		f.mu.Unlock()
		return
	}
	f.head++
	f.total += int64(len(payload))
	f.buf = append(f.buf, replRec{seq: f.head, cum: f.total, payload: payload})
	f.bytes += int64(len(payload))
	for f.bytes > f.budget && len(f.buf) > 1 {
		f.bytes -= int64(len(f.buf[0].payload))
		f.buf = f.buf[1:]
		f.floor = f.buf[0].seq
	}
	watch := f.watch
	f.watch = make(chan struct{})
	f.mu.Unlock()
	close(watch) // wake streamers outside the lock
}

// replPrune empties the ring and raises the floor past the head — the
// feed analog of WAL truncation. Checkpoint calls it: any replica whose
// cursor predates the checkpoint must resync from a snapshot instead of
// replaying records the snapshot already contains (the stale-WAL
// double-apply class of bug, kept out of the replication path by
// construction).
func (s *Store) replPrune() {
	f := &s.repl
	f.mu.Lock()
	if f.on {
		f.buf = nil
		f.bytes = 0
		f.floor = f.head + 1
	}
	f.mu.Unlock()
}

// ReplStreamID returns the feed's stream identity (0 when disabled).
func (s *Store) ReplStreamID() uint64 {
	f := &s.repl
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stream
}

// ReplHead returns the newest captured sequence number.
func (s *Store) ReplHead() uint64 {
	f := &s.repl
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.head
}

// ReplFloor returns the oldest retained sequence number (head+1 when
// the ring is empty).
func (s *Store) ReplFloor() uint64 {
	f := &s.repl
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.floor
}

// ReplLagBytes estimates the payload bytes a cursor at fromSeq has not
// yet applied. Cursors below the floor count everything retained plus
// pruned history is unknowable, so the lifetime total is the bound.
func (s *Store) ReplLagBytes(fromSeq uint64) int64 {
	f := &s.repl
	f.mu.Lock()
	defer f.mu.Unlock()
	if fromSeq >= f.head {
		return 0
	}
	if fromSeq >= f.floor-1 && len(f.buf) > 0 {
		if fromSeq == f.floor-1 {
			return f.total - (f.buf[0].cum - int64(len(f.buf[0].payload)))
		}
		return f.total - f.buf[fromSeq-f.floor].cum
	}
	return f.total
}

// ReplWatch returns a channel closed at the next capture; streamers
// caught up with the head block on it instead of polling.
func (s *Store) ReplWatch() <-chan struct{} {
	f := &s.repl
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.watch == nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return f.watch
}

// ReplFetch returns records with sequence numbers in (fromSeq, head],
// bounded by maxBytes of payload (always at least one record when any
// is available). next is the sequence of the last returned record —
// the caller's new cursor — and head the current feed head. A cursor
// below the retained floor yields ErrReplGap.
func (s *Store) ReplFetch(fromSeq uint64, maxBytes int) (recs [][]byte, next, head uint64, err error) {
	f := &s.repl
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.on {
		return nil, fromSeq, f.head, fmt.Errorf("storage: replication feed disabled")
	}
	if fromSeq+1 < f.floor {
		return nil, fromSeq, f.head, ErrReplGap
	}
	next = fromSeq
	if fromSeq >= f.head {
		return nil, next, f.head, nil
	}
	idx := int(fromSeq + 1 - f.floor)
	var size int
	for ; idx < len(f.buf); idx++ {
		p := f.buf[idx].payload
		if len(recs) > 0 && size+len(p) > maxBytes {
			break
		}
		recs = append(recs, p)
		size += len(p)
		next = f.buf[idx].seq
	}
	return recs, next, f.head, nil
}

// ---------------------------------------------------- snapshot shipping

// EncodeReplSnapshot serializes the full store state for replica
// bootstrap, in the checkpoint snapshot format with the epoch and
// counters zeroed: the encoding depends only on logical table content,
// so two stores that applied the same records encode byte-identically
// regardless of local checkpoint history. Rows of excluded tables are
// omitted (their schemas still ship).
func (s *Store) EncodeReplSnapshot(exclude ...string) ([]byte, error) {
	skip := map[string]bool{}
	for _, t := range exclude {
		skip[tkey(t)] = true
	}
	var buf bytes.Buffer
	if err := s.writeSnapshotTo(&buf, 0, false, skip); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ResetFromSnapshot replaces the store's entire logical state with the
// given replication snapshot. Rows of tables named in preserve survive
// the reset (replica-local state such as mirror registrations); their
// tids are re-inserted verbatim and the allocation counters stay
// monotone across the reset so local allocations never repeat.
func (s *Store) ResetFromSnapshot(data []byte, preserve ...string) error {
	type saved struct {
		schema *Table
		rows   []StoredRow
	}
	kept := map[string]saved{}
	for _, name := range preserve {
		if t := s.Table(name); t != nil {
			kept[tkey(name)] = saved{schema: t, rows: t.Rows()}
		}
	}
	oldEpoch := s.epoch
	oldTID := s.nextTID.Load()
	oldCreated := s.nextCreated.Load()
	s.tablesMu.Lock()
	s.tables = map[string]*Table{}
	s.tablesMu.Unlock()
	s.indexes = nil
	s.metas = nil
	if err := s.loadSnapshotBytes(data); err != nil {
		return err
	}
	s.epoch = oldEpoch // replication snapshots carry epoch 0; keep ours
	// The snapshot's counters are zeroed; rebuild them from row stamps,
	// then keep them monotone across the reset.
	for _, t := range s.tables {
		for _, r := range t.Rows() {
			s.bumpCounters(r.TID, r.Created)
		}
	}
	s.bumpCounters(oldTID-1, oldCreated-1)
	for key, sv := range kept {
		s.tablesMu.Lock()
		t := s.tables[key]
		if t == nil {
			// The primary does not have this table; keep the local one.
			t = s.adopt(NewTable(sv.schema.Schema))
			s.tables[key] = t
		}
		s.tablesMu.Unlock()
		for _, r := range sv.rows {
			if err := t.Insert(r.TID, r.Created, r.Values); err != nil {
				return fmt.Errorf("storage: restoring preserved row: %w", err)
			}
			s.bumpCounters(r.TID, r.Created)
		}
	}
	// The rebuilt state stamped fresh versions; publish them before the
	// replica serves its next read.
	s.PublishSnapshot()
	return nil
}

// ------------------------------------------------------- record apply

// ReplKind classifies an applied replication record for catalog upkeep.
type ReplKind int

// Replication record kinds (mirroring the WAL opcodes).
const (
	ReplCreateTable ReplKind = iota + 1
	ReplDropTable
	ReplInsert
	ReplUpdate
	ReplDelete
	ReplCreateIndex
	ReplPutMeta
	ReplDelMeta
)

// ReplApplied describes one applied replication record so the engine
// can keep its catalog in sync without re-decoding payloads.
type ReplApplied struct {
	Kind  ReplKind
	Table string // affected table (all kinds except meta records)
	// Index records.
	IndexName string
	IndexCols []string
	Unique    bool
	// Meta records.
	MetaKind string
	MetaName string
	MetaText string
}

// DDL reports whether the record changes schema rather than rows.
func (a ReplApplied) DDL() bool {
	return a.Kind != ReplInsert && a.Kind != ReplUpdate && a.Kind != ReplDelete
}

// ApplyReplRecord applies one shipped record to the store — the same
// code path as WAL replay — and reports what it was.
func (s *Store) ApplyReplRecord(payload []byte) (ReplApplied, error) {
	info, err := peekReplRecord(payload)
	if err != nil {
		return ReplApplied{}, err
	}
	if err := s.applyWAL(payload); err != nil {
		return ReplApplied{}, err
	}
	return info, nil
}

func peekReplRecord(payload []byte) (ReplApplied, error) {
	if len(payload) == 0 {
		return ReplApplied{}, fmt.Errorf("storage: empty replication record")
	}
	op, body := payload[0], payload[1:]
	var a ReplApplied
	switch op {
	case opCreateTable, opDropTable, opInsert, opUpdate, opDelete:
		name, _, err := readString(body)
		if err != nil {
			return a, err
		}
		a.Kind = ReplKind(op)
		a.Table = name
		return a, nil
	case opCreateIndex:
		name, off, err := readString(body)
		if err != nil {
			return a, err
		}
		table, used, err := readString(body[off:])
		if err != nil {
			return a, err
		}
		off += used
		if off >= len(body) {
			return a, fmt.Errorf("storage: short index record")
		}
		a.Unique = body[off] == 1
		off++
		n, w := binary.Uvarint(body[off:])
		if w <= 0 {
			return a, fmt.Errorf("storage: short index record")
		}
		off += w
		for i := uint64(0); i < n; i++ {
			c, used, err := readString(body[off:])
			if err != nil {
				return a, err
			}
			a.IndexCols = append(a.IndexCols, c)
			off += used
		}
		a.Kind = ReplCreateIndex
		a.IndexName = name
		a.Table = table
		return a, nil
	case opPutMeta, opDelMeta:
		kind, off, err := readString(body)
		if err != nil {
			return a, err
		}
		name, used, err := readString(body[off:])
		if err != nil {
			return a, err
		}
		off += used
		if op == opPutMeta {
			text, _, err := readString(body[off:])
			if err != nil {
				return a, err
			}
			a.MetaText = text
			a.Kind = ReplPutMeta
		} else {
			a.Kind = ReplDelMeta
		}
		a.MetaKind = kind
		a.MetaName = name
		return a, nil
	}
	return a, fmt.Errorf("storage: unknown replication opcode %d", op)
}

// DecodeReplInsert decodes an opInsert record's full content. ok is
// false for any other record kind or a malformed payload.
func DecodeReplInsert(payload []byte) (table string, tid int64, row types.Row, ok bool) {
	if len(payload) == 0 || payload[0] != opInsert {
		return "", 0, nil, false
	}
	body := payload[1:]
	name, off, err := readString(body)
	if err != nil || len(body) < off+16 {
		return "", 0, nil, false
	}
	tid = int64(binary.BigEndian.Uint64(body[off:]))
	row, _, err = types.DecodeRow(body[off+16:])
	if err != nil {
		return "", 0, nil, false
	}
	return name, tid, row, true
}
