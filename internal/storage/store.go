package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ediflow/internal/catalog"
	"ediflow/internal/fault"
	"ediflow/internal/metrics"
	"ediflow/internal/types"
)

// SyncMode selects how aggressively the WAL is forced to stable storage.
type SyncMode int

const (
	// SyncOSCache flushes WAL records to the OS page cache at statement
	// boundaries but never fsyncs until checkpoint/close. Acknowledged
	// commits survive a process crash (the kernel holds the data) but can
	// be lost to a machine crash or power failure. This is the historical
	// default, kept for benchmarks and tests.
	SyncOSCache SyncMode = iota
	// SyncCommit fsyncs the WAL at every statement/commit boundary: an
	// acknowledged commit is on stable storage before control returns.
	SyncCommit
	// SyncInterval group-commits: flushes reach the OS at every boundary,
	// and an fsync runs at most once per SyncEvery window. Bounded loss
	// (≤ one window) at a fraction of SyncCommit's cost.
	SyncInterval
)

func (m SyncMode) String() string {
	switch m {
	case SyncCommit:
		return "commit"
	case SyncInterval:
		return "interval"
	default:
		return "none"
	}
}

// ParseSyncMode maps a flag string ("none", "commit", "interval") to a
// SyncMode; unknown values fall back to SyncOSCache.
func ParseSyncMode(s string) SyncMode {
	switch strings.ToLower(s) {
	case "commit", "fsync", "full":
		return SyncCommit
	case "interval", "group":
		return SyncInterval
	default:
		return SyncOSCache
	}
}

// Options configures durability behavior for OpenWith.
type Options struct {
	Sync      SyncMode
	SyncEvery time.Duration // SyncInterval window; defaults to 100ms
	// FS is the filesystem all store I/O goes through. nil means the
	// real OS; tests substitute fault-injecting implementations.
	FS fault.FS
}

const defaultSyncEvery = 100 * time.Millisecond

// MetaEntry is a piece of DDL (view or trigger definition) that the
// database layer re-registers when re-opening a store.
type MetaEntry struct {
	Kind string // "view" or "trigger"
	Name string
	Text string // the original DDL statement
}

type indexDef struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// Store is the physical database: a set of tables plus durability. A Store
// with an empty directory is purely in-memory (used by most tests); with a
// directory it persists through a snapshot file and a WAL.
type Store struct {
	dir     string
	durable bool
	opts    Options
	fs      fault.FS
	wal     *walWriter
	// epoch ties the installed snapshot and the live WAL together: both
	// carry it, Checkpoint bumps it, and replay ignores a WAL whose
	// epoch predates the snapshot's (a leftover from a crash inside
	// checkpoint whose records the snapshot already contains).
	epoch uint64

	// tablesMu guards the tables map itself (lookups vs DDL): lock-free
	// snapshot readers resolve tables without the engine lock. Table
	// contents have their own MVCC synchronization.
	tablesMu sync.RWMutex
	tables   map[string]*Table // lower-cased name → table
	indexes  []indexDef
	metas    []MetaEntry

	nextTID     atomic.Int64
	nextCreated atomic.Int64

	// MVCC clock and visibility ceiling. Every version stamp comes from
	// mvccNext (shared by all tables via Table.SetClock); mvccVisible is
	// the published snapshot ceiling readers capture — the engine raises
	// it at statement/transaction boundaries, so a snapshot never
	// observes half of a statement or an open transaction. vacuumFloor
	// rises with Vacuum: AS OF queries below it are refused.
	mvccNext    atomic.Int64
	mvccVisible atomic.Int64
	vacuumFloor atomic.Int64

	// Active-snapshot registry: seq → reader refcount. Vacuum reclaims
	// only versions invisible to every registered snapshot.
	snapMu   sync.Mutex
	snapRefs map[int64]int

	mvccVacuumed *metrics.Counter

	// Observability. The registry is created here (the store opens before
	// the engine) and adopted upward by engine/database/server so the
	// whole process shares one metric namespace.
	reg        *metrics.Registry
	walAppends *metrics.Counter
	walBytes   *metrics.Counter
	walFlushes *metrics.Counter
	walFsyncs  *metrics.Counter
	walFlushH  *metrics.Histogram
	walFsyncH  *metrics.Histogram

	// Group-commit pipeline (see Store.Commit and flusherLoop). commitMu
	// guards the ticket queue, the SyncInterval dirty flag, and the
	// flusher liveness bit; cycleMu serializes whole flush cycles (buffer
	// flush + fsync) against Checkpoint's WAL swap, so the flusher can
	// never fsync a file the checkpoint just closed.
	commitMu  sync.Mutex
	commitQ   []chan error
	walDirty  bool // SyncInterval: un-fsynced records reached the OS cache
	flusherOn bool
	flushKick chan struct{}
	flushStop chan struct{}
	flushDone chan struct{}
	cycleMu   sync.Mutex

	walGroupCommits *metrics.Counter   // batches fsynced with ≥1 ticket
	walCommits      *metrics.Counter   // tickets acked through the pipeline
	walGroupSizeH   *metrics.Histogram // batch size, encoded as n µs

	// repl captures logged records for WAL-shipping replication (see
	// replfeed.go). Disabled until EnableReplFeed.
	repl replFeed
}

const (
	snapshotFile  = "ediflow.snapshot"
	walFile       = "ediflow.wal"
	snapshotMagic = "EDSNAP2\n" // v2: header carries the checkpoint epoch
)

// Open opens (or creates) a store with the historical durability default
// (SyncOSCache). dir == "" yields an in-memory store.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenWith opens (or creates) a store with explicit durability options.
func OpenWith(dir string, opts Options) (*Store, error) {
	if opts.Sync == SyncInterval && opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if opts.FS == nil {
		opts.FS = fault.OS{}
	}
	s := &Store{
		dir:      dir,
		durable:  dir != "",
		opts:     opts,
		fs:       opts.FS,
		tables:   map[string]*Table{},
		snapRefs: map[int64]int{},
		reg:      metrics.NewRegistry(),
	}
	s.walAppends = s.reg.Counter("wal.appends")
	s.walBytes = s.reg.Counter("wal.bytes")
	s.walFlushes = s.reg.Counter("wal.flushes")
	s.walFsyncs = s.reg.Counter("wal.fsyncs")
	s.walFlushH = s.reg.Histogram("wal.flush_latency")
	s.walFsyncH = s.reg.Histogram("wal.fsync_latency")
	s.walGroupCommits = s.reg.Counter("wal.group_commits")
	s.walCommits = s.reg.Counter("wal.commits")
	s.walGroupSizeH = s.reg.Histogram("wal.group_commit_size")
	s.mvccVacuumed = s.reg.Counter("mvcc.vacuumed")
	s.reg.RegisterGauge("mvcc.versions", s.versionCount)
	s.reg.RegisterGauge("mvcc.snapshot_seq", s.SnapshotSeq)
	s.reg.RegisterGauge("mvcc.snapshot_age", func() int64 {
		return s.SnapshotSeq() - s.OldestSnapshot()
	})
	s.nextTID.Store(1)
	s.nextCreated.Store(1)
	if !s.durable {
		return s, nil
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := s.loadSnapshot(filepath.Join(dir, snapshotFile)); err != nil {
		return nil, err
	}
	walPath := filepath.Join(dir, walFile)
	info, err := replayWAL(s.fs, walPath, s.epoch, s.applyWAL)
	if err != nil {
		return nil, err
	}
	var w *walWriter
	switch {
	case info.replayed && info.torn:
		// Cut the torn tail off before appending: records written after
		// garbage would be unreachable on the next replay (it stops at
		// the first bad frame), silently losing acknowledged commits.
		if err := s.fs.Truncate(walPath, info.goodLen); err != nil {
			return nil, err
		}
		if w, err = openWALAppend(s.fs, walPath); err == nil {
			err = w.fsync() // make the truncation itself durable
		}
	case info.replayed:
		w, err = openWALAppend(s.fs, walPath)
	default:
		// Absent, unrecognized, or stale-epoch log: start a fresh one
		// stamped with the snapshot's epoch.
		w, err = createWAL(s.fs, dir, walPath, s.epoch)
	}
	if err != nil {
		return nil, err
	}
	s.wal = w
	// Replay stamped fresh versions; make them all visible before any
	// reader captures a snapshot.
	s.PublishSnapshot()
	s.startFlusher()
	return s, nil
}

// ----------------------------------------------------- MVCC snapshots

// MVCCClock exposes the store-wide version-stamp counter; tables created
// outside the store's own paths adopt it via Table.SetClock.
func (s *Store) MVCCClock() *atomic.Int64 { return &s.mvccNext }

// adopt points a table at the store-wide MVCC clock.
func (s *Store) adopt(t *Table) *Table {
	t.SetClock(&s.mvccNext)
	return t
}

// PublishSnapshot raises the visibility ceiling to the newest allocated
// version stamp. The engine calls it at statement and transaction
// boundaries (never mid-transaction), which is what makes snapshots
// statement- and transaction-atomic.
func (s *Store) PublishSnapshot() {
	s.mvccVisible.Store(s.mvccNext.Load())
}

// SnapshotSeq returns the published visibility ceiling.
func (s *Store) SnapshotSeq() int64 { return s.mvccVisible.Load() }

// AcquireSnapshot registers a reader at the current ceiling and returns
// its snapshot seq. Pair with ReleaseSnapshot.
func (s *Store) AcquireSnapshot() int64 {
	s.snapMu.Lock()
	seq := s.mvccVisible.Load()
	s.snapRefs[seq]++
	s.snapMu.Unlock()
	return seq
}

// ErrSnapshotTooOld is returned for an AS OF seq below the vacuum floor:
// versions that old may already be reclaimed.
var ErrSnapshotTooOld = fmt.Errorf("storage: snapshot too old (below vacuum floor)")

// AcquireSnapshotAt registers a reader at an explicit seq (the AS OF
// hook). Seqs above the published ceiling clamp to it; seqs below the
// vacuum floor are refused. Pair with ReleaseSnapshot on the returned
// seq.
func (s *Store) AcquireSnapshotAt(seq int64) (int64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if vis := s.mvccVisible.Load(); seq > vis {
		seq = vis
	}
	if seq < s.vacuumFloor.Load() {
		return 0, ErrSnapshotTooOld
	}
	s.snapRefs[seq]++
	return seq, nil
}

// ReleaseSnapshot deregisters a reader acquired at seq.
func (s *Store) ReleaseSnapshot(seq int64) {
	s.snapMu.Lock()
	if n := s.snapRefs[seq]; n <= 1 {
		delete(s.snapRefs, seq)
	} else {
		s.snapRefs[seq] = n - 1
	}
	s.snapMu.Unlock()
}

// OldestSnapshot returns the oldest registered reader seq, or the
// published ceiling when no reader is active — the vacuum horizon.
func (s *Store) OldestSnapshot() int64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	oldest := s.mvccVisible.Load()
	for seq := range s.snapRefs {
		if seq < oldest {
			oldest = seq
		}
	}
	return oldest
}

// Vacuum reclaims versions invisible to every active snapshot (R∆
// garbage collection). Callers must exclude writers — the engine runs it
// from Checkpoint under its write lock. Returns the reclaimed version
// count (also accumulated in the mvcc.vacuumed counter).
func (s *Store) Vacuum() int64 {
	floor := s.OldestSnapshot()
	if floor > s.vacuumFloor.Load() {
		s.vacuumFloor.Store(floor)
	}
	var reclaimed int64
	s.tablesMu.RLock()
	tabs := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tabs = append(tabs, t)
	}
	s.tablesMu.RUnlock()
	for _, t := range tabs {
		reclaimed += t.Vacuum(floor)
	}
	if reclaimed > 0 {
		s.mvccVacuumed.Add(reclaimed)
	}
	return reclaimed
}

// VacuumFloor returns the oldest seq AS OF queries may still read.
func (s *Store) VacuumFloor() int64 { return s.vacuumFloor.Load() }

func (s *Store) versionCount() int64 {
	s.tablesMu.RLock()
	defer s.tablesMu.RUnlock()
	var n int64
	for _, t := range s.tables {
		n += t.VersionCount()
	}
	return n
}

// Epoch returns the current checkpoint epoch (0 before any checkpoint).
func (s *Store) Epoch() uint64 { return s.epoch }

// Metrics returns the store-owned metrics registry, shared upward by the
// engine, server and notifier.
func (s *Store) Metrics() *metrics.Registry { return s.reg }

// SyncPolicy reports the durability mode the store was opened with.
func (s *Store) SyncPolicy() SyncMode { return s.opts.Sync }

// errClosed surfaces a Commit that raced Close: the statement may be
// durable (close flushes and fsyncs the WAL), but with the writer gone
// that cannot be confirmed, and a commit must never be acknowledged on
// a maybe.
var errClosed = fmt.Errorf("storage: store is closed")

// Close stops the flusher (draining any queued commit tickets), then
// flushes and closes the WAL. Safe to call twice. cycleMu covers the
// close and the nil assignment: Commit runs outside the engine write
// lock now, so a late committer can reach syncNow concurrently — it
// serializes on cycleMu and finds s.wal nil (an errClosed failure)
// instead of flushing a closing file or panicking on the nil writer.
func (s *Store) Close() error {
	s.stopFlusher()
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	if s.wal != nil {
		err := s.wal.close()
		s.wal = nil
		return err
	}
	return nil
}

// Durable reports whether the store persists to disk.
func (s *Store) Durable() bool { return s.durable }

// log records one mutation: into the replication feed (when enabled)
// and the WAL (when durable). table names the affected table so the
// feed can filter per-node-local tables; records without one (meta,
// some DDL) pass "".
func (s *Store) log(table string, payload []byte) error {
	s.replCapture(table, payload)
	if s.wal == nil {
		return nil
	}
	n, err := s.wal.append(payload)
	if err != nil {
		return err
	}
	s.walAppends.Inc()
	s.walBytes.Add(int64(n))
	return nil
}

// Commit is the engine's statement/commit durability boundary: it makes
// every WAL record appended so far as durable as the SyncMode promises,
// and only then returns so the caller may acknowledge the client and
// release change events.
//
// SyncCommit routes through the group-commit pipeline: the caller
// enqueues a ticket and blocks while the dedicated flusher goroutine
// drains every queued ticket with ONE buffer flush + ONE fsync, then
// releases the whole batch. Concurrent committers share the fsync
// (wal.fsyncs/wal.commits « 1 under load) while a lone committer keeps
// the old latency — the flusher runs as soon as it is kicked. Commit
// order equals WAL append order: a ticket is released only after a batch
// whose records form a prefix of the log reached stable storage, so
// power-loss recovery is never missing an acknowledged commit.
//
// SyncInterval pushes records to the OS cache and marks the log dirty;
// the flusher's ticker performs the only fsyncs, so the interval timer
// cannot race a statement-boundary flush into a double fsync and
// wal.fsyncs counts exactly one per elapsed dirty window.
//
// SyncOSCache keeps the historical behavior: flush to the OS page cache,
// durability deferred to checkpoint/close.
func (s *Store) Commit() error {
	// durable (immutable after open) rather than s.wal: Commit runs
	// outside the engine lock, so reading the wal pointer here would race
	// Close nil'ing it. The cycleMu-guarded paths below re-check it.
	if !s.durable {
		return nil
	}
	switch s.opts.Sync {
	case SyncCommit:
		if done := s.enqueueCommit(); done != nil {
			return <-done
		}
		// Flusher not running (open/close edge): fsync inline.
		return s.syncNow()
	case SyncInterval:
		if err := s.flushOS(); err != nil {
			return err
		}
		s.commitMu.Lock()
		s.walDirty = true
		s.commitMu.Unlock()
		return nil
	default:
		return s.flushOS()
	}
}

// Flush is the historical name of the statement-boundary hook, kept for
// callers and tests that predate the group-commit pipeline.
func (s *Store) Flush() error { return s.Commit() }

// enqueueCommit adds a ticket to the flusher's queue and returns the
// channel the shared fsync outcome arrives on, or nil when the flusher
// is not running.
func (s *Store) enqueueCommit() chan error {
	s.commitMu.Lock()
	if !s.flusherOn {
		s.commitMu.Unlock()
		return nil
	}
	done := make(chan error, 1)
	s.commitQ = append(s.commitQ, done)
	s.commitMu.Unlock()
	select {
	case s.flushKick <- struct{}{}:
	default: // a kick is already pending; the next cycle will see us
	}
	return done
}

func (s *Store) startFlusher() {
	if s.wal == nil || (s.opts.Sync != SyncCommit && s.opts.Sync != SyncInterval) {
		return
	}
	s.flushKick = make(chan struct{}, 1)
	s.flushStop = make(chan struct{})
	s.flushDone = make(chan struct{})
	s.flusherOn = true
	go s.flusherLoop()
}

// stopFlusher shuts the flusher down after one final drain cycle, so
// every ticket enqueued before the stop is released (acked or failed)
// before Close proceeds to close the WAL.
func (s *Store) stopFlusher() {
	s.commitMu.Lock()
	on := s.flusherOn
	s.flusherOn = false
	s.commitMu.Unlock()
	if !on {
		return
	}
	close(s.flushStop)
	<-s.flushDone
}

func (s *Store) flusherLoop() {
	defer close(s.flushDone)
	var tickC <-chan time.Time
	if s.opts.Sync == SyncInterval {
		tick := time.NewTicker(s.opts.SyncEvery)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-s.flushKick:
			s.flushCycle()
		case <-tickC:
			s.flushCycle()
		case <-s.flushStop:
			s.flushCycle() // final drain: release whatever is queued
			return
		}
	}
}

// flushCycle drains the commit queue: one buffer flush + one fsync cover
// every queued ticket, which are then released in append (FIFO) order
// with the shared outcome. Runs only on the flusher goroutine; cycleMu
// excludes Checkpoint's WAL swap for the duration of the cycle.
func (s *Store) flushCycle() {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	s.commitMu.Lock()
	batch := s.commitQ
	s.commitQ = nil
	dirty := s.walDirty
	s.walDirty = false
	s.commitMu.Unlock()
	if len(batch) == 0 && !dirty {
		return
	}
	// Batch formation: committers released by the previous cycle are
	// usually mid-apply when the next kick arrives, so an eager grab
	// would fsync for the one or two fastest and strand the rest in yet
	// another fsync. Yielding the processor a few times lets runnable
	// committers finish their append and join this batch — worth tens of
	// microseconds against a ~100µs+ fsync, and a lone committer (its
	// kick, empty queue behind it) pays only the yields.
	for i := 0; i < 8; i++ {
		runtime.Gosched()
	}
	s.commitMu.Lock()
	batch = append(batch, s.commitQ...)
	s.commitQ = nil
	s.commitMu.Unlock()
	err := s.flushOSLocked()
	if err == nil {
		err = s.fsyncLocked()
	}
	for _, done := range batch {
		done <- err
	}
	if err != nil {
		// Interval mode has no ticket to carry the error; keep the log
		// marked dirty so the next tick retries (and close/checkpoint
		// surfaces a persistent failure loudly).
		s.commitMu.Lock()
		s.walDirty = true
		s.commitMu.Unlock()
		return
	}
	if len(batch) > 0 {
		s.walGroupCommits.Inc()
		s.walCommits.Add(int64(len(batch)))
		if s.reg.Enabled() {
			// Batch size rides the µs-granularity histogram: a batch of
			// n commits is recorded as n µs, so the bucket bounds read
			// directly as sizes 1, 2, 4, … commits.
			s.walGroupSizeH.Observe(time.Duration(len(batch)) * time.Microsecond)
		}
	}
}

// syncNow is the inline fallback when the flusher is not running: flush
// and fsync on the caller's goroutine.
func (s *Store) syncNow() error {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	if err := s.flushOSLocked(); err != nil {
		return err
	}
	return s.fsyncLocked()
}

// flushOS pushes buffered WAL records to the OS page cache. This alone
// is NOT durable against power loss; the SyncMode decides when fsync
// runs.
func (s *Store) flushOS() error {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	return s.flushOSLocked()
}

func (s *Store) flushOSLocked() error {
	if s.wal == nil {
		return errClosed
	}
	timed := s.reg.Enabled()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	if err := s.wal.flush(); err != nil {
		return err
	}
	s.walFlushes.Inc()
	if timed {
		s.walFlushH.Observe(time.Since(t0))
	}
	return nil
}

func (s *Store) fsyncLocked() error {
	if s.wal == nil {
		return errClosed
	}
	t0 := time.Now()
	if err := s.wal.fsync(); err != nil {
		return err
	}
	s.walFsyncs.Inc()
	if s.reg.Enabled() {
		s.walFsyncH.Observe(time.Since(t0))
	}
	return nil
}

func tkey(name string) string { return strings.ToLower(name) }

// AllocTID returns a fresh tuple id. Counters are atomic: the engine's
// write lock guards table mutation, but stamps are also read lock-free by
// the workflow layer (snapshots) on other goroutines.
func (s *Store) AllocTID() int64 {
	return s.nextTID.Add(1) - 1
}

// AllocCreated returns a fresh creation timestamp (monotonic sequence).
func (s *Store) AllocCreated() int64 {
	return s.nextCreated.Add(1) - 1
}

// CurrentStamp returns the most recently allocated creation timestamp.
// A process instance starting now sees exactly the tuples with
// `_created <= CurrentStamp()` (§VI-A time-based isolation).
func (s *Store) CurrentStamp() int64 { return s.nextCreated.Load() - 1 }

// bumpCounters raises the counters to cover an explicitly supplied tuple
// (replay / rollback re-insertion paths).
func (s *Store) bumpCounters(tid, created int64) {
	for {
		cur := s.nextTID.Load()
		if tid < cur || s.nextTID.CompareAndSwap(cur, tid+1) {
			break
		}
	}
	for {
		cur := s.nextCreated.Load()
		if created < cur || s.nextCreated.CompareAndSwap(cur, created+1) {
			break
		}
	}
}

// CreateTable allocates storage for a new table and logs it.
func (s *Store) CreateTable(schema *catalog.TableSchema) error {
	k := tkey(schema.Name)
	s.tablesMu.Lock()
	if _, ok := s.tables[k]; ok {
		s.tablesMu.Unlock()
		return fmt.Errorf("storage: table %q already exists", schema.Name)
	}
	s.tables[k] = s.adopt(NewTable(schema))
	s.tablesMu.Unlock()
	return s.log(schema.Name, encodeCreateTable(schema))
}

// DropTable removes a table and logs it.
func (s *Store) DropTable(name string) error {
	k := tkey(name)
	s.tablesMu.Lock()
	if _, ok := s.tables[k]; !ok {
		s.tablesMu.Unlock()
		return fmt.Errorf("storage: no such table %q", name)
	}
	delete(s.tables, k)
	s.tablesMu.Unlock()
	kept := s.indexes[:0]
	for _, ix := range s.indexes {
		if tkey(ix.Table) != k {
			kept = append(kept, ix)
		}
	}
	s.indexes = kept
	out := []byte{opDropTable}
	out = appendString(out, name)
	return s.log(name, out)
}

// Table returns the physical table, or nil.
func (s *Store) Table(name string) *Table {
	s.tablesMu.RLock()
	defer s.tablesMu.RUnlock()
	return s.tables[tkey(name)]
}

// TableNames lists stored tables (sorted).
func (s *Store) TableNames() []string {
	s.tablesMu.RLock()
	out := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t.Schema.Name)
	}
	s.tablesMu.RUnlock()
	sort.Strings(out)
	return out
}

// Insert appends a row to a table, allocating system columns, and logs it.
func (s *Store) Insert(table string, row types.Row) (tid, created int64, err error) {
	t := s.Table(table)
	if t == nil {
		return 0, 0, fmt.Errorf("storage: no such table %q", table)
	}
	tid = s.AllocTID()
	created = s.AllocCreated()
	if err := t.Insert(tid, created, row); err != nil {
		return 0, 0, err
	}
	return tid, created, s.log(table, encodeInsert(table, tid, created, row))
}

// InsertAt re-inserts a row with explicit system columns (transaction
// rollback and replay path).
func (s *Store) InsertAt(table string, tid, created int64, row types.Row) error {
	t := s.Table(table)
	if t == nil {
		return fmt.Errorf("storage: no such table %q", table)
	}
	if err := t.Insert(tid, created, row); err != nil {
		return err
	}
	s.bumpCounters(tid, created)
	return s.log(table, encodeInsert(table, tid, created, row))
}

// Update replaces a row's values and logs it.
func (s *Store) Update(table string, tid int64, row types.Row) (types.Row, error) {
	t := s.Table(table)
	if t == nil {
		return nil, fmt.Errorf("storage: no such table %q", table)
	}
	old, err := t.Update(tid, row)
	if err != nil {
		return nil, err
	}
	return old, s.log(table, encodeUpdate(table, tid, row))
}

// Delete removes a row and logs it.
func (s *Store) Delete(table string, tid int64) (types.Row, error) {
	t := s.Table(table)
	if t == nil {
		return nil, fmt.Errorf("storage: no such table %q", table)
	}
	old, err := t.Delete(tid)
	if err != nil {
		return nil, err
	}
	return old, s.log(table, encodeDelete(table, tid))
}

// AddIndex builds a secondary index and logs it.
func (s *Store) AddIndex(name, table string, cols []string, unique bool) error {
	t := s.Table(table)
	if t == nil {
		return fmt.Errorf("storage: no such table %q", table)
	}
	if err := t.AddIndex(name, cols, unique); err != nil {
		return err
	}
	s.indexes = append(s.indexes, indexDef{Name: name, Table: table, Columns: cols, Unique: unique})
	return s.log(table, encodeCreateIndex(name, table, unique, cols))
}

// PutMeta stores a DDL meta entry (view/trigger) and logs it.
func (s *Store) PutMeta(kind, name, text string) error {
	s.upsertMeta(kind, name, text)
	return s.log("", encodePutMeta(kind, name, text))
}

// DeleteMeta removes a DDL meta entry and logs it.
func (s *Store) DeleteMeta(kind, name string) error {
	kept := s.metas[:0]
	for _, m := range s.metas {
		if !(m.Kind == kind && strings.EqualFold(m.Name, name)) {
			kept = append(kept, m)
		}
	}
	s.metas = kept
	return s.log("", encodeDelMeta(kind, name))
}

func (s *Store) upsertMeta(kind, name, text string) {
	for i, m := range s.metas {
		if m.Kind == kind && strings.EqualFold(m.Name, name) {
			s.metas[i].Text = text
			return
		}
	}
	s.metas = append(s.metas, MetaEntry{Kind: kind, Name: name, Text: text})
}

// Metas returns the stored DDL meta entries in insertion order.
func (s *Store) Metas() []MetaEntry {
	out := make([]MetaEntry, len(s.metas))
	copy(out, s.metas)
	return out
}

// ------------------------------------------------------------ WAL replay

func (s *Store) applyWAL(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	op, body := payload[0], payload[1:]
	switch op {
	case opCreateTable:
		schema, err := decodeCreateTable(body)
		if err != nil {
			return err
		}
		s.tablesMu.Lock()
		s.tables[tkey(schema.Name)] = s.adopt(NewTable(schema))
		s.tablesMu.Unlock()
		return nil
	case opDropTable:
		name, _, err := readString(body)
		if err != nil {
			return err
		}
		s.tablesMu.Lock()
		delete(s.tables, tkey(name))
		s.tablesMu.Unlock()
		kept := s.indexes[:0]
		for _, ix := range s.indexes {
			if tkey(ix.Table) != tkey(name) {
				kept = append(kept, ix)
			}
		}
		s.indexes = kept
		return nil
	case opInsert:
		name, off, err := readString(body)
		if err != nil {
			return err
		}
		if len(body) < off+16 {
			return fmt.Errorf("short insert record")
		}
		tid := int64(binary.BigEndian.Uint64(body[off:]))
		created := int64(binary.BigEndian.Uint64(body[off+8:]))
		row, _, err := types.DecodeRow(body[off+16:])
		if err != nil {
			return err
		}
		t := s.Table(name)
		if t == nil {
			return fmt.Errorf("insert into unknown table %q", name)
		}
		if err := t.Insert(tid, created, row); err != nil {
			return err
		}
		s.bumpCounters(tid, created)
		return nil
	case opUpdate:
		name, off, err := readString(body)
		if err != nil {
			return err
		}
		if len(body) < off+8 {
			return fmt.Errorf("short update record")
		}
		tid := int64(binary.BigEndian.Uint64(body[off:]))
		row, _, err := types.DecodeRow(body[off+8:])
		if err != nil {
			return err
		}
		t := s.Table(name)
		if t == nil {
			return fmt.Errorf("update of unknown table %q", name)
		}
		_, err = t.Update(tid, row)
		return err
	case opDelete:
		name, off, err := readString(body)
		if err != nil {
			return err
		}
		if len(body) < off+8 {
			return fmt.Errorf("short delete record")
		}
		tid := int64(binary.BigEndian.Uint64(body[off:]))
		t := s.Table(name)
		if t == nil {
			return fmt.Errorf("delete from unknown table %q", name)
		}
		_, err = t.Delete(tid)
		return err
	case opCreateIndex:
		name, off, err := readString(body)
		if err != nil {
			return err
		}
		table, used, err := readString(body[off:])
		if err != nil {
			return err
		}
		off += used
		if off >= len(body) {
			return fmt.Errorf("short index record")
		}
		unique := body[off] == 1
		off++
		n, w := binary.Uvarint(body[off:])
		if w <= 0 {
			return fmt.Errorf("short index record")
		}
		off += w
		cols := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			c, used, err := readString(body[off:])
			if err != nil {
				return err
			}
			cols = append(cols, c)
			off += used
		}
		t := s.Table(table)
		if t == nil {
			return fmt.Errorf("index on unknown table %q", table)
		}
		if err := t.AddIndex(name, cols, unique); err != nil {
			return err
		}
		s.indexes = append(s.indexes, indexDef{Name: name, Table: table, Columns: cols, Unique: unique})
		return nil
	case opPutMeta:
		kind, off, err := readString(body)
		if err != nil {
			return err
		}
		name, used, err := readString(body[off:])
		if err != nil {
			return err
		}
		off += used
		text, _, err := readString(body[off:])
		if err != nil {
			return err
		}
		s.upsertMeta(kind, name, text)
		return nil
	case opDelMeta:
		kind, off, err := readString(body)
		if err != nil {
			return err
		}
		name, _, err := readString(body[off:])
		if err != nil {
			return err
		}
		kept := s.metas[:0]
		for _, m := range s.metas {
			if !(m.Kind == kind && strings.EqualFold(m.Name, name)) {
				kept = append(kept, m)
			}
		}
		s.metas = kept
		return nil
	}
	return fmt.Errorf("unknown WAL opcode %d", op)
}

// ------------------------------------------------------------- snapshots

// Checkpoint writes a full snapshot and truncates the WAL, bounding
// recovery time. The sequence is crash-safe at every step:
//
//  1. Write the snapshot to a temp file under the NEXT epoch, fsync it.
//  2. Rename it over the live snapshot, then fsync the directory — until
//     the directory entry is durable, a power loss simply reverts to the
//     old snapshot + old WAL, which replays to the same state.
//  3. Truncate the WAL and stamp its fresh header with the new epoch.
//     A crash in this window leaves the new snapshot next to the OLD
//     WAL; the epoch mismatch makes replay skip it instead of
//     double-applying rows the snapshot already contains.
//
// A failure before step 2 completes (e.g. ENOSPC writing the snapshot)
// leaves the store fully usable on its existing WAL. A failure after it
// leaves the store unable to log further writes — statements start
// failing loudly — but the directory reopens to a consistent state.
func (s *Store) Checkpoint() error {
	// The replication feed's retention floor mirrors the WAL truncation:
	// after a checkpoint, a replica whose cursor predates it must resync
	// from a snapshot instead of replaying pruned history.
	s.replPrune()
	// Vacuum rides on the checkpoint cadence: reclaim versions invisible
	// to every live snapshot (R∆ garbage collection). The caller already
	// excludes writers, which is all Vacuum requires; the snapshot below
	// only ever contains live rows, so vacuum timing cannot change its
	// encoding.
	s.Vacuum()
	if !s.durable {
		return nil
	}
	newEpoch := s.epoch + 1
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	err = s.writeSnapshot(w, newEpoch)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.fs.Remove(tmp) // best effort; the store stays on its old WAL
		return err
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	// The new snapshot is durably installed; its epoch supersedes every
	// record in the old WAL even if we crash before truncating it.
	s.epoch = newEpoch
	// cycleMu keeps the flusher out while the WAL is swapped: a flush
	// cycle must never fsync the file the checkpoint just closed. Commit
	// tickets still queued at this point are safe to release on the NEW
	// log's next cycle — their in-memory effects are inside the snapshot
	// that was just durably installed.
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	if s.wal != nil {
		if err := s.wal.discard(); err != nil {
			return err
		}
	}
	nw, err := createWAL(s.fs, s.dir, filepath.Join(s.dir, walFile), newEpoch)
	if err != nil {
		// s.wal still points at the closed writer: subsequent appends
		// fail loudly rather than silently dropping durability.
		return err
	}
	s.wal = nw
	return nil
}

func (s *Store) writeSnapshot(w io.Writer, epoch uint64) error {
	return s.writeSnapshotTo(w, epoch, true, nil)
}

// writeSnapshotTo serializes the store. counters=false zeroes the
// allocation counters and skipRows omits the rows (not the schemas) of
// the named tables — both used by replication snapshots, whose encoding
// must depend only on logical shared content (see EncodeReplSnapshot).
func (s *Store) writeSnapshotTo(w io.Writer, epoch uint64, counters bool, skipRows map[string]bool) error {
	buf := []byte(snapshotMagic)
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	var tid, created uint64
	if counters {
		tid = uint64(s.nextTID.Load())
		created = uint64(s.nextCreated.Load())
	}
	buf = binary.BigEndian.AppendUint64(buf, tid)
	buf = binary.BigEndian.AppendUint64(buf, created)
	// Metas.
	buf = binary.AppendUvarint(buf, uint64(len(s.metas)))
	for _, m := range s.metas {
		buf = appendString(buf, m.Kind)
		buf = appendString(buf, m.Name)
		buf = appendString(buf, m.Text)
	}
	// Index defs.
	buf = binary.AppendUvarint(buf, uint64(len(s.indexes)))
	for _, ix := range s.indexes {
		buf = appendString(buf, ix.Name)
		buf = appendString(buf, ix.Table)
		if ix.Unique {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(ix.Columns)))
		for _, c := range ix.Columns {
			buf = appendString(buf, c)
		}
	}
	// Tables: names sorted for deterministic files.
	names := s.TableNames()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, name := range names {
		t := s.Table(name)
		chunk := encodeCreateTable(t.Schema)[1:] // reuse encoding, minus opcode
		hdr := binary.AppendUvarint(nil, uint64(len(chunk)))
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		rows := t.Rows()
		if skipRows[tkey(name)] {
			rows = nil
		}
		cnt := binary.AppendUvarint(nil, uint64(len(rows)))
		if _, err := w.Write(cnt); err != nil {
			return err
		}
		for _, r := range rows {
			rb := binary.BigEndian.AppendUint64(nil, uint64(r.TID))
			rb = binary.BigEndian.AppendUint64(rb, uint64(r.Created))
			rb = types.AppendRow(rb, r.Values)
			if _, err := w.Write(rb); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Store) loadSnapshot(path string) error {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return s.loadSnapshotBytes(data)
}

func (s *Store) loadSnapshotBytes(data []byte) error {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("storage: bad snapshot magic")
	}
	buf := data[len(snapshotMagic):]
	if len(buf) < 24 {
		return fmt.Errorf("storage: short snapshot header")
	}
	s.epoch = binary.BigEndian.Uint64(buf)
	s.nextTID.Store(int64(binary.BigEndian.Uint64(buf[8:])))
	s.nextCreated.Store(int64(binary.BigEndian.Uint64(buf[16:])))
	buf = buf[24:]
	// Metas.
	nm, w := binary.Uvarint(buf)
	if w <= 0 {
		return fmt.Errorf("storage: bad snapshot metas")
	}
	buf = buf[w:]
	for i := uint64(0); i < nm; i++ {
		kind, used, err := readString(buf)
		if err != nil {
			return err
		}
		buf = buf[used:]
		name, used, err := readString(buf)
		if err != nil {
			return err
		}
		buf = buf[used:]
		text, used, err := readString(buf)
		if err != nil {
			return err
		}
		buf = buf[used:]
		s.metas = append(s.metas, MetaEntry{Kind: kind, Name: name, Text: text})
	}
	// Index defs (applied after tables are loaded).
	ni, w := binary.Uvarint(buf)
	if w <= 0 {
		return fmt.Errorf("storage: bad snapshot indexes")
	}
	buf = buf[w:]
	var pending []indexDef
	for i := uint64(0); i < ni; i++ {
		name, used, err := readString(buf)
		if err != nil {
			return err
		}
		buf = buf[used:]
		table, used, err := readString(buf)
		if err != nil {
			return err
		}
		buf = buf[used:]
		if len(buf) < 1 {
			return fmt.Errorf("storage: short snapshot index")
		}
		unique := buf[0] == 1
		buf = buf[1:]
		nc, w := binary.Uvarint(buf)
		if w <= 0 {
			return fmt.Errorf("storage: bad snapshot index columns")
		}
		buf = buf[w:]
		cols := make([]string, 0, nc)
		for j := uint64(0); j < nc; j++ {
			c, used, err := readString(buf)
			if err != nil {
				return err
			}
			cols = append(cols, c)
			buf = buf[used:]
		}
		pending = append(pending, indexDef{Name: name, Table: table, Columns: cols, Unique: unique})
	}
	// Tables.
	nt, w := binary.Uvarint(buf)
	if w <= 0 {
		return fmt.Errorf("storage: bad snapshot table count")
	}
	buf = buf[w:]
	for i := uint64(0); i < nt; i++ {
		clen, w := binary.Uvarint(buf)
		if w <= 0 || uint64(len(buf)-w) < clen {
			return fmt.Errorf("storage: short snapshot schema")
		}
		buf = buf[w:]
		schema, err := decodeCreateTable(buf[:clen])
		if err != nil {
			return err
		}
		buf = buf[clen:]
		t := s.adopt(NewTable(schema))
		s.tablesMu.Lock()
		s.tables[tkey(schema.Name)] = t
		s.tablesMu.Unlock()
		nr, w := binary.Uvarint(buf)
		if w <= 0 {
			return fmt.Errorf("storage: bad snapshot row count")
		}
		buf = buf[w:]
		for j := uint64(0); j < nr; j++ {
			if len(buf) < 16 {
				return fmt.Errorf("storage: short snapshot row")
			}
			tid := int64(binary.BigEndian.Uint64(buf))
			created := int64(binary.BigEndian.Uint64(buf[8:]))
			buf = buf[16:]
			row, used, err := types.DecodeRow(buf)
			if err != nil {
				return err
			}
			buf = buf[used:]
			if err := t.Insert(tid, created, row); err != nil {
				return err
			}
		}
	}
	for _, ix := range pending {
		t := s.Table(ix.Table)
		if t == nil {
			return fmt.Errorf("storage: snapshot index on unknown table %q", ix.Table)
		}
		if err := t.AddIndex(ix.Name, ix.Columns, ix.Unique); err != nil {
			return err
		}
		s.indexes = append(s.indexes, ix)
	}
	return nil
}
