package storage

import (
	"sync"
	"testing"

	"ediflow/internal/fault"
	"ediflow/internal/types"
)

// TestCommitCloseRace: Commit runs outside the engine write lock now, so
// a committer can be in flight while Close tears the store down.
// Regression for the review finding where Close nil'ed s.wal without
// synchronization: a committer that had passed the wal check, observed
// the flusher stopped, and entered the inline fsync path would hit a nil
// walWriter (panic) or flush a closing file. A commit that loses the
// race must fail (errClosed) rather than be acknowledged — never panic.
func TestCommitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		mem := fault.NewMemFS()
		s, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := s.CreateTable(userSchema()); err != nil {
			t.Fatal(err)
		}
		// Appends are engine-lock-serialized with Close in the real
		// system, so only Commit races Close here.
		if _, _, err := s.Insert("users", types.Row{types.NewInt(1), types.NewString("x"), types.Null}); err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 50; j++ {
					// Acknowledged (nil) or errClosed are both fine;
					// panicking or hanging is the bug.
					s.Commit() //nolint:errcheck
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	}
}

// TestCommitAfterCloseFailsLoudly: once the store is closed a Commit
// must not be acknowledged as durable.
func TestCommitAfterCloseFailsLoudly(t *testing.T) {
	mem := fault.NewMemFS()
	s, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Commit(); err == nil {
		t.Fatal("Commit after Close acknowledged durability on a closed WAL")
	}
}
