package storage

import (
	"bytes"
	"errors"
	"testing"

	"ediflow/internal/types"
)

// TestReplFeedCaptureApply: records captured by the feed replay through
// ApplyReplRecord into a second store that then encodes byte-identical
// replication state.
func TestReplFeedCaptureApply(t *testing.T) {
	src, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	src.EnableReplFeed(0)

	if err := src.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		tid, created, err := src.Insert("users", types.Row{
			types.NewInt(i), types.NewString("u"), types.Null})
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := src.Update("users", tid, types.Row{
				types.NewInt(i), types.NewString("up"), types.Null}); err != nil {
				t.Fatal(err)
			}
		}
		_ = created
	}
	if head, floor := src.ReplHead(), src.ReplFloor(); head == 0 || floor != 1 {
		t.Fatalf("feed head=%d floor=%d after writes", head, floor)
	}

	dst, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	cursor := uint64(0)
	for {
		recs, next, head, err := src.ReplFetch(cursor, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			if _, err := dst.ApplyReplRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		cursor = next
		if cursor >= head {
			break
		}
	}

	want, err := src.EncodeReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.EncodeReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replayed store state differs: %d vs %d bytes", len(got), len(want))
	}
}

// TestReplFeedGapAfterCheckpoint: a checkpoint prunes the feed, so a
// cursor below the new floor must get ErrReplGap — the signal for a
// snapshot resync — while a cursor at the head still works.
func TestReplFeedGapAfterCheckpoint(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableReplFeed(0)
	if err := s.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if _, _, err := s.Insert("users", types.Row{
			types.NewInt(i), types.NewString("u"), types.Null}); err != nil {
			t.Fatal(err)
		}
	}
	head := s.ReplHead()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if floor := s.ReplFloor(); floor != head+1 {
		t.Fatalf("floor after checkpoint = %d, want %d", floor, head+1)
	}
	if _, _, _, err := s.ReplFetch(0, 1<<20); !errors.Is(err, ErrReplGap) {
		t.Fatalf("fetch below floor: err=%v, want ErrReplGap", err)
	}
	// The head cursor is still valid: caught-up replicas survive
	// checkpoints without resync.
	if recs, _, _, err := s.ReplFetch(head, 1<<20); err != nil || len(recs) != 0 {
		t.Fatalf("fetch at head after checkpoint: recs=%d err=%v", len(recs), err)
	}
	// New writes after the prune stream normally from the head cursor.
	if _, _, err := s.Insert("users", types.Row{
		types.NewInt(11), types.NewString("u"), types.Null}); err != nil {
		t.Fatal(err)
	}
	recs, next, _, err := s.ReplFetch(head, 1<<20)
	if err != nil || len(recs) != 1 || next != head+1 {
		t.Fatalf("fetch after post-checkpoint write: recs=%d next=%d err=%v", len(recs), next, err)
	}
}

// TestReplFeedByteBudget: the in-memory ring is bounded — captures past
// the budget advance the floor instead of growing without limit.
func TestReplFeedByteBudget(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableReplFeed(4 << 10) // tiny 4 KB budget
	if err := s.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 512)
	for i := range big {
		big[i] = 'x'
	}
	for i := int64(1); i <= 100; i++ {
		if _, _, err := s.Insert("users", types.Row{
			types.NewInt(i), types.NewString(string(big)), types.Null}); err != nil {
			t.Fatal(err)
		}
	}
	if floor := s.ReplFloor(); floor <= 1 {
		t.Fatalf("floor never advanced under byte pressure: %d", floor)
	}
	if lag := s.ReplLagBytes(s.ReplFloor() - 1); lag > 8<<10 {
		t.Fatalf("retained bytes %d exceed budget headroom", lag)
	}
	if _, _, _, err := s.ReplFetch(0, 1<<20); !errors.Is(err, ErrReplGap) {
		t.Fatalf("fetch below pruned floor: err=%v, want ErrReplGap", err)
	}
}
