// Package storage implements the physical layer of the embedded database:
// in-memory multi-version row storage with system columns, primary/unique/
// secondary hash indexes, and durability through a write-ahead log with
// snapshot checkpoints (see wal.go).
//
// Concurrency model (MVCC): every logical row is a short version chain.
// Writers — already serialized by the engine's write lock — stamp each
// new version with a begin sequence from a store-wide clock and stamp the
// superseded version's end sequence; DELETE only end-stamps (the paper's
// R∆ deferred deletion, §VI-A) and reclamation is deferred to Vacuum.
// Readers capture a snapshot sequence S and iterate completely lock-free:
// a version is visible at S iff begin ≤ S < end (end 0 = still live).
// Structural state (the slot slice and index maps) is guarded by a short
// table-level RWMutex taken only to capture a slice header or probe a
// map — never across row iteration.
package storage

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ediflow/internal/catalog"
	"ediflow/internal/types"
)

// SeqLatest is the snapshot sequence that sees the newest version of
// every row (visibility degenerates to "not deleted"). Writers and
// replay use it; concurrent readers must use a captured snapshot seq.
const SeqLatest = math.MaxInt64

// StoredRow is one physical tuple: user values plus the system columns
// `_tid` (unique tuple id) and `_created` (monotonic creation sequence)
// that implement the paper's creation timestamps (§VI-A). The Values
// slice is immutable once stored — it is shared freely with readers.
type StoredRow struct {
	TID     int64
	Created int64
	Values  types.Row
}

// version is one entry in a row's version chain, newest first. begin,
// created and values are immutable after the version is published via
// the slot's atomic head pointer; end is stamped once when the version
// is superseded or deleted; prev is cleared (only ever to nil) by Vacuum.
type version struct {
	begin   int64
	created int64
	values  types.Row
	end     atomic.Int64
	prev    atomic.Pointer[version]
}

// visibleAt walks the chain for the version a snapshot at seq asOf sees.
// At most one version per chain can be visible: the newest one with
// begin ≤ asOf, provided the row was not already deleted by asOf.
func visibleAt(head *version, asOf int64) *version {
	for v := head; v != nil; v = v.prev.Load() {
		if v.begin > asOf {
			continue
		}
		if end := v.end.Load(); end == 0 || end > asOf {
			return v
		}
		return nil // deleted (or rolled back) at or before asOf
	}
	return nil
}

// rowSlot anchors one tuple id's version chain. Slots live in the
// table's append-only slice in (re)insertion order; deletes never move
// or remove a slot — only Vacuum compacts the slice.
type rowSlot struct {
	tid  int64
	head atomic.Pointer[version]
}

// Table is the physical storage of one base table.
type Table struct {
	Schema *catalog.TableSchema

	// clock is the version-stamp source, shared store-wide so one
	// snapshot seq is consistent across tables. Standalone tables (unit
	// tests) fall back to a local clock.
	clock      *atomic.Int64
	localClock atomic.Int64

	// mu guards the structural state below: the slots slice header, the
	// byTID map and the index maps. It is held only for map probes,
	// slice captures and writer mutations — never across row iteration;
	// version chains themselves are read lock-free through atomics.
	mu    sync.RWMutex
	slots []*rowSlot
	byTID map[int64]*rowSlot
	live  int // rows whose head version is not end-stamped

	nvers atomic.Int64 // retained versions across all chains (gauge)

	// pk maps primary-key value → candidate tids (single-column PK only).
	// Index entries are conservative: added on insert/update, removed
	// only by Vacuum, so a candidate must be re-checked against the
	// version actually visible at the reader's snapshot.
	pkCol int
	pk    map[string][]int64

	// unique indexes: column position → value key → candidate tids.
	unique map[int]map[string][]int64

	// secondary (non-unique) hash indexes: index name → column positions
	// and value key → candidate tids.
	secondary map[string]*hashIndex
}

type hashIndex struct {
	cols    []int
	unique  bool
	entries map[string][]int64
}

// NewTable creates empty storage for the given schema.
func NewTable(schema *catalog.TableSchema) *Table {
	t := &Table{
		Schema:    schema,
		byTID:     map[int64]*rowSlot{},
		pkCol:     schema.PKIndex(),
		unique:    map[int]map[string][]int64{},
		secondary: map[string]*hashIndex{},
	}
	if t.pkCol >= 0 {
		t.pk = map[string][]int64{}
	}
	for i, c := range schema.Columns {
		if c.Unique && !c.PrimaryKey {
			t.unique[i] = map[string][]int64{}
		}
	}
	return t
}

// SetClock points the table at a shared version-stamp source (the
// store's MVCC clock). Must be called before concurrent use.
func (t *Table) SetClock(c *atomic.Int64) { t.clock = c }

func (t *Table) stamp() int64 {
	if t.clock != nil {
		return t.clock.Add(1)
	}
	return t.localClock.Add(1)
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// VersionCount returns the number of retained versions across all
// chains (live rows plus superseded/deleted versions awaiting Vacuum).
func (t *Table) VersionCount() int64 { return t.nvers.Load() }

// Rows materializes the live rows in slot order. The returned slice is
// fresh and its Values are immutable — callers may retain both freely.
func (t *Table) Rows() []StoredRow { return t.RowsAt(SeqLatest) }

// RowsAt materializes the rows visible at snapshot seq asOf, in slot
// order.
func (t *Table) RowsAt(asOf int64) []StoredRow {
	it := t.Iterate(asOf)
	out := make([]StoredRow, 0, len(it.slots))
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// TableIter streams the rows visible at one snapshot seq. After the
// initial slice capture it holds no locks: concurrent committers append
// new slots and stamp new versions freely, none of which can be visible
// at the iterator's (older) snapshot.
type TableIter struct {
	slots []*rowSlot
	asOf  int64
	i     int
}

// Iterate returns a lock-free iterator over the rows visible at asOf.
func (t *Table) Iterate(asOf int64) TableIter {
	t.mu.RLock()
	slots := t.slots
	t.mu.RUnlock()
	return TableIter{slots: slots, asOf: asOf}
}

// Next returns the next visible row. The StoredRow's Values are shared
// with the version chain and immutable.
func (it *TableIter) Next() (StoredRow, bool) {
	for it.i < len(it.slots) {
		sl := it.slots[it.i]
		it.i++
		if v := visibleAt(sl.head.Load(), it.asOf); v != nil {
			return StoredRow{TID: sl.tid, Created: v.created, Values: v.values}, true
		}
	}
	return StoredRow{}, false
}

// SlotView is one captured slot array pinned to a snapshot: the unit
// morsel-parallel scans partition. All morsels of one scan share a
// single capture, so every worker sees exactly the slot set a serial
// Iterate at the same instant would have seen, and the captured array
// stays valid under concurrent Vacuum (which swaps in a fresh slice
// rather than mutating the old one).
type SlotView struct {
	slots []*rowSlot
	asOf  int64
}

// View captures the table's slot array for snapshot asOf.
func (t *Table) View(asOf int64) SlotView {
	t.mu.RLock()
	slots := t.slots
	t.mu.RUnlock()
	return SlotView{slots: slots, asOf: asOf}
}

// Slots returns the number of captured slots (visible or not) — the
// domain morsel ranges index into.
func (v SlotView) Slots() int { return len(v.slots) }

// IterateRange returns a lock-free iterator over the visible rows in
// slot range [lo, hi). Concatenating the ranges [0,m1),[m1,m2),... in
// order yields exactly the sequence Iterate produces at the same
// snapshot.
func (v SlotView) IterateRange(lo, hi int) TableIter {
	if lo < 0 {
		lo = 0
	}
	if hi > len(v.slots) {
		hi = len(v.slots)
	}
	if lo > hi {
		lo = hi
	}
	return TableIter{slots: v.slots[lo:hi], asOf: v.asOf}
}

// Get returns the newest live row with the given tid.
func (t *Table) Get(tid int64) (StoredRow, bool) { return t.GetAt(tid, SeqLatest) }

// GetAt returns the row with the given tid as visible at snapshot asOf.
func (t *Table) GetAt(tid, asOf int64) (StoredRow, bool) {
	t.mu.RLock()
	sl := t.byTID[tid]
	t.mu.RUnlock()
	if sl == nil {
		return StoredRow{}, false
	}
	v := visibleAt(sl.head.Load(), asOf)
	if v == nil {
		return StoredRow{}, false
	}
	return StoredRow{TID: sl.tid, Created: v.created, Values: v.values}, true
}

// LookupPK returns the tid of the live row whose primary key equals v.
func (t *Table) LookupPK(v types.Value) (int64, bool) {
	return t.LookupPKAt(v, SeqLatest)
}

// LookupPKAt returns the tid of the row whose primary key equals v as
// visible at snapshot asOf. Historical states satisfied the PK
// constraint too, so at most one row matches at any snapshot.
func (t *Table) LookupPKAt(v types.Value, asOf int64) (int64, bool) {
	if t.pk == nil {
		return 0, false
	}
	key := v.HashKey()
	for _, sl := range t.candidates(t.pk, key) {
		if ver := visibleAt(sl.head.Load(), asOf); ver != nil && ver.values[t.pkCol].HashKey() == key {
			return sl.tid, true
		}
	}
	return 0, false
}

// candidates resolves an index candidate list to slots under the
// structural lock; the visibility walk happens outside it.
func (t *Table) candidates(m map[string][]int64, key string) []*rowSlot {
	t.mu.RLock()
	tids := m[key]
	out := make([]*rowSlot, 0, len(tids))
	for _, tid := range tids {
		if sl := t.byTID[tid]; sl != nil {
			out = append(out, sl)
		}
	}
	t.mu.RUnlock()
	return out
}

// HasPK reports whether the table has a single-column primary key.
func (t *Table) HasPK() bool { return t.pkCol >= 0 }

// PKCol returns the primary key column position, or -1.
func (t *Table) PKCol() int { return t.pkCol }

// checkConstraints validates NOT NULL, PK and UNIQUE for a candidate row
// against the live heads. excludeTID skips one tid during uniqueness
// checks (for updates). Caller holds t.mu.
func (t *Table) checkConstraints(row types.Row, excludeTID int64) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("storage: %s: arity %d, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	for i, c := range t.Schema.Columns {
		if c.NotNull && row[i].IsNull() {
			return fmt.Errorf("storage: %s.%s: NOT NULL violated", t.Schema.Name, c.Name)
		}
	}
	if t.pkCol >= 0 {
		if row[t.pkCol].IsNull() {
			return fmt.Errorf("storage: %s: primary key is NULL", t.Schema.Name)
		}
		key := row[t.pkCol].HashKey()
		for _, tid := range t.pk[key] {
			if tid != excludeTID && t.liveMatch(tid, t.pkCol, key) {
				return fmt.Errorf("storage: %s: duplicate primary key %s", t.Schema.Name, row[t.pkCol])
			}
		}
	}
	for col, idx := range t.unique {
		if row[col].IsNull() {
			continue
		}
		key := row[col].HashKey()
		for _, tid := range idx[key] {
			if tid != excludeTID && t.liveMatch(tid, col, key) {
				return fmt.Errorf("storage: %s.%s: duplicate unique value %s", t.Schema.Name, t.Schema.Columns[col].Name, row[col])
			}
		}
	}
	for name, ix := range t.secondary {
		if !ix.unique {
			continue
		}
		k := ix.key(row)
		for _, tid := range ix.entries[k] {
			if tid == excludeTID {
				continue
			}
			if sl := t.byTID[tid]; sl != nil {
				if h := sl.head.Load(); h != nil && h.end.Load() == 0 && ix.key(h.values) == k {
					return fmt.Errorf("storage: %s: unique index %s violated", t.Schema.Name, name)
				}
			}
		}
	}
	return nil
}

// liveMatch reports whether tid's live head has value key at column col.
// Caller holds t.mu.
func (t *Table) liveMatch(tid int64, col int, key string) bool {
	sl := t.byTID[tid]
	if sl == nil {
		return false
	}
	h := sl.head.Load()
	return h != nil && h.end.Load() == 0 && h.values[col].HashKey() == key
}

// Insert adds a row with explicit system columns (used by WAL replay and
// the engine, which allocates tids/timestamps). Re-inserting a tid whose
// row was deleted (transaction rollback, replay) extends the existing
// chain and moves the slot to the end, so slot order is always order of
// last insertion regardless of vacuum timing.
func (t *Table) Insert(tid, created int64, row types.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkConstraints(row, -1); err != nil {
		return err
	}
	sl := t.byTID[tid]
	if sl != nil {
		if h := sl.head.Load(); h != nil && h.end.Load() == 0 {
			return fmt.Errorf("storage: %s: duplicate tid %d", t.Schema.Name, tid)
		}
	}
	v := &version{begin: t.stamp(), created: created, values: row}
	if sl != nil {
		// Rebuild the slice rather than shifting in place: concurrent
		// iterators hold the old array and must not see a slot twice.
		v.prev.Store(sl.head.Load())
		ns := make([]*rowSlot, 0, len(t.slots))
		for _, s := range t.slots {
			if s != sl {
				ns = append(ns, s)
			}
		}
		t.slots = append(ns, sl)
		sl.head.Store(v)
	} else {
		sl = &rowSlot{tid: tid}
		sl.head.Store(v)
		t.byTID[tid] = sl
		t.slots = append(t.slots, sl)
	}
	t.live++
	t.nvers.Add(1)
	t.indexRowLocked(tid, row)
	return nil
}

// Update stamps a new version for the row with the given tid; `_created`
// is preserved (the tuple identity does not change). The returned old
// values are immutable.
func (t *Table) Update(tid int64, row types.Row) (old types.Row, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sl := t.byTID[tid]
	var head *version
	if sl != nil {
		head = sl.head.Load()
	}
	if head == nil || head.end.Load() != 0 {
		return nil, fmt.Errorf("storage: %s: no tid %d", t.Schema.Name, tid)
	}
	if err := t.checkConstraints(row, tid); err != nil {
		return nil, err
	}
	v := &version{begin: t.stamp(), created: head.created, values: row}
	v.prev.Store(head)
	head.end.Store(v.begin)
	sl.head.Store(v)
	t.nvers.Add(1)
	t.indexRowLocked(tid, row)
	return head.values, nil
}

// Delete end-stamps the live version of the row with the given tid —
// the paper's R∆ deferred deletion. The version (and its index entries)
// survive for readers at older snapshots until Vacuum reclaims them.
func (t *Table) Delete(tid int64) (types.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sl := t.byTID[tid]
	var head *version
	if sl != nil {
		head = sl.head.Load()
	}
	if head == nil || head.end.Load() != 0 {
		return nil, fmt.Errorf("storage: %s: no tid %d", t.Schema.Name, tid)
	}
	head.end.Store(t.stamp())
	t.live--
	return head.values, nil
}

// Vacuum reclaims versions no snapshot at or after floor can see: dead
// slots whose newest version ended at or before floor, and chain tails
// superseded at or before floor. Index maps are rebuilt over the
// surviving versions. Callers must exclude writers (the engine runs
// Vacuum under its write lock, from Checkpoint); concurrent lock-free
// readers are safe because their snapshots are ≥ floor by construction
// and they hold the old slot array.
func (t *Table) Vacuum(floor int64) (reclaimed int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := make([]*rowSlot, 0, len(t.slots))
	for _, sl := range t.slots {
		head := sl.head.Load()
		if end := head.end.Load(); end != 0 && end <= floor {
			for v := head; v != nil; v = v.prev.Load() {
				reclaimed++
			}
			delete(t.byTID, sl.tid)
			continue
		}
		kept = append(kept, sl)
		for v := head; v != nil; {
			p := v.prev.Load()
			if p == nil {
				break
			}
			if p.end.Load() <= floor {
				v.prev.Store(nil)
				for q := p; q != nil; q = q.prev.Load() {
					reclaimed++
				}
				break
			}
			v = p
		}
	}
	t.slots = kept
	if reclaimed > 0 {
		t.nvers.Add(-reclaimed)
	}
	t.rebuildIndexesLocked()
	return reclaimed
}

// rebuildIndexesLocked reconstructs the conservative index maps from the
// retained versions. Caller holds t.mu.
func (t *Table) rebuildIndexesLocked() {
	if t.pkCol >= 0 {
		t.pk = map[string][]int64{}
	}
	for col := range t.unique {
		t.unique[col] = map[string][]int64{}
	}
	for _, ix := range t.secondary {
		ix.entries = map[string][]int64{}
	}
	for _, sl := range t.slots {
		for v := sl.head.Load(); v != nil; v = v.prev.Load() {
			t.indexRowLocked(sl.tid, v.values)
		}
	}
}

// addTid appends tid to a candidate list if absent (lists are short).
func addTid(list []int64, tid int64) []int64 {
	for _, id := range list {
		if id == tid {
			return list
		}
	}
	return append(list, tid)
}

// indexRowLocked adds one version's values to the conservative index
// maps. Entries are never removed outside Vacuum. Caller holds t.mu.
func (t *Table) indexRowLocked(tid int64, row types.Row) {
	if t.pkCol >= 0 {
		k := row[t.pkCol].HashKey()
		t.pk[k] = addTid(t.pk[k], tid)
	}
	for col, idx := range t.unique {
		if !row[col].IsNull() {
			k := row[col].HashKey()
			idx[k] = addTid(idx[k], tid)
		}
	}
	for _, ix := range t.secondary {
		k := ix.key(row)
		ix.entries[k] = addTid(ix.entries[k], tid)
	}
}

func (ix *hashIndex) key(row types.Row) string {
	sub := make(types.Row, len(ix.cols))
	for i, c := range ix.cols {
		sub[i] = row[c]
	}
	return types.RowKey(sub)
}

// AddIndex builds a secondary hash index over the given columns,
// covering every retained version so readers at older snapshots can use
// it too. The unique check applies to live rows only.
func (t *Table) AddIndex(name string, cols []string, unique bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondary[name]; ok {
		return fmt.Errorf("storage: index %q already exists on %s", name, t.Schema.Name)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.Schema.ColIndex(c)
		if p < 0 {
			return fmt.Errorf("storage: no column %q in %s", c, t.Schema.Name)
		}
		positions[i] = p
	}
	ix := &hashIndex{cols: positions, unique: unique, entries: map[string][]int64{}}
	if unique {
		seen := map[string]bool{}
		for _, sl := range t.slots {
			h := sl.head.Load()
			if h == nil || h.end.Load() != 0 {
				continue
			}
			k := ix.key(h.values)
			if seen[k] {
				return fmt.Errorf("storage: existing data violates unique index %q", name)
			}
			seen[k] = true
		}
	}
	for _, sl := range t.slots {
		for v := sl.head.Load(); v != nil; v = v.prev.Load() {
			k := ix.key(v.values)
			ix.entries[k] = addTid(ix.entries[k], sl.tid)
		}
	}
	t.secondary[name] = ix
	return nil
}

// LookupIndex returns the tids of live rows matching the given key
// values on a secondary index.
func (t *Table) LookupIndex(name string, key types.Row) ([]int64, bool) {
	return t.LookupIndexAt(name, key, SeqLatest)
}

// LookupIndexAt returns the tids of rows matching the given key values
// on a secondary index, as visible at snapshot asOf.
func (t *Table) LookupIndexAt(name string, key types.Row, asOf int64) ([]int64, bool) {
	t.mu.RLock()
	ix, ok := t.secondary[name]
	if !ok || len(key) != len(ix.cols) {
		t.mu.RUnlock()
		return nil, false
	}
	k := types.RowKey(key)
	tids := ix.entries[k]
	cands := make([]*rowSlot, 0, len(tids))
	for _, tid := range tids {
		if sl := t.byTID[tid]; sl != nil {
			cands = append(cands, sl)
		}
	}
	t.mu.RUnlock()
	var out []int64
	for _, sl := range cands {
		if v := visibleAt(sl.head.Load(), asOf); v != nil && ix.key(v.values) == k {
			out = append(out, sl.tid)
		}
	}
	return out, true
}

// IndexOn returns the name of a secondary index whose only column is the
// given column position, if any. When several qualify the
// lexicographically smallest name wins, so planner choices are stable.
func (t *Table) IndexOn(col int) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	best := ""
	for name, ix := range t.secondary {
		if len(ix.cols) == 1 && ix.cols[0] == col && (best == "" || name < best) {
			best = name
		}
	}
	return best, best != ""
}

// LookupUnique returns the tid of the live row whose single-column
// UNIQUE value at column position col equals v.
func (t *Table) LookupUnique(col int, v types.Value) (int64, bool) {
	return t.LookupUniqueAt(col, v, SeqLatest)
}

// LookupUniqueAt returns the tid of the row whose single-column UNIQUE
// value at column position col equals v, as visible at snapshot asOf.
func (t *Table) LookupUniqueAt(col int, v types.Value, asOf int64) (int64, bool) {
	t.mu.RLock()
	idx, ok := t.unique[col]
	t.mu.RUnlock()
	if !ok {
		return 0, false
	}
	key := v.HashKey()
	for _, sl := range t.candidates(idx, key) {
		if ver := visibleAt(sl.head.Load(), asOf); ver != nil && ver.values[col].HashKey() == key {
			return sl.tid, true
		}
	}
	return 0, false
}

// HasUnique reports whether column position col carries a single-column
// UNIQUE constraint (and therefore a unique hash index).
func (t *Table) HasUnique(col int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.unique[col]
	return ok
}

// IndexInfo describes one secondary index for the planner.
type IndexInfo struct {
	Name   string
	Cols   []int // key column positions, in index-key order
	Unique bool
}

// SecondaryIndexes returns the table's secondary indexes sorted by name,
// so planner decisions are deterministic.
func (t *Table) SecondaryIndexes() []IndexInfo {
	t.mu.RLock()
	out := make([]IndexInfo, 0, len(t.secondary))
	for name, ix := range t.secondary {
		out = append(out, IndexInfo{Name: name, Cols: ix.cols, Unique: ix.unique})
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IndexCovering returns a secondary index whose key columns are exactly
// the given set (order-insensitive), plus the permutation mapping each
// index-key position to its position in cols. Ties resolve to the
// lexicographically smallest index name.
func (t *Table) IndexCovering(cols []int) (string, []int, bool) {
	for _, info := range t.SecondaryIndexes() {
		if len(info.Cols) != len(cols) {
			continue
		}
		perm := make([]int, len(info.Cols))
		used := make([]bool, len(cols))
		ok := true
		for i, ic := range info.Cols {
			found := -1
			for j, c := range cols {
				if c == ic && !used[j] {
					found = j
					break
				}
			}
			if found < 0 {
				ok = false
				break
			}
			used[found] = true
			perm[i] = found
		}
		if ok {
			return info.Name, perm, true
		}
	}
	return "", nil, false
}
