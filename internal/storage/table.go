// Package storage implements the physical layer of the embedded database:
// in-memory row storage with system columns, primary/unique/secondary hash
// indexes, and durability through a write-ahead log with snapshot
// checkpoints (see wal.go).
package storage

import (
	"fmt"
	"sort"

	"ediflow/internal/catalog"
	"ediflow/internal/types"
)

// StoredRow is one physical tuple: user values plus the system columns
// `_tid` (unique tuple id) and `_created` (monotonic creation sequence)
// that implement the paper's creation timestamps (§VI-A).
type StoredRow struct {
	TID     int64
	Created int64
	Values  types.Row
}

// Table is the physical storage of one base table.
type Table struct {
	Schema *catalog.TableSchema

	rows  []StoredRow
	byTID map[int64]int // tid → index in rows

	// pk maps primary-key value → tid (single-column PK only).
	pkCol int
	pk    map[string]int64

	// unique indexes: column position → value key → tid.
	unique map[int]map[string]int64

	// secondary (non-unique) hash indexes: index name → column positions
	// and value key → tids.
	secondary map[string]*hashIndex
}

type hashIndex struct {
	cols    []int
	unique  bool
	entries map[string][]int64
}

// NewTable creates empty storage for the given schema.
func NewTable(schema *catalog.TableSchema) *Table {
	t := &Table{
		Schema:    schema,
		byTID:     map[int64]int{},
		pkCol:     schema.PKIndex(),
		unique:    map[int]map[string]int64{},
		secondary: map[string]*hashIndex{},
	}
	if t.pkCol >= 0 {
		t.pk = map[string]int64{}
	}
	for i, c := range schema.Columns {
		if c.Unique && !c.PrimaryKey {
			t.unique[i] = map[string]int64{}
		}
	}
	return t
}

// Len returns the number of live rows.
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the underlying row slice. Callers must treat it as
// read-only; the engine copies values out before releasing its lock.
func (t *Table) Rows() []StoredRow { return t.rows }

// Get returns the row with the given tid.
func (t *Table) Get(tid int64) (StoredRow, bool) {
	i, ok := t.byTID[tid]
	if !ok {
		return StoredRow{}, false
	}
	return t.rows[i], true
}

// LookupPK returns the tid of the row whose primary key equals v.
func (t *Table) LookupPK(v types.Value) (int64, bool) {
	if t.pk == nil {
		return 0, false
	}
	tid, ok := t.pk[v.HashKey()]
	return tid, ok
}

// HasPK reports whether the table has a single-column primary key.
func (t *Table) HasPK() bool { return t.pkCol >= 0 }

// PKCol returns the primary key column position, or -1.
func (t *Table) PKCol() int { return t.pkCol }

// checkConstraints validates NOT NULL, PK and UNIQUE for a candidate row.
// excludeTID skips one tid during uniqueness checks (for updates).
func (t *Table) checkConstraints(row types.Row, excludeTID int64) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("storage: %s: arity %d, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	for i, c := range t.Schema.Columns {
		if c.NotNull && row[i].IsNull() {
			return fmt.Errorf("storage: %s.%s: NOT NULL violated", t.Schema.Name, c.Name)
		}
	}
	if t.pkCol >= 0 {
		if row[t.pkCol].IsNull() {
			return fmt.Errorf("storage: %s: primary key is NULL", t.Schema.Name)
		}
		if tid, ok := t.pk[row[t.pkCol].HashKey()]; ok && tid != excludeTID {
			return fmt.Errorf("storage: %s: duplicate primary key %s", t.Schema.Name, row[t.pkCol])
		}
	}
	for col, idx := range t.unique {
		if row[col].IsNull() {
			continue
		}
		if tid, ok := idx[row[col].HashKey()]; ok && tid != excludeTID {
			return fmt.Errorf("storage: %s.%s: duplicate unique value %s", t.Schema.Name, t.Schema.Columns[col].Name, row[col])
		}
	}
	for name, ix := range t.secondary {
		if !ix.unique {
			continue
		}
		k := ix.key(row)
		for _, tid := range ix.entries[k] {
			if tid != excludeTID {
				return fmt.Errorf("storage: %s: unique index %s violated", t.Schema.Name, name)
			}
		}
	}
	return nil
}

// Insert adds a row with explicit system columns (used by WAL replay and
// the engine, which allocates tids/timestamps).
func (t *Table) Insert(tid, created int64, row types.Row) error {
	if err := t.checkConstraints(row, -1); err != nil {
		return err
	}
	if _, dup := t.byTID[tid]; dup {
		return fmt.Errorf("storage: %s: duplicate tid %d", t.Schema.Name, tid)
	}
	t.byTID[tid] = len(t.rows)
	t.rows = append(t.rows, StoredRow{TID: tid, Created: created, Values: row})
	if t.pkCol >= 0 {
		t.pk[row[t.pkCol].HashKey()] = tid
	}
	for col, idx := range t.unique {
		if !row[col].IsNull() {
			idx[row[col].HashKey()] = tid
		}
	}
	for _, ix := range t.secondary {
		k := ix.key(row)
		ix.entries[k] = append(ix.entries[k], tid)
	}
	return nil
}

// Update replaces the values of the row with the given tid; `_created` is
// preserved (the tuple identity does not change).
func (t *Table) Update(tid int64, row types.Row) (old types.Row, err error) {
	i, ok := t.byTID[tid]
	if !ok {
		return nil, fmt.Errorf("storage: %s: no tid %d", t.Schema.Name, tid)
	}
	if err := t.checkConstraints(row, tid); err != nil {
		return nil, err
	}
	old = t.rows[i].Values
	t.unindexRow(tid, old)
	t.rows[i].Values = row
	t.indexRow(tid, row)
	return old, nil
}

// Delete removes the row with the given tid, returning its values.
func (t *Table) Delete(tid int64) (types.Row, error) {
	i, ok := t.byTID[tid]
	if !ok {
		return nil, fmt.Errorf("storage: %s: no tid %d", t.Schema.Name, tid)
	}
	old := t.rows[i].Values
	t.unindexRow(tid, old)
	last := len(t.rows) - 1
	if i != last {
		t.rows[i] = t.rows[last]
		t.byTID[t.rows[i].TID] = i
	}
	t.rows = t.rows[:last]
	delete(t.byTID, tid)
	return old, nil
}

func (t *Table) indexRow(tid int64, row types.Row) {
	if t.pkCol >= 0 {
		t.pk[row[t.pkCol].HashKey()] = tid
	}
	for col, idx := range t.unique {
		if !row[col].IsNull() {
			idx[row[col].HashKey()] = tid
		}
	}
	for _, ix := range t.secondary {
		k := ix.key(row)
		ix.entries[k] = append(ix.entries[k], tid)
	}
}

func (t *Table) unindexRow(tid int64, row types.Row) {
	if t.pkCol >= 0 {
		delete(t.pk, row[t.pkCol].HashKey())
	}
	for col, idx := range t.unique {
		if !row[col].IsNull() {
			delete(idx, row[col].HashKey())
		}
	}
	for _, ix := range t.secondary {
		k := ix.key(row)
		tids := ix.entries[k]
		for j, id := range tids {
			if id == tid {
				ix.entries[k] = append(tids[:j], tids[j+1:]...)
				break
			}
		}
		if len(ix.entries[k]) == 0 {
			delete(ix.entries, k)
		}
	}
}

func (ix *hashIndex) key(row types.Row) string {
	sub := make(types.Row, len(ix.cols))
	for i, c := range ix.cols {
		sub[i] = row[c]
	}
	return types.RowKey(sub)
}

// AddIndex builds a secondary hash index over the given columns.
func (t *Table) AddIndex(name string, cols []string, unique bool) error {
	if _, ok := t.secondary[name]; ok {
		return fmt.Errorf("storage: index %q already exists on %s", name, t.Schema.Name)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.Schema.ColIndex(c)
		if p < 0 {
			return fmt.Errorf("storage: no column %q in %s", c, t.Schema.Name)
		}
		positions[i] = p
	}
	ix := &hashIndex{cols: positions, unique: unique, entries: map[string][]int64{}}
	for _, r := range t.rows {
		k := ix.key(r.Values)
		if unique && len(ix.entries[k]) > 0 {
			return fmt.Errorf("storage: existing data violates unique index %q", name)
		}
		ix.entries[k] = append(ix.entries[k], r.TID)
	}
	t.secondary[name] = ix
	return nil
}

// LookupIndex returns the tids matching the given key values on a
// secondary index.
func (t *Table) LookupIndex(name string, key types.Row) ([]int64, bool) {
	ix, ok := t.secondary[name]
	if !ok || len(key) != len(ix.cols) {
		return nil, false
	}
	return ix.entries[types.RowKey(key)], true
}

// IndexOn returns the name of a secondary index whose only column is the
// given column position, if any. When several qualify the
// lexicographically smallest name wins, so planner choices are stable.
func (t *Table) IndexOn(col int) (string, bool) {
	best := ""
	for name, ix := range t.secondary {
		if len(ix.cols) == 1 && ix.cols[0] == col && (best == "" || name < best) {
			best = name
		}
	}
	return best, best != ""
}

// LookupUnique returns the tid of the row whose single-column UNIQUE
// value at column position col equals v.
func (t *Table) LookupUnique(col int, v types.Value) (int64, bool) {
	idx, ok := t.unique[col]
	if !ok {
		return 0, false
	}
	tid, ok := idx[v.HashKey()]
	return tid, ok
}

// HasUnique reports whether column position col carries a single-column
// UNIQUE constraint (and therefore a unique hash index).
func (t *Table) HasUnique(col int) bool {
	_, ok := t.unique[col]
	return ok
}

// IndexInfo describes one secondary index for the planner.
type IndexInfo struct {
	Name   string
	Cols   []int // key column positions, in index-key order
	Unique bool
}

// SecondaryIndexes returns the table's secondary indexes sorted by name,
// so planner decisions are deterministic.
func (t *Table) SecondaryIndexes() []IndexInfo {
	out := make([]IndexInfo, 0, len(t.secondary))
	for name, ix := range t.secondary {
		out = append(out, IndexInfo{Name: name, Cols: ix.cols, Unique: ix.unique})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IndexCovering returns a secondary index whose key columns are exactly
// the given set (order-insensitive), plus the permutation mapping each
// index-key position to its position in cols. Ties resolve to the
// lexicographically smallest index name.
func (t *Table) IndexCovering(cols []int) (string, []int, bool) {
	for _, info := range t.SecondaryIndexes() {
		if len(info.Cols) != len(cols) {
			continue
		}
		perm := make([]int, len(info.Cols))
		used := make([]bool, len(cols))
		ok := true
		for i, ic := range info.Cols {
			found := -1
			for j, c := range cols {
				if c == ic && !used[j] {
					found = j
					break
				}
			}
			if found < 0 {
				ok = false
				break
			}
			used[found] = true
			perm[i] = found
		}
		if ok {
			return info.Name, perm, true
		}
	}
	return "", nil, false
}
