package storage

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ediflow/internal/fault"
	"ediflow/internal/types"
)

// Group-commit fault coverage: the crash-point matrix in
// crashmatrix_test.go drives a serialized workload, so every flush cycle
// carries exactly one ticket. The tests here force MULTIPLE concurrent
// commit tickets into one batch — by holding cycleMu, which stalls the
// flusher at the top of its cycle — and then crash between the batch's
// buffer flush (one Write) and its shared fsync (one Sync), proving that
// no commit in a batch is acknowledged unless the shared fsync completed,
// and that a torn tail inside a batch truncates cleanly.

// openGroupStore opens a SyncCommit store on fs with a users table and
// one acknowledged baseline row (pk 100), all fsynced.
func openGroupStore(t *testing.T, fs fault.FS) *Store {
	t.Helper()
	s, err := OpenWith("db", Options{Sync: SyncCommit, FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.CreateTable(userSchema()); err != nil {
		t.Fatalf("create table: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush schema: %v", err)
	}
	if _, _, err := s.Insert("users", types.Row{types.NewInt(100), types.NewString("base"), types.Null}); err != nil {
		t.Fatalf("baseline insert: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush baseline: %v", err)
	}
	return s
}

// stallAndQueue holds the flusher out of its cycle (via cycleMu), appends
// k insert records serially, then launches k concurrent Commit callers
// and waits until every ticket is queued. The caller releases s.cycleMu
// to let one flush cycle drain the whole batch; each element of the
// returned channel slice carries one committer's outcome.
func stallAndQueue(t *testing.T, s *Store, k int) []chan error {
	t.Helper()
	s.cycleMu.Lock()
	for i := 1; i <= k; i++ {
		if _, _, err := s.Insert("users", types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("b%d", i)), types.Null}); err != nil {
			s.cycleMu.Unlock()
			t.Fatalf("batch insert %d: %v", i, err)
		}
	}
	outs := make([]chan error, k)
	for i := range outs {
		out := make(chan error, 1)
		outs[i] = out
		go func() { out <- s.Commit() }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.commitMu.Lock()
		queued := len(s.commitQ)
		s.commitMu.Unlock()
		if queued >= k {
			return outs
		}
		if time.Now().After(deadline) {
			s.cycleMu.Unlock()
			t.Fatalf("only %d of %d commit tickets queued", queued, k)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitSharedFsyncAcksAll: k concurrent committers drained by
// one flush cycle share exactly one buffer flush and one fsync, and every
// ticket is acknowledged with the batch's records durable.
func TestGroupCommitSharedFsyncAcksAll(t *testing.T) {
	mem := fault.NewMemFS()
	s := openGroupStore(t, mem)
	defer s.Close()

	const k = 8
	fsyncs0 := s.reg.Counter("wal.fsyncs").Value()
	commits0 := s.reg.Counter("wal.commits").Value()
	groups0 := s.reg.Counter("wal.group_commits").Value()
	sizeObs0 := s.reg.Histogram("wal.group_commit_size").Stat().Count

	outs := stallAndQueue(t, s, k)
	s.cycleMu.Unlock()
	for i, out := range outs {
		if err := <-out; err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}

	if got := s.reg.Counter("wal.fsyncs").Value() - fsyncs0; got != 1 {
		t.Fatalf("batch of %d commits used %d fsyncs, want exactly 1", k, got)
	}
	if got := s.reg.Counter("wal.commits").Value() - commits0; got != k {
		t.Fatalf("wal.commits advanced by %d, want %d", got, k)
	}
	if got := s.reg.Counter("wal.group_commits").Value() - groups0; got != 1 {
		t.Fatalf("wal.group_commits advanced by %d, want 1", got)
	}
	if got := s.reg.Histogram("wal.group_commit_size").Stat().Count - sizeObs0; got != 1 {
		t.Fatalf("wal.group_commit_size observations advanced by %d, want 1", got)
	}

	// Power loss after the acks: every acknowledged row must survive.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	mem.PowerCycle()
	re, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Table("users").Len(); got != k+1 {
		t.Fatalf("recovered %d rows, want %d (baseline + full batch)", got, k+1)
	}
}

// TestGroupCommitCrashMatrixBatchWindow crashes at each of the two
// mutating fs ops a batched flush cycle performs — the single buffer
// Write and the single shared Sync — with k tickets queued. In both
// cases every committer must see the failure (no partial acks within a
// batch), and power-loss recovery must reproduce exactly the
// pre-batch acknowledged state.
func TestGroupCommitCrashMatrixBatchWindow(t *testing.T) {
	for _, tc := range []struct {
		name   string
		offset int // 1 = batch buffer Write, 2 = batch shared fsync
	}{
		{"crash_at_batch_write", 1},
		{"crash_at_batch_fsync", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := fault.NewMemFS()
			inj := fault.NewInject(mem)
			s := openGroupStore(t, inj)

			const k = 6
			outs := stallAndQueue(t, s, k)
			// Appends are buffered, so no fs op has happened for the batch
			// yet: the cycle's Write is step base+1, its Sync base+2.
			inj.CrashAfter(inj.Steps() + tc.offset)
			s.cycleMu.Unlock()

			for i, out := range outs {
				if err := <-out; !errors.Is(err, fault.ErrCrashed) {
					t.Fatalf("committer %d: err = %v, want ErrCrashed (no ack without the shared fsync)", i, err)
				}
			}
			s.Close()

			mem.PowerCycle()
			re, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
			if err != nil {
				t.Fatalf("reopen after power loss: %v", err)
			}
			defer re.Close()
			tbl := re.Table("users")
			if tbl == nil {
				t.Fatal("users table lost: pre-batch acked state not recovered")
			}
			if got := tbl.Len(); got != 1 {
				t.Fatalf("recovered %d rows, want exactly the 1 acked baseline row (none of the unacked batch)", got)
			}
			if pk := tbl.Rows()[0].Values[0].Int(); pk != 100 {
				t.Fatalf("recovered pk %d, want baseline pk 100", pk)
			}
		})
	}
}

// TestGroupCommitTornTailInsideBatchTruncatesCleanly: the batch's single
// buffer Write crashes halfway (ShortWrites), landing a torn record in
// the middle of the batch. The process — not the machine — crashes, so
// the half-written bytes survive in the OS cache. Reopen must truncate
// the torn tail, recover the baseline plus at most a clean PREFIX of the
// batch (never a gap, never a dup), and leave the store appendable.
func TestGroupCommitTornTailInsideBatchTruncatesCleanly(t *testing.T) {
	mem := fault.NewMemFS()
	inj := fault.NewInject(mem)
	s := openGroupStore(t, inj)

	const k = 6
	outs := stallAndQueue(t, s, k)
	inj.ShortWrites(true)
	inj.CrashAfter(inj.Steps() + 1) // the batch's one buffer Write, torn
	s.cycleMu.Unlock()

	for i, out := range outs {
		if err := <-out; !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("committer %d: err = %v, want ErrCrashed", i, err)
		}
	}
	s.Close()

	// Process crash: NO PowerCycle — reopen on the bare memfs sees the
	// torn bytes.
	re, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
	if err != nil {
		t.Fatalf("reopen after torn batch write: %v", err)
	}
	tbl := re.Table("users")
	if tbl == nil {
		t.Fatal("users table lost after torn-tail truncation")
	}
	seen := map[int64]bool{}
	for _, r := range tbl.Rows() {
		pk := r.Values[0].Int()
		if seen[pk] {
			t.Fatalf("pk %d recovered twice", pk)
		}
		seen[pk] = true
	}
	if !seen[100] {
		t.Fatal("acked baseline row lost")
	}
	// Batch rows recovered, if any, must form a prefix of append order:
	// replay stops at the torn frame, so row i present ⇒ rows 1..i-1
	// present.
	got := 0
	for i := int64(1); i <= k; i++ {
		if seen[i] {
			if int64(got)+1 != i {
				t.Fatalf("batch rows are not a clean prefix: pk %d present but pk %d missing", i, got+1)
			}
			got++
		}
	}
	if got == k {
		t.Fatalf("all %d unacked batch rows recovered from a torn write; expected a strict prefix", k)
	}

	// The truncated log must accept and persist new appends.
	if _, _, err := re.Insert("users", types.Row{types.NewInt(200), types.NewString("after"), types.Null}); err != nil {
		t.Fatalf("insert after truncation: %v", err)
	}
	if err := re.Flush(); err != nil {
		t.Fatalf("flush after truncation: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close after truncation: %v", err)
	}
	re2, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer re2.Close()
	found := false
	for _, r := range re2.Table("users").Rows() {
		if r.Values[0].Int() == 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-truncation append did not survive reopen")
	}
}

// TestIntervalFlusherOwnsFsyncs: under SyncInterval every fsync comes
// from the flusher's ticker — statement-boundary Flush calls only push
// to the OS cache and mark the log dirty. A burst of commits therefore
// costs at most one fsync per elapsed window (no double-fsync race
// between an interval timer and a statement boundary), and a clean
// (non-dirty) window costs none.
func TestIntervalFlusherOwnsFsyncs(t *testing.T) {
	const window = 20 * time.Millisecond
	mem := fault.NewMemFS()
	s, err := OpenWith("db", Options{Sync: SyncInterval, SyncEvery: window, FS: mem})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if err := s.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	const commits = 40
	t0 := time.Now()
	for i := 0; i < commits; i++ {
		if _, _, err := s.Insert("users", types.Row{types.NewInt(int64(i)), types.NewString("x"), types.Null}); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Let the dirty log drain: at least one full window.
	time.Sleep(3 * window)
	elapsed := time.Since(t0)
	fsyncs := s.reg.Counter("wal.fsyncs").Value()
	// Upper bound: one fsync per elapsed window plus slack for ticker
	// skew. Even on a slow CI machine this is far below one per commit.
	maxFsyncs := int64(elapsed/window) + 2
	if fsyncs < 1 {
		t.Fatal("dirty log never fsynced by the interval flusher")
	}
	if fsyncs > maxFsyncs {
		t.Fatalf("%d fsyncs in %v (%d windows): interval flusher double-fsyncing", fsyncs, elapsed, elapsed/window)
	}
	if fsyncs >= commits {
		t.Fatalf("%d fsyncs for %d commits: interval mode not amortizing", fsyncs, commits)
	}

	// Idle (non-dirty) windows must not fsync at all.
	base := s.reg.Counter("wal.fsyncs").Value()
	time.Sleep(5 * window)
	if got := s.reg.Counter("wal.fsyncs").Value(); got != base {
		t.Fatalf("idle store fsynced %d times; clean windows must be free", got-base)
	}
}
