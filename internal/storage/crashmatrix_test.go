package storage

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"ediflow/internal/fault"
	"ediflow/internal/types"
)

// The crash-point matrix: a fixed workload runs against an injection
// filesystem that crashes at the i-th mutating filesystem operation, for
// every i. After each crash the filesystem is power-cycled (un-fsynced
// state discarded) and the store reopened; recovery must reproduce
// exactly the acknowledged state — every acknowledged commit present
// exactly once, no unacknowledged commit visible. Under SyncCommit an
// acknowledgment means Flush returned nil, i.e. the record was fsynced.
//
// wlState is the expected logical store state after one workload op.
type wlState struct {
	hasTable bool
	hasIndex bool
	metas    int
	rows     map[int64]string // pk → name
}

func (s wlState) clone() wlState {
	rows := make(map[int64]string, len(s.rows))
	for k, v := range s.rows {
		rows[k] = v
	}
	s.rows = rows
	return s
}

func (s wlState) equal(o wlState) bool {
	if s.hasTable != o.hasTable || s.hasIndex != o.hasIndex || s.metas != o.metas || len(s.rows) != len(o.rows) {
		return false
	}
	for k, v := range s.rows {
		if o.rows[k] != v {
			return false
		}
	}
	return true
}

// wlResult is one workload run: the expected state after each attempted
// op (history[0] is the empty initial state) and the index of the last
// acknowledged op. err is the first injected failure, nil on a clean run.
type wlResult struct {
	history []wlState
	acked   int
	err     error
}

// crashWorkload drives a deterministic mutation sequence through a
// SyncCommit store on fs, covering WAL append, group fsync, and two full
// checkpoints. It stops at the first error (the injected crash).
func crashWorkload(fs fault.FS) wlResult {
	res := wlResult{history: []wlState{{rows: map[int64]string{}}}}
	cur := func() wlState { return res.history[len(res.history)-1] }
	// step attempts one logical op leading to state next; ack on success.
	step := func(next wlState, do func() error) bool {
		err := do()
		res.history = append(res.history, next)
		if err != nil {
			res.err = err
			return false
		}
		res.acked = len(res.history) - 1
		return true
	}
	// same: an op that does not change logical state (checkpoint, close).
	same := func(do func() error) bool { return step(cur().clone(), do) }

	s, err := OpenWith("db", Options{Sync: SyncCommit, FS: fs})
	if err != nil {
		res.err = err
		return res
	}
	// Crashed runs bail out mid-workload; close anyway so the flusher
	// goroutine exits. Post-crash fs ops return ErrCrashed without
	// advancing the injector's step counter, so the deterministic op
	// trace is unchanged (Close is a no-op second time on clean runs).
	defer s.Close()
	flushed := func(err error) error {
		if err != nil {
			return err
		}
		return s.Flush()
	}

	next := cur().clone()
	next.hasTable = true
	if !step(next, func() error { return flushed(s.CreateTable(userSchema())) }) {
		return res
	}
	pkToTid := map[int64]int64{}
	for pk := int64(1); pk <= 5; pk++ {
		pk := pk
		next := cur().clone()
		next.rows[pk] = fmt.Sprintf("u%d", pk)
		if !step(next, func() error {
			tid, _, err := s.Insert("users", types.Row{types.NewInt(pk), types.NewString(fmt.Sprintf("u%d", pk)), types.Null})
			pkToTid[pk] = tid
			return flushed(err)
		}) {
			return res
		}
	}
	next = cur().clone()
	next.rows[3] = "updated"
	if !step(next, func() error {
		_, err := s.Update("users", pkToTid[3], types.Row{types.NewInt(3), types.NewString("updated"), types.Null})
		return flushed(err)
	}) {
		return res
	}
	next = cur().clone()
	delete(next.rows, 1)
	if !step(next, func() error {
		_, err := s.Delete("users", pkToTid[1])
		return flushed(err)
	}) {
		return res
	}
	next = cur().clone()
	next.metas = 1
	if !step(next, func() error { return flushed(s.PutMeta("view", "v1", "CREATE VIEW v1 AS SELECT id FROM users")) }) {
		return res
	}
	if !same(s.Checkpoint) {
		return res
	}
	for pk := int64(6); pk <= 7; pk++ {
		pk := pk
		next := cur().clone()
		next.rows[pk] = fmt.Sprintf("u%d", pk)
		if !step(next, func() error {
			tid, _, err := s.Insert("users", types.Row{types.NewInt(pk), types.NewString(fmt.Sprintf("u%d", pk)), types.Null})
			pkToTid[pk] = tid
			return flushed(err)
		}) {
			return res
		}
	}
	next = cur().clone()
	next.hasIndex = true
	if !step(next, func() error { return flushed(s.AddIndex("by_name", "users", []string{"name"}, false)) }) {
		return res
	}
	if !same(s.Checkpoint) {
		return res
	}
	next = cur().clone()
	next.rows[8] = "u8"
	if !step(next, func() error {
		_, _, err := s.Insert("users", types.Row{types.NewInt(8), types.NewString("u8"), types.Null})
		return flushed(err)
	}) {
		return res
	}
	same(s.Close)
	return res
}

// recoveredState reopens the store on fs (no injection) and extracts the
// logical state, failing the test on duplicated tuples.
func recoveredState(t *testing.T, fs fault.FS, crashPoint int) wlState {
	t.Helper()
	s, err := OpenWith("db", Options{Sync: SyncCommit, FS: fs})
	if err != nil {
		t.Fatalf("crash point %d: reopen after crash failed: %v", crashPoint, err)
	}
	defer s.Close()
	st := wlState{rows: map[int64]string{}}
	tbl := s.Table("users")
	if tbl == nil {
		return st
	}
	st.hasTable = true
	st.metas = len(s.Metas())
	for _, r := range tbl.Rows() {
		pk := r.Values[0].Int()
		if _, dup := st.rows[pk]; dup {
			t.Fatalf("crash point %d: pk %d recovered twice", crashPoint, pk)
		}
		st.rows[pk] = r.Values[1].Str()
	}
	if _, ok := tbl.IndexOn(tbl.Schema.ColIndex("name")); ok {
		st.hasIndex = true
	}
	return st
}

func TestCrashPointMatrixPowerLoss(t *testing.T) {
	// Count run: no crash armed, learn the total number of mutating
	// filesystem operations and check the matrix covers every class of
	// injection point in the append → fsync → checkpoint pipeline.
	count := fault.NewInject(fault.NewMemFS())
	if res := crashWorkload(count); res.err != nil {
		t.Fatalf("clean run failed: %v", res.err)
	}
	total := count.Steps()
	if total < 30 {
		t.Fatalf("workload too small for a meaningful matrix: %d fs ops", total)
	}
	seen := map[fault.Op]int{}
	for _, p := range count.Trace() {
		seen[p.Op]++
	}
	for _, op := range []fault.Op{
		fault.OpMkdir, fault.OpOpenFile, fault.OpCreate, fault.OpWrite,
		fault.OpSync, fault.OpClose, fault.OpRename, fault.OpSyncDir,
	} {
		if seen[op] == 0 {
			t.Fatalf("workload never exercises injection point %q; matrix coverage incomplete", op)
		}
	}
	t.Logf("matrix: %d crash points, per op: %v", total, seen)

	for i := 1; i <= total; i++ {
		mem := fault.NewMemFS()
		inj := fault.NewInject(mem)
		inj.CrashAfter(i)
		res := crashWorkload(inj)
		if res.err == nil {
			t.Fatalf("crash point %d/%d did not fire", i, total)
		}
		if !errors.Is(res.err, fault.ErrCrashed) {
			t.Fatalf("crash point %d: workload failed with %v, want ErrCrashed", i, res.err)
		}
		mem.PowerCycle()
		got := recoveredState(t, mem, i)
		want := res.history[res.acked]
		if !got.equal(want) {
			t.Errorf("crash point %d/%d (%s): recovered state %+v, want acknowledged state %+v",
				i, total, inj.Trace()[i-1], got, want)
		}
	}
}

func TestCrashPointMatrixProcessCrashTornWrites(t *testing.T) {
	// Process-crash variant: the page cache survives (no PowerCycle), and
	// the crashing write lands a torn prefix. Recovery must land on a
	// consistent prefix of the workload no older than the last
	// acknowledged op — acknowledged commits are never lost, and a torn
	// tail never corrupts recovery or hides later appends.
	count := fault.NewInject(fault.NewMemFS())
	crashWorkload(count)
	total := count.Steps()

	for i := 1; i <= total; i++ {
		mem := fault.NewMemFS()
		inj := fault.NewInject(mem)
		inj.ShortWrites(true)
		inj.CrashAfter(i)
		res := crashWorkload(inj)
		if res.err == nil {
			t.Fatalf("crash point %d/%d did not fire", i, total)
		}
		got := recoveredState(t, mem, i)
		ok := false
		for j := res.acked; j < len(res.history); j++ {
			if got.equal(res.history[j]) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("crash point %d/%d (%s): recovered state %+v matches no prefix ≥ acked (%+v)",
				i, total, inj.Trace()[i-1], got, res.history[res.acked])
		}
	}
}

func TestCheckpointENOSPCLeavesStoreUsable(t *testing.T) {
	mem := fault.NewMemFS()
	inj := fault.NewInject(mem)
	s, err := OpenWith("db", Options{Sync: SyncCommit, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable(userSchema())
	s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	inj.FailNext(fault.OpWrite, "snapshot", syscall.ENOSPC)
	if err := s.Checkpoint(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint under ENOSPC: %v", err)
	}
	if mem.Exists("db/" + snapshotFile + ".tmp") {
		t.Fatal("failed checkpoint leaked its temp snapshot")
	}
	// The store keeps running on its existing WAL...
	if _, _, err := s.Insert("users", types.Row{types.NewInt(2), types.NewString("b"), types.Null}); err != nil {
		t.Fatalf("insert after failed checkpoint: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after failed checkpoint: %v", err)
	}
	// ...and the next checkpoint, with space back, succeeds.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after ENOSPC cleared: %v", err)
	}
	s.Close()

	s2, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Table("users").Len() != 2 {
		t.Fatalf("rows after recovery: %d", s2.Table("users").Len())
	}
	if s2.Epoch() != 1 {
		t.Fatalf("epoch: %d, want 1 (one successful checkpoint)", s2.Epoch())
	}
}

func TestWALWriteErrorSurfacesAndIsNotAcked(t *testing.T) {
	mem := fault.NewMemFS()
	inj := fault.NewInject(mem)
	s, err := OpenWith("db", Options{Sync: SyncCommit, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable(userSchema())
	s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	inj.FailNext(fault.OpWrite, "wal", syscall.EIO)
	s.Insert("users", types.Row{types.NewInt(2), types.NewString("b"), types.Null})
	if err := s.Flush(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("flush under EIO: %v", err)
	}
	// The failed statement was never acknowledged; after a restart it
	// must be invisible while the acknowledged one is intact.
	s2, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem})
	if err != nil {
		t.Fatalf("reopen after WAL I/O error: %v", err)
	}
	defer s2.Close()
	tbl := s2.Table("users")
	if tbl.Len() != 1 {
		t.Fatalf("rows after recovery: %d, want 1", tbl.Len())
	}
	if _, ok := tbl.LookupPK(types.NewInt(1)); !ok {
		t.Fatal("acknowledged row lost")
	}
}

func TestEpochSkipsStaleWAL(t *testing.T) {
	// Crash exactly between snapshot installation (rename + dir fsync)
	// and WAL truncation: the old WAL survives next to the new snapshot.
	// Its stale epoch must keep replay from double-applying its records.
	mem := fault.NewMemFS()
	count := fault.NewInject(mem)
	s, err := OpenWith("db", Options{Sync: SyncCommit, FS: count})
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable(userSchema())
	s.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	s.Flush()
	before := count.Steps()
	// Find the SyncDir inside Checkpoint and crash right after it.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var syncDirStep int
	for _, p := range count.Trace()[before:] {
		if p.Op == fault.OpSyncDir {
			syncDirStep = p.N
			break
		}
	}
	if syncDirStep == 0 {
		t.Fatal("no SyncDir inside Checkpoint")
	}

	mem2 := fault.NewMemFS()
	inj := fault.NewInject(mem2)
	inj.CrashAfter(syncDirStep + 1)
	s2, err := OpenWith("db", Options{Sync: SyncCommit, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	s2.CreateTable(userSchema())
	s2.Insert("users", types.Row{types.NewInt(1), types.NewString("a"), types.Null})
	s2.Flush()
	if err := s2.Checkpoint(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("checkpoint should crash after SyncDir: %v", err)
	}
	mem2.PowerCycle()
	s3, err := OpenWith("db", Options{Sync: SyncCommit, FS: mem2})
	if err != nil {
		t.Fatalf("reopen with new snapshot + stale WAL: %v", err)
	}
	defer s3.Close()
	if got := s3.Table("users").Len(); got != 1 {
		t.Fatalf("stale-epoch WAL double-applied: %d rows, want 1", got)
	}
	if s3.Epoch() != 1 {
		t.Fatalf("epoch after recovered checkpoint: %d, want 1", s3.Epoch())
	}
}
