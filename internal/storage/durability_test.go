package storage

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"ediflow/internal/types"
)

// TestWALCrashChild is not a test: it is the victim process for
// TestCrashReplayNoAcknowledgedLoss, re-executed via the test binary. It
// opens the store in SyncCommit mode, inserts rows (each followed by the
// engine's commit-boundary Flush), prints READY, and blocks until killed.
func TestWALCrashChild(t *testing.T) {
	dir := os.Getenv("EDIFLOW_CRASH_DIR")
	if dir == "" {
		t.Skip("helper process, driven by TestCrashReplayNoAcknowledgedLoss")
	}
	st, err := OpenWith(dir, Options{Sync: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("user-%d", i)),
			types.NewString(fmt.Sprintf("u%d@x", i)),
		}
		if _, _, err := st.Insert("users", row); err != nil {
			t.Fatal(err)
		}
		// Statement boundary: with SyncCommit the row is on stable
		// storage — and acknowledged — once Flush returns.
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	fmt.Println("READY")
	os.Stdout.Sync()
	// Never Close(): wait to be SIGKILLed mid-life, before any checkpoint.
	select {}
}

// TestCrashReplayNoAcknowledgedLoss kills a child process with SIGKILL
// after it acknowledged 25 committed inserts (fsync-on-commit) but before
// any checkpoint, then reopens the directory and verifies every
// acknowledged row is replayed from the WAL.
func TestCrashReplayNoAcknowledgedLoss(t *testing.T) {
	if os.Getenv("EDIFLOW_CRASH_DIR") != "" {
		t.Skip("already inside the helper process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestWALCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), "EDIFLOW_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "READY" {
				ready <- nil
				return
			}
		}
		ready <- fmt.Errorf("child exited before READY (scan err: %v)", sc.Err())
	}()
	select {
	case err := <-ready:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for child READY")
	}

	// Crash: no Close, no checkpoint, no chance to flush anything more.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st.Close()
	tbl := st.Table("users")
	if tbl == nil {
		t.Fatal("table lost after crash")
	}
	if got := tbl.Len(); got != 25 {
		t.Fatalf("recovered %d rows, want 25 acknowledged commits", got)
	}
	for i := 0; i < 25; i++ {
		if _, ok := tbl.LookupPK(types.NewInt(int64(i))); !ok {
			t.Fatalf("acknowledged row id=%d lost in crash", i)
		}
	}
}

// TestSyncModes checks the fsync policy through the metrics counters:
// SyncCommit fsyncs every Flush, SyncInterval batches them, SyncOSCache
// never fsyncs before close.
func TestSyncModes(t *testing.T) {
	insertN := func(st *Store, n int) {
		t.Helper()
		if err := st.CreateTable(userSchema()); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			row := types.Row{
				types.NewInt(int64(i)),
				types.NewString("u"),
				types.NewString(fmt.Sprintf("%d@x", i)),
			}
			if _, _, err := st.Insert("users", row); err != nil {
				t.Fatal(err)
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	counter := func(st *Store, name string) int64 {
		for _, s := range st.Metrics().Snapshot() {
			if s.Name == name {
				return s.Count
			}
		}
		return 0
	}

	t.Run("commit", func(t *testing.T) {
		st, err := OpenWith(t.TempDir(), Options{Sync: SyncCommit})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		insertN(st, 10)
		if got := counter(st, "wal.fsyncs"); got != 11 {
			t.Fatalf("SyncCommit fsyncs = %d, want 11 (one per boundary)", got)
		}
		if got := counter(st, "wal.appends"); got != 11 {
			t.Fatalf("wal.appends = %d, want 11", got)
		}
		if counter(st, "wal.bytes") == 0 {
			t.Fatal("wal.bytes not recorded")
		}
	})
	t.Run("interval", func(t *testing.T) {
		st, err := OpenWith(t.TempDir(), Options{Sync: SyncInterval, SyncEvery: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		insertN(st, 10)
		// Interval fsyncs run only on the flusher's ticker now (the old
		// code fsynced the first boundary because lastFsync was zero, and
		// could double-fsync when the timer raced a statement flush). An
		// hour-long window means zero fsyncs during the run; close makes
		// the tail durable.
		if got := counter(st, "wal.fsyncs"); got != 0 {
			t.Fatalf("SyncInterval fsyncs = %d, want 0 inside the window", got)
		}
		if got := counter(st, "wal.flushes"); got != 11 {
			t.Fatalf("wal.flushes = %d, want 11", got)
		}
	})
	t.Run("oscache", func(t *testing.T) {
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		insertN(st, 10)
		if got := counter(st, "wal.fsyncs"); got != 0 {
			t.Fatalf("SyncOSCache fsyncs = %d, want 0 before close", got)
		}
	})
	t.Run("in-memory", func(t *testing.T) {
		st, err := OpenWith("", Options{Sync: SyncCommit})
		if err != nil {
			t.Fatal(err)
		}
		insertN(st, 3)
		if got := counter(st, "wal.fsyncs"); got != 0 {
			t.Fatalf("in-memory fsyncs = %d, want 0", got)
		}
	})
}

func TestParseSyncMode(t *testing.T) {
	cases := map[string]SyncMode{
		"none": SyncOSCache, "": SyncOSCache, "bogus": SyncOSCache,
		"commit": SyncCommit, "fsync": SyncCommit, "FULL": SyncCommit,
		"interval": SyncInterval, "group": SyncInterval,
	}
	for in, want := range cases {
		if got := ParseSyncMode(in); got != want {
			t.Errorf("ParseSyncMode(%q) = %v, want %v", in, got, want)
		}
	}
	if SyncCommit.String() != "commit" || SyncInterval.String() != "interval" || SyncOSCache.String() != "none" {
		t.Error("SyncMode.String mismatch")
	}
}
