package render

import (
	"strings"
	"testing"

	"ediflow/internal/vis"
)

func sampleAttrs() map[int64]vis.Attr {
	return map[int64]vis.Attr{
		1: {X: 0, Y: 0, Color: "#ff0000", Label: "a", Selected: true},
		2: {X: 10, Y: 5, Label: "b"},
		3: {X: 5, Y: 10},
	}
}

func TestNodeLinkSVG(t *testing.T) {
	var sb strings.Builder
	err := NodeLink(&sb, sampleAttrs(), [][2]int64{{1, 2}, {2, 3}, {9, 1}}, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatalf("not an svg: %q", svg[:40])
	}
	if strings.Count(svg, "<circle") != 3 {
		t.Errorf("circles: %d", strings.Count(svg, "<circle"))
	}
	// Edge to missing node 9 skipped.
	if strings.Count(svg, "<line") != 2 {
		t.Errorf("lines: %d", strings.Count(svg, "<line"))
	}
	// Selected node is labeled.
	if !strings.Contains(svg, ">a</text>") {
		t.Error("selected label missing")
	}
}

func TestNodeLinkEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NodeLink(&sb, nil, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("empty render must still be valid svg")
	}
}

func TestTreemapSVG(t *testing.T) {
	attrs := map[int64]vis.Attr{
		1: {X: 0, Y: 0, Width: 50, Height: 100, Color: "#123456", Label: "big"},
		2: {X: 50, Y: 0, Width: 50, Height: 100},
	}
	var sb strings.Builder
	if err := Treemap(&sb, attrs, 200, 200); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if strings.Count(svg, "<rect") != 2 {
		t.Errorf("rects: %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "#123456") {
		t.Error("color not used")
	}
	if !strings.Contains(svg, ">big</text>") {
		t.Error("label missing")
	}
}

func TestSVGEscaping(t *testing.T) {
	attrs := map[int64]vis.Attr{1: {Label: `<b>&"x"`, Selected: true}}
	var sb strings.Builder
	NodeLink(&sb, attrs, nil, 100, 100)
	if strings.Contains(sb.String(), "<b>") {
		t.Error("labels must be escaped")
	}
}

func TestASCII(t *testing.T) {
	out := ASCII(sampleAttrs(), 40, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 || len(lines[0]) != 40 {
		t.Fatalf("grid shape: %d lines", len(lines))
	}
	if !strings.Contains(out, "@") || !strings.Contains(out, ".") {
		t.Error("markers missing")
	}
	if ASCII(nil, 5, 2) != "     \n     \n" {
		t.Error("empty grid")
	}
}

func TestColorRampAndPartyShade(t *testing.T) {
	if ColorRamp(0) == ColorRamp(1) {
		t.Error("ramp endpoints must differ")
	}
	if ColorRamp(-5) != ColorRamp(0) || ColorRamp(7) != ColorRamp(1) {
		t.Error("ramp must clamp")
	}
	low := PartyShade("dem", 0.1)
	high := PartyShade("dem", 0.9)
	if low == high {
		t.Error("share must change shade")
	}
	if PartyShade("rep", 0.5) == PartyShade("dem", 0.5) {
		t.Error("parties must have different hues")
	}
	if PartyShade("unknown", 0.5) == "" {
		t.Error("unknown party needs a color")
	}
}
