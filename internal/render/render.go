// Package render draws display views to SVG files and ASCII grids. It is
// the substitute for the paper's Swing-based InfoVis displays: the
// table-centric pipeline (VisualAttributes → view → pixels) is identical,
// the final device is a file instead of a window (see DESIGN.md).
package render

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"ediflow/internal/vis"
)

// svgEscape escapes text content for XML.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// NodeLink renders a node-link diagram from visual attributes plus an
// edge list (pairs of object ids). Nodes use x/y (data space, scaled to
// fit), color and label.
func NodeLink(w io.Writer, attrs map[int64]vis.Attr, edges [][2]int64, width, height int) error {
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 600
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, a := range attrs {
		minX = math.Min(minX, a.X)
		maxX = math.Max(maxX, a.X)
		minY = math.Min(minY, a.Y)
		maxY = math.Max(maxY, a.Y)
	}
	if len(attrs) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	const margin = 20.0
	sx := (float64(width) - 2*margin) / (maxX - minX)
	sy := (float64(height) - 2*margin) / (maxY - minY)
	px := func(x float64) float64 { return margin + (x-minX)*sx }
	py := func(y float64) float64 { return margin + (y-minY)*sy }

	if _, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height); err != nil {
		return err
	}
	for _, e := range edges {
		a, okA := attrs[e[0]]
		b, okB := attrs[e[1]]
		if !okA || !okB {
			continue
		}
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbb" stroke-width="0.5"/>`+"\n",
			px(a.X), py(a.Y), px(b.X), py(b.Y))
	}
	for _, id := range sortedIDs(attrs) {
		a := attrs[id]
		color := a.Color
		if color == "" {
			color = "#3366cc"
		}
		r := 3.0
		if a.Selected {
			r = 5.0
		}
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", px(a.X), py(a.Y), r, color)
		if a.Label != "" && a.Selected {
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="9">%s</text>`+"\n", px(a.X)+5, py(a.Y)-5, svgEscape(a.Label))
		}
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

// Treemap renders rectangle attributes (x, y, width, height in data
// space) as an SVG treemap.
func Treemap(w io.Writer, attrs map[int64]vis.Attr, width, height int) error {
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 600
	}
	maxX, maxY := 1.0, 1.0
	for _, a := range attrs {
		maxX = math.Max(maxX, a.X+a.Width)
		maxY = math.Max(maxY, a.Y+a.Height)
	}
	sx := float64(width) / maxX
	sy := float64(height) / maxY
	if _, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height); err != nil {
		return err
	}
	for _, id := range sortedIDs(attrs) {
		a := attrs[id]
		color := a.Color
		if color == "" {
			color = "#cccccc"
		}
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#fff"/>`+"\n",
			a.X*sx, a.Y*sy, a.Width*sx, a.Height*sy, color)
		if a.Label != "" && a.Width*sx > 30 && a.Height*sy > 12 {
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="10">%s</text>`+"\n",
				a.X*sx+3, a.Y*sy+12, svgEscape(a.Label))
		}
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

// Scatter renders a scatter plot (x/y attributes, color, label).
func Scatter(w io.Writer, attrs map[int64]vis.Attr, width, height int) error {
	return NodeLink(w, attrs, nil, width, height)
}

// ASCII renders node positions onto a character grid — a terminal "view"
// for the CLI tools.
func ASCII(attrs map[int64]vis.Attr, cols, rows int) string {
	if cols <= 0 {
		cols = 60
	}
	if rows <= 0 {
		rows = 20
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, a := range attrs {
		minX = math.Min(minX, a.X)
		maxX = math.Max(maxX, a.X)
		minY = math.Min(minY, a.Y)
		maxY = math.Max(maxY, a.Y)
	}
	if len(attrs) > 0 && maxX > minX && maxY > minY {
		for _, a := range attrs {
			c := int((a.X - minX) / (maxX - minX) * float64(cols-1))
			r := int((a.Y - minY) / (maxY - minY) * float64(rows-1))
			ch := byte('.')
			if a.Selected {
				ch = '@'
			}
			grid[r][c] = ch
		}
	}
	var sb strings.Builder
	for _, line := range grid {
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func sortedIDs(attrs map[int64]vis.Attr) []int64 {
	ids := make([]int64, 0, len(attrs))
	for id := range attrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ColorRamp maps a value in [0,1] to a blue→red hex color (the elections
// “more votes, darker shade” ramp generalized).
func ColorRamp(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	r := int(255 * v)
	b := int(255 * (1 - v))
	return fmt.Sprintf("#%02x40%02x", r, b)
}

// PartyShade returns the elections color: a party hue darkened by the
// vote share (Figure 1: "the more the states vote for the respective
// party, the darker the color").
func PartyShade(party string, share float64) string {
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	// Base hues: democrats blue, republicans red, unknown gray.
	var r, g, b float64
	switch strings.ToLower(party) {
	case "dem", "democrat", "blue":
		r, g, b = 60, 90, 220
	case "rep", "republican", "red":
		r, g, b = 220, 60, 60
	default:
		r, g, b = 128, 128, 128
	}
	f := 1.2 - 0.8*share // darker with higher share
	clamp := func(x float64) int {
		n := int(x)
		if n < 0 {
			return 0
		}
		if n > 255 {
			return 255
		}
		return n
	}
	return fmt.Sprintf("#%02x%02x%02x", clamp(r*f), clamp(g*f), clamp(b*f))
}
