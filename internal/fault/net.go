package fault

import (
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned by a wrapped connection whose fault plan
// reset it (connection abruptly torn down mid-stream).
var ErrInjectedReset = errors.New("fault: injected connection reset")

// ErrInjectedDrop is returned by a wrapped connection whose fault plan
// drops all traffic outright (hard partition with RST semantics).
var ErrInjectedDrop = errors.New("fault: injected connection drop")

// Faults is a shared, mutable network fault plan. One Faults value is
// consulted live by every Conn wrapped with it, so a test can flip
// behaviors mid-flight: let a handshake through clean, then black-hole
// the established connection.
type Faults struct {
	mu         sync.Mutex
	delay      time.Duration
	drop       bool
	blackhole  bool
	resetAfter int64 // bytes through each conn before reset; 0 = off
}

// SetDelay adds d of latency before every Read and Write.
func (f *Faults) SetDelay(d time.Duration) { f.mu.Lock(); f.delay = d; f.mu.Unlock() }

// SetDrop makes every Read and Write fail immediately (hard partition).
func (f *Faults) SetDrop(on bool) { f.mu.Lock(); f.drop = on; f.mu.Unlock() }

// SetBlackhole makes Writes vanish (reported as successful) and Reads
// block until the connection is closed — a silent packet-eating network.
func (f *Faults) SetBlackhole(on bool) { f.mu.Lock(); f.blackhole = on; f.mu.Unlock() }

// SetResetAfterBytes resets each connection once n bytes have been
// written through it. 0 disables.
func (f *Faults) SetResetAfterBytes(n int64) { f.mu.Lock(); f.resetAfter = n; f.mu.Unlock() }

func (f *Faults) snapshot() (delay time.Duration, drop, blackhole bool, resetAfter int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delay, f.drop, f.blackhole, f.resetAfter
}

// Conn wraps a net.Conn with a live fault plan. It also counts Close
// calls so tests can assert no code path double-closes a connection.
type Conn struct {
	net.Conn
	faults *Faults

	closeOnce  sync.Once
	closedCh   chan struct{}
	closeCalls int32
	written    int64

	deadlineMu   sync.Mutex
	readDeadline time.Time
}

// WrapConn wraps c with the fault plan f (which may be shared among
// many connections and mutated mid-flight).
func WrapConn(c net.Conn, f *Faults) *Conn {
	if f == nil {
		f = &Faults{}
	}
	return &Conn{Conn: c, faults: f, closedCh: make(chan struct{})}
}

// CloseCalls returns how many times Close was invoked on this wrapper.
func (c *Conn) CloseCalls() int { return int(atomic.LoadInt32(&c.closeCalls)) }

// Close implements net.Conn. Every call is counted; the underlying
// connection is closed on the first.
func (c *Conn) Close() error {
	atomic.AddInt32(&c.closeCalls, 1)
	var err error
	c.closeOnce.Do(func() {
		close(c.closedCh)
		err = c.Conn.Close()
	})
	return err
}

func (c *Conn) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closedCh:
		return false
	}
}

// SetReadDeadline implements net.Conn, also recording the deadline so a
// blackholed Read can honor it (a real blackholed socket still times
// out — it is the kernel's poller, not the peer, that enforces it).
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.readDeadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.readDeadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	delay, drop, blackhole, _ := c.faults.snapshot()
	if !c.sleep(delay) {
		return 0, net.ErrClosed
	}
	if drop {
		return 0, ErrInjectedDrop
	}
	if blackhole {
		c.deadlineMu.Lock()
		deadline := c.readDeadline
		c.deadlineMu.Unlock()
		var timeout <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			defer t.Stop()
			timeout = t.C
		}
		select {
		case <-c.closedCh:
			return 0, net.ErrClosed
		case <-timeout:
			return 0, os.ErrDeadlineExceeded
		}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	delay, drop, blackhole, resetAfter := c.faults.snapshot()
	if !c.sleep(delay) {
		return 0, net.ErrClosed
	}
	if drop {
		return 0, ErrInjectedDrop
	}
	if blackhole {
		return len(p), nil // swallowed by the network
	}
	if resetAfter > 0 && atomic.LoadInt64(&c.written) >= resetAfter {
		c.Close()
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Write(p)
	atomic.AddInt64(&c.written, int64(n))
	return n, err
}

// Listener wraps a net.Listener so every accepted connection carries the
// shared fault plan. Accepted wrappers are retained for assertions.
type Listener struct {
	net.Listener
	faults *Faults

	mu    sync.Mutex
	conns []*Conn
}

// WrapListener wraps ln with the fault plan f.
func WrapListener(ln net.Listener, f *Faults) *Listener {
	if f == nil {
		f = &Faults{}
	}
	return &Listener{Listener: ln, faults: f}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	wc := WrapConn(c, l.faults)
	l.mu.Lock()
	l.conns = append(l.conns, wc)
	l.mu.Unlock()
	return wc, nil
}

// Conns returns every connection accepted so far.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// Dialer dials real TCP connections and wraps each in the fault plan,
// retaining the wrappers for assertions. Its Dial method matches the
// dialer-injection hooks in the client driver and the notifier.
type Dialer struct {
	Faults *Faults

	mu    sync.Mutex
	conns []*Conn
}

// Dial connects to addr within timeout and wraps the connection.
func (d *Dialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if d.Faults == nil {
		d.Faults = &Faults{}
	}
	wc := WrapConn(c, d.Faults)
	d.mu.Lock()
	d.conns = append(d.conns, wc)
	d.mu.Unlock()
	return wc, nil
}

// Conns returns every connection dialed so far.
func (d *Dialer) Conns() []*Conn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*Conn(nil), d.conns...)
}

// Settle polls until the process goroutine count drops to at most
// target or timeout elapses, and returns the final count. Tests use it
// to assert fault handling leaks no goroutines: capture the count
// before the scenario, tear everything down, then Settle back to it.
func Settle(target int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		runtime.Gosched()
		n := runtime.NumGoroutine()
		if n <= target || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}
