// Package fault provides injectable failure layers for the two
// boundaries where EdiFlow's durability and availability claims are
// actually decided: the filesystem under the storage engine and the
// network under the wire stack.
//
// The filesystem side is an FS interface the storage layer performs all
// of its I/O through. In production it is backed by OS (direct
// passthrough to the os package, including the directory fsyncs POSIX
// requires to make renames and creates durable). In tests it can be a
// MemFS — an in-memory filesystem that models the OS page cache by
// keeping a volatile and a durable view of every file, so a simulated
// power failure (PowerCycle) discards exactly the writes that were never
// fsynced — optionally wrapped in an InjectFS, which counts every
// mutating operation and can crash, short-write, or error (ENOSPC/EIO)
// at any one of them. Enumerating those operation indices yields a
// crash-point matrix: the store is killed at every point of the
// WAL-append → fsync → checkpoint pipeline and reopened, and recovery is
// checked against the invariant "every acknowledged commit is present
// exactly once, no unacknowledged commit is visible".
//
// The network side wraps net.Conn/net.Listener with a shared mutable
// fault plan (delay, drop, black-hole, reset-after-N-bytes) so client
// pool and notifier behavior under partitions and resets is testable
// in-process.
package fault

import (
	"io"
	"os"
)

// File is the subset of *os.File the storage layer writes through.
type File interface {
	io.Reader
	io.Writer
	io.WriterAt
	io.Closer
	// Sync forces written data to stable storage (fsync).
	Sync() error
}

// FS abstracts every filesystem operation the storage layer performs.
// *All* of the store's I/O goes through one of these methods, so an
// injecting implementation sees — and can fail — every point at which a
// real machine could lose power or return an I/O error.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// Create truncates (or creates) a file for writing.
	Create(name string) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// OpenFile is the general open (append/truncate/create flags).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making renames, creates, and removes
	// inside it durable. Without it a power loss can revert a completed
	// rename to the old directory entry.
	SyncDir(dir string) error
}

// OS is the production FS: direct passthrough to the os package.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS by fsyncing the directory file descriptor.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
