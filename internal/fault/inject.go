package fault

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
)

// Op classifies one filesystem operation for injection rules and traces.
type Op string

// Operation classes. Mutating operations (everything except OpOpen and
// OpRead) advance the step counter and are eligible crash points.
const (
	OpMkdir    Op = "mkdir"
	OpCreate   Op = "create"
	OpOpenFile Op = "openfile"
	OpOpen     Op = "open" // read-only open
	OpRead     Op = "read" // ReadFile / handle reads
	OpWrite    Op = "write"
	OpWriteAt  Op = "writeat"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpTruncate Op = "truncate"
	OpRemove   Op = "remove"
	OpSyncDir  Op = "syncdir"
)

// ErrCrashed is returned by every operation on an InjectFS after its
// crash point fired: the machine is "off" until the test power-cycles
// the underlying MemFS and builds a fresh InjectFS.
var ErrCrashed = errors.New("fault: simulated crash")

// Point is one recorded mutating operation: the N-th step was Op on Path.
type Point struct {
	N    int
	Op   Op
	Path string
}

func (p Point) String() string { return fmt.Sprintf("#%d %s(%s)", p.N, p.Op, p.Path) }

// InjectFS wraps an FS, counting every mutating operation and optionally
// failing one of them. Two failure shapes:
//
//   - CrashAfter(n): the n-th mutating operation (1-based) fails with
//     ErrCrashed without being applied, and so does everything after it —
//     a power failure at that exact point. With ShortWrites enabled, a
//     crashing Write first lands a prefix of its bytes (a torn write).
//   - FailAt / FailNext: one operation returns an injected error
//     (ENOSPC, EIO, ...) without being applied; the filesystem stays
//     alive, modeling a transient I/O failure the caller must survive.
type InjectFS struct {
	inner FS

	mu          sync.Mutex
	step        int
	crashAt     int
	crashed     bool
	shortWrites bool
	failAt      int
	failNextOp  Op
	failPathSub string
	failErr     error
	trace       []Point
}

// NewInject wraps inner (typically a MemFS) in an injection layer.
func NewInject(inner FS) *InjectFS { return &InjectFS{inner: inner} }

// CrashAfter arms the crash point: mutating operation number n (1-based)
// and everything after it fail with ErrCrashed. 0 disarms.
func (f *InjectFS) CrashAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// ShortWrites makes a crashing Write land the first half of its payload
// before failing, modeling a torn write at the crash point.
func (f *InjectFS) ShortWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWrites = on
}

// FailAt makes mutating operation number n (1-based) return err once,
// without crashing the filesystem.
func (f *InjectFS) FailAt(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = n
	f.failErr = err
}

// FailNext makes the next mutating operation of class op whose path
// contains pathSub return err once, without crashing the filesystem.
func (f *InjectFS) FailNext(op Op, pathSub string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNextOp = op
	f.failPathSub = pathSub
	f.failErr = err
}

// Steps returns how many mutating operations have run (or been refused
// at the crash point) so far.
func (f *InjectFS) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Trace returns the recorded mutating operations in order.
func (f *InjectFS) Trace() []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Point(nil), f.trace...)
}

// Crashed reports whether the crash point has fired.
func (f *InjectFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// enter gates one operation. For mutating ops it advances the step
// counter and applies the armed rules; for reads it only honors an
// already-fired crash. The returned short flag (only ever true for
// writes with ShortWrites armed) asks the caller to land half the
// payload before reporting the error.
func (f *InjectFS) enter(op Op, path string) (short bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	if op == OpOpen || op == OpRead {
		return false, nil
	}
	f.step++
	f.trace = append(f.trace, Point{N: f.step, Op: op, Path: path})
	if f.crashAt > 0 && f.step >= f.crashAt {
		f.crashed = true
		return f.shortWrites && (op == OpWrite || op == OpWriteAt), ErrCrashed
	}
	if f.failErr != nil {
		if f.failAt > 0 && f.step == f.failAt {
			err := f.failErr
			f.failAt, f.failErr = 0, nil
			return false, err
		}
		if f.failNextOp == op && strings.Contains(path, f.failPathSub) {
			err := f.failErr
			f.failNextOp, f.failPathSub, f.failErr = "", "", nil
			return false, err
		}
	}
	return false, nil
}

// MkdirAll implements FS.
func (f *InjectFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.enter(OpMkdir, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// Create implements FS.
func (f *InjectFS) Create(name string) (File, error) {
	if _, err := f.enter(OpCreate, name); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, inner: file, name: name}, nil
}

// Open implements FS.
func (f *InjectFS) Open(name string) (File, error) {
	if _, err := f.enter(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, inner: file, name: name, readOnly: true}, nil
}

// OpenFile implements FS.
func (f *InjectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpenFile
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) == 0 {
		op = OpOpen
	}
	if _, err := f.enter(op, name); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, inner: file, name: name, readOnly: op == OpOpen}, nil
}

// ReadFile implements FS.
func (f *InjectFS) ReadFile(name string) ([]byte, error) {
	if _, err := f.enter(OpRead, name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

// Rename implements FS.
func (f *InjectFS) Rename(oldpath, newpath string) error {
	if _, err := f.enter(OpRename, oldpath+"->"+newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Truncate implements FS.
func (f *InjectFS) Truncate(name string, size int64) error {
	if _, err := f.enter(OpTruncate, name); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// Remove implements FS.
func (f *InjectFS) Remove(name string) error {
	if _, err := f.enter(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// SyncDir implements FS.
func (f *InjectFS) SyncDir(dir string) error {
	if _, err := f.enter(OpSyncDir, dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// injectFile routes handle operations through the injection gate.
type injectFile struct {
	fs       *InjectFS
	inner    File
	name     string
	readOnly bool
}

func (h *injectFile) Write(p []byte) (int, error) {
	short, err := h.fs.enter(OpWrite, h.name)
	if err != nil {
		if short && len(p) > 1 {
			n, _ := h.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return h.inner.Write(p)
}

func (h *injectFile) WriteAt(p []byte, off int64) (int, error) {
	short, err := h.fs.enter(OpWriteAt, h.name)
	if err != nil {
		if short && len(p) > 1 {
			n, _ := h.inner.WriteAt(p[:len(p)/2], off)
			return n, err
		}
		return 0, err
	}
	return h.inner.WriteAt(p, off)
}

func (h *injectFile) Read(p []byte) (int, error) {
	if _, err := h.fs.enter(OpRead, h.name); err != nil {
		return 0, err
	}
	return h.inner.Read(p)
}

func (h *injectFile) Sync() error {
	if _, err := h.fs.enter(OpSync, h.name); err != nil {
		return err
	}
	return h.inner.Sync()
}

func (h *injectFile) Close() error {
	// Closing a read handle is not a crash point: it cannot lose data.
	op := OpClose
	if h.readOnly {
		op = OpRead
	}
	if _, err := h.fs.enter(op, h.name); err != nil {
		return err
	}
	return h.inner.Close()
}
