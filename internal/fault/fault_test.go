package fault

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"
)

// ---------------------------------------------------------------- MemFS

func TestMemFSUnsyncedFileLostAtPowerCycle(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	f.Close()
	m.PowerCycle()
	if m.Exists("a") {
		t.Fatal("file with no fsync and no dir fsync survived power cycle")
	}
}

func TestMemFSFsyncWithoutSyncDirStillLosesName(t *testing.T) {
	// The rename-durability trap: fsyncing content does not persist the
	// directory entry pointing at it.
	m := NewMemFS()
	f, _ := m.Create("a")
	f.Write([]byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m.PowerCycle()
	if m.Exists("a") {
		t.Fatal("file whose directory entry was never synced survived power cycle")
	}
}

func TestMemFSSyncPlusSyncDirIsDurable(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a")
	f.Write([]byte("hello"))
	f.Sync()
	f.Close()
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	m.PowerCycle()
	got, err := m.ReadFile("a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("durable file lost: %q, %v", got, err)
	}
}

func TestMemFSSyncDirDoesNotSyncContent(t *testing.T) {
	// SyncDir persists names, not bytes: unsynced content is still lost.
	m := NewMemFS()
	f, _ := m.Create("a")
	f.Write([]byte("hello"))
	f.Close()
	m.SyncDir(".")
	m.PowerCycle()
	got, err := m.ReadFile("a")
	if err != nil {
		t.Fatalf("name should survive: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("unsynced content survived: %q", got)
	}
}

func TestMemFSRenameRevertsWithoutSyncDir(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a")
	f.Write([]byte("v1"))
	f.Sync()
	f.Close()
	m.SyncDir(".")
	if err := m.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("a") || !m.Exists("b") {
		t.Fatal("rename not visible in live view")
	}
	m.PowerCycle()
	if m.Exists("b") {
		t.Fatal("un-fsynced rename survived power cycle")
	}
	got, err := m.ReadFile("a")
	if err != nil || string(got) != "v1" {
		t.Fatalf("old name lost: %q, %v", got, err)
	}
}

func TestMemFSTruncateRevertsWithoutSync(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a")
	f.Write([]byte("hello"))
	f.Sync()
	f.Close()
	m.SyncDir(".")
	if err := m.Truncate("a", 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.ReadFile("a"); string(got) != "he" {
		t.Fatalf("live view after truncate: %q", got)
	}
	m.PowerCycle()
	if got, _ := m.ReadFile("a"); string(got) != "hello" {
		t.Fatalf("un-fsynced truncate survived: %q", got)
	}
}

func TestMemFSNotExistErrors(t *testing.T) {
	m := NewMemFS()
	if _, err := m.Open("missing"); !os.IsNotExist(err) {
		t.Fatalf("Open: %v", err)
	}
	if _, err := m.ReadFile("missing"); !os.IsNotExist(err) {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := m.Rename("missing", "x"); !os.IsNotExist(err) {
		t.Fatalf("Rename: %v", err)
	}
}

func TestMemFSOldHandleDetachedAfterPowerCycle(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a")
	f.Write([]byte("before"))
	f.Sync()
	m.SyncDir(".")
	m.PowerCycle()
	// The pre-cycle handle writes into a detached inode.
	f.Write([]byte("AFTER!"))
	f.Sync()
	if got, _ := m.ReadFile("a"); string(got) != "before" {
		t.Fatalf("write through stale handle reached the filesystem: %q", got)
	}
}

// -------------------------------------------------------------- InjectFS

func TestInjectCrashAfter(t *testing.T) {
	m := NewMemFS()
	inj := NewInject(m)
	f, err := inj.Create("a") // step 1
	if err != nil {
		t.Fatal(err)
	}
	inj.CrashAfter(2)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) { // step 2: crash
		t.Fatalf("write at crash point: %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() false after crash point fired")
	}
	// Everything after the crash fails, including reads.
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if _, err := inj.ReadFile("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if err := inj.SyncDir("."); !errors.Is(err, ErrCrashed) {
		t.Fatalf("syncdir after crash: %v", err)
	}
	// The crashed write never landed.
	m.PowerCycle()
	if m.Exists("a") {
		t.Fatal("un-persisted file survived")
	}
}

func TestInjectTraceAndSteps(t *testing.T) {
	inj := NewInject(NewMemFS())
	f, _ := inj.Create("a")
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	inj.Rename("a", "b")
	inj.SyncDir(".")
	want := []Op{OpCreate, OpWrite, OpSync, OpClose, OpRename, OpSyncDir}
	tr := inj.Trace()
	if inj.Steps() != len(want) || len(tr) != len(want) {
		t.Fatalf("steps=%d trace=%v", inj.Steps(), tr)
	}
	for i, p := range tr {
		if p.Op != want[i] || p.N != i+1 {
			t.Fatalf("trace[%d] = %v, want %v", i, p, want[i])
		}
	}
}

func TestInjectReadsAreNotCrashPoints(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("a")
	f.Write([]byte("x"))
	f.Close()
	inj := NewInject(m)
	before := inj.Steps()
	rf, err := inj.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(rf)
	rf.Close()
	inj.ReadFile("a")
	if inj.Steps() != before {
		t.Fatalf("read path advanced the step counter: %d -> %d", before, inj.Steps())
	}
}

func TestInjectFailNext(t *testing.T) {
	inj := NewInject(NewMemFS())
	f, _ := inj.Create("data.wal")
	inj.FailNext(OpWrite, "wal", syscall.ENOSPC)
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected ENOSPC missing: %v", err)
	}
	// One-shot: the next write succeeds and the filesystem is alive.
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("fs dead after one-shot failure: %v", err)
	}
	if inj.Crashed() {
		t.Fatal("FailNext must not crash the filesystem")
	}
}

func TestInjectShortWrite(t *testing.T) {
	m := NewMemFS()
	inj := NewInject(m)
	f, _ := inj.Create("a") // step 1
	inj.ShortWrites(true)
	inj.CrashAfter(2)
	payload := []byte("0123456789")
	if _, err := f.Write(payload); !errors.Is(err, ErrCrashed) {
		t.Fatal("crash point did not fire")
	}
	// Half the payload landed in the volatile view: a torn write.
	got, _ := m.ReadFile("a")
	if len(got) != len(payload)/2 {
		t.Fatalf("torn write landed %d bytes, want %d", len(got), len(payload)/2)
	}
}

// ------------------------------------------------------------- network

// pipePair returns a wrapped client end and the raw server end of an
// in-process TCP connection.
func pipePair(t *testing.T, f *Faults) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cc.Close(); r.c.Close() })
	return WrapConn(cc, f), r.c
}

func TestConnDrop(t *testing.T) {
	f := &Faults{}
	wc, _ := pipePair(t, f)
	f.SetDrop(true)
	if _, err := wc.Write([]byte("x")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("write under drop: %v", err)
	}
	if _, err := wc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("read under drop: %v", err)
	}
	// Healing the fault heals the connection.
	f.SetDrop(false)
	if _, err := wc.Write([]byte("x")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestConnBlackhole(t *testing.T) {
	f := &Faults{}
	wc, srv := pipePair(t, f)
	f.SetBlackhole(true)
	if n, err := wc.Write([]byte("swallowed")); n != 9 || err != nil {
		t.Fatalf("blackhole write: %d, %v", n, err)
	}
	// Nothing reached the peer.
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, _ := srv.Read(make([]byte, 16)); n != 0 {
		t.Fatalf("blackholed bytes reached the peer: %d", n)
	}
	// A blackholed read blocks until the conn is closed.
	done := make(chan error, 1)
	go func() {
		_, err := wc.Read(make([]byte, 1))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blackholed read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	wc.Close()
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("blackholed read after close: %v", err)
	}
}

func TestConnResetAfterBytes(t *testing.T) {
	f := &Faults{}
	wc, srv := pipePair(t, f)
	go io.Copy(io.Discard, srv)
	f.SetResetAfterBytes(4)
	if _, err := wc.Write([]byte("1234")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := wc.Write([]byte("5")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write past budget: %v", err)
	}
	if wc.CloseCalls() == 0 {
		t.Fatal("reset did not close the connection")
	}
}

func TestConnCloseCounting(t *testing.T) {
	wc, _ := pipePair(t, nil)
	wc.Close()
	wc.Close()
	if got := wc.CloseCalls(); got != 2 {
		t.Fatalf("CloseCalls = %d, want 2", got)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	f := &Faults{}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(raw, f)
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			go io.Copy(io.Discard, c)
		}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	deadline := time.Now().Add(time.Second)
	for len(ln.Conns()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(ln.Conns()); got != 1 {
		t.Fatalf("accepted conns retained: %d", got)
	}
}
