package fault

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// MemFS is an in-memory filesystem that models the durability behavior
// of a real OS under power failure:
//
//   - Every file has a volatile view (what the page cache holds, what
//     readers see) and a durable view (what is on the platter). Writes
//     land in the volatile view; File.Sync copies it to the durable view.
//   - The directory itself has the same split: Create, Rename, Truncate
//     and Remove update the volatile name→inode mapping immediately, but
//     the durable mapping only changes at SyncDir. A file that was
//     written and fsynced but whose directory entry was never synced is
//     LOST at power failure — the classic rename-durability trap.
//   - PowerCycle simulates pulling the plug: the volatile state is
//     replaced by the durable state, and everything un-fsynced is gone.
//
// This is the conservative (adversarial) model: real journaling
// filesystems persist some metadata earlier than required, but code that
// recovers correctly under MemFS recovers correctly on anything POSIX.
type MemFS struct {
	mu   sync.Mutex
	vdir map[string]*memInode // volatile directory view (current truth)
	ddir map[string]*memInode // durable directory view (survives PowerCycle)
}

type memInode struct {
	volatile []byte
	durable  []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{vdir: map[string]*memInode{}, ddir: map[string]*memInode{}}
}

// PowerCycle simulates a power failure and reboot: all volatile state
// (un-fsynced file contents, un-SyncDir'd directory operations) is
// discarded. Handles open before the cycle keep writing into detached
// inodes and can no longer affect the filesystem.
func (m *MemFS) PowerCycle() {
	m.mu.Lock()
	defer m.mu.Unlock()
	nv := make(map[string]*memInode, len(m.ddir))
	nd := make(map[string]*memInode, len(m.ddir))
	for name, ino := range m.ddir {
		fresh := &memInode{
			volatile: append([]byte(nil), ino.durable...),
			durable:  append([]byte(nil), ino.durable...),
		}
		nv[name] = fresh
		nd[name] = fresh
	}
	m.vdir = nv
	m.ddir = nd
}

// Exists reports whether name is present in the volatile (live) view.
func (m *MemFS) Exists(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.vdir[filepath.Clean(name)]
	return ok
}

// DurableLen returns the durable byte length of name, or -1 if the name
// would not survive a power cycle.
func (m *MemFS) DurableLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.ddir[filepath.Clean(name)]
	if !ok {
		return -1
	}
	return len(ino.durable)
}

func notExist(op, name string) error {
	return &os.PathError{Op: op, Path: name, Err: os.ErrNotExist}
}

// MkdirAll implements FS. Directories are implicit in MemFS (the store
// uses a single data directory); the call always succeeds.
func (m *MemFS) MkdirAll(string, os.FileMode) error { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	return m.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	return m.OpenFile(name, os.O_RDONLY, 0)
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.vdir[name]
	switch {
	case ok && flag&os.O_TRUNC != 0:
		// Truncation is a volatile act: the durable content of the old
		// inode comes back at PowerCycle unless the new content is
		// fsynced over it. Modeled by giving the name a fresh inode that
		// inherits the old durable bytes.
		ino = &memInode{durable: append([]byte(nil), ino.durable...)}
		m.vdir[name] = ino
		if _, dok := m.ddir[name]; dok {
			m.ddir[name] = ino
		}
	case !ok && flag&os.O_CREATE != 0:
		ino = &memInode{}
		m.vdir[name] = ino
	case !ok:
		return nil, notExist("open", name)
	}
	return &memFile{fs: m, ino: ino, name: name, appendMode: flag&os.O_APPEND != 0,
		readOnly: flag&(os.O_WRONLY|os.O_RDWR) == 0}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.vdir[name]
	if !ok {
		return nil, notExist("open", name)
	}
	return append([]byte(nil), ino.volatile...), nil
}

// Rename implements FS. The new name is volatile until SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.vdir[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	m.vdir[newpath] = ino
	delete(m.vdir, oldpath)
	return nil
}

// Truncate implements FS. The durable length only changes at Sync.
func (m *MemFS) Truncate(name string, size int64) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.vdir[name]
	if !ok {
		return notExist("truncate", name)
	}
	if int(size) > len(ino.volatile) {
		ino.volatile = append(ino.volatile, make([]byte, int(size)-len(ino.volatile))...)
	} else {
		ino.volatile = ino.volatile[:size]
	}
	return nil
}

// Remove implements FS. Durable removal requires SyncDir.
func (m *MemFS) Remove(name string) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.vdir[name]; !ok {
		return notExist("remove", name)
	}
	delete(m.vdir, name)
	return nil
}

// SyncDir implements FS: the durable directory view catches up with the
// volatile one. (MemFS models a single directory, so the argument is
// not consulted.) Note this persists which names exist and which inodes
// they point at — not file contents, which remain governed by Sync.
func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	nd := make(map[string]*memInode, len(m.vdir))
	for name, ino := range m.vdir {
		nd[name] = ino
	}
	m.ddir = nd
	return nil
}

// memFile is one open handle on a MemFS inode.
type memFile struct {
	fs         *MemFS
	ino        *memInode
	name       string
	pos        int
	appendMode bool
	readOnly   bool
	closed     bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.readOnly {
		return 0, fmt.Errorf("fault: write on read-only handle %s", f.name)
	}
	if f.appendMode {
		f.pos = len(f.ino.volatile)
	}
	f.ino.volatile = writeAt(f.ino.volatile, p, f.pos)
	f.pos += len(p)
	return len(p), nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.readOnly {
		return 0, fmt.Errorf("fault: write on read-only handle %s", f.name)
	}
	f.ino.volatile = writeAt(f.ino.volatile, p, int(off))
	return len(p), nil
}

func writeAt(dst, p []byte, off int) []byte {
	if need := off + len(p); need > len(dst) {
		dst = append(dst, make([]byte, need-len(dst))...)
	}
	copy(dst[off:], p)
	return dst
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.pos >= len(f.ino.volatile) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.volatile[f.pos:])
	f.pos += n
	return n, nil
}

// Sync implements File: the inode's volatile content becomes durable.
// Like a real fsync it does NOT persist the directory entry — a fresh
// file still needs SyncDir to survive power loss.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.ino.durable = append([]byte(nil), f.ino.volatile...)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}
