package ivm_test

import (
	"testing"

	"strings"

	"ediflow/internal/engine"
	"ediflow/internal/ivm"
	"ediflow/internal/sqltext"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// newEval builds a real engine as the Evaluator (the intended wiring).
func newEval(t *testing.T, ddl ...string) *engine.Engine {
	t.Helper()
	st, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	for _, s := range ddl {
		if _, err := e.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func parseSel(t *testing.T, q string) *sqltext.Select {
	t.Helper()
	st, err := sqltext.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqltext.Select)
}

func TestClassification(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)", "CREATE TABLE s (k STRING, w INT)")
	cases := []struct {
		q     string
		class ivm.Class
		err   bool
	}{
		{"SELECT k, v FROM t WHERE v > 1", ivm.ClassDeltaQuery, false},
		{"SELECT t.k, s.w FROM t JOIN s ON t.k = s.k", ivm.ClassDeltaQuery, false},
		{"SELECT k, COUNT(*) FROM t GROUP BY k", ivm.ClassAggregate, false},
		{"SELECT COUNT(*) FROM t", ivm.ClassAggregate, false},
		{"SELECT k FROM t ORDER BY k", 0, true},
		{"SELECT k FROM t LIMIT 3", 0, true},
		{"SELECT DISTINCT k FROM t", 0, true},
		{"SELECT a.k FROM t a, t b", 0, true},                                     // self join
		{"SELECT t.k, COUNT(*) FROM t JOIN s ON t.k = s.k GROUP BY t.k", 0, true}, // agg over join
		{"SELECT k, COUNT(DISTINCT v) FROM t GROUP BY k", 0, true},
		{"SELECT v, COUNT(*) FROM t GROUP BY k", 0, true}, // output not grouped
		{"SELECT x.k FROM (SELECT k FROM t) AS x", 0, true},
		{"SELECT a.k FROM t a LEFT JOIN s b ON a.k = b.k", 0, true},
	}
	for _, c := range cases {
		m, err := ivm.New("v", parseSel(t, c.q), e)
		if c.err {
			if err == nil {
				t.Errorf("%q should be rejected, got class %v", c.q, m.Class())
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.q, err)
			continue
		}
		if m.Class() != c.class {
			t.Errorf("%q: class %v, want %v", c.q, m.Class(), c.class)
		}
	}
}

func TestDependsOnAndTables(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)", "CREATE TABLE s (k STRING, w INT)")
	m, err := ivm.New("v", parseSel(t, "SELECT t.k FROM t JOIN s ON t.k = s.k"), e)
	if err != nil {
		t.Fatal(err)
	}
	if !m.DependsOn("T") || !m.DependsOn("s") || m.DependsOn("other") {
		t.Error("DependsOn")
	}
	if len(m.Tables()) != 2 {
		t.Errorf("%v", m.Tables())
	}
}

func TestDeltaQueryMaintainer(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	e.Exec("INSERT INTO t VALUES ('a', 5), ('b', 50)")
	m, err := ivm.New("big", parseSel(t, "SELECT k, v FROM t WHERE v > 10"), e)
	if err != nil {
		t.Fatal(err)
	}
	init, err := m.Init()
	if err != nil || len(init) != 1 || init[0][0].Str() != "b" {
		t.Fatalf("%v %v", init, err)
	}
	// Insert delta: only matching rows come back as adds.
	adds, removes, err := m.Delta("t", []types.Row{
		{types.NewString("c"), types.NewInt(99)},
		{types.NewString("d"), types.NewInt(1)},
	}, nil)
	if err != nil || len(adds) != 1 || len(removes) != 0 {
		t.Fatalf("%v %v %v", adds, removes, err)
	}
	if adds[0][0].Str() != "c" {
		t.Fatalf("%v", adds)
	}
	// Delete delta.
	adds, removes, err = m.Delta("t", nil, []types.Row{{types.NewString("b"), types.NewInt(50)}})
	if err != nil || len(adds) != 0 || len(removes) != 1 {
		t.Fatalf("%v %v %v", adds, removes, err)
	}
	// Unrelated table: no-op.
	adds, removes, err = m.Delta("other", []types.Row{{types.NewInt(1)}}, nil)
	if err != nil || adds != nil || removes != nil {
		t.Fatalf("%v %v %v", adds, removes, err)
	}
}

func TestAggregateMaintainerCounting(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	e.Exec("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3)")
	m, err := ivm.New("agg", parseSel(t, "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo FROM t GROUP BY k"), e)
	if err != nil {
		t.Fatal(err)
	}
	init, err := m.Init()
	if err != nil || len(init) != 2 {
		t.Fatalf("%v %v", init, err)
	}

	// Insert into an existing group: emits remove(old)+add(new).
	e.Exec("INSERT INTO t VALUES ('a', 0)") // keep base in sync for MIN recompute
	adds, removes, err := m.Delta("t", []types.Row{{types.NewString("a"), types.NewInt(0)}}, nil)
	if err != nil || len(adds) != 1 || len(removes) != 1 {
		t.Fatalf("%v %v %v", adds, removes, err)
	}
	if adds[0][1].Int() != 3 || adds[0][2].Int() != 3 || adds[0][3].Int() != 0 {
		t.Fatalf("group a after insert: %v", adds[0])
	}

	// Delete the MIN: forces the recompute path against the base table.
	e.Exec("DELETE FROM t WHERE k = 'a' AND v = 0")
	adds, removes, err = m.Delta("t", nil, []types.Row{{types.NewString("a"), types.NewInt(0)}})
	if err != nil || len(adds) != 1 || len(removes) != 1 {
		t.Fatalf("%v %v %v", adds, removes, err)
	}
	if adds[0][3].Int() != 1 {
		t.Fatalf("MIN after extreme delete: %v", adds[0])
	}

	// Delete the whole group: emits a bare remove.
	e.Exec("DELETE FROM t WHERE k = 'b'")
	adds, removes, err = m.Delta("t", nil, []types.Row{{types.NewString("b"), types.NewInt(3)}})
	if err != nil || len(adds) != 0 || len(removes) != 1 {
		t.Fatalf("%v %v %v", adds, removes, err)
	}

	// Deleting from an unknown group is a state error.
	if _, _, err := m.Delta("t", nil, []types.Row{{types.NewString("ghost"), types.NewInt(1)}}); err == nil {
		t.Error("unknown-group delete must error")
	}
}

func TestAggregateWhereFilter(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	m, err := ivm.New("agg", parseSel(t, "SELECT k, COUNT(*) AS n FROM t WHERE v >= 10 GROUP BY k"), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(); err != nil {
		t.Fatal(err)
	}
	// A filtered-out row changes nothing.
	adds, removes, err := m.Delta("t", []types.Row{{types.NewString("a"), types.NewInt(1)}}, nil)
	if err != nil || len(adds) != 0 || len(removes) != 0 {
		t.Fatalf("%v %v %v", adds, removes, err)
	}
	adds, _, err = m.Delta("t", []types.Row{{types.NewString("a"), types.NewInt(15)}}, nil)
	if err != nil || len(adds) != 1 || adds[0][1].Int() != 1 {
		t.Fatalf("%v %v", adds, err)
	}
}

func TestAggregateAvgAndNulls(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	m, err := ivm.New("agg", parseSel(t, "SELECT k, AVG(v) AS mean, COUNT(v) AS cnt FROM t GROUP BY k"), e)
	if err != nil {
		t.Fatal(err)
	}
	m.Init()
	adds, _, err := m.Delta("t", []types.Row{
		{types.NewString("a"), types.NewInt(10)},
		{types.NewString("a"), types.Null},
		{types.NewString("a"), types.NewInt(20)},
	}, nil)
	if err != nil || len(adds) != 1 {
		t.Fatalf("%v %v", adds, err)
	}
	if adds[0][1].Float() != 15.0 || adds[0][2].Int() != 2 {
		t.Fatalf("AVG/COUNT with NULLs: %v", adds[0])
	}
}

// Regression: WHERE evaluation errors must abort maintenance (mirroring
// the engine's statement semantics), not silently drop the row.
func TestWhereErrorPropagates(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	m, err := ivm.New("w", parseSel(t, "SELECT k, COUNT(*) AS n FROM t WHERE k GROUP BY k"), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(); err != nil {
		t.Fatal(err)
	}
	// 'x' does not coerce to BOOL: the delta must fail loudly.
	_, _, err = m.Delta("t", []types.Row{{types.NewString("x"), types.NewInt(1)}}, nil)
	if err == nil {
		t.Fatal("WHERE coercion error was swallowed")
	}
	if !strings.Contains(err.Error(), "WHERE") {
		t.Fatalf("error should identify the WHERE clause: %v", err)
	}
	// NULL still just excludes the row, as in the engine.
	adds, removes, err := m.Delta("t", []types.Row{{types.Null, types.NewInt(1)}}, nil)
	if err != nil || len(adds) != 0 || len(removes) != 0 {
		t.Fatalf("%v %v %v", adds, removes, err)
	}
}

// Regression: a row inserted and deleted within one coalesced batch must
// net out instead of tripping "delete from unknown group".
func TestBatchInsertDeleteNetsOut(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	m, err := ivm.New("agg", parseSel(t, "SELECT k, COUNT(*) AS n FROM t GROUP BY k"), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(); err != nil {
		t.Fatal(err)
	}
	row := types.Row{types.NewString("g"), types.NewInt(1)}
	adds, removes, err := m.Delta("t", []types.Row{row}, []types.Row{row})
	if err != nil {
		t.Fatalf("insert+delete of same row in one batch: %v", err)
	}
	if len(adds) != 0 || len(removes) != 0 {
		t.Fatalf("net effect must be empty: %v %v", adds, removes)
	}
	// Same for insert→update→delete: both sides carry both versions.
	v1 := types.Row{types.NewString("h"), types.NewInt(70)}
	v2 := types.Row{types.NewString("h"), types.NewInt(71)}
	adds, removes, err = m.Delta("t", []types.Row{v1, v2}, []types.Row{v1, v2})
	if err != nil || len(adds) != 0 || len(removes) != 0 {
		t.Fatalf("insert→update→delete must net to zero: %v %v %v", adds, removes, err)
	}
}

// Regression: deletes used to fold in before inserts, so a batch whose
// delete lands in a group created by its own (non-cancelling) insert
// erred out.
func TestBatchInsertBeforeDelete(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	m, err := ivm.New("agg", parseSel(t, "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k"), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(); err != nil {
		t.Fatal(err)
	}
	adds, removes, err := m.Delta("t",
		[]types.Row{
			{types.NewString("g"), types.NewInt(1)},
			{types.NewString("g"), types.NewInt(2)},
			{types.NewString("g"), types.NewInt(3)},
		},
		[]types.Row{{types.NewString("g"), types.NewInt(2)}})
	if err != nil {
		t.Fatalf("delete from batch-created group: %v", err)
	}
	if len(adds) != 1 || len(removes) != 0 {
		t.Fatalf("%v %v", adds, removes)
	}
	if adds[0][1].Int() != 2 || adds[0][2].Int() != 4 {
		t.Fatalf("group after net batch: %v", adds[0])
	}
}

// Regression: types.Compare errors in the MIN/MAX insert path were
// silently ignored, corrupting extremes on mixed-kind input.
func TestMinMaxCompareErrorSurfaces(t *testing.T) {
	e := newEval(t, "CREATE TABLE t (k STRING, v INT)")
	m, err := ivm.New("agg", parseSel(t, "SELECT k, MIN(v) AS lo FROM t GROUP BY k"), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Delta("t", []types.Row{{types.NewString("a"), types.NewInt(5)}}, nil); err != nil {
		t.Fatal(err)
	}
	// A STRING where the established extreme is INT cannot be ordered.
	_, _, err = m.Delta("t", []types.Row{{types.NewString("a"), types.NewString("zz")}}, nil)
	if err == nil {
		t.Fatal("incomparable MIN argument must error, not corrupt the extreme")
	}
	// The NULL fast paths stay intact: NULL args are skipped, and NULL
	// extremes never reach Compare.
	adds, _, err := m.Delta("t", []types.Row{{types.NewString("a"), types.Null}}, nil)
	if err != nil || len(adds) != 0 {
		t.Fatalf("%v %v", adds, err)
	}
}

func TestNetDelta(t *testing.T) {
	r := func(vals ...int64) types.Row {
		out := make(types.Row, len(vals))
		for i, v := range vals {
			out[i] = types.NewInt(v)
		}
		return out
	}
	ins := []types.Row{r(1), r(2), r(2), r(3)}
	del := []types.Row{r(2), r(4)}
	netIns, netDel, cancelled := ivm.NetDelta(ins, del)
	if cancelled != 1 {
		t.Fatalf("cancelled: %d", cancelled)
	}
	// One of the duplicate 2s cancels; the other survives.
	if len(netIns) != 3 || len(netDel) != 1 || netDel[0][0].Int() != 4 {
		t.Fatalf("%v %v", netIns, netDel)
	}
	// Disjoint multisets come back untouched (fast path).
	netIns, netDel, cancelled = ivm.NetDelta(ins[:1], del[1:])
	if cancelled != 0 || len(netIns) != 1 || len(netDel) != 1 {
		t.Fatalf("%v %v %d", netIns, netDel, cancelled)
	}
	// Full annihilation.
	_, _, cancelled = ivm.NetDelta([]types.Row{r(7)}, []types.Row{r(7)})
	if cancelled != 1 {
		t.Fatalf("cancelled: %d", cancelled)
	}
}
