// Package ivm implements incremental maintenance of materialized views,
// the mechanism §VI-B of the paper relies on to "propagate an update to a
// query expression ... using well-known incremental view maintenance
// algorithms" [Gupta, Mumick, Subrahmanian].
//
// Two view classes are maintained incrementally:
//
//   - delta-query views (select-project and joins without aggregation):
//     the insert delta is the view query evaluated with the changed table
//     restricted to the inserted rows; symmetrically for deletes. Each
//     base table may appear at most once in the FROM clause.
//
//   - aggregate views (single-table GROUP BY with COUNT/SUM/AVG/MIN/MAX):
//     maintained with the counting algorithm — per-group counts and sums
//     support deletes without recomputation; MIN/MAX recompute only the
//     affected group when the current extreme is deleted.
//
// The package is engine-agnostic: the engine supplies an Evaluator.
package ivm

import (
	"fmt"
	"strings"

	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

// Evaluator is the query-evaluation capability the maintainer borrows
// from the engine.
type Evaluator interface {
	// EvalWith evaluates sel, with each table named in overrides replaced
	// by the given rows (user columns only, in schema order). A nil map
	// evaluates against current table contents.
	EvalWith(sel *sqltext.Select, overrides map[string][]types.Row) ([]types.Row, error)
}

// Class describes how a view is maintained.
type Class int

// Maintenance classes.
const (
	ClassDeltaQuery Class = iota // SP / join views, delta substitution
	ClassAggregate               // single-table GROUP BY, counting algorithm
)

func (c Class) String() string {
	if c == ClassAggregate {
		return "aggregate"
	}
	return "delta-query"
}

// aggSpec is one aggregate output of an aggregate-class view.
type aggSpec struct {
	kind string       // COUNT*, COUNT, SUM, AVG, MIN, MAX
	arg  sqltext.Expr // nil for COUNT(*)
}

// groupState is the counting-algorithm state of one group.
type groupState struct {
	key    []types.Value
	count  int64 // number of contributing base rows
	counts []int64
	sums   []float64
	sumInt []int64
	isInt  []bool
	mins   []types.Value
	maxs   []types.Value
}

// Maintainer incrementally maintains one materialized view.
type Maintainer struct {
	Name  string
	Query *sqltext.Select
	class Class
	ev    Evaluator

	// delta-query state
	baseTables map[string]bool // lower-cased FROM tables

	// aggregate state
	table     string // single FROM table
	groupBy   []sqltext.Expr
	items     []viewItem
	aggs      []aggSpec
	groups    map[string]*groupState
	havingIdx sqltext.Expr
	batchSel  *sqltext.Select // memoized evalBatch query: stable expression pointers keep the engine's compiled-program cache hot
}

// viewItem describes one output column of an aggregate view: either a
// group-by expression (groupPos ≥ 0) or an aggregate (aggPos ≥ 0).
type viewItem struct {
	groupPos int
	aggPos   int
}

// New classifies the view query and returns a maintainer.
func New(name string, q *sqltext.Select, ev Evaluator) (*Maintainer, error) {
	m := &Maintainer{Name: name, Query: q, ev: ev, baseTables: map[string]bool{}}
	if q.From == nil {
		return nil, fmt.Errorf("ivm: view %s has no FROM clause", name)
	}
	if q.OrderBy != nil || q.Limit != nil || q.Offset != nil {
		return nil, fmt.Errorf("ivm: view %s: ORDER BY/LIMIT not allowed in materialized views", name)
	}
	hasAgg := len(q.GroupBy) > 0
	for _, it := range q.Items {
		if !it.Star && sqltext.HasAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		if q.Distinct {
			return nil, fmt.Errorf("ivm: view %s: DISTINCT requires aggregation support; use GROUP BY", name)
		}
		if q.Having != nil {
			return nil, fmt.Errorf("ivm: view %s: HAVING without aggregation", name)
		}
		// Delta-query class: collect base tables, each at most once.
		if err := m.collectTables(q); err != nil {
			return nil, err
		}
		m.class = ClassDeltaQuery
		return m, nil
	}
	// Aggregate class.
	if len(q.Joins) > 0 || q.From.Subquery != nil {
		return nil, fmt.Errorf("ivm: view %s: aggregates over joins are not incrementally maintainable here", name)
	}
	if q.Distinct {
		return nil, fmt.Errorf("ivm: view %s: DISTINCT with aggregates unsupported", name)
	}
	m.class = ClassAggregate
	m.table = strings.ToLower(q.From.Table)
	m.baseTables[m.table] = true
	m.groupBy = q.GroupBy
	m.havingIdx = q.Having
	for _, it := range q.Items {
		if it.Star {
			return nil, fmt.Errorf("ivm: view %s: * not allowed with GROUP BY", name)
		}
		if fc, ok := it.Expr.(*sqltext.FuncCall); ok && sqltext.IsAggregateName(fc.Name) {
			spec, err := specFromCall(fc)
			if err != nil {
				return nil, fmt.Errorf("ivm: view %s: %w", name, err)
			}
			m.items = append(m.items, viewItem{groupPos: -1, aggPos: len(m.aggs)})
			m.aggs = append(m.aggs, spec)
			continue
		}
		pos := -1
		for gi, g := range q.GroupBy {
			if g.String() == it.Expr.String() {
				pos = gi
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("ivm: view %s: output %s is neither a GROUP BY expression nor an aggregate", name, it.Expr.String())
		}
		m.items = append(m.items, viewItem{groupPos: pos, aggPos: -1})
	}
	m.groups = map[string]*groupState{}
	return m, nil
}

func specFromCall(fc *sqltext.FuncCall) (aggSpec, error) {
	name := strings.ToUpper(fc.Name)
	if fc.Distinct {
		return aggSpec{}, fmt.Errorf("DISTINCT aggregates are not incrementally maintainable")
	}
	if fc.Star {
		if name != "COUNT" {
			return aggSpec{}, fmt.Errorf("%s(*) is not valid", name)
		}
		return aggSpec{kind: "COUNT*"}, nil
	}
	if len(fc.Args) != 1 {
		return aggSpec{}, fmt.Errorf("%s takes one argument", name)
	}
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return aggSpec{kind: name, arg: fc.Args[0]}, nil
	}
	return aggSpec{}, fmt.Errorf("unsupported aggregate %s", name)
}

func (m *Maintainer) collectTables(q *sqltext.Select) error {
	add := func(tr sqltext.TableRef) error {
		if tr.Subquery != nil {
			return fmt.Errorf("ivm: view %s: subqueries in FROM are not incrementally maintainable", m.Name)
		}
		k := strings.ToLower(tr.Table)
		if m.baseTables[k] {
			return fmt.Errorf("ivm: view %s: table %s appears more than once (self-join)", m.Name, tr.Table)
		}
		m.baseTables[k] = true
		return nil
	}
	if err := add(*q.From); err != nil {
		return err
	}
	for _, j := range q.Joins {
		if j.Kind == "LEFT" {
			return fmt.Errorf("ivm: view %s: LEFT JOIN views are not incrementally maintainable", m.Name)
		}
		if err := add(j.Right); err != nil {
			return err
		}
	}
	return nil
}

// Class reports the maintenance class.
func (m *Maintainer) Class() Class { return m.class }

// DependsOn reports whether the view reads the given base table.
func (m *Maintainer) DependsOn(table string) bool {
	return m.baseTables[strings.ToLower(table)]
}

// Tables returns the base tables the view depends on.
func (m *Maintainer) Tables() []string {
	var out []string
	for t := range m.baseTables {
		out = append(out, t)
	}
	return out
}

// Init computes the full view contents and primes internal state.
func (m *Maintainer) Init() ([]types.Row, error) {
	if m.class == ClassDeltaQuery {
		return m.ev.EvalWith(m.Query, nil)
	}
	// Aggregate: replay the whole table through the counting machinery so
	// state and output stay consistent by construction.
	m.groups = map[string]*groupState{}
	base := &sqltext.Select{
		Items: []sqltext.SelectItem{{Star: true}},
		From:  &sqltext.TableRef{Table: m.table},
	}
	rows, err := m.ev.EvalWith(base, nil)
	if err != nil {
		return nil, err
	}
	adds, _, err := m.Delta(m.table, rows, nil)
	return adds, err
}

// Delta ingests a change to a base table and returns the rows to add to
// and remove from the materialized contents. Updates are passed as
// (inserted = new rows, deleted = old rows). The two sides may describe a
// whole commit batch: rows inserted and deleted within the same batch are
// cancelled pairwise (multiset semantics) before maintenance, so a row
// that never outlives its batch contributes nothing — and in particular
// cannot trip "delete from unknown group".
func (m *Maintainer) Delta(table string, inserted, deleted []types.Row) (adds, removes []types.Row, err error) {
	if !m.DependsOn(table) {
		return nil, nil, nil
	}
	inserted, deleted, _ = NetDelta(inserted, deleted)
	if m.class == ClassDeltaQuery {
		return m.deltaQuery(table, inserted, deleted)
	}
	return m.deltaAggregate(inserted, deleted)
}

// NetDelta cancels rows that appear in both the inserted and deleted
// multisets of one batch delta: each deleted row annihilates one
// value-equal inserted row. Cancellation is by row value (types.RowKey),
// so in a multiset with duplicates the surviving rows are equal to —
// though not necessarily the same occurrences as — the true net effect.
// Returns the net inserted rows, the net deleted rows (input order
// preserved), and the number of cancelled pairs.
func NetDelta(inserted, deleted []types.Row) (netIns, netDel []types.Row, cancelled int) {
	if len(inserted) == 0 || len(deleted) == 0 {
		return inserted, deleted, 0
	}
	del := make(map[string]int, len(deleted))
	for _, r := range deleted {
		del[types.RowKey(r)]++
	}
	consumed := make(map[string]int)
	netIns = make([]types.Row, 0, len(inserted))
	for _, r := range inserted {
		k := types.RowKey(r)
		if del[k] > 0 {
			del[k]--
			consumed[k]++
			cancelled++
			continue
		}
		netIns = append(netIns, r)
	}
	if cancelled == 0 {
		return inserted, deleted, 0
	}
	netDel = make([]types.Row, 0, len(deleted)-cancelled)
	for _, r := range deleted {
		k := types.RowKey(r)
		if consumed[k] > 0 {
			consumed[k]--
			continue
		}
		netDel = append(netDel, r)
	}
	return netIns, netDel, cancelled
}

func (m *Maintainer) deltaQuery(table string, inserted, deleted []types.Row) (adds, removes []types.Row, err error) {
	if len(inserted) > 0 {
		adds, err = m.ev.EvalWith(m.Query, map[string][]types.Row{table: inserted})
		if err != nil {
			return nil, nil, err
		}
	}
	if len(deleted) > 0 {
		removes, err = m.ev.EvalWith(m.Query, map[string][]types.Row{table: deleted})
		if err != nil {
			return nil, nil, err
		}
	}
	return adds, removes, nil
}

// evalOnRow evaluates expr against a single row of the base table by
// running a one-row query through the Evaluator.
func (m *Maintainer) evalOnRow(expr sqltext.Expr, row types.Row) (types.Value, error) {
	sel := &sqltext.Select{
		Items: []sqltext.SelectItem{{Expr: expr}},
		From:  &sqltext.TableRef{Table: m.table},
	}
	out, err := m.ev.EvalWith(sel, map[string][]types.Row{m.table: {row}})
	if err != nil {
		return types.Null, err
	}
	if len(out) != 1 || len(out[0]) != 1 {
		return types.Null, fmt.Errorf("ivm: expected one value, got %d rows", len(out))
	}
	return out[0][0], nil
}

// evalBatch evaluates the WHERE clause, the group-by keys and every
// aggregate argument for a batch of base rows in a single Evaluator call.
func (m *Maintainer) evalBatch(rows []types.Row) (keep []bool, keys [][]types.Value, argv [][]types.Value, err error) {
	if m.batchSel == nil {
		items := make([]sqltext.SelectItem, 0, 1+len(m.groupBy)+len(m.aggs))
		whereExpr := m.Query.Where
		if whereExpr == nil {
			whereExpr = &sqltext.Literal{Value: types.NewBool(true)}
		}
		items = append(items, sqltext.SelectItem{Expr: whereExpr})
		for _, g := range m.groupBy {
			items = append(items, sqltext.SelectItem{Expr: g})
		}
		for _, a := range m.aggs {
			arg := a.arg
			if arg == nil {
				arg = &sqltext.Literal{Value: types.NewInt(1)}
			}
			items = append(items, sqltext.SelectItem{Expr: arg})
		}
		m.batchSel = &sqltext.Select{Items: items, From: &sqltext.TableRef{Table: m.table}}
	}
	out, err := m.ev.EvalWith(m.batchSel, map[string][]types.Row{m.table: rows})
	if err != nil {
		return nil, nil, nil, err
	}
	if len(out) != len(rows) {
		return nil, nil, nil, fmt.Errorf("ivm: batch evaluation returned %d rows for %d inputs", len(out), len(rows))
	}
	keep = make([]bool, len(rows))
	keys = make([][]types.Value, len(rows))
	argv = make([][]types.Value, len(rows))
	for i, r := range out {
		// Mirror the engine's WHERE semantics: NULL excludes the row, a
		// coercion error aborts the whole maintenance step.
		if r[0].IsNull() {
			keep[i] = false
		} else {
			b, err := r[0].AsBool()
			if err != nil {
				return nil, nil, nil, fmt.Errorf("ivm: view %s: WHERE: %w", m.Name, err)
			}
			keep[i] = b
		}
		keys[i] = r[1 : 1+len(m.groupBy)]
		argv[i] = r[1+len(m.groupBy):]
	}
	return keep, keys, argv, nil
}

func (m *Maintainer) deltaAggregate(inserted, deleted []types.Row) (adds, removes []types.Row, err error) {
	touched := map[string]bool{}
	before := map[string]types.Row{}

	snapshot := func(key string, g *groupState) {
		if touched[key] {
			return
		}
		touched[key] = true
		if g != nil && g.count > 0 {
			if row, ok, err2 := m.emit(g); err2 == nil && ok {
				before[key] = row
			} else if err2 != nil {
				err = err2
			}
		}
	}

	process := func(rows []types.Row, sign int64) error {
		if len(rows) == 0 {
			return nil
		}
		keep, keys, argv, err := m.evalBatch(rows)
		if err != nil {
			return err
		}
		for i := range rows {
			if !keep[i] {
				continue
			}
			key := types.RowKey(keys[i])
			g := m.groups[key]
			snapshot(key, g)
			if g == nil {
				if sign < 0 {
					return fmt.Errorf("ivm: view %s: delete from unknown group", m.Name)
				}
				g = newGroupState(keys[i], len(m.aggs))
				m.groups[key] = g
			}
			if err := m.apply(g, argv[i], sign); err != nil {
				return err
			}
		}
		return nil
	}

	// Inserts fold in before deletes: within one coalesced batch a delete
	// may target a group that only comes into existence through an insert
	// of the same batch. The counting algorithm is sign-commutative for
	// COUNT/SUM/AVG, and the MIN/MAX escape hatch recomputes from the base
	// table (which already holds the batch's final state), so the order is
	// free to pick — delete-first is the one that spuriously errors.
	if err := process(inserted, +1); err != nil {
		return nil, nil, err
	}
	if err := process(deleted, -1); err != nil {
		return nil, nil, err
	}
	if err != nil {
		return nil, nil, err
	}

	// Emit diffs for every touched group.
	for key := range touched {
		g := m.groups[key]
		var after types.Row
		if g != nil && g.count > 0 {
			row, ok, err := m.emit(g)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				after = row
			}
		} else if g != nil {
			delete(m.groups, key)
		}
		b := before[key]
		switch {
		case b == nil && after != nil:
			adds = append(adds, after)
		case b != nil && after == nil:
			removes = append(removes, b)
		case b != nil && after != nil && !types.RowsEqual(b, after):
			removes = append(removes, b)
			adds = append(adds, after)
		}
	}
	return adds, removes, nil
}

func newGroupState(key []types.Value, naggs int) *groupState {
	g := &groupState{
		key:    append([]types.Value(nil), key...),
		counts: make([]int64, naggs),
		sums:   make([]float64, naggs),
		sumInt: make([]int64, naggs),
		isInt:  make([]bool, naggs),
		mins:   make([]types.Value, naggs),
		maxs:   make([]types.Value, naggs),
	}
	for i := range g.isInt {
		g.isInt[i] = true
		g.mins[i] = types.Null
		g.maxs[i] = types.Null
	}
	return g
}

// apply folds one base row's aggregate arguments into the group with the
// given sign (+1 insert, -1 delete).
func (m *Maintainer) apply(g *groupState, args []types.Value, sign int64) error {
	g.count += sign
	if g.count < 0 {
		return fmt.Errorf("ivm: view %s: negative group multiplicity", m.Name)
	}
	for i, spec := range m.aggs {
		v := args[i]
		switch spec.kind {
		case "COUNT*":
			g.counts[i] += sign
		case "COUNT":
			if !v.IsNull() {
				g.counts[i] += sign
			}
		case "SUM", "AVG":
			if v.IsNull() {
				continue
			}
			g.counts[i] += sign
			if v.Kind() == types.KindInt {
				g.sumInt[i] += sign * v.Int()
			} else {
				f, err := v.AsFloat()
				if err != nil {
					return err
				}
				g.isInt[i] = false
				g.sums[i] += float64(sign) * f
			}
		case "MIN", "MAX":
			if v.IsNull() {
				continue
			}
			g.counts[i] += sign
			if sign > 0 {
				if g.mins[i].IsNull() {
					g.mins[i], g.maxs[i] = v, v
					continue
				}
				cMin, err := types.Compare(v, g.mins[i])
				if err != nil {
					return fmt.Errorf("ivm: view %s: %s: %w", m.Name, spec.kind, err)
				}
				if cMin < 0 {
					g.mins[i] = v
				}
				cMax, err := types.Compare(v, g.maxs[i])
				if err != nil {
					return fmt.Errorf("ivm: view %s: %s: %w", m.Name, spec.kind, err)
				}
				if cMax > 0 {
					g.maxs[i] = v
				}
			} else {
				// Deleting the current extreme invalidates it: recompute
				// the group from the base table (counting algorithm's
				// MIN/MAX escape hatch).
				cMin, err := types.Compare(v, g.mins[i])
				if err != nil {
					return fmt.Errorf("ivm: view %s: %s: %w", m.Name, spec.kind, err)
				}
				cMax, err := types.Compare(v, g.maxs[i])
				if err != nil {
					return fmt.Errorf("ivm: view %s: %s: %w", m.Name, spec.kind, err)
				}
				if cMin == 0 || cMax == 0 {
					if err := m.recomputeExtremes(g, i); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// recomputeExtremes re-derives MIN/MAX of aggregate i for group g by
// querying the base table restricted to the group key.
func (m *Maintainer) recomputeExtremes(g *groupState, i int) error {
	where := m.Query.Where
	for gi, expr := range m.groupBy {
		cond := groupKeyPredicate(expr, g.key[gi])
		if where == nil {
			where = cond
		} else {
			where = &sqltext.Binary{Op: "AND", L: where, R: cond}
		}
	}
	sel := &sqltext.Select{
		Items: []sqltext.SelectItem{
			{Expr: &sqltext.FuncCall{Name: "MIN", Args: []sqltext.Expr{m.aggs[i].arg}}},
			{Expr: &sqltext.FuncCall{Name: "MAX", Args: []sqltext.Expr{m.aggs[i].arg}}},
		},
		From:  &sqltext.TableRef{Table: m.table},
		Where: where,
	}
	out, err := m.ev.EvalWith(sel, nil)
	if err != nil {
		return err
	}
	if len(out) == 1 {
		g.mins[i] = out[0][0]
		g.maxs[i] = out[0][1]
	} else {
		g.mins[i] = types.Null
		g.maxs[i] = types.Null
	}
	return nil
}

// groupKeyPredicate builds `expr = key` (or `expr IS NULL` for NULL keys).
func groupKeyPredicate(expr sqltext.Expr, key types.Value) sqltext.Expr {
	if key.IsNull() {
		return &sqltext.IsNull{X: expr}
	}
	return &sqltext.Binary{Op: "=", L: expr, R: &sqltext.Literal{Value: key}}
}

// emit materializes the current output row for a group. ok=false when the
// HAVING clause rejects the group.
func (m *Maintainer) emit(g *groupState) (types.Row, bool, error) {
	aggVal := func(i int) types.Value {
		switch m.aggs[i].kind {
		case "COUNT*", "COUNT":
			return types.NewInt(g.counts[i])
		case "SUM":
			if g.counts[i] == 0 {
				return types.Null
			}
			if g.isInt[i] {
				return types.NewInt(g.sumInt[i])
			}
			return types.NewFloat(g.sums[i] + float64(g.sumInt[i]))
		case "AVG":
			if g.counts[i] == 0 {
				return types.Null
			}
			total := g.sums[i] + float64(g.sumInt[i])
			return types.NewFloat(total / float64(g.counts[i]))
		case "MIN":
			return g.mins[i]
		case "MAX":
			return g.maxs[i]
		}
		return types.Null
	}
	if m.havingIdx != nil {
		ok, err := m.evalHaving(g, aggVal)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	row := make(types.Row, len(m.items))
	for i, it := range m.items {
		if it.groupPos >= 0 {
			row[i] = g.key[it.groupPos]
		} else {
			row[i] = aggVal(it.aggPos)
		}
	}
	return row, true, nil
}

// evalHaving evaluates the HAVING clause by substituting aggregate calls
// and group-by expressions with their computed values, then evaluating the
// residual expression through the Evaluator on a dummy row.
func (m *Maintainer) evalHaving(g *groupState, aggVal func(int) types.Value) (bool, error) {
	subst := substituteAggregates(m.havingIdx, m, g, aggVal)
	sel := &sqltext.Select{Items: []sqltext.SelectItem{{Expr: subst}}}
	out, err := m.ev.EvalWith(sel, nil)
	if err != nil {
		return false, err
	}
	if len(out) != 1 {
		return false, fmt.Errorf("ivm: HAVING evaluation failed")
	}
	b, err := out[0][0].AsBool()
	return err == nil && b, nil
}

// substituteAggregates replaces aggregate calls and group-by expressions
// in e with literals from the group state.
func substituteAggregates(e sqltext.Expr, m *Maintainer, g *groupState, aggVal func(int) types.Value) sqltext.Expr {
	if e == nil {
		return nil
	}
	if fc, ok := e.(*sqltext.FuncCall); ok && sqltext.IsAggregateName(fc.Name) {
		want, err := specFromCall(fc)
		if err == nil {
			for i, spec := range m.aggs {
				if spec.kind == want.kind && exprEq(spec.arg, want.arg) {
					return &sqltext.Literal{Value: aggVal(i)}
				}
			}
		}
		return e
	}
	for gi, expr := range m.groupBy {
		if exprEq(e, expr) {
			return &sqltext.Literal{Value: g.key[gi]}
		}
	}
	switch x := e.(type) {
	case *sqltext.Binary:
		return &sqltext.Binary{Op: x.Op, L: substituteAggregates(x.L, m, g, aggVal), R: substituteAggregates(x.R, m, g, aggVal)}
	case *sqltext.Unary:
		return &sqltext.Unary{Op: x.Op, X: substituteAggregates(x.X, m, g, aggVal)}
	case *sqltext.IsNull:
		return &sqltext.IsNull{X: substituteAggregates(x.X, m, g, aggVal), Not: x.Not}
	}
	return e
}

func exprEq(a, b sqltext.Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}
