package database

import (
	"testing"

	"ediflow/internal/types"
)

func TestOpenInstallsSystemSchema(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	for _, tbl := range []string{
		TableProcess, TableActivity, TableProcessInstance, TableActivityInstance,
		TableUser, TableGroup, TableUserGroup, TableConnectedUser,
		TableNotification, TableVisualization, TableVisComponent, TableVisualAttributes,
	} {
		if _, err := db.Query("SELECT COUNT(*) FROM " + tbl); err != nil {
			t.Errorf("system table %s missing: %v", tbl, err)
		}
	}
}

func TestOpenIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO " + TableGroup + " (name) VALUES ('analysts')"); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n, err := db2.QueryInt("SELECT COUNT(*) FROM " + TableGroup)
	if err != nil || n != 1 {
		t.Fatalf("group lost on reopen: %d, %v", n, err)
	}
}

func TestQueryHelpers(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (a INT, b STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (7, 'x')"); err != nil {
		t.Fatal(err)
	}
	if n, err := db.QueryInt("SELECT a FROM t"); err != nil || n != 7 {
		t.Fatalf("QueryInt: %d, %v", n, err)
	}
	if s, err := db.QueryString("SELECT b FROM t"); err != nil || s != "x" {
		t.Fatalf("QueryString: %q, %v", s, err)
	}
	if _, err := db.QueryValue("SELECT a, b FROM t"); err == nil {
		t.Error("two columns must error")
	}
	if _, err := db.QueryValue("SELECT a FROM t WHERE a = 99"); err == nil {
		t.Error("zero rows must error")
	}
}

func TestInsertRowAndNextID(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE items (id INT PRIMARY KEY, name STRING, qty INT)"); err != nil {
		t.Fatal(err)
	}
	id, err := db.NextID("items")
	if err != nil || id != 1 {
		t.Fatalf("NextID on empty: %d, %v", id, err)
	}
	tid, err := db.InsertRow("items", map[string]types.Value{
		"id": types.NewInt(id), "name": types.NewString("widget"), "qty": types.NewInt(5),
	})
	if err != nil || tid == 0 {
		t.Fatalf("InsertRow: %d, %v", tid, err)
	}
	id2, _ := db.NextID("items")
	if id2 != 2 {
		t.Fatalf("NextID after insert: %d", id2)
	}
}

func TestUsersAndGroups(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	if err := db.EnsureUser("ana", "secret"); err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureUser("ana", "secret"); err != nil {
		t.Fatal("EnsureUser must be idempotent:", err)
	}
	if err := db.EnsureGroup("analysts"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddUserToGroup("ana", "analysts"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddUserToGroup("ana", "analysts"); err != nil {
		t.Fatal("AddUserToGroup must be idempotent:", err)
	}
	in, err := db.UserInGroup("ana", "analysts")
	if err != nil || !in {
		t.Fatalf("UserInGroup: %v, %v", in, err)
	}
	in, _ = db.UserInGroup("bob", "analysts")
	if in {
		t.Error("bob is not in analysts")
	}
}

func TestExecScriptStopsOnError(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	_, err := db.ExecScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		INSERT INTO missing VALUES (2);
		INSERT INTO t VALUES (3);
	`)
	if err == nil {
		t.Fatal("script with bad statement must fail")
	}
	// Statements before the failure applied; the one after did not.
	n, _ := db.QueryInt("SELECT COUNT(*) FROM t")
	if n != 1 {
		t.Fatalf("rows: %d", n)
	}
}

func TestInsertRowErrors(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Exec("CREATE TABLE t (a INT PRIMARY KEY)")
	if _, err := db.InsertRow("missing", map[string]types.Value{"a": types.NewInt(1)}); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := db.InsertRow("t", map[string]types.Value{"nope": types.NewInt(1)}); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := db.InsertRow("t", map[string]types.Value{"a": types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRow("t", map[string]types.Value{"a": types.NewInt(1)}); err == nil {
		t.Error("pk conflict must fail")
	}
}

func TestNextIDIgnoresGaps(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Exec("CREATE TABLE items (id INT PRIMARY KEY)")
	db.Exec("INSERT INTO items VALUES (5), (9)")
	id, err := db.NextID("items")
	if err != nil || id != 10 {
		t.Fatalf("NextID: %d, %v", id, err)
	}
}

// Concurrent NextID allocations must never collide (the SELECT MAX+1
// TOCTOU race).
func TestNextIDConcurrent(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Exec("CREATE TABLE items (id INT PRIMARY KEY)")
	const workers, each = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < each; i++ {
				id, err := db.NextID("items")
				if err != nil {
					errs <- err
					return
				}
				if _, err := db.Exec("INSERT INTO items (id) VALUES (?)", types.NewInt(id)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM items")
	if n != workers*each {
		t.Fatalf("rows: %d", n)
	}
}
