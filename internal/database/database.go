// Package database is the embedded-DB facade the rest of EdiFlow builds
// on. It wires the storage and engine layers together and installs the
// paper's unified data model (Figure 3): process definitions, process
// execution state, users/groups, connections, notifications and
// visualization tables all live in the same database as application data
// — "EdiFlow unifies the data model used by all of its components" (§VIII).
package database

import (
	"fmt"
	"strings"
	"sync"

	"ediflow/internal/engine"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// System table names (the gray and white groups of Figure 3).
const (
	TableProcess          = "ef_process"
	TableActivity         = "ef_activity"
	TableProcessInstance  = "ef_process_instance"
	TableActivityInstance = "ef_activity_instance"
	TableUser             = "ef_user"
	TableGroup            = "ef_group"
	TableUserGroup        = "ef_user_group"
	TableConnectedUser    = "ef_connected_user"
	TableNotification     = "ef_notification"
	TableVisualization    = "ef_visualization"
	TableVisComponent     = "ef_vis_component"
	TableVisualAttributes = "ef_visual_attributes"
)

// Instance status values (§IV-A).
const (
	StatusNotStarted = "not_started"
	StatusRunning    = "running"
	StatusCompleted  = "completed"
)

// DB is an embedded EdiFlow database.
type DB struct {
	*engine.Engine

	// idMu serializes NextID so concurrent callers (process starts,
	// notification registrations, visualization creation) never observe
	// the same MAX and collide on insert.
	idMu    sync.Mutex
	nextIDs map[string]int64 // lower-cased table → next id to hand out
}

// schemaDDL is executed on every open; CREATE TABLE IF NOT EXISTS makes it
// idempotent across restarts.
var schemaDDL = []string{
	`CREATE TABLE IF NOT EXISTS ` + TableProcess + ` (
		name STRING PRIMARY KEY,
		spec STRING)`,
	`CREATE TABLE IF NOT EXISTS ` + TableActivity + ` (
		id STRING PRIMARY KEY,
		process STRING NOT NULL,
		name STRING NOT NULL,
		grp STRING)`,
	`CREATE TABLE IF NOT EXISTS ` + TableProcessInstance + ` (
		id INT PRIMARY KEY,
		process STRING NOT NULL,
		status STRING NOT NULL,
		start_ts INT,
		end_ts INT,
		snapshot INT)`,
	`CREATE TABLE IF NOT EXISTS ` + TableActivityInstance + ` (
		id INT PRIMARY KEY,
		activity STRING NOT NULL,
		process_instance INT NOT NULL,
		status STRING NOT NULL,
		start_ts INT,
		end_ts INT,
		username STRING)`,
	`CREATE TABLE IF NOT EXISTS ` + TableUser + ` (
		name STRING PRIMARY KEY,
		password STRING)`,
	`CREATE TABLE IF NOT EXISTS ` + TableGroup + ` (
		name STRING PRIMARY KEY)`,
	`CREATE TABLE IF NOT EXISTS ` + TableUserGroup + ` (
		username STRING NOT NULL,
		grp STRING NOT NULL)`,
	`CREATE TABLE IF NOT EXISTS ` + TableConnectedUser + ` (
		id INT PRIMARY KEY,
		username STRING,
		host STRING NOT NULL,
		port INT NOT NULL,
		tbl STRING NOT NULL,
		last_seq INT)`,
	`CREATE TABLE IF NOT EXISTS ` + TableNotification + ` (
		seq_no INT PRIMARY KEY,
		ts INT NOT NULL,
		tbl STRING NOT NULL,
		op STRING NOT NULL,
		tids STRING)`,
	`CREATE TABLE IF NOT EXISTS ` + TableVisualization + ` (
		id INT PRIMARY KEY,
		name STRING NOT NULL)`,
	`CREATE TABLE IF NOT EXISTS ` + TableVisComponent + ` (
		id INT PRIMARY KEY,
		visualization INT NOT NULL,
		label STRING,
		kind STRING)`,
	`CREATE TABLE IF NOT EXISTS ` + TableVisualAttributes + ` (
		obj_id INT NOT NULL,
		comp_id INT NOT NULL,
		x FLOAT,
		y FLOAT,
		width FLOAT,
		height FLOAT,
		color STRING,
		label STRING,
		selected BOOL)`,
}

// Open opens (or creates) an EdiFlow database with default durability
// (WAL flushed to the OS page cache, no per-commit fsync). dir == "" is
// in-memory.
func Open(dir string) (*DB, error) {
	return OpenWith(dir, storage.Options{})
}

// OpenWith opens (or creates) an EdiFlow database with explicit storage
// durability options (fsync-on-commit, group fsync, ...).
func OpenWith(dir string, opts storage.Options) (*DB, error) {
	st, err := storage.OpenWith(dir, opts)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	db := &DB{Engine: e}
	for _, ddl := range schemaDDL {
		if _, err := db.Exec(ddl); err != nil {
			e.Close()
			return nil, fmt.Errorf("database: installing system schema: %w", err)
		}
	}
	return db, nil
}

// MustOpenMemory opens an in-memory database or panics (test/example
// convenience).
func MustOpenMemory() *DB {
	db, err := Open("")
	if err != nil {
		panic(err)
	}
	return db
}

// QueryValue runs a SELECT expected to return exactly one value.
func (db *DB) QueryValue(sql string, args ...types.Value) (types.Value, error) {
	res, err := db.Query(sql, args...)
	if err != nil {
		return types.Null, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return types.Null, fmt.Errorf("database: expected a single value, got %d rows", len(res.Rows))
	}
	return res.Rows[0][0], nil
}

// QueryInt runs a SELECT expected to return exactly one integer.
func (db *DB) QueryInt(sql string, args ...types.Value) (int64, error) {
	v, err := db.QueryValue(sql, args...)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// QueryString runs a SELECT expected to return exactly one string.
func (db *DB) QueryString(sql string, args ...types.Value) (string, error) {
	v, err := db.QueryValue(sql, args...)
	if err != nil {
		return "", err
	}
	return v.AsString(), nil
}

// InsertRow inserts one row given column→value pairs, returning its tid.
func (db *DB) InsertRow(table string, vals map[string]types.Value) (int64, error) {
	cols := make([]string, 0, len(vals))
	for c := range vals {
		cols = append(cols, c)
	}
	// Deterministic order for readability in WAL dumps/tests.
	sortStrings(cols)
	placeholders := make([]string, len(cols))
	args := make([]types.Value, len(cols))
	for i, c := range cols {
		placeholders[i] = "?"
		args[i] = vals[c]
	}
	sql := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
		table, strings.Join(cols, ", "), strings.Join(placeholders, ", "))
	res, err := db.Exec(sql, args...)
	if err != nil {
		return 0, err
	}
	if len(res.TIDs) != 1 {
		return 0, fmt.Errorf("database: insert affected %d rows", len(res.TIDs))
	}
	return res.TIDs[0], nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NextID allocates a unique id for a table with an `id` column. The first
// call per table seeds from MAX(id); later calls increment a process-local
// counter under a mutex, so concurrent allocators never collide (the
// classic SELECT MAX+1 race). External inserts with explicit larger ids
// are re-observed because the seed is re-read when the counter is behind
// the table.
func (db *DB) NextID(table string) (int64, error) {
	db.idMu.Lock()
	defer db.idMu.Unlock()
	key := strings.ToLower(table)
	v, err := db.QueryValue("SELECT COALESCE(MAX(id), 0) + 1 FROM " + table)
	if err != nil {
		return 0, err
	}
	fromTable, err := v.AsInt()
	if err != nil {
		return 0, err
	}
	if db.nextIDs == nil {
		db.nextIDs = map[string]int64{}
	}
	next := db.nextIDs[key]
	if fromTable > next {
		next = fromTable
	}
	db.nextIDs[key] = next + 1
	return next, nil
}

// EnsureUser registers a user (idempotent).
func (db *DB) EnsureUser(name, password string) error {
	n, err := db.QueryInt("SELECT COUNT(*) FROM "+TableUser+" WHERE name = ?", types.NewString(name))
	if err != nil {
		return err
	}
	if n > 0 {
		return nil
	}
	_, err = db.Exec("INSERT INTO "+TableUser+" (name, password) VALUES (?, ?)",
		types.NewString(name), types.NewString(password))
	return err
}

// EnsureGroup registers a group (idempotent).
func (db *DB) EnsureGroup(name string) error {
	n, err := db.QueryInt("SELECT COUNT(*) FROM "+TableGroup+" WHERE name = ?", types.NewString(name))
	if err != nil {
		return err
	}
	if n > 0 {
		return nil
	}
	_, err = db.Exec("INSERT INTO "+TableGroup+" (name) VALUES (?)", types.NewString(name))
	return err
}

// AddUserToGroup records group membership (idempotent).
func (db *DB) AddUserToGroup(user, group string) error {
	n, err := db.QueryInt("SELECT COUNT(*) FROM "+TableUserGroup+" WHERE username = ? AND grp = ?",
		types.NewString(user), types.NewString(group))
	if err != nil {
		return err
	}
	if n > 0 {
		return nil
	}
	_, err = db.Exec("INSERT INTO "+TableUserGroup+" (username, grp) VALUES (?, ?)",
		types.NewString(user), types.NewString(group))
	return err
}

// UserInGroup reports whether a user belongs to a group.
func (db *DB) UserInGroup(user, group string) (bool, error) {
	n, err := db.QueryInt("SELECT COUNT(*) FROM "+TableUserGroup+" WHERE username = ? AND grp = ?",
		types.NewString(user), types.NewString(group))
	return n > 0, err
}
