package tablesync

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/notify"
	"ediflow/internal/types"
)

func setup(t *testing.T) (*database.DB, *notify.Notifier) {
	t.Helper()
	db := database.MustOpenMemory()
	n, err := notify.NewNotifier(db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Close()
		db.Close()
	})
	if _, err := db.Exec("CREATE TABLE nodes (id INT PRIMARY KEY, x FLOAT, y FLOAT, label STRING)"); err != nil {
		t.Fatal(err)
	}
	return db, n
}

func newMirror(t *testing.T, db *database.DB) *Mirror {
	t.Helper()
	m, err := NewMirror(db, "viz", "nodes")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// refreshUntil refreshes the mirror until cond holds or times out (the
// notification write happens asynchronously after the statement, so tests
// poll).
func refreshUntil(t *testing.T, m *Mirror, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := m.Refresh(); err != nil {
			t.Fatal(err)
		}
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestInitialLoad(t *testing.T) {
	db, _ := setup(t)
	db.Exec("INSERT INTO nodes VALUES (1, 0.5, 0.5, 'a'), (2, 1.0, 2.0, 'b')")
	m := newMirror(t, db)
	if m.Len() != 2 {
		t.Fatalf("len: %d", m.Len())
	}
	cols := m.Columns()
	if len(cols) != 4 || cols[0] != "id" {
		t.Fatalf("columns: %v", cols)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Values[3].Str() != "a" {
		t.Fatalf("%+v", snap)
	}
}

func TestIncrementalInsertUpdateDelete(t *testing.T) {
	db, _ := setup(t)
	m := newMirror(t, db)
	db.Exec("INSERT INTO nodes VALUES (1, 0.0, 0.0, 'a')")
	refreshUntil(t, m, func() bool { return m.Len() == 1 })

	db.Exec("UPDATE nodes SET x = 9.5 WHERE id = 1")
	refreshUntil(t, m, func() bool {
		snap := m.Snapshot()
		return len(snap) == 1 && snap[0].Values[1].Float() == 9.5
	})

	db.Exec("DELETE FROM nodes WHERE id = 1")
	refreshUntil(t, m, func() bool { return m.Len() == 0 })
}

func TestRefreshCoalescesBatch(t *testing.T) {
	db, _ := setup(t)
	m := newMirror(t, db)
	for i := 0; i < 20; i++ {
		db.Exec(fmt.Sprintf("INSERT INTO nodes VALUES (%d, 0.0, 0.0, 'n')", i))
	}
	// All 20 notifications processed by (possibly) few Refresh calls.
	refreshUntil(t, m, func() bool { return m.Len() == 20 })
	// Updated then deleted row must end up absent.
	db.Exec("UPDATE nodes SET label = 'x' WHERE id = 3")
	db.Exec("DELETE FROM nodes WHERE id = 3")
	refreshUntil(t, m, func() bool { return m.Len() == 19 })
}

func TestVersionBumpsAndOnChange(t *testing.T) {
	db, _ := setup(t)
	m := newMirror(t, db)
	v0 := m.Version()
	changed := make(chan struct{}, 16)
	m.OnChange(func() { changed <- struct{}{} })
	db.Exec("INSERT INTO nodes VALUES (1, 0.0, 0.0, 'a')")
	refreshUntil(t, m, func() bool { return m.Len() == 1 })
	if m.Version() <= v0 {
		t.Fatal("version did not advance")
	}
	select {
	case <-changed:
	default:
		t.Fatal("OnChange not invoked")
	}
}

func TestAutoRefresh(t *testing.T) {
	db, _ := setup(t)
	m := newMirror(t, db)
	m.AutoRefresh(10 * time.Millisecond)
	db.Exec("INSERT INTO nodes VALUES (1, 1.0, 1.0, 'auto')")
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if m.Len() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("auto refresh did not apply the insert")
}

func TestWriteBack(t *testing.T) {
	db, _ := setup(t)
	db.Exec("INSERT INTO nodes VALUES (1, 0.0, 0.0, 'a')")
	m := newMirror(t, db)
	snap := m.Snapshot()
	tid := snap[0].TID

	// Two-way propagation: a visual interaction updates the DB.
	if err := m.UpdateRow(tid, map[string]types.Value{
		"x": types.NewFloat(3.5), "label": types.NewString("moved"),
	}); err != nil {
		t.Fatal(err)
	}
	// Local image reflects it immediately.
	r, _ := m.Get(tid)
	if r[1].Float() != 3.5 || r[3].Str() != "moved" {
		t.Fatalf("%v", r)
	}
	// And the database holds it too.
	x, err := db.QueryValue("SELECT x FROM nodes WHERE id = 1")
	if err != nil || x.Float() != 3.5 {
		t.Fatalf("%v %v", x, err)
	}

	// Insert and delete through the mirror.
	if _, err := m.InsertRow(map[string]types.Value{
		"id": types.NewInt(2), "x": types.NewFloat(0), "y": types.NewFloat(0), "label": types.NewString("new"),
	}); err != nil {
		t.Fatal(err)
	}
	refreshUntil(t, m, func() bool { return m.Len() == 2 })
	if err := m.DeleteRow(tid); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM nodes")
	if n != 1 {
		t.Fatalf("rows in db: %d", n)
	}
	if err := m.UpdateRow(999, nil); err == nil {
		t.Fatal("updating unknown tid must fail")
	}
	if err := m.DeleteRow(999); err == nil {
		t.Fatal("deleting unknown tid must fail")
	}
}

func TestMirrorOfView(t *testing.T) {
	db, _ := setup(t)
	db.Exec("INSERT INTO nodes VALUES (1, 0.0, 0.0, 'a'), (2, 0.0, 0.0, 'a'), (3, 0.0, 0.0, 'b')")
	if _, err := db.Exec("CREATE MATERIALIZED VIEW bylabel AS SELECT label, COUNT(*) AS n FROM nodes GROUP BY label"); err != nil {
		t.Fatal(err)
	}
	m, err := NewMirror(db, "viz", "bylabel")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 2 {
		t.Fatalf("view mirror len: %d", m.Len())
	}
	db.Exec("INSERT INTO nodes VALUES (4, 0.0, 0.0, 'c')")
	refreshUntil(t, m, func() bool { return m.Len() == 3 })
}

// Property: after a random stream of operations and refreshes, the mirror
// equals the table exactly.
func TestMirrorConvergesToTable(t *testing.T) {
	db, _ := setup(t)
	m := newMirror(t, db)
	rng := rand.New(rand.NewSource(99))
	live := map[int64]bool{}
	next := int64(0)
	for step := 0; step < 200; step++ {
		op := rng.Intn(3)
		if len(live) == 0 {
			op = 0
		}
		switch op {
		case 0:
			next++
			db.Exec(fmt.Sprintf("INSERT INTO nodes VALUES (%d, %f, %f, 'n%d')", next, rng.Float64(), rng.Float64(), next))
			live[next] = true
		case 1:
			id := anyKey(rng, live)
			db.Exec(fmt.Sprintf("UPDATE nodes SET x = %f WHERE id = %d", rng.Float64(), id))
		case 2:
			id := anyKey(rng, live)
			db.Exec(fmt.Sprintf("DELETE FROM nodes WHERE id = %d", id))
			delete(live, id)
		}
	}
	refreshUntil(t, m, func() bool { return m.Len() == len(live) })
	// Deep equality of every row.
	res, _ := db.Query("SELECT _tid, id, x, y, label FROM nodes")
	for _, r := range res.Rows {
		mr, ok := m.Get(r[0].Int())
		if !ok {
			t.Fatalf("mirror missing tid %d", r[0].Int())
		}
		if !types.RowsEqual(mr, r[1:]) {
			t.Fatalf("mirror row %v != table row %v", mr, r[1:])
		}
	}
}

func anyKey(rng *rand.Rand, m map[int64]bool) int64 {
	n := rng.Intn(len(m))
	for k := range m {
		if n == 0 {
			return k
		}
		n--
	}
	return 0
}
