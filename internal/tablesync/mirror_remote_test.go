package tablesync

import (
	"fmt"
	"math/rand"
	"testing"

	"ediflow/internal/client"
	"ediflow/internal/database"
	"ediflow/internal/notify"
	"ediflow/internal/server"
	"ediflow/internal/types"
)

// setupRemote runs the full deployment of the paper's Fig. 3: the DBMS
// (with its notifier) behind a TCP server, and a mirror whose every
// statement travels the wire through a client connection. The notifier
// dials the mirror's listener back over loopback.
func setupRemote(t *testing.T) (*database.DB, *client.Conn) {
	t.Helper()
	db := database.MustOpenMemory()
	n, err := notify.NewNotifier(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conn.Close()
		srv.Close()
		n.Close()
		db.Close()
	})
	if _, err := conn.Exec("CREATE TABLE nodes (id INT PRIMARY KEY, x FLOAT, y FLOAT, label STRING)"); err != nil {
		t.Fatal(err)
	}
	return db, conn
}

// The §VI-C registration round trip over the wire: the INSERT into
// ConnectedUser arrives via FrameExec, and the server-side notifier
// dials back to the remote mirror's listener.
func TestRemoteMirrorBasic(t *testing.T) {
	_, conn := setupRemote(t)
	if _, err := conn.Exec("INSERT INTO nodes VALUES (1, 0.5, 0.5, 'a')"); err != nil {
		t.Fatal(err)
	}
	m, err := NewMirror(conn, "remote-viz", "nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 1 {
		t.Fatalf("initial load over wire: %d rows", m.Len())
	}
	if _, err := conn.Exec("INSERT INTO nodes VALUES (2, 1.0, 2.0, 'b')"); err != nil {
		t.Fatal(err)
	}
	refreshUntil(t, m, func() bool { return m.Len() == 2 })
}

// Write-back over the wire: a visual-side edit lands in the server's
// table through the client connection.
func TestRemoteMirrorWriteBack(t *testing.T) {
	db, conn := setupRemote(t)
	if _, err := conn.Exec("INSERT INTO nodes VALUES (1, 0.0, 0.0, 'a')"); err != nil {
		t.Fatal(err)
	}
	m, err := NewMirror(conn, "remote-viz", "nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	snap := m.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("%d rows", len(snap))
	}
	if err := m.UpdateRow(snap[0].TID, map[string]types.Value{
		"label": types.NewString("edited"),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryString("SELECT label FROM nodes WHERE id = 1")
	if err != nil || got != "edited" {
		t.Fatalf("%q %v", got, err)
	}
}

// The convergence property test of mirror_test.go, but with the mirror
// on the far side of the wire: after a random stream of remote
// operations, the remote mirror equals the server's table exactly.
func TestRemoteMirrorConvergesToTable(t *testing.T) {
	_, conn := setupRemote(t)
	m, err := NewMirror(conn, "remote-viz", "nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rng := rand.New(rand.NewSource(99))
	live := map[int64]bool{}
	next := int64(0)
	for step := 0; step < 200; step++ {
		op := rng.Intn(3)
		if len(live) == 0 {
			op = 0
		}
		switch op {
		case 0:
			next++
			conn.Exec(fmt.Sprintf("INSERT INTO nodes VALUES (%d, %f, %f, 'n%d')", next, rng.Float64(), rng.Float64(), next))
			live[next] = true
		case 1:
			id := anyKey(rng, live)
			conn.Exec(fmt.Sprintf("UPDATE nodes SET x = %f WHERE id = %d", rng.Float64(), id))
		case 2:
			id := anyKey(rng, live)
			conn.Exec(fmt.Sprintf("DELETE FROM nodes WHERE id = %d", id))
			delete(live, id)
		}
	}
	refreshUntil(t, m, func() bool { return m.Len() == len(live) })
	res, err := conn.Query("SELECT _tid, id, x, y, label FROM nodes")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		mr, ok := m.Get(r[0].Int())
		if !ok {
			t.Fatalf("mirror missing tid %d", r[0].Int())
		}
		if !types.RowsEqual(mr, r[1:]) {
			t.Fatalf("mirror row %v != table row %v", mr, r[1:])
		}
	}
}
