// Package tablesync implements the in-memory table image R_M that
// visualization components keep synchronized with a disk-resident table
// R_D (§VI-C). The mirror:
//
//   - loads the table once, then applies *incremental* refreshes driven by
//     the notification protocol — it queries only the created/updated rows
//     (by tuple id) and drops deleted ones, never rescanning the table;
//   - lets the visualization decide when to refresh (protocol step 8):
//     Refresh() is explicit, AutoRefresh starts a goroutine that refreshes
//     as notifications arrive;
//   - propagates local modifications back to R_D (two-way propagation,
//     the paper's difference from classical materialized views), batching
//     consecutive notifications to avoid redundant work.
package tablesync

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ediflow/internal/catalog"
	"ediflow/internal/database"
	"ediflow/internal/driver"
	"ediflow/internal/metrics"
	"ediflow/internal/notify"
	"ediflow/internal/types"
)

// metricsSource is satisfied by both connection kinds a mirror runs
// over: the embedded database (engine registry) and the network client
// (client-local registry). Mirror metrics land wherever the connection
// records its own — next to engine.* embedded, next to client.* remote.
type metricsSource interface {
	Metrics() *metrics.Registry
}

// Row is one mirrored tuple: the user columns plus its tuple id.
type Row struct {
	TID    int64
	Values types.Row
}

// Mirror is the client-side in-memory image of one table.
type Mirror struct {
	db    driver.Conn
	cl    *notify.Client
	table string

	mu      sync.RWMutex
	columns []string
	rows    map[int64]types.Row
	version int64 // bumped on every applied change

	onChange func() // invoked after each applied refresh batch

	stopAuto chan struct{}
	autoWG   sync.WaitGroup

	// Refresh telemetry (nil-safe: all zero when db has no registry).
	reg            *metrics.Registry
	mRefreshes     *metrics.Counter
	mNotifications *metrics.Counter
	mRowsFetched   *metrics.Counter
	mRowsDropped   *metrics.Counter
	mRefreshH      *metrics.Histogram
}

// NewMirror connects the notification client and performs the initial
// load. db may be the embedded database or a network client (the
// paper's remote R_M over the LAN): the mirror code is identical.
func NewMirror(db driver.Conn, user, table string) (*Mirror, error) {
	cl, err := notify.Connect(db, user, table)
	if err != nil {
		return nil, err
	}
	m := &Mirror{db: db, cl: cl, table: table, rows: map[int64]types.Row{}}
	if ms, ok := db.(metricsSource); ok {
		m.reg = ms.Metrics()
		m.mRefreshes = m.reg.Counter("tablesync.refreshes")
		m.mNotifications = m.reg.Counter("tablesync.notifications")
		m.mRowsFetched = m.reg.Counter("tablesync.rows_fetched")
		m.mRowsDropped = m.reg.Counter("tablesync.rows_dropped")
		m.mRefreshH = m.reg.Histogram("tablesync.refresh_latency")
	}
	if err := m.initialLoad(); err != nil {
		cl.Close()
		return nil, err
	}
	return m, nil
}

func (m *Mirror) initialLoad() error {
	res, err := m.db.Query(fmt.Sprintf("SELECT *, %s FROM %s", catalog.SysTID, m.table))
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.columns = res.Columns[:len(res.Columns)-1]
	for _, r := range res.Rows {
		tid := r[len(r)-1].Int()
		m.rows[tid] = r[:len(r)-1]
	}
	// Everything up to now is covered by the initial load.
	return m.cl.Ack(m.currentMaxSeq())
}

func (m *Mirror) currentMaxSeq() int64 {
	v, err := m.db.QueryValue(
		"SELECT COALESCE(MAX(seq_no), 0) FROM "+database.TableNotification+" WHERE tbl = ?",
		types.NewString(m.table))
	if err != nil {
		return 0
	}
	n, _ := v.AsInt()
	return n
}

// Columns returns the mirrored column names.
func (m *Mirror) Columns() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.columns...)
}

// Len returns the number of mirrored rows.
func (m *Mirror) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows)
}

// Version returns a counter that increases whenever the mirror changes.
func (m *Mirror) Version() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Get returns the row with the given tuple id.
func (m *Mirror) Get(tid int64) (types.Row, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.rows[tid]
	if !ok {
		return nil, false
	}
	return types.CloneRow(r), true
}

// Snapshot returns all rows sorted by tuple id.
func (m *Mirror) Snapshot() []Row {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Row, 0, len(m.rows))
	for tid, r := range m.rows {
		out = append(out, Row{TID: tid, Values: types.CloneRow(r)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// ColIndex returns the position of a column in mirrored rows, or -1.
func (m *Mirror) ColIndex(name string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i, c := range m.columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// OnChange registers a callback invoked after every applied refresh batch
// (display components use it to repaint).
func (m *Mirror) OnChange(fn func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onChange = fn
}

// Notifications exposes the raw NOTIFY channel for callers that schedule
// their own refreshes.
func (m *Mirror) Notifications() <-chan notify.Message { return m.cl.C }

// Refresh applies all pending notifications: one batched query per
// contiguous run of insert/update notifications (the "smart way to avoid
// redundant work" of protocol step 9), local deletion for deletes.
// It returns the number of notifications processed.
func (m *Mirror) Refresh() (int, error) {
	done := m.reg.Time(m.mRefreshH)
	msgs, tidLists, err := m.cl.PendingNotifications()
	if err != nil {
		return 0, err
	}
	if len(msgs) == 0 {
		return 0, nil
	}
	m.mRefreshes.Inc()
	m.mNotifications.Add(int64(len(msgs)))
	// Coalesce: collect the set of tids to (re)fetch and to drop. A tid
	// that is updated then deleted ends up dropped; fetching happens once
	// per tid regardless of how many notifications mention it.
	fetch := map[int64]bool{}
	drop := map[int64]bool{}
	for i, msg := range msgs {
		switch msg.Op {
		case "INSERT", "UPDATE":
			for _, tid := range tidLists[i] {
				fetch[tid] = true
				delete(drop, tid)
			}
		case "DELETE":
			for _, tid := range tidLists[i] {
				drop[tid] = true
				delete(fetch, tid)
			}
		}
	}
	var fetched map[int64]types.Row
	if len(fetch) > 0 {
		fetched, err = m.fetchRows(fetch)
		if err != nil {
			return 0, err
		}
	}
	m.mu.Lock()
	for tid := range drop {
		delete(m.rows, tid)
	}
	for tid, r := range fetched {
		m.rows[tid] = r
	}
	// A tid scheduled for fetch but no longer present was deleted after
	// the notification was written: drop it.
	for tid := range fetch {
		if _, ok := fetched[tid]; !ok {
			delete(m.rows, tid)
		}
	}
	m.version++
	cb := m.onChange
	m.mu.Unlock()
	m.mRowsFetched.Add(int64(len(fetched)))
	m.mRowsDropped.Add(int64(len(drop)))
	if err := m.cl.Ack(msgs[len(msgs)-1].Seq); err != nil {
		return 0, err
	}
	done() // refresh latency includes the Ack round-trip
	if cb != nil {
		cb()
	}
	return len(msgs), nil
}

func (m *Mirror) fetchRows(tids map[int64]bool) (map[int64]types.Row, error) {
	ids := make([]string, 0, len(tids))
	for tid := range tids {
		ids = append(ids, fmt.Sprintf("%d", tid))
	}
	sort.Strings(ids)
	sql := fmt.Sprintf("SELECT *, %s FROM %s WHERE %s IN (%s)",
		catalog.SysTID, m.table, catalog.SysTID, strings.Join(ids, ", "))
	res, err := m.db.Query(sql)
	if err != nil {
		return nil, err
	}
	out := make(map[int64]types.Row, len(res.Rows))
	for _, r := range res.Rows {
		tid := r[len(r)-1].Int()
		out[tid] = r[:len(r)-1]
	}
	return out, nil
}

// AutoRefresh starts a goroutine that refreshes whenever a notification
// arrives (coalescing bursts within the given debounce window).
func (m *Mirror) AutoRefresh(debounce time.Duration) {
	m.mu.Lock()
	if m.stopAuto != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.stopAuto = stop
	m.mu.Unlock()
	m.autoWG.Add(1)
	go func() {
		defer m.autoWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-m.cl.C:
				// Drain the burst, then refresh once.
				if debounce > 0 {
					timer := time.NewTimer(debounce)
				drain:
					for {
						select {
						case <-m.cl.C:
						case <-timer.C:
							break drain
						case <-stop:
							timer.Stop()
							return
						}
					}
				}
				m.Refresh()
			case <-m.cl.Done():
				return
			}
		}
	}()
}

// ------------------------------------------------------------ write-back

// UpdateRow writes new values for one mirrored row back to R_D (two-way
// propagation). The local image is updated immediately; the resulting
// self-notification becomes a cheap no-op re-fetch of the same tid.
func (m *Mirror) UpdateRow(tid int64, updates map[string]types.Value) error {
	m.mu.RLock()
	_, ok := m.rows[tid]
	cols := m.columns
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("tablesync: no row with tid %d", tid)
	}
	colPos := map[string]int{}
	for i, c := range cols {
		colPos[strings.ToLower(c)] = i
	}
	updCols := make([]string, 0, len(updates))
	for c := range updates {
		if _, ok := colPos[strings.ToLower(c)]; !ok {
			return fmt.Errorf("tablesync: no column %q in %s", c, m.table)
		}
		updCols = append(updCols, c)
	}
	sort.Strings(updCols)
	sets := make([]string, len(updCols))
	args := make([]types.Value, len(updCols))
	for i, c := range updCols {
		sets[i] = c + " = ?"
		args[i] = updates[c]
	}
	sql := fmt.Sprintf("UPDATE %s SET %s WHERE %s = %d",
		m.table, strings.Join(sets, ", "), catalog.SysTID, tid)
	if _, err := m.db.Exec(sql, args...); err != nil {
		return err
	}
	// Apply locally right away.
	m.mu.Lock()
	row := m.rows[tid]
	for c, v := range updates {
		row[colPos[strings.ToLower(c)]] = v
	}
	m.version++
	m.mu.Unlock()
	return nil
}

// InsertRow inserts a new row through the mirror into R_D, returning its
// tid. The local image picks it up via the notification refresh.
func (m *Mirror) InsertRow(vals map[string]types.Value) (int64, error) {
	return m.db.InsertRow(m.table, vals)
}

// DeleteRow removes a row from R_D.
func (m *Mirror) DeleteRow(tid int64) error {
	m.mu.RLock()
	_, ok := m.rows[tid]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("tablesync: no row with tid %d", tid)
	}
	if _, err := m.db.Exec(fmt.Sprintf("DELETE FROM %s WHERE %s = %d", m.table, catalog.SysTID, tid)); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.rows, tid)
	m.version++
	m.mu.Unlock()
	return nil
}

// Close stops auto-refresh and disconnects the client.
func (m *Mirror) Close() error {
	m.mu.Lock()
	if m.stopAuto != nil {
		close(m.stopAuto)
		m.stopAuto = nil
	}
	m.mu.Unlock()
	m.autoWG.Wait()
	return m.cl.Close()
}
