// Package raweb reproduces the INRIA activity-reports application
// (§III-c): yearly per-team XML reports (the Raweb legacy collection) are
// generated synthetically, ingested into the database, and aggregated
// into statistics (age / team / research-center distributions). People
// appearing in several reports are deduplicated with a string-similarity
// function — the paper's example of an aggregate "computed relying on
// external code such as the similarity between two people referenced in
// the reports".
package raweb

import (
	"encoding/xml"
	"fmt"
	"math/rand"
	"strings"

	"ediflow/internal/database"
	"ediflow/internal/types"
)

// Report is one team's activity report for one year.
type Report struct {
	XMLName xml.Name `xml:"activityReport"`
	Team    string   `xml:"team,attr"`
	Year    int      `xml:"year,attr"`
	Center  string   `xml:"center,attr"`
	Members []Member `xml:"member"`
	Pubs    []Pub    `xml:"publication"`
}

// Member is one person entry in a report.
type Member struct {
	Name     string `xml:"name,attr"`
	Age      int    `xml:"age,attr"`
	Position string `xml:"position,attr"`
}

// Pub is one publication entry.
type Pub struct {
	Title   string `xml:"title,attr"`
	Venue   string `xml:"venue,attr"`
	Authors string `xml:"authors,attr"` // comma-separated member names
}

var (
	firstNames = []string{"Anna", "Bruno", "Clara", "Denis", "Elena", "Farid", "Gaelle", "Hugo", "Ines", "Jules", "Karim", "Lea", "Marc", "Nadia", "Olivier", "Paula"}
	lastNames  = []string{"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit", "Durand", "Leroy", "Moreau", "Simon", "Laurent", "Lefevre", "Michel", "Garcia", "David"}
	centers    = []string{"Saclay", "Rocquencourt", "Sophia", "Rennes", "Grenoble"}
	positions  = []string{"researcher", "phd", "postdoc", "engineer"}
	venues     = []string{"ICDE", "VLDB", "SIGMOD", "EDBT", "InfoVis", "CHI"}
)

// Generator produces deterministic synthetic reports.
type Generator struct {
	rng   *rand.Rand
	teams []string
}

// NewGenerator builds a generator with the given number of teams.
func NewGenerator(teams int, seed int64) *Generator {
	g := &Generator{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < teams; i++ {
		g.teams = append(g.teams, fmt.Sprintf("TEAM%02d", i+1))
	}
	return g
}

// YearReports generates one report per team for a year. Member names are
// stable per team (people recur across years, sometimes with typos — the
// dedup challenge).
func (g *Generator) YearReports(year int) []Report {
	var out []Report
	for ti, team := range g.teams {
		teamRng := rand.New(rand.NewSource(int64(ti)*1000 + 17)) // stable roster
		center := centers[ti%len(centers)]
		size := teamRng.Intn(8) + 4
		var members []Member
		for m := 0; m < size; m++ {
			name := firstNames[teamRng.Intn(len(firstNames))] + " " + lastNames[teamRng.Intn(len(lastNames))]
			// Occasionally introduce a typo in this year's spelling.
			if g.rng.Float64() < 0.1 && len(name) > 3 {
				name = name[:len(name)-1]
			}
			members = append(members, Member{
				Name:     name,
				Age:      25 + teamRng.Intn(40) + (year - 2005),
				Position: positions[teamRng.Intn(len(positions))],
			})
		}
		var pubs []Pub
		npubs := g.rng.Intn(10) + 2
		for p := 0; p < npubs; p++ {
			nAuth := g.rng.Intn(3) + 1
			var authors []string
			for a := 0; a < nAuth; a++ {
				authors = append(authors, members[g.rng.Intn(len(members))].Name)
			}
			pubs = append(pubs, Pub{
				Title:   fmt.Sprintf("%s paper %d-%d", team, year, p+1),
				Venue:   venues[g.rng.Intn(len(venues))],
				Authors: strings.Join(authors, ","),
			})
		}
		out = append(out, Report{Team: team, Year: year, Center: center, Members: members, Pubs: pubs})
	}
	return out
}

// MarshalReport renders a report as the XML file Raweb would hold.
func MarshalReport(r Report) ([]byte, error) {
	return xml.MarshalIndent(r, "", "  ")
}

// ParseReport reads one report file.
func ParseReport(data []byte) (Report, error) {
	var r Report
	err := xml.Unmarshal(data, &r)
	return r, err
}

// Schema creates the application relations.
func Schema(db *database.DB) error {
	ddl := []string{
		`CREATE TABLE IF NOT EXISTS teams (name STRING PRIMARY KEY, center STRING NOT NULL)`,
		`CREATE TABLE IF NOT EXISTS people (
			id INT PRIMARY KEY, name STRING NOT NULL, team STRING NOT NULL,
			age INT, position STRING)`,
		`CREATE TABLE IF NOT EXISTS publications (
			id INT PRIMARY KEY, title STRING NOT NULL, venue STRING, team STRING, year INT)`,
		`CREATE TABLE IF NOT EXISTS authorship (pub_id INT NOT NULL, person_id INT NOT NULL)`,
	}
	for _, s := range ddl {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Similarity is a Jaro–Winkler-style similarity in [0,1] used for person
// deduplication ("to determine whether an employee is already present in
// the database or needs to be added").
func Similarity(a, b string) float64 {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == b {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	jaro := jaroSim(a, b)
	// Winkler prefix boost (up to 4 chars).
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return jaro + float64(prefix)*0.1*(1-jaro)
}

func jaroSim(a, b string) float64 {
	window := maxInt(len(a), len(b))/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, len(a))
	bMatch := make([]bool, len(b))
	matches := 0
	for i := 0; i < len(a); i++ {
		lo := maxInt(0, i-window)
		hi := minInt(len(b)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !bMatch[j] && a[i] == b[j] {
				aMatch[i] = true
				bMatch[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Transpositions.
	t := 0
	j := 0
	for i := 0; i < len(a); i++ {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if a[i] != b[j] {
			t++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(a)) + m/float64(len(b)) + (m-float64(t)/2)/m) / 3
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DedupThreshold is the similarity above which two names are considered
// the same person within a team.
const DedupThreshold = 0.92

// Ingest loads a report: upserts the team, deduplicates members against
// existing people of the team by Similarity, inserts publications and
// authorship rows. Returns the number of genuinely new people.
func Ingest(db *database.DB, r Report) (newPeople int, err error) {
	n, err := db.QueryInt("SELECT COUNT(*) FROM teams WHERE name = ?", types.NewString(r.Team))
	if err != nil {
		return 0, err
	}
	if n == 0 {
		if _, err := db.Exec("INSERT INTO teams (name, center) VALUES (?, ?)",
			types.NewString(r.Team), types.NewString(r.Center)); err != nil {
			return 0, err
		}
	}
	// Existing roster of the team.
	existing, err := db.Query("SELECT id, name FROM people WHERE team = ?", types.NewString(r.Team))
	if err != nil {
		return 0, err
	}
	nameToID := map[string]int64{}
	type person struct {
		id   int64
		name string
	}
	var roster []person
	for _, row := range existing.Rows {
		p := person{id: row[0].Int(), name: row[1].Str()}
		roster = append(roster, p)
		nameToID[strings.ToLower(p.name)] = p.id
	}
	resolve := func(name string) (int64, bool) {
		if id, ok := nameToID[strings.ToLower(name)]; ok {
			return id, true
		}
		best := int64(0)
		bestSim := 0.0
		for _, p := range roster {
			if s := Similarity(name, p.name); s > bestSim {
				bestSim = s
				best = p.id
			}
		}
		if bestSim >= DedupThreshold {
			return best, true
		}
		return 0, false
	}
	for _, m := range r.Members {
		if id, found := resolve(m.Name); found {
			// Update the person's age/position for the new year.
			db.Exec("UPDATE people SET age = ?, position = ? WHERE id = ?",
				types.NewInt(int64(m.Age)), types.NewString(m.Position), types.NewInt(id))
			continue
		}
		id, err := db.NextID("people")
		if err != nil {
			return newPeople, err
		}
		if _, err := db.Exec("INSERT INTO people (id, name, team, age, position) VALUES (?, ?, ?, ?, ?)",
			types.NewInt(id), types.NewString(m.Name), types.NewString(r.Team),
			types.NewInt(int64(m.Age)), types.NewString(m.Position)); err != nil {
			return newPeople, err
		}
		roster = append(roster, person{id: id, name: m.Name})
		nameToID[strings.ToLower(m.Name)] = id
		newPeople++
	}
	for _, pub := range r.Pubs {
		pubID, err := db.NextID("publications")
		if err != nil {
			return newPeople, err
		}
		if _, err := db.Exec("INSERT INTO publications (id, title, venue, team, year) VALUES (?, ?, ?, ?, ?)",
			types.NewInt(pubID), types.NewString(pub.Title), types.NewString(pub.Venue),
			types.NewString(r.Team), types.NewInt(int64(r.Year))); err != nil {
			return newPeople, err
		}
		for _, author := range strings.Split(pub.Authors, ",") {
			author = strings.TrimSpace(author)
			if author == "" {
				continue
			}
			if id, found := resolve(author); found {
				if _, err := db.Exec("INSERT INTO authorship (pub_id, person_id) VALUES (?, ?)",
					types.NewInt(pubID), types.NewInt(id)); err != nil {
					return newPeople, err
				}
			}
		}
	}
	return newPeople, nil
}

// Stats is the §III-c statistics bundle computed by SQL.
type Stats struct {
	People          int64
	Teams           int64
	Publications    int64
	AvgAge          float64
	PeopleByCenter  map[string]int64
	PubsPerYear     map[int64]int64
	PubsPerPersonID map[int64]int64
}

// ComputeStats runs the aggregate queries.
func ComputeStats(db *database.DB) (*Stats, error) {
	s := &Stats{PeopleByCenter: map[string]int64{}, PubsPerYear: map[int64]int64{}, PubsPerPersonID: map[int64]int64{}}
	var err error
	if s.People, err = db.QueryInt("SELECT COUNT(*) FROM people"); err != nil {
		return nil, err
	}
	if s.Teams, err = db.QueryInt("SELECT COUNT(*) FROM teams"); err != nil {
		return nil, err
	}
	if s.Publications, err = db.QueryInt("SELECT COUNT(*) FROM publications"); err != nil {
		return nil, err
	}
	if s.People > 0 {
		v, err := db.QueryValue("SELECT AVG(age) FROM people")
		if err != nil {
			return nil, err
		}
		s.AvgAge, _ = v.AsFloat()
	}
	res, err := db.Query(`SELECT t.center, COUNT(*) FROM people p JOIN teams t ON p.team = t.name GROUP BY t.center`)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		s.PeopleByCenter[r[0].Str()] = r[1].Int()
	}
	res, err = db.Query("SELECT year, COUNT(*) FROM publications GROUP BY year")
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		s.PubsPerYear[r[0].Int()] = r[1].Int()
	}
	res, err = db.Query("SELECT person_id, COUNT(*) FROM authorship GROUP BY person_id")
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		s.PubsPerPersonID[r[0].Int()] = r[1].Int()
	}
	return s, nil
}
