package raweb

import (
	"testing"

	"ediflow/internal/database"
)

func TestXMLRoundTrip(t *testing.T) {
	g := NewGenerator(3, 1)
	reports := g.YearReports(2005)
	if len(reports) != 3 {
		t.Fatalf("reports: %d", len(reports))
	}
	data, err := MarshalReport(reports[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Team != reports[0].Team || back.Year != 2005 || len(back.Members) != len(reports[0].Members) {
		t.Fatalf("%+v", back)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("Anna Martin", "Anna Martin") != 1 {
		t.Error("identity")
	}
	if s := Similarity("Anna Martin", "Anna Marti"); s < DedupThreshold {
		t.Errorf("typo similarity too low: %f", s)
	}
	if s := Similarity("Anna Martin", "Hugo Garcia"); s >= DedupThreshold {
		t.Errorf("distinct names too similar: %f", s)
	}
	if Similarity("", "x") != 0 {
		t.Error("empty string")
	}
	if s := Similarity("ANNA martin", "anna MARTIN"); s != 1 {
		t.Errorf("case-insensitive: %f", s)
	}
}

func TestIngestAndDedup(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	if err := Schema(db); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(4, 2)
	// Ingest years 2005–2009 (the paper's range).
	firstYear := 0
	for year := 2005; year <= 2009; year++ {
		for _, r := range g.YearReports(year) {
			n, err := Ingest(db, r)
			if err != nil {
				t.Fatal(err)
			}
			if year == 2005 {
				firstYear += n
			}
		}
	}
	people, _ := db.QueryInt("SELECT COUNT(*) FROM people")
	// Dedup must keep the population close to the stable rosters: later
	// years mostly resolve to existing people (allow a few typo-driven
	// additions).
	if people > int64(firstYear)*2 {
		t.Fatalf("dedup failed: %d people after 5 years, %d in year one", people, firstYear)
	}
	if people < int64(firstYear) {
		t.Fatalf("people lost: %d < %d", people, firstYear)
	}
	teams, _ := db.QueryInt("SELECT COUNT(*) FROM teams")
	if teams != 4 {
		t.Fatalf("teams: %d", teams)
	}
	pubs, _ := db.QueryInt("SELECT COUNT(*) FROM publications")
	if pubs == 0 {
		t.Fatal("no publications ingested")
	}
}

func TestComputeStats(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	Schema(db)
	g := NewGenerator(3, 7)
	for _, r := range g.YearReports(2005) {
		if _, err := Ingest(db, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range g.YearReports(2006) {
		if _, err := Ingest(db, r); err != nil {
			t.Fatal(err)
		}
	}
	s, err := ComputeStats(db)
	if err != nil {
		t.Fatal(err)
	}
	if s.People == 0 || s.Teams != 3 || s.Publications == 0 {
		t.Fatalf("%+v", s)
	}
	if s.AvgAge < 20 || s.AvgAge > 80 {
		t.Fatalf("avg age: %f", s.AvgAge)
	}
	if len(s.PeopleByCenter) == 0 {
		t.Fatal("center distribution empty")
	}
	if s.PubsPerYear[2005] == 0 || s.PubsPerYear[2006] == 0 {
		t.Fatalf("pubs per year: %v", s.PubsPerYear)
	}
	var centerTotal int64
	for _, n := range s.PeopleByCenter {
		centerTotal += n
	}
	if centerTotal != s.People {
		t.Fatalf("center sum %d != people %d", centerTotal, s.People)
	}
}
