package copubs

import (
	"testing"

	"ediflow/internal/database"
)

func TestGenerateScale(t *testing.T) {
	d := Generate(Config{Authors: 450, Edges: 1000, Seed: 1})
	if d.Graph.NodeCount() != 450 {
		t.Fatalf("nodes: %d", d.Graph.NodeCount())
	}
	if e := d.Graph.EdgeCount(); e < 800 || e > 1000 {
		t.Fatalf("edges: %d", e)
	}
	// Deterministic.
	d2 := Generate(Config{Authors: 450, Edges: 1000, Seed: 1})
	if d2.Graph.EdgeCount() != d.Graph.EdgeCount() {
		t.Fatal("not deterministic")
	}
}

func TestLoadAndRoundTrip(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	d := Generate(Config{Authors: 120, Edges: 300, Seed: 2})
	if err := d.Load(db); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM authors")
	if int(n) != d.Graph.NodeCount() {
		t.Fatalf("authors in db: %d", n)
	}
	e, _ := db.QueryInt("SELECT COUNT(*) FROM copublications")
	if int(e) != d.Graph.EdgeCount() {
		t.Fatalf("edges in db: %d", e)
	}
	// Round-trip through FromDB.
	g2, err := FromDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeCount() != d.Graph.NodeCount() || g2.EdgeCount() != d.Graph.EdgeCount() {
		t.Fatalf("round trip: %d/%d vs %d/%d",
			g2.NodeCount(), g2.EdgeCount(), d.Graph.NodeCount(), d.Graph.EdgeCount())
	}
	for _, ed := range d.Graph.Edges()[:10] {
		if g2.Weight(ed.A, ed.B) != ed.Weight {
			t.Fatalf("weight mismatch on (%d,%d)", ed.A, ed.B)
		}
	}
}

func TestGrowth(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	d := Generate(Config{Authors: 50, Edges: 100, Seed: 3})
	if err := d.Load(db); err != nil {
		t.Fatal(err)
	}
	gr := d.Grow(5, 10)
	if len(gr.NewAuthors) != 5 {
		t.Fatalf("new authors: %d", len(gr.NewAuthors))
	}
	if len(gr.NewEdges) < 5 {
		t.Fatalf("new edges: %d", len(gr.NewEdges))
	}
	// New authors connect to the existing network.
	for _, id := range gr.NewAuthors {
		if d.Graph.Degree(id) == 0 {
			t.Fatalf("author %d is disconnected", id)
		}
	}
	if err := gr.Apply(db, d.Graph); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM authors")
	if n != 55 {
		t.Fatalf("authors after growth: %d", n)
	}
}
