// Package copubs generates the synthetic stand-in for the paper's INRIA
// co-publication dataset (§VII-A: "about 4500 nodes and 10000 edges"):
// a community-structured co-authorship graph plus a growth stream of new
// publications, loadable into the EdiFlow database as `authors` and
// `copublications` relations.
package copubs

import (
	"fmt"
	"math/rand"

	"ediflow/internal/database"
	"ediflow/internal/graph"
	"ediflow/internal/types"
)

// PaperScale reproduces the evaluation dataset size.
var PaperScale = Config{Authors: 4500, Edges: 10000, Communities: 45, Seed: 2011}

// Config parameterizes generation.
type Config struct {
	Authors     int
	Edges       int
	Communities int
	Seed        int64
}

// Dataset is a generated co-publication network.
type Dataset struct {
	Config Config
	Graph  *graph.Graph

	rng        *rand.Rand
	nextAuthor int64
}

// Generate builds the dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Communities <= 0 {
		cfg.Communities = cfg.Authors/100 + 1
	}
	avgDeg := 4.0
	if cfg.Authors > 0 {
		avgDeg = float64(cfg.Edges) * 2 / float64(cfg.Authors)
	}
	g := graph.GenerateCommunity(graph.CommunityConfig{
		Nodes:       cfg.Authors,
		Communities: cfg.Communities,
		AvgDegree:   avgDeg,
		IntraProb:   0.9,
		Seed:        cfg.Seed,
	})
	return &Dataset{
		Config:     cfg,
		Graph:      g,
		rng:        rand.New(rand.NewSource(cfg.Seed + 7)),
		nextAuthor: int64(cfg.Authors) + 1,
	}
}

// Schema creates the authors and copublications relations.
func Schema(db *database.DB) error {
	ddl := []string{
		"CREATE TABLE IF NOT EXISTS authors (id INT PRIMARY KEY, name STRING NOT NULL)",
		"CREATE TABLE IF NOT EXISTS copublications (a INT NOT NULL, b INT NOT NULL, weight INT NOT NULL)",
	}
	for _, s := range ddl {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Load inserts the whole dataset into the database (batched inserts).
func (d *Dataset) Load(db *database.DB) error {
	if err := Schema(db); err != nil {
		return err
	}
	nodes := d.Graph.Nodes()
	const batch = 500
	for start := 0; start < len(nodes); start += batch {
		end := start + batch
		if end > len(nodes) {
			end = len(nodes)
		}
		sql := "INSERT INTO authors (id, name) VALUES "
		var args []types.Value
		for i, id := range nodes[start:end] {
			if i > 0 {
				sql += ", "
			}
			sql += "(?, ?)"
			args = append(args, types.NewInt(int64(id)), types.NewString(d.Graph.Label(id)))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return err
		}
	}
	edges := d.Graph.Edges()
	for start := 0; start < len(edges); start += batch {
		end := start + batch
		if end > len(edges) {
			end = len(edges)
		}
		sql := "INSERT INTO copublications (a, b, weight) VALUES "
		var args []types.Value
		for i, e := range edges[start:end] {
			if i > 0 {
				sql += ", "
			}
			sql += "(?, ?, ?)"
			args = append(args, types.NewInt(int64(e.A)), types.NewInt(int64(e.B)), types.NewInt(int64(e.Weight)))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return err
		}
	}
	return nil
}

// Growth is one batch of network growth: new authors and new
// co-publication edges (existing pairs may gain weight; here each edge is
// new).
type Growth struct {
	NewAuthors []graph.NodeID
	NewEdges   []graph.Edge
}

// Grow adds newAuthors authors (each wired to 1–3 existing ones) and
// extraEdges edges between existing authors, mutating the in-memory graph
// and returning the delta. This models "new publications are added to the
// database" while the analysis runs.
func (d *Dataset) Grow(newAuthors, extraEdges int) Growth {
	var gr Growth
	existing := d.Graph.Nodes()
	for i := 0; i < newAuthors; i++ {
		id := graph.NodeID(d.nextAuthor)
		d.nextAuthor++
		d.Graph.AddNode(id, fmt.Sprintf("author-%d", id))
		gr.NewAuthors = append(gr.NewAuthors, id)
		links := d.rng.Intn(3) + 1
		for l := 0; l < links && len(existing) > 0; l++ {
			other := existing[d.rng.Intn(len(existing))]
			if !d.Graph.HasEdge(id, other) {
				w := float64(d.rng.Intn(3) + 1)
				d.Graph.AddEdge(id, other, w)
				gr.NewEdges = append(gr.NewEdges, graph.Edge{A: id, B: other, Weight: w})
			}
		}
	}
	for i := 0; i < extraEdges && len(existing) > 1; i++ {
		a := existing[d.rng.Intn(len(existing))]
		b := existing[d.rng.Intn(len(existing))]
		if a == b || d.Graph.HasEdge(a, b) {
			continue
		}
		w := float64(d.rng.Intn(3) + 1)
		d.Graph.AddEdge(a, b, w)
		gr.NewEdges = append(gr.NewEdges, graph.Edge{A: a, B: b, Weight: w})
	}
	return gr
}

// Apply writes a growth batch to the database as one multi-row INSERT per
// table, so each table change fires exactly one statement-level trigger —
// the delta handlers then see the whole batch at once.
func (gr Growth) Apply(db *database.DB, g *graph.Graph) error {
	if len(gr.NewAuthors) > 0 {
		sql := "INSERT INTO authors (id, name) VALUES "
		var args []types.Value
		for i, id := range gr.NewAuthors {
			if i > 0 {
				sql += ", "
			}
			sql += "(?, ?)"
			args = append(args, types.NewInt(int64(id)), types.NewString(g.Label(id)))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return err
		}
	}
	if len(gr.NewEdges) > 0 {
		sql := "INSERT INTO copublications (a, b, weight) VALUES "
		var args []types.Value
		for i, e := range gr.NewEdges {
			if i > 0 {
				sql += ", "
			}
			sql += "(?, ?, ?)"
			args = append(args, types.NewInt(int64(e.A)), types.NewInt(int64(e.B)), types.NewInt(int64(e.Weight)))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return err
		}
	}
	return nil
}

// FromDB reconstructs the graph from the database relations (the layout
// procedure's read path).
func FromDB(db *database.DB) (*graph.Graph, error) {
	g := graph.New()
	authors, err := db.Query("SELECT id, name FROM authors")
	if err != nil {
		return nil, err
	}
	for _, r := range authors.Rows {
		g.AddNode(graph.NodeID(r[0].Int()), r[1].Str())
	}
	edges, err := db.Query("SELECT a, b, weight FROM copublications")
	if err != nil {
		return nil, err
	}
	for _, r := range edges.Rows {
		if err := g.AddEdge(graph.NodeID(r[0].Int()), graph.NodeID(r[1].Int()), float64(r[2].Int())); err != nil {
			return nil, err
		}
	}
	return g, nil
}
