// Package wiki generates the Wikipedia workload of §III-b: a synthetic
// stream of versioned article edits at a configurable rate (the real feed
// runs at ~10 edits/s over ~1M pages) and the application's four metric
// tasks:
//
//	(i)   compute the differences between successive versions;
//	(ii)  compute a contribution table storing, at each position, the
//	      identifier of the user who entered it;
//	(iii) per article, the number of distinct effective contributors;
//	(iv)  per user, the total durable contribution (characters remaining
//	      in the latest versions over characters inserted).
//
// Texts are token sequences rather than raw characters — the same
// computation over a coarser alphabet (see DESIGN.md substitutions). The
// metrics engine is incremental (apply one new version) with a
// full-recompute baseline, supporting the paper's claim that "a total
// recomputation of the aggregation is out of reach".
package wiki

import (
	"fmt"
	"math/rand"
)

// Edit is one article revision.
type Edit struct {
	Article int64
	User    int64
	Version int
	Tokens  []string
}

// Config parameterizes the generator.
type Config struct {
	Articles int
	Users    int
	Seed     int64
	// InitialTokens is the starting article length (default 80).
	InitialTokens int
}

// Generator produces a deterministic edit stream.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	texts map[int64][]string
	vers  map[int64]int
	vocab []string
}

// NewGenerator builds the generator and the initial article texts
// (version 1 of every article, authored by random users).
func NewGenerator(cfg Config) *Generator {
	if cfg.Articles <= 0 {
		cfg.Articles = 10
	}
	if cfg.Users <= 0 {
		cfg.Users = 5
	}
	if cfg.InitialTokens <= 0 {
		cfg.InitialTokens = 80
	}
	g := &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		texts: map[int64][]string{},
		vers:  map[int64]int{},
	}
	for i := 0; i < 400; i++ {
		g.vocab = append(g.vocab, fmt.Sprintf("w%03d", i))
	}
	return g
}

// Bootstrap emits the first version of every article.
func (g *Generator) Bootstrap() []Edit {
	var out []Edit
	for a := int64(1); a <= int64(g.cfg.Articles); a++ {
		tokens := make([]string, g.cfg.InitialTokens)
		for i := range tokens {
			tokens[i] = g.vocab[g.rng.Intn(len(g.vocab))]
		}
		g.texts[a] = tokens
		g.vers[a] = 1
		out = append(out, Edit{
			Article: a,
			User:    int64(g.rng.Intn(g.cfg.Users) + 1),
			Version: 1,
			Tokens:  append([]string(nil), tokens...),
		})
	}
	return out
}

// NextEdit mutates a random article: an insertion of 1–10 tokens at a
// random position, sometimes with a deletion of a short span.
func (g *Generator) NextEdit() Edit {
	a := int64(g.rng.Intn(g.cfg.Articles) + 1)
	if _, ok := g.texts[a]; !ok {
		// Article not bootstrapped: create it.
		g.texts[a] = []string{}
		g.vers[a] = 0
	}
	text := g.texts[a]
	// Deletion first (on the old text).
	if len(text) > 10 && g.rng.Float64() < 0.4 {
		start := g.rng.Intn(len(text) - 5)
		span := g.rng.Intn(4) + 1
		text = append(append([]string{}, text[:start]...), text[start+span:]...)
	}
	// Insertion.
	pos := 0
	if len(text) > 0 {
		pos = g.rng.Intn(len(text) + 1)
	}
	n := g.rng.Intn(10) + 1
	ins := make([]string, n)
	for i := range ins {
		ins[i] = g.vocab[g.rng.Intn(len(g.vocab))]
	}
	newText := make([]string, 0, len(text)+n)
	newText = append(newText, text[:pos]...)
	newText = append(newText, ins...)
	newText = append(newText, text[pos:]...)
	g.texts[a] = newText
	g.vers[a]++
	return Edit{
		Article: a,
		User:    int64(g.rng.Intn(g.cfg.Users) + 1),
		Version: g.vers[a],
		Tokens:  append([]string(nil), newText...),
	}
}

// ----------------------------------------------------------------- diff

// OpKind is one diff operation kind.
type OpKind uint8

// Diff operation kinds.
const (
	OpKeep OpKind = iota
	OpInsert
	OpDelete
)

// Op is one diff step over token runs.
type Op struct {
	Kind OpKind
	N    int // number of tokens
}

// Diff computes an edit script old → new via LCS (task (i) of §III-b).
func Diff(old, new []string) []Op {
	n, m := len(old), len(new)
	// LCS table (O(n·m)); article lengths stay modest by construction.
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if old[i] == new[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var ops []Op
	push := func(k OpKind, n int) {
		if n == 0 {
			return
		}
		if len(ops) > 0 && ops[len(ops)-1].Kind == k {
			ops[len(ops)-1].N += n
			return
		}
		ops = append(ops, Op{Kind: k, N: n})
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case old[i] == new[j]:
			push(OpKeep, 1)
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			push(OpDelete, 1)
			i++
		default:
			push(OpInsert, 1)
			j++
		}
	}
	push(OpDelete, n-i)
	push(OpInsert, m-j)
	return ops
}

// DiffCounts summarizes a script.
func DiffCounts(ops []Op) (inserted, deleted, kept int) {
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			inserted += op.N
		case OpDelete:
			deleted += op.N
		case OpKeep:
			kept += op.N
		}
	}
	return
}

// -------------------------------------------------------------- metrics

// UserStats aggregates one user's contribution.
type UserStats struct {
	Inserted  int64 // tokens ever inserted
	Remaining int64 // tokens still present in latest versions
}

// Durability is the paper's metric: characters remaining over characters
// inserted ("how durable are the contributions of a given user").
func (u UserStats) Durability() float64 {
	if u.Inserted == 0 {
		return 0
	}
	return float64(u.Remaining) / float64(u.Inserted)
}

// Metrics maintains tasks (ii)–(iv) incrementally.
type Metrics struct {
	// contribution[a][k] = user who entered token k of article a (task ii).
	contribution map[int64][]int64
	users        map[int64]*UserStats
	versions     map[int64]int
}

// NewMetrics returns empty state.
func NewMetrics() *Metrics {
	return &Metrics{
		contribution: map[int64][]int64{},
		users:        map[int64]*UserStats{},
		versions:     map[int64]int{},
	}
}

func (m *Metrics) user(id int64) *UserStats {
	u, ok := m.users[id]
	if !ok {
		u = &UserStats{}
		m.users[id] = u
	}
	return u
}

// ApplyEdit ingests one new version incrementally: diff against the
// previous version, splice the contribution table, update user counters.
func (m *Metrics) ApplyEdit(e Edit, prevTokens []string) error {
	if got := m.versions[e.Article] + 1; e.Version != got {
		return fmt.Errorf("wiki: article %d expects version %d, got %d", e.Article, got, e.Version)
	}
	old := m.contribution[e.Article]
	if len(old) != len(prevTokens) {
		return fmt.Errorf("wiki: contribution table out of sync for article %d (%d vs %d tokens)",
			e.Article, len(old), len(prevTokens))
	}
	ops := Diff(prevTokens, e.Tokens)
	newContrib := make([]int64, 0, len(e.Tokens))
	oi := 0
	for _, op := range ops {
		switch op.Kind {
		case OpKeep:
			newContrib = append(newContrib, old[oi:oi+op.N]...)
			oi += op.N
		case OpDelete:
			for _, owner := range old[oi : oi+op.N] {
				m.user(owner).Remaining--
			}
			oi += op.N
		case OpInsert:
			u := m.user(e.User)
			u.Inserted += int64(op.N)
			u.Remaining += int64(op.N)
			for k := 0; k < op.N; k++ {
				newContrib = append(newContrib, e.User)
			}
		}
	}
	if len(newContrib) != len(e.Tokens) {
		return fmt.Errorf("wiki: diff splice mismatch (%d vs %d)", len(newContrib), len(e.Tokens))
	}
	m.contribution[e.Article] = newContrib
	m.versions[e.Article] = e.Version
	return nil
}

// Contributors returns the number of distinct effective contributors of
// an article (task iii): users owning at least one surviving token.
func (m *Metrics) Contributors(article int64) int {
	seen := map[int64]bool{}
	for _, u := range m.contribution[article] {
		seen[u] = true
	}
	return len(seen)
}

// UserStatsFor returns a user's counters (zero value if unseen).
func (m *Metrics) UserStatsFor(user int64) UserStats {
	if u, ok := m.users[user]; ok {
		return *u
	}
	return UserStats{}
}

// Users lists user ids with any recorded activity.
func (m *Metrics) Users() []int64 {
	out := make([]int64, 0, len(m.users))
	for id := range m.users {
		out = append(out, id)
	}
	return out
}

// Articles lists tracked article ids.
func (m *Metrics) Articles() []int64 {
	out := make([]int64, 0, len(m.contribution))
	for id := range m.contribution {
		out = append(out, id)
	}
	return out
}

// Version returns the latest applied version of an article.
func (m *Metrics) Version(article int64) int { return m.versions[article] }

// ContributionTable exposes a copy of an article's attribution (task ii).
func (m *Metrics) ContributionTable(article int64) []int64 {
	return append([]int64(nil), m.contribution[article]...)
}

// Recompute replays a full version history from scratch (the baseline the
// paper rules out at Wikipedia scale). Versions must be grouped per
// article in increasing version order; interleaving across articles is
// fine.
func Recompute(history []Edit) (*Metrics, error) {
	m := NewMetrics()
	prev := map[int64][]string{}
	for _, e := range history {
		if err := m.ApplyEdit(e, prev[e.Article]); err != nil {
			return nil, err
		}
		prev[e.Article] = e.Tokens
	}
	return m, nil
}
