package wiki

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiffBasics(t *testing.T) {
	old := []string{"a", "b", "c", "d"}
	new := []string{"a", "x", "b", "d"}
	ops := Diff(old, new)
	ins, del, kept := DiffCounts(ops)
	if ins != 1 || del != 1 || kept != 3 {
		t.Fatalf("ins=%d del=%d kept=%d (%+v)", ins, del, kept, ops)
	}
}

func TestDiffEdgeCases(t *testing.T) {
	if ops := Diff(nil, nil); len(ops) != 0 {
		t.Fatalf("%+v", ops)
	}
	ins, del, kept := DiffCounts(Diff(nil, []string{"a", "b"}))
	if ins != 2 || del != 0 || kept != 0 {
		t.Fatal("pure insert")
	}
	ins, del, kept = DiffCounts(Diff([]string{"a", "b"}, nil))
	if ins != 0 || del != 2 || kept != 0 {
		t.Fatal("pure delete")
	}
	ins, del, kept = DiffCounts(Diff([]string{"a"}, []string{"a"}))
	if ins != 0 || del != 0 || kept != 1 {
		t.Fatal("identity")
	}
}

// Property: applying the diff script to old reproduces new, and counts add
// up (|new| = kept + inserted, |old| = kept + deleted).
func TestDiffScriptCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"a", "b", "c", "d", "e"}
		old := make([]string, rng.Intn(40))
		for i := range old {
			old[i] = vocab[rng.Intn(len(vocab))]
		}
		new := make([]string, rng.Intn(40))
		for i := range new {
			new[i] = vocab[rng.Intn(len(vocab))]
		}
		ops := Diff(old, new)
		ins, del, kept := DiffCounts(ops)
		if kept+ins != len(new) || kept+del != len(old) {
			return false
		}
		// Replay the script.
		var rebuilt []string
		oi, ni := 0, 0
		for _, op := range ops {
			switch op.Kind {
			case OpKeep:
				rebuilt = append(rebuilt, old[oi:oi+op.N]...)
				oi += op.N
				ni += op.N
			case OpDelete:
				oi += op.N
			case OpInsert:
				rebuilt = append(rebuilt, new[ni:ni+op.N]...)
				ni += op.N
			}
		}
		if len(rebuilt) != len(new) {
			return false
		}
		for i := range rebuilt {
			if rebuilt[i] != new[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorDeterministicStream(t *testing.T) {
	g1 := NewGenerator(Config{Articles: 5, Users: 3, Seed: 42})
	g2 := NewGenerator(Config{Articles: 5, Users: 3, Seed: 42})
	b1 := g1.Bootstrap()
	b2 := g2.Bootstrap()
	if len(b1) != 5 || len(b1) != len(b2) {
		t.Fatalf("bootstrap: %d", len(b1))
	}
	for i := 0; i < 20; i++ {
		e1, e2 := g1.NextEdit(), g2.NextEdit()
		if e1.Article != e2.Article || e1.Version != e2.Version || len(e1.Tokens) != len(e2.Tokens) {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestMetricsIncremental(t *testing.T) {
	m := NewMetrics()
	// User 1 writes version 1 of article 7.
	v1 := Edit{Article: 7, User: 1, Version: 1, Tokens: []string{"a", "b", "c"}}
	if err := m.ApplyEdit(v1, nil); err != nil {
		t.Fatal(err)
	}
	if m.Contributors(7) != 1 {
		t.Fatalf("contributors: %d", m.Contributors(7))
	}
	u1 := m.UserStatsFor(1)
	if u1.Inserted != 3 || u1.Remaining != 3 || u1.Durability() != 1.0 {
		t.Fatalf("%+v", u1)
	}
	// User 2 replaces "b" with "x y".
	v2 := Edit{Article: 7, User: 2, Version: 2, Tokens: []string{"a", "x", "y", "c"}}
	if err := m.ApplyEdit(v2, v1.Tokens); err != nil {
		t.Fatal(err)
	}
	if m.Contributors(7) != 2 {
		t.Fatalf("contributors: %d", m.Contributors(7))
	}
	u1 = m.UserStatsFor(1)
	if u1.Inserted != 3 || u1.Remaining != 2 {
		t.Fatalf("user1 after overwrite: %+v", u1)
	}
	u2 := m.UserStatsFor(2)
	if u2.Inserted != 2 || u2.Remaining != 2 {
		t.Fatalf("user2: %+v", u2)
	}
	// Contribution table (task ii).
	ct := m.ContributionTable(7)
	want := []int64{1, 2, 2, 1}
	for i := range want {
		if ct[i] != want[i] {
			t.Fatalf("contribution table: %v", ct)
		}
	}
	// Version ordering enforced.
	if err := m.ApplyEdit(Edit{Article: 7, User: 1, Version: 5, Tokens: nil}, v2.Tokens); err == nil {
		t.Fatal("version gap must error")
	}
}

// Property: the incremental metrics equal a full recomputation over any
// generated history — the correctness claim behind "incremental
// re-computations" (§III-b).
func TestIncrementalEqualsRecompute(t *testing.T) {
	g := NewGenerator(Config{Articles: 6, Users: 4, Seed: 11})
	history := g.Bootstrap()
	for i := 0; i < 150; i++ {
		history = append(history, g.NextEdit())
	}
	// Incremental.
	inc := NewMetrics()
	prev := map[int64][]string{}
	for _, e := range history {
		if err := inc.ApplyEdit(e, prev[e.Article]); err != nil {
			t.Fatal(err)
		}
		prev[e.Article] = e.Tokens
	}
	// Full recompute.
	full, err := Recompute(history)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range inc.Articles() {
		if inc.Contributors(a) != full.Contributors(a) {
			t.Fatalf("article %d: %d vs %d contributors", a, inc.Contributors(a), full.Contributors(a))
		}
		if inc.Version(a) != full.Version(a) {
			t.Fatalf("article %d versions differ", a)
		}
	}
	for _, u := range inc.Users() {
		a, b := inc.UserStatsFor(u), full.UserStatsFor(u)
		if a != b {
			t.Fatalf("user %d: %+v vs %+v", u, a, b)
		}
	}
	// Sanity: remaining tokens equal total text length.
	var remaining int64
	for _, u := range inc.Users() {
		remaining += inc.UserStatsFor(u).Remaining
	}
	var textLen int64
	for _, tokens := range prev {
		textLen += int64(len(tokens))
	}
	if remaining != textLen {
		t.Fatalf("remaining %d != text length %d", remaining, textLen)
	}
}
