package firehose

import (
	"testing"
	"time"

	"ediflow/internal/wf"
)

// TestFirehoseSoak is the CI fault-drill smoke: a short sustained-rate
// run through the whole chain under -race. The rate is deliberately
// modest — the race detector costs an order of magnitude — but the
// invariants are the full-strength ones: every statement's delta reaches
// the handler, the views match a recompute exactly, and notifications
// were recorded.
func TestFirehoseSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	st, err := Run(Config{Rate: 8_000, Duration: 1500 * time.Millisecond, Batch: 128, Notify: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Divergence != "" {
		t.Fatalf("view divergence: %s", st.Divergence)
	}
	// Coalesce policy loses nothing: every engine event on fh_edits is
	// accounted for in some delivered delta.
	if st.HandlerEvents != st.Statements {
		t.Fatalf("handler saw %d events for %d statements", st.HandlerEvents, st.Statements)
	}
	if st.HandlerDeltas == 0 || st.HandlerDeltas > st.Statements {
		t.Fatalf("deltas: %d (statements: %d)", st.HandlerDeltas, st.Statements)
	}
	if st.Shed != 0 {
		t.Fatalf("coalesce policy shed %d deltas", st.Shed)
	}
	if st.Notifications == 0 || st.NotifyLines == 0 {
		t.Fatalf("notification chain silent: %d rows, %d lines", st.Notifications, st.NotifyLines)
	}
	if st.P99 <= 0 {
		t.Fatal("no latency samples")
	}
}

// TestFirehoseShedPolicy drives a tiny queue under shed policy: the run
// must stay correct (views never shed — only handler deliveries do) even
// when deltas are dropped.
func TestFirehoseShedPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	st, err := Run(Config{Rate: 8_000, Duration: 800 * time.Millisecond, Batch: 128,
		Policy: wf.PolicyShed, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Divergence != "" {
		t.Fatalf("view divergence under shed: %s", st.Divergence)
	}
	// Shed deltas may each carry several coalesced events, so the precise
	// ledger is one-sided: deliveries never exceed what was sent, and a
	// loss-free run must have delivered everything.
	if st.HandlerEvents > st.Statements {
		t.Fatalf("delivered %d events for %d statements", st.HandlerEvents, st.Statements)
	}
	if st.Shed == 0 && st.HandlerEvents != st.Statements {
		t.Fatalf("nothing shed yet %d of %d events delivered", st.HandlerEvents, st.Statements)
	}
}

// TestFirehoseBlockPolicy exercises backpressure end-to-end: with block
// policy nothing is ever lost, whatever the queue size.
func TestFirehoseBlockPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	st, err := Run(Config{Rate: 8_000, Duration: 800 * time.Millisecond, Batch: 128,
		Policy: wf.PolicyBlock, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Divergence != "" {
		t.Fatalf("view divergence under block: %s", st.Divergence)
	}
	if st.HandlerEvents != st.Statements {
		t.Fatalf("block policy lost events: %d of %d", st.HandlerEvents, st.Statements)
	}
}
