// Package firehose drives the reactive substrate at a sustained,
// configurable event rate and measures what survives: a paced generator
// issues multi-row INSERT batches (with interleaved single-row UPDATEs
// and DELETEs) against a table carrying two incrementally maintained
// views, an update-propagation subscription and a §VI-C notification
// endpoint — the full trigger → IVM → delta handler → NOTIFY chain.
//
// Every generated row embeds its creation timestamp, so the delta
// handler can measure end-to-end propagation latency (statement build to
// handler invocation) without clock coordination. After the soak the
// driver quiesces the reactive queues and compares both views against a
// full recompute: any divergence at any rate is a correctness bug, not a
// performance artifact.
package firehose

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/module"
	"ediflow/internal/notify"
	"ediflow/internal/types"
	"ediflow/internal/wf"
	"ediflow/internal/wf/react"
)

// Config tunes one firehose run. Zero values pick sensible defaults.
type Config struct {
	// Rate is the target sustained event rate (row changes per second).
	Rate int
	// Events is the total number of events to send. When 0, the run is
	// time-bounded by Duration instead.
	Events int64
	// Duration bounds the soak when Events == 0 (default 2s).
	Duration time.Duration
	// Batch is the number of rows per INSERT statement (default 256).
	Batch int
	// Entities is the number of distinct entity keys, i.e. aggregate
	// groups (default 64).
	Entities int
	// UpdateEvery issues one single-row UPDATE per N insert batches
	// (default 4; negative disables).
	UpdateEvery int
	// DeleteEvery issues one single-row DELETE per N insert batches
	// (default 8; negative disables).
	DeleteEvery int
	// Policy is the update-propagation overflow policy (§V): coalesce,
	// shed or block. Empty means coalesce.
	Policy wf.Policy
	// QueueCap overrides the per-subscription delta queue capacity.
	QueueCap int
	// Notify attaches a notification-protocol client to the aggregate
	// view, closing the chain with a real NOTIFY socket.
	Notify bool
	// Dir is the storage directory ("" = in-memory).
	Dir string
	// Seed fixes the value stream (default 2011).
	Seed int64
}

func (c *Config) defaults() {
	if c.Rate <= 0 {
		c.Rate = 50_000
	}
	if c.Events == 0 && c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Events == 0 {
		c.Events = int64(float64(c.Rate) * c.Duration.Seconds())
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Entities <= 0 {
		c.Entities = 64
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 4
	}
	if c.DeleteEvery == 0 {
		c.DeleteEvery = 8
	}
	if c.Policy == "" {
		c.Policy = wf.PolicyCoalesce
	}
	if c.Seed == 0 {
		c.Seed = 2011
	}
}

// Stats summarizes one run.
type Stats struct {
	TargetRate   int           `json:"target_rate"`
	EventsSent   int64         `json:"events_sent"`
	Statements   int64         `json:"statements"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	AchievedRate float64       `json:"achieved_rate"`

	// Delta handler side.
	HandlerDeltas int64         `json:"handler_deltas"`
	HandlerEvents int64         `json:"handler_events"`
	HandlerRows   int64         `json:"handler_rows"`
	P50           time.Duration `json:"latency_p50_ns"`
	P90           time.Duration `json:"latency_p90_ns"`
	P99           time.Duration `json:"latency_p99_ns"`
	Max           time.Duration `json:"latency_max_ns"`

	// react.* overflow accounting.
	Coalesced int64 `json:"coalesced"`
	Shed      int64 `json:"shed"`
	Blocked   int64 `json:"blocked"`
	Cancelled int64 `json:"cancelled_rows"`

	// Notification chain.
	NotifyLines   int64 `json:"notify_lines"`
	Notifications int64 `json:"notifications"`

	// Divergence is non-empty when a view's contents differ from a full
	// recompute of its defining query after the run drained.
	Divergence string `json:"divergence,omitempty"`
}

// sink is the update-propagation target: it timestamps deliveries against
// the ts column the generator embeds in every row.
type sink struct {
	mu     sync.Mutex
	deltas int64
	events int64
	rows   int64
	lats   []time.Duration
}

func (s *sink) RouteDelta(_ string, _ wf.UP, d module.Delta) {
	now := time.Now().UnixNano()
	worst := int64(-1)
	for _, r := range d.Rows {
		if ts := r[3].Int(); now-ts > worst {
			worst = now - ts
		}
	}
	n := d.Events
	if n == 0 {
		n = 1
	}
	s.mu.Lock()
	s.deltas++
	s.events += int64(n)
	s.rows += int64(len(d.Rows) + len(d.OldRows))
	if worst >= 0 {
		s.lats = append(s.lats, time.Duration(worst))
	}
	s.mu.Unlock()
}

// Run executes one firehose soak and reports what the pipeline sustained.
func Run(cfg Config) (Stats, error) {
	cfg.defaults()
	db, err := database.Open(cfg.Dir)
	if err != nil {
		return Stats{}, err
	}
	defer db.Close()
	notifier, err := notify.NewNotifier(db)
	if err != nil {
		return Stats{}, err
	}
	defer notifier.Close()

	if _, err := db.Exec("CREATE TABLE fh_edits (id INT PRIMARY KEY, entity INT, v INT, ts INT)"); err != nil {
		return Stats{}, err
	}
	// One view per maintenance class: the counting algorithm and delta
	// substitution both ride every batch.
	if _, err := db.Exec("CREATE MATERIALIZED VIEW fh_totals AS SELECT entity, COUNT(*) AS n, SUM(v) AS s FROM fh_edits GROUP BY entity"); err != nil {
		return Stats{}, err
	}
	if _, err := db.Exec("CREATE MATERIALIZED VIEW fh_hot AS SELECT id, entity, v FROM fh_edits WHERE v >= 900"); err != nil {
		return Stats{}, err
	}

	var ropts []react.Option
	if cfg.QueueCap > 0 {
		ropts = append(ropts, react.WithQueueCap(cfg.QueueCap))
	}
	router := react.NewRouter(db, ropts...)
	defer router.Close()
	target := &sink{}
	up := wf.UP{Relation: "fh_edits", Activity: "ingest", Scope: wf.ScopeRunning, Policy: cfg.Policy}
	if err := router.Register("firehose", up, target); err != nil {
		return Stats{}, err
	}

	var notifyLines atomic.Int64
	if cfg.Notify {
		cl, err := notify.Connect(db, "firehose", "fh_totals")
		if err != nil {
			return Stats{}, err
		}
		defer cl.Close()
		go func() {
			for range cl.C {
				notifyLines.Add(1)
			}
		}()
	}

	// Precomputed multi-row INSERT text; the args slice is rebuilt per
	// batch but the SQL string (and whatever the engine caches off it)
	// stays stable.
	var sb strings.Builder
	sb.WriteString("INSERT INTO fh_edits (id, entity, v, ts) VALUES ")
	for i := 0; i < cfg.Batch; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(?, ?, ?, ?)")
	}
	insertSQL := sb.String()
	args := make([]types.Value, 0, cfg.Batch*4)

	rng := rand.New(rand.NewSource(cfg.Seed))
	live := make([]int64, 0, cfg.Events)
	var (
		sent    int64
		stmts   int64
		nextID  int64
		batches int64
	)
	start := time.Now()
	for sent < cfg.Events {
		n := cfg.Batch
		if remaining := cfg.Events - sent; int64(n) > remaining {
			n = int(remaining)
		}
		sql := insertSQL
		if n != cfg.Batch {
			var tail strings.Builder
			tail.WriteString("INSERT INTO fh_edits (id, entity, v, ts) VALUES ")
			for i := 0; i < n; i++ {
				if i > 0 {
					tail.WriteString(", ")
				}
				tail.WriteString("(?, ?, ?, ?)")
			}
			sql = tail.String()
		}
		args = args[:0]
		now := time.Now().UnixNano()
		for i := 0; i < n; i++ {
			nextID++
			live = append(live, nextID)
			args = append(args,
				types.NewInt(nextID),
				types.NewInt(rng.Int63n(int64(cfg.Entities))),
				types.NewInt(rng.Int63n(1000)),
				types.NewInt(now))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return Stats{}, fmt.Errorf("firehose insert: %w", err)
		}
		sent += int64(n)
		stmts++
		batches++

		if cfg.UpdateEvery > 0 && batches%int64(cfg.UpdateEvery) == 0 && len(live) > 0 && sent < cfg.Events {
			id := live[rng.Intn(len(live))]
			if _, err := db.Exec("UPDATE fh_edits SET v = ?, ts = ? WHERE id = ?",
				types.NewInt(rng.Int63n(1000)), types.NewInt(time.Now().UnixNano()), types.NewInt(id)); err != nil {
				return Stats{}, fmt.Errorf("firehose update: %w", err)
			}
			sent++
			stmts++
		}
		if cfg.DeleteEvery > 0 && batches%int64(cfg.DeleteEvery) == 0 && len(live) > 0 && sent < cfg.Events {
			i := rng.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := db.Exec("DELETE FROM fh_edits WHERE id = ?", types.NewInt(id)); err != nil {
				return Stats{}, fmt.Errorf("firehose delete: %w", err)
			}
			sent++
			stmts++
		}

		// Pace against the ideal schedule: sleep only when ahead, so a
		// saturated pipeline degrades to best-effort and the achieved
		// rate reports the truth. The 1ms margin absorbs the scheduler's
		// systematic oversleep, which otherwise shaves ~0.5% off every
		// run regardless of target.
		ideal := time.Duration(float64(sent) / float64(cfg.Rate) * float64(time.Second))
		if lead := ideal - time.Since(start); lead > time.Millisecond {
			time.Sleep(lead - time.Millisecond)
		}
	}
	elapsed := time.Since(start)
	router.Quiesce()

	st := Stats{
		TargetRate:   cfg.Rate,
		EventsSent:   sent,
		Statements:   stmts,
		Elapsed:      elapsed,
		AchievedRate: float64(sent) / elapsed.Seconds(),
		NotifyLines:  notifyLines.Load(),
	}
	target.mu.Lock()
	st.HandlerDeltas = target.deltas
	st.HandlerEvents = target.events
	st.HandlerRows = target.rows
	lats := append([]time.Duration(nil), target.lats...)
	target.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	st.P50, st.P90, st.P99 = pct(0.50), pct(0.90), pct(0.99)
	if len(lats) > 0 {
		st.Max = lats[len(lats)-1]
	}
	reg := db.Metrics()
	st.Coalesced = reg.Counter("react.coalesced").Value()
	st.Shed = reg.Counter("react.shed").Value()
	st.Blocked = reg.Counter("react.blocked").Value()
	st.Cancelled = reg.Counter("react.cancelled_rows").Value()
	st.Notifications, _ = db.QueryInt("SELECT COUNT(*) FROM " + database.TableNotification)

	st.Divergence = checkDivergence(db)
	return st, nil
}

// checkDivergence compares each view's materialized contents against a
// full recompute of its defining query. Empty string means identical.
func checkDivergence(db *database.DB) string {
	for _, pair := range [][3]string{
		{"fh_totals", "SELECT entity, n, s FROM fh_totals", "SELECT entity, COUNT(*), SUM(v) FROM fh_edits GROUP BY entity"},
		{"fh_hot", "SELECT id, entity, v FROM fh_hot", "SELECT id, entity, v FROM fh_edits WHERE v >= 900"},
	} {
		got, err := db.Query(pair[1])
		if err != nil {
			return fmt.Sprintf("%s: %v", pair[0], err)
		}
		want, err := db.Query(pair[2])
		if err != nil {
			return fmt.Sprintf("%s recompute: %v", pair[0], err)
		}
		if g, w := multisetKey(got.Rows), multisetKey(want.Rows); g != w {
			return fmt.Sprintf("%s: %d materialized rows != %d recomputed", pair[0], len(got.Rows), len(want.Rows))
		}
	}
	return ""
}

func multisetKey(rows []types.Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = types.RowKey(r)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
