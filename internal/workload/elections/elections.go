// Package elections generates the US-elections workload (§III-a,
// Figure 1): a database of 51 states that gradually fills with precinct
// returns on voting day, a two-activity process (aggregate, visualize)
// recomputing per-state shares as results arrive, and a treemap coloring
// where "the more the states vote for the respective party, the darker
// the color".
package elections

import (
	"math/rand"

	"ediflow/internal/database"
	"ediflow/internal/types"
)

// State is one of the 51 jurisdictions (50 states + DC).
type State struct {
	ID         int64
	Name       string
	Population int64
	// Lean biases the synthetic returns: probability a ballot goes to the
	// Democratic candidate.
	Lean float64
}

// Return is one precinct result batch.
type Return struct {
	StateID  int64
	DemVotes int64
	RepVotes int64
}

// StateNames are the 51 jurisdiction names.
var StateNames = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "District of Columbia", "Florida", "Georgia",
	"Hawaii", "Idaho", "Illinois", "Indiana", "Iowa", "Kansas", "Kentucky",
	"Louisiana", "Maine", "Maryland", "Massachusetts", "Michigan",
	"Minnesota", "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
	"New Hampshire", "New Jersey", "New Mexico", "New York",
	"North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
	"Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
	"Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
	"West Virginia", "Wisconsin", "Wyoming",
}

// Generator produces seeded synthetic election data.
type Generator struct {
	States []State
	rng    *rand.Rand
}

// NewGenerator builds the 51 states with seeded populations and leans.
func NewGenerator(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{rng: rng}
	for i, name := range StateNames {
		g.States = append(g.States, State{
			ID:         int64(i + 1),
			Name:       name,
			Population: int64(500_000 + rng.Intn(39_000_000)),
			Lean:       0.25 + rng.Float64()*0.5, // 25%–75% dem
		})
	}
	return g
}

// Schema creates the states and returns relations.
func Schema(db *database.DB) error {
	ddl := []string{
		`CREATE TABLE IF NOT EXISTS states (
			id INT PRIMARY KEY, name STRING NOT NULL, population INT NOT NULL,
			last1 STRING, last2 STRING, last3 STRING)`,
		`CREATE TABLE IF NOT EXISTS returns (
			state_id INT NOT NULL, dem INT NOT NULL, rep INT NOT NULL)`,
	}
	for _, s := range ddl {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Load inserts the states (with the paper's "party which won the State
// during the last three elections" columns, synthesized from the lean).
func (g *Generator) Load(db *database.DB) error {
	if err := Schema(db); err != nil {
		return err
	}
	for _, s := range g.States {
		past := func() string {
			if g.rng.Float64() < s.Lean {
				return "dem"
			}
			return "rep"
		}
		if _, err := db.Exec(
			"INSERT INTO states (id, name, population, last1, last2, last3) VALUES (?, ?, ?, ?, ?, ?)",
			types.NewInt(s.ID), types.NewString(s.Name), types.NewInt(s.Population),
			types.NewString(past()), types.NewString(past()), types.NewString(past())); err != nil {
			return err
		}
	}
	return nil
}

// NextBatch produces n precinct returns ("on the voting day, the database
// gradually fills with new data").
func (g *Generator) NextBatch(n int) []Return {
	out := make([]Return, 0, n)
	for i := 0; i < n; i++ {
		s := g.States[g.rng.Intn(len(g.States))]
		ballots := int64(g.rng.Intn(5000) + 100)
		dem := int64(float64(ballots) * clamp(s.Lean+g.rng.NormFloat64()*0.05))
		out = append(out, Return{StateID: s.ID, DemVotes: dem, RepVotes: ballots - dem})
	}
	return out
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Apply inserts a batch of returns.
func Apply(db *database.DB, batch []Return) error {
	for _, r := range batch {
		if _, err := db.Exec("INSERT INTO returns (state_id, dem, rep) VALUES (?, ?, ?)",
			types.NewInt(r.StateID), types.NewInt(r.DemVotes), types.NewInt(r.RepVotes)); err != nil {
			return err
		}
	}
	return nil
}

// Tally is the aggregated per-state outcome.
type Tally struct {
	StateID    int64
	Name       string
	Population int64
	Dem, Rep   int64
}

// DemShare returns the Democratic share of counted ballots (0.5 when no
// data yet — the paper distinguishes "areas where not enough data is
// available").
func (t Tally) DemShare() float64 {
	total := t.Dem + t.Rep
	if total == 0 {
		return 0.5
	}
	return float64(t.Dem) / float64(total)
}

// HasData reports whether any returns were counted.
func (t Tally) HasData() bool { return t.Dem+t.Rep > 0 }

// Tallies aggregates returns per state (the process's first activity; the
// reactive deployment uses a materialized view of the same query).
func Tallies(db *database.DB) ([]Tally, error) {
	res, err := db.Query(`
		SELECT s.id, s.name, s.population, COALESCE(SUM(r.dem), 0), COALESCE(SUM(r.rep), 0)
		FROM states s LEFT JOIN returns r ON s.id = r.state_id
		GROUP BY s.id, s.name, s.population
		ORDER BY s.id`)
	if err != nil {
		return nil, err
	}
	out := make([]Tally, 0, len(res.Rows))
	for _, r := range res.Rows {
		t := Tally{StateID: r[0].Int(), Name: r[1].Str(), Population: r[2].Int()}
		t.Dem, _ = r[3].AsInt()
		t.Rep, _ = r[4].AsInt()
		out = append(out, t)
	}
	return out, nil
}
