package elections

import (
	"testing"

	"ediflow/internal/database"
)

func TestGeneratorAndLoad(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	g := NewGenerator(2008)
	if len(g.States) != 51 {
		t.Fatalf("states: %d", len(g.States))
	}
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM states")
	if n != 51 {
		t.Fatalf("states in db: %d", n)
	}
	// Past winners synthesized.
	dem, _ := db.QueryInt("SELECT COUNT(*) FROM states WHERE last1 = 'dem'")
	rep, _ := db.QueryInt("SELECT COUNT(*) FROM states WHERE last1 = 'rep'")
	if dem+rep != 51 || dem == 0 || rep == 0 {
		t.Fatalf("past winners: %d dem, %d rep", dem, rep)
	}
}

func TestTalliesEmptyThenFilling(t *testing.T) {
	db := database.MustOpenMemory()
	defer db.Close()
	g := NewGenerator(1)
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	tallies, err := Tallies(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tallies) != 51 {
		t.Fatalf("tallies: %d", len(tallies))
	}
	// No data yet: every state undecided at share 0.5.
	for _, ta := range tallies {
		if ta.HasData() || ta.DemShare() != 0.5 {
			t.Fatalf("%+v", ta)
		}
	}
	// Apply a batch and re-check.
	batch := g.NextBatch(200)
	if len(batch) != 200 {
		t.Fatalf("batch: %d", len(batch))
	}
	if err := Apply(db, batch); err != nil {
		t.Fatal(err)
	}
	tallies, _ = Tallies(db)
	withData := 0
	var totalVotes int64
	for _, ta := range tallies {
		if ta.HasData() {
			withData++
			totalVotes += ta.Dem + ta.Rep
			if s := ta.DemShare(); s < 0 || s > 1 {
				t.Fatalf("share out of range: %f", s)
			}
		}
	}
	if withData == 0 {
		t.Fatal("no state received data")
	}
	// Cross-check total against raw table.
	raw, _ := db.QueryInt("SELECT SUM(dem) + SUM(rep) FROM returns")
	if raw != totalVotes {
		t.Fatalf("tally total %d != raw %d", totalVotes, raw)
	}
}

func TestBatchDeterminism(t *testing.T) {
	g1 := NewGenerator(5)
	g2 := NewGenerator(5)
	b1 := g1.NextBatch(50)
	b2 := g2.NextBatch(50)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("batches not deterministic")
		}
	}
}
