// Package layout implements graph layout for the visualization layer:
// Noack's edge-repulsion LinLog energy model (§VII-B uses "the Edge
// LinLog algorithm of Noack which is among the very best for social
// networks") with
//
//   - an initial computation that starts from random positions and runs
//     iteratively to convergence, streaming intermediate positions through
//     a callback ("saving the positions every second ... allows the system
//     to appear reactive");
//   - an incremental delta handler that assigns each new node a position
//     close to its already-laid-out neighbors (random for disconnected
//     nodes) and warm-restarts the iteration, converging much faster
//     because most nodes barely move — the paper's headline §VII-B result;
//   - a Fruchterman–Reingold force-directed baseline for comparison.
package layout

import (
	"math"
	"math/rand"

	"ediflow/internal/graph"
)

// Point is a 2-D position.
type Point struct {
	X, Y float64
}

// Config controls the iteration.
type Config struct {
	// Seed drives random initial placement and jitter.
	Seed int64
	// MaxIter bounds the number of iterations (default 400).
	MaxIter int
	// Tolerance is the convergence threshold on mean displacement,
	// relative to the layout scale (default 1e-3).
	Tolerance float64
	// Approx enables grid-based repulsion approximation (O(n·cells)
	// instead of O(n²)); distant cells act as point masses.
	Approx bool
	// OnIteration, if set, receives the live positions after each
	// iteration — the hook used to stream positions into the
	// VisualAttributes table at any rate until the algorithm stops.
	OnIteration func(iter int, pos map[graph.NodeID]Point)
}

func (c Config) withDefaults() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 400
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-3
	}
	return c
}

// Result reports a layout computation.
type Result struct {
	Positions   map[graph.NodeID]Point
	Iterations  int
	Converged   bool
	FinalEnergy float64
}

// LinLog lays out g from random initial positions.
func LinLog(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pos := map[graph.NodeID]Point{}
	scale := math.Sqrt(float64(g.NodeCount())) + 1
	for _, id := range g.Nodes() {
		pos[id] = Point{X: rng.Float64() * scale, Y: rng.Float64() * scale}
	}
	return LinLogFrom(g, pos, cfg)
}

// IncrementalSeed produces warm-start positions after a graph change:
// existing nodes keep their positions, new nodes are placed at the
// centroid of their laid-out neighbors plus jitter ("to each new node it
// assigns a position that is close to their neighbors that have already
// been laid out"), and disconnected new nodes get random positions.
func IncrementalSeed(g *graph.Graph, old map[graph.NodeID]Point, seed int64) map[graph.NodeID]Point {
	rng := rand.New(rand.NewSource(seed))
	scale := math.Sqrt(float64(g.NodeCount())) + 1
	pos := make(map[graph.NodeID]Point, g.NodeCount())
	for _, id := range g.Nodes() {
		if p, ok := old[id]; ok {
			pos[id] = p
		}
	}
	for _, id := range g.Nodes() {
		if _, ok := pos[id]; ok {
			continue
		}
		var cx, cy float64
		n := 0
		for _, nb := range g.Neighbors(id) {
			if p, ok := pos[nb]; ok {
				cx += p.X
				cy += p.Y
				n++
			}
		}
		if n > 0 {
			jitter := scale * 0.02
			pos[id] = Point{
				X: cx/float64(n) + (rng.Float64()-0.5)*jitter,
				Y: cy/float64(n) + (rng.Float64()-0.5)*jitter,
			}
		} else {
			pos[id] = Point{X: rng.Float64() * scale, Y: rng.Float64() * scale}
		}
	}
	return pos
}

// LinLogFrom lays out g starting from the given positions (warm start for
// the incremental handler). Nodes missing from initial get random
// positions.
func LinLogFrom(g *graph.Graph, initial map[graph.NodeID]Point, cfg Config) *Result {
	cfg = cfg.withDefaults()
	nodes := g.Nodes()
	n := len(nodes)
	res := &Result{Positions: map[graph.NodeID]Point{}}
	if n == 0 {
		res.Converged = true
		return res
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	scale := math.Sqrt(float64(n)) + 1

	idx := make(map[graph.NodeID]int, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	mass := make([]float64, n) // repulsion charge: weighted degree + 1
	for i, id := range nodes {
		idx[id] = i
		if p, ok := initial[id]; ok {
			xs[i], ys[i] = p.X, p.Y
		} else {
			xs[i], ys[i] = rng.Float64()*scale, rng.Float64()*scale
		}
		mass[i] = g.WeightedDegree(id) + 1
	}
	type edge struct {
		a, b int
		w    float64
	}
	edges := make([]edge, 0, g.EdgeCount())
	sumW := 0.0
	for _, e := range g.Edges() {
		edges = append(edges, edge{a: idx[e.A], b: idx[e.B], w: e.Weight})
		sumW += e.Weight
	}
	// Normalize repulsion so the equilibrium diameter is ≈ scale: uniform
	// expansion by s changes the energy by A·s − Q·ln s with A ≈ Σw and
	// Q = Σ_pairs q_a·q_b, giving s* = Q/A. Scaling every pair charge by
	// repNorm = A·scale/Q pins s* ≈ scale (only relative distances carry
	// meaning in the LinLog model).
	repNorm := repulsionNorm(sumW, mass, scale)
	for i := range mass {
		mass[i] *= math.Sqrt(repNorm)
	}

	fx := make([]float64, n)
	fy := make([]float64, n)
	prevX := make([]float64, n)
	prevY := make([]float64, n)

	// computeForces fills fx/fy with −∇U and returns the LinLog energy U
	// of the current configuration (energy and gradient share every term,
	// so they are computed together).
	computeForces := func() float64 {
		const eps = 1e-6
		for i := range fx {
			fx[i], fy[i] = 0, 0
		}
		var energy float64
		// Attraction along edges: U += w·||d||; force on a is w·unit(d).
		for _, e := range edges {
			dx := xs[e.b] - xs[e.a]
			dy := ys[e.b] - ys[e.a]
			r := math.Hypot(dx, dy)
			energy += e.w * r
			if r < eps {
				continue
			}
			f := e.w / r
			fx[e.a] += f * dx
			fy[e.a] += f * dy
			fx[e.b] -= f * dx
			fy[e.b] -= f * dy
		}
		// Repulsion between node pairs: U −= q_a·q_b·ln r; force on a is
		// −q_a·q_b·unit(d)/r.
		if cfg.Approx && n > 256 {
			energy += applyGridRepulsion(xs, ys, mass, fx, fy)
		} else {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					dx := xs[j] - xs[i]
					dy := ys[j] - ys[i]
					r2 := dx*dx + dy*dy
					if r2 < eps {
						// Coincident points: nudge apart deterministically.
						dx, dy, r2 = eps*float64(i+1), eps*float64(j+1), eps
					}
					q := mass[i] * mass[j]
					energy -= q * 0.5 * math.Log(r2)
					f := q / r2
					fx[i] -= f * dx
					fy[i] -= f * dy
					fx[j] += f * dx
					fy[j] += f * dy
				}
			}
		}
		return energy
	}

	// Energy-guided adaptive descent: a step that increases energy is
	// reverted and halved; successful steps grow. Convergence is declared
	// when the applied mean displacement falls under the tolerance.
	step := 0.01
	cap := scale * 0.1
	prevEnergy := math.Inf(1)
	converged := false
	seenRevert := false // the step must overshoot once before small moves count
	iters := 0
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		iters = iter
		energy := computeForces()
		if energy > prevEnergy {
			// Worse than before the last move: revert and shrink.
			copy(xs, prevX)
			copy(ys, prevY)
			step *= 0.5
			seenRevert = true
			if step < 1e-9 {
				converged = true
				break
			}
			continue
		}
		prevEnergy = energy
		copy(prevX, xs)
		copy(prevY, ys)
		var moved, maxMoved float64
		for i := 0; i < n; i++ {
			dx := fx[i] * step
			dy := fy[i] * step
			d := math.Hypot(dx, dy)
			if d > cap {
				dx = dx / d * cap
				dy = dy / d * cap
				d = cap
			}
			xs[i] += dx
			ys[i] += dy
			moved += d
			if d > maxMoved {
				maxMoved = d
			}
		}
		step *= 1.1
		if cfg.OnIteration != nil {
			cfg.OnIteration(iter, snapshotPositions(nodes, xs, ys))
		}
		// Converged when the layout is globally quiet (mean displacement)
		// AND no single node is still traveling (max displacement) — the
		// latter matters for warm restarts, where a handful of freshly
		// inserted nodes must settle while everything else stays put. The
		// growing step must have overshot at least once, otherwise early
		// iterations with a still-tiny step would trivially qualify.
		if seenRevert && moved/float64(n) < cfg.Tolerance*scale && maxMoved < 10*cfg.Tolerance*scale {
			converged = true
			break
		}
	}
	// The last accepted configuration is prevX/prevY unless the loop moved
	// past it; report the better of the two.
	final := snapshotPositions(nodes, xs, ys)
	finalE := Energy(g, final)
	prev := snapshotPositions(nodes, prevX, prevY)
	if prevE := Energy(g, prev); prevE < finalE && prevEnergy != math.Inf(1) {
		final, finalE = prev, prevE
	}
	res.Positions = final
	res.Iterations = iters
	res.Converged = converged
	res.FinalEnergy = finalE
	return res
}

func snapshotPositions(nodes []graph.NodeID, xs, ys []float64) map[graph.NodeID]Point {
	out := make(map[graph.NodeID]Point, len(nodes))
	for i, id := range nodes {
		out[id] = Point{X: xs[i], Y: ys[i]}
	}
	return out
}

// applyGridRepulsion approximates pairwise repulsion by bucketing nodes
// into a coarse grid; nodes in the same or adjacent cells interact
// exactly, remote cells act as a point mass at their centroid. It returns
// the (approximate) repulsion energy contribution.
func applyGridRepulsion(xs, ys, mass, fx, fy []float64) float64 {
	n := len(xs)
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 1; i < n; i++ {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	side := int(math.Sqrt(float64(n)/4)) + 1
	w := (maxX - minX) / float64(side)
	h := (maxY - minY) / float64(side)
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	cellOf := func(i int) (int, int) {
		cx := int((xs[i] - minX) / w)
		cy := int((ys[i] - minY) / h)
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	type cell struct {
		members    []int
		mx, my, mm float64 // mass-weighted centroid and total mass
	}
	cells := make([]cell, side*side)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		c := &cells[cy*side+cx]
		c.members = append(c.members, i)
		c.mx += mass[i] * xs[i]
		c.my += mass[i] * ys[i]
		c.mm += mass[i]
	}
	const eps = 1e-6
	var energy float64 // per-node sum; pairs counted twice, halved below
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for gy := 0; gy < side; gy++ {
			for gx := 0; gx < side; gx++ {
				c := &cells[gy*side+gx]
				if c.mm == 0 {
					continue
				}
				near := absInt(gx-cx) <= 1 && absInt(gy-cy) <= 1
				if near {
					for _, j := range c.members {
						if j == i {
							continue
						}
						dx := xs[j] - xs[i]
						dy := ys[j] - ys[i]
						r2 := dx*dx + dy*dy
						if r2 < eps {
							dx, dy, r2 = eps*float64(i+1), eps*float64(j+1), eps
						}
						q := mass[i] * mass[j]
						energy -= q * 0.5 * math.Log(r2)
						f := q / r2
						fx[i] -= f * dx
						fy[i] -= f * dy
					}
				} else {
					px := c.mx / c.mm
					py := c.my / c.mm
					dx := px - xs[i]
					dy := py - ys[i]
					r2 := dx*dx + dy*dy
					if r2 < eps {
						continue
					}
					q := mass[i] * c.mm
					energy -= q * 0.5 * math.Log(r2)
					f := q / r2
					fx[i] -= f * dx
					fy[i] -= f * dy
				}
			}
		}
	}
	return energy / 2
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// repulsionNorm computes the charge normalization factor pinning the
// equilibrium diameter to scale (see LinLogFrom).
func repulsionNorm(sumW float64, mass []float64, scale float64) float64 {
	if sumW <= 0 {
		sumW = 1
	}
	var sumQ, sumQ2 float64
	for _, q := range mass {
		sumQ += q
		sumQ2 += q * q
	}
	pairQ := (sumQ*sumQ - sumQ2) / 2
	if pairQ <= 0 {
		return 1
	}
	return sumW * scale / pairQ
}

// Energy computes the normalized LinLog energy U(x) = Σ_edges w·||d|| −
// repNorm·Σ_pairs q_a·q_b·ln||d|| (lower is better), using the same charge
// normalization as the solver so values are comparable across runs.
func Energy(g *graph.Graph, pos map[graph.NodeID]Point) float64 {
	nodes := g.Nodes()
	var u, sumW float64
	for _, e := range g.Edges() {
		pa, pb := pos[e.A], pos[e.B]
		u += e.Weight * math.Hypot(pb.X-pa.X, pb.Y-pa.Y)
		sumW += e.Weight
	}
	mass := make([]float64, len(nodes))
	for i, id := range nodes {
		mass[i] = g.WeightedDegree(id) + 1
	}
	scale := math.Sqrt(float64(len(nodes))) + 1
	repNorm := repulsionNorm(sumW, mass, scale)
	const eps = 1e-9
	for i := 0; i < len(nodes); i++ {
		pi := pos[nodes[i]]
		for j := i + 1; j < len(nodes); j++ {
			pj := pos[nodes[j]]
			r := math.Hypot(pj.X-pi.X, pj.Y-pi.Y)
			if r < eps {
				r = eps
			}
			u -= repNorm * mass[i] * mass[j] * math.Log(r)
		}
	}
	return u
}
