package layout

import (
	"math"
	"testing"

	"ediflow/internal/graph"
)

func testGraph(n int, seed int64) *graph.Graph {
	return graph.GenerateCommunity(graph.CommunityConfig{
		Nodes: n, Communities: 5, AvgDegree: 4, Seed: seed,
	})
}

func TestLinLogConvergesAndReducesEnergy(t *testing.T) {
	g := testGraph(120, 1)
	// Energy at random positions.
	initial := LinLogFrom(g, nil, Config{Seed: 2, MaxIter: 1})
	e0 := initial.FinalEnergy
	res := LinLog(g, Config{Seed: 2, MaxIter: 300})
	if len(res.Positions) != g.NodeCount() {
		t.Fatalf("positions: %d", len(res.Positions))
	}
	if res.FinalEnergy >= e0 {
		t.Fatalf("energy did not decrease: %f → %f", e0, res.FinalEnergy)
	}
	if res.Iterations < 2 {
		t.Fatalf("iterations: %d", res.Iterations)
	}
}

func TestLinLogEmptyAndSingleton(t *testing.T) {
	g := graph.New()
	res := LinLog(g, Config{})
	if !res.Converged || len(res.Positions) != 0 {
		t.Fatalf("%+v", res)
	}
	g.AddNode(1, "only")
	res = LinLog(g, Config{MaxIter: 10})
	if len(res.Positions) != 1 {
		t.Fatalf("%+v", res)
	}
}

func TestLinLogSeparatesCommunities(t *testing.T) {
	// Two cliques joined by one edge must end up with intra-clique
	// distances smaller than the inter-clique distance.
	g := graph.New()
	for i := 1; i <= 8; i++ {
		g.AddNode(graph.NodeID(i), "")
	}
	for i := 1; i <= 4; i++ {
		for j := i + 1; j <= 4; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	for i := 5; i <= 8; i++ {
		for j := i + 1; j <= 8; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	g.AddEdge(4, 5, 1)
	res := LinLog(g, Config{Seed: 3, MaxIter: 500})
	intra := avgDist(res.Positions, []graph.NodeID{1, 2, 3, 4})
	inter := dist(centroid(res.Positions, []graph.NodeID{1, 2, 3, 4}), centroid(res.Positions, []graph.NodeID{5, 6, 7, 8}))
	if inter < intra {
		t.Fatalf("communities not separated: intra=%f inter=%f", intra, inter)
	}
}

func TestIncrementalSeedPlacement(t *testing.T) {
	g := testGraph(50, 4)
	res := LinLog(g, Config{Seed: 4, MaxIter: 200})
	// Add a node connected to 1 and 2.
	g.AddNode(1000, "new")
	g.AddEdge(1000, 1, 1)
	g.AddEdge(1000, 2, 1)
	// And a disconnected one.
	g.AddNode(1001, "lonely")
	pos := IncrementalSeed(g, res.Positions, 9)
	p1, p2 := res.Positions[1], res.Positions[2]
	cx, cy := (p1.X+p2.X)/2, (p1.Y+p2.Y)/2
	np := pos[1000]
	if math.Hypot(np.X-cx, np.Y-cy) > 1.0 {
		t.Fatalf("new node placed far from neighbor centroid: %+v vs (%f,%f)", np, cx, cy)
	}
	if _, ok := pos[1001]; !ok {
		t.Fatal("disconnected node missing")
	}
	// Old nodes keep their positions exactly.
	for _, id := range []graph.NodeID{1, 2, 3} {
		if pos[id] != res.Positions[id] {
			t.Fatalf("old node %d moved during seeding", id)
		}
	}
}

// The §VII-B result: incremental relayout converges in far fewer
// iterations than a cold start.
func TestIncrementalConvergesFaster(t *testing.T) {
	g := testGraph(150, 5)
	cold := LinLog(g, Config{Seed: 5, MaxIter: 1000, Tolerance: 2e-3})
	if !cold.Converged {
		t.Fatalf("cold layout did not converge in %d iterations", cold.Iterations)
	}
	// Insert 2% new nodes attached to existing ones.
	for i := 0; i < 3; i++ {
		id := graph.NodeID(10000 + i)
		g.AddNode(id, "new")
		g.AddEdge(id, graph.NodeID(i*3+1), 1)
		g.AddEdge(id, graph.NodeID(i*5+2), 1)
	}
	warm := LinLogFrom(g, IncrementalSeed(g, cold.Positions, 6), Config{Seed: 6, MaxIter: 1000, Tolerance: 2e-3})
	if !warm.Converged {
		t.Fatalf("incremental layout did not converge in %d iterations", warm.Iterations)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("incremental (%d iters) not faster than cold start (%d iters)",
			warm.Iterations, cold.Iterations)
	}
}

func TestOnIterationStreamsPositions(t *testing.T) {
	g := testGraph(30, 7)
	var calls int
	var lastIter int
	LinLog(g, Config{Seed: 7, MaxIter: 25, Tolerance: 1e-12, OnIteration: func(iter int, pos map[graph.NodeID]Point) {
		calls++
		lastIter = iter
		if len(pos) != g.NodeCount() {
			t.Fatalf("streamed %d positions", len(pos))
		}
	}})
	if calls != 25 || lastIter != 25 {
		t.Fatalf("calls=%d lastIter=%d", calls, lastIter)
	}
}

func TestApproxRepulsionCloseToExact(t *testing.T) {
	g := testGraph(400, 8)
	exact := LinLog(g, Config{Seed: 8, MaxIter: 120})
	approx := LinLog(g, Config{Seed: 8, MaxIter: 120, Approx: true})
	// The grid approximation must land within a modest factor of the exact
	// energy (both negative and large in magnitude; compare ratios).
	ratio := approx.FinalEnergy / exact.FinalEnergy
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("approx energy too far off: exact=%f approx=%f", exact.FinalEnergy, approx.FinalEnergy)
	}
}

func TestFruchtermanReingoldBaseline(t *testing.T) {
	g := testGraph(100, 9)
	res := FruchtermanReingold(g, Config{Seed: 9, MaxIter: 200})
	if len(res.Positions) != g.NodeCount() {
		t.Fatalf("positions: %d", len(res.Positions))
	}
	// Not all positions coincide.
	var distinct int
	seen := map[Point]bool{}
	for _, p := range res.Positions {
		if !seen[p] {
			seen[p] = true
			distinct++
		}
	}
	if distinct < g.NodeCount()/2 {
		t.Fatalf("positions collapsed: %d distinct", distinct)
	}
	empty := FruchtermanReingold(graph.New(), Config{})
	if !empty.Converged {
		t.Fatal("empty graph must converge")
	}
}

func avgDist(pos map[graph.NodeID]Point, ids []graph.NodeID) float64 {
	var s float64
	var n int
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			s += dist(pos[ids[i]], pos[ids[j]])
			n++
		}
	}
	return s / float64(n)
}

func centroid(pos map[graph.NodeID]Point, ids []graph.NodeID) Point {
	var c Point
	for _, id := range ids {
		c.X += pos[id].X
		c.Y += pos[id].Y
	}
	c.X /= float64(len(ids))
	c.Y /= float64(len(ids))
	return c
}

func dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }
