package layout

import (
	"math"
	"math/rand"

	"ediflow/internal/graph"
)

// FruchtermanReingold is the classical force-directed baseline the paper's
// LinLog choice is compared against: spring attraction d²/k along edges,
// k²/d repulsion between all pairs, linear cooling.
func FruchtermanReingold(g *graph.Graph, cfg Config) *Result {
	cfg = cfg.withDefaults()
	nodes := g.Nodes()
	n := len(nodes)
	res := &Result{Positions: map[graph.NodeID]Point{}}
	if n == 0 {
		res.Converged = true
		return res
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	scale := math.Sqrt(float64(n)) + 1
	area := scale * scale
	k := math.Sqrt(area / float64(n))

	idx := make(map[graph.NodeID]int, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, id := range nodes {
		idx[id] = i
		xs[i] = rng.Float64() * scale
		ys[i] = rng.Float64() * scale
	}
	type edge struct{ a, b int }
	var edges []edge
	for _, e := range g.Edges() {
		edges = append(edges, edge{a: idx[e.A], b: idx[e.B]})
	}

	fx := make([]float64, n)
	fy := make([]float64, n)
	temp := scale / 10
	const eps = 1e-9
	converged := false
	iter := 0
	for iter = 1; iter <= cfg.MaxIter; iter++ {
		for i := range fx {
			fx[i], fy[i] = 0, 0
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := xs[i] - xs[j]
				dy := ys[i] - ys[j]
				d := math.Hypot(dx, dy)
				if d < eps {
					d = eps
				}
				f := k * k / d / d
				fx[i] += f * dx
				fy[i] += f * dy
				fx[j] -= f * dx
				fy[j] -= f * dy
			}
		}
		for _, e := range edges {
			dx := xs[e.a] - xs[e.b]
			dy := ys[e.a] - ys[e.b]
			d := math.Hypot(dx, dy)
			if d < eps {
				d = eps
			}
			f := d / k
			fx[e.a] -= f * dx / d
			fy[e.a] -= f * dy / d
			fx[e.b] += f * dx / d
			fy[e.b] += f * dy / d
		}
		var moved float64
		for i := 0; i < n; i++ {
			d := math.Hypot(fx[i], fy[i])
			if d < eps {
				continue
			}
			move := math.Min(d, temp)
			xs[i] += fx[i] / d * move
			ys[i] += fy[i] / d * move
			moved += move
		}
		temp *= 0.95
		if cfg.OnIteration != nil {
			cfg.OnIteration(iter, snapshotPositions(nodes, xs, ys))
		}
		if moved/float64(n) < cfg.Tolerance*scale {
			converged = true
			break
		}
	}
	if iter > cfg.MaxIter {
		iter = cfg.MaxIter
	}
	res.Positions = snapshotPositions(nodes, xs, ys)
	res.Iterations = iter
	res.Converged = converged
	res.FinalEnergy = Energy(g, res.Positions)
	return res
}
