// Package catalog holds the metadata of the embedded database: table
// schemas, secondary indexes and (materialized) view definitions. The
// catalog is safe for concurrent use (see Catalog).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

// System column names exposed on every base table. `_tid` is the unique
// tuple identifier and `_created` the creation timestamp (a monotonic
// sequence number), both required by the paper's time-based isolation
// (§VI-A) and the deletion-table rewrite.
const (
	SysTID     = "_tid"
	SysCreated = "_created"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       types.Kind
	PrimaryKey bool
	Unique     bool
	NotNull    bool
}

// TableSchema describes a base table.
type TableSchema struct {
	Name    string
	Columns []Column
}

// ColIndex returns the position of the named column, or -1. Matching is
// case-insensitive, like the rest of the engine's name resolution.
func (s *TableSchema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// PKIndex returns the position of the primary key column, or -1.
func (s *TableSchema) PKIndex() int {
	for i, c := range s.Columns {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in order.
func (s *TableSchema) ColNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *TableSchema) Clone() *TableSchema {
	c := &TableSchema{Name: s.Name, Columns: make([]Column, len(s.Columns))}
	copy(c.Columns, s.Columns)
	return c
}

// Index describes a secondary index.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// View is a materialized view definition. Data lives in a hidden base
// table maintained by the engine's IVM layer.
type View struct {
	Name  string
	Query *sqltext.Select
	// Backing is the name of the hidden storage table holding the
	// materialized rows.
	Backing string
}

// Trigger is a declaratively created trigger binding an event on a table
// to a named Go handler registered with the database.
type Trigger struct {
	Name    string
	Event   string // INSERT, UPDATE, DELETE
	Table   string
	Handler string
}

// Catalog is the full metadata set. It is safe for concurrent use: the
// engine serializes writes, but reads come from many layers (workflow
// isolation rewriting, UP trigger installation, tools) on other
// goroutines.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*TableSchema // lower-cased name → schema
	indexes  map[string]*Index
	views    map[string]*View
	triggers map[string]*Trigger
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   map[string]*TableSchema{},
		indexes:  map[string]*Index{},
		views:    map[string]*View{},
		triggers: map[string]*Trigger{},
	}
}

func key(name string) string { return strings.ToLower(name) }

// AddTable registers a new table schema.
func (c *Catalog) AddTable(s *TableSchema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(s.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: table %q already exists", s.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: %q already names a view", s.Name)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", s.Name)
	}
	seen := map[string]bool{}
	pks := 0
	for _, col := range s.Columns {
		ck := key(col.Name)
		if seen[ck] {
			return fmt.Errorf("catalog: duplicate column %q in %q", col.Name, s.Name)
		}
		if ck == SysTID || ck == SysCreated {
			return fmt.Errorf("catalog: column name %q is reserved", col.Name)
		}
		seen[ck] = true
		if col.PrimaryKey {
			pks++
		}
	}
	if pks > 1 {
		return fmt.Errorf("catalog: table %q has %d primary keys", s.Name, pks)
	}
	c.tables[k] = s
	return nil
}

// Table looks up a table schema by name.
func (c *Catalog) Table(name string) (*TableSchema, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.tables[key(name)]
	return s, ok
}

// DropTable removes a table and its indexes.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("catalog: no such table %q", name)
	}
	delete(c.tables, k)
	for in, ix := range c.indexes {
		if key(ix.Table) == k {
			delete(c.indexes, in)
		}
	}
	for tn, tg := range c.triggers {
		if key(tg.Table) == k {
			delete(c.triggers, tn)
		}
	}
	return nil
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, s := range c.tables {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// AddIndex registers a secondary index.
func (c *Catalog) AddIndex(ix *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(ix.Name)
	if _, ok := c.indexes[k]; ok {
		return fmt.Errorf("catalog: index %q already exists", ix.Name)
	}
	tbl, ok := c.tables[key(ix.Table)]
	if !ok {
		return fmt.Errorf("catalog: index %q references unknown table %q", ix.Name, ix.Table)
	}
	for _, col := range ix.Columns {
		if tbl.ColIndex(col) < 0 {
			return fmt.Errorf("catalog: index %q references unknown column %q", ix.Name, col)
		}
	}
	c.indexes[k] = ix
	return nil
}

// Index looks up an index by name.
func (c *Catalog) Index(name string) (*Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[key(name)]
	return ix, ok
}

// TableIndexes returns the indexes on a table, sorted by name.
func (c *Catalog) TableIndexes(table string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if strings.EqualFold(ix.Table, table) {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddView registers a materialized view.
func (c *Catalog) AddView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(v.Name)
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: view %q already exists", v.Name)
	}
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: %q already names a table", v.Name)
	}
	c.views[k] = v
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// ViewNames returns all view names, sorted.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.views[k]; !ok {
		return fmt.Errorf("catalog: no such view %q", name)
	}
	delete(c.views, k)
	return nil
}

// AddTrigger registers a trigger.
func (c *Catalog) AddTrigger(t *Trigger) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.triggers[k]; ok {
		return fmt.Errorf("catalog: trigger %q already exists", t.Name)
	}
	if _, ok := c.tables[key(t.Table)]; !ok {
		return fmt.Errorf("catalog: trigger %q references unknown table %q", t.Name, t.Table)
	}
	c.triggers[k] = t
	return nil
}

// Triggers returns the triggers on a table for an event, sorted by name.
func (c *Catalog) Triggers(table, event string) []*Trigger {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Trigger
	for _, t := range c.triggers {
		if strings.EqualFold(t.Table, table) && strings.EqualFold(t.Event, event) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllTriggers returns every trigger, sorted by name.
func (c *Catalog) AllTriggers() []*Trigger {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Trigger, 0, len(c.triggers))
	for _, t := range c.triggers {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SchemaFromAST converts a parsed CREATE TABLE into a schema.
func SchemaFromAST(ct *sqltext.CreateTable) *TableSchema {
	s := &TableSchema{Name: ct.Name}
	for _, c := range ct.Columns {
		s.Columns = append(s.Columns, Column{
			Name: c.Name, Type: c.Type,
			PrimaryKey: c.PrimaryKey, Unique: c.Unique, NotNull: c.NotNull,
		})
	}
	return s
}
