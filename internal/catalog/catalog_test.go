package catalog

import (
	"testing"

	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

func userSchema() *TableSchema {
	return &TableSchema{
		Name: "Users",
		Columns: []Column{
			{Name: "id", Type: types.KindInt, PrimaryKey: true},
			{Name: "Name", Type: types.KindString, NotNull: true},
			{Name: "email", Type: types.KindString, Unique: true},
		},
	}
}

func TestSchemaLookups(t *testing.T) {
	s := userSchema()
	if s.ColIndex("name") != 1 || s.ColIndex("NAME") != 1 {
		t.Error("ColIndex must be case-insensitive")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column")
	}
	if s.PKIndex() != 0 {
		t.Error("PKIndex")
	}
	names := s.ColNames()
	if len(names) != 3 || names[2] != "email" {
		t.Errorf("%v", names)
	}
	c := s.Clone()
	c.Columns[0].Name = "changed"
	if s.Columns[0].Name != "id" {
		t.Error("Clone must be deep")
	}
}

func TestAddTableValidation(t *testing.T) {
	c := New()
	if err := c.AddTable(userSchema()); err != nil {
		t.Fatal(err)
	}
	// Case-insensitive duplicate.
	if err := c.AddTable(&TableSchema{Name: "USERS", Columns: []Column{{Name: "a", Type: types.KindInt}}}); err == nil {
		t.Error("duplicate table")
	}
	if err := c.AddTable(&TableSchema{Name: "empty"}); err == nil {
		t.Error("no columns")
	}
	if err := c.AddTable(&TableSchema{Name: "dup", Columns: []Column{
		{Name: "x", Type: types.KindInt}, {Name: "X", Type: types.KindInt},
	}}); err == nil {
		t.Error("duplicate column")
	}
	if err := c.AddTable(&TableSchema{Name: "pk2", Columns: []Column{
		{Name: "a", Type: types.KindInt, PrimaryKey: true},
		{Name: "b", Type: types.KindInt, PrimaryKey: true},
	}}); err == nil {
		t.Error("two primary keys")
	}
	if err := c.AddTable(&TableSchema{Name: "sys", Columns: []Column{{Name: "_tid", Type: types.KindInt}}}); err == nil {
		t.Error("reserved column name")
	}
	got, ok := c.Table("users")
	if !ok || got.Name != "Users" {
		t.Error("case-insensitive lookup")
	}
}

func TestIndexesAndTriggers(t *testing.T) {
	c := New()
	c.AddTable(userSchema())
	if err := c.AddIndex(&Index{Name: "i1", Table: "users", Columns: []string{"name"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "i1", Table: "users", Columns: []string{"email"}}); err == nil {
		t.Error("duplicate index name")
	}
	if err := c.AddIndex(&Index{Name: "i2", Table: "nope", Columns: []string{"x"}}); err == nil {
		t.Error("unknown table")
	}
	if err := c.AddIndex(&Index{Name: "i3", Table: "users", Columns: []string{"nope"}}); err == nil {
		t.Error("unknown column")
	}
	if _, ok := c.Index("I1"); !ok {
		t.Error("index lookup")
	}
	if len(c.TableIndexes("Users")) != 1 {
		t.Error("TableIndexes")
	}

	if err := c.AddTrigger(&Trigger{Name: "t1", Event: "INSERT", Table: "users", Handler: "h"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTrigger(&Trigger{Name: "t1", Event: "DELETE", Table: "users", Handler: "h"}); err == nil {
		t.Error("duplicate trigger")
	}
	if err := c.AddTrigger(&Trigger{Name: "t2", Event: "INSERT", Table: "ghost", Handler: "h"}); err == nil {
		t.Error("unknown table trigger")
	}
	if got := c.Triggers("users", "insert"); len(got) != 1 {
		t.Errorf("Triggers: %v", got)
	}
	if got := c.Triggers("users", "UPDATE"); len(got) != 0 {
		t.Errorf("no update triggers expected: %v", got)
	}
	if len(c.AllTriggers()) != 1 {
		t.Error("AllTriggers")
	}
	// Dropping a table drops its indexes and triggers.
	if err := c.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Index("i1"); ok {
		t.Error("index survived drop")
	}
	if len(c.AllTriggers()) != 0 {
		t.Error("trigger survived drop")
	}
	if err := c.DropTable("users"); err == nil {
		t.Error("double drop")
	}
}

func TestViews(t *testing.T) {
	c := New()
	c.AddTable(userSchema())
	sel, err := sqltext.Parse("SELECT id FROM users")
	if err != nil {
		t.Fatal(err)
	}
	v := &View{Name: "v1", Query: sel.(*sqltext.Select), Backing: "__view_v1"}
	if err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(v); err == nil {
		t.Error("duplicate view")
	}
	if err := c.AddView(&View{Name: "users"}); err == nil {
		t.Error("view shadowing table")
	}
	if err := c.AddTable(&TableSchema{Name: "v1", Columns: []Column{{Name: "a", Type: types.KindInt}}}); err == nil {
		t.Error("table shadowing view")
	}
	if _, ok := c.View("V1"); !ok {
		t.Error("view lookup")
	}
	if names := c.ViewNames(); len(names) != 1 || names[0] != "v1" {
		t.Errorf("%v", names)
	}
	if err := c.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v1"); err == nil {
		t.Error("double drop view")
	}
}

func TestTableNamesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.AddTable(&TableSchema{Name: n, Columns: []Column{{Name: "a", Type: types.KindInt}}})
	}
	names := c.TableNames()
	if names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("%v", names)
	}
}

func TestSchemaFromAST(t *testing.T) {
	st, err := sqltext.Parse("CREATE TABLE t (a INT PRIMARY KEY, b STRING NOT NULL, c FLOAT UNIQUE)")
	if err != nil {
		t.Fatal(err)
	}
	s := SchemaFromAST(st.(*sqltext.CreateTable))
	if s.Name != "t" || len(s.Columns) != 3 {
		t.Fatalf("%+v", s)
	}
	if !s.Columns[0].PrimaryKey || !s.Columns[1].NotNull || !s.Columns[2].Unique {
		t.Fatalf("%+v", s.Columns)
	}
}
