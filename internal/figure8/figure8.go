// Package figure8 reproduces the robustness experiment of §VII-C
// (Figure 8): the time to perform an insert operation as a function of
// the number of inserted tuples, broken into the paper's five steps.
//
// Setup (mirroring the paper's two EdiFlow machines + DBMS): one
// notification client plays the first EdiFlow machine (computes visual
// attributes when the Author table changes); a second client plays the
// display machine (extracts new nodes from VisualAttributes and inserts
// them into its display). All protocol traffic crosses real loopback TCP.
//
// The measured steps, in the paper's order:
//
//  1. message parsing after the insertion into the authors table
//  2. inserting the resulting tuples into the VisualAttributes table
//  3. message parsing after the insertion into VisualAttributes
//  4. extracting the visual attributes of the new nodes (select)
//  5. inserting the new nodes into the display
package figure8

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/notify"
	"ediflow/internal/types"
	"ediflow/internal/vis"
)

// Steps are the five measured phases plus the total.
type Steps struct {
	N              int           // inserted tuples
	ParseAuthorMsg time.Duration // step 1
	InsertVisAttrs time.Duration // step 2
	ParseVisMsg    time.Duration // step 3
	ExtractSelect  time.Duration // step 4
	InsertDisplay  time.Duration // step 5
}

// Total sums the five steps.
func (s Steps) Total() time.Duration {
	return s.ParseAuthorMsg + s.InsertVisAttrs + s.ParseVisMsg + s.ExtractSelect + s.InsertDisplay
}

// Harness wires the experiment.
type Harness struct {
	DB       *database.DB
	notifier *notify.Notifier

	authorClient  *notify.Client // EdiFlow machine 1: watches authors
	displayClient *notify.Client // EdiFlow machine 2: watches VisualAttributes

	comp    *vis.Component
	display map[int64]vis.Attr // the display's in-memory node set
	nextID  int64
	rng     *rand.Rand
	ownDB   bool
}

// NewHarness builds the experiment over a fresh in-memory platform.
func NewHarness() (*Harness, error) {
	db, err := database.Open("")
	if err != nil {
		return nil, err
	}
	h, err := newWithDB(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	h.ownDB = true
	return h, nil
}

func newWithDB(db *database.DB) (*Harness, error) {
	n, err := notify.NewNotifier(db)
	if err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS authors (id INT PRIMARY KEY, name STRING NOT NULL)"); err != nil {
		return nil, err
	}
	v, err := vis.NewVisualization(db, "figure8")
	if err != nil {
		return nil, err
	}
	comp, err := v.AddComponent("graph", "node-link")
	if err != nil {
		return nil, err
	}
	authorClient, err := notify.Connect(db, "machine1", "authors")
	if err != nil {
		return nil, err
	}
	displayClient, err := notify.Connect(db, "machine2", database.TableVisualAttributes)
	if err != nil {
		return nil, err
	}
	return &Harness{
		DB:            db,
		notifier:      n,
		authorClient:  authorClient,
		displayClient: displayClient,
		comp:          comp,
		display:       map[int64]vis.Attr{},
		rng:           rand.New(rand.NewSource(8)),
	}, nil
}

// Close tears the harness down.
func (h *Harness) Close() {
	h.authorClient.Close()
	h.displayClient.Close()
	h.notifier.Close()
	if h.ownDB {
		h.DB.Close()
	}
}

// waitNotify blocks until a NOTIFY for the table arrives on the channel.
func waitNotify(c *notify.Client, table string) (notify.Message, string, error) {
	for {
		select {
		case m := <-c.C:
			if strings.EqualFold(m.Table, table) {
				return m, m.Format(), nil
			}
		case <-time.After(10 * time.Second):
			return notify.Message{}, "", fmt.Errorf("figure8: timed out waiting for NOTIFY %s", table)
		}
	}
}

// parseStep re-parses the wire line and decodes the notification's tid
// list — the paper's "message parsing" cost (steps 1 and 3): extracting
// the new tuple information from the compact message.
func (h *Harness) parseStep(line string, seq int64) ([]int64, time.Duration, error) {
	start := time.Now()
	msg, err := notify.ParseMessage(line)
	if err != nil {
		return nil, 0, err
	}
	res, err := h.DB.Query("SELECT tids FROM "+database.TableNotification+" WHERE seq_no = ?", types.NewInt(seq))
	if err != nil {
		return nil, 0, err
	}
	if len(res.Rows) != 1 {
		return nil, 0, fmt.Errorf("figure8: notification %d not found", seq)
	}
	tids, err := notify.DecodeTIDs(res.Rows[0][0].Str())
	if err != nil {
		return nil, 0, err
	}
	_ = msg
	return tids, time.Since(start), nil
}

// RunBatch performs one full insert-propagation cycle for n tuples and
// returns the per-step timings.
func (h *Harness) RunBatch(n int) (Steps, error) {
	steps := Steps{N: n}

	// Drain any stale notifications.
	for len(h.authorClient.C) > 0 {
		<-h.authorClient.C
	}
	for len(h.displayClient.C) > 0 {
		<-h.displayClient.C
	}

	// The external update: n new authors in one statement.
	var sb strings.Builder
	sb.WriteString("INSERT INTO authors (id, name) VALUES ")
	var args []types.Value
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(?, ?)")
		h.nextID++
		args = append(args, types.NewInt(h.nextID), types.NewString(fmt.Sprintf("author-%d", h.nextID)))
	}
	if _, err := h.DB.Exec(sb.String(), args...); err != nil {
		return steps, err
	}

	// Step 1: machine 1 receives and parses the authors NOTIFY.
	msg, line, err := waitNotify(h.authorClient, "authors")
	if err != nil {
		return steps, err
	}
	authorTIDs, d1, err := h.parseStep(line, msg.Seq)
	if err != nil {
		return steps, err
	}
	steps.ParseAuthorMsg = d1
	if len(authorTIDs) != n {
		return steps, fmt.Errorf("figure8: expected %d tids, got %d", n, len(authorTIDs))
	}
	h.authorClient.Ack(msg.Seq)

	// Step 2: machine 1 computes attributes for the new authors and
	// inserts them into VisualAttributes (one statement; this is the
	// dominating cost in the paper).
	attrs := make(map[int64]vis.Attr, n)
	res, err := h.DB.Query(fmt.Sprintf("SELECT id FROM authors WHERE _tid IN (%s)", tidList(authorTIDs)))
	if err != nil {
		return steps, err
	}
	for _, r := range res.Rows {
		attrs[r[0].Int()] = vis.Attr{
			X: h.rng.Float64() * 100, Y: h.rng.Float64() * 100,
			Color: "#3366cc", Label: fmt.Sprintf("a%d", r[0].Int()),
		}
	}
	t2 := time.Now()
	if err := h.comp.InsertAttributes(attrs); err != nil {
		return steps, err
	}
	steps.InsertVisAttrs = time.Since(t2)

	// Step 3: the display machine receives and parses the VA NOTIFY.
	msg, line, err = waitNotify(h.displayClient, database.TableVisualAttributes)
	if err != nil {
		return steps, err
	}
	vaTIDs, d3, err := h.parseStep(line, msg.Seq)
	if err != nil {
		return steps, err
	}
	steps.ParseVisMsg = d3
	h.displayClient.Ack(msg.Seq)

	// Step 4: extract the new nodes from VisualAttributes (select by tid).
	t4 := time.Now()
	res, err = h.DB.Query(fmt.Sprintf(
		"SELECT obj_id, x, y, color, label FROM %s WHERE _tid IN (%s)",
		database.TableVisualAttributes, tidList(vaTIDs)))
	if err != nil {
		return steps, err
	}
	steps.ExtractSelect = time.Since(t4)
	if len(res.Rows) != n {
		return steps, fmt.Errorf("figure8: extracted %d rows, want %d", len(res.Rows), n)
	}

	// Step 5: insert the new nodes into the display structure.
	t5 := time.Now()
	for _, r := range res.Rows {
		h.display[r[0].Int()] = vis.Attr{
			X: r[1].Float(), Y: r[2].Float(),
			Color: r[3].AsString(), Label: r[4].AsString(),
		}
	}
	steps.InsertDisplay = time.Since(t5)
	return steps, nil
}

// DisplaySize reports the number of nodes in the simulated display.
func (h *Harness) DisplaySize() int { return len(h.display) }

func tidList(tids []int64) string {
	var sb strings.Builder
	for i, t := range tids {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", t)
	}
	return sb.String()
}

// Run executes the full sweep and returns one Steps row per batch size.
func Run(sizes []int) ([]Steps, error) {
	h, err := NewHarness()
	if err != nil {
		return nil, err
	}
	defer h.Close()
	var out []Steps
	for _, n := range sizes {
		s, err := h.RunBatch(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// FormatTable renders the rows like the Figure 8 series.
func FormatTable(rows []Steps) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %18s %18s %18s %18s %18s %14s\n",
		"#tuples", "parse(author msg)", "insert VisAttrs", "parse(VA msg)", "extract(select)", "insert display", "total")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %18s %18s %18s %18s %18s %14s\n",
			r.N,
			r.ParseAuthorMsg.Round(time.Microsecond),
			r.InsertVisAttrs.Round(time.Microsecond),
			r.ParseVisMsg.Round(time.Microsecond),
			r.ExtractSelect.Round(time.Microsecond),
			r.InsertDisplay.Round(time.Microsecond),
			r.Total().Round(time.Microsecond))
	}
	return sb.String()
}
