package figure8

import (
	"strings"
	"testing"
)

func TestRunBatchPipeline(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	s, err := h.RunBatch(25)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 25 {
		t.Fatalf("%+v", s)
	}
	for name, d := range map[string]int64{
		"parse author": s.ParseAuthorMsg.Nanoseconds(),
		"insert va":    s.InsertVisAttrs.Nanoseconds(),
		"parse va":     s.ParseVisMsg.Nanoseconds(),
		"extract":      s.ExtractSelect.Nanoseconds(),
		"display":      s.InsertDisplay.Nanoseconds(),
	} {
		if d <= 0 {
			t.Errorf("step %s has no measured time", name)
		}
	}
	if h.DisplaySize() != 25 {
		t.Fatalf("display size: %d", h.DisplaySize())
	}
	// A second batch accumulates.
	if _, err := h.RunBatch(10); err != nil {
		t.Fatal(err)
	}
	if h.DisplaySize() != 35 {
		t.Fatalf("display size: %d", h.DisplaySize())
	}
}

func TestRunSweepAndFormat(t *testing.T) {
	rows, err := Run([]int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].N != 20 {
		t.Fatalf("%+v", rows)
	}
	table := FormatTable(rows)
	if !strings.Contains(table, "insert VisAttrs") || !strings.Contains(table, "total") {
		t.Fatalf("table:\n%s", table)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines: %d", len(lines))
	}
}

// The Figure 8 shape: times grow with batch size and the VisualAttributes
// insert dominates the pipeline for large batches.
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-shape test")
	}
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Warm up.
	if _, err := h.RunBatch(50); err != nil {
		t.Fatal(err)
	}
	small, err := h.RunBatch(20)
	if err != nil {
		t.Fatal(err)
	}
	large, err := h.RunBatch(2000)
	if err != nil {
		t.Fatal(err)
	}
	if large.Total() <= small.Total() {
		t.Fatalf("total must grow with batch size: %v vs %v", small.Total(), large.Total())
	}
	// Dominating step (paper: "the dominating time is required to write in
	// the VisualAttributes table").
	if large.InsertVisAttrs < large.ParseAuthorMsg || large.InsertVisAttrs < large.ParseVisMsg {
		t.Fatalf("insert step should dominate parsing: %+v", large)
	}
}
