// Package driver defines the minimal database surface shared by the
// embedded engine (`internal/database`) and the network client
// (`internal/client`). The §VI-C protocol layers — notify.Client and
// tablesync.Mirror — are written against this interface, so a
// visualization process runs unchanged whether the DBMS lives in the
// same address space or on a server machine across the LAN (the paper's
// Figure 3 deployment).
package driver

import (
	"ediflow/internal/engine"
	"ediflow/internal/types"
)

// Conn is one logical connection to an EdiFlow database. Both
// *database.DB (embedded) and *client.Conn (remote, over the wire
// protocol of internal/wire) satisfy it.
type Conn interface {
	// Exec runs one SQL statement with positional `?` parameters.
	Exec(sql string, args ...types.Value) (*engine.Result, error)
	// Query runs a SELECT.
	Query(sql string, args ...types.Value) (*engine.Result, error)
	// QueryValue runs a SELECT expected to return exactly one value.
	QueryValue(sql string, args ...types.Value) (types.Value, error)
	// NextID allocates a unique id for a table with an `id` column.
	// Remote implementations must delegate to the server so concurrent
	// sessions never collide.
	NextID(table string) (int64, error)
	// InsertRow inserts one row given column→value pairs, returning its
	// tuple id.
	InsertRow(table string, vals map[string]types.Value) (int64, error)
}
