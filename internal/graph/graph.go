// Package graph provides the undirected weighted graph structure used by
// the layout algorithms and the co-publication workload (§VII): nodes with
// string labels, weighted edges, neighbor access, and deterministic
// generators for community-structured graphs of the INRIA co-publication
// shape (~4,500 nodes, ~10,000 edges).
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a node.
type NodeID int64

// Edge is one undirected weighted edge.
type Edge struct {
	A, B   NodeID
	Weight float64
}

// Graph is an undirected weighted multigraph-free graph.
type Graph struct {
	nodes  map[NodeID]string // id → label
	adj    map[NodeID]map[NodeID]float64
	nedges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: map[NodeID]string{},
		adj:   map[NodeID]map[NodeID]float64{},
	}
}

// AddNode inserts (or relabels) a node.
func (g *Graph) AddNode(id NodeID, label string) {
	if _, ok := g.nodes[id]; !ok {
		g.adj[id] = map[NodeID]float64{}
	}
	g.nodes[id] = label
}

// HasNode reports membership.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.nodes[id]
	return ok
}

// Label returns a node's label.
func (g *Graph) Label(id NodeID) string { return g.nodes[id] }

// RemoveNode deletes a node and its incident edges.
func (g *Graph) RemoveNode(id NodeID) {
	if _, ok := g.nodes[id]; !ok {
		return
	}
	for nb := range g.adj[id] {
		delete(g.adj[nb], id)
		g.nedges--
	}
	delete(g.adj, id)
	delete(g.nodes, id)
}

// AddEdge inserts an undirected edge (idempotent; re-adding updates the
// weight). Self-loops are ignored. Both endpoints must exist.
func (g *Graph) AddEdge(a, b NodeID, w float64) error {
	if a == b {
		return nil
	}
	if !g.HasNode(a) || !g.HasNode(b) {
		return fmt.Errorf("graph: edge (%d,%d) references missing node", a, b)
	}
	if _, exists := g.adj[a][b]; !exists {
		g.nedges++
	}
	g.adj[a][b] = w
	g.adj[b][a] = w
	return nil
}

// RemoveEdge deletes an edge if present.
func (g *Graph) RemoveEdge(a, b NodeID) {
	if _, ok := g.adj[a][b]; ok {
		delete(g.adj[a], b)
		delete(g.adj[b], a)
		g.nedges--
	}
}

// HasEdge reports whether the edge exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	_, ok := g.adj[a][b]
	return ok
}

// Weight returns an edge's weight (0 if absent).
func (g *Graph) Weight(a, b NodeID) float64 { return g.adj[a][b] }

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return g.nedges }

// Nodes returns all node ids, sorted (deterministic iteration).
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges with A < B, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.nedges)
	for a, nbs := range g.adj {
		for b, w := range nbs {
			if a < b {
				out = append(out, Edge{A: a, B: b, Weight: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Neighbors returns a node's neighbors, sorted.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.adj[id]))
	for nb := range g.adj[id] {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of incident edges.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// WeightedDegree returns the sum of incident edge weights.
func (g *Graph) WeightedDegree(id NodeID) float64 {
	var s float64
	for _, w := range g.adj[id] {
		s += w
	}
	return s
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New()
	for id, label := range g.nodes {
		c.AddNode(id, label)
	}
	for a, nbs := range g.adj {
		for b, w := range nbs {
			if a < b {
				c.AddEdge(a, b, w)
			}
		}
	}
	return c
}

// Components returns the connected components as sorted id slices, largest
// first.
func (g *Graph) Components() [][]NodeID {
	seen := map[NodeID]bool{}
	var comps [][]NodeID
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for nb := range g.adj[n] {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// ------------------------------------------------------------ generators

// CommunityConfig parameterizes GenerateCommunity.
type CommunityConfig struct {
	Nodes       int
	Communities int
	// IntraProb is the probability weight of attaching within the
	// community; the rest of a node's edges go anywhere (rewiring).
	IntraProb float64
	// AvgDegree controls the edge count: edges ≈ Nodes*AvgDegree/2.
	AvgDegree float64
	Seed      int64
}

// GenerateCommunity builds a community-structured graph via preferential
// attachment within communities plus random rewiring — the degree shape of
// co-authorship networks (the paper's INRIA co-publication graph).
func GenerateCommunity(cfg CommunityConfig) *Graph {
	if cfg.Nodes <= 0 {
		return New()
	}
	if cfg.Communities <= 0 {
		cfg.Communities = 1
	}
	if cfg.AvgDegree <= 0 {
		cfg.AvgDegree = 4
	}
	if cfg.IntraProb <= 0 || cfg.IntraProb > 1 {
		cfg.IntraProb = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New()
	community := make([]int, cfg.Nodes)
	byCommunity := make([][]NodeID, cfg.Communities)
	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(i + 1)
		c := i % cfg.Communities
		community[i] = c
		g.AddNode(id, fmt.Sprintf("author-%d", id))
		byCommunity[c] = append(byCommunity[c], id)
	}
	targetEdges := int(float64(cfg.Nodes) * cfg.AvgDegree / 2)
	// Preferential attachment pool: nodes appear once per degree + 1.
	pool := make([]NodeID, 0, targetEdges*2+cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		pool = append(pool, NodeID(i+1))
	}
	attempts := 0
	for g.EdgeCount() < targetEdges && attempts < targetEdges*20 {
		attempts++
		a := NodeID(rng.Intn(cfg.Nodes) + 1)
		var b NodeID
		if rng.Float64() < cfg.IntraProb {
			// Within the community, preferring high-degree members.
			members := byCommunity[community[a-1]]
			b = members[rng.Intn(len(members))]
			if g.Degree(b) < 1 && len(members) > 1 {
				b = members[rng.Intn(len(members))]
			}
		} else {
			b = pool[rng.Intn(len(pool))]
		}
		if a == b || g.HasEdge(a, b) {
			continue
		}
		w := 1 + float64(rng.Intn(5)) // co-publication counts 1..5
		g.AddEdge(a, b, w)
		pool = append(pool, a, b)
	}
	return g
}

// GenerateRandom builds an Erdős–Rényi-ish graph (baseline workloads).
func GenerateRandom(nodes, edges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < nodes; i++ {
		g.AddNode(NodeID(i+1), fmt.Sprintf("n%d", i+1))
	}
	attempts := 0
	for g.EdgeCount() < edges && attempts < edges*20 {
		attempts++
		a := NodeID(rng.Intn(nodes) + 1)
		b := NodeID(rng.Intn(nodes) + 1)
		if a == b || g.HasEdge(a, b) {
			continue
		}
		g.AddEdge(a, b, 1)
	}
	return g
}
