package graph

import (
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for i := 1; i <= 4; i++ {
		g.AddNode(NodeID(i), "")
	}
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 2)
	g.AddEdge(3, 1, 1)
	return g
}

func TestBasicOps(t *testing.T) {
	g := small(t)
	if g.NodeCount() != 4 || g.EdgeCount() != 3 {
		t.Fatalf("%d nodes, %d edges", g.NodeCount(), g.EdgeCount())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("undirected edge")
	}
	if g.Weight(2, 3) != 2 {
		t.Error("weight")
	}
	if g.Degree(3) != 2 || g.Degree(4) != 0 {
		t.Error("degree")
	}
	if g.WeightedDegree(2) != 3 {
		t.Errorf("weighted degree: %f", g.WeightedDegree(2))
	}
	nbs := g.Neighbors(1)
	if len(nbs) != 2 || nbs[0] != 2 || nbs[1] != 3 {
		t.Errorf("neighbors: %v", nbs)
	}
}

func TestSelfLoopAndMissingNode(t *testing.T) {
	g := small(t)
	g.AddEdge(1, 1, 1)
	if g.EdgeCount() != 3 {
		t.Error("self loop must be ignored")
	}
	if err := g.AddEdge(1, 99, 1); err == nil {
		t.Error("edge to missing node must fail")
	}
}

func TestRemove(t *testing.T) {
	g := small(t)
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || g.EdgeCount() != 2 {
		t.Error("remove edge")
	}
	g.RemoveNode(3)
	if g.HasNode(3) || g.EdgeCount() != 0 {
		t.Errorf("remove node: %d edges left", g.EdgeCount())
	}
	g.RemoveNode(3) // idempotent
}

func TestEdgesSortedAndClone(t *testing.T) {
	g := small(t)
	es := g.Edges()
	if len(es) != 3 || es[0].A != 1 || es[0].B != 2 {
		t.Errorf("%+v", es)
	}
	c := g.Clone()
	c.RemoveNode(1)
	if !g.HasNode(1) || g.EdgeCount() != 3 {
		t.Error("clone must be independent")
	}
}

func TestComponents(t *testing.T) {
	g := small(t)
	g.AddNode(5, "")
	g.AddNode(6, "")
	g.AddEdge(5, 6, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components: %d", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("%v", comps)
	}
}

func TestGenerateCommunityShape(t *testing.T) {
	cfg := CommunityConfig{Nodes: 500, Communities: 10, AvgDegree: 4, Seed: 1}
	g := GenerateCommunity(cfg)
	if g.NodeCount() != 500 {
		t.Fatalf("nodes: %d", g.NodeCount())
	}
	target := 500 * 4 / 2
	if g.EdgeCount() < target*8/10 {
		t.Fatalf("edges: %d, want ≈%d", g.EdgeCount(), target)
	}
	// Deterministic per seed.
	g2 := GenerateCommunity(cfg)
	if g2.EdgeCount() != g.EdgeCount() {
		t.Error("generator not deterministic")
	}
	// Different seeds differ.
	cfg.Seed = 2
	g3 := GenerateCommunity(cfg)
	same := true
	for _, e := range g.Edges() {
		if !g3.HasEdge(e.A, e.B) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateRandom(t *testing.T) {
	g := GenerateRandom(100, 200, 7)
	if g.NodeCount() != 100 || g.EdgeCount() < 150 {
		t.Fatalf("%d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
}

// Property: edge count bookkeeping stays consistent under add/remove.
func TestEdgeCountConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		g := New()
		for i := 1; i <= 10; i++ {
			g.AddNode(NodeID(i), "")
		}
		for _, op := range ops {
			a := NodeID(op%10 + 1)
			b := NodeID((op/10)%10 + 1)
			if op%2 == 0 {
				g.AddEdge(a, b, 1)
			} else {
				g.RemoveEdge(a, b)
			}
		}
		// Recount from adjacency.
		count := 0
		for _, id := range g.Nodes() {
			count += g.Degree(id)
		}
		return count == g.EdgeCount()*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
