package types

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Binary encoding of values and rows, used by the WAL and snapshot files.
//
// Layout of one value: 1 byte kind tag, then a kind-specific payload.
//   NULL                  (nothing)
//   BOOL   1 byte (0/1)
//   INT    8 bytes big-endian two's complement
//   FLOAT  8 bytes IEEE-754 bits
//   STRING uvarint length + bytes
//   TIME   8 bytes unix nanos (int64)
//   BYTES  uvarint length + bytes

// AppendValue appends the binary encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindTime:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.t.UnixNano()))
	case KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.raw)))
		dst = append(dst, v.raw...)
	}
	return dst
}

// DecodeValue decodes one value from buf, returning the value and the number
// of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("types: empty buffer")
	}
	k := Kind(buf[0])
	rest := buf[1:]
	switch k {
	case KindNull:
		return Null, 1, nil
	case KindBool:
		if len(rest) < 1 {
			return Null, 0, fmt.Errorf("types: short BOOL")
		}
		return NewBool(rest[0] != 0), 2, nil
	case KindInt:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("types: short INT")
		}
		return NewInt(int64(binary.BigEndian.Uint64(rest))), 9, nil
	case KindFloat:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("types: short FLOAT")
		}
		return NewFloat(math.Float64frombits(binary.BigEndian.Uint64(rest))), 9, nil
	case KindString:
		n, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)-w) < n {
			return Null, 0, fmt.Errorf("types: short STRING")
		}
		return NewString(string(rest[w : w+int(n)])), 1 + w + int(n), nil
	case KindTime:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("types: short TIME")
		}
		return NewTime(time.Unix(0, int64(binary.BigEndian.Uint64(rest)))), 9, nil
	case KindBytes:
		n, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)-w) < n {
			return Null, 0, fmt.Errorf("types: short BYTES")
		}
		b := make([]byte, n)
		copy(b, rest[w:w+int(n)])
		return NewBytes(b), 1 + w + int(n), nil
	}
	return Null, 0, fmt.Errorf("types: unknown kind tag %d", buf[0])
}

// AppendRow appends the encoding of r (uvarint arity, then each value).
func AppendRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeRow decodes a row from buf, returning the row and bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, 0, fmt.Errorf("types: short row header")
	}
	off := w
	// Each value costs at least its kind byte; a row claiming more
	// values than remaining bytes is malformed. Checking before the
	// allocation keeps hostile headers from forcing huge make() calls.
	if n > uint64(len(buf)-off) {
		return nil, 0, fmt.Errorf("types: row claims %d values in %d bytes", n, len(buf)-off)
	}
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := DecodeValue(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: row value %d: %w", i, err)
		}
		row = append(row, v)
		off += used
	}
	return row, off, nil
}
