package types

import (
	"testing"
	"testing/quick"
)

func TestAddSemantics(t *testing.T) {
	v, err := Add(NewInt(2), NewInt(3))
	if err != nil || v.Int() != 5 {
		t.Errorf("2+3 = %v, %v", v, err)
	}
	v, err = Add(NewInt(2), NewFloat(0.5))
	if err != nil || v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("2+0.5 = %v, %v", v, err)
	}
	v, err = Add(NewString("foo"), NewString("bar"))
	if err != nil || v.Str() != "foobar" {
		t.Errorf("string concat = %v, %v", v, err)
	}
	v, err = Add(Null, NewInt(1))
	if err != nil || !v.IsNull() {
		t.Errorf("NULL+1 = %v, %v; want NULL", v, err)
	}
	if _, err = Add(NewBool(true), NewInt(1)); err == nil {
		t.Error("BOOL+INT should error")
	}
}

func TestSubMulDiv(t *testing.T) {
	if v, _ := Sub(NewInt(7), NewInt(9)); v.Int() != -2 {
		t.Error("7-9")
	}
	if v, _ := Mul(NewFloat(1.5), NewInt(4)); v.Float() != 6.0 {
		t.Error("1.5*4")
	}
	if v, _ := Div(NewInt(7), NewInt(2)); v.Int() != 3 {
		t.Error("integer division 7/2 must be 3")
	}
	if v, _ := Div(NewFloat(7), NewInt(2)); v.Float() != 3.5 {
		t.Error("7.0/2 must be 3.5")
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero must error")
	}
}

func TestMod(t *testing.T) {
	if v, err := Mod(NewInt(10), NewInt(3)); err != nil || v.Int() != 1 {
		t.Errorf("10%%3 = %v, %v", v, err)
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("mod by zero must error")
	}
	if v, err := Mod(Null, NewInt(3)); err != nil || !v.IsNull() {
		t.Errorf("NULL%%3 = %v, %v", v, err)
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(NewInt(5)); v.Int() != -5 {
		t.Error("neg int")
	}
	if v, _ := Neg(NewFloat(2.5)); v.Float() != -2.5 {
		t.Error("neg float")
	}
	if v, _ := Neg(Null); !v.IsNull() {
		t.Error("neg null")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("neg string must error")
	}
}

// Property: integer Add/Sub round-trips.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		s, err := Add(NewInt(a), NewInt(b))
		if err != nil {
			return false
		}
		d, err := Sub(s, NewInt(b))
		return err == nil && d.Int() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encode/decode round-trips for every kind.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		NewBool(true), NewBool(false),
		NewInt(0), NewInt(-1), NewInt(1 << 60),
		NewFloat(3.14159), NewFloat(-0.0),
		NewString(""), NewString("héllo wörld"),
		NewBytes(nil), NewBytes([]byte{0, 255, 3}),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil || n != len(buf) || !Equal(got, v) {
			t.Errorf("round-trip %v: got %v (n=%d len=%d err=%v)", v, got, n, len(buf), err)
		}
	}
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	r := Row{NewInt(1), NewString("x"), Null, NewFloat(2.5)}
	buf := AppendRow(nil, r)
	got, n, err := DecodeRow(buf)
	if err != nil || n != len(buf) || !RowsEqual(got, r) {
		t.Fatalf("row round-trip: %v, n=%d, err=%v", got, n, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer must error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("short INT must error")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("bad tag must error")
	}
	if _, _, err := DecodeRow([]byte{}); err == nil {
		t.Error("empty row must error")
	}
}

// Property: encoding of random int rows decodes to equal rows.
func TestQuickRowRoundTrip(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		var r Row
		for _, i := range ints {
			r = append(r, NewInt(i))
		}
		for _, s := range strs {
			r = append(r, NewString(s))
		}
		buf := AppendRow(nil, r)
		got, n, err := DecodeRow(buf)
		return err == nil && n == len(buf) && RowsEqual(got, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
