package types

import "fmt"

// Arithmetic on values. NULL operands propagate NULL (SQL semantics).
// INT op INT stays INT except division by a non-divisor which promotes to
// FLOAT only for '/' when remainder is non-zero? No — the engine follows
// integer SQL semantics: INT / INT is integer division; use FLOAT operands
// for real division. Mixed INT/FLOAT promotes to FLOAT.

// Add returns a + b. Strings concatenate.
func Add(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.kind == KindString && b.kind == KindString {
		return NewString(a.s + b.s), nil
	}
	return numericOp(a, b, "+")
}

// Sub returns a - b.
func Sub(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	return numericOp(a, b, "-")
}

// Mul returns a * b.
func Mul(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	return numericOp(a, b, "*")
}

// Div returns a / b. Division by zero is an error.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	return numericOp(a, b, "/")
}

// Mod returns a % b for integers.
func Mod(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	ai, err := a.AsInt()
	if err != nil {
		return Null, err
	}
	bi, err := b.AsInt()
	if err != nil {
		return Null, err
	}
	if bi == 0 {
		return Null, fmt.Errorf("types: modulo by zero")
	}
	return NewInt(ai % bi), nil
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	}
	return Null, fmt.Errorf("types: cannot negate %s", a.kind)
}

func numericOp(a, b Value, op string) (Value, error) {
	if !numericKind(a.kind) || !numericKind(b.kind) {
		return Null, fmt.Errorf("types: %s not defined on %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case "+":
			return NewInt(a.i + b.i), nil
		case "-":
			return NewInt(a.i - b.i), nil
		case "*":
			return NewInt(a.i * b.i), nil
		case "/":
			if b.i == 0 {
				return Null, fmt.Errorf("types: division by zero")
			}
			return NewInt(a.i / b.i), nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch op {
	case "+":
		return NewFloat(af + bf), nil
	case "-":
		return NewFloat(af - bf), nil
	case "*":
		return NewFloat(af * bf), nil
	case "/":
		if bf == 0 {
			return Null, fmt.Errorf("types: division by zero")
		}
		return NewFloat(af / bf), nil
	}
	return Null, fmt.Errorf("types: unknown operator %q", op)
}
