package types

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindNames(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOL", KindInt: "INT",
		KindFloat: "FLOAT", KindString: "STRING", KindTime: "TIME", KindBytes: "BYTES",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	ok := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "bigint": KindInt,
		"text": KindString, "VARCHAR": KindString, "string": KindString,
		"real": KindFloat, "double": KindFloat, "FLOAT": KindFloat,
		"bool": KindBool, "boolean": KindBool,
		"timestamp": KindTime, "date": KindTime,
		"blob": KindBytes,
	}
	for name, want := range ok {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("frobnicate"); err == nil {
		t.Error("KindFromName accepted nonsense type")
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Fatalf("zero Value is not NULL: %v", v)
	}
}

func TestAccessors(t *testing.T) {
	now := time.Now()
	if NewBool(true).Bool() != true {
		t.Error("Bool accessor")
	}
	if NewInt(42).Int() != 42 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str accessor")
	}
	if !NewTime(now).Time().Equal(now.Truncate(time.Microsecond)) {
		t.Error("Time accessor")
	}
	if string(NewBytes([]byte{1, 2}).Bytes()) != "\x01\x02" {
		t.Error("Bytes accessor")
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	c, err := Compare(NewInt(3), NewFloat(3.0))
	if err != nil || c != 0 {
		t.Errorf("Compare(3, 3.0) = %d, %v; want 0", c, err)
	}
	c, err = Compare(NewInt(3), NewFloat(3.5))
	if err != nil || c != -1 {
		t.Errorf("Compare(3, 3.5) = %d, %v; want -1", c, err)
	}
	c, err = Compare(NewFloat(4.5), NewInt(4))
	if err != nil || c != 1 {
		t.Errorf("Compare(4.5, 4) = %d, %v; want 1", c, err)
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if c, _ := Compare(Null, NewInt(0)); c != -1 {
		t.Error("NULL must sort before non-NULL")
	}
	if c, _ := Compare(NewString("a"), Null); c != 1 {
		t.Error("non-NULL must sort after NULL")
	}
	if c, _ := Compare(Null, Null); c != 0 {
		t.Error("NULL must compare equal to NULL for sorting")
	}
}

func TestCompareCrossKindError(t *testing.T) {
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("expected error comparing STRING with INT")
	}
	if _, err := Compare(NewBool(true), NewTime(time.Now())); err == nil {
		t.Error("expected error comparing BOOL with TIME")
	}
}

func TestCompareStringsTimesBytes(t *testing.T) {
	if c, _ := Compare(NewString("abc"), NewString("abd")); c != -1 {
		t.Error("string compare")
	}
	t0 := time.Unix(100, 0)
	t1 := time.Unix(200, 0)
	if c, _ := Compare(NewTime(t0), NewTime(t1)); c != -1 {
		t.Error("time compare")
	}
	if c, _ := Compare(NewBytes([]byte("b")), NewBytes([]byte("a"))); c != 1 {
		t.Error("bytes compare")
	}
	if c, _ := Compare(NewBool(false), NewBool(true)); c != -1 {
		t.Error("bool compare")
	}
}

func TestHashKeyNumericEquivalence(t *testing.T) {
	if NewInt(3).HashKey() != NewFloat(3.0).HashKey() {
		t.Error("3 and 3.0 should share a hash key")
	}
	if NewInt(3).HashKey() == NewInt(4).HashKey() {
		t.Error("distinct ints must differ")
	}
	if NewString("3").HashKey() == NewInt(3).HashKey() {
		t.Error("string '3' must not collide with int 3")
	}
}

// Property: Equal values always have equal hash keys.
func TestHashKeyConsistentWithEqual(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if Equal(va, vb) {
			return va.HashKey() == vb.HashKey()
		}
		return va.HashKey() != vb.HashKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric for ints and floats.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c1, err1 := Compare(NewFloat(a), NewFloat(b))
		c2, err2 := Compare(NewFloat(b), NewFloat(a))
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsIntCoercions(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
		err  bool
	}{
		{NewInt(7), 7, false},
		{NewFloat(7.9), 7, false},
		{NewBool(true), 1, false},
		{NewBool(false), 0, false},
		{NewString(" 42 "), 42, false},
		{NewString("x"), 0, true},
		{Null, 0, true},
	}
	for _, c := range cases {
		got, err := c.v.AsInt()
		if (err != nil) != c.err || (!c.err && got != c.want) {
			t.Errorf("AsInt(%v) = %d, %v; want %d err=%v", c.v, got, err, c.want, c.err)
		}
	}
}

func TestAsFloatAndBool(t *testing.T) {
	if f, err := NewString("2.5").AsFloat(); err != nil || f != 2.5 {
		t.Errorf("AsFloat('2.5') = %v, %v", f, err)
	}
	if b, err := NewInt(0).AsBool(); err != nil || b {
		t.Errorf("AsBool(0) = %v, %v", b, err)
	}
	if b, err := NewString("true").AsBool(); err != nil || !b {
		t.Errorf("AsBool('true') = %v, %v", b, err)
	}
	if _, err := Null.AsBool(); err == nil {
		t.Error("AsBool(NULL) should error")
	}
}

func TestAsString(t *testing.T) {
	if Null.AsString() != "" {
		t.Error("NULL AsString should be empty")
	}
	if NewInt(5).AsString() != "5" {
		t.Error("int AsString")
	}
	if NewString("hi").AsString() != "hi" {
		t.Error("string AsString")
	}
}

func TestSQLLiteralQuoting(t *testing.T) {
	if got := NewString("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral escaping: %q", got)
	}
	if got := NewInt(-3).SQLLiteral(); got != "-3" {
		t.Errorf("int literal: %q", got)
	}
	if got := Null.SQLLiteral(); got != "NULL" {
		t.Errorf("null literal: %q", got)
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := NewString("2006-01-02").CoerceTo(KindTime)
	if err != nil || v.Kind() != KindTime {
		t.Errorf("CoerceTo TIME: %v, %v", v, err)
	}
	v, err = NewInt(1).CoerceTo(KindBool)
	if err != nil || !v.Bool() {
		t.Errorf("CoerceTo BOOL: %v, %v", v, err)
	}
	v, err = Null.CoerceTo(KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("NULL CoerceTo must stay NULL: %v, %v", v, err)
	}
	if _, err = NewBool(true).CoerceTo(KindTime); err == nil {
		t.Error("BOOL→TIME should fail")
	}
}

func TestCloneBytesIndependence(t *testing.T) {
	orig := NewBytes([]byte{1, 2, 3})
	c := orig.Clone()
	c.Bytes()[0] = 9
	if orig.Bytes()[0] != 1 {
		t.Error("Clone must deep-copy bytes")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := CloneRow(r)
	if !RowsEqual(r, c) {
		t.Error("CloneRow must preserve equality")
	}
	if RowsEqual(r, Row{NewInt(1)}) {
		t.Error("rows of different arity are not equal")
	}
	if RowKey(r) == RowKey(Row{NewInt(1), NewString("b")}) {
		t.Error("distinct rows must have distinct keys")
	}
	// RowKey must be prefix-safe: ("ab","c") vs ("a","bc").
	if RowKey(Row{NewString("ab"), NewString("c")}) == RowKey(Row{NewString("a"), NewString("bc")}) {
		t.Error("RowKey must be unambiguous across value boundaries")
	}
}

func TestCoerceToBytesAndTime(t *testing.T) {
	v, err := NewString("payload").CoerceTo(KindBytes)
	if err != nil || string(v.Bytes()) != "payload" {
		t.Fatalf("%v %v", v, err)
	}
	v, err = NewInt(1_000_000_000).CoerceTo(KindTime)
	if err != nil || v.Kind() != KindTime {
		t.Fatalf("%v %v", v, err)
	}
	if _, err := NewFloat(1.5).CoerceTo(KindBytes); err == nil {
		t.Error("FLOAT→BYTES must fail")
	}
	if _, err := NewString("not a time").CoerceTo(KindTime); err == nil {
		t.Error("bad time string must fail")
	}
	// Alternate accepted layouts.
	for _, s := range []string{"2026-07-06", "2026-07-06 12:30:00", "2026-07-06T12:30:00Z"} {
		if _, err := NewString(s).CoerceTo(KindTime); err != nil {
			t.Errorf("layout %q rejected: %v", s, err)
		}
	}
}

func TestSQLLiteralTimeAndBytes(t *testing.T) {
	tv := NewTime(time.Date(2026, 7, 6, 1, 2, 3, 0, time.UTC))
	lit := tv.SQLLiteral()
	if len(lit) < 2 || lit[0] != '\'' {
		t.Fatalf("time literal: %q", lit)
	}
	bv := NewBytes([]byte{0xAB})
	if bv.SQLLiteral() != "x'ab'" {
		t.Fatalf("bytes literal: %q", bv.SQLLiteral())
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render something")
	}
}
