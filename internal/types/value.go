// Package types defines the typed value model shared by every layer of
// EdiFlow: the SQL engine, the workflow engine, the notification protocol
// and the visualization tables all exchange rows of Value.
//
// A Value is a small tagged union. Integers and floats compare with numeric
// coercion; NULL sorts before everything and never satisfies an equality
// predicate. The model matches the atomic types T of the paper's process
// grammar (Fig. 4): booleans, integers, reals, strings, timestamps and raw
// bytes.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported kinds. KindNull is the zero Kind, so the zero Value is NULL.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
	KindBytes
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindTime:
		return "TIME"
	case KindBytes:
		return "BYTES"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromName parses a column type name as written in schemas and process
// specifications. It accepts the common SQL aliases used by the paper's
// examples (INTEGER, REAL, TEXT, VARCHAR, TIMESTAMP, ...).
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "NUMERIC", "DECIMAL":
		return KindFloat, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return KindString, nil
	case "TIME", "TIMESTAMP", "DATE", "DATETIME":
		return KindTime, nil
	case "BYTES", "BLOB", "BINARY":
		return KindBytes, nil
	}
	return KindNull, fmt.Errorf("types: unknown type name %q", name)
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
//
// Value is a value type: copying it copies the content, except for
// KindBytes where the underlying byte slice is shared (callers that mutate
// byte payloads must Clone first).
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	t    time.Time
	raw  []byte
}

// Null is the NULL value.
var Null = Value{}

// NewBool returns a BOOL value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewTime returns a TIME value, truncated to microseconds so that encoded
// round-trips are exact.
func NewTime(t time.Time) Value { return Value{kind: KindTime, t: t.Truncate(time.Microsecond)} }

// NewBytes returns a BYTES value sharing the given slice.
func NewBytes(b []byte) Value { return Value{kind: KindBytes, raw: b} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// The Lane accessors below take pointer receivers on purpose: Value
// has too many fields for the compiler's SSA form, so even an inlined
// value-receiver accessor copies the whole struct per call. In
// per-lane loops (the expression VM's batch fill) that copy dominates
// the loop, so hot paths read single fields through a pointer. They
// carry the same preconditions as their value-receiver counterparts.

// LaneKind reports the dynamic type of *v without copying it.
func (v *Value) LaneKind() Kind { return v.kind }

// LaneInt returns the integer content; Kind must be KindInt.
func (v *Value) LaneInt() int64 { return v.i }

// LaneFloat returns the float content; Kind must be KindFloat.
func (v *Value) LaneFloat() float64 { return v.f }

// LaneBool returns the boolean content; Kind must be KindBool.
func (v *Value) LaneBool() bool { return v.b }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean content; it must only be called when Kind is KindBool.
func (v Value) Bool() bool { return v.b }

// Int returns the integer content; it must only be called when Kind is KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float content; it must only be called when Kind is KindFloat.
func (v Value) Float() float64 { return v.f }

// Str returns the string content; it must only be called when Kind is KindString.
func (v Value) Str() string { return v.s }

// Time returns the time content; it must only be called when Kind is KindTime.
func (v Value) Time() time.Time { return v.t }

// Bytes returns the raw byte content; it must only be called when Kind is KindBytes.
func (v Value) Bytes() []byte { return v.raw }

// Clone returns a deep copy of v (relevant only for KindBytes).
func (v Value) Clone() Value {
	if v.kind == KindBytes && v.raw != nil {
		c := make([]byte, len(v.raw))
		copy(c, v.raw)
		v.raw = c
	}
	return v
}

// AsInt coerces v to an int64. Floats truncate toward zero; strings parse;
// booleans map to 0/1. NULL and unparsable values return an error.
func (v Value) AsInt() (int64, error) {
	switch v.kind {
	case KindInt:
		return v.i, nil
	case KindFloat:
		return int64(v.f), nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("types: cannot convert %q to INT", v.s)
		}
		return n, nil
	}
	return 0, fmt.Errorf("types: cannot convert %s to INT", v.kind)
}

// AsFloat coerces v to a float64.
func (v Value) AsFloat() (float64, error) {
	switch v.kind {
	case KindInt:
		return float64(v.i), nil
	case KindFloat:
		return v.f, nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, fmt.Errorf("types: cannot convert %q to FLOAT", v.s)
		}
		return f, nil
	}
	return 0, fmt.Errorf("types: cannot convert %s to FLOAT", v.kind)
}

// AsString coerces v to its textual form. NULL returns "".
func (v Value) AsString() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindString:
		return v.s
	default:
		return v.String()
	}
}

// AsBool coerces v to a boolean: BOOL is itself, numbers are non-zero,
// strings parse "true"/"false". NULL is an error.
func (v Value) AsBool() (bool, error) {
	switch v.kind {
	case KindBool:
		return v.b, nil
	case KindInt:
		return v.i != 0, nil
	case KindFloat:
		return v.f != 0, nil
	case KindString:
		b, err := strconv.ParseBool(strings.TrimSpace(strings.ToLower(v.s)))
		if err != nil {
			return false, fmt.Errorf("types: cannot convert %q to BOOL", v.s)
		}
		return b, nil
	}
	return false, fmt.Errorf("types: cannot convert %s to BOOL", v.kind)
}

// String renders v for display. Strings are returned verbatim (no quoting);
// use SQLLiteral for a parseable form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return v.t.Format(time.RFC3339Nano)
	case KindBytes:
		return fmt.Sprintf("x'%x'", v.raw)
	}
	return "?"
}

// SQLLiteral renders v as a SQL literal that the sqltext parser accepts.
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindTime:
		return "'" + v.t.Format(time.RFC3339Nano) + "'"
	default:
		return v.String()
	}
}

// numericKind reports whether k is INT or FLOAT.
func numericKind(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare orders a before b (-1), equal (0) or after (+1).
//
// NULL compares before every non-NULL value and equal to NULL (total order
// for sorting; predicate-level NULL semantics are the evaluator's concern).
// INT and FLOAT compare numerically across kinds. Other cross-kind
// comparisons are errors.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if numericKind(a.kind) && numericKind(b.kind) {
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt(a.i, b.i), nil
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return cmpFloat(af, bf), nil
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindBool:
		x, y := 0, 0
		if a.b {
			x = 1
		}
		if b.b {
			y = 1
		}
		return cmpInt(int64(x), int64(y)), nil
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindTime:
		switch {
		case a.t.Before(b.t):
			return -1, nil
		case a.t.After(b.t):
			return 1, nil
		}
		return 0, nil
	case KindBytes:
		return strings.Compare(string(a.raw), string(b.raw)), nil
	}
	return 0, fmt.Errorf("types: cannot compare %s", a.kind)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports value equality under Compare semantics (NULL equals NULL).
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// HashKey returns a string usable as a map key such that Equal values have
// equal keys (numeric 3 and 3.0 share a key).
func (v Value) HashKey() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindBool:
		if v.b {
			return "b1"
		}
		return "b0"
	case KindInt:
		return "n" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
		}
		return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "s" + v.s
	case KindTime:
		return "t" + strconv.FormatInt(v.t.UnixNano(), 10)
	case KindBytes:
		return "y" + string(v.raw)
	}
	return "?"
}

// CoerceTo converts v to the target kind, or errors when no sensible
// conversion exists. NULL coerces to NULL of any kind.
func (v Value) CoerceTo(k Kind) (Value, error) {
	if v.kind == KindNull || v.kind == k {
		return v, nil
	}
	switch k {
	case KindBool:
		b, err := v.AsBool()
		if err != nil {
			return Null, err
		}
		return NewBool(b), nil
	case KindInt:
		i, err := v.AsInt()
		if err != nil {
			return Null, err
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := v.AsFloat()
		if err != nil {
			return Null, err
		}
		return NewFloat(f), nil
	case KindString:
		return NewString(v.AsString()), nil
	case KindTime:
		if v.kind == KindString {
			for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if t, err := time.Parse(layout, v.s); err == nil {
					return NewTime(t), nil
				}
			}
			return Null, fmt.Errorf("types: cannot parse %q as TIME", v.s)
		}
		if v.kind == KindInt {
			return NewTime(time.Unix(0, v.i)), nil
		}
	case KindBytes:
		if v.kind == KindString {
			return NewBytes([]byte(v.s)), nil
		}
	}
	return Null, fmt.Errorf("types: cannot coerce %s to %s", v.kind, k)
}

// Row is a tuple of values.
type Row []Value

// CloneRow returns a deep copy of r.
func CloneRow(r Row) Row {
	c := make(Row, len(r))
	for i, v := range r {
		c[i] = v.Clone()
	}
	return c
}

// CloneRows deep-copies a result set, backing all cloned rows with one
// shared slab so the copy costs two allocations instead of one per row
// (plus whatever the individual Clone calls need for BYTES payloads).
func CloneRows(rows []Row) []Row {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	slab := make([]Value, total)
	out := make([]Row, len(rows))
	off := 0
	for i, r := range rows {
		c := slab[off : off+len(r) : off+len(r)]
		for j, v := range r {
			c[j] = v.Clone()
		}
		out[i] = c
		off += len(r)
	}
	return out
}

// RowsEqual reports whether two rows have equal length and pairwise Equal values.
func RowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// RowKey concatenates the hash keys of the row's values into a map key.
func RowKey(r Row) string {
	var sb strings.Builder
	for _, v := range r {
		k := v.HashKey()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String()
}
