// Package metrics is the low-overhead instrumentation layer of the
// EdiFlow DBMS. Every layer of the stack — the SQL engine, the WAL, the
// network server, the client driver, the notifier and the table-sync
// mirrors — records into a Registry of atomic counters, bucketed latency
// histograms and callback gauges.
//
// The design constraints, in order:
//
//  1. The hot path pays almost nothing: a counter increment is one
//     atomic add; a histogram observation is three. Timing a code
//     section costs two monotonic clock reads, and every timed section
//     is guarded by Registry.Enabled() so instrumentation can be turned
//     off wholesale (the overhead budget in bench_test.go asserts the
//     enabled/disabled delta stays under 5%).
//  2. Like the rest of the paper's design, observability state is
//     *relational*: Registry.Snapshot feeds the SYS_METRICS virtual
//     table so a plain SELECT — embedded or over the wire — reads the
//     same numbers an HTTP scrape would.
//  3. No external dependencies: stdlib only, like everything else in
//     this repository.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// numBuckets covers latencies from 1µs up to ~8.6s in powers of two;
// everything slower lands in the overflow bucket.
const numBuckets = 24

// bucketBound returns the inclusive upper bound (in nanoseconds) of
// bucket i: 1µs, 2µs, 4µs, … 2^23 µs (~8.4s).
func bucketBound(i int) int64 { return int64(1000) << uint(i) }

// Histogram is a fixed-bucket latency histogram. Buckets are exponential
// in nanoseconds; Observe is lock-free (three atomic adds).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets + 1]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	// Index of the first bucket whose bound covers ns.
	i := 0
	for i < numBuckets && ns > bucketBound(i) {
		i++
	}
	h.buckets[i].Add(1)
}

// HistogramStat is a point-in-time summary of a histogram.
type HistogramStat struct {
	Count int64
	Sum   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Avg returns the mean observation, or 0 with no observations.
func (s HistogramStat) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Stat summarizes the histogram. Quantiles are approximated by the upper
// bound of the bucket containing the quantile rank (so they are
// conservative: the true quantile is at most the reported value).
func (h *Histogram) Stat() HistogramStat {
	var counts [numBuckets + 1]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := HistogramStat{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	q := func(p float64) time.Duration {
		if total == 0 {
			return 0
		}
		rank := int64(p * float64(total))
		if rank >= total {
			rank = total - 1
		}
		seen := int64(0)
		for i, c := range counts {
			seen += c
			if seen > rank {
				if i >= numBuckets {
					return st.Max
				}
				return time.Duration(bucketBound(i))
			}
		}
		return st.Max
	}
	st.P50 = q(0.50)
	st.P95 = q(0.95)
	st.P99 = q(0.99)
	return st
}

// Sample is one row of a registry snapshot: either a counter/gauge value
// or a histogram summary, distinguished by Kind.
type Sample struct {
	Name string
	Kind string // "counter", "gauge" or "histogram"

	// Counter / gauge value; for histograms, the observation count.
	Count int64

	// Histogram-only fields (zero for counters and gauges).
	Hist HistogramStat
}

// Registry is a named set of metrics. The zero value is NOT usable; use
// NewRegistry. A Registry starts enabled.
type Registry struct {
	enabled atomic.Bool

	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() int64
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]func() int64{},
	}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether timed instrumentation should run. Counter
// increments are cheap enough to run unconditionally; callers wrap
// clock reads (and anything allocating) in an Enabled() check.
func (r *Registry) Enabled() bool {
	if r == nil {
		return false
	}
	return r.enabled.Load()
}

// SetEnabled toggles timed instrumentation.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Counter returns the named counter, creating it on first use. Safe for
// concurrent use; the returned pointer is stable and can be cached.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// RegisterGauge installs (or replaces) a gauge computed at snapshot time
// by fn. fn must be safe to call from any goroutine and must not call
// back into the registry.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Snapshot returns every metric, sorted by name.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Sample, 0, len(r.counters)+len(r.hists)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Kind: "counter", Count: c.Value()})
	}
	for name, h := range r.hists {
		st := h.Stat()
		out = append(out, Sample{Name: name, Kind: "histogram", Count: st.Count, Hist: st})
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	r.mu.RUnlock()
	// Gauge callbacks may take their own locks; run them outside ours.
	for name, fn := range gauges {
		out = append(out, Sample{Name: name, Kind: "gauge", Count: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Timer is a convenience for timing a section:
//
//	defer reg.Time(hist)()
//
// It is a no-op (and allocation-free) when the registry is disabled.
func (r *Registry) Time(h *Histogram) func() {
	if !r.Enabled() || h == nil {
		return func() {}
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}
