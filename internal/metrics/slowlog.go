package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one recorded slow (or failed) statement.
type SlowEntry struct {
	Seq          int64 // monotonically increasing record number
	TS           int64 // unix nanoseconds at completion
	SQL          string
	Duration     time.Duration
	RowsScanned  int64
	RowsReturned int64
	Err          string // empty on success
}

// SlowLog is a fixed-capacity ring buffer of the slowest statements seen.
// Recording is O(1); when the ring is full the oldest entry is evicted.
// Statements faster than the threshold (and error-free) are ignored, so
// the hot path usually pays only one atomic load.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds

	mu   sync.Mutex
	buf  []SlowEntry
	next int   // ring write position
	n    int   // entries currently held (≤ len(buf))
	seq  int64 // total entries ever recorded
}

// NewSlowLog returns a ring of the given capacity (minimum 1) recording
// statements at or above threshold, plus every failed statement.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{buf: make([]SlowEntry, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the current slow threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// SetThreshold changes the slow threshold (0 records everything).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l != nil {
		l.threshold.Store(int64(d))
	}
}

// ShouldRecord reports whether a statement of the given duration/outcome
// belongs in the log. It is the cheap hot-path check.
func (l *SlowLog) ShouldRecord(d time.Duration, failed bool) bool {
	if l == nil {
		return false
	}
	return failed || int64(d) >= l.threshold.Load()
}

// Record appends one entry, evicting the oldest when full. The caller is
// expected to have consulted ShouldRecord first (Record does not filter,
// so tests and fuzzing can drive the ring directly).
func (l *SlowLog) Record(sql string, d time.Duration, scanned, returned int64, errMsg string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	l.buf[l.next] = SlowEntry{
		Seq:          l.seq,
		TS:           time.Now().UnixNano(),
		SQL:          sql,
		Duration:     d,
		RowsScanned:  scanned,
		RowsReturned: returned,
		Err:          errMsg,
	}
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// Len returns the number of entries currently held.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns how many entries were ever recorded (including evicted).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Snapshot returns the held entries, oldest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}
