package metrics

import (
	"testing"
	"time"
)

// FuzzSlowLog drives the ring buffer with arbitrary capacities, SQL
// strings and durations and checks its structural invariants: bounded
// length, monotonically contiguous sequence numbers, newest entries
// retained, total never shrinking. The CI fuzz-smoke runs this for a few
// seconds on every push.
func FuzzSlowLog(f *testing.F) {
	f.Add(3, "SELECT 1", 1_000_000, 5, int64(2))
	f.Add(1, "", 0, 0, int64(-1))
	f.Add(8, "INSERT INTO t VALUES (?)", -5, 100, int64(1<<40))
	f.Fuzz(func(t *testing.T, capacity int, sql string, durNs int, records int, scanned int64) {
		if capacity < -1024 || capacity > 1024 {
			capacity = 16
		}
		if records < 0 {
			records = -records
		}
		records %= 300
		l := NewSlowLog(capacity, time.Duration(durNs))
		wantCap := capacity
		if wantCap < 1 {
			wantCap = 1
		}
		for i := 0; i < records; i++ {
			errMsg := ""
			if i%7 == 0 {
				errMsg = "boom"
			}
			l.Record(sql, time.Duration(durNs)+time.Duration(i), scanned, int64(i), errMsg)
			if l.Len() > wantCap {
				t.Fatalf("len %d exceeds capacity %d", l.Len(), wantCap)
			}
		}
		if l.Total() != int64(records) {
			t.Fatalf("total = %d, want %d", l.Total(), records)
		}
		snap := l.Snapshot()
		wantLen := records
		if wantLen > wantCap {
			wantLen = wantCap
		}
		if len(snap) != wantLen {
			t.Fatalf("snapshot len = %d, want %d", len(snap), wantLen)
		}
		for i, e := range snap {
			// The ring keeps the newest `wantLen` records.
			wantSeq := int64(records - wantLen + i + 1)
			if e.Seq != wantSeq {
				t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, wantSeq)
			}
			if e.SQL != sql {
				t.Fatalf("snapshot[%d].SQL corrupted", i)
			}
		}
		// Threshold updates must not disturb held entries.
		l.SetThreshold(time.Duration(durNs) * 2)
		if got := l.Snapshot(); len(got) != wantLen {
			t.Fatalf("snapshot after SetThreshold = %d entries, want %d", len(got), wantLen)
		}
	})
}
