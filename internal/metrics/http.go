package metrics

import (
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Handler returns an http.Handler rendering the registry (and, when
// non-nil, the slow-query log) as plain text — one metric per line,
// sorted by name. cmd/ediserver mounts it next to expvar and pprof so an
// operator can scrape the same numbers SYS_METRICS serves over SQL.
func Handler(r *Registry, slow *SlowLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range r.Snapshot() {
			switch s.Kind {
			case "histogram":
				fmt.Fprintf(w, "%s count=%d sum_ms=%.3f avg_ms=%.3f p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f max_ms=%.3f\n",
					s.Name, s.Count,
					ms(s.Hist.Sum), ms(s.Hist.Avg()), ms(s.Hist.P50), ms(s.Hist.P95), ms(s.Hist.P99), ms(s.Hist.Max))
			default:
				fmt.Fprintf(w, "%s %d\n", s.Name, s.Count)
			}
		}
		if slow == nil {
			return
		}
		entries := slow.Snapshot()
		sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
		for _, e := range entries {
			fmt.Fprintf(w, "slowlog seq=%d ms=%.3f scanned=%d returned=%d err=%q sql=%q\n",
				e.Seq, ms(e.Duration), e.RowsScanned, e.RowsReturned, e.Err, e.SQL)
		}
	})
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
