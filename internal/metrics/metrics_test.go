package metrics

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("x.count") != c {
		t.Fatal("Counter is not stable per name")
	}
	// nil receivers are inert, so call sites need no guards.
	var nc *Counter
	nc.Add(1)
	var nr *Registry
	if nr.Counter("y") != nil || nr.Enabled() {
		t.Fatal("nil registry must be inert")
	}
	nr.SetEnabled(true)
	if nr.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	st := h.Stat()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.Max != 5*time.Millisecond {
		t.Fatalf("max = %v, want 5ms", st.Max)
	}
	if st.P50 > 100*time.Microsecond {
		t.Fatalf("p50 = %v, want ≤ 100µs", st.P50)
	}
	// p95 falls in the 5ms observations; bucket bounds are conservative
	// upper bounds, so it must be ≥ 5ms and within one power of two.
	if st.P95 < 5*time.Millisecond || st.P95 > 16*time.Millisecond {
		t.Fatalf("p95 = %v, want ~5ms", st.P95)
	}
	if st.Avg() <= 0 {
		t.Fatalf("avg = %v, want > 0", st.Avg())
	}
	// Negative durations clamp instead of corrupting buckets.
	h.Observe(-time.Second)
	if h.Stat().Count != 101 {
		t.Fatal("negative observation lost")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Stat().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestGaugeAndSnapshotOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(2)
	r.Histogram("c.hist").Observe(time.Millisecond)
	r.RegisterGauge("a.gauge", func() int64 { return 7 })
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if snap[0].Name != "a.gauge" || snap[0].Count != 7 || snap[0].Kind != "gauge" {
		t.Fatalf("gauge sample = %+v", snap[0])
	}
}

func TestEnableDisable(t *testing.T) {
	r := NewRegistry()
	if !r.Enabled() {
		t.Fatal("registry must start enabled")
	}
	h := r.Histogram("h")
	r.Time(h)()
	if h.Stat().Count != 1 {
		t.Fatal("Time did not observe while enabled")
	}
	r.SetEnabled(false)
	r.Time(h)()
	if h.Stat().Count != 1 {
		t.Fatal("Time observed while disabled")
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3, time.Millisecond)
	if l.ShouldRecord(time.Microsecond, false) {
		t.Fatal("fast statement should not be recorded")
	}
	if !l.ShouldRecord(time.Microsecond, true) {
		t.Fatal("failed statement must always be recorded")
	}
	if !l.ShouldRecord(2*time.Millisecond, false) {
		t.Fatal("slow statement must be recorded")
	}
	for i := 0; i < 5; i++ {
		l.Record(fmt.Sprintf("stmt-%d", i), time.Duration(i)*time.Millisecond, int64(i), int64(i*2), "")
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3 (capacity)", l.Len())
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Oldest-first, and the two oldest entries were evicted.
	for i, e := range snap {
		want := fmt.Sprintf("stmt-%d", i+2)
		if e.SQL != want {
			t.Fatalf("snapshot[%d].SQL = %q, want %q", i, e.SQL, want)
		}
		if e.Seq != int64(i+3) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, i+3)
		}
	}
	// A nil slow log is inert.
	var nl *SlowLog
	nl.Record("x", 0, 0, 0, "")
	if nl.ShouldRecord(time.Hour, true) || nl.Len() != 0 || nl.Snapshot() != nil {
		t.Fatal("nil slow log must be inert")
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record("q", time.Duration(i), 1, 1, "")
			}
		}(g)
	}
	wg.Wait()
	if l.Total() != 1600 {
		t.Fatalf("total = %d, want 1600", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot len = %d, want 16", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot seqs not contiguous: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal.bytes").Add(123)
	r.Histogram("engine.exec").Observe(2 * time.Millisecond)
	l := NewSlowLog(4, 0)
	l.Record("SELECT 1", 3*time.Millisecond, 10, 1, "")
	rec := httptest.NewRecorder()
	Handler(r, l).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{"wal.bytes 123", "engine.exec count=1", "slowlog seq=1", `sql="SELECT 1"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("handler output missing %q:\n%s", want, body)
		}
	}
}
