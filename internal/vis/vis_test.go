package vis

import (
	"testing"
	"time"

	"ediflow/internal/database"
	"ediflow/internal/notify"
)

func setup(t *testing.T) *database.DB {
	t.Helper()
	db := database.MustOpenMemory()
	n, err := notify.NewNotifier(db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Close()
		db.Close()
	})
	return db
}

func TestVisualizationAndComponents(t *testing.T) {
	db := setup(t)
	v, err := NewVisualization(db, "copubs")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := v.AddComponent("graph", "node-link")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := v.AddComponent("by-year", "scatter")
	if err != nil {
		t.Fatal(err)
	}
	comps, err := v.Components()
	if err != nil || len(comps) != 2 {
		t.Fatalf("%v %v", comps, err)
	}
	if comps[0].ID != c1.ID || comps[1].Kind != c2.Kind {
		t.Fatalf("%+v", comps)
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	db := setup(t)
	v, _ := NewVisualization(db, "test")
	c, _ := v.AddComponent("main", "node-link")
	attrs := map[int64]Attr{
		1: {X: 1.5, Y: 2.5, Color: "#ff0000", Label: "a"},
		2: {X: 3.0, Y: 4.0, Width: 10, Height: 5, Label: "b", Selected: true},
	}
	if err := c.InsertAttributes(attrs); err != nil {
		t.Fatal(err)
	}
	got, err := c.Attributes()
	if err != nil || len(got) != 2 {
		t.Fatalf("%v %v", got, err)
	}
	if got[1].Color != "#ff0000" || got[2].Width != 10 || !got[2].Selected {
		t.Fatalf("%+v", got)
	}
	// Upsert path: update existing + insert new.
	if err := c.SetAttributes(map[int64]Attr{
		1: {X: 9, Y: 9, Label: "moved"},
		3: {X: 0, Y: 0, Label: "new"},
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Attributes()
	if len(got) != 3 || got[1].X != 9 || got[3].Label != "new" {
		t.Fatalf("%+v", got)
	}
	// Position-only streaming.
	if err := c.SetPositions(map[int64][2]float64{2: {7, 8}}); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Attributes()
	if got[2].X != 7 || got[2].Y != 8 || got[2].Label != "b" {
		t.Fatalf("%+v", got[2])
	}
	// Deletion.
	if err := c.DeleteAttributes([]int64{1, 3}); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Attributes()
	if len(got) != 1 {
		t.Fatalf("%+v", got)
	}
}

func TestSelection(t *testing.T) {
	db := setup(t)
	v, _ := NewVisualization(db, "test")
	c, _ := v.AddComponent("main", "scatter")
	c.InsertAttributes(map[int64]Attr{1: {}, 2: {}})
	if err := c.Select(1, true); err != nil {
		t.Fatal(err)
	}
	sel, err := c.SelectedObjects()
	if err != nil || len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("%v %v", sel, err)
	}
	c.Select(1, false)
	sel, _ = c.SelectedObjects()
	if len(sel) != 0 {
		t.Fatalf("%v", sel)
	}
	if err := c.Select(99, true); err == nil {
		t.Fatal("selecting unknown object must fail")
	}
}

func TestComponentsShareAttributeTable(t *testing.T) {
	db := setup(t)
	v, _ := NewVisualization(db, "shared")
	c1, _ := v.AddComponent("a", "node-link")
	c2, _ := v.AddComponent("b", "scatter")
	c1.InsertAttributes(map[int64]Attr{1: {X: 1}})
	c2.InsertAttributes(map[int64]Attr{1: {X: 2}})
	a1, _ := c1.Attributes()
	a2, _ := c2.Attributes()
	if a1[1].X != 1 || a2[1].X != 2 {
		t.Fatalf("component attribute isolation broken: %v %v", a1, a2)
	}
}

func TestMultiViewFanout(t *testing.T) {
	db := setup(t)
	v, _ := NewVisualization(db, "wild")
	c, _ := v.AddComponent("wall", "node-link")
	// Compute attributes once.
	attrs := map[int64]Attr{}
	for i := int64(1); i <= 100; i++ {
		attrs[i] = Attr{X: float64(i), Y: float64(i % 10)}
	}
	if err := c.InsertAttributes(attrs); err != nil {
		t.Fatal(err)
	}
	// Three views: phone 10%, laptop 30%, wall 100% (Figure 6 scenario).
	phone, err := OpenView(db, "phone", c.ID, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	laptop, err := OpenView(db, "laptop", c.ID, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	defer laptop.Close()
	wall, err := OpenView(db, "wall", c.ID, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer wall.Close()

	if n := len(wall.Visible()); n != 100 {
		t.Fatalf("wall sees %d objects", n)
	}
	np, nl := len(phone.Visible()), len(laptop.Visible())
	if np == 0 || np >= nl || nl >= 100 {
		t.Fatalf("fractions wrong: phone=%d laptop=%d", np, nl)
	}

	// An update propagates to every view through notifications.
	if err := c.SetPositions(map[int64][2]float64{1: {999, 999}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		wall.Refresh()
		if a, ok := wall.Visible()[1]; ok && a.X == 999 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("update did not reach the wall view")
}

// Figure 3 selection semantics: selecting an object in one component
// propagates to the sibling components of the same visualization.
func TestSelectionLinking(t *testing.T) {
	db := setup(t)
	linker := NewSelectionLinker(db)
	v, _ := NewVisualization(db, "linked")
	scatter, _ := v.AddComponent("scatter", "scatter")
	graphC, _ := v.AddComponent("graph", "node-link")
	other, _ := NewVisualization(db, "separate")
	foreign, _ := other.AddComponent("foreign", "scatter")

	for _, c := range []*Component{scatter, graphC, foreign} {
		if err := c.InsertAttributes(map[int64]Attr{1: {}, 2: {}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := linker.Link(v); err != nil {
		t.Fatal(err)
	}

	// Select in the scatter: the graph component follows; the unrelated
	// visualization does not.
	if err := scatter.Select(1, true); err != nil {
		t.Fatal(err)
	}
	waitSel := func(c *Component, want int) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			sel, _ := c.SelectedObjects()
			if len(sel) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		sel, _ := c.SelectedObjects()
		t.Fatalf("selection: %v, want %d objects", sel, want)
	}
	waitSel(graphC, 1)
	waitSel(foreign, 0)

	// Deselect propagates too.
	if err := scatter.Select(1, false); err != nil {
		t.Fatal(err)
	}
	waitSel(graphC, 0)

	// And the reverse direction (graph → scatter).
	if err := graphC.Select(2, true); err != nil {
		t.Fatal(err)
	}
	waitSel(scatter, 1)
}
