// Package vis implements the visualization group of the paper's data
// model (Figure 3) and the shared visual-attributes architecture of
// Figure 6: a Visualization is a set of VisualizationComponents, each
// assigning VisualAttributes (x, y, width, height, color, label,
// selected) to data items. Attributes are computed once, stored in the
// VisualAttributes table, and shared by any number of display views —
// possibly on different machines, each showing some or all of the data
// (the paper's iPhone 10% / laptop 30% / WILD wall 100% scenario).
package vis

import (
	"fmt"
	"strings"

	"ediflow/internal/database"
	"ediflow/internal/types"
)

// Attr is one object's visual attributes within a component.
type Attr struct {
	X, Y          float64
	Width, Height float64
	Color         string
	Label         string
	Selected      bool
}

// Visualization mirrors the Figure 3 entity.
type Visualization struct {
	ID   int64
	Name string
	db   *database.DB
}

// Component is one perspective over a set of entity instances.
type Component struct {
	ID    int64
	VisID int64
	Label string
	Kind  string // "node-link", "treemap", "scatter", ...
	db    *database.DB
}

// NewVisualization registers a visualization.
func NewVisualization(db *database.DB, name string) (*Visualization, error) {
	id, err := db.NextID(database.TableVisualization)
	if err != nil {
		return nil, err
	}
	_, err = db.Exec("INSERT INTO "+database.TableVisualization+" (id, name) VALUES (?, ?)",
		types.NewInt(id), types.NewString(name))
	if err != nil {
		return nil, err
	}
	return &Visualization{ID: id, Name: name, db: db}, nil
}

// AddComponent registers a component of this visualization.
func (v *Visualization) AddComponent(label, kind string) (*Component, error) {
	id, err := v.db.NextID(database.TableVisComponent)
	if err != nil {
		return nil, err
	}
	_, err = v.db.Exec("INSERT INTO "+database.TableVisComponent+" (id, visualization, label, kind) VALUES (?, ?, ?, ?)",
		types.NewInt(id), types.NewInt(v.ID), types.NewString(label), types.NewString(kind))
	if err != nil {
		return nil, err
	}
	return &Component{ID: id, VisID: v.ID, Label: label, Kind: kind, db: v.db}, nil
}

// Components lists the components of a visualization.
func (v *Visualization) Components() ([]*Component, error) {
	res, err := v.db.Query("SELECT id, label, kind FROM "+database.TableVisComponent+" WHERE visualization = ? ORDER BY id",
		types.NewInt(v.ID))
	if err != nil {
		return nil, err
	}
	out := make([]*Component, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, &Component{ID: r[0].Int(), VisID: v.ID, Label: r[1].Str(), Kind: r[2].Str(), db: v.db})
	}
	return out, nil
}

func attrArgs(objID int64, compID int64, a Attr) []types.Value {
	return []types.Value{
		types.NewInt(objID), types.NewInt(compID),
		types.NewFloat(a.X), types.NewFloat(a.Y),
		types.NewFloat(a.Width), types.NewFloat(a.Height),
		types.NewString(a.Color), types.NewString(a.Label),
		types.NewBool(a.Selected),
	}
}

// InsertAttributes bulk-inserts attributes for new objects (the Figure 8
// "inserting tuples in VisualAttributes table" step). It is the fast path
// used when objects are known to be absent.
func (c *Component) InsertAttributes(attrs map[int64]Attr) error {
	if len(attrs) == 0 {
		return nil
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + database.TableVisualAttributes +
		" (obj_id, comp_id, x, y, width, height, color, label, selected) VALUES ")
	var args []types.Value
	first := true
	for objID, a := range attrs {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString("(?, ?, ?, ?, ?, ?, ?, ?, ?)")
		args = append(args, attrArgs(objID, c.ID, a)...)
	}
	_, err := c.db.Exec(sb.String(), args...)
	return err
}

// SetAttributes upserts attributes (update if present, else insert). "The
// visualization component computes and fills the visual attributes only
// once regardless of the number of generated views."
func (c *Component) SetAttributes(attrs map[int64]Attr) error {
	for objID, a := range attrs {
		res, err := c.db.Exec(
			"UPDATE "+database.TableVisualAttributes+
				" SET x = ?, y = ?, width = ?, height = ?, color = ?, label = ?, selected = ? WHERE obj_id = ? AND comp_id = ?",
			types.NewFloat(a.X), types.NewFloat(a.Y),
			types.NewFloat(a.Width), types.NewFloat(a.Height),
			types.NewString(a.Color), types.NewString(a.Label), types.NewBool(a.Selected),
			types.NewInt(objID), types.NewInt(c.ID))
		if err != nil {
			return err
		}
		if res.Affected == 0 {
			if err := c.InsertAttributes(map[int64]Attr{objID: a}); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetPositions updates only x/y for existing objects (the layout
// streaming path: positions stored "at any rate until the algorithm
// stops").
func (c *Component) SetPositions(pos map[int64][2]float64) error {
	for objID, p := range pos {
		res, err := c.db.Exec(
			"UPDATE "+database.TableVisualAttributes+" SET x = ?, y = ? WHERE obj_id = ? AND comp_id = ?",
			types.NewFloat(p[0]), types.NewFloat(p[1]), types.NewInt(objID), types.NewInt(c.ID))
		if err != nil {
			return err
		}
		if res.Affected == 0 {
			if err := c.InsertAttributes(map[int64]Attr{objID: {X: p[0], Y: p[1]}}); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeleteAttributes removes the attributes of objects that left the data.
func (c *Component) DeleteAttributes(objIDs []int64) error {
	for _, id := range objIDs {
		if _, err := c.db.Exec(
			"DELETE FROM "+database.TableVisualAttributes+" WHERE obj_id = ? AND comp_id = ?",
			types.NewInt(id), types.NewInt(c.ID)); err != nil {
			return err
		}
	}
	return nil
}

// Attributes reads back all attributes of the component.
func (c *Component) Attributes() (map[int64]Attr, error) {
	res, err := c.db.Query(
		"SELECT obj_id, x, y, width, height, color, label, selected FROM "+
			database.TableVisualAttributes+" WHERE comp_id = ?", types.NewInt(c.ID))
	if err != nil {
		return nil, err
	}
	out := make(map[int64]Attr, len(res.Rows))
	for _, r := range res.Rows {
		a := Attr{}
		if !r[1].IsNull() {
			a.X = r[1].Float()
		}
		if !r[2].IsNull() {
			a.Y = r[2].Float()
		}
		if !r[3].IsNull() {
			a.Width = r[3].Float()
		}
		if !r[4].IsNull() {
			a.Height = r[4].Float()
		}
		a.Color = r[5].AsString()
		a.Label = r[6].AsString()
		if !r[7].IsNull() {
			a.Selected = r[7].Bool()
		}
		out[r[0].Int()] = a
	}
	return out, nil
}

// Select marks an object as selected in this component; sibling
// components reflect the selection by recomputing from the shared table
// ("whether the data instance is currently selected by a given
// visualisation component ... typically triggers the recomputation of the
// other components").
func (c *Component) Select(objID int64, selected bool) error {
	res, err := c.db.Exec(
		"UPDATE "+database.TableVisualAttributes+" SET selected = ? WHERE obj_id = ? AND comp_id = ?",
		types.NewBool(selected), types.NewInt(objID), types.NewInt(c.ID))
	if err != nil {
		return err
	}
	if res.Affected == 0 {
		return fmt.Errorf("vis: no attributes for object %d in component %d", objID, c.ID)
	}
	return nil
}

// SelectedObjects lists the objects currently selected in the component.
func (c *Component) SelectedObjects() ([]int64, error) {
	res, err := c.db.Query(
		"SELECT obj_id FROM "+database.TableVisualAttributes+
			" WHERE comp_id = ? AND selected = TRUE ORDER BY obj_id", types.NewInt(c.ID))
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].Int())
	}
	return out, nil
}
