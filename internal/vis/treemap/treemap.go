// Package treemap implements the squarified treemap layout used by the
// US-elections application (Figure 1): each item gets a rectangle whose
// area is proportional to its value, with aspect ratios kept close to 1.
package treemap

import (
	"fmt"
	"sort"
)

// Item is one rectangle to lay out.
type Item struct {
	ID    int64
	Value float64
	Label string
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.W * r.H }

// Squarify lays the items out inside bounds using Bruls/Huizing/van Wijk
// squarified treemaps. Items with non-positive values are skipped. The
// result maps item id → rectangle.
func Squarify(items []Item, bounds Rect) (map[int64]Rect, error) {
	if bounds.W <= 0 || bounds.H <= 0 {
		return nil, fmt.Errorf("treemap: empty bounds")
	}
	var live []Item
	total := 0.0
	for _, it := range items {
		if it.Value > 0 {
			live = append(live, it)
			total += it.Value
		}
	}
	out := map[int64]Rect{}
	if len(live) == 0 {
		return out, nil
	}
	// Sort by decreasing value (squarify requirement).
	sort.Slice(live, func(i, j int) bool { return live[i].Value > live[j].Value })
	// Normalize values to areas.
	scale := bounds.Area() / total
	areas := make([]float64, len(live))
	for i, it := range live {
		areas[i] = it.Value * scale
	}

	free := bounds
	row := []int{}
	rowArea := 0.0
	i := 0
	flushRow := func() {
		if len(row) == 0 {
			return
		}
		horizontal := free.W >= free.H // lay the row along the shorter side
		if horizontal {
			// Row is a vertical strip on the left of free.
			stripW := rowArea / free.H
			y := free.Y
			for _, idx := range row {
				h := areas[idx] / stripW
				out[live[idx].ID] = Rect{X: free.X, Y: y, W: stripW, H: h}
				y += h
			}
			free.X += stripW
			free.W -= stripW
		} else {
			stripH := rowArea / free.W
			x := free.X
			for _, idx := range row {
				w := areas[idx] / stripH
				out[live[idx].ID] = Rect{X: x, Y: free.Y, W: w, H: stripH}
				x += w
			}
			free.Y += stripH
			free.H -= stripH
		}
		row = row[:0]
		rowArea = 0
	}

	for i < len(live) {
		side := free.H
		if free.W < free.H {
			side = free.W
		}
		if side <= 0 {
			// Degenerate leftover: give remaining items zero-area slots at
			// the free origin rather than dropping them.
			for ; i < len(live); i++ {
				out[live[i].ID] = Rect{X: free.X, Y: free.Y}
			}
			break
		}
		if len(row) == 0 {
			row = append(row, i)
			rowArea = areas[i]
			i++
			continue
		}
		if worst(row, areas, rowArea, side) >= worst(append(row, i), areas, rowArea+areas[i], side) {
			row = append(row, i)
			rowArea += areas[i]
			i++
		} else {
			flushRow()
		}
	}
	flushRow()
	return out, nil
}

// worst returns the worst (largest) aspect ratio of the row laid along a
// side of the given length.
func worst(row []int, areas []float64, rowArea, side float64) float64 {
	if len(row) == 0 || rowArea <= 0 {
		return 0
	}
	strip := rowArea / side
	w := 0.0
	for _, idx := range row {
		other := areas[idx] / strip
		ratio := strip / other
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > w {
			w = ratio
		}
	}
	return w
}
