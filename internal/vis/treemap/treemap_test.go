package treemap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquarifyBasics(t *testing.T) {
	items := []Item{
		{ID: 1, Value: 6}, {ID: 2, Value: 6}, {ID: 3, Value: 4},
		{ID: 4, Value: 3}, {ID: 5, Value: 2}, {ID: 6, Value: 2}, {ID: 7, Value: 1},
	}
	bounds := Rect{X: 0, Y: 0, W: 600, H: 400}
	rects, err := Squarify(items, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 7 {
		t.Fatalf("%d rects", len(rects))
	}
	// Areas proportional to values.
	total := 24.0
	for _, it := range items {
		r := rects[it.ID]
		want := it.Value / total * bounds.Area()
		if math.Abs(r.Area()-want) > 1e-6 {
			t.Errorf("item %d: area %f want %f", it.ID, r.Area(), want)
		}
	}
	// All inside bounds.
	for id, r := range rects {
		if r.X < -1e-9 || r.Y < -1e-9 || r.X+r.W > bounds.W+1e-6 || r.Y+r.H > bounds.H+1e-6 {
			t.Errorf("item %d out of bounds: %+v", id, r)
		}
	}
}

func TestSquarifySkipsNonPositive(t *testing.T) {
	rects, err := Squarify([]Item{{ID: 1, Value: 0}, {ID: 2, Value: -3}, {ID: 3, Value: 5}}, Rect{W: 100, H: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 1 {
		t.Fatalf("%v", rects)
	}
	if math.Abs(rects[3].Area()-10000) > 1e-6 {
		t.Fatalf("single item must fill bounds: %+v", rects[3])
	}
}

func TestSquarifyEmptyAndBadBounds(t *testing.T) {
	if _, err := Squarify(nil, Rect{}); err == nil {
		t.Fatal("empty bounds must error")
	}
	rects, err := Squarify(nil, Rect{W: 10, H: 10})
	if err != nil || len(rects) != 0 {
		t.Fatalf("%v %v", rects, err)
	}
}

// Property: total area is preserved and rectangles never overlap.
func TestSquarifyAreaAndOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%20) + 1
		rng := rand.New(rand.NewSource(seed))
		items := make([]Item, count)
		for i := range items {
			items[i] = Item{ID: int64(i + 1), Value: rng.Float64()*100 + 1}
		}
		bounds := Rect{W: 400, H: 300}
		rects, err := Squarify(items, bounds)
		if err != nil || len(rects) != count {
			return false
		}
		var sum float64
		for _, r := range rects {
			sum += r.Area()
		}
		if math.Abs(sum-bounds.Area()) > 1e-3 {
			return false
		}
		// Pairwise overlap check.
		ids := make([]int64, 0, count)
		for id := range rects {
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := rects[ids[i]], rects[ids[j]]
				ox := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
				oy := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
				if ox > 1e-6 && oy > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSquarifyAspectRatiosReasonable(t *testing.T) {
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{ID: int64(i + 1), Value: float64(20 - i)}
	}
	rects, _ := Squarify(items, Rect{W: 500, H: 500})
	for id, r := range rects {
		ratio := r.W / r.H
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > 8 {
			t.Errorf("item %d aspect ratio %f too skewed (%+v)", id, ratio, r)
		}
	}
}
