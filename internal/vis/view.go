package vis

import (
	"sync/atomic"

	"ediflow/internal/database"
	"ediflow/internal/tablesync"
)

// View is one display over the shared VisualAttributes table — the
// right-hand side of Figure 6. Each view holds its own in-memory mirror
// (R_M) of the table, refreshed through the notification protocol, and
// may show only a fraction of the data (iPhone 10%, laptop 30%, wall
// 100%). Many views can run for one component; the attributes are
// computed once.
type View struct {
	Name     string
	CompID   int64
	Fraction float64 // 0 < f <= 1: deterministic sample of objects shown

	mirror   *tablesync.Mirror
	repaints atomic.Int64

	colObj, colX, colY, colW, colH, colColor, colLabel, colSel int
}

// OpenView connects a display view: it creates the mirror of the
// VisualAttributes table and counts repaints as change batches arrive.
func OpenView(db *database.DB, name string, compID int64, fraction float64) (*View, error) {
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	m, err := tablesync.NewMirror(db, name, database.TableVisualAttributes)
	if err != nil {
		return nil, err
	}
	v := &View{Name: name, CompID: compID, Fraction: fraction, mirror: m}
	v.colObj = m.ColIndex("obj_id")
	v.colX = m.ColIndex("x")
	v.colY = m.ColIndex("y")
	v.colW = m.ColIndex("width")
	v.colH = m.ColIndex("height")
	v.colColor = m.ColIndex("color")
	v.colLabel = m.ColIndex("label")
	v.colSel = m.ColIndex("selected")
	m.OnChange(func() { v.repaints.Add(1) })
	return v, nil
}

// Refresh pulls pending changes into the view's mirror (the display
// decides when to refresh, §VI-C step 8). Returns the number of
// notifications applied.
func (v *View) Refresh() (int, error) { return v.mirror.Refresh() }

// Mirror exposes the underlying table mirror.
func (v *View) Mirror() *tablesync.Mirror { return v.mirror }

// Repaints counts applied change batches (one repaint per batch).
func (v *View) Repaints() int64 { return v.repaints.Load() }

// visible reports whether this view displays the given object under its
// fraction (deterministic by object id, so the same subset is stable
// across refreshes).
func (v *View) visible(objID int64) bool {
	if v.Fraction >= 1 {
		return true
	}
	// Knuth multiplicative hash onto [0,1).
	h := uint64(objID) * 2654435761
	return float64(h%1000)/1000.0 < v.Fraction
}

// Visible returns the attributes of the objects this view displays.
func (v *View) Visible() map[int64]Attr {
	out := map[int64]Attr{}
	for _, row := range v.mirror.Snapshot() {
		comp := row.Values[v.colObj+1] // comp_id follows obj_id in schema
		if comp.IsNull() || comp.Int() != v.CompID {
			continue
		}
		objID := row.Values[v.colObj].Int()
		if !v.visible(objID) {
			continue
		}
		a := Attr{}
		if x := row.Values[v.colX]; !x.IsNull() {
			a.X = x.Float()
		}
		if y := row.Values[v.colY]; !y.IsNull() {
			a.Y = y.Float()
		}
		if w := row.Values[v.colW]; !w.IsNull() {
			a.Width = w.Float()
		}
		if h := row.Values[v.colH]; !h.IsNull() {
			a.Height = h.Float()
		}
		a.Color = row.Values[v.colColor].AsString()
		a.Label = row.Values[v.colLabel].AsString()
		if s := row.Values[v.colSel]; !s.IsNull() {
			a.Selected = s.Bool()
		}
		out[objID] = a
	}
	return out
}

// Close disconnects the view's mirror.
func (v *View) Close() error { return v.mirror.Close() }
