package vis

import (
	"strings"
	"sync"

	"ediflow/internal/database"
	"ediflow/internal/engine"
	"ediflow/internal/types"
)

// SelectionLinker implements the Figure 3 selection semantics: "whether
// the data instance is currently selected by a given visualisation
// component … typically triggers the recomputation of the other
// components to reflect the selection". It observes VisualAttributes
// changes and mirrors an object's selected flag across every sibling
// component of the same visualization.
type SelectionLinker struct {
	db *database.DB

	mu       sync.Mutex
	siblings map[int64][]int64 // component id → other components of its visualization
	applying bool              // re-entrancy guard: our own writes re-trigger the observer
}

// NewSelectionLinker wires the linker to the database. Call Link for each
// visualization whose components should share selection.
func NewSelectionLinker(db *database.DB) *SelectionLinker {
	l := &SelectionLinker{db: db, siblings: map[int64][]int64{}}
	db.Observe(l.onChange)
	return l
}

// Link registers a visualization: all its current components become
// selection siblings.
func (l *SelectionLinker) Link(v *Visualization) error {
	comps, err := v.Components()
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range comps {
		var others []int64
		for _, o := range comps {
			if o.ID != c.ID {
				others = append(others, o.ID)
			}
		}
		l.siblings[c.ID] = others
	}
	return nil
}

// onChange watches UPDATEs to the VisualAttributes table and mirrors
// selection changes to sibling components.
func (l *SelectionLinker) onChange(ev engine.ChangeEvent) {
	if !strings.EqualFold(ev.Table, database.TableVisualAttributes) || ev.Op != engine.OpUpdate {
		return
	}
	l.mu.Lock()
	if l.applying || len(l.siblings) == 0 {
		l.mu.Unlock()
		return
	}
	// Collect selection transitions: rows whose selected flag changed.
	// Schema: obj_id, comp_id, x, y, width, height, color, label, selected.
	type change struct {
		obj, comp int64
		selected  bool
	}
	var changes []change
	for i := range ev.Rows {
		if i >= len(ev.OldRows) {
			break
		}
		newSel := ev.Rows[i][8]
		oldSel := ev.OldRows[i][8]
		if newSel.IsNull() || types.Equal(newSel, oldSel) {
			continue
		}
		comp := ev.Rows[i][1].Int()
		if _, linked := l.siblings[comp]; !linked {
			continue
		}
		changes = append(changes, change{
			obj: ev.Rows[i][0].Int(), comp: comp, selected: newSel.Bool(),
		})
	}
	if len(changes) == 0 {
		l.mu.Unlock()
		return
	}
	l.applying = true
	siblings := l.siblings
	l.mu.Unlock()

	for _, ch := range changes {
		for _, sib := range siblings[ch.comp] {
			l.db.Exec("UPDATE "+database.TableVisualAttributes+
				" SET selected = ? WHERE obj_id = ? AND comp_id = ?",
				types.NewBool(ch.selected), types.NewInt(ch.obj), types.NewInt(sib))
		}
	}

	l.mu.Lock()
	l.applying = false
	l.mu.Unlock()
}
