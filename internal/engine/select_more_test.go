package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ediflow/internal/types"
)

func TestFromSubqueryWithJoin(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE orders (oid INT PRIMARY KEY, uid INT, total FLOAT)")
	mustExec(t, e, "INSERT INTO orders VALUES (1, 1, 10.0), (2, 2, 20.0), (3, 1, 5.0)")
	res := mustExec(t, e, `
		SELECT u.name, s.total
		FROM users u JOIN (SELECT uid, SUM(total) AS total FROM orders GROUP BY uid) AS s
		ON u.id = s.uid ORDER BY s.total DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("%v", res.Rows)
	}
	if res.Rows[0][0].Str() != "bob" || res.Rows[1][1].Float() != 15.0 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (x INT)")
	mustExec(t, e, "CREATE TABLE b (x INT, y INT)")
	mustExec(t, e, "CREATE TABLE c (y INT, z STRING)")
	mustExec(t, e, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, e, "INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)")
	mustExec(t, e, "INSERT INTO c VALUES (10, 'ten'), (20, 'twenty')")
	res := mustExec(t, e, "SELECT c.z FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y ORDER BY c.z")
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "ten" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestOrderByStringsAndMixedDirections(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (grp STRING, v INT)")
	mustExec(t, e, "INSERT INTO t VALUES ('b', 1), ('a', 2), ('b', 3), ('a', 1)")
	res := mustExec(t, e, "SELECT grp, v FROM t ORDER BY grp, v DESC")
	want := [][2]string{{"a", "2"}, {"a", "1"}, {"b", "3"}, {"b", "1"}}
	for i, w := range want {
		if res.Rows[i][0].Str() != w[0] || res.Rows[i][1].String() != w[1] {
			t.Fatalf("row %d: %v", i, res.Rows[i])
		}
	}
}

func TestLimitOffsetEdges(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	for i := 0; i < 5; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	if res := mustExec(t, e, "SELECT a FROM t ORDER BY a LIMIT 0"); len(res.Rows) != 0 {
		t.Fatal("LIMIT 0")
	}
	if res := mustExec(t, e, "SELECT a FROM t ORDER BY a LIMIT 99"); len(res.Rows) != 5 {
		t.Fatal("LIMIT beyond size")
	}
	if res := mustExec(t, e, "SELECT a FROM t ORDER BY a OFFSET 99"); len(res.Rows) != 0 {
		t.Fatal("OFFSET beyond size")
	}
	res := mustExec(t, e, "SELECT a FROM t ORDER BY a LIMIT ? OFFSET ?", types.NewInt(2), types.NewInt(1))
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1), (2)")
	res := mustExec(t, e, "SELECT COUNT(*) FROM t HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM t HAVING COUNT(*) > 5")
	if len(res.Rows) != 0 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	for i := 0; i < 10; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	res := mustExec(t, e, "SELECT a % 3, COUNT(*) FROM t GROUP BY a % 3 ORDER BY 1")
	if len(res.Rows) != 3 || res.Rows[0][1].Int() != 4 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestStringConcatOperator(t *testing.T) {
	e := newTestDB(t)
	res := mustExec(t, e, "SELECT 'a' || 'b' || 3")
	if res.Rows[0][0].Str() != "ab3" {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT 'a' || NULL")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("%v", res.Rows)
	}
}

func TestCaseWithOperand(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1), (2), (3)")
	res := mustExec(t, e, "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END FROM t ORDER BY a")
	if res.Rows[0][0].Str() != "one" || res.Rows[1][0].Str() != "two" || res.Rows[2][0].Str() != "many" {
		t.Fatalf("%v", res.Rows)
	}
}

// Property: engine ORDER BY agrees with a reference sort on random data,
// including NULL placement (NULL sorts first ascending).
func TestOrderByAgainstReference(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (a INT, b INT)")
	rng := rand.New(rand.NewSource(77))
	type row struct {
		a    int64
		null bool
		b    int64
	}
	var rows []row
	for i := 0; i < 80; i++ {
		r := row{a: int64(rng.Intn(10)), null: rng.Intn(5) == 0, b: int64(i)}
		rows = append(rows, r)
		if r.null {
			mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (NULL, %d)", r.b))
		} else {
			mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", r.a, r.b))
		}
	}
	res := mustExec(t, e, "SELECT a, b FROM t ORDER BY a, b DESC")
	// Reference sort: NULL first, then a asc; ties by b desc.
	sorted := append([]row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		ri, rj := sorted[i], sorted[j]
		if ri.null != rj.null {
			return ri.null
		}
		if !ri.null && ri.a != rj.a {
			return ri.a < rj.a
		}
		return ri.b > rj.b
	})
	for i, want := range sorted {
		got := res.Rows[i]
		if want.null != got[0].IsNull() {
			t.Fatalf("row %d: null mismatch: %v vs %+v", i, got, want)
		}
		if !want.null && got[0].Int() != want.a {
			t.Fatalf("row %d: a=%v want %d", i, got[0], want.a)
		}
		if got[1].Int() != want.b {
			t.Fatalf("row %d: b=%v want %d", i, got[1], want.b)
		}
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (s STRING)")
	mustExec(t, e, "INSERT INTO t VALUES ('pear'), ('apple'), ('zucchini'), (NULL)")
	res := mustExec(t, e, "SELECT MIN(s), MAX(s) FROM t")
	if res.Rows[0][0].Str() != "apple" || res.Rows[0][1].Str() != "zucchini" {
		t.Fatalf("%v", res.Rows)
	}
}
