package engine

import (
	"fmt"
	"strings"

	"ediflow/internal/engine/vm"
	"ediflow/internal/sqltext"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// colMeta identifies one column of an intermediate relation.
type colMeta struct {
	qual   string     // lower-cased table alias, "" for computed columns
	name   string     // lower-cased column name
	hidden bool       // system columns (_tid, _created) excluded from `*`
	kind   types.Kind // declared kind; KindNull when unknown/computed. Advisory
	// only: the VM batch layer verifies each value and falls back to
	// boxed lanes on mismatch (view backing tables infer kinds).
}

// relation is an intermediate result. Base-table sources may start lazy
// (cols known, rows not yet fetched) so joins can probe the table's
// storage indexes instead of materializing it; materializeRel fills rows
// on demand.
type relation struct {
	cols []colMeta
	rows []types.Row

	tbl  *storage.Table // backing table for a base-table source, else nil
	lazy bool           // true until rows are filled from tbl

	// projNames is non-nil when the compiled scan already evaluated the
	// statement's projection (see scanProjection): rows are the final
	// output tuples and cols describe them, not the source table.
	projNames []string
}

// binder resolves column references and parameters during evaluation of
// one statement.
type binder struct {
	e    *Engine
	args []types.Value
	rel  *relation
	ctx  *stmtCtx // statement context (snapshot seq, scan tally)

	byQual    map[string]int // "qual.name" → position
	byName    map[string]int // "name" → position (unambiguous only)
	ambiguous map[string]bool

	subCache  map[*sqltext.Select][]types.Row
	overrides map[string][]types.Row // IVM table substitution

	// inCache memoizes the value set of constant IN lists so membership
	// is O(1) per row instead of O(list).
	inCache map[*sqltext.InExpr]*inSet
}

func newBinder(e *Engine, args []types.Value, rel *relation, overrides map[string][]types.Row, ctx *stmtCtx) *binder {
	b := &binder{
		e: e, args: args, rel: rel, ctx: ctx,
		byQual:    map[string]int{},
		byName:    map[string]int{},
		ambiguous: map[string]bool{},
		subCache:  map[*sqltext.Select][]types.Row{},
		overrides: overrides,
	}
	if rel != nil {
		for i, c := range rel.cols {
			if c.qual != "" {
				b.byQual[c.qual+"."+c.name] = i
			}
			if _, dup := b.byName[c.name]; dup {
				b.ambiguous[c.name] = true
			} else {
				b.byName[c.name] = i
			}
		}
	}
	return b
}

// resolve returns the column position of a reference.
func (b *binder) resolve(cr *sqltext.ColumnRef) (int, error) {
	name := strings.ToLower(cr.Column)
	if cr.Table != "" {
		q := strings.ToLower(cr.Table) + "." + name
		if i, ok := b.byQual[q]; ok {
			return i, nil
		}
		return 0, fmt.Errorf("engine: unknown column %s.%s", cr.Table, cr.Column)
	}
	if b.ambiguous[name] {
		return 0, fmt.Errorf("engine: ambiguous column %s", cr.Column)
	}
	if i, ok := b.byName[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("engine: unknown column %s", cr.Column)
}

// eval evaluates a scalar expression against one row.
//
// NULL handling follows SQL's three-valued logic: arithmetic and
// comparisons with a NULL operand yield NULL (unknown), NOT NULL is
// NULL, and AND/OR treat NULL as "unknown" (FALSE AND NULL is FALSE,
// TRUE OR NULL is TRUE, otherwise NULL propagates). Only at a filter
// boundary (WHERE, HAVING, JOIN ON — see evalBool) does unknown
// collapse to false. The previous two-valued reduction made
// `NOT (x = NULL)` evaluate to TRUE, silently keeping rows SQL excludes.
func (b *binder) eval(e sqltext.Expr, row types.Row) (types.Value, error) {
	switch x := e.(type) {
	case *sqltext.Literal:
		return x.Value, nil
	case *sqltext.ColumnRef:
		i, err := b.resolve(x)
		if err != nil {
			return types.Null, err
		}
		if i >= len(row) {
			return types.Null, nil // empty-group evaluation
		}
		return row[i], nil
	case *sqltext.Param:
		if x.Index >= len(b.args) {
			return types.Null, fmt.Errorf("engine: missing argument for parameter %d", x.Index+1)
		}
		return b.args[x.Index], nil
	case *sqltext.Unary:
		v, err := b.eval(x.X, row)
		if err != nil {
			return types.Null, err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return types.Null, nil
			}
			bv, err := v.AsBool()
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(!bv), nil
		}
		return types.Neg(v)
	case *sqltext.Binary:
		return b.evalBinary(x, row)
	case *sqltext.FuncCall:
		if sqltext.IsAggregateName(x.Name) {
			return types.Null, fmt.Errorf("engine: aggregate %s outside GROUP BY context", x.Name)
		}
		return b.evalFunc(x, row)
	case *sqltext.InExpr:
		return b.evalIn(x, row)
	case *sqltext.IsNull:
		v, err := b.eval(x.X, row)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(v.IsNull() != x.Not), nil
	case *sqltext.Like:
		return b.evalLike(x, row)
	case *sqltext.Between:
		v, err := b.eval(x.X, row)
		if err != nil {
			return types.Null, err
		}
		lo, err := b.eval(x.Lo, row)
		if err != nil {
			return types.Null, err
		}
		hi, err := b.eval(x.Hi, row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return types.Null, nil // x BETWEEN lo AND hi is unknown on NULL
		}
		cl, err := types.Compare(v, lo)
		if err != nil {
			return types.Null, err
		}
		ch, err := types.Compare(v, hi)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool((cl >= 0 && ch <= 0) != x.Not), nil
	case *sqltext.CaseExpr:
		return b.evalCase(x, row)
	case *sqltext.Exists:
		rows, err := b.subquery(x.Query)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool((len(rows) > 0) != x.Not), nil
	case *sqltext.Subquery:
		rows, err := b.subquery(x.Query)
		if err != nil {
			return types.Null, err
		}
		if len(rows) == 0 {
			return types.Null, nil
		}
		if len(rows) > 1 || len(rows[0]) != 1 {
			return types.Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(rows))
		}
		return rows[0][0], nil
	}
	return types.Null, fmt.Errorf("engine: cannot evaluate %T", e)
}

// Three-valued truth of a predicate value.
const (
	tvFalse = iota
	tvTrue
	tvUnknown
)

func truth3(v types.Value) (int, error) {
	if v.IsNull() {
		return tvUnknown, nil
	}
	bv, err := v.AsBool()
	if err != nil {
		return tvFalse, err
	}
	if bv {
		return tvTrue, nil
	}
	return tvFalse, nil
}

func (b *binder) evalBinary(x *sqltext.Binary, row types.Row) (types.Value, error) {
	// Short-circuit AND/OR with three-valued logic: FALSE dominates AND
	// and TRUE dominates OR regardless of a NULL on the other side.
	switch x.Op {
	case "AND":
		lv, err := b.eval(x.L, row)
		if err != nil {
			return types.Null, err
		}
		lt, err := truth3(lv)
		if err != nil {
			return types.Null, err
		}
		if lt == tvFalse {
			return types.NewBool(false), nil
		}
		rv, err := b.eval(x.R, row)
		if err != nil {
			return types.Null, err
		}
		rt, err := truth3(rv)
		if err != nil {
			return types.Null, err
		}
		if rt == tvFalse {
			return types.NewBool(false), nil
		}
		if lt == tvUnknown || rt == tvUnknown {
			return types.Null, nil
		}
		return types.NewBool(true), nil
	case "OR":
		lv, err := b.eval(x.L, row)
		if err != nil {
			return types.Null, err
		}
		lt, err := truth3(lv)
		if err != nil {
			return types.Null, err
		}
		if lt == tvTrue {
			return types.NewBool(true), nil
		}
		rv, err := b.eval(x.R, row)
		if err != nil {
			return types.Null, err
		}
		rt, err := truth3(rv)
		if err != nil {
			return types.Null, err
		}
		if rt == tvTrue {
			return types.NewBool(true), nil
		}
		if lt == tvUnknown || rt == tvUnknown {
			return types.Null, nil
		}
		return types.NewBool(false), nil
	}
	l, err := b.eval(x.L, row)
	if err != nil {
		return types.Null, err
	}
	r, err := b.eval(x.R, row)
	if err != nil {
		return types.Null, err
	}
	switch x.Op {
	case "+":
		return types.Add(l, r)
	case "-":
		return types.Sub(l, r)
	case "*":
		return types.Mul(l, r)
	case "/":
		return types.Div(l, r)
	case "%":
		return types.Mod(l, r)
	case "||":
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		return types.NewString(l.AsString() + r.AsString()), nil
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return types.Null, nil // comparison with NULL is unknown
		}
		c, err := types.Compare(l, r)
		if err != nil {
			return types.Null, err
		}
		switch x.Op {
		case "=":
			return types.NewBool(c == 0), nil
		case "!=":
			return types.NewBool(c != 0), nil
		case "<":
			return types.NewBool(c < 0), nil
		case "<=":
			return types.NewBool(c <= 0), nil
		case ">":
			return types.NewBool(c > 0), nil
		case ">=":
			return types.NewBool(c >= 0), nil
		}
	}
	return types.Null, fmt.Errorf("engine: unknown operator %q", x.Op)
}

// evalBool evaluates a predicate at a filter boundary (WHERE, HAVING,
// JOIN ON, CASE WHEN): three-valued "unknown" collapses to false, so a
// row whose predicate is NULL is excluded — never kept.
func (b *binder) evalBool(e sqltext.Expr, row types.Row) (bool, error) {
	v, err := b.eval(e, row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return v.AsBool()
}

func (b *binder) evalIn(x *sqltext.InExpr, row types.Row) (types.Value, error) {
	v, err := b.eval(x.X, row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil // NULL IN (...) is unknown
	}
	found := false
	hadNull := false
	if x.Query != nil {
		rows, err := b.subquery(x.Query)
		if err != nil {
			return types.Null, err
		}
		key := v.HashKey()
		for _, r := range rows {
			if len(r) != 1 {
				return types.Null, fmt.Errorf("engine: IN subquery must return one column")
			}
			if r[0].IsNull() {
				hadNull = true
				continue
			}
			if r[0].HashKey() == key {
				found = true
				break
			}
		}
	} else if set, ok := b.constInSet(x); ok {
		found = set.vals[v.HashKey()]
		hadNull = set.hasNull
	} else {
		for _, le := range x.List {
			lv, err := b.eval(le, row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() {
				hadNull = true
				continue
			}
			c, err := types.Compare(v, lv)
			if err != nil {
				continue // incomparable kinds never match
			}
			if c == 0 {
				found = true
				break
			}
		}
	}
	if found {
		return types.NewBool(!x.Not), nil
	}
	if hadNull {
		// `x IN (.., NULL)` without a match is x = NULL OR ... = unknown,
		// and NOT unknown stays unknown.
		return types.Null, nil
	}
	return types.NewBool(x.Not), nil
}

// inSet is a memoized constant IN list: its value set plus whether the
// list contained a NULL (which turns a non-match into unknown).
type inSet struct {
	vals    map[string]bool
	hasNull bool
}

// constInSet returns a memoized hash set of an IN list whose elements are
// all constants (literals or bound parameters), making membership O(1)
// per row — important for the tid-list extraction queries of the
// table-sync protocol, whose lists grow with the batch size.
func (b *binder) constInSet(x *sqltext.InExpr) (*inSet, bool) {
	if b.inCache == nil {
		b.inCache = map[*sqltext.InExpr]*inSet{}
	}
	if set, ok := b.inCache[x]; ok {
		return set, set != nil
	}
	set := &inSet{vals: make(map[string]bool, len(x.List))}
	for _, le := range x.List {
		var v types.Value
		switch e := le.(type) {
		case *sqltext.Literal:
			v = e.Value
		case *sqltext.Param:
			if e.Index >= len(b.args) {
				b.inCache[x] = nil
				return nil, false
			}
			v = b.args[e.Index]
		default:
			b.inCache[x] = nil // not constant: remember the failure
			return nil, false
		}
		if v.IsNull() {
			set.hasNull = true
		} else {
			set.vals[v.HashKey()] = true
		}
	}
	b.inCache[x] = set
	return set, true
}

func (b *binder) evalLike(x *sqltext.Like, row types.Row) (types.Value, error) {
	v, err := b.eval(x.X, row)
	if err != nil {
		return types.Null, err
	}
	p, err := b.eval(x.Pattern, row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() || p.IsNull() {
		return types.Null, nil // LIKE with NULL operand is unknown
	}
	m := likeMatch(v.AsString(), p.AsString())
	return types.NewBool(m != x.Not), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-sensitive. The matcher lives in the vm package so the compiled
// and interpreted paths cannot diverge.
func likeMatch(s, pattern string) bool {
	return vm.LikeMatch(s, pattern)
}

func (b *binder) evalCase(x *sqltext.CaseExpr, row types.Row) (types.Value, error) {
	if x.Operand != nil {
		op, err := b.eval(x.Operand, row)
		if err != nil {
			return types.Null, err
		}
		for _, w := range x.Whens {
			wv, err := b.eval(w.Cond, row)
			if err != nil {
				return types.Null, err
			}
			if !op.IsNull() && !wv.IsNull() {
				if c, err := types.Compare(op, wv); err == nil && c == 0 {
					return b.eval(w.Result, row)
				}
			}
		}
	} else {
		for _, w := range x.Whens {
			ok, err := b.evalBool(w.Cond, row)
			if err != nil {
				return types.Null, err
			}
			if ok {
				return b.eval(w.Result, row)
			}
		}
	}
	if x.Else != nil {
		return b.eval(x.Else, row)
	}
	return types.Null, nil
}

// subquery evaluates an uncorrelated subquery, cached per statement.
func (b *binder) subquery(q *sqltext.Select) ([]types.Row, error) {
	if rows, ok := b.subCache[q]; ok {
		return rows, nil
	}
	res, err := b.e.evalSelectWith(q, b.args, b.overrides, b.ctx)
	if err != nil {
		return nil, err
	}
	b.subCache[q] = res.Rows
	return res.Rows, nil
}

// evalAgg evaluates an expression that may contain aggregate calls over a
// group of rows. Non-aggregate subexpressions are evaluated on the first
// row of the group.
func (b *binder) evalAgg(e sqltext.Expr, group []types.Row) (types.Value, error) {
	switch x := e.(type) {
	case *sqltext.FuncCall:
		if sqltext.IsAggregateName(x.Name) {
			return b.evalAggregateCall(x, group)
		}
		// Scalar function over aggregated arguments.
		args := make([]types.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := b.evalAgg(a, group)
			if err != nil {
				return types.Null, err
			}
			args[i] = v
		}
		return b.e.callScalarFn(strings.ToUpper(x.Name), args)
	case *sqltext.Binary:
		if !sqltext.HasAggregate(x) {
			break
		}
		l, err := b.evalAgg(x.L, group)
		if err != nil {
			return types.Null, err
		}
		r, err := b.evalAgg(x.R, group)
		if err != nil {
			return types.Null, err
		}
		return b.evalBinary(&sqltext.Binary{Op: x.Op, L: &sqltext.Literal{Value: l}, R: &sqltext.Literal{Value: r}}, nil)
	case *sqltext.Unary:
		if !sqltext.HasAggregate(x) {
			break
		}
		v, err := b.evalAgg(x.X, group)
		if err != nil {
			return types.Null, err
		}
		return b.eval(&sqltext.Unary{Op: x.Op, X: &sqltext.Literal{Value: v}}, nil)
	}
	if len(group) == 0 {
		// Implicit group over an empty relation: literals and functions of
		// literals still evaluate; column references yield NULL (guarded in
		// the ColumnRef case).
		return b.eval(e, nil)
	}
	return b.eval(e, group[0])
}

func (b *binder) evalAggregateCall(x *sqltext.FuncCall, group []types.Row) (types.Value, error) {
	name := strings.ToUpper(x.Name)
	if x.Star {
		if name != "COUNT" {
			return types.Null, fmt.Errorf("engine: %s(*) is not valid", name)
		}
		return types.NewInt(int64(len(group))), nil
	}
	if len(x.Args) != 1 {
		return types.Null, fmt.Errorf("engine: %s takes one argument", name)
	}
	var vals []types.Value
	seen := map[string]bool{}
	for _, r := range group {
		v, err := b.eval(x.Args[0], r)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			k := v.HashKey()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	return foldAggregate(name, vals)
}

// foldAggregate reduces the collected (non-NULL, DISTINCT-deduped)
// argument values of one aggregate call. Shared by the interpreter
// (evalAggregateCall) and the VM's batched argument path, so the two
// cannot disagree on aggregate semantics.
func foldAggregate(name string, vals []types.Value) (types.Value, error) {
	switch name {
	case "COUNT":
		return types.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return types.Null, nil
		}
		allInt := true
		var si int64
		var sf float64
		for _, v := range vals {
			if v.Kind() == types.KindInt {
				si += v.Int()
				continue
			}
			f, err := v.AsFloat()
			if err != nil {
				return types.Null, err
			}
			allInt = false
			sf += f
		}
		if name == "SUM" {
			if allInt {
				return types.NewInt(si), nil
			}
			return types.NewFloat(sf + float64(si)), nil
		}
		return types.NewFloat((sf + float64(si)) / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return types.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := types.Compare(v, best)
			if err != nil {
				return types.Null, err
			}
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return types.Null, fmt.Errorf("engine: unknown aggregate %s", name)
}
