package engine

import (
	"fmt"
	"strings"
	"testing"

	"ediflow/internal/types"
)

// seedBench creates a table with n rows. Column v is an int payload,
// grp takes n/100 distinct values ("g0".."g99" style buckets) so an
// equality predicate selects ~100 rows regardless of n.
func seedBench(b *testing.B, e *Engine, n int, withIndex bool) {
	b.Helper()
	if _, err := e.Exec("CREATE TABLE bench (id INT PRIMARY KEY, grp STRING, v INT)"); err != nil {
		b.Fatal(err)
	}
	const chunk = 500
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO bench (id, grp, v) VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'g%d', %d)", i, i%(n/100+1), i*7)
		}
		if _, err := e.Exec(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	if withIndex {
		if _, err := e.Exec("CREATE INDEX idx_bench_grp ON bench (grp)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSelectSecondaryIndex measures an equality SELECT on a
// secondary-indexed column at 10k rows (~100 matching). Pre-planner this
// was a full scan; the acceptance bar is >=10x over that baseline.
func BenchmarkEngineSelectSecondaryIndex(b *testing.B) {
	e := newTestDB(b)
	seedBench(b, e, 10000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query("SELECT id, v FROM bench WHERE grp = 'g7'")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEngineSelectFullScanFiltered is the same query without an
// index: it isolates the streaming-scan win (rows that fail the WHERE
// predicate are never materialized), visible in -benchmem.
func BenchmarkEngineSelectFullScanFiltered(b *testing.B) {
	e := newTestDB(b)
	seedBench(b, e, 10000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query("SELECT id, v FROM bench WHERE grp = 'g7'")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEngineIndexedUpdate measures UPDATE row selection through a
// secondary index at 10k rows.
func BenchmarkEngineIndexedUpdate(b *testing.B) {
	e := newTestDB(b)
	seedBench(b, e, 10000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Exec("UPDATE bench SET v = v + 1 WHERE grp = 'g7'")
		if err != nil {
			b.Fatal(err)
		}
		if res.Affected == 0 {
			b.Fatal("no rows updated")
		}
	}
}

// BenchmarkPlanCache measures the statement hot path: the same SQL text
// executed repeatedly. With the plan cache the per-call parse disappears.
func BenchmarkPlanCache(b *testing.B) {
	e := newTestDB(b)
	seedBench(b, e, 1000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query("SELECT v FROM bench WHERE id = ?", types.NewInt(int64(i%1000)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatal("want one row")
		}
	}
}

// BenchmarkEngineScanScaling compares full-scan vs indexed lookup for
// the same ~100-row equality predicate as the table grows: the indexed
// path should stay flat while the scan grows linearly.
func BenchmarkEngineScanScaling(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, idx := range []bool{false, true} {
			mode := "full-scan"
			if idx {
				mode = "indexed"
			}
			b.Run(fmt.Sprintf("%s-%d", mode, n), func(b *testing.B) {
				e := newTestDB(b)
				seedBench(b, e, n, idx)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := e.Query("SELECT id, v FROM bench WHERE grp = 'g7'")
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) == 0 {
						b.Fatal("no rows")
					}
				}
			})
		}
	}
}

// BenchmarkEngineOrderByLimitTopK measures ORDER BY ... LIMIT 10 over
// 100k rows: a bounded top-k heap versus sorting the full result.
func BenchmarkEngineOrderByLimitTopK(b *testing.B) {
	e := newTestDB(b)
	seedBench(b, e, 100000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query("SELECT id, v FROM bench ORDER BY v DESC LIMIT 10")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("want 10 rows, got %d", len(res.Rows))
		}
	}
}
