package engine

import (
	"strings"
	"time"

	"ediflow/internal/metrics"
	"ediflow/internal/types"
)

// Virtual system tables expose the metrics catalog through ordinary SQL:
// `SELECT * FROM sys_metrics` works identically embedded and over the
// wire, so the observability surface is the query language itself — the
// same move the paper makes for notifications (ef_notification is just a
// table). Virtual tables are computed at query time, never stored, and
// shadow real tables of the same name.

// Metrics returns the engine's metrics registry (shared with the store;
// adopted by server and notifier).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// SlowLog returns the engine's slow-query ring buffer.
func (e *Engine) SlowLog() *metrics.SlowLog { return e.slow }

// RegisterVirtual installs (or replaces) a virtual table. fn may run
// with no engine lock held (lock-free SELECTs), so it must be internally
// synchronized and must not re-enter the engine.
func (e *Engine) RegisterVirtual(name string, cols []string, fn func() []types.Row) {
	lc := make([]string, len(cols))
	for i, c := range cols {
		lc[i] = strings.ToLower(c)
	}
	e.virtMu.Lock()
	e.virtual[strings.ToLower(name)] = &virtualTable{cols: lc, fn: fn}
	e.virtMu.Unlock()
}

// lookupVirtual resolves a virtual table; SELECTs call it without the
// engine lock.
func (e *Engine) lookupVirtual(name string) *virtualTable {
	e.virtMu.RLock()
	defer e.virtMu.RUnlock()
	return e.virtual[strings.ToLower(name)]
}

// SysMetricsColumns is the schema of sys_metrics. Counter and gauge rows
// carry NULL latency columns; histogram rows carry NULL in none.
var SysMetricsColumns = []string{
	"name", "kind", "count", "sum_ms", "avg_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
}

// SysSlowQueriesColumns is the schema of sys_slow_queries.
var SysSlowQueriesColumns = []string{
	"seq", "ts", "sql", "ms", "rows_scanned", "rows_returned", "err",
}

// SysSessionsColumns is the schema of sys_sessions. The embedded engine
// serves an empty relation; the network server replaces the provider
// with its live session list.
var SysSessionsColumns = []string{
	"id", "remote", "client", "started", "last_active",
	"statements", "errors", "in_txn", "frames_in", "bytes_in", "bytes_out",
}

func (e *Engine) registerSystemTables() {
	reg, slow := e.reg, e.slow
	e.virtual["sys_metrics"] = &virtualTable{cols: SysMetricsColumns, fn: func() []types.Row {
		samples := reg.Snapshot()
		rows := make([]types.Row, 0, len(samples))
		for _, s := range samples {
			if s.Kind == "histogram" {
				h := s.Hist
				rows = append(rows, types.Row{
					types.NewString(s.Name), types.NewString(s.Kind), types.NewInt(h.Count),
					msVal(h.Sum), msVal(h.Avg()), msVal(h.P50), msVal(h.P95), msVal(h.P99), msVal(h.Max),
				})
				continue
			}
			rows = append(rows, types.Row{
				types.NewString(s.Name), types.NewString(s.Kind), types.NewInt(s.Count),
				types.Null, types.Null, types.Null, types.Null, types.Null, types.Null,
			})
		}
		return rows
	}}
	e.virtual["sys_slow_queries"] = &virtualTable{cols: SysSlowQueriesColumns, fn: func() []types.Row {
		entries := slow.Snapshot()
		rows := make([]types.Row, 0, len(entries))
		for _, en := range entries {
			var errV types.Value = types.Null
			if en.Err != "" {
				errV = types.NewString(en.Err)
			}
			rows = append(rows, types.Row{
				types.NewInt(en.Seq), types.NewInt(en.TS), types.NewString(en.SQL),
				types.NewFloat(float64(en.Duration) / float64(time.Millisecond)),
				types.NewInt(en.RowsScanned), types.NewInt(en.RowsReturned), errV,
			})
		}
		return rows
	}}
	e.virtual["sys_sessions"] = &virtualTable{cols: SysSessionsColumns, fn: func() []types.Row {
		return nil // embedded engine has no network sessions
	}}
}

func msVal(d time.Duration) types.Value {
	return types.NewFloat(float64(d) / float64(time.Millisecond))
}
