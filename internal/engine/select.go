package engine

import (
	"fmt"
	"sort"
	"strings"

	"ediflow/internal/catalog"
	"ediflow/internal/sqltext"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// stmtCtx carries per-statement execution state: the MVCC snapshot seq
// base-table reads resolve against, the outermost SELECT (AS OF is only
// honored there), and an exact rows-scanned tally. One ctx exists per
// statement and is touched only by the executing goroutine.
type stmtCtx struct {
	snap    int64           // visibility ceiling for base-table reads
	top     *sqltext.Select // outermost SELECT of the statement, if any
	scanned int64           // rows examined by this statement (exact)
}

// writerCtx returns the context of the mutation currently holding the
// write lock, or a fresh read-latest context when the engine is re-entered
// outside a mutation (view restore at startup, rollback refresh).
func (e *Engine) writerCtx() *stmtCtx {
	if e.writeCtx != nil {
		return e.writeCtx
	}
	return &stmtCtx{snap: storage.SeqLatest}
}

// evalSelect runs a SELECT against the snapshot captured in ctx.
func (e *Engine) evalSelect(sel *sqltext.Select, args []types.Value, ctx *stmtCtx) (*Result, error) {
	return e.evalSelectWith(sel, args, nil, ctx)
}

// EvalWith implements ivm.Evaluator: evaluate a SELECT with some tables'
// contents substituted. The caller is the view maintainer running inside
// an engine mutation, which already holds the write lock — reads resolve
// at SeqLatest so the maintainer sees the statement's own writes.
func (e *Engine) EvalWith(sel *sqltext.Select, overrides map[string][]types.Row) ([]types.Row, error) {
	res, err := e.evalSelectWith(sel, nil, overrides, e.writerCtx())
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (e *Engine) evalSelectWith(sel *sqltext.Select, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*Result, error) {
	if sel.AsOf != nil && sel != ctx.top {
		return nil, fmt.Errorf("engine: AS OF is only supported on the top-level SELECT")
	}
	// Build the source relation (FROM + JOINs + WHERE).
	var rel *relation
	var b *binder
	whereApplied := false
	if sel.From == nil {
		rel = &relation{rows: []types.Row{nil}} // one empty row: SELECT 1+1
		b = newBinder(e, args, rel, overrides, ctx)
	} else {
		var err error
		rel, b, whereApplied, err = e.buildFrom(sel, args, overrides, ctx)
		if err != nil {
			return nil, err
		}
	}

	// WHERE (unless the scan already streamed it — see buildTableRef).
	if sel.Where != nil && !whereApplied {
		kept := rel.rows[:0:0]
		for _, r := range rel.rows {
			ok, err := b.evalBool(sel.Where, r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rel.rows = kept
	}

	// Projection: expand stars, determine output columns.
	items, colNames, err := expandItems(sel, rel)
	if err != nil {
		return nil, err
	}

	aggregate := len(sel.GroupBy) > 0 || sel.Having != nil
	if !aggregate {
		for _, it := range items {
			if it.Expr != nil && sqltext.HasAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
	}

	var out []types.Row
	var srcRows []types.Row // representative source row per output row (for ORDER BY)
	if aggregate {
		out, srcRows, err = e.evalAggregateSelect(sel, items, rel, b)
		if err != nil {
			return nil, err
		}
	} else {
		out = make([]types.Row, 0, len(rel.rows))
		srcRows = rel.rows
		for _, r := range rel.rows {
			row := make(types.Row, len(items))
			for i, it := range items {
				v, err := b.eval(it.Expr, r)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out = append(out, row)
		}
	}

	// DISTINCT.
	if sel.Distinct {
		seen := map[string]bool{}
		kept := out[:0:0]
		keptSrc := srcRows[:0:0]
		for i, r := range out {
			k := types.RowKey(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
			if i < len(srcRows) {
				keptSrc = append(keptSrc, srcRows[i])
			}
		}
		out = kept
		srcRows = keptSrc
	}

	// ORDER BY (bounded top-k selection when LIMIT is statically known).
	if len(sel.OrderBy) > 0 {
		out, srcRows, err = e.orderRows(sel, items, colNames, out, srcRows, b)
		if err != nil {
			return nil, err
		}
	}

	// LIMIT / OFFSET.
	if sel.Offset != nil {
		n, err := evalIntArg(b, sel.Offset)
		if err != nil {
			return nil, err
		}
		if n > int64(len(out)) {
			n = int64(len(out))
		}
		if n > 0 {
			out = out[n:]
		}
	}
	if sel.Limit != nil {
		n, err := evalIntArg(b, sel.Limit)
		if err != nil {
			return nil, err
		}
		if n < int64(len(out)) && n >= 0 {
			out = out[:n]
		}
	}

	// Copy rows out so callers never alias engine-internal storage.
	final := make([]types.Row, len(out))
	for i, r := range out {
		final[i] = types.CloneRow(r)
	}
	return &Result{Columns: colNames, Rows: final}, nil
}

func evalIntArg(b *binder, e sqltext.Expr) (int64, error) {
	v, err := b.eval(e, nil)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// projItem is a resolved projection item.
type projItem struct {
	Expr  sqltext.Expr
	Alias string
}

// expandItems resolves stars against the relation and returns projection
// expressions plus output column names.
func expandItems(sel *sqltext.Select, rel *relation) ([]projItem, []string, error) {
	var items []projItem
	var names []string
	for _, it := range sel.Items {
		switch {
		case it.Star:
			qual := strings.ToLower(it.Table)
			matched := false
			for _, c := range rel.cols {
				if c.hidden {
					continue
				}
				if qual != "" && c.qual != qual {
					continue
				}
				matched = true
				ref := &sqltext.ColumnRef{Column: c.name}
				if c.qual != "" {
					ref.Table = c.qual
				}
				items = append(items, projItem{Expr: ref})
				names = append(names, c.name)
			}
			if qual != "" && !matched {
				return nil, nil, fmt.Errorf("engine: unknown table %s in %s.*", it.Table, it.Table)
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqltext.ColumnRef); ok {
					name = cr.Column
				} else {
					name = it.Expr.String()
				}
			}
			items = append(items, projItem{Expr: it.Expr, Alias: it.Alias})
			names = append(names, name)
		}
	}
	return items, names, nil
}

// evalAggregateSelect evaluates GROUP BY / aggregate projection.
func (e *Engine) evalAggregateSelect(sel *sqltext.Select, items []projItem, rel *relation, b *binder) ([]types.Row, []types.Row, error) {
	groups := map[string][]types.Row{}
	var order []string
	if len(sel.GroupBy) == 0 {
		// Single implicit group; aggregates over an empty relation still
		// produce one row (COUNT(*) = 0).
		key := ""
		groups[key] = rel.rows
		order = append(order, key)
	} else {
		for _, r := range rel.rows {
			keyVals := make(types.Row, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				v, err := b.eval(g, r)
				if err != nil {
					return nil, nil, err
				}
				keyVals[i] = v
			}
			k := types.RowKey(keyVals)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], r)
		}
	}
	var out []types.Row
	var src []types.Row
	for _, k := range order {
		group := groups[k]
		if sel.Having != nil {
			hv, err := b.evalAgg(sel.Having, group)
			if err != nil {
				return nil, nil, err
			}
			keep := false
			if !hv.IsNull() {
				keep, err = hv.AsBool()
				if err != nil {
					return nil, nil, err
				}
			}
			if !keep {
				continue
			}
		}
		row := make(types.Row, len(items))
		for i, it := range items {
			v, err := b.evalAgg(it.Expr, group)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out = append(out, row)
		if len(group) > 0 {
			src = append(src, group[0])
		} else {
			src = append(src, nil)
		}
	}
	return out, src, nil
}

// orderRows sorts output (and keeps srcRows aligned). ORDER BY keys may
// reference output aliases/columns or source-relation expressions. When
// LIMIT (+ OFFSET) is statically known, a bounded heap keeps only the
// top limit+offset rows instead of sorting the whole result — O(n log k)
// comparisons instead of O(n log n), and the returned slices shrink to k.
func (e *Engine) orderRows(sel *sqltext.Select, items []projItem, colNames []string, out []types.Row, srcRows []types.Row, b *binder) ([]types.Row, []types.Row, error) {
	type keyFn func(i int) (types.Value, error)
	fns := make([]keyFn, len(sel.OrderBy))
	for oi, o := range sel.OrderBy {
		o := o
		// Alias / output column reference?
		if cr, ok := o.Expr.(*sqltext.ColumnRef); ok && cr.Table == "" {
			pos := -1
			for ci, n := range colNames {
				if strings.EqualFold(n, cr.Column) {
					pos = ci
					break
				}
			}
			if pos >= 0 {
				p := pos
				fns[oi] = func(i int) (types.Value, error) { return out[i][p], nil }
				continue
			}
		}
		// Positional: ORDER BY 2.
		if lit, ok := o.Expr.(*sqltext.Literal); ok && lit.Value.Kind() == types.KindInt {
			p := int(lit.Value.Int()) - 1
			if p < 0 || p >= len(colNames) {
				return nil, nil, fmt.Errorf("engine: ORDER BY position %d out of range", p+1)
			}
			fns[oi] = func(i int) (types.Value, error) { return out[i][p], nil }
			continue
		}
		// Source expression.
		expr := o.Expr
		agg := sqltext.HasAggregate(expr)
		fns[oi] = func(i int) (types.Value, error) {
			if i >= len(srcRows) {
				return types.Null, nil
			}
			if agg {
				return b.evalAgg(expr, []types.Row{srcRows[i]})
			}
			return b.eval(expr, srcRows[i])
		}
	}
	// Precompute keys.
	keys := make([][]types.Value, len(out))
	for i := range out {
		keys[i] = make([]types.Value, len(fns))
		for j, fn := range fns {
			v, err := fn(i)
			if err != nil {
				return nil, nil, err
			}
			keys[i][j] = v
		}
	}

	// less orders row indexes by the ORDER BY keys, breaking ties by
	// original position so the result matches a stable sort.
	var sortErr error
	less := func(a, bb int) bool {
		for j := range fns {
			c, err := types.Compare(keys[a][j], keys[bb][j])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sel.OrderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return a < bb
	}

	// Bound: LIMIT k (+ OFFSET m) means only the first k+m sorted rows
	// survive, so a size-k+m heap suffices.
	k := -1
	if sel.Limit != nil {
		if n, ok := constInt(b, sel.Limit); ok && n >= 0 {
			k = int(n)
			if sel.Offset != nil {
				if m, ok := constInt(b, sel.Offset); ok && m >= 0 {
					k += int(m)
				} else {
					k = -1
				}
			}
		}
	}

	var idx []int
	if k >= 0 && k < len(out) {
		idx = topKIndexes(len(out), k, less)
	} else {
		idx = make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, bb int) bool { return less(idx[a], idx[bb]) })
	}
	if sortErr != nil {
		return nil, nil, sortErr
	}
	sorted := make([]types.Row, len(idx))
	for i, p := range idx {
		sorted[i] = out[p]
	}
	sortedSrc := srcRows
	if len(srcRows) == len(out) {
		sortedSrc = make([]types.Row, len(idx))
		for i, p := range idx {
			sortedSrc[i] = srcRows[p]
		}
	}
	return sorted, sortedSrc, nil
}

// constInt evaluates a LIMIT/OFFSET expression when it is a literal or a
// bound parameter; anything else is not statically known.
func constInt(b *binder, x sqltext.Expr) (int64, bool) {
	v, ok := constVal(x, b.args)
	if !ok || v.IsNull() {
		return 0, false
	}
	n, err := v.AsInt()
	if err != nil {
		return 0, false
	}
	return n, true
}

// topKIndexes selects the k smallest (per less) of n row indexes using a
// bounded max-heap whose root is the worst row kept so far, then sorts
// the survivors. O(n log k) comparisons, O(k) extra space.
func topKIndexes(n, k int, less func(a, b int) bool) []int {
	if k <= 0 {
		return nil
	}
	h := make([]int, 0, k)
	worse := func(a, b int) bool { return less(b, a) }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && worse(h[l], h[big]) {
				big = l
			}
			if r < len(h) && worse(h[r], h[big]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h[i], h[p]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for i := 0; i < n; i++ {
		if len(h) < k {
			h = append(h, i)
			siftUp(len(h) - 1)
		} else if less(i, h[0]) {
			h[0] = i
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// buildFrom builds the FROM clause (with joins) into a relation and
// returns a binder over it. The returned bool reports whether the WHERE
// clause was already applied during the scan (streaming full scan).
func (e *Engine) buildFrom(sel *sqltext.Select, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*relation, *binder, bool, error) {
	left, whereApplied, err := e.buildTableRef(*sel.From, args, overrides, sel, ctx)
	if err != nil {
		return nil, nil, false, err
	}
	for _, j := range sel.Joins {
		right, err := e.buildJoinSource(j.Right, args, overrides, ctx)
		if err != nil {
			return nil, nil, false, err
		}
		left, err = e.join(left, right, j, args, overrides, ctx)
		if err != nil {
			return nil, nil, false, err
		}
	}
	return left, newBinder(e, args, left, overrides, ctx), whereApplied, nil
}

// buildTableRef builds one FROM entry. When sel is non-nil (single base
// table with no joins), the planner chooses an access path from the
// WHERE clause: an index point/IN lookup fetching only candidate rows,
// or a streaming full scan that evaluates WHERE inside the scan loop so
// non-matching rows are never copied. The bool reports whether WHERE was
// fully applied by the scan.
func (e *Engine) buildTableRef(tr sqltext.TableRef, args []types.Value, overrides map[string][]types.Row, sel *sqltext.Select, ctx *stmtCtx) (*relation, bool, error) {
	if tr.Subquery != nil {
		res, err := e.evalSelectWith(tr.Subquery, args, overrides, ctx)
		if err != nil {
			return nil, false, err
		}
		qual := strings.ToLower(tr.Alias)
		rel := &relation{}
		for _, n := range res.Columns {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(n)})
		}
		rel.rows = res.Rows
		return rel, false, nil
	}
	name := tr.Table
	qual := strings.ToLower(tr.Alias)
	if qual == "" {
		qual = strings.ToLower(name)
	}

	// Virtual system tables (sys_metrics, sys_slow_queries, sys_sessions)
	// are computed on the fly and shadow the catalog.
	if vt := e.lookupVirtual(name); vt != nil {
		rel := &relation{}
		for _, c := range vt.cols {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: c})
		}
		rel.rows = vt.fn()
		e.countScanned(ctx, len(rel.rows))
		return rel, false, nil
	}

	// View resolution: the backing table holds the materialized rows.
	if v, ok := e.cat.View(name); ok {
		name = v.Backing
	}

	schema, ok := e.cat.Table(name)
	if !ok {
		return nil, false, fmt.Errorf("engine: no such table %q", tr.Table)
	}
	rel := &relation{}
	for _, c := range schema.Columns {
		rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(c.Name)})
	}
	rel.cols = append(rel.cols,
		colMeta{qual: qual, name: catalog.SysTID, hidden: true},
		colMeta{qual: qual, name: catalog.SysCreated, hidden: true},
	)

	// IVM override: substitute rows (user columns only; system columns 0).
	if rows, ok := overrides[strings.ToLower(tr.Table)]; ok {
		for _, r := range rows {
			if len(r) != len(schema.Columns) {
				return nil, false, fmt.Errorf("engine: override row arity %d for %s (want %d)", len(r), tr.Table, len(schema.Columns))
			}
			full := make(types.Row, 0, len(r)+2)
			full = append(full, r...)
			full = append(full, types.NewInt(0), types.NewInt(0))
			rel.rows = append(rel.rows, full)
		}
		return rel, false, nil
	}

	tbl := e.store.Table(name)
	if tbl == nil {
		return nil, false, fmt.Errorf("engine: storage missing for table %q", name)
	}
	rel.tbl = tbl

	var where sqltext.Expr
	if sel != nil && len(sel.Joins) == 0 {
		where = sel.Where
	}

	// Index access path: fetch only candidate tids, then let the caller
	// re-apply the full WHERE (a conjunct only restricts, so the
	// candidate set over-approximates and re-filtering is sound).
	if where != nil {
		if plan := analyzeScan(where, schema, tbl, qual); plan.kind != pathFullScan {
			if tids, ok := resolveScan(plan, schema, tbl, args, ctx.snap); ok {
				for _, tid := range tids {
					if sr, found := tbl.GetAt(tid, ctx.snap); found {
						full := make(types.Row, 0, len(sr.Values)+2)
						full = append(full, sr.Values...)
						full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
						rel.rows = append(rel.rows, full)
					}
				}
				e.countScanned(ctx, len(tids))
				return rel, false, nil
			}
		}
	}

	nUser := len(schema.Columns)

	// Streaming full scan: evaluate WHERE against a reused scratch row
	// inside the loop, copying out only the matches. Allocation becomes
	// O(result) instead of O(table).
	if where != nil {
		b := newBinder(e, args, rel, overrides, ctx)
		scratch := make(types.Row, nUser+2)
		scanned := 0
		for it := tbl.Iterate(ctx.snap); ; {
			sr, more := it.Next()
			if !more {
				break
			}
			scanned++
			copy(scratch, sr.Values)
			scratch[nUser] = types.NewInt(sr.TID)
			scratch[nUser+1] = types.NewInt(sr.Created)
			ok, err := b.evalBool(where, scratch)
			if err != nil {
				return nil, false, err
			}
			if ok {
				full := make(types.Row, nUser+2)
				copy(full, scratch)
				rel.rows = append(rel.rows, full)
			}
		}
		e.countScanned(ctx, scanned)
		return rel, true, nil
	}

	scanned := 0
	for it := tbl.Iterate(ctx.snap); ; {
		sr, more := it.Next()
		if !more {
			break
		}
		scanned++
		full := make(types.Row, 0, len(sr.Values)+2)
		full = append(full, sr.Values...)
		full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
		rel.rows = append(rel.rows, full)
	}
	e.countScanned(ctx, scanned)
	return rel, false, nil
}

// buildJoinSource builds the right side of a join. Plain base tables
// stay lazy (columns only) so the join can probe their storage indexes
// without materializing; everything else falls back to buildTableRef.
func (e *Engine) buildJoinSource(tr sqltext.TableRef, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*relation, error) {
	if tr.Subquery == nil && e.lookupVirtual(tr.Table) == nil {
		if _, hasOverride := overrides[strings.ToLower(tr.Table)]; !hasOverride {
			name := tr.Table
			if v, ok := e.cat.View(name); ok {
				name = v.Backing
			}
			if _, ok := e.cat.Table(name); ok {
				if rel, err := e.refCols(tr); err == nil && rel.tbl != nil {
					return rel, nil
				}
			}
		}
	}
	rel, _, err := e.buildTableRef(tr, args, overrides, nil, ctx)
	return rel, err
}

// materializeRel fills a lazy base-table relation's rows as of the
// statement's snapshot.
func (e *Engine) materializeRel(rel *relation, ctx *stmtCtx) {
	if !rel.lazy {
		return
	}
	rel.lazy = false
	scanned := 0
	for it := rel.tbl.Iterate(ctx.snap); ; {
		sr, more := it.Next()
		if !more {
			break
		}
		scanned++
		full := make(types.Row, 0, len(sr.Values)+2)
		full = append(full, sr.Values...)
		full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
		rel.rows = append(rel.rows, full)
	}
	e.countScanned(ctx, scanned)
}

// countScanned credits base-relation rows examined by a statement —
// rows the executor actually touched (streamed past, probed or
// materialized), not rows returned. The per-statement tally is exact;
// the global counter aggregates across statements for sys_metrics.
func (e *Engine) countScanned(ctx *stmtCtx, n int) {
	if n <= 0 {
		return
	}
	ctx.scanned += int64(n)
	if e.reg.Enabled() {
		e.mRowsScanned.Add(int64(n))
	}
}

// join combines two relations according to the join clause, using the
// planner's classification: hash join on the equality conjuncts of ON
// (probing the right side's storage index when one covers the key),
// otherwise a nested loop.
func (e *Engine) join(left, right *relation, jc sqltext.JoinClause, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, left.cols...), right.cols...)}

	concat := func(l, r types.Row) types.Row {
		row := make(types.Row, 0, len(l)+len(r))
		row = append(row, l...)
		return append(row, r...)
	}

	plan := e.analyzeJoin(left, right, jc, args, overrides, ctx)

	if plan.kind == "cross" {
		e.materializeRel(right, ctx)
		for _, lr := range left.rows {
			for _, rr := range right.rows {
				out.rows = append(out.rows, concat(lr, rr))
			}
		}
		return out, nil
	}

	b := newBinder(e, args, out, overrides, ctx)
	leftOuter := jc.Kind == "LEFT"

	if plan.kind == "hash" {
		// Residual ON conjuncts (beyond the hash equalities) must hold for
		// a candidate to count as a match.
		match := func(row types.Row) (bool, error) {
			for _, c := range plan.residual {
				ok, err := b.evalBool(c, row)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		}

		// Probe the right side's storage index per left row instead of
		// materializing it and building a second hash table.
		if right.lazy && (plan.index != "" || plan.probePK) {
			probed := 0
			for _, lr := range left.rows {
				key := make(types.Row, len(plan.perm))
				null := false
				for i, p := range plan.perm {
					v := lr[plan.eqL[p]]
					if v.IsNull() {
						null = true
						break
					}
					key[i] = v
				}
				matched := false
				if !null {
					var tids []int64
					if plan.probePK {
						if tid, found := right.tbl.LookupPKAt(key[0], ctx.snap); found {
							tids = []int64{tid}
						}
					} else if found, ok := right.tbl.LookupIndexAt(plan.index, key, ctx.snap); ok {
						tids = found
					}
					for _, tid := range tids {
						sr, found := right.tbl.GetAt(tid, ctx.snap)
						if !found {
							continue
						}
						probed++
						rrow := make(types.Row, 0, len(sr.Values)+2)
						rrow = append(rrow, sr.Values...)
						rrow = append(rrow, types.NewInt(sr.TID), types.NewInt(sr.Created))
						row := concat(lr, rrow)
						ok, err := match(row)
						if err != nil {
							return nil, err
						}
						if ok {
							matched = true
							out.rows = append(out.rows, row)
						}
					}
				}
				if !matched && leftOuter {
					pad := make(types.Row, len(right.cols))
					out.rows = append(out.rows, concat(lr, pad))
				}
			}
			e.countScanned(ctx, probed)
			return out, nil
		}

		e.materializeRel(right, ctx)
		idx := make(map[string][]int, len(right.rows))
		buildKey := func(row types.Row, cols []int) (string, bool) {
			key := make(types.Row, len(cols))
			for j, c := range cols {
				if row[c].IsNull() {
					return "", false
				}
				key[j] = row[c]
			}
			return types.RowKey(key), true
		}
		for i, rr := range right.rows {
			if k, ok := buildKey(rr, plan.eqR); ok {
				idx[k] = append(idx[k], i)
			}
		}
		for _, lr := range left.rows {
			matched := false
			if k, ok := buildKey(lr, plan.eqL); ok {
				for _, m := range idx[k] {
					row := concat(lr, right.rows[m])
					ok2, err := match(row)
					if err != nil {
						return nil, err
					}
					if ok2 {
						matched = true
						out.rows = append(out.rows, row)
					}
				}
			}
			if !matched && leftOuter {
				pad := make(types.Row, len(right.cols))
				out.rows = append(out.rows, concat(lr, pad))
			}
		}
		return out, nil
	}

	// General nested-loop join.
	e.materializeRel(right, ctx)
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			row := concat(lr, rr)
			ok, err := b.evalBool(jc.On, row)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				out.rows = append(out.rows, row)
			}
		}
		if !matched && leftOuter {
			pad := make(types.Row, len(right.cols))
			out.rows = append(out.rows, concat(lr, pad))
		}
	}
	return out, nil
}
