package engine

import (
	"fmt"
	"sort"
	"strings"

	"ediflow/internal/catalog"
	"ediflow/internal/engine/vm"
	"ediflow/internal/sqltext"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// stmtCtx carries per-statement execution state: the MVCC snapshot seq
// base-table reads resolve against, the outermost SELECT (AS OF is only
// honored there), and an exact rows-scanned tally. One ctx exists per
// statement and is touched only by the executing goroutine.
type stmtCtx struct {
	snap       int64           // visibility ceiling for base-table reads
	top        *sqltext.Select // outermost SELECT of the statement, if any
	scanned    int64           // rows examined by this statement (exact)
	parWorkers int64           // widest parallel fan-out any phase used
}

// writerCtx returns the context of the mutation currently holding the
// write lock, or a fresh read-latest context when the engine is re-entered
// outside a mutation (view restore at startup, rollback refresh).
func (e *Engine) writerCtx() *stmtCtx {
	if e.writeCtx != nil {
		return e.writeCtx
	}
	return &stmtCtx{snap: storage.SeqLatest}
}

// evalSelect runs a SELECT against the snapshot captured in ctx.
func (e *Engine) evalSelect(sel *sqltext.Select, args []types.Value, ctx *stmtCtx) (*Result, error) {
	return e.evalSelectWith(sel, args, nil, ctx)
}

// EvalWith implements ivm.Evaluator: evaluate a SELECT with some tables'
// contents substituted. The caller is the view maintainer running inside
// an engine mutation, which already holds the write lock — reads resolve
// at SeqLatest so the maintainer sees the statement's own writes.
func (e *Engine) EvalWith(sel *sqltext.Select, overrides map[string][]types.Row) ([]types.Row, error) {
	// The maintainer consumes the rows immediately and never mutates them
	// in place, so the defensive output clone is skipped — at firehose
	// rates it was a measurable share of the per-statement allocation.
	res, err := e.evalSelectNoClone(sel, nil, overrides, e.writerCtx())
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (e *Engine) evalSelectWith(sel *sqltext.Select, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*Result, error) {
	res, err := e.evalSelectNoClone(sel, args, overrides, ctx)
	if err != nil {
		return nil, err
	}
	// Copy rows out so callers never alias engine-internal storage. The
	// projected path always builds fresh rows, but the scan-side
	// projection pushdown may hand back version values by reference.
	res.Rows = types.CloneRows(res.Rows)
	return res, nil
}

func (e *Engine) evalSelectNoClone(sel *sqltext.Select, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*Result, error) {
	if sel.AsOf != nil && sel != ctx.top {
		return nil, fmt.Errorf("engine: AS OF is only supported on the top-level SELECT")
	}
	// Build the source relation (FROM + JOINs + WHERE).
	var rel *relation
	var b *binder
	whereApplied := false
	if sel.From == nil {
		rel = &relation{rows: []types.Row{nil}} // one empty row: SELECT 1+1
		b = newBinder(e, args, rel, overrides, ctx)
	} else {
		var err error
		rel, b, whereApplied, err = e.buildFrom(sel, args, overrides, ctx)
		if err != nil {
			return nil, err
		}
	}

	// Scan-side projection (see scanProjection): rows already ARE the
	// output tuples, and the pushdown gates guarantee that only
	// DISTINCT and LIMIT/OFFSET remain to apply.
	if rel.projNames != nil {
		out := rel.rows
		if sel.Distinct {
			seen := map[string]bool{}
			kept := out[:0:0]
			for _, r := range out {
				k := types.RowKey(r)
				if seen[k] {
					continue
				}
				seen[k] = true
				kept = append(kept, r)
			}
			out = kept
		}
		if sel.Offset != nil {
			n, err := evalIntArg(b, sel.Offset)
			if err != nil {
				return nil, err
			}
			if n > int64(len(out)) {
				n = int64(len(out))
			}
			if n > 0 {
				out = out[n:]
			}
		}
		if sel.Limit != nil {
			n, err := evalIntArg(b, sel.Limit)
			if err != nil {
				return nil, err
			}
			if n < int64(len(out)) && n >= 0 {
				out = out[:n]
			}
		}
		return &Result{Columns: rel.projNames, Rows: out}, nil
	}

	// WHERE (unless the scan already streamed it — see buildTableRef).
	// The compiled path covers index-scan refiltering, post-join filters,
	// and IVM override evaluation alike: anything already materialized.
	if sel.Where != nil && !whereApplied {
		if prog := e.compiledProg(sel.Where, rel.cols); prog != nil {
			kept, err := e.runFilterRows(prog, rel.cols, rel.rows, args)
			if err != nil {
				return nil, err
			}
			rel.rows = kept
		} else {
			kept := rel.rows[:0:0]
			for _, r := range rel.rows {
				ok, err := b.evalBool(sel.Where, r)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, r)
				}
			}
			rel.rows = kept
		}
	}

	// Projection: expand stars, determine output columns.
	items, colNames, err := expandItems(sel, rel)
	if err != nil {
		return nil, err
	}

	aggregate := len(sel.GroupBy) > 0 || sel.Having != nil
	if !aggregate {
		for _, it := range items {
			if it.Expr != nil && sqltext.HasAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
	}

	var out []types.Row
	var srcRows []types.Row // representative source row per output row (for ORDER BY)
	if aggregate {
		out, srcRows, err = e.evalAggregateSelect(sel, items, rel, b)
		if err != nil {
			return nil, err
		}
	} else {
		out = make([]types.Row, 0, len(rel.rows))
		srcRows = rel.rows
		out, err = e.projectRows(items, rel, b, out)
		if err != nil {
			return nil, err
		}
	}

	// DISTINCT.
	if sel.Distinct {
		seen := map[string]bool{}
		kept := out[:0:0]
		keptSrc := srcRows[:0:0]
		for i, r := range out {
			k := types.RowKey(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
			if i < len(srcRows) {
				keptSrc = append(keptSrc, srcRows[i])
			}
		}
		out = kept
		srcRows = keptSrc
	}

	// ORDER BY (bounded top-k selection when LIMIT is statically known).
	if len(sel.OrderBy) > 0 {
		out, srcRows, err = e.orderRows(sel, items, colNames, out, srcRows, b)
		if err != nil {
			return nil, err
		}
	}

	// LIMIT / OFFSET.
	if sel.Offset != nil {
		n, err := evalIntArg(b, sel.Offset)
		if err != nil {
			return nil, err
		}
		if n > int64(len(out)) {
			n = int64(len(out))
		}
		if n > 0 {
			out = out[n:]
		}
	}
	if sel.Limit != nil {
		n, err := evalIntArg(b, sel.Limit)
		if err != nil {
			return nil, err
		}
		if n < int64(len(out)) && n >= 0 {
			out = out[:n]
		}
	}

	return &Result{Columns: colNames, Rows: out}, nil
}

func evalIntArg(b *binder, e sqltext.Expr) (int64, error) {
	v, err := b.eval(e, nil)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// projItem is a resolved projection item.
type projItem struct {
	Expr  sqltext.Expr
	Alias string
}

// expandItems resolves stars against the relation and returns projection
// expressions plus output column names.
func expandItems(sel *sqltext.Select, rel *relation) ([]projItem, []string, error) {
	var items []projItem
	var names []string
	for _, it := range sel.Items {
		switch {
		case it.Star:
			qual := strings.ToLower(it.Table)
			matched := false
			for _, c := range rel.cols {
				if c.hidden {
					continue
				}
				if qual != "" && c.qual != qual {
					continue
				}
				matched = true
				ref := &sqltext.ColumnRef{Column: c.name}
				if c.qual != "" {
					ref.Table = c.qual
				}
				items = append(items, projItem{Expr: ref})
				names = append(names, c.name)
			}
			if qual != "" && !matched {
				return nil, nil, fmt.Errorf("engine: unknown table %s in %s.*", it.Table, it.Table)
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqltext.ColumnRef); ok {
					name = cr.Column
				} else {
					name = it.Expr.String()
				}
			}
			items = append(items, projItem{Expr: it.Expr, Alias: it.Alias})
			names = append(names, name)
		}
	}
	return items, names, nil
}

// evalAggregateSelect evaluates GROUP BY / aggregate projection. Groups
// hold row indexes into rel.rows so the hot inputs — group keys and the
// arguments of simple aggregate items — can be evaluated once, batched,
// across all rows, while HAVING and complex items keep the per-group
// interpreter path over lazily materialized row slices.
func (e *Engine) evalAggregateSelect(sel *sqltext.Select, items []projItem, rel *relation, b *binder) ([]types.Row, []types.Row, error) {
	n := len(rel.rows)
	groups := map[string][]int{}
	var order []string
	var rowGroup []int32 // per-row group ordinal; nil = single group
	if len(sel.GroupBy) == 0 {
		// Single implicit group; aggregates over an empty relation still
		// produce one row (COUNT(*) = 0).
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		groups[""] = all
		order = append(order, "")
	} else {
		keys, err := e.groupKeys(sel, rel, b)
		if err != nil {
			return nil, nil, err
		}
		rowGroup = make([]int32, n)
		ordinal := make(map[string]int)
		for i := 0; i < n; i++ {
			k := keys[i]
			g, ok := ordinal[k]
			if !ok {
				g = len(order)
				ordinal[k] = g
				order = append(order, k)
			}
			groups[k] = append(groups[k], i)
			rowGroup[i] = int32(g)
		}
	}
	fold := e.buildAggFold(items, rel, b, rowGroup, len(order), b.ctx)
	argCache, err := e.aggArgCache(items, rel, b, fold)
	if err != nil {
		return nil, nil, err
	}
	var out []types.Row
	var src []types.Row
	for gi, k := range order {
		idx := groups[k]
		var grpRows []types.Row
		rowsOf := func() []types.Row {
			if grpRows == nil {
				grpRows = make([]types.Row, 0, len(idx))
				for _, ri := range idx {
					grpRows = append(grpRows, rel.rows[ri])
				}
			}
			return grpRows
		}
		if sel.Having != nil {
			hv, err := b.evalAgg(sel.Having, rowsOf())
			if err != nil {
				return nil, nil, err
			}
			keep := false
			if !hv.IsNull() {
				keep, err = hv.AsBool()
				if err != nil {
					return nil, nil, err
				}
			}
			if !keep {
				continue
			}
		}
		row := make(types.Row, len(items))
		for i, it := range items {
			v, err := e.evalAggItem(it.Expr, idx, rowsOf, argCache, rel, b, fold, gi)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out = append(out, row)
		if len(idx) > 0 {
			src = append(src, rel.rows[idx[0]])
		} else {
			src = append(src, nil)
		}
	}
	return out, src, nil
}

// groupKeys computes the RowKey of the GROUP BY expressions for every
// source row, batched through the VM when every key expression lowers.
// Errors surface in (row, expression) order either way.
func (e *Engine) groupKeys(sel *sqltext.Select, rel *relation, b *binder) ([]string, error) {
	n := len(rel.rows)
	keys := make([]string, n)
	if e.vmOn() && n > 0 {
		progs := make([]*vm.Program, len(sel.GroupBy))
		all := true
		for i, g := range sel.GroupBy {
			if progs[i] = e.compiledProg(g, rel.cols); progs[i] == nil {
				all = false
				break
			}
		}
		if all {
			// Large relations fan the key computation out over contiguous
			// row ranges (see parallelKeys); handled=false stays serial.
			if handled, err := e.parallelKeys(progs, rel, b.args, keys, b.ctx); handled {
				if err != nil {
					return nil, err
				}
				return keys, nil
			}
			keyVals := make(types.Row, len(progs))
			err := e.evalVecs(progs, rel, b.args, func(start, count int, vecs []*vm.Vec) error {
				for ri := 0; ri < count; ri++ {
					for gi := range progs {
						if err := vecs[gi].Err(ri); err != nil {
							return err
						}
						keyVals[gi] = vecs[gi].Value(ri)
					}
					keys[start+ri] = types.RowKey(keyVals)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			return keys, nil
		}
	}
	for i, r := range rel.rows {
		keyVals := make(types.Row, len(sel.GroupBy))
		for j, g := range sel.GroupBy {
			v, err := b.eval(g, r)
			if err != nil {
				return nil, err
			}
			keyVals[j] = v
		}
		keys[i] = types.RowKey(keyVals)
	}
	return keys, nil
}

// aggArgVec caches one aggregate call's argument evaluated over every
// source row: the value per row, plus the error the interpreter would
// have raised at that row (surfaced only if the row's group is actually
// folded, mirroring interpreter laziness for HAVING-rejected groups).
type aggArgVec struct {
	vals []types.Value
	errs []error
}

// aggArgCache batch-evaluates the argument of every simple aggregate
// projection item (one lowerable argument) across rel.rows. Items the
// column-native fold already covers (non-DISTINCT — see buildAggFold)
// are skipped: only DISTINCT calls still need the per-row value cache
// for their dedup pass.
func (e *Engine) aggArgCache(items []projItem, rel *relation, b *binder, fold *aggFold) (map[*sqltext.FuncCall]*aggArgVec, error) {
	if !e.vmOn() || len(rel.rows) == 0 {
		return nil, nil
	}
	var calls []*sqltext.FuncCall
	var progs []*vm.Program
	seen := map[*sqltext.FuncCall]bool{}
	for _, it := range items {
		fc, ok := it.Expr.(*sqltext.FuncCall)
		if !ok || !sqltext.IsAggregateName(fc.Name) || fc.Star || len(fc.Args) != 1 || seen[fc] || fold.covers(fc) {
			continue
		}
		p := e.compiledProg(fc.Args[0], rel.cols)
		if p == nil {
			continue
		}
		seen[fc] = true
		calls = append(calls, fc)
		progs = append(progs, p)
	}
	if len(calls) == 0 {
		return nil, nil
	}
	n := len(rel.rows)
	cache := make(map[*sqltext.FuncCall]*aggArgVec, len(calls))
	for _, fc := range calls {
		cache[fc] = &aggArgVec{vals: make([]types.Value, n)}
	}
	err := e.evalVecs(progs, rel, b.args, func(start, count int, vecs []*vm.Vec) error {
		for ci, fc := range calls {
			av := cache[fc]
			for ri := 0; ri < count; ri++ {
				if err := vecs[ci].Err(ri); err != nil {
					if av.errs == nil {
						av.errs = make([]error, n)
					}
					av.errs[start+ri] = err
					continue
				}
				av.vals[start+ri] = vecs[ci].Value(ri)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cache, nil
}

// evalAggItem evaluates one aggregate-context projection item for a
// group given as row indexes, using the batched argument cache when the
// item is a simple aggregate call, and deferring to the interpreter's
// evalAgg otherwise. Semantics (NULL skipping, DISTINCT, error order)
// are identical: the fold itself is shared (foldAggregate).
func (e *Engine) evalAggItem(x sqltext.Expr, idx []int, rowsOf func() []types.Row, cache map[*sqltext.FuncCall]*aggArgVec, rel *relation, b *binder, fold *aggFold, gi int) (types.Value, error) {
	if fc, ok := x.(*sqltext.FuncCall); ok && sqltext.IsAggregateName(fc.Name) {
		name := strings.ToUpper(fc.Name)
		if fc.Star {
			if name != "COUNT" {
				return types.Null, fmt.Errorf("engine: %s(*) is not valid", name)
			}
			return types.NewInt(int64(len(idx))), nil
		}
		if st := fold.lookup(fc, gi); st != nil {
			op, _ := aggOpOf(name)
			return st.result(op)
		}
		if av := cache[fc]; av != nil {
			if !fc.Distinct && av.errs == nil {
				return foldAggArg(name, av.vals, idx)
			}
			var vals []types.Value
			var seen map[string]bool
			if fc.Distinct {
				seen = map[string]bool{}
			}
			for _, ri := range idx {
				if av.errs != nil && av.errs[ri] != nil {
					return types.Null, av.errs[ri]
				}
				v := av.vals[ri]
				if v.IsNull() {
					continue
				}
				if fc.Distinct {
					k := v.HashKey()
					if seen[k] {
						continue
					}
					seen[k] = true
				}
				vals = append(vals, v)
			}
			return foldAggregate(name, vals)
		}
		return b.evalAggregateCall(fc, rowsOf())
	}
	if !sqltext.HasAggregate(x) {
		// evalAgg's non-aggregate tail: evaluate on the group's first row
		// (nil for an empty group).
		if len(idx) == 0 {
			return b.eval(x, nil)
		}
		return b.eval(x, rel.rows[idx[0]])
	}
	return b.evalAgg(x, rowsOf())
}

// foldAggArg folds a cached aggregate argument over a group's row
// indexes without materializing the per-group value slice. Semantics
// are exactly foldAggregate's (NULL skipping, int/float promotion,
// value-order fold errors); callers use it only when the call is not
// DISTINCT and no row's argument errored, so error ordering cannot
// diverge from the collect-then-fold path.
func foldAggArg(name string, vals []types.Value, idx []int) (types.Value, error) {
	switch name {
	case "COUNT":
		n := 0
		for _, ri := range idx {
			if vals[ri].LaneKind() != types.KindNull {
				n++
			}
		}
		return types.NewInt(int64(n)), nil
	case "SUM", "AVG":
		allInt := true
		var si int64
		var sf float64
		n := 0
		for _, ri := range idx {
			v := &vals[ri]
			if v.LaneKind() == types.KindNull {
				continue
			}
			n++
			if v.LaneKind() == types.KindInt {
				si += v.LaneInt()
				continue
			}
			f, err := vals[ri].AsFloat()
			if err != nil {
				return types.Null, err
			}
			allInt = false
			sf += f
		}
		if n == 0 {
			return types.Null, nil
		}
		if name == "SUM" {
			if allInt {
				return types.NewInt(si), nil
			}
			return types.NewFloat(sf + float64(si)), nil
		}
		return types.NewFloat((sf + float64(si)) / float64(n)), nil
	case "MIN", "MAX":
		have := false
		var best types.Value
		for _, ri := range idx {
			if vals[ri].LaneKind() == types.KindNull {
				continue
			}
			if !have {
				best, have = vals[ri], true
				continue
			}
			c, err := types.Compare(vals[ri], best)
			if err != nil {
				return types.Null, err
			}
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = vals[ri]
			}
		}
		if !have {
			return types.Null, nil
		}
		return best, nil
	}
	return types.Null, fmt.Errorf("engine: unknown aggregate %s", name)
}

// evalVecs runs several compiled programs over rel.rows chunk by chunk,
// invoking sink with each chunk's result vectors (valid only during the
// callback). Used by group-key and aggregate-argument batching.
func (e *Engine) evalVecs(progs []*vm.Program, rel *relation, args []types.Value, sink func(start, count int, vecs []*vm.Vec) error) error {
	machines := make([]*vm.Machine, len(progs))
	usedSet := map[int]bool{}
	for i, p := range progs {
		machines[i] = vm.NewMachine(p)
		machines[i].Bind(args)
		for _, c := range p.Cols() {
			usedSet[c] = true
		}
	}
	used := make([]int, 0, len(usedSet))
	for c := range usedSet {
		used = append(used, c)
	}
	sort.Ints(used)
	batch := vm.NewBatch(batchKinds(rel.cols), used)
	vecs := make([]*vm.Vec, len(progs))
	for start := 0; start < len(rel.rows); start += vm.BatchSize {
		end := start + vm.BatchSize
		if end > len(rel.rows) {
			end = len(rel.rows)
		}
		batch.Reset()
		for _, r := range rel.rows[start:end] {
			batch.Append(r)
		}
		for i, mch := range machines {
			vecs[i] = mch.Eval(batch)
		}
		e.countVM(batch.Len())
		if err := sink(start, batch.Len(), vecs); err != nil {
			return err
		}
	}
	return nil
}

// scanProj is a projection compiled for evaluation inside the scan
// loop: per item either a direct column index (bare references) or a
// bound machine sharing the scan's batch.
type scanProj struct {
	names    []string
	progs    []*vm.Program
	machines []*vm.Machine
	bare     []int
	vecs     []*vm.Vec
}

// scanProjection decides whether the statement's projection can run
// inside the compiled scan. It can when the scan serves the top-level
// SELECT itself (matchTable fabricates a star select for UPDATE/DELETE
// row matching and needs full-width rows with the _tid column — as do
// subquery sources feeding an outer binder) and nothing downstream
// needs the source rows: no GROUP BY / HAVING / ORDER BY, LIMIT and
// OFFSET are literals or parameters, and every projection item lowers.
// DISTINCT is fine — it runs over output tuples.
func (e *Engine) scanProjection(sel *sqltext.Select, rel *relation, args []types.Value, ctx *stmtCtx) *scanProj {
	if sel == nil || sel != ctx.top || len(sel.GroupBy) > 0 || sel.Having != nil || len(sel.OrderBy) > 0 ||
		!plainIntArg(sel.Limit) || !plainIntArg(sel.Offset) {
		return nil
	}
	items, names, err := expandItems(sel, rel)
	if err != nil || len(items) == 0 {
		return nil
	}
	for _, it := range items {
		// Aggregates route to evalAggregateSelect even when an
		// identically named scalar is registered — mirror that here
		// rather than trusting compile failure alone.
		if sqltext.HasAggregate(it.Expr) {
			return nil
		}
	}
	sp := &scanProj{
		names:    names,
		progs:    make([]*vm.Program, len(items)),
		machines: make([]*vm.Machine, len(items)),
		bare:     make([]int, len(items)),
		vecs:     make([]*vm.Vec, len(items)),
	}
	for i, it := range items {
		p := e.compiledProg(it.Expr, rel.cols)
		if p == nil {
			return nil
		}
		if c, ok := p.BareCol(); ok {
			sp.bare[i] = c
			continue
		}
		sp.bare[i] = -1
		sp.progs[i] = p
		sp.machines[i] = vm.NewMachine(p)
		sp.machines[i].Bind(args)
	}
	return sp
}

// plainIntArg reports whether a LIMIT/OFFSET expression can be
// evaluated without the source relation in scope.
func plainIntArg(x sqltext.Expr) bool {
	switch x.(type) {
	case nil, *sqltext.Literal, *sqltext.Param:
		return true
	}
	return false
}

// emit projects the matched lanes of one scan batch into output tuples
// on dst (rel.rows for the serial scan, a morsel's reorder-buffer slot
// for parallel workers). A lane error is returned (not raised): the
// caller must keep scanning so a later row's WHERE error still wins,
// exactly as the interpreter's filter-everything-then-project order
// implies.
func (sp *scanProj) emit(dst *[]types.Row, batch *vm.Batch, lanes []int, vals []types.Row, tids, created []int64, nUser int) error {
	for i, mch := range sp.machines {
		if mch != nil {
			sp.vecs[i] = mch.Eval(batch)
		}
	}
	w := len(sp.names)
	slab := make([]types.Value, len(lanes)*w)
	for k, li := range lanes {
		row := types.Row(slab[k*w : (k+1)*w : (k+1)*w])
		for i := range sp.names {
			if c := sp.bare[i]; c >= 0 {
				switch {
				case c < len(vals[li]):
					row[i] = vals[li][c]
				case c == nUser:
					row[i] = types.NewInt(tids[li])
				case c == nUser+1:
					row[i] = types.NewInt(created[li])
				}
				continue
			}
			if err := sp.vecs[i].Err(li); err != nil {
				return err
			}
			row[i] = sp.vecs[i].Value(li)
		}
		*dst = append(*dst, row)
	}
	return nil
}

// projectRows evaluates the projection over rel.rows, batch-compiling
// every item that lowers and interpreting the rest per row. Mixing is
// safe because batched lanes hold their errors until the row-major
// materialization loop reaches them — so the first error surfaced is
// the same (row, item) the interpreter would have hit.
func (e *Engine) projectRows(items []projItem, rel *relation, b *binder, out []types.Row) ([]types.Row, error) {
	var progs []*vm.Program
	anyCompiled := false
	if e.vmOn() && len(rel.rows) > 0 {
		progs = make([]*vm.Program, len(items))
		for i, it := range items {
			if p := e.compiledProg(it.Expr, rel.cols); p != nil {
				progs[i] = p
				anyCompiled = true
			}
		}
	}
	if !anyCompiled {
		for _, r := range rel.rows {
			row := make(types.Row, len(items))
			for i, it := range items {
				v, err := b.eval(it.Expr, r)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out = append(out, row)
		}
		return out, nil
	}
	machines := make([]*vm.Machine, len(items))
	// Bare column references skip the VM entirely: the lane value IS
	// row[c], so the item becomes a direct index into the source row.
	bareCol := make([]int, len(items))
	usedSet := map[int]bool{}
	for i, p := range progs {
		bareCol[i] = -1
		if p == nil {
			continue
		}
		if c, ok := p.BareCol(); ok {
			bareCol[i] = c
			continue
		}
		machines[i] = vm.NewMachine(p)
		machines[i].Bind(b.args)
		for _, c := range p.Cols() {
			usedSet[c] = true
		}
	}
	if len(usedSet) == 0 {
		// Every compiled item is a bare column: pure row indexing, no
		// batches to fill or machines to run.
		w := len(items)
		slab := make([]types.Value, len(rel.rows)*w)
		for ri, r := range rel.rows {
			row := types.Row(slab[ri*w : (ri+1)*w : (ri+1)*w])
			for i, it := range items {
				if c := bareCol[i]; c >= 0 {
					if c < len(r) {
						row[i] = r[c]
					}
					continue
				}
				v, err := b.eval(it.Expr, r)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out = append(out, row)
		}
		return out, nil
	}
	used := make([]int, 0, len(usedSet))
	for c := range usedSet {
		used = append(used, c)
	}
	sort.Ints(used)
	batch := vm.NewBatch(batchKinds(rel.cols), used)
	vecs := make([]*vm.Vec, len(items))
	for start := 0; start < len(rel.rows); start += vm.BatchSize {
		end := start + vm.BatchSize
		if end > len(rel.rows) {
			end = len(rel.rows)
		}
		batch.Fill(rel.rows[start:end])
		for i, mch := range machines {
			if mch != nil {
				vecs[i] = mch.Eval(batch)
			}
		}
		e.countVM(batch.Len())
		// One slab of values per batch instead of one allocation per
		// output row.
		w := len(items)
		slab := make([]types.Value, batch.Len()*w)
		for ri := 0; ri < batch.Len(); ri++ {
			row := types.Row(slab[ri*w : (ri+1)*w : (ri+1)*w])
			src := rel.rows[start+ri]
			for i, it := range items {
				if c := bareCol[i]; c >= 0 {
					if c < len(src) {
						row[i] = src[c]
					}
					continue
				}
				if machines[i] != nil {
					if err := vecs[i].Err(ri); err != nil {
						return nil, err
					}
					row[i] = vecs[i].Value(ri)
					continue
				}
				v, err := b.eval(it.Expr, src)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// orderRows sorts output (and keeps srcRows aligned). ORDER BY keys may
// reference output aliases/columns or source-relation expressions. When
// LIMIT (+ OFFSET) is statically known, a bounded heap keeps only the
// top limit+offset rows instead of sorting the whole result — O(n log k)
// comparisons instead of O(n log n), and the returned slices shrink to k.
func (e *Engine) orderRows(sel *sqltext.Select, items []projItem, colNames []string, out []types.Row, srcRows []types.Row, b *binder) ([]types.Row, []types.Row, error) {
	type keyFn func(i int) (types.Value, error)
	fns := make([]keyFn, len(sel.OrderBy))
	for oi, o := range sel.OrderBy {
		o := o
		// Alias / output column reference?
		if cr, ok := o.Expr.(*sqltext.ColumnRef); ok && cr.Table == "" {
			pos := -1
			for ci, n := range colNames {
				if strings.EqualFold(n, cr.Column) {
					pos = ci
					break
				}
			}
			if pos >= 0 {
				p := pos
				fns[oi] = func(i int) (types.Value, error) { return out[i][p], nil }
				continue
			}
		}
		// Positional: ORDER BY 2.
		if lit, ok := o.Expr.(*sqltext.Literal); ok && lit.Value.Kind() == types.KindInt {
			p := int(lit.Value.Int()) - 1
			if p < 0 || p >= len(colNames) {
				return nil, nil, fmt.Errorf("engine: ORDER BY position %d out of range", p+1)
			}
			fns[oi] = func(i int) (types.Value, error) { return out[i][p], nil }
			continue
		}
		// Source expression.
		expr := o.Expr
		agg := sqltext.HasAggregate(expr)
		fns[oi] = func(i int) (types.Value, error) {
			if i >= len(srcRows) {
				return types.Null, nil
			}
			if agg {
				return b.evalAgg(expr, []types.Row{srcRows[i]})
			}
			return b.eval(expr, srcRows[i])
		}
	}
	// Precompute keys.
	keys := make([][]types.Value, len(out))
	for i := range out {
		keys[i] = make([]types.Value, len(fns))
		for j, fn := range fns {
			v, err := fn(i)
			if err != nil {
				return nil, nil, err
			}
			keys[i][j] = v
		}
	}

	// less orders row indexes by the ORDER BY keys, breaking ties by
	// original position so the result matches a stable sort.
	var sortErr error
	less := func(a, bb int) bool {
		for j := range fns {
			c, err := types.Compare(keys[a][j], keys[bb][j])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sel.OrderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return a < bb
	}

	// Bound: LIMIT k (+ OFFSET m) means only the first k+m sorted rows
	// survive, so a size-k+m heap suffices.
	k := -1
	if sel.Limit != nil {
		if n, ok := constInt(b, sel.Limit); ok && n >= 0 {
			k = int(n)
			if sel.Offset != nil {
				if m, ok := constInt(b, sel.Offset); ok && m >= 0 {
					k += int(m)
				} else {
					k = -1
				}
			}
		}
	}

	var idx []int
	if k >= 0 && k < len(out) {
		idx = topKIndexes(len(out), k, less)
	} else {
		idx = make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, bb int) bool { return less(idx[a], idx[bb]) })
	}
	if sortErr != nil {
		return nil, nil, sortErr
	}
	sorted := make([]types.Row, len(idx))
	for i, p := range idx {
		sorted[i] = out[p]
	}
	sortedSrc := srcRows
	if len(srcRows) == len(out) {
		sortedSrc = make([]types.Row, len(idx))
		for i, p := range idx {
			sortedSrc[i] = srcRows[p]
		}
	}
	return sorted, sortedSrc, nil
}

// constInt evaluates a LIMIT/OFFSET expression when it is a literal or a
// bound parameter; anything else is not statically known.
func constInt(b *binder, x sqltext.Expr) (int64, bool) {
	v, ok := constVal(x, b.args)
	if !ok || v.IsNull() {
		return 0, false
	}
	n, err := v.AsInt()
	if err != nil {
		return 0, false
	}
	return n, true
}

// topKIndexes selects the k smallest (per less) of n row indexes using a
// bounded max-heap whose root is the worst row kept so far, then sorts
// the survivors. O(n log k) comparisons, O(k) extra space.
func topKIndexes(n, k int, less func(a, b int) bool) []int {
	if k <= 0 {
		return nil
	}
	h := make([]int, 0, k)
	worse := func(a, b int) bool { return less(b, a) }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && worse(h[l], h[big]) {
				big = l
			}
			if r < len(h) && worse(h[r], h[big]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h[i], h[p]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for i := 0; i < n; i++ {
		if len(h) < k {
			h = append(h, i)
			siftUp(len(h) - 1)
		} else if less(i, h[0]) {
			h[0] = i
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// buildFrom builds the FROM clause (with joins) into a relation and
// returns a binder over it. The returned bool reports whether the WHERE
// clause was already applied during the scan (streaming full scan).
func (e *Engine) buildFrom(sel *sqltext.Select, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*relation, *binder, bool, error) {
	left, whereApplied, err := e.buildTableRef(*sel.From, args, overrides, sel, ctx)
	if err != nil {
		return nil, nil, false, err
	}
	for _, j := range sel.Joins {
		right, err := e.buildJoinSource(j.Right, args, overrides, ctx)
		if err != nil {
			return nil, nil, false, err
		}
		left, err = e.join(left, right, j, args, overrides, ctx)
		if err != nil {
			return nil, nil, false, err
		}
	}
	return left, newBinder(e, args, left, overrides, ctx), whereApplied, nil
}

// buildTableRef builds one FROM entry. When sel is non-nil (single base
// table with no joins), the planner chooses an access path from the
// WHERE clause: an index point/IN lookup fetching only candidate rows,
// or a streaming full scan that evaluates WHERE inside the scan loop so
// non-matching rows are never copied. The bool reports whether WHERE was
// fully applied by the scan.
func (e *Engine) buildTableRef(tr sqltext.TableRef, args []types.Value, overrides map[string][]types.Row, sel *sqltext.Select, ctx *stmtCtx) (*relation, bool, error) {
	if tr.Subquery != nil {
		res, err := e.evalSelectWith(tr.Subquery, args, overrides, ctx)
		if err != nil {
			return nil, false, err
		}
		qual := strings.ToLower(tr.Alias)
		rel := &relation{}
		for _, n := range res.Columns {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(n)})
		}
		rel.rows = res.Rows
		return rel, false, nil
	}
	name := tr.Table
	qual := strings.ToLower(tr.Alias)
	if qual == "" {
		qual = strings.ToLower(name)
	}

	// Virtual system tables (sys_metrics, sys_slow_queries, sys_sessions)
	// are computed on the fly and shadow the catalog.
	if vt := e.lookupVirtual(name); vt != nil {
		rel := &relation{}
		for _, c := range vt.cols {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: c})
		}
		rel.rows = vt.fn()
		e.countScanned(ctx, len(rel.rows))
		return rel, false, nil
	}

	// View resolution: the backing table holds the materialized rows.
	if v, ok := e.cat.View(name); ok {
		name = v.Backing
	}

	schema, ok := e.cat.Table(name)
	if !ok {
		return nil, false, fmt.Errorf("engine: no such table %q", tr.Table)
	}
	rel := &relation{}
	for _, c := range schema.Columns {
		rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(c.Name), kind: c.Type})
	}
	rel.cols = append(rel.cols,
		colMeta{qual: qual, name: catalog.SysTID, hidden: true, kind: types.KindInt},
		colMeta{qual: qual, name: catalog.SysCreated, hidden: true, kind: types.KindInt},
	)

	// IVM override: substitute rows (user columns only; system columns 0).
	if rows, ok := overrides[strings.ToLower(tr.Table)]; ok {
		w := len(schema.Columns) + 2
		slab := make(types.Row, len(rows)*w)
		rel.rows = make([]types.Row, 0, len(rows))
		for ri, r := range rows {
			if len(r) != len(schema.Columns) {
				return nil, false, fmt.Errorf("engine: override row arity %d for %s (want %d)", len(r), tr.Table, len(schema.Columns))
			}
			full := slab[ri*w : (ri+1)*w : (ri+1)*w]
			copy(full, r)
			full[w-2] = types.NewInt(0)
			full[w-1] = types.NewInt(0)
			rel.rows = append(rel.rows, full)
		}
		return rel, false, nil
	}

	tbl := e.store.Table(name)
	if tbl == nil {
		return nil, false, fmt.Errorf("engine: storage missing for table %q", name)
	}
	rel.tbl = tbl

	var where sqltext.Expr
	if sel != nil && len(sel.Joins) == 0 {
		where = sel.Where
	}

	// Index access path: fetch only candidate tids, then let the caller
	// re-apply the full WHERE (a conjunct only restricts, so the
	// candidate set over-approximates and re-filtering is sound).
	if where != nil {
		if plan := analyzeScan(where, schema, tbl, qual); plan.kind != pathFullScan {
			if tids, ok := resolveScan(plan, schema, tbl, args, ctx.snap); ok {
				for _, tid := range tids {
					if sr, found := tbl.GetAt(tid, ctx.snap); found {
						full := make(types.Row, 0, len(sr.Values)+2)
						full = append(full, sr.Values...)
						full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
						rel.rows = append(rel.rows, full)
					}
				}
				e.countScanned(ctx, len(tids))
				return rel, false, nil
			}
		}
	}

	nUser := len(schema.Columns)

	// Compiled streaming full scan: pull snapshot rows into a column
	// batch and run the compiled WHERE over ~1k lanes at a time. Only the
	// columns the program reads are copied into vectors; version values
	// (immutable under MVCC) are referenced, not copied, until a lane
	// passes the filter.
	if where != nil {
		if prog := e.compiledProg(where, rel.cols); prog != nil {
			// Projection pushdown: when the whole statement reduces to
			// "filter, project, maybe DISTINCT/LIMIT" and every item
			// lowers, evaluate the projection on the already-filled
			// batch and emit output tuples directly — matched rows are
			// never materialized at full table width.
			proj := e.scanProjection(sel, rel, args, ctx)

			// Morsel-parallel path (see parallel.go): big enough tables
			// fan the same compiled filter + pushdown out to a worker
			// pool, gathering byte-identical results through a reorder
			// buffer. handled=false falls through to the serial loop.
			handled, err := e.parallelScan(tbl, rel, prog, proj, args, ctx, nUser)
			if err != nil {
				return nil, false, err
			}
			if handled {
				if proj != nil {
					cols := make([]colMeta, len(proj.names))
					for i, n := range proj.names {
						cols[i] = colMeta{name: strings.ToLower(n)}
					}
					rel.cols = cols
					rel.projNames = proj.names
				}
				return rel, true, nil
			}

			m := vm.NewMachine(prog)
			m.Bind(args)

			usedSet := map[int]bool{}
			for _, c := range prog.Cols() {
				usedSet[c] = true
			}
			if proj != nil {
				for _, p := range proj.progs {
					if p == nil {
						continue
					}
					for _, c := range p.Cols() {
						usedSet[c] = true
					}
				}
			}
			used := make([]int, 0, len(usedSet))
			for c := range usedSet {
				used = append(used, c)
			}
			sort.Ints(used)
			batch := vm.NewBatch(batchKinds(rel.cols), used)
			needSys := false
			for _, c := range used {
				if c >= nUser {
					needSys = true
				}
			}
			var scratch types.Row
			if needSys {
				scratch = make(types.Row, nUser+2)
			}
			vals := make([]types.Row, 0, vm.BatchSize)
			tids := make([]int64, 0, vm.BatchSize)
			created := make([]int64, 0, vm.BatchSize)
			// A projection-item error must not surface before a WHERE
			// error from a later row (the interpreter filters the whole
			// table before projecting anything), so it is deferred until
			// the scan completes.
			var projErr error
			flush := func() error {
				if len(vals) == 0 {
					return nil
				}
				if needSys {
					// Predicate reads tid/created pseudo-columns: splice
					// them into a scratch row and fill row-at-a-time.
					batch.Reset()
					for i := range vals {
						copy(scratch, vals[i])
						scratch[nUser] = types.NewInt(tids[i])
						scratch[nUser+1] = types.NewInt(created[i])
						batch.Append(scratch)
					}
				} else {
					batch.Fill(vals)
				}
				lanes, err := m.Filter(batch)
				if err != nil {
					return err
				}
				if len(lanes) > 0 && projErr == nil {
					if proj != nil {
						projErr = proj.emit(&rel.rows, batch, lanes, vals, tids, created, nUser)
					} else {
						// One slab per batch instead of one allocation
						// per matched row.
						w := nUser + 2
						slab := make([]types.Value, len(lanes)*w)
						for k, i := range lanes {
							full := types.Row(slab[k*w : (k+1)*w : (k+1)*w])
							copy(full, vals[i])
							full[nUser] = types.NewInt(tids[i])
							full[nUser+1] = types.NewInt(created[i])
							rel.rows = append(rel.rows, full)
						}
					}
				}
				e.countVM(batch.Len())
				vals, tids, created = vals[:0], tids[:0], created[:0]
				return nil
			}
			scanned := 0
			for it := tbl.Iterate(ctx.snap); ; {
				sr, more := it.Next()
				if !more {
					break
				}
				scanned++
				vals = append(vals, sr.Values)
				tids = append(tids, sr.TID)
				created = append(created, sr.Created)
				if len(vals) == vm.BatchSize {
					if err := flush(); err != nil {
						return nil, false, err
					}
				}
			}
			if err := flush(); err != nil {
				return nil, false, err
			}
			if projErr != nil {
				return nil, false, projErr
			}
			e.countScanned(ctx, scanned)
			if proj != nil {
				cols := make([]colMeta, len(proj.names))
				for i, n := range proj.names {
					cols[i] = colMeta{name: strings.ToLower(n)}
				}
				rel.cols = cols
				rel.projNames = proj.names
			}
			return rel, true, nil
		}
	}

	// Streaming full scan: evaluate WHERE against a reused scratch row
	// inside the loop, copying out only the matches. Allocation becomes
	// O(result) instead of O(table).
	if where != nil {
		b := newBinder(e, args, rel, overrides, ctx)
		scratch := make(types.Row, nUser+2)
		scanned := 0
		for it := tbl.Iterate(ctx.snap); ; {
			sr, more := it.Next()
			if !more {
				break
			}
			scanned++
			copy(scratch, sr.Values)
			scratch[nUser] = types.NewInt(sr.TID)
			scratch[nUser+1] = types.NewInt(sr.Created)
			ok, err := b.evalBool(where, scratch)
			if err != nil {
				return nil, false, err
			}
			if ok {
				full := make(types.Row, nUser+2)
				copy(full, scratch)
				rel.rows = append(rel.rows, full)
			}
		}
		e.countScanned(ctx, scanned)
		return rel, true, nil
	}

	scanned := 0
	for it := tbl.Iterate(ctx.snap); ; {
		sr, more := it.Next()
		if !more {
			break
		}
		scanned++
		full := make(types.Row, 0, len(sr.Values)+2)
		full = append(full, sr.Values...)
		full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
		rel.rows = append(rel.rows, full)
	}
	e.countScanned(ctx, scanned)
	return rel, false, nil
}

// buildJoinSource builds the right side of a join. Plain base tables
// stay lazy (columns only) so the join can probe their storage indexes
// without materializing; everything else falls back to buildTableRef.
func (e *Engine) buildJoinSource(tr sqltext.TableRef, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*relation, error) {
	if tr.Subquery == nil && e.lookupVirtual(tr.Table) == nil {
		if _, hasOverride := overrides[strings.ToLower(tr.Table)]; !hasOverride {
			name := tr.Table
			if v, ok := e.cat.View(name); ok {
				name = v.Backing
			}
			if _, ok := e.cat.Table(name); ok {
				if rel, err := e.refCols(tr); err == nil && rel.tbl != nil {
					return rel, nil
				}
			}
		}
	}
	rel, _, err := e.buildTableRef(tr, args, overrides, nil, ctx)
	return rel, err
}

// materializeRel fills a lazy base-table relation's rows as of the
// statement's snapshot.
func (e *Engine) materializeRel(rel *relation, ctx *stmtCtx) {
	if !rel.lazy {
		return
	}
	rel.lazy = false
	scanned := 0
	for it := rel.tbl.Iterate(ctx.snap); ; {
		sr, more := it.Next()
		if !more {
			break
		}
		scanned++
		full := make(types.Row, 0, len(sr.Values)+2)
		full = append(full, sr.Values...)
		full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
		rel.rows = append(rel.rows, full)
	}
	e.countScanned(ctx, scanned)
}

// countScanned credits base-relation rows examined by a statement —
// rows the executor actually touched (streamed past, probed or
// materialized), not rows returned. The per-statement tally is exact;
// the global counter aggregates across statements for sys_metrics.
func (e *Engine) countScanned(ctx *stmtCtx, n int) {
	if n <= 0 {
		return
	}
	ctx.scanned += int64(n)
	if e.reg.Enabled() {
		e.mRowsScanned.Add(int64(n))
	}
}

// join combines two relations according to the join clause, using the
// planner's classification: hash join on the equality conjuncts of ON
// (probing the right side's storage index when one covers the key),
// otherwise a nested loop.
func (e *Engine) join(left, right *relation, jc sqltext.JoinClause, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, left.cols...), right.cols...)}

	concat := func(l, r types.Row) types.Row {
		row := make(types.Row, 0, len(l)+len(r))
		row = append(row, l...)
		return append(row, r...)
	}

	plan := e.analyzeJoin(left, right, jc, args, overrides, ctx)

	if plan.kind == "cross" {
		e.materializeRel(right, ctx)
		for _, lr := range left.rows {
			for _, rr := range right.rows {
				out.rows = append(out.rows, concat(lr, rr))
			}
		}
		return out, nil
	}

	b := newBinder(e, args, out, overrides, ctx)
	leftOuter := jc.Kind == "LEFT"

	if plan.kind == "hash" {
		// Residual ON conjuncts (beyond the hash equalities) must hold for
		// a candidate to count as a match.
		match := func(row types.Row) (bool, error) {
			for _, c := range plan.residual {
				ok, err := b.evalBool(c, row)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		}

		// Probe the right side's storage index per left row instead of
		// materializing it and building a second hash table.
		if right.lazy && (plan.index != "" || plan.probePK) {
			probed := 0
			for _, lr := range left.rows {
				key := make(types.Row, len(plan.perm))
				null := false
				for i, p := range plan.perm {
					v := lr[plan.eqL[p]]
					if v.IsNull() {
						null = true
						break
					}
					key[i] = v
				}
				matched := false
				if !null {
					var tids []int64
					if plan.probePK {
						if tid, found := right.tbl.LookupPKAt(key[0], ctx.snap); found {
							tids = []int64{tid}
						}
					} else if found, ok := right.tbl.LookupIndexAt(plan.index, key, ctx.snap); ok {
						tids = found
					}
					for _, tid := range tids {
						sr, found := right.tbl.GetAt(tid, ctx.snap)
						if !found {
							continue
						}
						probed++
						rrow := make(types.Row, 0, len(sr.Values)+2)
						rrow = append(rrow, sr.Values...)
						rrow = append(rrow, types.NewInt(sr.TID), types.NewInt(sr.Created))
						row := concat(lr, rrow)
						ok, err := match(row)
						if err != nil {
							return nil, err
						}
						if ok {
							matched = true
							out.rows = append(out.rows, row)
						}
					}
				}
				if !matched && leftOuter {
					pad := make(types.Row, len(right.cols))
					out.rows = append(out.rows, concat(lr, pad))
				}
			}
			e.countScanned(ctx, probed)
			return out, nil
		}

		e.materializeRel(right, ctx)
		// Build side: single map when small, hash-partitioned parallel
		// build when large (see buildJoinIndex). The probe stays
		// single-threaded either way and sees identical index lists.
		idx := e.buildJoinIndex(right.rows, plan.eqR, ctx)
		for _, lr := range left.rows {
			matched := false
			if k, ok := joinKey(lr, plan.eqL); ok {
				for _, m := range idx.lookup(k) {
					row := concat(lr, right.rows[m])
					ok2, err := match(row)
					if err != nil {
						return nil, err
					}
					if ok2 {
						matched = true
						out.rows = append(out.rows, row)
					}
				}
			}
			if !matched && leftOuter {
				pad := make(types.Row, len(right.cols))
				out.rows = append(out.rows, concat(lr, pad))
			}
		}
		return out, nil
	}

	// General nested-loop join.
	e.materializeRel(right, ctx)
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			row := concat(lr, rr)
			ok, err := b.evalBool(jc.On, row)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				out.rows = append(out.rows, row)
			}
		}
		if !matched && leftOuter {
			pad := make(types.Row, len(right.cols))
			out.rows = append(out.rows, concat(lr, pad))
		}
	}
	return out, nil
}
