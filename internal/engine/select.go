package engine

import (
	"fmt"
	"sort"
	"strings"

	"ediflow/internal/catalog"
	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

// evalSelect runs a SELECT. The caller holds at least a read lock.
func (e *Engine) evalSelect(sel *sqltext.Select, args []types.Value) (*Result, error) {
	return e.evalSelectWith(sel, args, nil)
}

// EvalWith implements ivm.Evaluator: evaluate a SELECT with some tables'
// contents substituted. The caller is the view maintainer running inside
// an engine mutation, which already holds the write lock.
func (e *Engine) EvalWith(sel *sqltext.Select, overrides map[string][]types.Row) ([]types.Row, error) {
	res, err := e.evalSelectWith(sel, nil, overrides)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (e *Engine) evalSelectWith(sel *sqltext.Select, args []types.Value, overrides map[string][]types.Row) (*Result, error) {
	// Build the source relation (FROM + JOINs + WHERE).
	var rel *relation
	var b *binder
	if sel.From == nil {
		rel = &relation{rows: []types.Row{nil}} // one empty row: SELECT 1+1
		b = newBinder(e, args, rel, overrides)
	} else {
		var err error
		rel, b, err = e.buildFrom(sel, args, overrides)
		if err != nil {
			return nil, err
		}
	}

	// WHERE.
	if sel.Where != nil {
		kept := rel.rows[:0:0]
		for _, r := range rel.rows {
			ok, err := b.evalBool(sel.Where, r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rel.rows = kept
	}

	// Projection: expand stars, determine output columns.
	items, colNames, err := expandItems(sel, rel)
	if err != nil {
		return nil, err
	}

	aggregate := len(sel.GroupBy) > 0 || sel.Having != nil
	if !aggregate {
		for _, it := range items {
			if it.Expr != nil && sqltext.HasAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
	}

	var out []types.Row
	var srcRows []types.Row // representative source row per output row (for ORDER BY)
	if aggregate {
		out, srcRows, err = e.evalAggregateSelect(sel, items, rel, b)
		if err != nil {
			return nil, err
		}
	} else {
		out = make([]types.Row, 0, len(rel.rows))
		srcRows = rel.rows
		for _, r := range rel.rows {
			row := make(types.Row, len(items))
			for i, it := range items {
				v, err := b.eval(it.Expr, r)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			out = append(out, row)
		}
	}

	// DISTINCT.
	if sel.Distinct {
		seen := map[string]bool{}
		kept := out[:0:0]
		keptSrc := srcRows[:0:0]
		for i, r := range out {
			k := types.RowKey(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
			if i < len(srcRows) {
				keptSrc = append(keptSrc, srcRows[i])
			}
		}
		out = kept
		srcRows = keptSrc
	}

	// ORDER BY.
	if len(sel.OrderBy) > 0 {
		if err := e.orderRows(sel, items, colNames, out, srcRows, b); err != nil {
			return nil, err
		}
	}

	// LIMIT / OFFSET.
	if sel.Offset != nil {
		n, err := evalIntArg(b, sel.Offset)
		if err != nil {
			return nil, err
		}
		if n > int64(len(out)) {
			n = int64(len(out))
		}
		if n > 0 {
			out = out[n:]
		}
	}
	if sel.Limit != nil {
		n, err := evalIntArg(b, sel.Limit)
		if err != nil {
			return nil, err
		}
		if n < int64(len(out)) && n >= 0 {
			out = out[:n]
		}
	}

	// Copy rows out so callers never alias engine-internal storage.
	final := make([]types.Row, len(out))
	for i, r := range out {
		final[i] = types.CloneRow(r)
	}
	return &Result{Columns: colNames, Rows: final}, nil
}

func evalIntArg(b *binder, e sqltext.Expr) (int64, error) {
	v, err := b.eval(e, nil)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// projItem is a resolved projection item.
type projItem struct {
	Expr  sqltext.Expr
	Alias string
}

// expandItems resolves stars against the relation and returns projection
// expressions plus output column names.
func expandItems(sel *sqltext.Select, rel *relation) ([]projItem, []string, error) {
	var items []projItem
	var names []string
	for _, it := range sel.Items {
		switch {
		case it.Star:
			qual := strings.ToLower(it.Table)
			matched := false
			for _, c := range rel.cols {
				if c.hidden {
					continue
				}
				if qual != "" && c.qual != qual {
					continue
				}
				matched = true
				ref := &sqltext.ColumnRef{Column: c.name}
				if c.qual != "" {
					ref.Table = c.qual
				}
				items = append(items, projItem{Expr: ref})
				names = append(names, c.name)
			}
			if qual != "" && !matched {
				return nil, nil, fmt.Errorf("engine: unknown table %s in %s.*", it.Table, it.Table)
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqltext.ColumnRef); ok {
					name = cr.Column
				} else {
					name = it.Expr.String()
				}
			}
			items = append(items, projItem{Expr: it.Expr, Alias: it.Alias})
			names = append(names, name)
		}
	}
	return items, names, nil
}

// evalAggregateSelect evaluates GROUP BY / aggregate projection.
func (e *Engine) evalAggregateSelect(sel *sqltext.Select, items []projItem, rel *relation, b *binder) ([]types.Row, []types.Row, error) {
	groups := map[string][]types.Row{}
	var order []string
	if len(sel.GroupBy) == 0 {
		// Single implicit group; aggregates over an empty relation still
		// produce one row (COUNT(*) = 0).
		key := ""
		groups[key] = rel.rows
		order = append(order, key)
	} else {
		for _, r := range rel.rows {
			keyVals := make(types.Row, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				v, err := b.eval(g, r)
				if err != nil {
					return nil, nil, err
				}
				keyVals[i] = v
			}
			k := types.RowKey(keyVals)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], r)
		}
	}
	var out []types.Row
	var src []types.Row
	for _, k := range order {
		group := groups[k]
		if sel.Having != nil {
			hv, err := b.evalAgg(sel.Having, group)
			if err != nil {
				return nil, nil, err
			}
			keep := false
			if !hv.IsNull() {
				keep, err = hv.AsBool()
				if err != nil {
					return nil, nil, err
				}
			}
			if !keep {
				continue
			}
		}
		row := make(types.Row, len(items))
		for i, it := range items {
			v, err := b.evalAgg(it.Expr, group)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out = append(out, row)
		if len(group) > 0 {
			src = append(src, group[0])
		} else {
			src = append(src, nil)
		}
	}
	return out, src, nil
}

// orderRows sorts output (and keeps srcRows aligned). ORDER BY keys may
// reference output aliases/columns or source-relation expressions.
func (e *Engine) orderRows(sel *sqltext.Select, items []projItem, colNames []string, out []types.Row, srcRows []types.Row, b *binder) error {
	type keyFn func(i int) (types.Value, error)
	fns := make([]keyFn, len(sel.OrderBy))
	for oi, o := range sel.OrderBy {
		o := o
		// Alias / output column reference?
		if cr, ok := o.Expr.(*sqltext.ColumnRef); ok && cr.Table == "" {
			pos := -1
			for ci, n := range colNames {
				if strings.EqualFold(n, cr.Column) {
					pos = ci
					break
				}
			}
			if pos >= 0 {
				p := pos
				fns[oi] = func(i int) (types.Value, error) { return out[i][p], nil }
				continue
			}
		}
		// Positional: ORDER BY 2.
		if lit, ok := o.Expr.(*sqltext.Literal); ok && lit.Value.Kind() == types.KindInt {
			p := int(lit.Value.Int()) - 1
			if p < 0 || p >= len(colNames) {
				return fmt.Errorf("engine: ORDER BY position %d out of range", p+1)
			}
			fns[oi] = func(i int) (types.Value, error) { return out[i][p], nil }
			continue
		}
		// Source expression.
		expr := o.Expr
		agg := sqltext.HasAggregate(expr)
		fns[oi] = func(i int) (types.Value, error) {
			if i >= len(srcRows) {
				return types.Null, nil
			}
			if agg {
				return b.evalAgg(expr, []types.Row{srcRows[i]})
			}
			return b.eval(expr, srcRows[i])
		}
	}
	// Precompute keys.
	keys := make([][]types.Value, len(out))
	for i := range out {
		keys[i] = make([]types.Value, len(fns))
		for j, fn := range fns {
			v, err := fn(i)
			if err != nil {
				return err
			}
			keys[i][j] = v
		}
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, bIdx int) bool {
		for j := range fns {
			c, err := types.Compare(keys[idx[a]][j], keys[idx[bIdx]][j])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sel.OrderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	sorted := make([]types.Row, len(out))
	for i, p := range idx {
		sorted[i] = out[p]
	}
	copy(out, sorted)
	if len(srcRows) == len(out) {
		sortedSrc := make([]types.Row, len(srcRows))
		for i, p := range idx {
			sortedSrc[i] = srcRows[p]
		}
		copy(srcRows, sortedSrc)
	}
	return nil
}

// buildFrom materializes the FROM clause (with joins) into a relation and
// returns a binder over it. The WHERE clause is used for index fast paths
// on single-table scans.
func (e *Engine) buildFrom(sel *sqltext.Select, args []types.Value, overrides map[string][]types.Row) (*relation, *binder, error) {
	left, err := e.buildTableRef(*sel.From, args, overrides, sel)
	if err != nil {
		return nil, nil, err
	}
	for _, j := range sel.Joins {
		right, err := e.buildTableRef(j.Right, args, overrides, nil)
		if err != nil {
			return nil, nil, err
		}
		left, err = e.join(left, right, j, args, overrides)
		if err != nil {
			return nil, nil, err
		}
	}
	return left, newBinder(e, args, left, overrides), nil
}

// buildTableRef materializes one FROM entry. When sel is non-nil (single
// base table with no joins), WHERE-based index fast paths may prune rows.
func (e *Engine) buildTableRef(tr sqltext.TableRef, args []types.Value, overrides map[string][]types.Row, sel *sqltext.Select) (*relation, error) {
	if tr.Subquery != nil {
		res, err := e.evalSelectWith(tr.Subquery, args, overrides)
		if err != nil {
			return nil, err
		}
		qual := strings.ToLower(tr.Alias)
		rel := &relation{}
		for _, n := range res.Columns {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(n)})
		}
		rel.rows = res.Rows
		return rel, nil
	}
	name := tr.Table
	qual := strings.ToLower(tr.Alias)
	if qual == "" {
		qual = strings.ToLower(name)
	}

	// Virtual system tables (sys_metrics, sys_slow_queries, sys_sessions)
	// are computed on the fly and shadow the catalog.
	if vt := e.lookupVirtual(name); vt != nil {
		rel := &relation{}
		for _, c := range vt.cols {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: c})
		}
		rel.rows = vt.fn()
		e.countScanned(len(rel.rows))
		return rel, nil
	}

	// View resolution: the backing table holds the materialized rows.
	if v, ok := e.cat.View(name); ok {
		name = v.Backing
	}

	schema, ok := e.cat.Table(name)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", tr.Table)
	}
	rel := &relation{}
	for _, c := range schema.Columns {
		rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(c.Name)})
	}
	rel.cols = append(rel.cols,
		colMeta{qual: qual, name: catalog.SysTID, hidden: true},
		colMeta{qual: qual, name: catalog.SysCreated, hidden: true},
	)

	// IVM override: substitute rows (user columns only; system columns 0).
	if rows, ok := overrides[strings.ToLower(tr.Table)]; ok {
		for _, r := range rows {
			if len(r) != len(schema.Columns) {
				return nil, fmt.Errorf("engine: override row arity %d for %s (want %d)", len(r), tr.Table, len(schema.Columns))
			}
			full := make(types.Row, 0, len(r)+2)
			full = append(full, r...)
			full = append(full, types.NewInt(0), types.NewInt(0))
			rel.rows = append(rel.rows, full)
		}
		return rel, nil
	}

	tbl := e.store.Table(name)
	if tbl == nil {
		return nil, fmt.Errorf("engine: storage missing for table %q", name)
	}

	// Index fast path: single-table query with a point predicate.
	if sel != nil && len(sel.Joins) == 0 && sel.Where != nil {
		if tids, ok := e.fastPathTIDs(sel.Where, schema, tbl0{tbl}, qual, args); ok {
			for _, tid := range tids {
				if sr, found := tbl.Get(tid); found {
					full := make(types.Row, 0, len(sr.Values)+2)
					full = append(full, sr.Values...)
					full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
					rel.rows = append(rel.rows, full)
				}
			}
			e.countScanned(len(rel.rows))
			return rel, nil
		}
	}

	for _, sr := range tbl.Rows() {
		full := make(types.Row, 0, len(sr.Values)+2)
		full = append(full, sr.Values...)
		full = append(full, types.NewInt(sr.TID), types.NewInt(sr.Created))
		rel.rows = append(rel.rows, full)
	}
	e.countScanned(len(rel.rows))
	return rel, nil
}

// countScanned credits base-relation rows materialized for a statement.
func (e *Engine) countScanned(n int) {
	if n > 0 && e.reg.Enabled() {
		e.mRowsScanned.Add(int64(n))
	}
}

// tbl0 is a tiny indirection so fastPathTIDs stays testable without
// importing storage in its signature.
type tbl0 struct {
	t interface {
		LookupPK(types.Value) (int64, bool)
		HasPK() bool
		PKCol() int
	}
}

// fastPathTIDs recognizes point predicates usable for index access:
//
//	pk = <literal/param>         pk IN (<literals>)
//	_tid = <literal/param>       _tid IN (<literals>)
//
// possibly as the left arm of a top-level AND chain. It returns candidate
// tids (the full WHERE is still applied afterwards, so over-approximation
// by conjunct is safe — we only use a conjunct that *restricts* rows).
func (e *Engine) fastPathTIDs(where sqltext.Expr, schema *catalog.TableSchema, tw tbl0, qual string, args []types.Value) ([]int64, bool) {
	// Walk the top-level AND chain and try each conjunct.
	var conjuncts []sqltext.Expr
	var collect func(sqltext.Expr)
	collect = func(x sqltext.Expr) {
		if bin, ok := x.(*sqltext.Binary); ok && bin.Op == "AND" {
			collect(bin.L)
			collect(bin.R)
			return
		}
		conjuncts = append(conjuncts, x)
	}
	collect(where)

	lit := func(x sqltext.Expr) (types.Value, bool) {
		switch v := x.(type) {
		case *sqltext.Literal:
			return v.Value, true
		case *sqltext.Param:
			if v.Index < len(args) {
				return args[v.Index], true
			}
		}
		return types.Null, false
	}
	colMatches := func(cr *sqltext.ColumnRef, name string) bool {
		if !strings.EqualFold(cr.Column, name) {
			return false
		}
		return cr.Table == "" || strings.EqualFold(cr.Table, qual)
	}

	pkName := ""
	if tw.t.HasPK() {
		pkName = schema.Columns[tw.t.PKCol()].Name
	}

	for _, c := range conjuncts {
		switch x := c.(type) {
		case *sqltext.Binary:
			if x.Op != "=" {
				continue
			}
			cr, ok := x.L.(*sqltext.ColumnRef)
			val, okV := lit(x.R)
			if !ok || !okV {
				// try reversed
				cr, ok = x.R.(*sqltext.ColumnRef)
				val, okV = lit(x.L)
				if !ok || !okV {
					continue
				}
			}
			if val.IsNull() {
				return nil, true // col = NULL matches nothing
			}
			if colMatches(cr, catalog.SysTID) {
				tid, err := val.AsInt()
				if err != nil {
					continue
				}
				return []int64{tid}, true
			}
			if pkName != "" && colMatches(cr, pkName) {
				if tid, found := tw.t.LookupPK(val); found {
					return []int64{tid}, true
				}
				return nil, true
			}
		case *sqltext.InExpr:
			if x.Not || x.Query != nil {
				continue
			}
			cr, ok := x.X.(*sqltext.ColumnRef)
			if !ok {
				continue
			}
			isTID := colMatches(cr, catalog.SysTID)
			isPK := pkName != "" && colMatches(cr, pkName)
			if !isTID && !isPK {
				continue
			}
			var tids []int64
			usable := true
			for _, le := range x.List {
				v, okV := lit(le)
				if !okV {
					usable = false
					break
				}
				if v.IsNull() {
					continue
				}
				if isTID {
					tid, err := v.AsInt()
					if err != nil {
						usable = false
						break
					}
					tids = append(tids, tid)
				} else {
					if tid, found := tw.t.LookupPK(v); found {
						tids = append(tids, tid)
					}
				}
			}
			if usable {
				return tids, true
			}
		}
	}
	return nil, false
}

// join combines two relations according to the join clause.
func (e *Engine) join(left, right *relation, jc sqltext.JoinClause, args []types.Value, overrides map[string][]types.Row) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, left.cols...), right.cols...)}

	concat := func(l, r types.Row) types.Row {
		row := make(types.Row, 0, len(l)+len(r))
		row = append(row, l...)
		return append(row, r...)
	}

	if jc.Kind == "CROSS" {
		for _, lr := range left.rows {
			for _, rr := range right.rows {
				out.rows = append(out.rows, concat(lr, rr))
			}
		}
		return out, nil
	}

	b := newBinder(e, args, out, overrides)

	// Hash join fast path: ON is a single equality between one column of
	// each side.
	if eq, ok := jc.On.(*sqltext.Binary); ok && eq.Op == "=" {
		lcr, lok := eq.L.(*sqltext.ColumnRef)
		rcr, rok := eq.R.(*sqltext.ColumnRef)
		if lok && rok {
			lb := newBinder(e, args, left, overrides)
			rb := newBinder(e, args, right, overrides)
			li, lerr := lb.resolve(lcr)
			ri, rerr := rb.resolve(rcr)
			if lerr != nil || rerr != nil {
				// Maybe the refs are swapped relative to the sides.
				li2, lerr2 := lb.resolve(rcr)
				ri2, rerr2 := rb.resolve(lcr)
				if lerr2 == nil && rerr2 == nil {
					li, ri, lerr, rerr = li2, ri2, nil, nil
				}
			}
			if lerr == nil && rerr == nil {
				return hashJoin(left, right, li, ri, jc.Kind == "LEFT", concat, out), nil
			}
		}
	}

	// General nested-loop join.
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			row := concat(lr, rr)
			ok, err := b.evalBool(jc.On, row)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				out.rows = append(out.rows, row)
			}
		}
		if !matched && jc.Kind == "LEFT" {
			pad := make(types.Row, len(right.cols))
			out.rows = append(out.rows, concat(lr, pad))
		}
	}
	return out, nil
}

func hashJoin(left, right *relation, li, ri int, leftOuter bool, concat func(l, r types.Row) types.Row, out *relation) *relation {
	idx := make(map[string][]int, len(right.rows))
	for i, rr := range right.rows {
		v := rr[ri]
		if v.IsNull() {
			continue
		}
		k := v.HashKey()
		idx[k] = append(idx[k], i)
	}
	for _, lr := range left.rows {
		v := lr[li]
		var matches []int
		if !v.IsNull() {
			matches = idx[v.HashKey()]
		}
		if len(matches) == 0 {
			if leftOuter {
				pad := make(types.Row, len(right.cols))
				out.rows = append(out.rows, concat(lr, pad))
			}
			continue
		}
		for _, m := range matches {
			out.rows = append(out.rows, concat(lr, right.rows[m]))
		}
	}
	return out
}
