package engine

import (
	"fmt"
	"testing"

	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// newTestDB returns an in-memory engine.
func newTestDB(t testing.TB) *Engine {
	t.Helper()
	st, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func mustExec(t testing.TB, e *Engine, sql string, args ...types.Value) *Result {
	t.Helper()
	res, err := e.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func seedUsers(t testing.TB, e *Engine) {
	t.Helper()
	mustExec(t, e, "CREATE TABLE users (id INT PRIMARY KEY, name STRING NOT NULL, age INT, city STRING)")
	rows := []string{
		"(1, 'ana', 30, 'paris')",
		"(2, 'bob', 25, 'lyon')",
		"(3, 'carol', 35, 'paris')",
		"(4, 'dan', NULL, 'nice')",
		"(5, 'eve', 28, 'paris')",
	}
	for _, r := range rows {
		mustExec(t, e, "INSERT INTO users (id, name, age, city) VALUES "+r)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT id, name FROM users ORDER BY id")
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Columns[0] != "id" || res.Columns[1] != "name" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if res.Rows[0][1].Str() != "ana" || res.Rows[4][1].Str() != "eve" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestSelectWhereAndProjection(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT name FROM users WHERE city = 'paris' AND age > 28 ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "ana" || res.Rows[1][0].Str() != "carol" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestSelectExpressionsAndAliases(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT id * 10 AS tens, UPPER(name) AS nm FROM users WHERE id = 2")
	if res.Columns[0] != "tens" || res.Columns[1] != "nm" {
		t.Fatalf("cols: %v", res.Columns)
	}
	if res.Rows[0][0].Int() != 20 || res.Rows[0][1].Str() != "BOB" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestSelectNoFrom(t *testing.T) {
	e := newTestDB(t)
	res := mustExec(t, e, "SELECT 1 + 2 AS x, 'hi' AS s")
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].Str() != "hi" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestNullPredicates(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT name FROM users WHERE age IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "dan" {
		t.Fatalf("%v", res.Rows)
	}
	// Comparison with NULL is false, so dan is excluded from both sides.
	res = mustExec(t, e, "SELECT COUNT(*) FROM users WHERE age > 0 OR age <= 0")
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT COUNT(*), COUNT(age), SUM(age), AVG(age), MIN(age), MAX(age) FROM users")
	r := res.Rows[0]
	if r[0].Int() != 5 || r[1].Int() != 4 || r[2].Int() != 118 {
		t.Fatalf("%v", r)
	}
	if r[3].Float() != 29.5 || r[4].Int() != 25 || r[5].Int() != 35 {
		t.Fatalf("%v", r)
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	res := mustExec(t, e, "SELECT COUNT(*), SUM(a) FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("%v", res.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT city, COUNT(*) AS n, AVG(age) FROM users GROUP BY city HAVING COUNT(*) > 1 ORDER BY n DESC")
	if len(res.Rows) != 1 {
		t.Fatalf("%v", res.Rows)
	}
	if res.Rows[0][0].Str() != "paris" || res.Rows[0][1].Int() != 3 || res.Rows[0][2].Float() != 31.0 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT COUNT(DISTINCT city) FROM users")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT DISTINCT city FROM users ORDER BY city")
	if len(res.Rows) != 3 || res.Rows[0][0].Str() != "lyon" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT id FROM users ORDER BY age DESC LIMIT 2 OFFSET 1")
	// ages: 35(carol,3), 30(ana,1), 28(eve,5), 25(bob,2), NULL(dan,4 sorts last desc? NULL first asc → last desc)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 5 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestOrderByAliasAndPosition(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT name, age * 2 AS dbl FROM users WHERE age IS NOT NULL ORDER BY dbl")
	if res.Rows[0][0].Str() != "bob" {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT name, age FROM users WHERE age IS NOT NULL ORDER BY 2 DESC")
	if res.Rows[0][0].Str() != "carol" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestJoins(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE orders (oid INT PRIMARY KEY, uid INT, total FLOAT)")
	for i, o := range []string{"(1, 1, 10.5)", "(2, 1, 20.0)", "(3, 2, 5.0)", "(4, 99, 7.0)"} {
		_ = i
		mustExec(t, e, "INSERT INTO orders VALUES "+o)
	}
	// INNER (hash join path).
	res := mustExec(t, e, "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.uid ORDER BY o.total")
	if len(res.Rows) != 3 {
		t.Fatalf("%v", res.Rows)
	}
	// LEFT join pads with NULLs.
	res = mustExec(t, e, "SELECT u.name, o.oid FROM users u LEFT JOIN orders o ON u.id = o.uid WHERE o.oid IS NULL ORDER BY u.name")
	if len(res.Rows) != 3 { // carol, dan, eve have no orders
		t.Fatalf("%v", res.Rows)
	}
	// Cartesian product (paper's algebra).
	res = mustExec(t, e, "SELECT COUNT(*) FROM users, orders")
	if res.Rows[0][0].Int() != 20 {
		t.Fatalf("%v", res.Rows)
	}
	// Join + aggregation.
	res = mustExec(t, e, "SELECT u.name, SUM(o.total) AS s FROM users u JOIN orders o ON u.id = o.uid GROUP BY u.name ORDER BY s DESC")
	if res.Rows[0][0].Str() != "ana" || res.Rows[0][1].Float() != 30.5 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestSubqueries(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT name FROM users WHERE id IN (SELECT id FROM users WHERE city = 'paris') ORDER BY name")
	if len(res.Rows) != 3 {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT name FROM users WHERE id NOT IN (SELECT id FROM users WHERE city = 'paris') ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT (SELECT COUNT(*) FROM users) AS n")
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("%v", res.Rows)
	}
	// FROM subquery.
	res = mustExec(t, e, "SELECT s.city, s.n FROM (SELECT city, COUNT(*) AS n FROM users GROUP BY city) AS s WHERE s.n > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "paris" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestSystemColumns(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT _tid, _created, id FROM users ORDER BY _created")
	if len(res.Rows) != 5 {
		t.Fatalf("%v", res.Rows)
	}
	// _created is monotonic with insertion order.
	for i := 1; i < 5; i++ {
		if res.Rows[i][1].Int() <= res.Rows[i-1][1].Int() {
			t.Fatalf("created not monotonic: %v", res.Rows)
		}
	}
	// System columns are excluded from *.
	res = mustExec(t, e, "SELECT * FROM users LIMIT 1")
	if len(res.Columns) != 4 {
		t.Fatalf("star leaked system columns: %v", res.Columns)
	}
}

func TestUpdateDelete(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "UPDATE users SET age = age + 1 WHERE city = 'paris'")
	if res.Affected != 3 {
		t.Fatalf("affected: %d", res.Affected)
	}
	res = mustExec(t, e, "SELECT SUM(age) FROM users WHERE city = 'paris'")
	if res.Rows[0][0].Int() != 96 {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "DELETE FROM users WHERE age IS NULL")
	if res.Affected != 1 {
		t.Fatalf("affected: %d", res.Affected)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM users")
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestParams(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT name FROM users WHERE id = ?", types.NewInt(3))
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "carol" {
		t.Fatalf("%v", res.Rows)
	}
	mustExec(t, e, "INSERT INTO users (id, name, age, city) VALUES (?, ?, ?, ?)",
		types.NewInt(6), types.NewString("frank"), types.NewInt(40), types.NewString("lille"))
	res = mustExec(t, e, "SELECT COUNT(*) FROM users")
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("%v", res.Rows)
	}
	if _, err := e.Exec("SELECT * FROM users WHERE id = ?"); err == nil {
		t.Error("missing parameter must error")
	}
}

func TestConstraintViolations(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	if _, err := e.Exec("INSERT INTO users (id, name) VALUES (1, 'dup')"); err == nil {
		t.Error("duplicate pk must fail")
	}
	if _, err := e.Exec("INSERT INTO users (id, name) VALUES (10, NULL)"); err == nil {
		t.Error("NOT NULL must fail")
	}
	// Type coercion: string '42' into INT column works; 'xyz' fails.
	mustExec(t, e, "INSERT INTO users (id, name, age) VALUES (11, 'x', '42')")
	if _, err := e.Exec("INSERT INTO users (id, name, age) VALUES (12, 'y', 'xyz')"); err == nil {
		t.Error("bad coercion must fail")
	}
}

func TestInsertSelect(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE parisians (id INT PRIMARY KEY, name STRING)")
	res := mustExec(t, e, "INSERT INTO parisians SELECT id, name FROM users WHERE city = 'paris'")
	if res.Affected != 3 || len(res.TIDs) != 3 {
		t.Fatalf("%+v", res)
	}
}

func TestTransactions(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "INSERT INTO users (id, name) VALUES (10, 'tmp')")
	mustExec(t, e, "UPDATE users SET name = 'ANA' WHERE id = 1")
	mustExec(t, e, "DELETE FROM users WHERE id = 2")
	mustExec(t, e, "ROLLBACK")
	res := mustExec(t, e, "SELECT COUNT(*) FROM users")
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("count after rollback: %v", res.Rows)
	}
	res = mustExec(t, e, "SELECT name FROM users WHERE id = 1")
	if res.Rows[0][0].Str() != "ana" {
		t.Fatalf("update not rolled back: %v", res.Rows)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM users WHERE id = 2")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("delete not rolled back")
	}

	// Commit keeps changes.
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "INSERT INTO users (id, name) VALUES (10, 'kept')")
	mustExec(t, e, "COMMIT")
	res = mustExec(t, e, "SELECT COUNT(*) FROM users")
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("commit lost rows")
	}

	if _, err := e.Exec("COMMIT"); err == nil {
		t.Error("COMMIT without BEGIN must fail")
	}
	if _, err := e.Exec("ROLLBACK"); err == nil {
		t.Error("ROLLBACK without BEGIN must fail")
	}
}

func TestTriggersStatementLevel(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	var events []ChangeEvent
	e.RegisterHandler("audit", func(ev ChangeEvent) { events = append(events, ev) })
	mustExec(t, e, "CREATE TRIGGER audit_ins AFTER INSERT ON users CALL 'audit'")
	mustExec(t, e, "CREATE TRIGGER audit_del AFTER DELETE ON users CALL 'audit'")

	mustExec(t, e, "INSERT INTO users (id, name) VALUES (10, 'x'), (11, 'y')")
	if len(events) != 1 {
		t.Fatalf("statement-level trigger fired %d times", len(events))
	}
	if events[0].Op != OpInsert || len(events[0].TIDs) != 2 {
		t.Fatalf("%+v", events[0])
	}
	mustExec(t, e, "UPDATE users SET city = 'x' WHERE id = 10") // no UPDATE trigger registered
	if len(events) != 1 {
		t.Fatal("update fired unregistered trigger")
	}
	mustExec(t, e, "DELETE FROM users WHERE id IN (10, 11)")
	if len(events) != 2 || events[1].Op != OpDelete || len(events[1].OldRows) != 2 {
		t.Fatalf("%+v", events)
	}
}

func TestTriggersDeferredUntilCommit(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	var fired int
	e.Observe(func(ev ChangeEvent) { fired++ })
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "INSERT INTO users (id, name) VALUES (10, 'x')")
	if fired != 0 {
		t.Fatal("trigger fired before commit")
	}
	mustExec(t, e, "COMMIT")
	if fired != 1 {
		t.Fatalf("trigger fired %d times after commit", fired)
	}
	// Rolled-back statements never fire.
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "INSERT INTO users (id, name) VALUES (11, 'y')")
	mustExec(t, e, "ROLLBACK")
	if fired != 1 {
		t.Fatal("rolled-back statement fired trigger")
	}
}

func TestTriggerReentrancy(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE src (a INT)")
	mustExec(t, e, "CREATE TABLE log (n INT)")
	e.RegisterHandler("relay", func(ev ChangeEvent) {
		// Re-entering the engine from a trigger must not deadlock.
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO log VALUES (%d)", len(ev.TIDs))); err != nil {
			t.Errorf("re-entrant exec: %v", err)
		}
	})
	mustExec(t, e, "CREATE TRIGGER relay_t AFTER INSERT ON src CALL 'relay'")
	mustExec(t, e, "INSERT INTO src VALUES (1), (2), (3)")
	res := mustExec(t, e, "SELECT n FROM log")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestIndexFastPath(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	// PK point query.
	res := mustExec(t, e, "SELECT name FROM users WHERE id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "carol" {
		t.Fatalf("%v", res.Rows)
	}
	// _tid IN (...) — the Figure 8 "extract new nodes" query shape.
	all := mustExec(t, e, "SELECT _tid FROM users ORDER BY _tid")
	t1 := all.Rows[0][0].Int()
	t2 := all.Rows[2][0].Int()
	res = mustExec(t, e, fmt.Sprintf("SELECT id FROM users WHERE _tid IN (%d, %d) ORDER BY id", t1, t2))
	if len(res.Rows) != 2 {
		t.Fatalf("%v", res.Rows)
	}
	// Fast path must not over-restrict when combined with other conjuncts.
	res = mustExec(t, e, "SELECT name FROM users WHERE id = 3 AND city = 'nowhere'")
	if len(res.Rows) != 0 {
		t.Fatalf("%v", res.Rows)
	}
	// PK = NULL matches nothing.
	res = mustExec(t, e, "SELECT name FROM users WHERE id = NULL")
	if len(res.Rows) != 0 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestLikeAndFunctions(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	res := mustExec(t, e, "SELECT name FROM users WHERE name LIKE 'a%'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "ana" {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT name FROM users WHERE name LIKE '_o_'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "bob" {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT COALESCE(age, 0), LENGTH(name), SUBSTR(name, 1, 2) FROM users WHERE id = 4")
	if res.Rows[0][0].Int() != 0 || res.Rows[0][1].Int() != 3 || res.Rows[0][2].Str() != "da" {
		t.Fatalf("%v", res.Rows)
	}
	res = mustExec(t, e, "SELECT CASE WHEN age >= 30 THEN 'senior' ELSE 'junior' END FROM users WHERE id = 1")
	if res.Rows[0][0].Str() != "senior" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	bad := []string{
		"SELECT nope FROM users",
		"SELECT * FROM missing",
		"SELECT u.x FROM users u",
		"INSERT INTO users (nope) VALUES (1)",
		"UPDATE users SET nope = 1",
		"DELETE FROM missing",
		"CREATE TABLE users (id INT)",
		"SELECT name FROM users WHERE age = 'x' AND name = 1", // cross-kind compare
	}
	for _, sql := range bad {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
	if _, err := e.Query("INSERT INTO users (id, name) VALUES (100, 'q')"); err == nil {
		t.Error("Query must reject non-SELECT")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (x INT)")
	mustExec(t, e, "CREATE TABLE b (x INT)")
	mustExec(t, e, "INSERT INTO a VALUES (1)")
	mustExec(t, e, "INSERT INTO b VALUES (2)")
	if _, err := e.Exec("SELECT x FROM a, b"); err == nil {
		t.Error("ambiguous column must error")
	}
	res := mustExec(t, e, "SELECT a.x, b.x FROM a, b")
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 2 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestExecScript(t *testing.T) {
	e := newTestDB(t)
	res, err := e.ExecScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2);
		SELECT SUM(a) FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestDurableEngineRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (a INT PRIMARY KEY, b STRING)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	mustExec(t, e, "CREATE TRIGGER tg AFTER INSERT ON t CALL 'h'")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(st2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res := mustExec(t, e2, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("%v", res.Rows)
	}
	// Trigger definition survives restart; attach a handler and fire it.
	var fired bool
	e2.RegisterHandler("h", func(ChangeEvent) { fired = true })
	mustExec(t, e2, "INSERT INTO t VALUES (3, 'z')")
	if !fired {
		t.Error("restored trigger did not fire")
	}
}

func TestConcurrentReaders(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := e.Query("SELECT COUNT(*) FROM users WHERE age > 20"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for i := 0; i < 3; i++ {
		go func() {
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
					if _, err := e.Query("SELECT COUNT(*) FROM t"); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	for j := 0; j < 200; j++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d)", j))
	}
	close(stop)
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, e, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 200 {
		t.Fatalf("%v", res.Rows)
	}
}
