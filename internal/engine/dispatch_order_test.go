package engine

import (
	"fmt"
	"sync"
	"testing"

	"ediflow/internal/storage"
)

// TestDispatchGlobalSeqOrder: with concurrent autocommit writers, change
// events must reach observers (and batch observers) in global Seq order —
// not merely ordered within one drain. Regression for the review finding
// where a committer descheduled between releasing the engine lock and
// enqueueing its events could deliver seq N after seq N+1 had fully
// drained, making the notifier insert ef_notification rows out of order
// and permanently hiding them from "WHERE seq_no > last_seq" mirrors.
// The durable SyncCommit store makes the post-lock durability wait real,
// so committers genuinely interleave around the shared fsync.
func TestDispatchGlobalSeqOrder(t *testing.T) {
	st, err := storage.OpenWith(t.TempDir(), storage.Options{Sync: storage.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, "CREATE TABLE evts (id INT PRIMARY KEY, w INT)")

	var mu sync.Mutex
	var perEvent []int64
	var viaBatches []int64
	e.Observe(func(ev ChangeEvent) {
		mu.Lock()
		perEvent = append(perEvent, ev.Seq)
		mu.Unlock()
	})
	e.ObserveBatch(func(evs []ChangeEvent) {
		mu.Lock()
		for _, ev := range evs {
			viaBatches = append(viaBatches, ev.Seq)
		}
		mu.Unlock()
	})

	const writers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sql := fmt.Sprintf("INSERT INTO evts VALUES (%d, %d)", w*per+i, w)
				if _, err := e.Exec(sql); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every Exec returns only after its settle; the last active
	// dispatcher drained all settled entries before returning, so
	// delivery is complete here.

	check := func(name string, seqs []int64) {
		t.Helper()
		if len(seqs) != writers*per {
			t.Fatalf("%s: delivered %d events, want %d", name, len(seqs), writers*per)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("%s: seq %d delivered at position %d after seq %d — events out of global seq order",
					name, seqs[i], i, seqs[i-1])
			}
		}
	}
	check("per-event observer", perEvent)
	check("batch observer", viaBatches)
}

// TestDispatchHoldsBackAbortedEntries: an entry whose durability wait
// failed must be skipped by the dispatcher without blocking delivery of
// later durable entries (events held back on flush error, PR-4
// contract). Exercised indirectly here via the in-memory fast path plus
// a direct settle of a synthetic aborted entry ahead of a durable one.
func TestDispatchHoldsBackAbortedEntries(t *testing.T) {
	e := newTestDB(t)
	var got []int64
	e.Observe(func(ev ChangeEvent) { got = append(got, ev.Seq) })

	e.mu.Lock()
	bad := e.enqueueLocked([]ChangeEvent{{Seq: 1, Table: "t", Op: OpInsert}})
	good := e.enqueueLocked([]ChangeEvent{{Seq: 2, Table: "t", Op: OpInsert}})
	e.mu.Unlock()

	// The later entry resolves first: nothing may deliver while the
	// unresolved head blocks the queue.
	e.settle(good, true)
	if len(got) != 0 {
		t.Fatalf("delivered %v before the queue head resolved", got)
	}
	// The head aborts: it must be dropped and the durable successor
	// delivered.
	e.settle(bad, false)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("delivered %v, want exactly the durable entry's seq [2]", got)
	}
}
