package engine

import (
	"fmt"
	"strings"

	"ediflow/internal/catalog"
	"ediflow/internal/ivm"
	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

// viewState binds a catalog view to its incremental maintainer and
// backing storage table. rowIndex is a multiset index from row-value key
// to the backing tids holding that value, so delta removals are O(1)
// instead of scanning the backing table.
type viewState struct {
	def      *catalog.View
	m        *ivm.Maintainer
	rowIndex map[string][]int64
}

func (v *viewState) indexAdd(row types.Row, tid int64) {
	k := types.RowKey(row)
	v.rowIndex[k] = append(v.rowIndex[k], tid)
}

// indexTake removes and returns one tid holding the given row value.
func (v *viewState) indexTake(row types.Row) (int64, bool) {
	k := types.RowKey(row)
	tids := v.rowIndex[k]
	if len(tids) == 0 {
		return 0, false
	}
	tid := tids[len(tids)-1]
	if len(tids) == 1 {
		delete(v.rowIndex, k)
	} else {
		v.rowIndex[k] = tids[:len(tids)-1]
	}
	return tid, true
}

// viewSet tracks every materialized view and routes base-table deltas to
// the dependent maintainers.
type viewSet struct {
	e     *Engine
	views map[string]*viewState // lower-cased view name
}

func newViewSet(e *Engine) *viewSet {
	return &viewSet{e: e, views: map[string]*viewState{}}
}

func (vs *viewSet) dependents(table string) []*viewState {
	var out []*viewState
	for _, v := range vs.views {
		if v.m.DependsOn(table) {
			out = append(out, v)
		}
	}
	return out
}

const viewBackingPrefix = "__view_"

// execCreateView creates a materialized view: classify with ivm, create
// the backing table, compute initial contents, persist the DDL.
func (e *Engine) execCreateView(s *sqltext.CreateView) (*Result, []ChangeEvent, error) {
	if e.inTxn.Load() {
		return nil, nil, fmt.Errorf("engine: CREATE VIEW inside a transaction is not supported")
	}
	if err := e.createView(s, true); err != nil {
		return nil, nil, err
	}
	return &Result{}, nil, nil
}

// restoreView re-creates view state on open; the backing table already
// exists in the store, so only the maintainer state is rebuilt.
func (e *Engine) restoreView(s *sqltext.CreateView) error {
	return e.createView(s, false)
}

func (e *Engine) createView(s *sqltext.CreateView, fresh bool) error {
	name := s.Name
	if _, dup := e.cat.View(name); dup {
		return fmt.Errorf("engine: view %q already exists", name)
	}
	if _, dup := e.cat.Table(name); dup {
		return fmt.Errorf("engine: %q already names a table", name)
	}
	m, err := ivm.New(name, s.Query, e)
	if err != nil {
		return err
	}
	// Views over views are rejected: incremental deltas only flow from
	// base tables.
	for _, t := range m.Tables() {
		if _, isView := e.cat.View(t); isView {
			return fmt.Errorf("engine: view %q may not reference view %q", name, t)
		}
		if _, ok := e.cat.Table(t); !ok {
			return fmt.Errorf("engine: view %q references unknown table %q", name, t)
		}
	}

	backing := viewBackingPrefix + strings.ToLower(name)
	def := &catalog.View{Name: name, Query: s.Query, Backing: backing}

	if fresh {
		// Infer output column names and create the backing table.
		cols, err := e.viewColumns(s.Query)
		if err != nil {
			return err
		}
		schema := &catalog.TableSchema{Name: backing, Columns: cols}
		if err := e.cat.AddTable(schema); err != nil {
			return err
		}
		if err := e.store.CreateTable(schema); err != nil {
			e.cat.DropTable(backing)
			return err
		}
	} else if _, ok := e.cat.Table(backing); !ok {
		return fmt.Errorf("engine: backing table for view %q missing", name)
	}

	if err := e.cat.AddView(def); err != nil {
		return err
	}

	// Compute initial contents. On restore the backing table already holds
	// the materialized rows, but aggregate maintainers must rebuild their
	// group state; re-materializing from scratch keeps both consistent.
	rows, err := m.Init()
	if err != nil {
		e.cat.DropView(name)
		return err
	}
	// Reset backing contents to exactly `rows`.
	bt := e.store.Table(backing)
	var stale []int64
	for _, r := range bt.Rows() {
		stale = append(stale, r.TID)
	}
	for _, tid := range stale {
		if _, err := e.store.Delete(backing, tid); err != nil {
			return err
		}
	}
	vs := &viewState{def: def, m: m, rowIndex: map[string][]int64{}}
	for _, r := range rows {
		tid, _, err := e.store.Insert(backing, r)
		if err != nil {
			return err
		}
		vs.indexAdd(r, tid)
	}

	e.views.views[strings.ToLower(name)] = vs
	if fresh {
		if err := e.store.PutMeta("view", name, s.String()); err != nil {
			return err
		}
	}
	return nil
}

// execDropView removes a view: catalog entry, maintainer, backing table
// and the persisted DDL.
func (e *Engine) execDropView(s *sqltext.DropView) (*Result, []ChangeEvent, error) {
	if e.inTxn.Load() {
		return nil, nil, fmt.Errorf("engine: DROP VIEW inside a transaction is not supported")
	}
	v, ok := e.cat.View(s.Name)
	if !ok {
		if s.IfExists {
			return &Result{}, nil, nil
		}
		return nil, nil, fmt.Errorf("engine: no such view %q", s.Name)
	}
	if err := e.cat.DropView(s.Name); err != nil {
		return nil, nil, err
	}
	delete(e.views.views, strings.ToLower(s.Name))
	if err := e.cat.DropTable(v.Backing); err != nil {
		return nil, nil, err
	}
	if err := e.store.DropTable(v.Backing); err != nil {
		return nil, nil, err
	}
	if err := e.store.DeleteMeta("view", s.Name); err != nil {
		return nil, nil, err
	}
	return &Result{}, nil, nil
}

// viewColumns infers backing-table columns (names and advisory types) for
// a view query.
func (e *Engine) viewColumns(q *sqltext.Select) ([]catalog.Column, error) {
	// Build the source relation's column metadata without materializing
	// rows: reuse buildTableRef against empty overrides is wasteful; here
	// we only need names, so expand stars against catalog schemas.
	var cols []catalog.Column
	seen := map[string]bool{}
	addCol := func(name string, kind types.Kind) error {
		n := strings.ToLower(name)
		if seen[n] {
			return fmt.Errorf("engine: duplicate view column %q (use AS aliases)", name)
		}
		seen[n] = true
		cols = append(cols, catalog.Column{Name: n, Type: kind})
		return nil
	}
	tableSchemas := map[string]*catalog.TableSchema{}
	addTable := func(tr sqltext.TableRef) error {
		if tr.Subquery != nil {
			return fmt.Errorf("engine: view FROM subquery unsupported")
		}
		s, ok := e.cat.Table(tr.Table)
		if !ok {
			return fmt.Errorf("engine: view references unknown table %q", tr.Table)
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Table
		}
		tableSchemas[strings.ToLower(alias)] = s
		return nil
	}
	if q.From != nil {
		if err := addTable(*q.From); err != nil {
			return nil, err
		}
		for _, j := range q.Joins {
			if err := addTable(j.Right); err != nil {
				return nil, err
			}
		}
	}
	inferKind := func(ex sqltext.Expr) types.Kind {
		switch x := ex.(type) {
		case *sqltext.Literal:
			return x.Value.Kind()
		case *sqltext.ColumnRef:
			if x.Table != "" {
				if s, ok := tableSchemas[strings.ToLower(x.Table)]; ok {
					if p := s.ColIndex(x.Column); p >= 0 {
						return s.Columns[p].Type
					}
				}
				return types.KindString
			}
			for _, s := range tableSchemas {
				if p := s.ColIndex(x.Column); p >= 0 {
					return s.Columns[p].Type
				}
			}
			return types.KindString
		case *sqltext.FuncCall:
			switch strings.ToUpper(x.Name) {
			case "COUNT":
				return types.KindInt
			case "AVG":
				return types.KindFloat
			case "SUM", "MIN", "MAX":
				if len(x.Args) == 1 {
					// recurse on the argument
					if cr, ok := x.Args[0].(*sqltext.ColumnRef); ok {
						for _, s := range tableSchemas {
							if p := s.ColIndex(cr.Column); p >= 0 {
								return s.Columns[p].Type
							}
						}
					}
				}
				return types.KindFloat
			}
			return types.KindString
		case *sqltext.Binary:
			return types.KindFloat
		}
		return types.KindString
	}
	for _, it := range q.Items {
		if it.Star {
			qual := strings.ToLower(it.Table)
			matched := false
			for alias, s := range tableSchemas {
				if qual != "" && alias != qual {
					continue
				}
				matched = true
				for _, c := range s.Columns {
					if err := addCol(c.Name, c.Type); err != nil {
						return nil, err
					}
				}
			}
			if !matched {
				return nil, fmt.Errorf("engine: view * expansion failed for %q", it.Table)
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sqltext.ColumnRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("col%d", len(cols)+1)
			}
		}
		if err := addCol(name, inferKind(it.Expr)); err != nil {
			return nil, err
		}
	}
	return cols, nil
}

// applyDelta routes a base-table change to every dependent view, applies
// the computed deltas to the backing tables, and returns view-level change
// events (so the notification layer covers views too).
func (vs *viewSet) applyDelta(table string, inserted, deleted []types.Row) ([]ChangeEvent, error) {
	var events []ChangeEvent
	for _, v := range vs.views {
		if !v.m.DependsOn(table) {
			continue
		}
		adds, removes, err := v.m.Delta(table, inserted, deleted)
		if err != nil {
			return nil, fmt.Errorf("engine: maintaining view %s: %w", v.def.Name, err)
		}
		// Net out view rows that are both removed and re-added by the same
		// batch (an update leaving some output rows unchanged): no backing
		// churn, no event rows, and the mirror never sees a phantom flap.
		adds, removes, _ = ivm.NetDelta(adds, removes)
		if len(adds) == 0 && len(removes) == 0 {
			continue
		}
		ev := ChangeEvent{Table: v.def.Name, Op: OpUpdate}
		for _, rm := range removes {
			// Remove one matching row per delta row (multiset semantics);
			// the row index finds a victim tid in O(1).
			tid, found := v.indexTake(rm)
			if !found {
				return nil, fmt.Errorf("engine: view %s: stale delta (row to remove not found)", v.def.Name)
			}
			if _, err := vs.e.store.Delete(v.def.Backing, tid); err != nil {
				return nil, err
			}
			ev.TIDs = append(ev.TIDs, tid)
			ev.OldRows = append(ev.OldRows, rm)
		}
		for _, add := range adds {
			tid, _, err := vs.e.store.Insert(v.def.Backing, add)
			if err != nil {
				return nil, err
			}
			v.indexAdd(add, tid)
			ev.TIDs = append(ev.TIDs, tid)
			ev.Rows = append(ev.Rows, add)
		}
		vs.e.seq++
		ev.Seq = vs.e.seq
		events = append(events, ev)
	}
	return events, nil
}
