package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ediflow/internal/storage"
	"ediflow/internal/types"
)

func rowsToStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// assertViewMatchesQuery checks that the materialized view contents equal a
// fresh evaluation of its defining query.
func assertViewMatchesQuery(t *testing.T, e *Engine, view, query string) {
	t.Helper()
	got := mustExec(t, e, "SELECT * FROM "+view)
	want := mustExec(t, e, query)
	g := rowsToStrings(got.Rows)
	w := rowsToStrings(want.Rows)
	if len(g) != len(w) {
		t.Fatalf("view %s: %d rows, recompute has %d\nview: %v\nwant: %v", view, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("view %s differs at %d: %q vs %q", view, i, g[i], w[i])
		}
	}
}

func TestViewSelectProject(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE MATERIALIZED VIEW parisians AS SELECT id, name FROM users WHERE city = 'paris'")
	assertViewMatchesQuery(t, e, "parisians", "SELECT id, name FROM users WHERE city = 'paris'")

	// Inserts propagate.
	mustExec(t, e, "INSERT INTO users (id, name, age, city) VALUES (10, 'zoe', 22, 'paris'), (11, 'yan', 23, 'lyon')")
	assertViewMatchesQuery(t, e, "parisians", "SELECT id, name FROM users WHERE city = 'paris'")

	// Deletes propagate.
	mustExec(t, e, "DELETE FROM users WHERE id = 1")
	assertViewMatchesQuery(t, e, "parisians", "SELECT id, name FROM users WHERE city = 'paris'")

	// Updates propagate (city change moves rows in/out of the view).
	mustExec(t, e, "UPDATE users SET city = 'paris' WHERE id = 2")
	mustExec(t, e, "UPDATE users SET city = 'lyon' WHERE id = 3")
	assertViewMatchesQuery(t, e, "parisians", "SELECT id, name FROM users WHERE city = 'paris'")
}

func TestViewJoin(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE orders (oid INT PRIMARY KEY, uid INT, total FLOAT)")
	mustExec(t, e, "INSERT INTO orders VALUES (1, 1, 10.0), (2, 2, 20.0)")
	mustExec(t, e, "CREATE MATERIALIZED VIEW uorders AS SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.uid")
	q := "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.uid"
	assertViewMatchesQuery(t, e, "uorders", q)

	// Delta on either side.
	mustExec(t, e, "INSERT INTO orders VALUES (3, 3, 30.0), (4, 1, 40.0)")
	assertViewMatchesQuery(t, e, "uorders", q)
	mustExec(t, e, "INSERT INTO users (id, name) VALUES (20, 'newbie')")
	assertViewMatchesQuery(t, e, "uorders", q)
	mustExec(t, e, "DELETE FROM orders WHERE oid = 1")
	assertViewMatchesQuery(t, e, "uorders", q)
	mustExec(t, e, "DELETE FROM users WHERE id = 2")
	assertViewMatchesQuery(t, e, "uorders", q)
	mustExec(t, e, "UPDATE orders SET total = 99.0 WHERE oid = 3")
	assertViewMatchesQuery(t, e, "uorders", q)
}

func TestViewAggregate(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE MATERIALIZED VIEW bycity AS SELECT city, COUNT(*) AS n, SUM(age) AS total, AVG(age) AS mean, MIN(age) AS lo, MAX(age) AS hi FROM users GROUP BY city")
	q := "SELECT city, COUNT(*), SUM(age), AVG(age), MIN(age), MAX(age) FROM users GROUP BY city"
	assertViewMatchesQuery(t, e, "bycity", q)

	mustExec(t, e, "INSERT INTO users (id, name, age, city) VALUES (10, 'zoe', 22, 'paris')")
	assertViewMatchesQuery(t, e, "bycity", q)

	// Delete the MIN of a group: forces the extreme recompute path.
	mustExec(t, e, "DELETE FROM users WHERE id = 10")
	assertViewMatchesQuery(t, e, "bycity", q)

	// Delete an entire group.
	mustExec(t, e, "DELETE FROM users WHERE city = 'nice'")
	assertViewMatchesQuery(t, e, "bycity", q)

	// Update that moves a row between groups.
	mustExec(t, e, "UPDATE users SET city = 'lyon' WHERE id = 1")
	assertViewMatchesQuery(t, e, "bycity", q)
}

func TestViewAggregateHaving(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE MATERIALIZED VIEW big AS SELECT city, COUNT(*) AS n FROM users GROUP BY city HAVING COUNT(*) > 1")
	q := "SELECT city, COUNT(*) FROM users GROUP BY city HAVING COUNT(*) > 1"
	assertViewMatchesQuery(t, e, "big", q)
	// lyon goes from 1 to 2 members: group must appear.
	mustExec(t, e, "INSERT INTO users (id, name, city) VALUES (30, 'x', 'lyon')")
	assertViewMatchesQuery(t, e, "big", q)
	// back to 1: group must disappear.
	mustExec(t, e, "DELETE FROM users WHERE id = 30")
	assertViewMatchesQuery(t, e, "big", q)
}

func TestViewWithWhere(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE MATERIALIZED VIEW adults AS SELECT city, COUNT(*) AS n FROM users WHERE age >= 28 GROUP BY city")
	q := "SELECT city, COUNT(*) FROM users WHERE age >= 28 GROUP BY city"
	assertViewMatchesQuery(t, e, "adults", q)
	mustExec(t, e, "INSERT INTO users (id, name, age, city) VALUES (40, 'kid', 10, 'paris')") // filtered out
	assertViewMatchesQuery(t, e, "adults", q)
	mustExec(t, e, "UPDATE users SET age = 50 WHERE id = 40") // filtered in
	assertViewMatchesQuery(t, e, "adults", q)
}

func TestViewChangeEventsEmitted(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE MATERIALIZED VIEW bycity AS SELECT city, COUNT(*) AS n FROM users GROUP BY city")
	var viewEvents int
	e.Observe(func(ev ChangeEvent) {
		if ev.Table == "bycity" {
			viewEvents++
		}
	})
	mustExec(t, e, "INSERT INTO users (id, name, city) VALUES (50, 'v', 'paris')")
	if viewEvents != 1 {
		t.Fatalf("view change events: %d", viewEvents)
	}
}

func TestViewDML_Rejected(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE MATERIALIZED VIEW v AS SELECT id FROM users")
	for _, sql := range []string{
		"INSERT INTO v VALUES (9)",
		"UPDATE v SET id = 9",
		"DELETE FROM v",
	} {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("%q must fail on a view", sql)
		}
	}
	// Dropping a referenced base table is rejected.
	if _, err := e.Exec("DROP TABLE users"); err == nil {
		t.Error("dropping a view's base table must fail")
	}
}

func TestViewUnsupportedShapes(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	bad := []string{
		"CREATE MATERIALIZED VIEW v1 AS SELECT id FROM users ORDER BY id",
		"CREATE MATERIALIZED VIEW v2 AS SELECT u1.id FROM users u1, users u2", // self join
		"CREATE MATERIALIZED VIEW v3 AS SELECT DISTINCT city FROM users",
		"CREATE MATERIALIZED VIEW v4 AS SELECT city, COUNT(DISTINCT name) FROM users GROUP BY city",
		"CREATEMATERIALIZED VIEW",
	}
	for _, sql := range bad {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("%q should be rejected", sql)
		}
	}
}

func TestViewRestartRebuild(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	mustExec(t, e, "CREATE TABLE t (k STRING, v INT)")
	mustExec(t, e, "INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3)")
	mustExec(t, e, "CREATE MATERIALIZED VIEW agg AS SELECT k, SUM(v) AS s FROM t GROUP BY k")
	assertViewMatchesQuery(t, e, "agg", "SELECT k, SUM(v) FROM t GROUP BY k")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir)
	defer e2.Close()
	// The view survives restart and keeps maintaining.
	assertViewMatchesQuery(t, e2, "agg", "SELECT k, SUM(v) FROM t GROUP BY k")
	mustExec(t, e2, "INSERT INTO t VALUES ('a', 10), ('c', 5)")
	assertViewMatchesQuery(t, e2, "agg", "SELECT k, SUM(v) FROM t GROUP BY k")
}

func openDurable(t *testing.T, dir string) *Engine {
	t.Helper()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Property: a random stream of inserts/deletes/updates keeps every view
// class equivalent to recomputation.
func TestViewRandomizedEquivalence(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE ev (k STRING, v INT, w INT)")
	mustExec(t, e, "CREATE TABLE dim (k STRING, label STRING)")
	mustExec(t, e, "INSERT INTO dim VALUES ('a', 'alpha'), ('b', 'beta'), ('c', 'gamma')")
	mustExec(t, e, "CREATE MATERIALIZED VIEW vsp AS SELECT k, v FROM ev WHERE v > 50")
	mustExec(t, e, "CREATE MATERIALIZED VIEW vagg AS SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi FROM ev GROUP BY k")
	mustExec(t, e, "CREATE MATERIALIZED VIEW vjoin AS SELECT d.label, e.v FROM ev e JOIN dim d ON e.k = d.k")

	rng := rand.New(rand.NewSource(7))
	keys := []string{"a", "b", "c", "d"}
	var live []int64 // tids proxied by v values inserted with unique w
	next := 0
	for step := 0; step < 120; step++ {
		op := rng.Intn(3)
		if len(live) < 5 {
			op = 0
		}
		switch op {
		case 0: // insert
			k := keys[rng.Intn(len(keys))]
			v := rng.Intn(100)
			next++
			mustExec(t, e, fmt.Sprintf("INSERT INTO ev VALUES ('%s', %d, %d)", k, v, next))
			live = append(live, int64(next))
		case 1: // delete a random row
			i := rng.Intn(len(live))
			mustExec(t, e, fmt.Sprintf("DELETE FROM ev WHERE w = %d", live[i]))
			live = append(live[:i], live[i+1:]...)
		case 2: // update a random row
			i := rng.Intn(len(live))
			mustExec(t, e, fmt.Sprintf("UPDATE ev SET v = %d, k = '%s' WHERE w = %d",
				rng.Intn(100), keys[rng.Intn(len(keys))], live[i]))
		}
		if step%10 == 9 {
			assertViewMatchesQuery(t, e, "vsp", "SELECT k, v FROM ev WHERE v > 50")
			assertViewMatchesQuery(t, e, "vagg", "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM ev GROUP BY k")
			assertViewMatchesQuery(t, e, "vjoin", "SELECT d.label, e.v FROM ev e JOIN dim d ON e.k = d.k")
		}
	}
}
