package engine

import (
	"errors"
	"fmt"
	"strings"

	"ediflow/internal/catalog"
	"ediflow/internal/sqltext"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// Replica-side engine support for WAL-shipping replication (see
// internal/repl). A replica engine runs read-only: every mutation is
// rejected with ErrReadOnlyReplica except DML against an explicit
// allowlist of per-node-local tables (mirror registrations in
// ef_connected_user), and replicated state arrives only through
// ApplyReplicated / ApplyReplSnapshot under the write lock.

// ErrReadOnlyReplica is returned for any mutating statement on a
// read-only replica. It is distinct from other engine errors so clients
// can recognize it and redirect writes to the primary.
var ErrReadOnlyReplica = errors.New("engine: read-only replica: writes must go to the primary")

// SetReadOnly switches the engine into replica mode. DML (not DDL)
// against the named tables stays allowed — they hold per-node state
// such as mirror registrations and are excluded from the replication
// stream.
func (e *Engine) SetReadOnly(allowTables ...string) {
	e.mu.Lock()
	e.readOnly = true
	e.replicaAllow = map[string]bool{}
	for _, t := range allowTables {
		e.replicaAllow[strings.ToLower(t)] = true
	}
	e.mu.Unlock()
}

// ReadOnly reports whether the engine is in replica mode.
func (e *Engine) ReadOnly() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.readOnly
}

// replicaMayWrite reports whether a statement is allowed despite
// replica mode: DML targeting an allowlisted table. Caller holds e.mu.
func (e *Engine) replicaMayWrite(st sqltext.Statement) bool {
	var table string
	switch s := st.(type) {
	case *sqltext.Insert:
		table = s.Table
	case *sqltext.Update:
		table = s.Table
	case *sqltext.Delete:
		table = s.Table
	default:
		return false
	}
	return e.replicaAllow[strings.ToLower(table)]
}

// ReplSnapshot serializes the engine's current state for a subscriber,
// returning the feed cursor the snapshot corresponds to. Runs under
// the write lock so the snapshot is consistent with the returned seq;
// it refuses while a transaction is open (uncommitted rows must not
// ship).
func (e *Engine) ReplSnapshot(exclude ...string) (data []byte, seq uint64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inTxn.Load() {
		return nil, 0, ErrCheckpointTxnOpen
	}
	data, err = e.store.EncodeReplSnapshot(exclude...)
	if err != nil {
		return nil, 0, err
	}
	return data, e.store.ReplHead(), nil
}

// ApplyReplicated applies a batch of shipped records in order, keeping
// the catalog in sync with replicated DDL. Rows inserted into
// watchTable (the notification journal) are decoded and returned so
// the replication loop can ring local NOTIFY doorbells.
func (e *Engine) ApplyReplicated(recs [][]byte, watchTable string) (watched []types.Row, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ddl := false
	for _, rec := range recs {
		a, err := e.store.ApplyReplRecord(rec)
		if err != nil {
			return watched, fmt.Errorf("engine: replicated apply: %w", err)
		}
		switch a.Kind {
		case storage.ReplCreateTable:
			t := e.store.Table(a.Table)
			if t == nil {
				return watched, fmt.Errorf("engine: replicated table %q missing after apply", a.Table)
			}
			if err := e.cat.AddTable(t.Schema); err != nil {
				return watched, err
			}
		case storage.ReplDropTable:
			if err := e.cat.DropTable(a.Table); err != nil {
				return watched, err
			}
		case storage.ReplCreateIndex:
			if err := e.cat.AddIndex(&catalog.Index{Name: a.IndexName, Table: a.Table, Columns: a.IndexCols, Unique: a.Unique}); err != nil {
				return watched, err
			}
		case storage.ReplPutMeta:
			if err := e.registerReplicatedMeta(a.MetaText); err != nil {
				return watched, err
			}
		case storage.ReplDelMeta:
			if a.MetaKind == "view" {
				e.cat.DropView(a.MetaName)
			}
		case storage.ReplInsert:
			if watchTable != "" && strings.EqualFold(a.Table, watchTable) {
				if _, _, row, ok := storage.DecodeReplInsert(rec); ok {
					watched = append(watched, row)
				}
			}
		}
		if a.DDL() {
			ddl = true
		}
	}
	if ddl {
		e.plans.purge()
		e.progs.purge()
	}
	// One batch of shipped records is the replication unit of atomicity:
	// publish its versions to replica snapshot readers all at once.
	e.store.PublishSnapshot()
	return watched, nil
}

// registerReplicatedMeta registers replicated view/trigger DDL in the
// catalog. Views get a catalog-only entry — no ivm maintainer runs on
// a replica: the backing table's contents arrive pre-materialized
// through the primary's replicated records, and re-materializing here
// would allocate local tids diverging from the primary's. Caller holds
// e.mu.
func (e *Engine) registerReplicatedMeta(text string) error {
	st, err := sqltext.Parse(text)
	if err != nil {
		return fmt.Errorf("engine: bad replicated DDL %q: %w", text, err)
	}
	switch d := st.(type) {
	case *sqltext.CreateView:
		return e.cat.AddView(&catalog.View{
			Name:    d.Name,
			Query:   d.Query,
			Backing: viewBackingPrefix + strings.ToLower(d.Name),
		})
	case *sqltext.CreateTrigger:
		return e.cat.AddTrigger(&catalog.Trigger{Name: d.Name, Event: d.Event, Table: d.Table, Handler: d.Handler})
	}
	return fmt.Errorf("engine: unexpected replicated DDL %q", text)
}

// ApplyReplSnapshot replaces the replica's entire state with a shipped
// snapshot and rebuilds the catalog from it. Rows of tables named in
// preserve (per-node-local state) survive the reset.
func (e *Engine) ApplyReplSnapshot(data []byte, preserve ...string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inTxn.Load() {
		return fmt.Errorf("engine: snapshot apply refused: transaction open")
	}
	if err := e.store.ResetFromSnapshot(data, preserve...); err != nil {
		return err
	}
	e.cat = catalog.New()
	for _, name := range e.store.TableNames() {
		if err := e.cat.AddTable(e.store.Table(name).Schema); err != nil {
			return err
		}
	}
	for _, m := range e.store.Metas() {
		if err := e.registerReplicatedMeta(m.Text); err != nil {
			return err
		}
	}
	e.views = newViewSet(e)
	e.plans.purge()
	e.progs.purge()
	return nil
}
