// Package engine implements the SQL execution engine of the EdiFlow
// embedded database: DDL/DML execution, SELECT evaluation (filters,
// joins, grouping, ordering), transactions with an undo log, statement-
// level AFTER triggers (§VI-B of the paper), and maintenance of
// materialized views through the ivm package.
//
// Concurrency model: a single RWMutex serializes writers, and autocommit
// SELECTs do not take it at all — they capture an MVCC snapshot seq from
// the store and iterate version chains with zero engine locks held, so
// long analytical scans never stall the commit queue and committers
// never block readers (§VI-A time-based isolation; see storage/table.go
// and DESIGN.md §13). SELECTs inside an open transaction keep the
// historical locked read-latest path so they observe the transaction's
// own unpublished writes. The write lock covers apply + WAL append only — the durability wait
// (the store's group-commit fsync) happens after the lock is released,
// so concurrent autocommit writers share one fsync instead of
// serializing behind it. Commit order equals WAL append order.
// Statement-level change events are dispatched to observers *after* the
// durability wait succeeds (and, inside a transaction, only after
// COMMIT), so observers never see writes the disk refused and may
// re-enter the engine. Delivery runs through an ordered queue (see
// settle): events claim their queue position under the write lock, in
// seq/WAL-append order, and one goroutine at a time drains resolved
// entries from the head — so observers see events in global seq order
// no matter how concurrent committers' fsync waits interleave.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ediflow/internal/catalog"
	"ediflow/internal/metrics"
	"ediflow/internal/sqltext"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// ChangeOp is the kind of modification a statement performed.
type ChangeOp string

// Change operations.
const (
	OpInsert ChangeOp = "INSERT"
	OpUpdate ChangeOp = "UPDATE"
	OpDelete ChangeOp = "DELETE"
	// OpBatch marks a delta coalesced from events of more than one kind;
	// it never appears on a ChangeEvent, only on batch-level deltas built
	// from them (see internal/wf/react).
	OpBatch ChangeOp = "BATCH"
)

// ChangeEvent describes one statement's effect on one table. It is the
// payload of the paper's statement-level triggers: compact — table, op,
// affected tuple ids and a global sequence number (§VI-C keeps
// notifications "very compact").
type ChangeEvent struct {
	Seq     int64
	Table   string
	Op      ChangeOp
	TIDs    []int64
	Rows    []types.Row // new values (INSERT, UPDATE)
	OldRows []types.Row // previous values (UPDATE, DELETE)
}

// TriggerFunc is a Go callback fired after a statement (or after COMMIT
// when the statement ran inside a transaction).
type TriggerFunc func(ChangeEvent)

// BatchTriggerFunc is a trigger handler that receives all of a drained
// dispatch batch's matching events in one call (see RegisterBatchHandler).
type BatchTriggerFunc func([]ChangeEvent)

// Result is the outcome of one statement.
type Result struct {
	Columns  []string
	Rows     []types.Row
	Affected int
	// TIDs are the tuple ids inserted by an INSERT statement, in order.
	TIDs []int64
}

type undoEntry struct {
	op      ChangeOp
	table   string
	tid     int64
	created int64
	oldRow  types.Row
	newRow  types.Row
}

// Engine is one embedded database instance.
type Engine struct {
	mu    sync.RWMutex
	cat   *catalog.Catalog
	store *storage.Store

	// Named Go trigger handlers referenced by CREATE TRIGGER ... CALL 'x'.
	handlers map[string]TriggerFunc
	// Batch trigger handlers: same CREATE TRIGGER indirection, but a name
	// registered here is invoked once per drained dispatch batch with every
	// matching event, not once per event.
	batchHandlers map[string]BatchTriggerFunc
	// Global observers, invoked for every change event.
	observers []TriggerFunc
	// Batch observers, invoked once per drained dispatch batch with the
	// whole event slice (the notifier coalesces NOTIFY flushes from it).
	batchObservers []func([]ChangeEvent)

	// Ordered dispatch queue (see settle): entries are enqueued under the
	// engine write lock — queue order is WAL append (seq) order — and
	// delivered by a single dispatcher only once resolved, so observers
	// see events in global seq order even when the durability waits of
	// concurrent committers finish out of order.
	dispatchMu  sync.Mutex
	dispatchQ   []*dispatchEntry
	dispatching bool

	views *viewSet

	seq int64 // change-event sequence number

	// inTxn is written under the write lock but read lock-free by the
	// SELECT path to pick between the snapshot read path and the locked
	// read-your-writes path, hence atomic.
	inTxn   atomic.Bool
	undo    []undoEntry
	pending []ChangeEvent

	// writeCtx is the statement context of the mutation currently holding
	// the write lock; IVM re-entry (EvalWith) reads through it so
	// writer-side SELECTs see the statement's own uncommitted writes and
	// charge their scans to the right statement.
	writeCtx *stmtCtx

	// Replica mode (see repl.go): mutations are rejected except DML on
	// the allowlisted per-node-local tables.
	readOnly     bool
	replicaAllow map[string]bool

	// Observability: the registry is adopted from the store so WAL and
	// engine metrics share one namespace; virtual tables expose both over
	// plain SELECT.
	reg  *metrics.Registry
	slow *metrics.SlowLog
	// virtMu guards the virtual-table map: RegisterVirtual may run while
	// lock-free SELECTs resolve names.
	virtMu  sync.RWMutex
	virtual map[string]*virtualTable

	mStatements   *metrics.Counter
	mErrors       *metrics.Counter
	mRowsScanned  *metrics.Counter
	mRowsReturned *metrics.Counter
	mExecH        *metrics.Histogram
	mSelectH      *metrics.Histogram
	mMutationH    *metrics.Histogram

	// plans caches parsed statements keyed by SQL text (see plancache.go);
	// DDL purges it.
	plans     *planCache
	mPlanHit  *metrics.Counter
	mPlanMiss *metrics.Counter

	// Compiled expression VM (see compile.go / internal/engine/vm):
	// programs cached per expression identity, purged with the plan cache
	// on DDL and on function-registry changes.
	compiledEval atomic.Bool
	progs        *progCache
	mVMCompile   *metrics.Counter
	mVMFallback  *metrics.Counter
	mVMBatches   *metrics.Counter
	mVMRows      *metrics.Counter

	// Morsel-driven intra-query parallelism (see parallel.go). The
	// worker budget is engine-wide: concurrent sessions draw extra
	// workers from one shared pool so they degrade to narrower plans
	// instead of oversubscribing the cores.
	parallelism atomic.Int64 // target workers per query (1 = serial)
	parMinRows  atomic.Int64 // slot-count threshold to go parallel
	parExtra    atomic.Int64 // extra workers currently running engine-wide
	mParQueries *metrics.Counter
	mParMorsels *metrics.Counter
	mParWorkers *metrics.Counter

	// udfMu guards the user scalar-function registry (RegisterFunc may
	// run while lock-free SELECTs resolve calls).
	udfMu sync.RWMutex
	udfs  map[string]ScalarFunc
}

// AdvanceSeq raises the change-event sequence counter to at least floor.
// The counter starts at zero on every open, but ef_notification rows
// keyed by seq_no survive restarts — without restoring the high-water
// mark, a reopened database re-issues old sequence numbers and the
// notifier's bookkeeping INSERT dies on a duplicate key, silently
// breaking NOTIFY delivery. The notifier calls this during startup.
func (e *Engine) AdvanceSeq(floor int64) {
	e.mu.Lock()
	if e.seq < floor {
		e.seq = floor
	}
	e.mu.Unlock()
}

// virtualTable is a read-only system table computed at query time.
type virtualTable struct {
	cols []string
	fn   func() []types.Row
}

// New creates an engine over an opened store, rebuilding the catalog from
// the store's tables and metadata.
func New(store *storage.Store) (*Engine, error) {
	e := &Engine{
		cat:           catalog.New(),
		store:         store,
		handlers:      map[string]TriggerFunc{},
		batchHandlers: map[string]BatchTriggerFunc{},
		reg:           store.Metrics(),
		slow:          metrics.NewSlowLog(128, 10*time.Millisecond),
		virtual:       map[string]*virtualTable{},
	}
	e.mStatements = e.reg.Counter("engine.statements")
	e.mErrors = e.reg.Counter("engine.errors")
	e.mRowsScanned = e.reg.Counter("engine.rows_scanned")
	e.mRowsReturned = e.reg.Counter("engine.rows_returned")
	e.mExecH = e.reg.Histogram("engine.exec_latency")
	e.mSelectH = e.reg.Histogram("engine.select_latency")
	e.mMutationH = e.reg.Histogram("engine.mutation_latency")
	e.plans = newPlanCache(256)
	e.mPlanHit = e.reg.Counter("engine.plan_cache_hit")
	e.mPlanMiss = e.reg.Counter("engine.plan_cache_miss")
	e.progs = newProgCache(1024)
	e.compiledEval.Store(true)
	e.mVMCompile = e.reg.Counter("vm.compile")
	e.mVMFallback = e.reg.Counter("vm.fallback")
	e.mVMBatches = e.reg.Counter("vm.exec_batches")
	e.mVMRows = e.reg.Counter("vm.rows")
	e.parallelism.Store(int64(runtime.GOMAXPROCS(0)))
	e.parMinRows.Store(defaultParallelMinRows)
	e.mParQueries = e.reg.Counter("vm.parallel_queries")
	e.mParMorsels = e.reg.Counter("vm.morsels")
	e.mParWorkers = e.reg.Counter("vm.parallel_workers")
	e.registerSystemTables()
	e.views = newViewSet(e)
	for _, name := range store.TableNames() {
		t := store.Table(name)
		if err := e.cat.AddTable(t.Schema); err != nil {
			return nil, err
		}
	}
	// Re-register persisted views and triggers by re-parsing their DDL.
	for _, m := range store.Metas() {
		st, err := sqltext.Parse(m.Text)
		if err != nil {
			return nil, fmt.Errorf("engine: bad stored DDL %q: %w", m.Text, err)
		}
		switch d := st.(type) {
		case *sqltext.CreateView:
			if err := e.restoreView(d); err != nil {
				return nil, err
			}
		case *sqltext.CreateTrigger:
			if err := e.cat.AddTrigger(&catalog.Trigger{Name: d.Name, Event: d.Event, Table: d.Table, Handler: d.Handler}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("engine: unexpected stored DDL %q", m.Text)
		}
	}
	return e, nil
}

// Catalog exposes the metadata (read-only use).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Store exposes the physical store (read-only use; the workflow layer
// needs CurrentStamp for snapshot isolation).
func (e *Engine) Store() *storage.Store { return e.store }

// RegisterHandler installs a named Go trigger handler that CREATE TRIGGER
// statements can reference.
func (e *Engine) RegisterHandler(name string, fn TriggerFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.batchHandlers, name)
	e.handlers[name] = fn
}

// RegisterBatchHandler installs a named batch trigger handler. CREATE
// TRIGGER statements reference it exactly like a per-event handler, but
// delivery is coalesced: the handler fires at most once per drained
// dispatch batch, with every event of that batch whose (table, op)
// matched one of the name's triggers, in sequence order. This is the
// firehose path — at high commit rates one invocation absorbs the whole
// batch instead of paying the per-event fan-out. A name is either a
// per-event or a batch handler, never both; registering it here removes
// any per-event registration and vice versa.
func (e *Engine) RegisterBatchHandler(name string, fn BatchTriggerFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.handlers, name)
	e.batchHandlers[name] = fn
}

// Observe installs a global change observer fired for every change event
// on every table. The notification layer and the workflow UP compiler are
// both observers.
func (e *Engine) Observe(fn TriggerFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observers = append(e.observers, fn)
}

// ObserveBatch installs a batch observer: it receives every drained
// dispatch batch (one slice per drain, events in sequence order) after
// the per-event triggers and observers ran for each event. Under
// concurrent load a batch carries many statements' events at once, so a
// batch observer can amortize per-flush work — the notification layer
// uses this to send one NOTIFY per (table, batch) instead of one per
// statement (§VI-C). The slice is shared; observers must not retain or
// mutate it.
func (e *Engine) ObserveBatch(fn func([]ChangeEvent)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.batchObservers = append(e.batchObservers, fn)
}

// Close flushes the store.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Close()
}

// ErrCheckpointTxnOpen is returned by Checkpoint while a transaction is
// open. The engine holds uncommitted rows directly in the store (the
// undo log reverses them on ROLLBACK), so a mid-transaction snapshot
// would persist uncommitted data and then discard the WAL — after a
// crash the transaction could neither be rolled back nor distinguished
// from committed work. Callers (e.g. a periodic checkpoint loop) should
// treat this as "try again later".
var ErrCheckpointTxnOpen = errors.New("engine: checkpoint refused: transaction open")

// Checkpoint snapshots the store and truncates the WAL. It refuses to
// run while a transaction is open (see ErrCheckpointTxnOpen).
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inTxn.Load() {
		return ErrCheckpointTxnOpen
	}
	return e.store.Checkpoint()
}

// Exec parses and executes one statement. Positional `?` parameters are
// bound from args left to right. Parsed statements are served from the
// plan cache when the same SQL text repeats.
func (e *Engine) Exec(sql string, args ...types.Value) (*Result, error) {
	st, err := e.parseCached(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(st, args...)
}

// parseCached parses one statement through the plan cache.
func (e *Engine) parseCached(sql string) (sqltext.Statement, error) {
	if v, ok := e.plans.get("1:" + sql); ok {
		e.mPlanHit.Inc()
		return v.(sqltext.Statement), nil
	}
	e.mPlanMiss.Inc()
	st, err := sqltext.Parse(sql)
	if err != nil {
		return nil, err
	}
	e.plans.put("1:"+sql, st)
	return st, nil
}

// ExecScript executes a ';'-separated script, returning the last result.
// Whole scripts are cached under a separate key space: parameter indexes
// run left to right across the script, so per-statement entries cannot
// be shared with Exec's.
func (e *Engine) ExecScript(sql string, args ...types.Value) (*Result, error) {
	var stmts []sqltext.Statement
	if v, ok := e.plans.get("n:" + sql); ok {
		e.mPlanHit.Inc()
		stmts = v.([]sqltext.Statement)
	} else {
		e.mPlanMiss.Inc()
		var err error
		stmts, err = sqltext.ParseScript(sql)
		if err != nil {
			return nil, err
		}
		e.plans.put("n:"+sql, stmts)
	}
	var last *Result
	var err error
	for _, st := range stmts {
		last, err = e.ExecStmt(st, args...)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Query is Exec restricted to SELECT (convenience with clearer intent).
func (e *Engine) Query(sql string, args ...types.Value) (*Result, error) {
	st, err := e.parseCached(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := st.(*sqltext.Select); !ok {
		return nil, fmt.Errorf("engine: Query requires a SELECT, got %s", stmtKeyword(st))
	}
	return e.ExecStmt(st, args...)
}

// ExecStmt executes an already-parsed statement, recording per-statement
// metrics (latency, rows, errors) and feeding the slow-query log.
func (e *Engine) ExecStmt(st sqltext.Statement, args ...types.Value) (*Result, error) {
	ctx := &stmtCtx{snap: storage.SeqLatest}
	if !e.reg.Enabled() {
		return e.execStmt(st, args, ctx)
	}
	t0 := time.Now()
	res, err := e.execStmt(st, args, ctx)
	d := time.Since(t0)
	e.mStatements.Inc()
	e.mExecH.Observe(d)
	var returned int64
	if res != nil {
		if len(res.Rows) > 0 {
			returned = int64(len(res.Rows))
		} else {
			returned = int64(res.Affected)
		}
		e.mRowsReturned.Add(int64(len(res.Rows)))
	}
	if _, isSel := st.(*sqltext.Select); isSel {
		e.mSelectH.Observe(d)
	} else {
		e.mMutationH.Observe(d)
	}
	if err != nil {
		e.mErrors.Inc()
	}
	if ctx.parWorkers > 0 {
		e.mParQueries.Inc()
		e.mParWorkers.Add(ctx.parWorkers)
	}
	if e.slow.ShouldRecord(d, err != nil) {
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		// Rows-scanned comes from the per-statement context, so the value
		// is exact even when concurrent SELECTs overlap.
		e.slow.Record(st.String(), d, ctx.scanned, returned, errMsg)
	}
	return res, err
}

func (e *Engine) execStmt(st sqltext.Statement, args []types.Value, ctx *stmtCtx) (*Result, error) {
	switch s := st.(type) {
	case *sqltext.Select:
		return e.execSelect(s, args, ctx)
	case *sqltext.Explain:
		// EXPLAIN only plans — catalog and table structure are internally
		// synchronized, so no engine lock is needed.
		return e.evalExplain(s, args, ctx)
	case *sqltext.Begin:
		return e.begin()
	case *sqltext.Commit:
		return e.commit()
	case *sqltext.Rollback:
		return e.rollback()
	}

	// Mutating statements: apply + WAL append under the write lock, then
	// release it BEFORE the durability wait so other sessions can apply
	// their statements (and join the same group-commit batch) while this
	// one waits on the shared fsync.
	e.mu.Lock()
	e.writeCtx = ctx
	res, events, err := e.execMutation(st, args)
	e.writeCtx = nil
	// Publish the statement's versions before releasing the write lock:
	// subsequent autocommit reads must see them (read-your-writes), and
	// publishing whole statements at a time is what makes snapshots
	// statement-atomic. Inside a transaction nothing is published until
	// COMMIT/ROLLBACK resolves it.
	if !e.inTxn.Load() {
		e.store.PublishSnapshot()
	}
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	if isDDL(st) {
		e.plans.purge()
		// Compiled programs bake in resolved column positions; a schema
		// change makes them stale even when the SQL text still parses.
		e.progs.purge()
	}
	if e.inTxn.Load() {
		e.pending = append(e.pending, events...)
		e.mu.Unlock()
		return res, nil
	}
	// Enqueue the events into the ordered dispatch queue BEFORE releasing
	// the write lock: queue position is claimed in seq/WAL-append order,
	// so however the durability waits below interleave, delivery (and the
	// notifier's ef_notification inserts) happens in global seq order.
	entry := e.enqueueLocked(events)
	e.mu.Unlock()
	// A Commit failure means the statement may not be durable; report it
	// instead of acknowledging, and hold back the change events —
	// downstream observers must not act on writes the disk refused.
	if err := e.store.Commit(); err != nil {
		e.settle(entry, false)
		return nil, fmt.Errorf("engine: flush: %w", err)
	}
	e.settle(entry, true)
	return res, nil
}

// execSelect runs a top-level SELECT. Autocommit reads acquire an MVCC
// snapshot and run with no engine lock held during row iteration;
// reads inside an open transaction keep the locked read-latest path so
// they see the transaction's own unpublished writes. AS OF pins the
// snapshot to an explicit commit-seq (§VI-A time-based isolation).
func (e *Engine) execSelect(s *sqltext.Select, args []types.Value, ctx *stmtCtx) (*Result, error) {
	ctx.top = s
	if s.AsOf != nil {
		v, ok := constVal(s.AsOf, args)
		if !ok || v.IsNull() {
			return nil, fmt.Errorf("engine: AS OF requires a literal or bound-parameter seq")
		}
		seq, err := v.AsInt()
		if err != nil {
			return nil, fmt.Errorf("engine: AS OF seq: %w", err)
		}
		snap, err := e.store.AcquireSnapshotAt(seq)
		if err != nil {
			return nil, err
		}
		defer e.store.ReleaseSnapshot(snap)
		ctx.snap = snap
		return e.evalSelect(s, args, ctx)
	}
	if e.inTxn.Load() {
		e.mu.RLock()
		defer e.mu.RUnlock()
		ctx.snap = storage.SeqLatest
		return e.evalSelect(s, args, ctx)
	}
	snap := e.store.AcquireSnapshot()
	defer e.store.ReleaseSnapshot(snap)
	ctx.snap = snap
	return e.evalSelect(s, args, ctx)
}

// stmtKeyword names a statement by its leading SQL keyword for error
// messages, without leaking internal type names.
func stmtKeyword(st sqltext.Statement) string {
	f := strings.Fields(st.String())
	if len(f) == 0 {
		return "statement"
	}
	return strings.ToUpper(f[0])
}

// dispatchEntry is one committer's claim on a dispatch-queue position.
// It is enqueued pending (under the engine write lock, so queue order is
// seq order), then resolved — durable or aborted — after the durability
// wait. Aborted entries are skipped: their writes never became durable,
// so observers must not see them.
type dispatchEntry struct {
	events  []ChangeEvent
	durable bool
	settled bool
}

// enqueueLocked claims the next dispatch-queue position for events.
// Callers MUST hold e.mu (the write lock): that is what makes queue
// order equal seq order. Returns nil when there is nothing to deliver.
func (e *Engine) enqueueLocked(events []ChangeEvent) *dispatchEntry {
	if len(events) == 0 {
		return nil
	}
	entry := &dispatchEntry{events: events}
	e.dispatchMu.Lock()
	e.dispatchQ = append(e.dispatchQ, entry)
	e.dispatchMu.Unlock()
	return entry
}

// settle resolves a queued entry after its durability wait and delivers
// every leading resolved entry, outside the engine lock so handlers may
// re-enter. The first goroutine to find deliverable work becomes the
// dispatcher and drains until the queue is empty or its head is an
// unresolved entry (a concurrent committer still waiting on its fsync —
// its own settle will resume delivery, preserving global seq order).
// When no other writer is active this reduces to the old behavior: a
// statement's full trigger cascade delivers before its Exec returns.
// Under concurrent load, batches carry many statements' events at once
// for batch observers to coalesce.
func (e *Engine) settle(entry *dispatchEntry, durable bool) {
	if entry == nil {
		return
	}
	e.dispatchMu.Lock()
	entry.durable = durable
	entry.settled = true
	if e.dispatching {
		e.dispatchMu.Unlock()
		return // the active dispatcher delivers these promptly
	}
	e.dispatching = true
	for {
		var batch []ChangeEvent
		for len(e.dispatchQ) > 0 && e.dispatchQ[0].settled {
			head := e.dispatchQ[0]
			e.dispatchQ = e.dispatchQ[1:]
			if head.durable {
				batch = append(batch, head.events...)
			}
		}
		if len(batch) == 0 {
			break
		}
		e.dispatchMu.Unlock()
		e.deliver(batch)
		e.dispatchMu.Lock()
	}
	e.dispatching = false
	e.dispatchMu.Unlock()
}

// deliver fires one drained batch: per-event triggers and observers in
// sequence order (guaranteed by queue construction; the sort is a cheap
// invariant net), then each batch observer once with the whole slice.
func (e *Engine) deliver(events []ChangeEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	// Batch-handler accumulation: while walking events for per-event
	// triggers, collect the events matching each batch handler so it fires
	// once with all of them after the per-event pass.
	type batchCall struct {
		fn     BatchTriggerFunc
		events []ChangeEvent
	}
	var batched []*batchCall
	batchIdx := map[string]*batchCall{}
	for _, ev := range events {
		e.mu.RLock()
		trigs := e.cat.Triggers(ev.Table, string(ev.Op))
		var fns []TriggerFunc
		for _, t := range trigs {
			if fn, ok := e.handlers[t.Handler]; ok {
				fns = append(fns, fn)
			} else if bfn, ok := e.batchHandlers[t.Handler]; ok {
				bc := batchIdx[t.Handler]
				if bc == nil {
					bc = &batchCall{fn: bfn}
					batchIdx[t.Handler] = bc
					batched = append(batched, bc)
				}
				bc.events = append(bc.events, ev)
			}
		}
		obs := make([]TriggerFunc, len(e.observers))
		copy(obs, e.observers)
		e.mu.RUnlock()
		for _, fn := range fns {
			fn(ev)
		}
		for _, fn := range obs {
			fn(ev)
		}
	}
	for _, bc := range batched {
		bc.fn(bc.events)
	}
	e.mu.RLock()
	bobs := make([]func([]ChangeEvent), len(e.batchObservers))
	copy(bobs, e.batchObservers)
	e.mu.RUnlock()
	for _, fn := range bobs {
		fn(events)
	}
}

func (e *Engine) begin() (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.readOnly {
		return nil, ErrReadOnlyReplica
	}
	if e.inTxn.Load() {
		return nil, fmt.Errorf("engine: transaction already open")
	}
	e.inTxn.Store(true)
	e.undo = nil
	e.pending = nil
	return &Result{}, nil
}

func (e *Engine) commit() (*Result, error) {
	e.mu.Lock()
	if !e.inTxn.Load() {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: no open transaction")
	}
	e.inTxn.Store(false)
	e.undo = nil
	fire := e.pending
	e.pending = nil
	entry := e.enqueueLocked(fire)
	// COMMIT publishes the whole transaction's versions at once: snapshot
	// readers either see all of it or none of it.
	e.store.PublishSnapshot()
	e.mu.Unlock()
	// COMMIT is the durability point. The wait happens outside the write
	// lock (the records are already appended in order); a Commit failure
	// must surface as a failed COMMIT, and the pent-up change events must
	// not fire.
	if err := e.store.Commit(); err != nil {
		e.settle(entry, false)
		return nil, fmt.Errorf("engine: commit flush: %w", err)
	}
	e.settle(entry, true)
	return &Result{}, nil
}

func (e *Engine) rollback() (*Result, error) {
	e.mu.Lock()
	if !e.inTxn.Load() {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: no open transaction")
	}
	// Apply undo entries in reverse. Undo operations also refresh the
	// affected materialized views.
	for i := len(e.undo) - 1; i >= 0; i-- {
		u := e.undo[i]
		var err error
		switch u.op {
		case OpInsert:
			if _, err = e.store.Delete(u.table, u.tid); err == nil {
				e.views.applyDelta(u.table, nil, []types.Row{u.newRow})
			}
		case OpUpdate:
			if _, err = e.store.Update(u.table, u.tid, u.oldRow); err == nil {
				e.views.applyDelta(u.table, []types.Row{u.oldRow}, []types.Row{u.newRow})
			}
		case OpDelete:
			if err = e.store.InsertAt(u.table, u.tid, u.created, u.oldRow); err == nil {
				e.views.applyDelta(u.table, []types.Row{u.oldRow}, nil)
			}
		}
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("engine: rollback: %w", err)
		}
	}
	e.inTxn.Store(false)
	e.undo = nil
	e.pending = nil
	// The undo stamps cancelled the transaction's writes; publishing now
	// re-exposes exactly the pre-transaction logical state.
	e.store.PublishSnapshot()
	e.mu.Unlock()
	if err := e.store.Commit(); err != nil {
		return nil, fmt.Errorf("engine: rollback flush: %w", err)
	}
	return &Result{}, nil
}

// InTxn reports whether a transaction is open.
func (e *Engine) InTxn() bool { return e.inTxn.Load() }

// execMutation runs a non-SELECT statement under the write lock.
func (e *Engine) execMutation(st sqltext.Statement, args []types.Value) (*Result, []ChangeEvent, error) {
	if e.readOnly && !e.replicaMayWrite(st) {
		return nil, nil, ErrReadOnlyReplica
	}
	switch s := st.(type) {
	case *sqltext.CreateTable:
		return e.execCreateTable(s)
	case *sqltext.DropTable:
		return e.execDropTable(s)
	case *sqltext.CreateIndex:
		return e.execCreateIndex(s)
	case *sqltext.CreateView:
		return e.execCreateView(s)
	case *sqltext.DropView:
		return e.execDropView(s)
	case *sqltext.CreateTrigger:
		return e.execCreateTrigger(s)
	case *sqltext.Insert:
		return e.execInsert(s, args)
	case *sqltext.Update:
		return e.execUpdate(s, args)
	case *sqltext.Delete:
		return e.execDelete(s, args)
	}
	return nil, nil, fmt.Errorf("engine: unsupported statement %T", st)
}

// TableNames lists user tables (views excluded).
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for _, n := range e.cat.TableNames() {
		if !strings.HasPrefix(n, "__view_") {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
