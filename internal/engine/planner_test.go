package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// explainLines runs EXPLAIN on the statement and returns the plan lines.
func explainLines(t *testing.T, e *Engine, sql string, args ...types.Value) []string {
	t.Helper()
	res, err := e.Exec("EXPLAIN "+sql, args...)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sql, err)
	}
	var out []string
	for _, r := range res.Rows {
		out = append(out, r[0].String())
	}
	return out
}

func wantLine(t *testing.T, lines []string, want string) {
	t.Helper()
	for _, l := range lines {
		if l == want {
			return
		}
	}
	t.Fatalf("plan %q missing; got %v", want, lines)
}

// rowSet renders result rows order-insensitively for set comparison.
func rowSet(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = types.RowKey(r)
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, got, want *Result, label string) {
	t.Helper()
	g, w := rowSet(got), rowSet(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d\ngot:  %v\nwant: %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row sets differ\ngot:  %v\nwant: %v", label, g, w)
		}
	}
}

func TestExplainAccessPaths(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE emails (uid INT, addr STRING UNIQUE)")
	mustExec(t, e, "CREATE INDEX idx_users_city ON users (city)")

	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT * FROM users WHERE id = 3", "scan users: pk-point"},
		{"SELECT * FROM users WHERE id = ? AND age > 10", "scan users: pk-point"},
		{"SELECT * FROM users WHERE _tid = 1", "scan users: pk-point"},
		{"SELECT * FROM users WHERE id IN (1, 2, 3)", "scan users: pk-point"},
		{"SELECT * FROM users WHERE city = 'paris'", "scan users: index(idx_users_city)"},
		{"SELECT * FROM users WHERE city IN ('paris', 'lyon')", "scan users: index(idx_users_city)"},
		{"SELECT * FROM users WHERE age > 30", "scan users: full-scan [compiled]"},
		{"SELECT * FROM users", "scan users: full-scan"},
		{"SELECT * FROM emails WHERE addr = 'a@b'", "scan emails: unique-point"},
		{"SELECT * FROM sys_metrics", "scan sys_metrics: virtual"},
		{"UPDATE users SET age = 1 WHERE id = 2", "update users: pk-point"},
		{"UPDATE users SET age = 1 WHERE city = 'nice'", "update users: index(idx_users_city)"},
		{"DELETE FROM users WHERE name = 'eve'", "delete users: full-scan [compiled]"},
		{"DELETE FROM users WHERE id IN (1, 9)", "delete users: pk-point"},
	}
	for _, c := range cases {
		wantLine(t, explainLines(t, e, c.sql), c.want)
	}

	// Joins: equality ON → hash-join; inequality ON → nested-loop.
	lines := explainLines(t, e, "SELECT * FROM users u JOIN emails m ON u.id = m.uid")
	wantLine(t, lines, "join m: hash-join")
	lines = explainLines(t, e, "SELECT * FROM users u JOIN emails m ON u.id > m.uid")
	wantLine(t, lines, "join m: nested-loop")

	// ORDER BY + literal LIMIT reports the bounded sort.
	lines = explainLines(t, e, "SELECT * FROM users ORDER BY age DESC LIMIT 2")
	wantLine(t, lines, "sort: top-k(2)")
	lines = explainLines(t, e, "SELECT * FROM users ORDER BY age")
	wantLine(t, lines, "sort: full")
}

func TestCreateIndexBackfillAndPlannerPickup(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)

	// Oracle result before any index exists (full scan).
	oracle := mustExec(t, e, "SELECT id, name FROM users WHERE city = 'paris'")
	wantLine(t, explainLines(t, e, "SELECT * FROM users WHERE city = 'paris'"), "scan users: full-scan [compiled]")

	// CREATE INDEX on a populated table backfills existing rows and is
	// chosen by the planner immediately.
	mustExec(t, e, "CREATE INDEX idx_city ON users (city)")
	wantLine(t, explainLines(t, e, "SELECT * FROM users WHERE city = 'paris'"), "scan users: index(idx_city)")
	got := mustExec(t, e, "SELECT id, name FROM users WHERE city = 'paris'")
	sameRows(t, got, oracle, "indexed vs full-scan")
	if len(got.Rows) != 3 {
		t.Fatalf("want 3 paris rows, got %d", len(got.Rows))
	}
}

func TestInFastPathDeduplicates(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)

	res := mustExec(t, e, "SELECT id FROM users WHERE id IN (5, 5)")
	if len(res.Rows) != 1 {
		t.Fatalf("pk IN (5,5): want 1 row, got %d", len(res.Rows))
	}
	res = mustExec(t, e, "SELECT id FROM users WHERE _tid IN (?, ?)",
		types.NewInt(1), types.NewInt(1))
	if len(res.Rows) != 1 {
		t.Fatalf("_tid IN (x,x): want 1 row, got %d", len(res.Rows))
	}
	// Same through a secondary index.
	mustExec(t, e, "CREATE INDEX idx_city2 ON users (city)")
	res = mustExec(t, e, "SELECT id FROM users WHERE city IN ('nice', 'nice')")
	if len(res.Rows) != 1 {
		t.Fatalf("indexed IN dup: want 1 row, got %d", len(res.Rows))
	}
}

func TestIndexMaintenanceAcrossMutationsAndReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE items (id INT PRIMARY KEY, cat STRING, n INT)")
	for i := 0; i < 50; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO items (id, cat, n) VALUES (%d, 'c%d', %d)", i, i%5, i))
	}
	mustExec(t, e, "CREATE INDEX idx_cat ON items (cat)")

	// Mutations must keep the index in sync: moves in and out of buckets.
	mustExec(t, e, "UPDATE items SET cat = 'c9' WHERE id = 7")   // c2 → c9
	mustExec(t, e, "UPDATE items SET n = n + 100 WHERE id = 12") // key unchanged
	mustExec(t, e, "DELETE FROM items WHERE id = 17")            // leaves c2

	check := func(e *Engine, label string) {
		t.Helper()
		wantLine(t, explainLines(t, e, "SELECT * FROM items WHERE cat = 'c2'"), "scan items: index(idx_cat)")
		got := mustExec(t, e, "SELECT id FROM items WHERE cat = 'c2'")
		// Full-scan oracle: disable index use by obscuring the predicate.
		oracle := mustExec(t, e, "SELECT id FROM items WHERE cat || '' = 'c2'")
		sameRows(t, got, oracle, label)
		for _, r := range got.Rows {
			if id := r[0].Int(); id == 7 || id == 17 {
				t.Fatalf("%s: stale index entry for id %d", label, id)
			}
		}
		one := mustExec(t, e, "SELECT n FROM items WHERE cat = 'c9'")
		if len(one.Rows) != 1 {
			t.Fatalf("%s: want 1 row in c9, got %d", label, len(one.Rows))
		}
	}
	check(e, "live")

	// Reopen from the WAL: index definitions and contents must survive.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(st2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	check(e2, "replayed")
}

func TestPlanCacheHitMissAndDDLInvalidation(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)

	miss0, hit0 := e.mPlanMiss.Value(), e.mPlanHit.Value()
	const q = "SELECT name FROM users WHERE id = ?"
	if _, err := e.Exec(q, types.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if got := e.mPlanMiss.Value() - miss0; got != 1 {
		t.Fatalf("first exec: want 1 miss, got %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Exec(q, types.NewInt(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.mPlanHit.Value() - hit0; got != 3 {
		t.Fatalf("repeats: want 3 hits, got %d", got)
	}

	// DDL purges the cache.
	if e.plans.len() == 0 {
		t.Fatal("cache unexpectedly empty before DDL")
	}
	mustExec(t, e, "CREATE INDEX idx_tmp ON users (name)")
	if n := e.plans.len(); n != 0 {
		t.Fatalf("cache not purged by DDL: %d entries", n)
	}

	// Regression: drop + recreate with a different shape must not serve a
	// stale plan for the same SQL text.
	const probe = "SELECT * FROM users WHERE id = 1"
	r1 := mustExec(t, e, probe)
	mustExec(t, e, "DROP TABLE users")
	if _, err := e.Exec(probe); err == nil {
		t.Fatal("query against dropped table should fail")
	}
	mustExec(t, e, "CREATE TABLE users (id INT PRIMARY KEY, flag INT)")
	mustExec(t, e, "INSERT INTO users (id, flag) VALUES (1, 42)")
	r2 := mustExec(t, e, probe)
	if len(r1.Columns) == len(r2.Columns) {
		t.Fatalf("recreated table should project differently: %v vs %v", r1.Columns, r2.Columns)
	}
	if len(r2.Rows) != 1 || r2.Rows[0][1].Int() != 42 {
		t.Fatalf("recreated table query wrong: %+v", r2.Rows)
	}
}

func TestScanAccountingCountsExaminedRows(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)

	// Full scan with a selective predicate: all 5 rows are examined even
	// though only 1 is returned.
	s0 := e.mRowsScanned.Value()
	res := mustExec(t, e, "SELECT * FROM users WHERE name = 'dan'")
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
	if got := e.mRowsScanned.Value() - s0; got != 5 {
		t.Fatalf("full scan: want 5 rows examined, got %d", got)
	}

	// Point lookup examines only the candidate.
	s0 = e.mRowsScanned.Value()
	mustExec(t, e, "SELECT * FROM users WHERE id = 3")
	if got := e.mRowsScanned.Value() - s0; got != 1 {
		t.Fatalf("pk point: want 1 row examined, got %d", got)
	}

	// rows_returned is tracked separately.
	r0 := e.mRowsReturned.Value()
	mustExec(t, e, "SELECT * FROM users")
	if got := e.mRowsReturned.Value() - r0; got != 5 {
		t.Fatalf("want 5 rows returned, got %d", got)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE pts (id INT PRIMARY KEY, v INT, w STRING)")
	// Values with duplicates so stability matters; insertion order is id.
	vals := []int{5, 3, 8, 3, 9, 1, 8, 3, 7, 0, 9, 2}
	for i, v := range vals {
		mustExec(t, e, fmt.Sprintf("INSERT INTO pts (id, v, w) VALUES (%d, %d, 'w%d')", i, v, i))
	}

	full := mustExec(t, e, "SELECT id, v FROM pts ORDER BY v, id")
	for _, tc := range []struct{ limit, offset int }{
		{3, 0}, {1, 0}, {5, 2}, {12, 0}, {100, 0}, {4, 10},
	} {
		sql := fmt.Sprintf("SELECT id, v FROM pts ORDER BY v, id LIMIT %d", tc.limit)
		if tc.offset > 0 {
			sql += fmt.Sprintf(" OFFSET %d", tc.offset)
		}
		got := mustExec(t, e, sql)
		lo := tc.offset
		if lo > len(full.Rows) {
			lo = len(full.Rows)
		}
		hi := lo + tc.limit
		if hi > len(full.Rows) {
			hi = len(full.Rows)
		}
		want := full.Rows[lo:hi]
		if len(got.Rows) != len(want) {
			t.Fatalf("%s: got %d rows, want %d", sql, len(got.Rows), len(want))
		}
		for i := range want {
			if types.RowKey(got.Rows[i]) != types.RowKey(want[i]) {
				t.Fatalf("%s: row %d = %v, want %v", sql, i, got.Rows[i], want[i])
			}
		}
	}

	// Ties without an id tie-break still come back in insertion order
	// (stable ordering), and DESC with a parameterized limit works.
	got := mustExec(t, e, "SELECT id FROM pts ORDER BY v LIMIT 2")
	if got.Rows[0][0].Int() != 9 || got.Rows[1][0].Int() != 5 {
		t.Fatalf("stable ties broken: %+v", got.Rows)
	}
	got = mustExec(t, e, "SELECT id, v FROM pts ORDER BY v DESC LIMIT ?", types.NewInt(2))
	if len(got.Rows) != 2 || got.Rows[0][1].Int() != 9 {
		t.Fatalf("desc top-k wrong: %+v", got.Rows)
	}
}

func TestMultiColumnHashJoin(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE l (a INT, b INT, tag STRING)")
	mustExec(t, e, "CREATE TABLE r (c INT, d INT, pay INT)")
	for i := 0; i < 20; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO l (a, b, tag) VALUES (%d, %d, 't%d')", i%4, i%3, i))
		mustExec(t, e, fmt.Sprintf("INSERT INTO r (c, d, pay) VALUES (%d, %d, %d)", i%5, i%3, i*10))
	}

	// EXPLAIN classifies the two-column equality as a hash join.
	wantLine(t, explainLines(t, e, "SELECT * FROM l JOIN r ON a = c AND b = d"), "join r: hash-join")

	// Oracle: the same predicate via cross product + WHERE.
	got := mustExec(t, e, "SELECT tag, pay FROM l JOIN r ON a = c AND b = d")
	want := mustExec(t, e, "SELECT tag, pay FROM l, r WHERE a = c AND b = d")
	if len(got.Rows) == 0 {
		t.Fatal("join produced no rows")
	}
	sameRows(t, got, want, "multi-column hash join")

	// Residual conjunct rides along with the equalities.
	got = mustExec(t, e, "SELECT tag, pay FROM l JOIN r ON a = c AND b = d AND pay > 50")
	want = mustExec(t, e, "SELECT tag, pay FROM l, r WHERE a = c AND b = d AND pay > 50")
	sameRows(t, got, want, "hash join with residual")

	// LEFT JOIN pads rows whose key misses (or whose residual fails).
	mustExec(t, e, "INSERT INTO l (a, b, tag) VALUES (99, 99, 'orphan')")
	got = mustExec(t, e, "SELECT tag, pay FROM l LEFT JOIN r ON a = c AND b = d")
	foundOrphan := false
	for _, row := range got.Rows {
		if row[0].String() == "orphan" {
			foundOrphan = true
			if !row[1].IsNull() {
				t.Fatalf("orphan row not padded: %+v", row)
			}
		}
	}
	if !foundOrphan {
		t.Fatal("LEFT JOIN dropped unmatched row")
	}
}

func TestJoinProbesStorageIndex(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE orders (oid INT PRIMARY KEY, uid INT)")
	mustExec(t, e, "CREATE TABLE users2 (id INT PRIMARY KEY, city STRING)")
	for i := 0; i < 30; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO users2 (id, city) VALUES (%d, 'c%d')", i, i%3))
		mustExec(t, e, fmt.Sprintf("INSERT INTO orders (oid, uid) VALUES (%d, %d)", i, (i*7)%35))
	}

	// Right side keyed on its primary key: probed via LookupPK.
	s0 := e.mRowsScanned.Value()
	got := mustExec(t, e, "SELECT oid, city FROM orders o JOIN users2 u ON o.uid = u.id")
	probeScanned := e.mRowsScanned.Value() - s0
	want := mustExec(t, e, "SELECT oid, city FROM orders o, users2 u WHERE o.uid = u.id")
	sameRows(t, got, want, "pk-probe join")
	// The probe fetches at most one users2 row per order instead of
	// materializing all 30; plus the 30-row orders scan.
	if probeScanned > 60 {
		t.Fatalf("probe join scanned %d rows, expected <= 60", probeScanned)
	}

	// Right side with a secondary index over the join column.
	mustExec(t, e, "CREATE INDEX idx_u2_city ON users2 (city)")
	mustExec(t, e, "CREATE TABLE cities (name STRING)")
	mustExec(t, e, "INSERT INTO cities (name) VALUES ('c0'), ('c1'), ('zzz')")
	got = mustExec(t, e, "SELECT name, id FROM cities JOIN users2 ON name = city")
	want = mustExec(t, e, "SELECT name, id FROM cities, users2 WHERE name = city")
	sameRows(t, got, want, "secondary-index-probe join")

	// LEFT variant keeps the unmatched city padded.
	got = mustExec(t, e, "SELECT name, id FROM cities LEFT JOIN users2 ON name = city")
	pad := 0
	for _, row := range got.Rows {
		if row[1].IsNull() {
			pad++
			if row[0].String() != "zzz" {
				t.Fatalf("wrong padded row: %+v", row)
			}
		}
	}
	if pad != 1 {
		t.Fatalf("want 1 padded row, got %d", pad)
	}
}

func TestUniqueColumnPath(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE accts (id INT PRIMARY KEY, email STRING UNIQUE, bal INT)")
	for i := 0; i < 10; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO accts (id, email, bal) VALUES (%d, 'u%d@x', %d)", i, i, i*100))
	}
	wantLine(t, explainLines(t, e, "SELECT * FROM accts WHERE email = 'u4@x'"), "scan accts: unique-point")
	res := mustExec(t, e, "SELECT bal FROM accts WHERE email = 'u4@x'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 400 {
		t.Fatalf("unique lookup wrong: %+v", res.Rows)
	}
	// Unbound-parameter EXPLAIN still reports the path, and execution
	// with the argument bound returns the right row.
	wantLine(t, explainLines(t, e, "SELECT * FROM accts WHERE email = ?"), "scan accts: unique-point")
	res = mustExec(t, e, "SELECT bal FROM accts WHERE email = ?", types.NewString("u7@x"))
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 700 {
		t.Fatalf("unique param lookup wrong: %+v", res.Rows)
	}
	// NULL key matches nothing (SQL semantics), via the index path.
	res = mustExec(t, e, "SELECT bal FROM accts WHERE email = ?", types.Null)
	if len(res.Rows) != 0 {
		t.Fatalf("NULL key should match nothing, got %d rows", len(res.Rows))
	}
}

func TestExplainRoundTripThroughPrinter(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	// The slow-query log renders statements with String(); EXPLAIN must
	// print back to parseable SQL.
	lines := explainLines(t, e, "SELECT name FROM users WHERE id = 1")
	if len(lines) == 0 {
		t.Fatal("no plan lines")
	}
	if !strings.HasPrefix(lines[0], "scan users:") {
		t.Fatalf("unexpected first line %q", lines[0])
	}
}
