package engine

import (
	"fmt"

	"ediflow/internal/catalog"
	"ediflow/internal/engine/vm"
	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

func (e *Engine) execCreateTable(s *sqltext.CreateTable) (*Result, []ChangeEvent, error) {
	if _, exists := e.cat.Table(s.Name); exists {
		if s.IfNotExists {
			return &Result{}, nil, nil
		}
		return nil, nil, fmt.Errorf("engine: table %q already exists", s.Name)
	}
	schema := catalog.SchemaFromAST(s)
	if err := e.cat.AddTable(schema); err != nil {
		return nil, nil, err
	}
	if err := e.store.CreateTable(schema); err != nil {
		e.cat.DropTable(schema.Name)
		return nil, nil, err
	}
	return &Result{}, nil, nil
}

func (e *Engine) execDropTable(s *sqltext.DropTable) (*Result, []ChangeEvent, error) {
	if _, exists := e.cat.Table(s.Name); !exists {
		if s.IfExists {
			return &Result{}, nil, nil
		}
		return nil, nil, fmt.Errorf("engine: no such table %q", s.Name)
	}
	if e.inTxn.Load() {
		return nil, nil, fmt.Errorf("engine: DROP TABLE inside a transaction is not supported")
	}
	if vs := e.views.dependents(s.Name); len(vs) > 0 {
		return nil, nil, fmt.Errorf("engine: table %q is referenced by view %q", s.Name, vs[0].def.Name)
	}
	if err := e.cat.DropTable(s.Name); err != nil {
		return nil, nil, err
	}
	if err := e.store.DropTable(s.Name); err != nil {
		return nil, nil, err
	}
	return &Result{}, nil, nil
}

func (e *Engine) execCreateIndex(s *sqltext.CreateIndex) (*Result, []ChangeEvent, error) {
	if err := e.cat.AddIndex(&catalog.Index{Name: s.Name, Table: s.Table, Columns: s.Columns, Unique: s.Unique}); err != nil {
		return nil, nil, err
	}
	if err := e.store.AddIndex(s.Name, s.Table, s.Columns, s.Unique); err != nil {
		return nil, nil, err
	}
	return &Result{}, nil, nil
}

func (e *Engine) execCreateTrigger(s *sqltext.CreateTrigger) (*Result, []ChangeEvent, error) {
	if err := e.cat.AddTrigger(&catalog.Trigger{Name: s.Name, Event: s.Event, Table: s.Table, Handler: s.Handler}); err != nil {
		return nil, nil, err
	}
	if err := e.store.PutMeta("trigger", s.Name, s.String()); err != nil {
		return nil, nil, err
	}
	return &Result{}, nil, nil
}

// resolveInsertTarget maps the statement's column list to schema positions.
func resolveInsertTarget(schema *catalog.TableSchema, cols []string) ([]int, error) {
	if len(cols) == 0 {
		all := make([]int, len(schema.Columns))
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	out := make([]int, len(cols))
	seen := map[int]bool{}
	for i, c := range cols {
		p := schema.ColIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("engine: no column %q in %s", c, schema.Name)
		}
		if seen[p] {
			return nil, fmt.Errorf("engine: duplicate column %q", c)
		}
		seen[p] = true
		out[i] = p
	}
	return out, nil
}

func (e *Engine) execInsert(s *sqltext.Insert, args []types.Value) (*Result, []ChangeEvent, error) {
	if _, isView := e.cat.View(s.Table); isView {
		return nil, nil, fmt.Errorf("engine: cannot INSERT into view %q", s.Table)
	}
	schema, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	target, err := resolveInsertTarget(schema, s.Columns)
	if err != nil {
		return nil, nil, err
	}

	var sourceRows []types.Row
	if s.Query != nil {
		res, err := e.evalSelect(s.Query, args, e.writerCtx())
		if err != nil {
			return nil, nil, err
		}
		sourceRows = res.Rows
	} else {
		b := newBinder(e, args, nil, nil, e.writerCtx())
		for _, exprRow := range s.Rows {
			row := make(types.Row, len(exprRow))
			for i, ex := range exprRow {
				v, err := b.eval(ex, nil)
				if err != nil {
					return nil, nil, err
				}
				row[i] = v
			}
			sourceRows = append(sourceRows, row)
		}
	}

	ev := ChangeEvent{Table: schema.Name, Op: OpInsert}
	for _, src := range sourceRows {
		if len(src) != len(target) {
			return nil, nil, fmt.Errorf("engine: INSERT into %s: %d values for %d columns", s.Table, len(src), len(target))
		}
		full := make(types.Row, len(schema.Columns))
		for i := range full {
			full[i] = types.Null
		}
		for i, p := range target {
			v, err := src[i].CoerceTo(schema.Columns[p].Type)
			if err != nil {
				return nil, nil, fmt.Errorf("engine: column %s.%s: %w", s.Table, schema.Columns[p].Name, err)
			}
			full[p] = v
		}
		tid, created, err := e.store.Insert(schema.Name, full)
		if err != nil {
			return nil, nil, err
		}
		if e.inTxn.Load() {
			e.undo = append(e.undo, undoEntry{op: OpInsert, table: schema.Name, tid: tid, created: created, newRow: full})
		}
		ev.TIDs = append(ev.TIDs, tid)
		ev.Rows = append(ev.Rows, full)
	}
	events := []ChangeEvent{}
	if len(ev.TIDs) > 0 {
		e.seq++
		ev.Seq = e.seq
		events = append(events, ev)
		viewEvents, err := e.views.applyDelta(schema.Name, ev.Rows, nil)
		if err != nil {
			return nil, nil, err
		}
		events = append(events, viewEvents...)
	}
	return &Result{Affected: len(ev.TIDs), TIDs: ev.TIDs}, events, nil
}

// matchTable builds the single-table relation for UPDATE/DELETE row
// selection, using the same planner access paths as SELECT scans.
func (e *Engine) matchTable(table string, where sqltext.Expr, args []types.Value) (*relation, *binder, error) {
	sel := &sqltext.Select{
		Items: []sqltext.SelectItem{{Star: true}},
		From:  &sqltext.TableRef{Table: table},
		Where: where,
	}
	rel, whereApplied, err := e.buildTableRef(*sel.From, args, nil, sel, e.writerCtx())
	if err != nil {
		return nil, nil, err
	}
	b := newBinder(e, args, rel, nil, e.writerCtx())
	if where != nil && !whereApplied {
		if prog := e.compiledProg(where, rel.cols); prog != nil {
			kept, err := e.runFilterRows(prog, rel.cols, rel.rows, args)
			if err != nil {
				return nil, nil, err
			}
			rel.rows = kept
			return rel, b, nil
		}
		kept := rel.rows[:0:0]
		for _, r := range rel.rows {
			ok, err := b.evalBool(where, r)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rel.rows = kept
	}
	return rel, b, nil
}

func (e *Engine) execUpdate(s *sqltext.Update, args []types.Value) (*Result, []ChangeEvent, error) {
	if _, isView := e.cat.View(s.Table); isView {
		return nil, nil, fmt.Errorf("engine: cannot UPDATE view %q", s.Table)
	}
	schema, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	// Resolve assignment targets.
	setPos := make([]int, len(s.Set))
	for i, a := range s.Set {
		p := schema.ColIndex(a.Column)
		if p < 0 {
			return nil, nil, fmt.Errorf("engine: no column %q in %s", a.Column, s.Table)
		}
		setPos[i] = p
	}
	rel, b, err := e.matchTable(s.Table, s.Where, args)
	if err != nil {
		return nil, nil, err
	}

	nUser := len(schema.Columns)
	// Batch-evaluate SET expressions that lower to the VM across all
	// matched rows. Lane errors are held per (row, assignment) and
	// surfaced inside the apply loop below, so the interleaving with
	// store.Update — rows before the erroring one are still applied —
	// matches the interpreter exactly.
	setVals, setErrs := e.updateSetVecs(s, rel, args)
	ev := ChangeEvent{Table: schema.Name, Op: OpUpdate}
	for ri, r := range rel.rows {
		tid := r[nUser].Int() // _tid system column
		oldRow := make(types.Row, nUser)
		copy(oldRow, r[:nUser])
		newRow := make(types.Row, nUser)
		copy(newRow, oldRow)
		for i, a := range s.Set {
			var v types.Value
			var err error
			if setVals != nil && setVals[i] != nil {
				if setErrs[i] != nil {
					err = setErrs[i][ri]
				}
				v = setVals[i][ri]
			} else {
				v, err = b.eval(a.Value, r)
			}
			if err != nil {
				return nil, nil, err
			}
			cv, err := v.CoerceTo(schema.Columns[setPos[i]].Type)
			if err != nil {
				return nil, nil, fmt.Errorf("engine: column %s.%s: %w", s.Table, a.Column, err)
			}
			newRow[setPos[i]] = cv
		}
		if _, err := e.store.Update(schema.Name, tid, newRow); err != nil {
			return nil, nil, err
		}
		if e.inTxn.Load() {
			e.undo = append(e.undo, undoEntry{op: OpUpdate, table: schema.Name, tid: tid, oldRow: oldRow, newRow: newRow})
		}
		ev.TIDs = append(ev.TIDs, tid)
		ev.Rows = append(ev.Rows, newRow)
		ev.OldRows = append(ev.OldRows, oldRow)
	}
	events := []ChangeEvent{}
	if len(ev.TIDs) > 0 {
		e.seq++
		ev.Seq = e.seq
		events = append(events, ev)
		viewEvents, err := e.views.applyDelta(schema.Name, ev.Rows, ev.OldRows)
		if err != nil {
			return nil, nil, err
		}
		events = append(events, viewEvents...)
	}
	return &Result{Affected: len(ev.TIDs)}, events, nil
}

// updateSetVecs batch-evaluates the UPDATE's SET expressions over the
// matched rows through the VM. Returns per-assignment value and error
// columns; a nil column means that assignment stays on the interpreter.
func (e *Engine) updateSetVecs(s *sqltext.Update, rel *relation, args []types.Value) ([][]types.Value, [][]error) {
	if !e.vmOn() || len(rel.rows) == 0 {
		return nil, nil
	}
	var progs []*vm.Program
	var which []int
	for i, a := range s.Set {
		if p := e.compiledProg(a.Value, rel.cols); p != nil {
			progs = append(progs, p)
			which = append(which, i)
		}
	}
	if len(progs) == 0 {
		return nil, nil
	}
	n := len(rel.rows)
	setVals := make([][]types.Value, len(s.Set))
	setErrs := make([][]error, len(s.Set))
	for _, i := range which {
		setVals[i] = make([]types.Value, n)
	}
	err := e.evalVecs(progs, rel, args, func(start, count int, vecs []*vm.Vec) error {
		for vi, i := range which {
			for ri := 0; ri < count; ri++ {
				if err := vecs[vi].Err(ri); err != nil {
					if setErrs[i] == nil {
						setErrs[i] = make([]error, n)
					}
					setErrs[i][start+ri] = err
					continue
				}
				setVals[i][start+ri] = vecs[vi].Value(ri)
			}
		}
		return nil
	})
	if err != nil {
		// evalVecs only fails through the sink, which never errors here.
		return nil, nil
	}
	return setVals, setErrs
}

func (e *Engine) execDelete(s *sqltext.Delete, args []types.Value) (*Result, []ChangeEvent, error) {
	if _, isView := e.cat.View(s.Table); isView {
		return nil, nil, fmt.Errorf("engine: cannot DELETE from view %q", s.Table)
	}
	schema, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	rel, _, err := e.matchTable(s.Table, s.Where, args)
	if err != nil {
		return nil, nil, err
	}
	nUser := len(schema.Columns)
	ev := ChangeEvent{Table: schema.Name, Op: OpDelete}
	for _, r := range rel.rows {
		tid := r[nUser].Int()
		created := r[nUser+1].Int()
		old, err := e.store.Delete(schema.Name, tid)
		if err != nil {
			return nil, nil, err
		}
		if e.inTxn.Load() {
			e.undo = append(e.undo, undoEntry{op: OpDelete, table: schema.Name, tid: tid, created: created, oldRow: old})
		}
		ev.TIDs = append(ev.TIDs, tid)
		ev.OldRows = append(ev.OldRows, old)
	}
	events := []ChangeEvent{}
	if len(ev.TIDs) > 0 {
		e.seq++
		ev.Seq = e.seq
		events = append(events, ev)
		viewEvents, err := e.views.applyDelta(schema.Name, nil, ev.OldRows)
		if err != nil {
			return nil, nil, err
		}
		events = append(events, viewEvents...)
	}
	return &Result{Affected: len(ev.TIDs)}, events, nil
}
