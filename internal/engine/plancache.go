package engine

import (
	"container/list"
	"sync"

	"ediflow/internal/sqltext"
)

// planCache is a small LRU of parsed statements keyed by SQL text, so
// repeated statements (the wire protocol's prepared-statement pattern:
// same text, different arguments) skip the lexer and parser entirely.
//
// Caching parsed ASTs across executions is safe because the engine never
// mutates an AST: parameters are bound positionally at evaluation time
// and all per-execution memoization lives in the binder, keyed by
// expression pointer.
type planCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used; values are *planEntry
}

type planEntry struct {
	key string
	val any
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, m: map[string]*list.Element{}, lru: list.New()}
}

func (c *planCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).val, true
}

func (c *planCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&planEntry{key: key, val: val})
	for len(c.m) > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.m, last.Value.(*planEntry).key)
	}
}

// purge empties the cache. Every successful DDL statement purges:
// today's cached plans are bare ASTs that resolve names at execution
// time, but evicting on schema change keeps the invalidation contract
// simple and stays correct if richer (name-resolved) plans are cached
// later.
func (c *planCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]*list.Element{}
	c.lru.Init()
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// isDDL reports whether st changes the schema and must purge the cache.
func isDDL(st sqltext.Statement) bool {
	switch st.(type) {
	case *sqltext.CreateTable, *sqltext.DropTable, *sqltext.CreateIndex,
		*sqltext.CreateView, *sqltext.DropView, *sqltext.CreateTrigger:
		return true
	}
	return false
}
