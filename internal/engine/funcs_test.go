package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ediflow/internal/types"
)

func evalScalarSQL(t *testing.T, e *Engine, expr string) types.Value {
	t.Helper()
	res := mustExec(t, e, "SELECT "+expr)
	return res.Rows[0][0]
}

func TestScalarFunctions(t *testing.T) {
	e := newTestDB(t)
	cases := []struct {
		expr string
		want string
	}{
		{"ABS(-5)", "5"},
		{"ABS(2.5)", "2.5"},
		{"LENGTH('héllo')", "5"},
		{"UPPER('aBc')", "ABC"},
		{"LOWER('AbC')", "abc"},
		{"TRIM('  x  ')", "x"},
		{"SUBSTR('abcdef', 2, 3)", "bcd"},
		{"SUBSTR('abcdef', 4)", "def"},
		{"SUBSTR('abc', 9)", ""},
		{"SUBSTR('abc', -2, 2)", "ab"},
		{"CONCAT('a', 1, 'b')", "a1b"},
		{"ROUND(2.6)", "3"},
		{"FLOOR(2.9)", "2"},
		{"CEIL(2.1)", "3"},
		{"SQRT(16)", "4"},
		{"COALESCE(NULL, NULL, 7)", "7"},
		{"COALESCE(NULL, 'x', 'y')", "x"},
		{"NULLIF(3, 3)", "NULL"},
		{"NULLIF(3, 4)", "3"},
		{"IIF(TRUE, 'yes', 'no')", "yes"},
		{"IIF(1 > 2, 'yes', 'no')", "no"},
		{"CAST_INT('42')", "42"},
		{"CAST_FLOAT(3)", "3"},
		{"CAST_STRING(12)", "12"},
		{"LENGTH(NULL)", "NULL"},
		{"UPPER(NULL)", "NULL"},
		{"ABS(NULL)", "NULL"},
	}
	for _, c := range cases {
		got := evalScalarSQL(t, e, c.expr)
		if got.String() != c.want {
			t.Errorf("%s = %s, want %s", c.expr, got, c.want)
		}
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	e := newTestDB(t)
	bad := []string{
		"SELECT NOSUCHFN(1)",
		"SELECT ABS(1, 2)",
		"SELECT ABS('text')",
		"SELECT SQRT(-1)",
		"SELECT SUBSTR('x')",
		"SELECT NOW(1)",
		"SELECT CAST_INT('nope')",
	}
	for _, sql := range bad {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
	// NOW() works and yields a TIME.
	res := mustExec(t, e, "SELECT NOW()")
	if res.Rows[0][0].Kind() != types.KindTime {
		t.Errorf("NOW() kind: %v", res.Rows[0][0].Kind())
	}
}

func TestLikeSemantics(t *testing.T) {
	e := newTestDB(t)
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h___l", false},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"abc", "a%b%c", true},
		{"mississippi", "%iss%ppi", true},
		{"héllo", "h_llo", true}, // '_' matches one rune
	}
	for _, c := range cases {
		got := evalScalarSQL(t, e, fmt.Sprintf("'%s' LIKE '%s'", c.s, c.pat))
		if got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got.Bool(), c.want)
		}
	}
}

// Property test: random WHERE predicates over random rows produce the same
// result as a direct Go evaluation.
func TestRandomPredicatesAgainstReference(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE p (a INT, b INT, s STRING)")
	rng := rand.New(rand.NewSource(123))
	type row struct {
		a, b int64
		s    string
	}
	var rows []row
	strsPool := []string{"x", "y", "zz", "xy"}
	for i := 0; i < 60; i++ {
		r := row{a: int64(rng.Intn(20)), b: int64(rng.Intn(20)), s: strsPool[rng.Intn(len(strsPool))]}
		rows = append(rows, r)
		mustExec(t, e, fmt.Sprintf("INSERT INTO p VALUES (%d, %d, '%s')", r.a, r.b, r.s))
	}

	type pred struct {
		sql string
		fn  func(r row) bool
	}
	atoms := []pred{
		{"a < b", func(r row) bool { return r.a < r.b }},
		{"a = b", func(r row) bool { return r.a == r.b }},
		{"a >= 10", func(r row) bool { return r.a >= 10 }},
		{"b != 5", func(r row) bool { return r.b != 5 }},
		{"s = 'x'", func(r row) bool { return r.s == "x" }},
		{"s LIKE 'x%'", func(r row) bool { return len(r.s) > 0 && r.s[0] == 'x' }},
		{"a + b > 20", func(r row) bool { return r.a+r.b > 20 }},
		{"a BETWEEN 5 AND 15", func(r row) bool { return r.a >= 5 && r.a <= 15 }},
		{"a IN (1, 3, 5, 7)", func(r row) bool { return r.a == 1 || r.a == 3 || r.a == 5 || r.a == 7 }},
		{"a % 2 = 0", func(r row) bool { return r.a%2 == 0 }},
	}
	for trial := 0; trial < 200; trial++ {
		p1 := atoms[rng.Intn(len(atoms))]
		p2 := atoms[rng.Intn(len(atoms))]
		p3 := atoms[rng.Intn(len(atoms))]
		var sql string
		var fn func(r row) bool
		switch rng.Intn(4) {
		case 0:
			sql = fmt.Sprintf("(%s) AND (%s)", p1.sql, p2.sql)
			fn = func(r row) bool { return p1.fn(r) && p2.fn(r) }
		case 1:
			sql = fmt.Sprintf("(%s) OR (%s)", p1.sql, p2.sql)
			fn = func(r row) bool { return p1.fn(r) || p2.fn(r) }
		case 2:
			sql = fmt.Sprintf("NOT (%s)", p1.sql)
			fn = func(r row) bool { return !p1.fn(r) }
		default:
			sql = fmt.Sprintf("(%s) AND ((%s) OR (%s))", p1.sql, p2.sql, p3.sql)
			fn = func(r row) bool { return p1.fn(r) && (p2.fn(r) || p3.fn(r)) }
		}
		res := mustExec(t, e, "SELECT COUNT(*) FROM p WHERE "+sql)
		want := 0
		for _, r := range rows {
			if fn(r) {
				want++
			}
		}
		if res.Rows[0][0].Int() != int64(want) {
			t.Fatalf("trial %d: WHERE %s → %d, reference %d", trial, sql, res.Rows[0][0].Int(), want)
		}
	}
}

// Transactions must keep materialized views consistent through rollback.
func TestTransactionRollbackWithViews(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (k STRING, v INT)")
	mustExec(t, e, "INSERT INTO t VALUES ('a', 1), ('b', 2)")
	mustExec(t, e, "CREATE MATERIALIZED VIEW agg AS SELECT k, SUM(v) AS s FROM t GROUP BY k")
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "INSERT INTO t VALUES ('a', 10)")
	mustExec(t, e, "DELETE FROM t WHERE k = 'b'")
	mustExec(t, e, "UPDATE t SET v = 99 WHERE k = 'a' AND v = 1")
	mustExec(t, e, "ROLLBACK")
	res := mustExec(t, e, "SELECT k, s FROM agg ORDER BY k")
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 1 || res.Rows[1][1].Int() != 2 {
		t.Fatalf("view after rollback: %v", res.Rows)
	}
	// And the view still maintains correctly afterwards.
	mustExec(t, e, "INSERT INTO t VALUES ('a', 4)")
	v, _ := e.Query("SELECT s FROM agg WHERE k = 'a'")
	if v.Rows[0][0].Int() != 5 {
		t.Fatalf("view after post-rollback insert: %v", v.Rows)
	}
}

func TestConcurrentWriters(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE w (g INT, n INT)")
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if _, err := e.Exec(fmt.Sprintf("INSERT INTO w VALUES (%d, %d)", g, i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, e, "SELECT COUNT(*), COUNT(DISTINCT g) FROM w")
	if res.Rows[0][0].Int() != 200 || res.Rows[0][1].Int() != 4 {
		t.Fatalf("%v", res.Rows)
	}
}
