package engine

import "testing"

func TestExistsPredicate(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE orders (oid INT PRIMARY KEY, uid INT)")
	mustExec(t, e, "INSERT INTO orders VALUES (1, 1)")

	res := mustExec(t, e, "SELECT name FROM users WHERE EXISTS (SELECT oid FROM orders)")
	if len(res.Rows) != 5 {
		t.Fatalf("EXISTS true: %d rows", len(res.Rows))
	}
	res = mustExec(t, e, "SELECT name FROM users WHERE EXISTS (SELECT oid FROM orders WHERE uid = 99)")
	if len(res.Rows) != 0 {
		t.Fatalf("EXISTS false: %d rows", len(res.Rows))
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM users WHERE NOT EXISTS (SELECT oid FROM orders WHERE uid = 99)")
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("NOT EXISTS: %v", res.Rows)
	}
	// As a scalar output.
	res = mustExec(t, e, "SELECT EXISTS (SELECT oid FROM orders) AS any_orders")
	if !res.Rows[0][0].Bool() {
		t.Fatalf("%v", res.Rows)
	}
}

func TestDropView(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE MATERIALIZED VIEW v AS SELECT id FROM users")
	mustExec(t, e, "DROP VIEW v")
	if _, err := e.Query("SELECT * FROM v"); err == nil {
		t.Fatal("view still queryable after drop")
	}
	// The base table is droppable again (no dependents).
	mustExec(t, e, "DROP TABLE users")
	// IF EXISTS swallows the absence.
	mustExec(t, e, "DROP VIEW IF EXISTS v")
	if _, err := e.Exec("DROP VIEW v"); err == nil {
		t.Fatal("double drop must fail")
	}
}

func TestDropViewSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "CREATE MATERIALIZED VIEW va AS SELECT a FROM t")
	mustExec(t, e, "DROP VIEW va")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openDurable(t, dir)
	defer e2.Close()
	if _, err := e2.Query("SELECT * FROM va"); err == nil {
		t.Fatal("dropped view resurrected after restart")
	}
	// The name is reusable.
	mustExec(t, e2, "CREATE MATERIALIZED VIEW va AS SELECT a FROM t")
	mustExec(t, e2, "INSERT INTO t VALUES (1)")
	res := mustExec(t, e2, "SELECT COUNT(*) FROM va")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("%v", res.Rows)
	}
}
