package engine

import (
	"testing"

	"ediflow/internal/types"
)

// ids returns the id column of a result as a set of int64s.
func ids(t *testing.T, res *Result) map[int64]bool {
	t.Helper()
	out := map[int64]bool{}
	for _, r := range res.Rows {
		n, err := r[0].AsInt()
		if err != nil {
			t.Fatal(err)
		}
		out[n] = true
	}
	return out
}

// TestNullThreeValuedFilters checks that NULL comparisons are "unknown"
// rather than false: a row can satisfy neither a predicate nor its
// negation. User dan (id 4) has age NULL.
func TestNullThreeValuedFilters(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)

	cases := []struct {
		where string
		want  []int64
	}{
		// The headline bug: NOT (age = NULL) must not match every row.
		{"NOT (age = NULL)", nil},
		{"age = NULL", nil},
		{"age != NULL", nil},
		{"NOT (age > 26)", []int64{2}},                     // dan's NULL stays excluded under NOT
		{"NOT (age <= 26)", []int64{1, 3, 5}},              // and from the complement too
		{"age > 26 OR age <= 26", []int64{1, 2, 3, 5}},     // tautology never resurrects NULL
		{"NOT (age BETWEEN 0 AND 200)", nil},               // BETWEEN is unknown on NULL
		{"NOT (age IN (25, 30))", []int64{3, 5}},           // IN: dan is unknown, not true
		{"age IN (25, NULL)", []int64{2}},                  // NULL in list can only add matches
		{"NOT (age IN (25, NULL))", nil},                   // ...and poisons the negation entirely
		{"NOT (name LIKE 'a%')", []int64{2, 3, 4, 5}},      // LIKE on non-null behaves
		{"age IS NULL OR age > 100", []int64{4}},           // IS NULL is two-valued
		{"age = NULL OR city = 'lyon'", []int64{2}},        // unknown OR true = true
		{"NOT (age = NULL AND city = 'nice')", []int64{1, 2, 3, 5}}, // false AND unknown = false for others; dan unknown
		{"age = NULL AND 1 = 0", nil},                      // unknown AND false = false
	}
	for _, c := range cases {
		res, err := e.Query("SELECT id FROM users WHERE " + c.where)
		if err != nil {
			t.Fatalf("WHERE %s: %v", c.where, err)
		}
		got := ids(t, res)
		if len(got) != len(c.want) {
			t.Errorf("WHERE %s: got ids %v, want %v", c.where, got, c.want)
			continue
		}
		for _, id := range c.want {
			if !got[id] {
				t.Errorf("WHERE %s: missing id %d (got %v)", c.where, id, got)
			}
		}
	}
}

// TestNullThreeValuedScalars checks the scalar values themselves (in the
// projection, where unknown must surface as NULL, not false).
func TestNullThreeValuedScalars(t *testing.T) {
	e := newTestDB(t)

	cases := []struct {
		expr string
		want types.Value
	}{
		{"NULL = 1", types.Null},
		{"NOT (NULL = 1)", types.Null},
		{"NULL != NULL", types.Null},
		{"NULL < 5", types.Null},
		{"1 = 1 AND NULL = 1", types.Null},
		{"1 = 0 AND NULL = 1", types.NewBool(false)},
		{"NULL = 1 AND 1 = 0", types.NewBool(false)},
		{"1 = 1 OR NULL = 1", types.NewBool(true)},
		{"NULL = 1 OR 1 = 1", types.NewBool(true)},
		{"1 = 0 OR NULL = 1", types.Null},
		{"NULL BETWEEN 1 AND 2", types.Null},
		{"2 BETWEEN NULL AND 3", types.Null},
		{"NULL LIKE 'a%'", types.Null},
		{"'abc' LIKE NULL", types.Null},
		{"NULL IN (1, 2)", types.Null},
		{"3 IN (1, NULL)", types.Null},
		{"1 IN (1, NULL)", types.NewBool(true)},
		{"3 NOT IN (1, 2)", types.NewBool(true)},
		{"3 NOT IN (1, NULL)", types.Null},
		{"NULL IS NULL", types.NewBool(true)},
		{"NOT (NULL IS NULL)", types.NewBool(false)},
	}
	for _, c := range cases {
		res, err := e.Query("SELECT " + c.expr)
		if err != nil {
			t.Fatalf("SELECT %s: %v", c.expr, err)
		}
		got := res.Rows[0][0]
		if c.want.IsNull() {
			if !got.IsNull() {
				t.Errorf("SELECT %s = %v, want NULL", c.expr, got)
			}
			continue
		}
		if got.IsNull() {
			t.Errorf("SELECT %s = NULL, want %v", c.expr, c.want)
			continue
		}
		wb, _ := c.want.AsBool()
		gb, err := got.AsBool()
		if err != nil || gb != wb {
			t.Errorf("SELECT %s = %v, want %v", c.expr, got, c.want)
		}
	}
}

// TestNullInSubquery checks 3VL through the IN (SELECT ...) path.
func TestNullInSubquery(t *testing.T) {
	e := newTestDB(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE picks (v INT)")
	mustExec(t, e, "INSERT INTO picks VALUES (25)")
	mustExec(t, e, "INSERT INTO picks VALUES (NULL)")

	// bob (25) matches; everyone else is unknown because of the NULL pick,
	// so NOT IN keeps nobody.
	res := mustExec(t, e, "SELECT id FROM users WHERE age IN (SELECT v FROM picks)")
	if got := ids(t, res); len(got) != 1 || !got[2] {
		t.Fatalf("IN subquery: got %v, want {2}", got)
	}
	res = mustExec(t, e, "SELECT id FROM users WHERE age NOT IN (SELECT v FROM picks)")
	if got := ids(t, res); len(got) != 0 {
		t.Fatalf("NOT IN subquery with NULL: got %v, want none", got)
	}
}
