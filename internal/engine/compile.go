package engine

import (
	"fmt"
	"strings"
	"sync"

	"ediflow/internal/engine/vm"
	"ediflow/internal/sqltext"
	"ediflow/internal/types"
)

// This file is the engine side of the compiled expression VM
// (internal/engine/vm): compiling expressions against a relation's
// column layout, caching the programs, and running batches.
//
// Programs are cached per expression *pointer*. The plan cache
// (plancache.go) already guarantees pointer stability: a SQL text parses
// once and every execution reuses the same AST, so caching by expression
// identity is exactly "compiled programs live beside parsed plans" —
// with the bonus that statement-internal expressions (IVM refresh
// queries, UPDATE SET lists) cache the same way. DDL and
// function-registry changes purge the cache (and bump a generation so
// in-flight EXPLAINs never resurrect a stale program).

// progCache maps expression identity to its compiled program (nil =
// known unlowerable, so fallback is decided once, not per execution).
type progCache struct {
	mu  sync.Mutex
	m   map[sqltext.Expr]*progEntry
	cap int
}

type progEntry struct {
	prog  *vm.Program // nil: expression does not lower
	ncols int         // column-layout width the program was compiled for
}

func newProgCache(cap int) *progCache {
	return &progCache{m: make(map[sqltext.Expr]*progEntry), cap: cap}
}

func (c *progCache) get(x sqltext.Expr, ncols int) (*vm.Program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[x]
	if !ok || e.ncols != ncols {
		return nil, false
	}
	return e.prog, true
}

func (c *progCache) put(x sqltext.Expr, ncols int, p *vm.Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		// Unbounded keys are possible (IVM MIN/MAX recompute builds fresh
		// ASTs); a rare clear-all is cheaper than tracking LRU order.
		c.m = make(map[sqltext.Expr]*progEntry)
	}
	c.m[x] = &progEntry{prog: p, ncols: ncols}
}

func (c *progCache) purge() {
	c.mu.Lock()
	c.m = make(map[sqltext.Expr]*progEntry)
	c.mu.Unlock()
}

func (c *progCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// SetCompiledEval toggles the compiled expression VM. With it off every
// statement uses the tree-walk interpreter — the benchmarks use this to
// measure interpreted vs compiled on identical plans, and it is the
// escape hatch if a VM bug ever ships.
func (e *Engine) SetCompiledEval(on bool) { e.compiledEval.Store(on) }

// vmOn reports whether compiled evaluation is enabled.
func (e *Engine) vmOn() bool { return e.compiledEval.Load() }

// vmEnv builds the compile environment for a relation layout: column
// resolution mirroring binder.resolve (including ambiguity → not
// lowerable), the scalar function registry, and the engine's exact
// missing-parameter error.
func (e *Engine) vmEnv(cols []colMeta) *vm.Env {
	byQual := make(map[string]int, len(cols))
	byName := make(map[string]int, len(cols))
	ambiguous := map[string]bool{}
	for i, c := range cols {
		if c.qual != "" {
			byQual[c.qual+"."+c.name] = i
		}
		if _, dup := byName[c.name]; dup {
			ambiguous[c.name] = true
		} else {
			byName[c.name] = i
		}
	}
	return &vm.Env{
		Resolve: func(table, column string) (int, bool) {
			name := strings.ToLower(column)
			if table != "" {
				i, ok := byQual[strings.ToLower(table)+"."+name]
				return i, ok
			}
			if ambiguous[name] {
				return 0, false
			}
			i, ok := byName[name]
			return i, ok
		},
		Func: e.vmFunc,
		MissingParam: func(idx int) error {
			return fmt.Errorf("engine: missing argument for parameter %d", idx+1)
		},
	}
}

// vmFunc resolves a scalar function for the compiler: builtins first
// (matching callScalarFn's precedence), then user-registered functions.
// The implementation is baked into the program, so RegisterFunc purges
// compiled programs.
func (e *Engine) vmFunc(name string) (vm.ScalarFunc, bool) {
	if builtinScalars[name] {
		return func(args []types.Value) (types.Value, error) {
			return callScalar(name, args)
		}, true
	}
	if fn := e.userFunc(name); fn != nil {
		return vm.ScalarFunc(fn), true
	}
	return nil, false
}

// compiledProg returns the cached compiled program for x over the given
// layout, compiling on first sight. nil means "use the interpreter" —
// either the VM is off or the expression does not lower (counted once
// per expression in vm.fallback, never an error).
func (e *Engine) compiledProg(x sqltext.Expr, cols []colMeta) *vm.Program {
	if x == nil || !e.vmOn() {
		return nil
	}
	if cr, ok := x.(*sqltext.ColumnRef); ok {
		// Bare column refs (star expansions rebuild these per execution,
		// so their pointers never repeat) compile to a single opCol —
		// cheaper to recompile than to churn the cache.
		p, err := vm.Compile(cr, e.vmEnv(cols))
		if err != nil {
			return nil
		}
		return p
	}
	if p, ok := e.progs.get(x, len(cols)); ok {
		return p
	}
	p, err := vm.Compile(x, e.vmEnv(cols))
	if err != nil {
		p = nil
		e.mVMFallback.Inc()
	} else {
		e.mVMCompile.Inc()
	}
	e.progs.put(x, len(cols), p)
	return p
}

// countVM charges one executed batch of n rows to the vm.* counters.
func (e *Engine) countVM(n int) {
	if e.reg.Enabled() {
		e.mVMBatches.Inc()
		e.mVMRows.Add(int64(n))
	}
}

// batchKinds maps a relation layout to per-column batch kinds. Declared
// kinds are advisory (view backing tables infer them): the batch
// promotes a column to boxed lanes if a row disagrees.
func batchKinds(cols []colMeta) []types.Kind {
	kinds := make([]types.Kind, len(cols))
	for i, c := range cols {
		kinds[i] = c.kind
	}
	return kinds
}

// runFilterRows applies a compiled predicate to in-memory rows in
// batches and returns the kept rows — the vectorized twin of the
// interpreter's evalBool refilter loop.
func (e *Engine) runFilterRows(prog *vm.Program, cols []colMeta, rows []types.Row, args []types.Value) ([]types.Row, error) {
	m := vm.NewMachine(prog)
	m.Bind(args)
	batch := vm.NewBatch(batchKinds(cols), prog.Cols())
	kept := rows[:0:0]
	for start := 0; start < len(rows); start += vm.BatchSize {
		end := start + vm.BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		batch.Reset()
		for _, r := range rows[start:end] {
			batch.Append(r)
		}
		sel, err := m.Filter(batch)
		if err != nil {
			return nil, err
		}
		for _, i := range sel {
			kept = append(kept, rows[start+i])
		}
		e.countVM(batch.Len())
	}
	return kept, nil
}

// ScalarFunc is a user-registered scalar SQL function. Arguments are
// already evaluated; the implementation is responsible for its own NULL
// handling, like the built-ins in funcs.go. The args slice is reused
// between calls and must not be retained.
type ScalarFunc func(args []types.Value) (types.Value, error)

// RegisterFunc registers (or replaces) a scalar function under the
// given name, callable from any SQL expression. Built-in names cannot
// be overridden. Registration purges compiled programs: a cached
// program has the previous implementation baked in, and serving it
// after re-registration would silently return stale results.
func (e *Engine) RegisterFunc(name string, fn ScalarFunc) {
	e.udfMu.Lock()
	if e.udfs == nil {
		e.udfs = map[string]ScalarFunc{}
	}
	e.udfs[strings.ToUpper(name)] = fn
	e.udfMu.Unlock()
	e.progs.purge()
}

// userFunc looks up a registered scalar function by upper-cased name.
func (e *Engine) userFunc(name string) ScalarFunc {
	e.udfMu.RLock()
	fn := e.udfs[name]
	e.udfMu.RUnlock()
	return fn
}

// callScalarFn dispatches a scalar function call: built-ins first, then
// the user registry. Both the interpreter and the VM's compile-time
// resolution (vmFunc) follow this exact precedence.
func (e *Engine) callScalarFn(name string, args []types.Value) (types.Value, error) {
	if builtinScalars[name] {
		return callScalar(name, args)
	}
	if fn := e.userFunc(name); fn != nil {
		return fn(args)
	}
	return types.Null, fmt.Errorf("engine: unknown function %s", name)
}
