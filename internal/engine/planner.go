package engine

import (
	"fmt"
	"strings"

	"ediflow/internal/catalog"
	"ediflow/internal/sqltext"
	"ediflow/internal/storage"
	"ediflow/internal/types"
)

// The planner chooses an access path for every base-table scan and a
// strategy for every join. Analysis is purely structural — key
// expressions stay unevaluated — so the same analysis backs both the
// executor and EXPLAIN, and EXPLAIN works with unbound parameters.

// tidCol is the pseudo column position of the `_tid` system column in
// planner equality maps (real schema positions are >= 0).
const tidCol = -1

// pathKind enumerates the access paths available for one table scan.
type pathKind int

// Access paths, from most to least preferred.
const (
	pathFullScan pathKind = iota
	pathTIDPoint             // _tid = const
	pathPKPoint              // pk = const
	pathUniquePoint          // unique col = const
	pathIndexPoint           // secondary index, all key columns bound by =
	pathTIDIn                // _tid IN (consts)
	pathPKIn                 // pk IN (consts)
	pathUniqueIn             // unique col IN (consts)
	pathIndexIn              // single-column secondary index, col IN (consts)
)

// scanPlan is the planner's choice for one table scan. Key expressions
// are kept unevaluated; resolveScan binds them against the statement's
// arguments at execution time.
type scanPlan struct {
	kind  pathKind
	index string         // index name (pathIndexPoint, pathIndexIn)
	cols  []int          // schema positions of the key, in index-key order
	keys  []sqltext.Expr // key expressions, parallel to cols
	list  []sqltext.Expr // IN-list elements for the ...In paths
}

// label renders the path for EXPLAIN output.
func (p *scanPlan) label() string {
	switch p.kind {
	case pathTIDPoint, pathPKPoint, pathTIDIn, pathPKIn:
		return "pk-point"
	case pathUniquePoint, pathUniqueIn:
		return "unique-point"
	case pathIndexPoint, pathIndexIn:
		return "index(" + p.index + ")"
	default:
		return "full-scan"
	}
}

// constKeyExpr reports whether x can serve as an index key: a literal or
// a positional parameter. NULL literals qualify (a NULL key matches
// nothing, which resolveScan handles).
func constKeyExpr(x sqltext.Expr) bool {
	switch x.(type) {
	case *sqltext.Literal, *sqltext.Param:
		return true
	}
	return false
}

// andConjuncts flattens the top-level AND chain of an expression.
func andConjuncts(x sqltext.Expr) []sqltext.Expr {
	var out []sqltext.Expr
	var collect func(sqltext.Expr)
	collect = func(x sqltext.Expr) {
		if bin, ok := x.(*sqltext.Binary); ok && bin.Op == "AND" {
			collect(bin.L)
			collect(bin.R)
			return
		}
		out = append(out, x)
	}
	collect(x)
	return out
}

// analyzeScan picks an access path for a single-table scan with the
// given WHERE clause. It walks the top-level AND chain collecting
// equality and IN conjuncts over indexed columns; because any conjunct
// only *restricts* the result, using one conjunct as the access path and
// re-checking the full WHERE on the fetched rows is always sound.
//
// Ranking: _tid = > pk = > unique = > secondary-index = (most key
// columns first, then name) > the IN variants in the same order.
func analyzeScan(where sqltext.Expr, schema *catalog.TableSchema, tbl *storage.Table, qual string) *scanPlan {
	full := &scanPlan{kind: pathFullScan}
	if where == nil || tbl == nil {
		return full
	}

	colFor := func(cr *sqltext.ColumnRef) (int, bool) {
		if cr.Table != "" && !strings.EqualFold(cr.Table, qual) {
			return 0, false
		}
		if strings.EqualFold(cr.Column, catalog.SysTID) {
			return tidCol, true
		}
		p := schema.ColIndex(cr.Column)
		return p, p >= 0
	}

	eq := map[int]sqltext.Expr{}
	type inPred struct {
		col  int
		list []sqltext.Expr
	}
	var ins []inPred
	for _, c := range andConjuncts(where) {
		switch x := c.(type) {
		case *sqltext.Binary:
			if x.Op != "=" {
				continue
			}
			cr, ok := x.L.(*sqltext.ColumnRef)
			key := x.R
			if !ok || !constKeyExpr(key) {
				cr, ok = x.R.(*sqltext.ColumnRef)
				key = x.L
				if !ok || !constKeyExpr(key) {
					continue
				}
			}
			if col, okc := colFor(cr); okc {
				if _, dup := eq[col]; !dup {
					eq[col] = key
				}
			}
		case *sqltext.InExpr:
			if x.Not || x.Query != nil {
				continue
			}
			cr, ok := x.X.(*sqltext.ColumnRef)
			if !ok {
				continue
			}
			col, okc := colFor(cr)
			if !okc {
				continue
			}
			usable := true
			for _, le := range x.List {
				if !constKeyExpr(le) {
					usable = false
					break
				}
			}
			if usable {
				ins = append(ins, inPred{col: col, list: x.List})
			}
		}
	}

	if k, ok := eq[tidCol]; ok {
		return &scanPlan{kind: pathTIDPoint, keys: []sqltext.Expr{k}}
	}
	if tbl.HasPK() {
		if k, ok := eq[tbl.PKCol()]; ok {
			return &scanPlan{kind: pathPKPoint, cols: []int{tbl.PKCol()}, keys: []sqltext.Expr{k}}
		}
	}
	uniqueBest := -1
	for col := range eq {
		if col >= 0 && tbl.HasUnique(col) && (uniqueBest < 0 || col < uniqueBest) {
			uniqueBest = col
		}
	}
	if uniqueBest >= 0 {
		return &scanPlan{kind: pathUniquePoint, cols: []int{uniqueBest}, keys: []sqltext.Expr{eq[uniqueBest]}}
	}
	// Secondary index with every key column bound by an equality. Prefer
	// more key columns (more selective); SecondaryIndexes is name-sorted,
	// so ties resolve deterministically.
	var best *scanPlan
	for _, info := range tbl.SecondaryIndexes() {
		keys := make([]sqltext.Expr, len(info.Cols))
		covered := true
		for i, c := range info.Cols {
			k, bound := eq[c]
			if !bound {
				covered = false
				break
			}
			keys[i] = k
		}
		if covered && (best == nil || len(info.Cols) > len(best.cols)) {
			best = &scanPlan{kind: pathIndexPoint, index: info.Name, cols: append([]int{}, info.Cols...), keys: keys}
		}
	}
	if best != nil {
		return best
	}
	for _, in := range ins {
		if in.col == tidCol {
			return &scanPlan{kind: pathTIDIn, list: in.list}
		}
	}
	if tbl.HasPK() {
		for _, in := range ins {
			if in.col == tbl.PKCol() {
				return &scanPlan{kind: pathPKIn, cols: []int{in.col}, list: in.list}
			}
		}
	}
	for _, in := range ins {
		if in.col >= 0 && tbl.HasUnique(in.col) {
			return &scanPlan{kind: pathUniqueIn, cols: []int{in.col}, list: in.list}
		}
	}
	for _, in := range ins {
		if in.col < 0 {
			continue
		}
		if name, ok := tbl.IndexOn(in.col); ok {
			return &scanPlan{kind: pathIndexIn, index: name, cols: []int{in.col}, list: in.list}
		}
	}
	return full
}

// constVal binds a planner key expression against the statement's
// arguments. ok=false (unbound parameter) makes the executor fall back
// to a streaming full scan.
func constVal(x sqltext.Expr, args []types.Value) (types.Value, bool) {
	switch v := x.(type) {
	case *sqltext.Literal:
		return v.Value, true
	case *sqltext.Param:
		if v.Index < len(args) {
			return args[v.Index], true
		}
	}
	return types.Null, false
}

// resolveScan turns a non-full-scan plan into candidate tids visible as
// of asOf. ok=false means the plan could not be applied (unbound
// parameter, value that cannot be coerced to the column type) and the
// caller must fall back to a full scan; ok=true with an empty slice means
// the predicate provably matches nothing. Candidate tids are deduplicated
// so `pk IN (5, 5)` yields one row, not two.
func resolveScan(plan *scanPlan, schema *catalog.TableSchema, tbl *storage.Table, args []types.Value, asOf int64) ([]int64, bool) {
	coerce := func(col int, v types.Value) (types.Value, bool) {
		cv, err := v.CoerceTo(schema.Columns[col].Type)
		if err != nil {
			return types.Null, false
		}
		return cv, true
	}
	var tids []int64
	seen := map[int64]bool{}
	add := func(tid int64) {
		if !seen[tid] {
			seen[tid] = true
			tids = append(tids, tid)
		}
	}

	switch plan.kind {
	case pathTIDPoint:
		v, ok := constVal(plan.keys[0], args)
		if !ok {
			return nil, false
		}
		if v.IsNull() {
			return nil, true
		}
		tid, err := v.AsInt()
		if err != nil {
			return nil, false
		}
		add(tid)

	case pathPKPoint, pathUniquePoint:
		v, ok := constVal(plan.keys[0], args)
		if !ok {
			return nil, false
		}
		if v.IsNull() {
			return nil, true
		}
		cv, ok := coerce(plan.cols[0], v)
		if !ok {
			return nil, false
		}
		var tid int64
		var found bool
		if plan.kind == pathPKPoint {
			tid, found = tbl.LookupPKAt(cv, asOf)
		} else {
			tid, found = tbl.LookupUniqueAt(plan.cols[0], cv, asOf)
		}
		if found {
			add(tid)
		}

	case pathIndexPoint:
		key := make(types.Row, len(plan.cols))
		for i, kx := range plan.keys {
			v, ok := constVal(kx, args)
			if !ok {
				return nil, false
			}
			if v.IsNull() {
				return nil, true
			}
			cv, ok := coerce(plan.cols[i], v)
			if !ok {
				return nil, false
			}
			key[i] = cv
		}
		if found, ok := tbl.LookupIndexAt(plan.index, key, asOf); ok {
			for _, tid := range found {
				add(tid)
			}
		}

	case pathTIDIn, pathPKIn, pathUniqueIn, pathIndexIn:
		for _, le := range plan.list {
			v, ok := constVal(le, args)
			if !ok {
				return nil, false
			}
			if v.IsNull() {
				continue // NULL never matches inside IN
			}
			switch plan.kind {
			case pathTIDIn:
				tid, err := v.AsInt()
				if err != nil {
					return nil, false
				}
				add(tid)
			case pathPKIn:
				cv, ok := coerce(plan.cols[0], v)
				if !ok {
					return nil, false
				}
				if tid, found := tbl.LookupPKAt(cv, asOf); found {
					add(tid)
				}
			case pathUniqueIn:
				cv, ok := coerce(plan.cols[0], v)
				if !ok {
					return nil, false
				}
				if tid, found := tbl.LookupUniqueAt(plan.cols[0], cv, asOf); found {
					add(tid)
				}
			case pathIndexIn:
				cv, ok := coerce(plan.cols[0], v)
				if !ok {
					return nil, false
				}
				if found, ok := tbl.LookupIndexAt(plan.index, types.Row{cv}, asOf); ok {
					for _, tid := range found {
						add(tid)
					}
				}
			}
		}

	default:
		return nil, false
	}
	return tids, true
}

// ----------------------------------------------------------------- joins

// joinPlan is the planner's choice for one JOIN step.
type joinPlan struct {
	kind     string         // "hash", "nested" or "cross"
	eqL, eqR []int          // equality key positions in the left/right relation
	residual []sqltext.Expr // non-equality ON conjuncts, checked per match
	// Probe-side shortcuts, set when the right side is an unmaterialized
	// base table whose storage index covers exactly the join key.
	index   string // secondary index name, "" if none
	probePK bool   // single-column key on the right side's primary key
	perm    []int  // index-key position → position in eqL/eqR
}

// analyzeJoin classifies one join clause. A hash join applies when ON is
// an AND chain containing at least one equality between a left-side and
// a right-side column; the remaining conjuncts become a residual filter
// evaluated on each candidate match.
func (e *Engine) analyzeJoin(left, right *relation, jc sqltext.JoinClause, args []types.Value, overrides map[string][]types.Row, ctx *stmtCtx) *joinPlan {
	if jc.Kind == "CROSS" {
		return &joinPlan{kind: "cross"}
	}
	plan := &joinPlan{kind: "nested"}
	lb := newBinder(e, args, left, overrides, ctx)
	rb := newBinder(e, args, right, overrides, ctx)
	for _, c := range andConjuncts(jc.On) {
		eqv, ok := c.(*sqltext.Binary)
		if !ok || eqv.Op != "=" {
			plan.residual = append(plan.residual, c)
			continue
		}
		lcr, lok := eqv.L.(*sqltext.ColumnRef)
		rcr, rok := eqv.R.(*sqltext.ColumnRef)
		if !lok || !rok {
			plan.residual = append(plan.residual, c)
			continue
		}
		li, lerr := lb.resolve(lcr)
		ri, rerr := rb.resolve(rcr)
		if lerr != nil || rerr != nil {
			// Maybe the refs are swapped relative to the sides.
			li2, lerr2 := lb.resolve(rcr)
			ri2, rerr2 := rb.resolve(lcr)
			if lerr2 != nil || rerr2 != nil {
				plan.residual = append(plan.residual, c)
				continue
			}
			li, ri = li2, ri2
		}
		plan.eqL = append(plan.eqL, li)
		plan.eqR = append(plan.eqR, ri)
	}
	if len(plan.eqL) == 0 {
		// Nested loop re-evaluates the whole ON clause; no residual split.
		plan.residual = nil
		return plan
	}
	plan.kind = "hash"

	// Build on the indexed side: when the right side is a lazy base-table
	// scan and storage already maintains a hash index over exactly the
	// join key columns, probe that index per left row instead of
	// materializing the right side and building a second hash table.
	if right.lazy && right.tbl != nil {
		nUser := len(right.tbl.Schema.Columns)
		cols := make([]int, 0, len(plan.eqR))
		userOnly := true
		for _, c := range plan.eqR {
			if c >= nUser {
				userOnly = false
				break
			}
			cols = append(cols, c)
		}
		if userOnly {
			if len(cols) == 1 && right.tbl.HasPK() && cols[0] == right.tbl.PKCol() {
				plan.probePK = true
				plan.perm = []int{0}
			} else if name, perm, ok := right.tbl.IndexCovering(cols); ok {
				plan.index = name
				plan.perm = perm
			}
		}
	}
	return plan
}

// ---------------------------------------------------------------- EXPLAIN

// evalExplain renders the planner's choices for a statement without
// executing it. Planning is purely structural (catalog and table metadata
// are internally synchronized), so no engine lock is required.
func (e *Engine) evalExplain(x *sqltext.Explain, args []types.Value, ctx *stmtCtx) (*Result, error) {
	var lines []string
	var err error
	switch s := x.Stmt.(type) {
	case *sqltext.Select:
		lines, err = e.explainSelect(s, "", ctx)
	case *sqltext.Update:
		lines, err = e.explainMutation("update", s.Table, s.Where)
	case *sqltext.Delete:
		lines, err = e.explainMutation("delete", s.Table, s.Where)
	default:
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT, UPDATE or DELETE")
	}
	if err != nil {
		return nil, err
	}
	rows := make([]types.Row, len(lines))
	for i, l := range lines {
		rows[i] = types.Row{types.NewString(l)}
	}
	return &Result{Columns: []string{"plan"}, Rows: rows}, nil
}

func (e *Engine) explainSelect(sel *sqltext.Select, indent string, ctx *stmtCtx) ([]string, error) {
	var lines []string
	if sel.From == nil {
		lines = append(lines, indent+"result: constant")
	} else {
		fl, err := e.explainRef(*sel.From, sel, indent, ctx)
		if err != nil {
			return nil, err
		}
		lines = append(lines, fl...)
		left, err := e.refCols(*sel.From)
		if err != nil {
			return nil, err
		}
		for _, j := range sel.Joins {
			rl, err := e.explainRef(j.Right, nil, indent, ctx)
			if err != nil {
				return nil, err
			}
			lines = append(lines, rl...)
			right, err := e.refCols(j.Right)
			if err != nil {
				return nil, err
			}
			plan := e.analyzeJoin(left, right, j, nil, nil, ctx)
			label := "nested-loop"
			switch plan.kind {
			case "cross":
				label = "cross-join"
			case "hash":
				label = "hash-join"
			}
			lines = append(lines, indent+"join "+refName(j.Right)+": "+label)
			left = &relation{cols: append(append([]colMeta{}, left.cols...), right.cols...)}
		}
		if items, _, err := expandItems(sel, left); err == nil && len(items) > 0 {
			allCompiled := true
			agg := len(sel.GroupBy) > 0
			for _, it := range items {
				if sqltext.HasAggregate(it.Expr) {
					agg = true
				}
				if e.compiledProg(it.Expr, left.cols) == nil {
					allCompiled = false
				}
			}
			if allCompiled && !agg {
				lines = append(lines, indent+"project: compiled")
			}
		}
	}
	if len(sel.OrderBy) > 0 {
		sortLabel := "full"
		if sel.Limit != nil {
			if n, ok := staticInt(sel.Limit); ok {
				k, usable := n, true
				if sel.Offset != nil {
					if m, ok2 := staticInt(sel.Offset); ok2 {
						k += m
					} else {
						usable = false
					}
				}
				if usable && k >= 0 {
					sortLabel = fmt.Sprintf("top-k(%d)", k)
				}
			}
		}
		lines = append(lines, indent+"sort: "+sortLabel)
	}
	return lines, nil
}

// explainRef renders the scan line for one FROM entry. sel is non-nil
// only for the first entry of a join-free SELECT — the same condition
// under which the executor applies index fast paths.
func (e *Engine) explainRef(tr sqltext.TableRef, sel *sqltext.Select, indent string, ctx *stmtCtx) ([]string, error) {
	name := refName(tr)
	if tr.Subquery != nil {
		lines := []string{indent + "scan " + name + ": subquery"}
		sub, err := e.explainSelect(tr.Subquery, indent+"  ", ctx)
		if err != nil {
			return nil, err
		}
		return append(lines, sub...), nil
	}
	if vt := e.lookupVirtual(tr.Table); vt != nil {
		return []string{indent + "scan " + name + ": virtual"}, nil
	}
	target := tr.Table
	if v, ok := e.cat.View(target); ok {
		target = v.Backing
	}
	schema, ok := e.cat.Table(target)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", tr.Table)
	}
	label := "full-scan"
	if sel != nil && len(sel.Joins) == 0 && sel.Where != nil {
		qual := strings.ToLower(tr.Alias)
		if qual == "" {
			qual = strings.ToLower(tr.Table)
		}
		label = analyzeScan(sel.Where, schema, e.store.Table(target), qual).label()
		if label == "full-scan" {
			// The executor runs a full-scan WHERE through the expression VM
			// when it lowers; index paths evaluate inside the index itself.
			if rel, err := e.refCols(tr); err == nil && e.compiledProg(sel.Where, rel.cols) != nil {
				label += " [compiled]"
				// Morsel-parallel fan-out: shown with the configured
				// width when the snapshot's slot count clears the
				// threshold. The executor may still run narrower (or
				// serial) if the engine-wide worker budget is taken.
				if tbl := e.store.Table(target); tbl != nil {
					if k := e.parallelWidth(tbl.View(ctx.snap).Slots()); k > 1 {
						label += fmt.Sprintf(" [parallel n=%d]", k)
					}
				}
			}
		}
	}
	return []string{indent + "scan " + name + ": " + label}, nil
}

func (e *Engine) explainMutation(verb, table string, where sqltext.Expr) ([]string, error) {
	if _, isView := e.cat.View(table); isView {
		return nil, fmt.Errorf("engine: cannot %s view %q", strings.ToUpper(verb), table)
	}
	schema, ok := e.cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", table)
	}
	label := "full-scan"
	if where != nil {
		label = analyzeScan(where, schema, e.store.Table(table), strings.ToLower(table)).label()
		if label == "full-scan" {
			if rel, err := e.refCols(sqltext.TableRef{Table: table}); err == nil && e.compiledProg(where, rel.cols) != nil {
				label += " [compiled]"
			}
		}
	}
	return []string{verb + " " + table + ": " + label}, nil
}

func refName(tr sqltext.TableRef) string {
	if tr.Alias != "" {
		return tr.Alias
	}
	if tr.Subquery != nil {
		return "(subquery)"
	}
	return tr.Table
}

// refCols builds the column shape of one FROM entry without touching any
// rows (EXPLAIN never materializes).
func (e *Engine) refCols(tr sqltext.TableRef) (*relation, error) {
	qual := strings.ToLower(tr.Alias)
	if tr.Subquery != nil {
		names, err := e.selectCols(tr.Subquery)
		if err != nil {
			return nil, err
		}
		rel := &relation{}
		for _, n := range names {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(n)})
		}
		return rel, nil
	}
	if qual == "" {
		qual = strings.ToLower(tr.Table)
	}
	if vt := e.lookupVirtual(tr.Table); vt != nil {
		rel := &relation{}
		for _, c := range vt.cols {
			rel.cols = append(rel.cols, colMeta{qual: qual, name: c})
		}
		return rel, nil
	}
	name := tr.Table
	if v, ok := e.cat.View(name); ok {
		name = v.Backing
	}
	schema, ok := e.cat.Table(name)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", tr.Table)
	}
	rel := &relation{tbl: e.store.Table(name), lazy: true}
	for _, c := range schema.Columns {
		rel.cols = append(rel.cols, colMeta{qual: qual, name: strings.ToLower(c.Name), kind: c.Type})
	}
	rel.cols = append(rel.cols,
		colMeta{qual: qual, name: catalog.SysTID, hidden: true, kind: types.KindInt},
		colMeta{qual: qual, name: catalog.SysCreated, hidden: true, kind: types.KindInt},
	)
	return rel, nil
}

// selectCols computes a SELECT's output column names without executing.
func (e *Engine) selectCols(sel *sqltext.Select) ([]string, error) {
	rel := &relation{}
	if sel.From != nil {
		left, err := e.refCols(*sel.From)
		if err != nil {
			return nil, err
		}
		rel = left
		for _, j := range sel.Joins {
			right, err := e.refCols(j.Right)
			if err != nil {
				return nil, err
			}
			rel = &relation{cols: append(append([]colMeta{}, rel.cols...), right.cols...)}
		}
	}
	_, names, err := expandItems(sel, rel)
	return names, err
}

// staticInt extracts a non-parameter integer literal (EXPLAIN runs with
// no bound arguments, so only literals count as statically known).
func staticInt(x sqltext.Expr) (int, bool) {
	lit, ok := x.(*sqltext.Literal)
	if !ok || lit.Value.Kind() != types.KindInt {
		return 0, false
	}
	return int(lit.Value.Int()), true
}
